// Command graphgen generates, inspects and exports the client–server
// bipartite topologies used by the simulator.
//
// Examples:
//
//	graphgen -graph regular -n 4096 -delta 64 -out graph.edges
//	graphgen -graph almost -n 8192 -stats
//	graphgen -in graph.edges -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bipartite"
	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	var (
		graphKind = flag.String("graph", "regular", "graph family: regular, simple-regular, trust, erdos, almost, proximity, complete")
		n         = flag.Int("n", 4096, "number of clients and servers")
		delta     = flag.Int("delta", 0, "client degree (0 = ceil(log2(n)^2))")
		seed      = flag.Uint64("seed", 1, "random seed")
		out       = flag.String("out", "", "write the graph as an edge list to this file")
		outJSON   = flag.String("out-json", "", "write the graph as JSON to this file")
		in        = flag.String("in", "", "read a graph edge list instead of generating one")
		showStats = flag.Bool("stats", true, "print degree statistics and the paper's prescribed c")
		d         = flag.Int("d", 2, "request number used when reporting the prescribed c")
	)
	flag.Parse()

	if err := run(*graphKind, *n, *delta, *seed, *out, *outJSON, *in, *showStats, *d); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(graphKind string, n, delta int, seed uint64, out, outJSON, in string, showStats bool, d int) error {
	var g *bipartite.Graph
	var err error
	if in != "" {
		f, ferr := os.Open(in)
		if ferr != nil {
			return ferr
		}
		g, err = bipartite.ReadEdgeList(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		g, err = cli.GraphSpec{Kind: graphKind, N: n, Delta: delta, Seed: seed}.Build()
		if err != nil {
			return err
		}
	}

	if showStats {
		st := g.Stats()
		fmt.Println(g)
		fmt.Printf("  client degrees: min=%d max=%d mean=%.1f\n", st.MinClientDegree, st.MaxClientDegree, st.MeanClientDeg)
		fmt.Printf("  server degrees: min=%d max=%d mean=%.1f\n", st.MinServerDegree, st.MaxServerDegree, st.MeanServerDeg)
		fmt.Printf("  eta=%.3f rho=%.3f\n", st.Eta, st.RegularityRatio)
		fmt.Printf("  paper-prescribed c for d=%d: %.1f (capacity %d per server)\n",
			d, core.MinCAlmostRegular(st.Eta, st.RegularityRatio, d),
			int(core.MinCAlmostRegular(st.Eta, st.RegularityRatio, d)*float64(d)))
		fmt.Printf("  completion bound 3·log2(n): %d rounds\n", core.CompletionBound(g.NumClients()))
		if err := g.Validate(); err != nil {
			fmt.Printf("  WARNING: %v\n", err)
		}
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := g.WriteEdgeList(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote edge list to %s\n", out)
	}
	if outJSON != "" {
		data, err := g.MarshalJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(outJSON, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote JSON to %s\n", outJSON)
	}
	return nil
}
