// Command saer-experiments regenerates the reproduction's experiment
// tables (E1–E17, see DESIGN.md). By default it runs every experiment at
// full size and prints the tables to stdout; individual experiments,
// quick mode, CSV export and a machine-readable JSON record stream are
// selectable with flags.
//
// Examples:
//
//	saer-experiments                 # the whole suite, full size
//	saer-experiments -quick          # reduced sizes, finishes in seconds
//	saer-experiments -only E1,E3     # a subset
//	saer-experiments -csv-dir out/   # additionally write one CSV per table
//	saer-experiments -json -only E1  # JSON records (per trial/row/note) on stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "use reduced problem sizes and trial counts")
		trials   = flag.Int("trials", 0, "trials per configuration point (0 = default)")
		seed     = flag.Uint64("seed", 0, "suite seed (0 = built-in default)")
		topology = flag.String("topology", "", "scaling-experiment graph storage: csr, implicit, implicit-csr (materialized twin of implicit), or empty for auto (implicit from n=65536 up)")
		only     = flag.String("only", "", "comma-separated experiment IDs to run (e.g. E1,E4); empty = all")
		csvDir   = flag.String("csv-dir", "", "directory to write one CSV file per experiment table")
		jsonOut  = flag.Bool("json", false, "stream machine-readable JSON records to stdout instead of rendered tables: one object per protocol trial, tracked round (per-round series of the tracked experiments and the per-epoch rounds of E12/E15-E17), table row and note")
		maxN     = flag.Int("max-n", 0, "override the scaling experiments' size ceiling: lower trims the sweep, higher raises it (up to n=16777216); in -quick mode a raised ceiling appends just that probe point (0 = per-experiment defaults)")
		listOnly = flag.Bool("list", false, "list the available experiments and exit")
		progress = flag.Bool("progress", false, "print live per-point progress lines (completed trials, rate, ETA) to stderr")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-28s %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := experiments.DefaultSuiteConfig()
	if *quick {
		cfg = experiments.QuickSuiteConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	switch *topology {
	case "", "csr", "implicit", "implicit-csr":
		cfg.Topology = *topology
	default:
		fmt.Fprintf(os.Stderr, "saer-experiments: unknown -topology %q (want csr, implicit, implicit-csr, or empty)\n", *topology)
		os.Exit(1)
	}
	if *jsonOut {
		cfg.Records = sweep.NewRecorder(os.Stdout)
	}
	if *progress {
		// Stderr keeps the lines clear of the tables / -json stream on
		// stdout; the sweep engine supplies the backing registry.
		cfg.Progress = os.Stderr
	}
	if *maxN < 0 {
		fmt.Fprintln(os.Stderr, "saer-experiments: -max-n must be non-negative")
		os.Exit(1)
	}
	cfg.MaxN = *maxN

	selected, err := selectExperiments(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saer-experiments:", err)
		os.Exit(1)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "saer-experiments:", err)
			os.Exit(1)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "saer-experiments: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		// In -json mode the record stream on stdout replaces the rendered
		// tables; timing goes to stderr so stdout stays pure JSON lines.
		if *jsonOut {
			fmt.Fprintf(os.Stderr, "  (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		} else {
			if err := table.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "saer-experiments: rendering %s: %v\n", e.ID, err)
				failed++
				continue
			}
			fmt.Printf("  (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			if err := writeCSV(path, table); err != nil {
				fmt.Fprintf(os.Stderr, "saer-experiments: writing %s: %v\n", path, err)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func selectExperiments(only string) ([]experiments.Experiment, error) {
	if strings.TrimSpace(only) == "" {
		return experiments.All(), nil
	}
	var out []experiments.Experiment
	for _, id := range strings.Split(only, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		e, err := experiments.ByID(strings.ToUpper(id))
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiments selected from %q", only)
	}
	return out, nil
}

func writeCSV(path string, table *experiments.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := table.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
