// Command saer-server runs SAER/RAES server shards as a network service:
// one TCP listener per shard speaking the internal/wire frame protocol.
// The server carries no protocol configuration of its own — every
// session's Hello announces the variant, capacity and server window, and
// per-run state is rebuilt by the client's Reset — so the only flags are
// where to listen. That statelessness is the deployment model: a killed
// shard process restarted on the same address serves the next epoch
// indistinguishably from one that never died.
//
// Examples:
//
//	saer-server -listen 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	saer-server -shards 3   # three loopback shards on kernel-picked ports
//	saer-server -shards 3 -debug-addr 127.0.0.1:6060   # + /metrics and pprof
//
// -debug-addr serves live observability over HTTP: Prometheus-text
// /metrics with the per-shard saer_server_* series and the stock
// net/http/pprof handlers under /debug/pprof/. Telemetry is pure
// observation — the protocol bytes and results are identical with or
// without it.
//
// The bound addresses are printed one per line ("shard I listening on
// ADDR"), then "ready"; scripts wait for that line before dialing. On
// SIGINT/SIGTERM the server shuts down and prints each shard's service
// report.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	var (
		listen    = flag.String("listen", "", "comma-separated listen addresses, one per shard (overrides -shards)")
		shards    = flag.Int("shards", 1, "number of loopback shards on kernel-picked ports when -listen is empty")
		debugAddr = flag.String("debug-addr", "", "serve Prometheus /metrics and net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	)
	flag.Parse()

	var addrs []string
	if *listen != "" {
		for _, a := range strings.Split(*listen, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	} else {
		if *shards < 1 {
			fmt.Fprintln(os.Stderr, "saer-server: -shards must be at least 1")
			os.Exit(1)
		}
		for i := 0; i < *shards; i++ {
			addrs = append(addrs, "127.0.0.1:0")
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "saer-server: no listen addresses")
		os.Exit(1)
	}

	var reg *telemetry.Registry
	if *debugAddr != "" {
		reg = telemetry.NewRegistry()
	}
	set, err := wire.StartSetTelemetry(addrs, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saer-server:", err)
		os.Exit(1)
	}
	for i, addr := range set.Addrs() {
		fmt.Printf("shard %d listening on %s\n", i, addr)
	}
	if *debugAddr != "" {
		dbg, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "saer-server:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("debug listening on %s\n", dbg.Addr())
	}
	fmt.Println("ready")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	if err := set.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "saer-server: shutdown:", err)
	}
	for i, rep := range set.Reports() {
		fmt.Printf("shard %d report: sessions=%d rounds=%d requests=%d accepted=%d decide=%v\n",
			i, rep.Sessions, rep.Rounds, rep.Requests, rep.Accepted,
			time.Duration(rep.DecideNanos).Round(time.Microsecond))
	}
}
