// Command saer-aggregate folds one or more saer-records JSONL streams —
// typically the -records outputs of saer-client runs against different
// shard sets or seeds — into a unified summary: per-point trial
// aggregates (completion rate, round and max-load envelopes, total work)
// and per-shard service tallies summed across streams. Telemetry
// snapshot records fold too: matching counter/gauge/histogram series
// sum across processes, so a fleet of clients rolls up into one
// snapshot. The folded result prints as a table and, with -json,
// re-emits as a saer-records stream (schema header, one row per point,
// one shard record per shard, one folded telemetry record), so the
// aggregation composes: aggregate outputs aggregate again.
//
// Examples:
//
//	saer-aggregate run1.jsonl run2.jsonl
//	saer-aggregate < run.jsonl                 # reads stdin without args
//	saer-aggregate -json folded.jsonl run*.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/records"
	"repro/internal/telemetry"
)

func main() {
	jsonOut := flag.String("json", "", "write the folded records to this file as a saer-records stream")
	flag.Parse()

	if err := run(flag.Args(), *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "saer-aggregate:", err)
		os.Exit(1)
	}
}

// pointAgg folds the trial records of one (experiment, point).
type pointAgg struct {
	experiment, point string
	trials, completed int
	minRounds         int
	maxRounds         int
	sumRounds         int64
	maxLoad           int
	work              int64
	unassigned        int64
	burned            int
}

// shardAgg folds the shard records of one (experiment, shard index).
type shardAgg struct {
	experiment    string
	shard, lo, hi int
	rounds        int64
	work          int64
	maxLoad       int
	streams       int
}

func run(paths []string, jsonOut string) error {
	var recs []records.Record
	if len(paths) == 0 {
		rs, err := records.ReadAll(os.Stdin)
		if err != nil {
			return fmt.Errorf("stdin: %w", err)
		}
		recs = rs
	}
	for _, path := range paths {
		rs, err := readFile(path)
		if err != nil {
			return err
		}
		recs = append(recs, rs...)
	}

	points := make(map[string]*pointAgg)
	shards := make(map[string]*shardAgg)
	var pointOrder, shardOrder []string
	var notes []records.Record
	// Telemetry snapshots fold by summing matching series (Merge); one
	// folded snapshot per experiment, carried through to the -json output.
	telemetryAgg := make(map[string]*telemetry.Snapshot)
	telemetryStreams := make(map[string]int)
	var telemetryOrder []string
	for _, r := range recs {
		switch r.Type {
		case records.TypeTrial:
			key := r.Experiment + "\x00" + r.Point
			p := points[key]
			if p == nil {
				p = &pointAgg{experiment: r.Experiment, point: r.Point, minRounds: -1}
				points[key] = p
				pointOrder = append(pointOrder, key)
			}
			p.trials++
			if r.Completed != nil && *r.Completed {
				p.completed++
			}
			if r.Rounds != nil {
				if p.minRounds < 0 || *r.Rounds < p.minRounds {
					p.minRounds = *r.Rounds
				}
				if *r.Rounds > p.maxRounds {
					p.maxRounds = *r.Rounds
				}
				p.sumRounds += int64(*r.Rounds)
			}
			if r.MaxLoad != nil && *r.MaxLoad > p.maxLoad {
				p.maxLoad = *r.MaxLoad
			}
			if r.Work != nil {
				p.work += *r.Work
			}
			if r.UnassignedBalls != nil {
				p.unassigned += int64(*r.UnassignedBalls)
			}
			if r.BurnedServers != nil && *r.BurnedServers > p.burned {
				p.burned = *r.BurnedServers
			}
		case records.TypeShard:
			if r.Shard == nil {
				return fmt.Errorf("shard record without a shard index")
			}
			key := fmt.Sprintf("%s\x00%06d", r.Experiment, *r.Shard)
			s := shards[key]
			if s == nil {
				s = &shardAgg{experiment: r.Experiment, shard: *r.Shard, lo: -1, hi: -1}
				shards[key] = s
				shardOrder = append(shardOrder, key)
			}
			if r.ServerLo != nil && r.ServerHi != nil {
				if s.lo >= 0 && (s.lo != *r.ServerLo || s.hi != *r.ServerHi) {
					return fmt.Errorf("shard %d window disagrees across streams: [%d,%d) vs [%d,%d)",
						*r.Shard, s.lo, s.hi, *r.ServerLo, *r.ServerHi)
				}
				s.lo, s.hi = *r.ServerLo, *r.ServerHi
			}
			if r.Rounds != nil {
				s.rounds += int64(*r.Rounds)
			}
			if r.Work != nil {
				s.work += *r.Work
			}
			if r.MaxLoad != nil && *r.MaxLoad > s.maxLoad {
				s.maxLoad = *r.MaxLoad
			}
			s.streams++
		case records.TypeTelemetry:
			if r.Telemetry == nil {
				continue
			}
			agg := telemetryAgg[r.Experiment]
			if agg == nil {
				agg = &telemetry.Snapshot{}
				telemetryAgg[r.Experiment] = agg
				telemetryOrder = append(telemetryOrder, r.Experiment)
			}
			agg.Merge(r.Telemetry)
			telemetryStreams[r.Experiment]++
		case records.TypeNote:
			notes = append(notes, r)
		}
	}
	sort.Strings(pointOrder)
	sort.Strings(shardOrder)

	if len(pointOrder) == 0 && len(shardOrder) == 0 && len(telemetryOrder) == 0 {
		return fmt.Errorf("no trial, shard or telemetry records in %d input records", len(recs))
	}

	var rec *records.Recorder
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = records.NewRecorder(f)
		rec.SchemaHeader()
	}

	columns := []string{"point", "trials", "completed", "rounds", "max_load", "work", "unassigned"}
	if len(pointOrder) > 0 {
		fmt.Printf("%-24s %-7s %-10s %-11s %-9s %-12s %s\n",
			"point", "trials", "completed", "rounds", "max_load", "work", "unassigned")
		for _, key := range pointOrder {
			p := points[key]
			rounds := fmt.Sprintf("%d..%d", p.minRounds, p.maxRounds)
			if p.minRounds == p.maxRounds {
				rounds = fmt.Sprintf("%d", p.maxRounds)
			}
			fmt.Printf("%-24s %-7d %-10s %-11s %-9d %-12d %d\n",
				p.point, p.trials, fmt.Sprintf("%d/%d", p.completed, p.trials),
				rounds, p.maxLoad, p.work, p.unassigned)
			if rec != nil {
				rec.TableHeader(p.experiment, "aggregated wire trials", columns)
				rec.Row(p.experiment, p.point, []string{
					p.point,
					fmt.Sprintf("%d", p.trials),
					fmt.Sprintf("%d/%d", p.completed, p.trials),
					rounds,
					fmt.Sprintf("%d", p.maxLoad),
					fmt.Sprintf("%d", p.work),
					fmt.Sprintf("%d", p.unassigned),
				})
			}
		}
	}
	if len(shardOrder) > 0 {
		fmt.Printf("\n%-8s %-16s %-9s %-12s %-9s %s\n",
			"shard", "window", "rounds", "requests", "max_load", "streams")
		for _, key := range shardOrder {
			s := shards[key]
			fmt.Printf("%-8d %-16s %-9d %-12d %-9d %d\n",
				s.shard, fmt.Sprintf("[%d,%d)", s.lo, s.hi), s.rounds, s.work, s.maxLoad, s.streams)
			if rec != nil {
				shard, lo, hi := s.shard, s.lo, s.hi
				rounds := int(s.rounds)
				work := s.work
				maxLoad := s.maxLoad
				rec.Emit(records.Record{
					Type: records.TypeShard, Experiment: s.experiment,
					Shard: &shard, ServerLo: &lo, ServerHi: &hi,
					Rounds: &rounds, Work: &work, MaxLoad: &maxLoad,
				})
			}
		}
	}
	for _, exp := range telemetryOrder {
		agg := telemetryAgg[exp]
		label := "telemetry"
		if exp != "" {
			label = fmt.Sprintf("telemetry (%s)", exp)
		}
		fmt.Printf("\n%s: %d snapshot(s) folded — %d counters, %d gauges, %d histograms\n",
			label, telemetryStreams[exp], len(agg.Counters), len(agg.Gauges), len(agg.Histograms))
		if v, ok := agg.Counters["saer_rounds_total"]; ok {
			fmt.Printf("  rounds=%d requests=%d accepted=%d\n",
				v, agg.Counters["saer_requests_total"], agg.Counters["saer_accepted_total"])
		}
		rec.Telemetry(exp, "aggregate", agg)
	}
	for _, n := range notes {
		rec.Emit(n)
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			return err
		}
		fmt.Printf("\nwrote folded records to %s\n", jsonOut)
	}
	return nil
}

func readFile(path string) ([]records.Record, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	rs, err := records.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}
