// Command saer-client is the wire-mode load generator: it multiplexes
// all n simulated clients of a SAER/RAES execution over pooled
// connections to the shard servers named by -connect, drawing every
// destination from the same per-client RNG streams as the in-process
// engine. A loopback wire run therefore reproduces core.Run's result
// bit-for-bit — pass -verify to have the client check exactly that every
// trial. Per-round scatter/gather latency and request throughput are
// measured via internal/metrics; -records streams the trials, per-shard
// tallies and latency summary as saer-records JSONL for saer-aggregate.
//
// Examples:
//
//	saer-client -connect 127.0.0.1:7001,127.0.0.1:7002 -n 4096 -c 4
//	saer-client -connect $ADDRS -n 4096 -c 4 -trials 3 -verify
//	saer-client -connect $ADDRS -n 4096 -c 4 -records run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"time"

	"repro/internal/bipartite"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/records"
	"repro/internal/wire"
)

func main() {
	var rf cli.RunFlags
	rf.Register(flag.CommandLine)
	var (
		connect     = flag.String("connect", "", "comma-separated shard server addresses (required)")
		graphKind   = flag.String("graph", "regular", "graph family: regular, simple-regular, trust, erdos, almost, proximity, complete")
		n           = flag.Int("n", 4096, "number of clients and servers")
		delta       = flag.Int("delta", 0, "client degree (0 = ceil(log2(n)^2))")
		expectedDeg = flag.Int("expected-degree", 0, "proximity graphs: expected degree used to derive the radius (0 = delta)")
		topoMode    = flag.String("topology", "csr", "graph storage: csr, implicit or implicit-csr")
		trials      = flag.Int("trials", 1, "number of trials (trial t runs with protocol seed seed+1+t)")
		verify      = flag.Bool("verify", false, "also run each trial in-process and require bit-for-bit equality")
		track       = flag.Bool("track", false, "track per-round series (streamed to -records)")
		recordsPath = flag.String("records", "", "write a saer-records JSONL stream to this file")
	)
	flag.Parse()

	if err := run(rf, *connect, *graphKind, *n, *delta, *expectedDeg, *topoMode, *trials, *verify, *track, *recordsPath); err != nil {
		fmt.Fprintln(os.Stderr, "saer-client:", err)
		os.Exit(1)
	}
}

func run(rf cli.RunFlags, connect, graphKind string, n, delta, expectedDeg int, topoMode string,
	trials int, verify, track bool, recordsPath string) error {

	if connect == "" {
		return fmt.Errorf("-connect is required (start saer-server and pass its addresses)")
	}
	var addrs []string
	for _, a := range strings.Split(connect, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if trials < 1 {
		return fmt.Errorf("-trials must be at least 1")
	}
	cfg, err := rf.Config()
	if err != nil {
		return err
	}
	topology, err := cli.ParseTopologyMode(topoMode)
	if err != nil {
		return err
	}
	g, err := cli.GraphSpec{Kind: graphKind, N: n, Delta: delta, ExpectedDegree: expectedDeg, Seed: rf.Seed}.BuildTopology(topology)
	if err != nil {
		return err
	}
	if csr, ok := g.(*bipartite.Graph); ok {
		fmt.Printf("graph: %s\n", csr)
		if cfg.C <= 0 {
			st := csr.Stats()
			cfg.C = core.MinCAlmostRegular(st.Eta, st.RegularityRatio, cfg.D)
			fmt.Printf("  using the paper's prescribed c = %.1f\n", cfg.C)
		}
	} else {
		fmt.Printf("graph: %v\n", g)
		if cfg.C <= 0 {
			return fmt.Errorf("-c 0 (prescribed threshold) needs server degree statistics; pass an explicit -c with -topology implicit")
		}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg.TrackRounds = track
	cfg.TrackNeighborhoods = track
	// The per-shard records carry each window's max load, so load
	// tracking rides along whenever a record stream is requested.
	cfg.TrackLoads = cfg.TrackLoads || recordsPath != ""

	var rec *records.Recorder // nil (and nil-safe) without -records
	if recordsPath != "" {
		f, err := os.Create(recordsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = records.NewRecorder(f)
		rec.SchemaHeader()
	}
	point := fmt.Sprintf("%s n=%d", strings.ToLower(strings.TrimSpace(graphKind)), n)

	bank, err := wire.Dial(addrs, cfg.Variant, int32(cfg.Params().Capacity()), g.NumServers())
	if err != nil {
		return err
	}
	defer bank.Close()
	dr, err := core.NewDriver(g, cfg, bank)
	if err != nil {
		return err
	}
	fmt.Printf("wire bank: %d shards across %v\n\n", len(addrs), addrs)

	cores := runtime.GOMAXPROCS(0)
	var allLat []time.Duration
	var totalReqs int64
	var totalElapsed time.Duration
	var lastRes *core.Result
	for t := 0; t < trials; t++ {
		seed := cfg.Seed + uint64(t)
		dr.Reseed(seed)
		start := time.Now()
		res, err := dr.Run()
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		lat, reqs := bank.TakeMetrics()
		allLat = append(allLat, lat...)
		totalReqs += reqs
		totalElapsed += elapsed
		lastRes = res

		lsum := metrics.SummarizeLatencies(lat)
		tput := metrics.Throughput{Requests: reqs, Elapsed: elapsed, Cores: cores}
		fmt.Printf("trial %d (seed %d): rounds=%d completed=%v max_load=%d burned=%d unassigned=%d\n",
			t, seed, res.Rounds, res.Completed, res.MaxLoad, res.BurnedServers, res.UnassignedBalls)
		fmt.Printf("  round latency: %v\n", lsum)
		fmt.Printf("  throughput:    %v\n", tput)

		if verify {
			ref := cfg
			ref.Seed = seed
			want, err := ref.Run(g)
			if err != nil {
				return fmt.Errorf("in-process reference run: %w", err)
			}
			if !reflect.DeepEqual(res, want) {
				return fmt.Errorf("trial %d: wire result diverges from the in-process result", t)
			}
			fmt.Printf("  verify:        wire result == in-process result (bit-for-bit)\n")
		}
		rec.Trial("wire", point, t, seed, res)
		if len(res.PerRound) > 0 {
			rec.RoundSeries("wire", point, t, -1, res.PerRound)
		}
	}

	// Per-shard tallies: the service report of every shard, plus each
	// window's max load from the last trial.
	reports, err := bank.Reports()
	if err != nil {
		return err
	}
	windows := bank.Windows()
	fmt.Println()
	for i, rep := range reports {
		lo, hi := windows[i][0], windows[i][1]
		maxLoad := -1
		if lastRes != nil && len(lastRes.Loads) == g.NumServers() {
			maxLoad = 0
			for _, l := range lastRes.Loads[lo:hi] {
				if int(l) > maxLoad {
					maxLoad = int(l)
				}
			}
		}
		loadCol := ""
		if maxLoad >= 0 {
			loadCol = fmt.Sprintf(" max_load=%d", maxLoad)
		}
		fmt.Printf("shard %d [%d,%d): rounds=%d requests=%d accepted=%d decide=%v%s\n",
			i, lo, hi, rep.Rounds, rep.Requests, rep.Accepted,
			time.Duration(rep.DecideNanos).Round(time.Microsecond), loadCol)
		if rec != nil {
			shard, l, h := i, lo, hi
			rounds := int(rep.Rounds)
			work := int64(rep.Requests)
			r := records.Record{
				Type: records.TypeShard, Experiment: "wire", Point: point,
				Shard: &shard, ServerLo: &l, ServerHi: &h,
				Rounds: &rounds, Work: &work,
			}
			if maxLoad >= 0 {
				ml := maxLoad
				r.MaxLoad = &ml
			}
			rec.Emit(r)
		}
	}

	lsum := metrics.SummarizeLatencies(allLat)
	tput := metrics.Throughput{Requests: totalReqs, Elapsed: totalElapsed, Cores: cores}
	fmt.Printf("\nall trials: %v\n            %v\n", lsum, tput)
	rec.Note("wire", fmt.Sprintf("latency %v; throughput %v", lsum, tput))
	if rec != nil {
		if err := rec.Err(); err != nil {
			return err
		}
		fmt.Printf("\nwrote records to %s\n", recordsPath)
	}
	return nil
}
