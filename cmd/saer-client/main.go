// Command saer-client is the wire-mode load generator: it multiplexes
// all n simulated clients of a SAER/RAES execution over pooled
// connections to the shard servers named by -connect, drawing every
// destination from the same per-client RNG streams as the in-process
// engine. A loopback wire run therefore reproduces core.Run's result
// bit-for-bit — pass -verify to have the client check exactly that every
// trial. Per-round scatter/gather latency and request throughput are
// measured via internal/metrics; -records streams the trials, per-shard
// tallies and latency summary as saer-records JSONL for saer-aggregate.
//
// -sessions S multiplexes S protocol sessions over the same pooled
// connections (one frame-level session id each, one independent
// ServerShard per session on the server side) and fans the trial list
// out over them: trial t runs on session t mod S, so a -trials T sweep
// runs up to S trials concurrently. -pipeline bounds the frames in
// flight per shard connection. -workers parallelizes each trial's
// client phase. All three are pure performance knobs: every trial's
// result is bit-for-bit the in-process result regardless.
//
// Examples:
//
//	saer-client -connect 127.0.0.1:7001,127.0.0.1:7002 -n 4096 -c 4
//	saer-client -connect $ADDRS -n 4096 -c 4 -trials 8 -sessions 4 -verify
//	saer-client -connect $ADDRS -n 4096 -c 4 -workers 4 -records run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/bipartite"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/records"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	var rf cli.RunFlags
	rf.Register(flag.CommandLine)
	var (
		connect     = flag.String("connect", "", "comma-separated shard server addresses (required)")
		graphKind   = flag.String("graph", "regular", "graph family: regular, simple-regular, trust, erdos, almost, proximity, complete")
		n           = flag.Int("n", 4096, "number of clients and servers")
		delta       = flag.Int("delta", 0, "client degree (0 = ceil(log2(n)^2))")
		expectedDeg = flag.Int("expected-degree", 0, "proximity graphs: expected degree used to derive the radius (0 = delta)")
		topoMode    = flag.String("topology", "csr", "graph storage: csr, implicit or implicit-csr")
		trials      = flag.Int("trials", 1, "number of trials (trial t runs with protocol seed seed+1+t)")
		sessions    = flag.Int("sessions", 1, "multiplexed protocol sessions over the pooled connections; trial t runs on session t mod sessions")
		pipeline    = flag.Int("pipeline", 0, "max frames in flight per shard connection (0 = default)")
		verify      = flag.Bool("verify", false, "also run each trial in-process and require bit-for-bit equality")
		track       = flag.Bool("track", false, "track per-round series (streamed to -records)")
		recordsPath = flag.String("records", "", "write a saer-records JSONL stream to this file")
		debugAddr   = flag.String("debug-addr", "", "serve Prometheus /metrics and net/http/pprof on this address (empty = off)")
	)
	flag.Parse()

	opts := clientOpts{
		connect: *connect, graphKind: *graphKind, n: *n, delta: *delta,
		expectedDeg: *expectedDeg, topoMode: *topoMode, trials: *trials,
		sessions: *sessions, pipeline: *pipeline, verify: *verify,
		track: *track, recordsPath: *recordsPath, debugAddr: *debugAddr,
	}
	if err := run(rf, opts); err != nil {
		fmt.Fprintln(os.Stderr, "saer-client:", err)
		os.Exit(1)
	}
}

type clientOpts struct {
	connect     string
	graphKind   string
	n           int
	delta       int
	expectedDeg int
	topoMode    string
	trials      int
	sessions    int
	pipeline    int
	verify      bool
	track       bool
	recordsPath string
	debugAddr   string
}

// trialOut is one trial's collected outcome; the session goroutines fill
// these and the main goroutine prints and records them in trial order.
type trialOut struct {
	seed     uint64
	res      *core.Result
	elapsed  time.Duration
	lat      []time.Duration
	reqs     int64
	verified bool
}

func run(rf cli.RunFlags, o clientOpts) error {
	if o.connect == "" {
		return fmt.Errorf("-connect is required (start saer-server and pass its addresses)")
	}
	var addrs []string
	for _, a := range strings.Split(o.connect, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if o.trials < 1 {
		return fmt.Errorf("-trials must be at least 1")
	}
	if o.sessions < 1 {
		return fmt.Errorf("-sessions must be at least 1")
	}
	if o.sessions > o.trials {
		o.sessions = o.trials // surplus sessions would idle
	}
	cfg, err := rf.Config()
	if err != nil {
		return err
	}
	topology, err := cli.ParseTopologyMode(o.topoMode)
	if err != nil {
		return err
	}
	g, err := cli.GraphSpec{Kind: o.graphKind, N: o.n, Delta: o.delta, ExpectedDegree: o.expectedDeg, Seed: rf.Seed}.BuildTopology(topology)
	if err != nil {
		return err
	}
	if csr, ok := g.(*bipartite.Graph); ok {
		fmt.Printf("graph: %s\n", csr)
		if cfg.C <= 0 {
			st := csr.Stats()
			cfg.C = core.MinCAlmostRegular(st.Eta, st.RegularityRatio, cfg.D)
			fmt.Printf("  using the paper's prescribed c = %.1f\n", cfg.C)
		}
	} else {
		fmt.Printf("graph: %v\n", g)
		if cfg.C <= 0 {
			return fmt.Errorf("-c 0 (prescribed threshold) needs server degree statistics; pass an explicit -c with -topology implicit")
		}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg.TrackRounds = o.track
	cfg.TrackNeighborhoods = o.track
	// The per-shard records carry each window's max load, so load
	// tracking rides along whenever a record stream is requested.
	cfg.TrackLoads = cfg.TrackLoads || o.recordsPath != ""

	var rec *records.Recorder // nil (and nil-safe) without -records
	if o.recordsPath != "" {
		f, err := os.Create(o.recordsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = records.NewRecorder(f)
		rec.SchemaHeader()
	}
	point := fmt.Sprintf("%s n=%d", strings.ToLower(strings.TrimSpace(o.graphKind)), o.n)

	// One registry spans the drivers and the wire bank: the round-loop
	// series (saer_*) and the transport series (saer_wire_*) of every
	// session fold into it, and -debug-addr serves it live. Telemetry is
	// always on when -records or -debug-addr asks for it; results are
	// bit-for-bit identical either way (the -verify path checks exactly
	// that against an un-instrumented in-process run).
	var reg *telemetry.Registry
	if o.debugAddr != "" || rec != nil {
		reg = telemetry.NewRegistry()
	}
	if o.debugAddr != "" {
		dbg, err := telemetry.ServeDebug(o.debugAddr, reg)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("debug listening on %s\n", dbg.Addr())
	}
	cfg.Telemetry = reg

	bank, err := wire.DialConfig(addrs, cfg.Variant, int32(cfg.Params().Capacity()), g.NumServers(),
		wire.BankConfig{Sessions: o.sessions, Pipeline: o.pipeline, Telemetry: reg})
	if err != nil {
		return err
	}
	defer bank.Close()
	fmt.Printf("wire bank: %d shards across %v, %d sessions\n\n", len(addrs), addrs, o.sessions)

	// Fan the trial list out over the sessions: session s walks trials
	// s, s+S, s+2S, … on its own Driver. Output is collected per trial
	// and printed in order after the join, so the concurrency never
	// interleaves the report.
	outs := make([]trialOut, o.trials)
	errs := make([]error, o.sessions)
	wallStart := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < o.sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ses := bank.Session(s)
			dr, err := core.NewDriver(g, cfg, ses)
			if err != nil {
				errs[s] = err
				return
			}
			for t := s; t < o.trials; t += o.sessions {
				seed := cfg.Seed + uint64(t)
				dr.Reseed(seed)
				start := time.Now()
				res, err := dr.Run()
				if err != nil {
					errs[s] = fmt.Errorf("trial %d: %w", t, err)
					return
				}
				elapsed := time.Since(start)
				lat, reqs := ses.TakeMetrics()
				out := trialOut{seed: seed, res: res, elapsed: elapsed, lat: lat, reqs: reqs}
				if o.verify {
					ref := cfg
					ref.Seed = seed
					// The reference run stays un-instrumented: the comparison
					// then doubles as a telemetry-on vs -off equivalence
					// check, and the reference rounds don't inflate the
					// client's own counters.
					ref.Telemetry = nil
					want, err := ref.Run(g)
					if err != nil {
						errs[s] = fmt.Errorf("trial %d in-process reference run: %w", t, err)
						return
					}
					if !reflect.DeepEqual(res, want) {
						errs[s] = fmt.Errorf("trial %d: wire result diverges from the in-process result", t)
						return
					}
					out.verified = true
				}
				outs[t] = out
			}
		}(s)
	}
	wg.Wait()
	wallElapsed := time.Since(wallStart)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	cores := runtime.GOMAXPROCS(0)
	var allLat []time.Duration
	var totalReqs int64
	var lastRes *core.Result
	for t, out := range outs {
		allLat = append(allLat, out.lat...)
		totalReqs += out.reqs
		lastRes = out.res

		lsum := metrics.SummarizeLatencies(out.lat)
		tput := metrics.Throughput{Requests: out.reqs, Elapsed: out.elapsed, Cores: cores}
		fmt.Printf("trial %d (seed %d, session %d): rounds=%d completed=%v max_load=%d burned=%d unassigned=%d\n",
			t, out.seed, t%o.sessions, out.res.Rounds, out.res.Completed, out.res.MaxLoad,
			out.res.BurnedServers, out.res.UnassignedBalls)
		fmt.Printf("  round latency: %v\n", lsum)
		fmt.Printf("  throughput:    %v\n", tput)
		if out.verified {
			fmt.Printf("  verify:        wire result == in-process result (bit-for-bit)\n")
		}
		rec.Trial("wire", point, t, out.seed, out.res)
		if len(out.res.PerRound) > 0 {
			rec.RoundSeries("wire", point, t, -1, out.res.PerRound)
		}
	}

	// Per-shard tallies: the service report of every shard, plus each
	// window's max load from the last trial.
	reports, err := bank.Reports()
	if err != nil {
		return err
	}
	windows := bank.Windows()
	fmt.Println()
	for i, rep := range reports {
		lo, hi := windows[i][0], windows[i][1]
		maxLoad := -1
		if lastRes != nil && len(lastRes.Loads) == g.NumServers() {
			maxLoad = 0
			for _, l := range lastRes.Loads[lo:hi] {
				if int(l) > maxLoad {
					maxLoad = int(l)
				}
			}
		}
		loadCol := ""
		if maxLoad >= 0 {
			loadCol = fmt.Sprintf(" max_load=%d", maxLoad)
		}
		fmt.Printf("shard %d [%d,%d): rounds=%d requests=%d accepted=%d decide=%v%s\n",
			i, lo, hi, rep.Rounds, rep.Requests, rep.Accepted,
			time.Duration(rep.DecideNanos).Round(time.Microsecond), loadCol)
		if rec != nil {
			shard, l, h := i, lo, hi
			rounds := int(rep.Rounds)
			work := int64(rep.Requests)
			r := records.Record{
				Type: records.TypeShard, Experiment: "wire", Point: point,
				Shard: &shard, ServerLo: &l, ServerHi: &h,
				Rounds: &rounds, Work: &work,
			}
			if maxLoad >= 0 {
				ml := maxLoad
				r.MaxLoad = &ml
			}
			rec.Emit(r)
		}
	}

	// The all-trials throughput uses wall time of the whole fan-out, so
	// concurrent sessions show up as gained throughput rather than
	// double-counted elapsed time.
	lsum := metrics.SummarizeLatencies(allLat)
	tput := metrics.Throughput{Requests: totalReqs, Elapsed: wallElapsed, Cores: cores}
	fmt.Printf("\nall trials: %v\n            %v (wall)\n", lsum, tput)
	rec.Note("wire", fmt.Sprintf("latency %v; throughput %v", lsum, tput))
	rec.Telemetry("wire", "client", reg.Snapshot())
	if rec != nil {
		if err := rec.Err(); err != nil {
			return err
		}
		fmt.Printf("\nwrote records to %s\n", o.recordsPath)
	}
	return nil
}
