// Command saer-sim runs a single SAER or RAES execution on a generated
// client–server topology and prints the measured outcome next to the
// paper's bounds.
//
// Examples:
//
//	saer-sim -n 8192 -d 2 -c 4
//	saer-sim -graph trust -n 4096 -delta 64 -protocol raes -track
//	saer-sim -graph proximity -n 4096 -expected-degree 48 -rounds-csv rounds.csv
//	saer-sim -n 1048576 -topology implicit   # million clients in O(n) memory
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/bipartite"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	var (
		graphKind   = flag.String("graph", "regular", "graph family: regular, simple-regular, trust, erdos, almost, proximity, complete")
		n           = flag.Int("n", 4096, "number of clients and servers")
		delta       = flag.Int("delta", 0, "client degree (0 = ceil(log2(n)^2))")
		expectedDeg = flag.Int("expected-degree", 0, "proximity graphs: expected degree used to derive the radius (0 = delta)")
		d           = flag.Int("d", 2, "requests per client")
		c           = flag.Float64("c", 4, "threshold constant c (server capacity = floor(c*d)); 0 = the paper's prescribed value")
		protocol    = flag.String("protocol", "saer", "protocol: saer or raes")
		seed        = flag.Uint64("seed", 1, "random seed (graph seed = seed, protocol seed = seed+1)")
		workers     = flag.Int("workers", 0, "worker goroutines per phase (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "server shards of the dense round pipeline (0 = worker count, 1 = unsharded; identical results, different locality)")
		sparseDiv   = flag.Int("sparse-divisor", 0, "EngineAuto sparse-switch threshold: go sparse when active clients <= n/divisor (0 = default 4; identical results)")
		engineMode  = flag.String("engine", "auto", "round-loop engine: auto, dense or sparse (identical results, different wall-clock)")
		topoMode    = flag.String("topology", "csr", "graph storage: csr (materialized), implicit (O(n)-memory regenerative; families regular/erdos/trust/almost), or implicit-csr (the implicit sampler materialized — bit-for-bit identical runs to implicit)")
		maxRounds   = flag.Int("max-rounds", 0, "round cap (0 = default)")
		trackFlag   = flag.Bool("track", false, "track per-round S_t / r_t / K_t series (costs O(edges) per round)")
		roundsCSV   = flag.String("rounds-csv", "", "write the per-round series to this CSV file (implies -track)")
		loadsCSV    = flag.String("loads-csv", "", "write the final per-server loads to this CSV file")
		resultJSON  = flag.String("result-json", "", "write the full result as JSON to this file")
	)
	flag.Parse()

	if err := run(*graphKind, *n, *delta, *expectedDeg, *d, *c, *protocol, *engineMode, *topoMode, *seed, *workers, *shards, *sparseDiv, *maxRounds,
		*trackFlag, *roundsCSV, *loadsCSV, *resultJSON); err != nil {
		fmt.Fprintln(os.Stderr, "saer-sim:", err)
		os.Exit(1)
	}
}

func run(graphKind string, n, delta, expectedDeg, d int, c float64, protocol, engineMode, topoMode string, seed uint64,
	workers, shards, sparseDiv, maxRounds int, track bool, roundsCSV, loadsCSV, resultJSON string) error {

	topology, err := cli.ParseTopologyMode(topoMode)
	if err != nil {
		return err
	}
	g, err := cli.GraphSpec{Kind: graphKind, N: n, Delta: delta, ExpectedDegree: expectedDeg, Seed: seed}.BuildTopology(topology)
	if err != nil {
		return err
	}
	if csr, ok := g.(*bipartite.Graph); ok {
		st := csr.Stats()
		fmt.Printf("graph: %s\n", csr)
		fmt.Printf("  eta=%.3f rho=%.3f (paper's prescribed c for this graph: %.1f)\n",
			st.Eta, st.RegularityRatio, core.MinCAlmostRegular(st.Eta, st.RegularityRatio, d))
		if c <= 0 {
			c = core.MinCAlmostRegular(st.Eta, st.RegularityRatio, d)
		}
	} else {
		// Implicit topologies expose no server-side degree statistics
		// without an O(n·Δ) materialization pass, so the prescribed-c
		// shortcut is unavailable.
		fmt.Printf("graph: %v\n", g)
		if c <= 0 {
			return fmt.Errorf("-c 0 (prescribed threshold) needs server degree statistics; pass an explicit -c with -topology implicit")
		}
	}

	variant, err := cli.ParseProtocol(protocol)
	if err != nil {
		return err
	}

	engine, err := cli.ParseEngineMode(engineMode)
	if err != nil {
		return err
	}
	opts := core.Options{
		Engine:              engine,
		Shards:              shards,
		SparseSwitchDivisor: sparseDiv,
		TrackRounds:         track || roundsCSV != "",
		TrackNeighborhoods:  track || roundsCSV != "",
		TrackLoads:          loadsCSV != "" || resultJSON != "",
	}
	params := core.Params{D: d, C: c, Seed: seed + 1, Workers: workers, MaxRounds: maxRounds}
	res, err := core.Run(g, variant, params, opts)
	if err != nil {
		return err
	}

	fmt.Printf("\n%s\n", res)
	fmt.Printf("\ntheorem check:\n%s\n", analysis.CheckTheorem1(res))

	if roundsCSV != "" {
		if err := writeFile(roundsCSV, func(f *os.File) error { return trace.WriteRoundsCSV(f, res) }); err != nil {
			return err
		}
		fmt.Printf("\nwrote per-round series to %s\n", roundsCSV)
	}
	if loadsCSV != "" {
		if err := writeFile(loadsCSV, func(f *os.File) error { return trace.WriteLoadsCSV(f, res.Loads) }); err != nil {
			return err
		}
		fmt.Printf("wrote per-server loads to %s\n", loadsCSV)
	}
	if resultJSON != "" {
		if err := writeFile(resultJSON, func(f *os.File) error { return trace.WriteResultJSON(f, res) }); err != nil {
			return err
		}
		fmt.Printf("wrote result JSON to %s\n", resultJSON)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
