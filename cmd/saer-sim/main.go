// Command saer-sim runs a single SAER or RAES execution on a generated
// client–server topology and prints the measured outcome next to the
// paper's bounds. With -churn-epochs it instead drives a continuous-time
// churn scenario (internal/churn) over the generated graph: per epoch a
// fraction of the clients rewires its admissible edges, a failure wave
// can take out servers mid-scenario (with a selectable failed-load
// policy), half the carried load expires, and every client re-places its
// d balls — printing one line per epoch.
//
// Examples:
//
//	saer-sim -n 8192 -d 2 -c 4
//	saer-sim -graph trust -n 4096 -delta 64 -protocol raes -track
//	saer-sim -graph proximity -n 4096 -expected-degree 48 -rounds-csv rounds.csv
//	saer-sim -n 1048576 -topology implicit   # million clients in O(n) memory
//	saer-sim -n 65536 -topology implicit -churn-epochs 12 -churn-rewire 0.1
//	saer-sim -n 4096 -churn-epochs 12 -churn-fail 0.25 -churn-policy reinject
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/bipartite"
	"repro/internal/churn"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	var rf cli.RunFlags
	rf.Register(flag.CommandLine)
	var (
		graphKind   = flag.String("graph", "regular", "graph family: regular, simple-regular, trust, erdos, almost, proximity, complete")
		n           = flag.Int("n", 4096, "number of clients and servers")
		delta       = flag.Int("delta", 0, "client degree (0 = ceil(log2(n)^2))")
		expectedDeg = flag.Int("expected-degree", 0, "proximity graphs: expected degree used to derive the radius (0 = delta)")
		topoMode    = flag.String("topology", "csr", "graph storage: csr (materialized), implicit (O(n)-memory regenerative; families regular/erdos/trust/almost), or implicit-csr (the implicit sampler materialized — bit-for-bit identical runs to implicit)")
		churnEpochs = flag.Int("churn-epochs", 0, "run a churn scenario of this many epochs instead of a single execution (0 = off)")
		churnRewire = flag.Float64("churn-rewire", 0.1, "churn scenario: fraction of clients rewiring their edges per epoch")
		churnExpiry = flag.Float64("churn-expiry", 0.5, "churn scenario: fraction of carried load expiring per epoch")
		churnFail   = flag.Float64("churn-fail", 0, "churn scenario: fraction of servers failing one third in (recovering two thirds in; 0 = no wave)")
		churnDemand = flag.Float64("churn-demand", 1, "churn scenario: fraction of present clients placing d fresh balls per epoch (below 1 leaves spare capacity for re-injection)")
		churnPolicy = flag.String("churn-policy", "drop", "churn scenario: failed-load policy: drop, reinject or saturate")
		churnStore  = flag.String("churn-backend", "implicit", "churn scenario: rewired-row storage: implicit (regenerate on demand) or csr-patch (patch arena); identical results")
		trackFlag   = flag.Bool("track", false, "track per-round S_t / r_t / K_t series (costs O(edges) per round)")
		roundsCSV   = flag.String("rounds-csv", "", "write the per-round series to this CSV file (implies -track)")
		loadsCSV    = flag.String("loads-csv", "", "write the final per-server loads to this CSV file")
		resultJSON  = flag.String("result-json", "", "write the full result as JSON to this file")
	)
	flag.Parse()

	var err error
	if *churnEpochs > 0 {
		if *trackFlag || *roundsCSV != "" || *loadsCSV != "" || *resultJSON != "" {
			fmt.Fprintln(os.Stderr, "saer-sim: -track, -rounds-csv, -loads-csv and -result-json apply to single runs and are not supported with -churn-epochs")
			os.Exit(1)
		}
		err = runChurn(rf, *graphKind, *n, *delta, *expectedDeg, *topoMode,
			*churnEpochs, *churnRewire, *churnExpiry, *churnFail, *churnDemand, *churnPolicy, *churnStore)
	} else {
		err = run(rf, *graphKind, *n, *delta, *expectedDeg, *topoMode,
			*trackFlag, *roundsCSV, *loadsCSV, *resultJSON)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "saer-sim:", err)
		os.Exit(1)
	}
}

// runChurn drives the continuous-time churn scenario over the generated
// base graph: per-epoch rewiring at -churn-rewire (family-matched for
// erdos bases, trust-subset rows otherwise), an optional
// failure/recovery wave, load expiry, and per-epoch demand, printing
// one line per epoch.
func runChurn(rf cli.RunFlags, graphKind string, n, delta, expectedDeg int, topoMode string,
	epochs int, rewireFrac, expiry, failFrac, demandFrac float64, policyName, backendName string) error {

	if rf.C <= 0 {
		return fmt.Errorf("the churn scenario needs an explicit -c")
	}
	cfg, err := rf.Config()
	if err != nil {
		return err
	}
	topology, err := cli.ParseTopologyMode(topoMode)
	if err != nil {
		return err
	}
	base, err := cli.GraphSpec{Kind: graphKind, N: n, Delta: delta, ExpectedDegree: expectedDeg, Seed: rf.Seed}.BuildTopology(topology)
	if err != nil {
		return err
	}
	policy, err := churn.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	backend, err := cli.ParseChurnBackend(backendName)
	if err != nil {
		return err
	}
	k := delta
	if k <= 0 {
		k = cli.DefaultDelta(n)
	}
	// Rewiring regenerates a client's row from the family's churn
	// sampler: erdos graphs rewire as Erdős–Rényi rows of the same edge
	// probability; every other family rewires as a k-server trust subset
	// (for regular and trust bases that matches the base distribution;
	// for almost/proximity/complete it is an approximation — the churned
	// clients drift toward the trust-subset family, which the header
	// states).
	sampler := churn.TrustSampler(base.NumServers(), k)
	samplerName := fmt.Sprintf("trust-subset k=%d", k)
	if strings.ToLower(strings.TrimSpace(graphKind)) == "erdos" {
		p := float64(k) / float64(base.NumServers())
		sampler = churn.ErdosRenyiSampler(base.NumServers(), p)
		samplerName = fmt.Sprintf("erdos p=%.3g", p)
	}
	topo, err := churn.New(churn.Config{
		Base:    base,
		Sampler: sampler,
		Seed:    rf.Seed + 2,
		Backend: backend,
	})
	if err != nil {
		return err
	}
	sch, err := churn.NewScheduler(topo, churn.SchedulerConfig{
		Protocol:   cfg,
		LoadExpiry: expiry,
		Policy:     policy,
	}, rf.Seed+3)
	if err != nil {
		return err
	}
	fmt.Printf("churn scenario on %v\n", topo)
	fmt.Printf("  rewiring sampler: %s\n", samplerName)
	fmt.Printf("  %d epochs, rewire %.0f%%/epoch, load expiry %.0f%%/epoch, failure wave %.0f%% (policy %s), capacity %d\n\n",
		epochs, rewireFrac*100, expiry*100, failFrac*100, policy, cfg.Params().Capacity())
	fmt.Printf("%-6s %-8s %-8s %-7s %-7s %-9s %-9s %-10s %-11s %s\n",
		"epoch", "rewired", "failed", "rounds", "done", "max_load", "mean", "reinject", "unassigned", "burned_at_start")
	src := rng.New(rf.Seed + 4)
	var wave []int32
	rewireCount := int(rewireFrac*float64(n) + 0.5)
	demandCount := int(demandFrac*float64(n) + 0.5)
	for e := 1; e <= epochs; e++ {
		ev := churn.EpochEvent{Dt: 1}
		if demandCount >= n {
			ev.RedemandAll = true
		} else if demandCount > 0 {
			ev.Demand = topo.SamplePresent(src, demandCount)
		}
		if rewireCount > 0 {
			ev.Rewire = topo.SamplePresent(src, rewireCount)
		}
		if failFrac > 0 {
			switch e {
			case epochs/3 + 1:
				wave = topo.SampleLive(src, int(failFrac*float64(base.NumServers())+0.5))
				ev.Fail = wave
			case 2*epochs/3 + 1:
				ev.Recover = wave
			}
		}
		out, err := sch.Step(ev)
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %-8d %-8d %-7d %-7s %-9d %-9.2f %-10d %-11d %d\n",
			out.Epoch, out.Rewired, out.FailedServers, out.Rounds, boolMark(out.Completed),
			out.MaxLoad, out.MeanLoad, out.ReinjectedBalls, out.UnassignedBalls, out.BurnedAtStart)
	}
	if p := sch.PendingReinjections(); p > 0 {
		fmt.Printf("\n%d balls still pending re-injection\n", p)
	}
	return nil
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func run(rf cli.RunFlags, graphKind string, n, delta, expectedDeg int, topoMode string,
	track bool, roundsCSV, loadsCSV, resultJSON string) error {

	cfg, err := rf.Config()
	if err != nil {
		return err
	}
	topology, err := cli.ParseTopologyMode(topoMode)
	if err != nil {
		return err
	}
	g, err := cli.GraphSpec{Kind: graphKind, N: n, Delta: delta, ExpectedDegree: expectedDeg, Seed: rf.Seed}.BuildTopology(topology)
	if err != nil {
		return err
	}
	if csr, ok := g.(*bipartite.Graph); ok {
		st := csr.Stats()
		fmt.Printf("graph: %s\n", csr)
		fmt.Printf("  eta=%.3f rho=%.3f (paper's prescribed c for this graph: %.1f)\n",
			st.Eta, st.RegularityRatio, core.MinCAlmostRegular(st.Eta, st.RegularityRatio, cfg.D))
		if cfg.C <= 0 {
			cfg.C = core.MinCAlmostRegular(st.Eta, st.RegularityRatio, cfg.D)
		}
	} else {
		// Implicit topologies expose no server-side degree statistics
		// without an O(n·Δ) materialization pass, so the prescribed-c
		// shortcut is unavailable.
		fmt.Printf("graph: %v\n", g)
		if cfg.C <= 0 {
			return fmt.Errorf("-c 0 (prescribed threshold) needs server degree statistics; pass an explicit -c with -topology implicit")
		}
	}

	cfg.TrackRounds = track || roundsCSV != ""
	cfg.TrackNeighborhoods = track || roundsCSV != ""
	cfg.TrackLoads = loadsCSV != "" || resultJSON != ""
	res, err := cfg.Run(g)
	if err != nil {
		return err
	}

	fmt.Printf("\n%s\n", res)
	fmt.Printf("\ntheorem check:\n%s\n", analysis.CheckTheorem1(res))

	if roundsCSV != "" {
		if err := writeFile(roundsCSV, func(f *os.File) error { return trace.WriteRoundsCSV(f, res) }); err != nil {
			return err
		}
		fmt.Printf("\nwrote per-round series to %s\n", roundsCSV)
	}
	if loadsCSV != "" {
		if err := writeFile(loadsCSV, func(f *os.File) error { return trace.WriteLoadsCSV(f, res.Loads) }); err != nil {
			return err
		}
		fmt.Printf("wrote per-server loads to %s\n", loadsCSV)
	}
	if resultJSON != "" {
		if err := writeFile(resultJSON, func(f *os.File) error { return trace.WriteResultJSON(f, res) }); err != nil {
			return err
		}
		fmt.Printf("wrote result JSON to %s\n", resultJSON)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
