package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchText = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkSAERRun/n=16384-1         	     765	   1558490 ns/op	  786529 B/op	      55 allocs/op
BenchmarkSAERRun/n=65536-1         	     270	   4110217 ns/op	 3021982 B/op	      56 allocs/op
BenchmarkSAERRun/n=65536-1         	     272	   4090000 ns/op	 3021990 B/op	      56 allocs/op
BenchmarkGraphGen/regular-1        	      31	  36228766 ns/op
PASS
ok  	repro	92.269s
`

func TestParseBench(t *testing.T) {
	entries, err := parseBench(strings.NewReader(sampleBenchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("parsed %d entries, want 4", len(entries))
	}
	first := entries[0]
	if first.Name != "BenchmarkSAERRun/n=16384-1" || first.Iterations != 765 || first.NsPerOp != 1558490 {
		t.Errorf("first entry wrong: %+v", first)
	}
	if first.BytesPerOp == nil || *first.BytesPerOp != 786529 {
		t.Errorf("first entry bytes/op wrong: %+v", first.BytesPerOp)
	}
	if first.AllocsPerOp == nil || *first.AllocsPerOp != 55 {
		t.Errorf("first entry allocs/op wrong: %+v", first.AllocsPerOp)
	}
	last := entries[3]
	if last.Name != "BenchmarkGraphGen/regular-1" || last.BytesPerOp != nil {
		t.Errorf("entry without -benchmem fields parsed wrong: %+v", last)
	}
}

func TestParseBenchSkipsNonBenchmarkLines(t *testing.T) {
	entries, err := parseBench(strings.NewReader("PASS\nok repro 1.0s\nBenchmarkBroken abc\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("parsed %d entries from garbage, want 0", len(entries))
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSAERRun/n=65536-1":  "BenchmarkSAERRun/n=65536",
		"BenchmarkSAERRun/n=65536-16": "BenchmarkSAERRun/n=65536",
		"BenchmarkFoo":                "BenchmarkFoo",
		"BenchmarkFoo/sub-case":       "BenchmarkFoo/sub-case",
		"BenchmarkFoo/sub-case-4":     "BenchmarkFoo/sub-case",
		"BenchmarkFoo-":               "BenchmarkFoo-",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBestNsTakesMinimumAcrossRepeats(t *testing.T) {
	entries := []Entry{
		{Name: "BenchmarkX-1", NsPerOp: 120},
		{Name: "BenchmarkX-1", NsPerOp: 100},
	}
	best := bestNs(entries)
	if len(best) != 1 || best["BenchmarkX-1"] != 100 {
		t.Fatalf("bestNs = %v, want map[BenchmarkX-1:100]", best)
	}
}

func TestDiffSnapshotsFlagsRegression(t *testing.T) {
	base := []Entry{
		{Name: "BenchmarkA-1", NsPerOp: 1000},
		{Name: "BenchmarkB-1", NsPerOp: 2000},
		{Name: "BenchmarkGone-1", NsPerOp: 10},
	}
	next := []Entry{
		{Name: "BenchmarkA-4", NsPerOp: 1200}, // +20%: within a 25% budget
		{Name: "BenchmarkB-4", NsPerOp: 4100}, // +105%: regression
		{Name: "BenchmarkNew-4", NsPerOp: 5},
	}
	results, skipped := diffSnapshots(base, next, 0.25)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	byName := map[string]diffResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if byName["BenchmarkA-4"].Regress {
		t.Error("BenchmarkA (+20%) flagged as regression at 25% threshold")
	}
	if !byName["BenchmarkB-4"].Regress {
		t.Error("BenchmarkB (+105%) not flagged as regression")
	}
	if len(skipped) != 2 {
		t.Errorf("skipped = %v, want the two unmatched benchmarks", skipped)
	}
}

// TestDiffSnapshotsOneCoreVsMultiCore pins the cross-GOMAXPROCS matching
// rules: a GOMAXPROCS=1 snapshot carries no -N suffix at all (so a
// sub-benchmark legitimately named "…-2" must not lose its digits), and
// a multi-core snapshot of the same suite must still pair with it.
func TestDiffSnapshotsOneCoreVsMultiCore(t *testing.T) {
	base := []Entry{ // recorded on a 1-core box: no GOMAXPROCS suffix
		{Name: "BenchmarkBaselines/greedy-best-of-2", NsPerOp: 1000},
		{Name: "BenchmarkBaselines/one-choice", NsPerOp: 500},
	}
	next := []Entry{ // recorded on a 4-core runner
		{Name: "BenchmarkBaselines/greedy-best-of-2-4", NsPerOp: 3000}, // 3x: must be caught
		{Name: "BenchmarkBaselines/one-choice-4", NsPerOp: 510},
	}
	results, skipped := diffSnapshots(base, next, 0.25)
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v, want every benchmark paired", skipped)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	regressed := 0
	for _, r := range results {
		if r.Regress {
			regressed++
			if r.BaseNs != 1000 || r.NewNs != 3000 {
				t.Errorf("regression paired wrong measurements: %+v", r)
			}
		}
	}
	if regressed != 1 {
		t.Errorf("%d regressions flagged, want exactly the 3x greedy-best-of-2", regressed)
	}
	// And the reverse direction: multi-core baseline, 1-core candidate.
	revResults, revSkipped := diffSnapshots(next, base, 0.25)
	if len(revSkipped) != 0 || len(revResults) != 2 {
		t.Errorf("reverse pairing failed: results=%+v skipped=%v", revResults, revSkipped)
	}
}

// TestRunDiffEndToEnd verifies the CI contract: a 2x slowdown must make
// the diff subcommand return an error, and an unchanged snapshot must
// pass. This is the locally-verified stand-in for the injected-slowdown
// check the bench-diff job performs.
func TestRunDiffEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, entries []Entry) string {
		path := filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := writeJSON(&buf, entries); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", []Entry{
		{Name: "BenchmarkSAERRun/n=65536-1", Iterations: 270, NsPerOp: 4110217},
	})
	same := write("same.json", []Entry{
		{Name: "BenchmarkSAERRun/n=65536-4", Iterations: 270, NsPerOp: 4200000},
	})
	slow := write("slow.json", []Entry{
		{Name: "BenchmarkSAERRun/n=65536-4", Iterations: 135, NsPerOp: 8220434}, // injected 2x slowdown
	})

	var out bytes.Buffer
	if err := runDiff([]string{"-base", base, "-new", same}, &out); err != nil {
		t.Fatalf("unchanged snapshot failed the diff: %v\n%s", err, out.String())
	}
	out.Reset()
	err := runDiff([]string{"-base", base, "-new", slow}, &out)
	if err == nil {
		t.Fatalf("2x slowdown passed the diff:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("diff output does not mark the regression:\n%s", out.String())
	}
}

// TestRunDiffRoundTripsRealSnapshot guards compatibility with the
// committed awk-era snapshot format: parse text, write JSON, read it
// back, diff against itself.
func TestRunDiffRoundTripsRealSnapshot(t *testing.T) {
	entries, err := parseBench(strings.NewReader(sampleBenchText))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeJSON(f, entries); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := runDiff([]string{"-base", path, "-new", path}, &out); err != nil {
		t.Fatalf("self-diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "within +25%") {
		t.Errorf("self-diff summary missing:\n%s", out.String())
	}
}

const sampleScaleText = `goos: linux
goarch: amd64
pkg: repro
BenchmarkScaleFullRun/auto         	       2	 500000000 ns/op
BenchmarkScaleFullRun/auto         	       2	 490000000 ns/op
BenchmarkScaleFullRun/auto-2       	       4	 260000000 ns/op
BenchmarkScaleFullRun/auto-4       	       8	 140000000 ns/op
BenchmarkScaleFullRun/steal=off    	       2	 520000000 ns/op
BenchmarkScaleFullRun/steal=off-2  	       3	 300000000 ns/op
BenchmarkScaleFullRun/best-of-2    	       5	 100000000 ns/op
PASS
ok  	repro	42.0s
`

func TestScaleCurves(t *testing.T) {
	entries, err := parseBench(strings.NewReader(sampleScaleText))
	if err != nil {
		t.Fatal(err)
	}
	curves := scaleCurves(entries)
	if len(curves) != 3 {
		t.Fatalf("got %d curves, want 3: %+v", len(curves), curves)
	}
	// Curves are sorted by name: auto, best-of-2, steal=off.
	auto := curves[0]
	if auto.Name != "BenchmarkScaleFullRun/auto" || len(auto.Curve) != 3 {
		t.Fatalf("auto curve wrong: %+v", auto)
	}
	if auto.Curve[0].CPUs != 1 || auto.Curve[0].NsPerOp != 490000000 {
		t.Errorf("1-CPU point should keep the min of repeats: %+v", auto.Curve[0])
	}
	if auto.Curve[0].Speedup != 1 {
		t.Errorf("1-CPU speedup %v, want 1", auto.Curve[0].Speedup)
	}
	if got := auto.Curve[2]; got.CPUs != 4 || got.Speedup <= 3.4 || got.Speedup >= 3.6 {
		t.Errorf("4-CPU point wrong (want speedup 490/140 = 3.5): %+v", got)
	}
	// A sub-benchmark whose name ends in a digit segment only loses a
	// suffix when one was appended: best-of-2 ran on 1 CPU, so its raw
	// name carries no GOMAXPROCS suffix, but normalizeName still strips
	// the "-2" — the curve keys on the normalized name with cpus=1.
	best := curves[1]
	if best.Name != "BenchmarkScaleFullRun/best-of" && best.Name != "BenchmarkScaleFullRun/best-of-2" {
		t.Fatalf("unexpected curve name: %q", best.Name)
	}
	so := curves[2]
	if so.Name != "BenchmarkScaleFullRun/steal=off" || len(so.Curve) != 2 {
		t.Fatalf("steal=off curve wrong: %+v", so)
	}
	if so.Curve[1].CPUs != 2 || so.Curve[1].Speedup == 0 {
		t.Errorf("steal=off 2-CPU point wrong: %+v", so.Curve[1])
	}
}

func TestRunScaleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "scale.txt")
	out := filepath.Join(dir, "scale.json")
	if err := os.WriteFile(in, []byte(sampleScaleText), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScale([]string{"-in", in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"cpus": 4`) || !strings.Contains(string(data), `"speedup"`) {
		t.Errorf("scale JSON missing expected fields:\n%s", data)
	}
}

// TestRunHistory renders a three-snapshot trajectory: names pair across
// different -GOMAXPROCS suffixes, a benchmark added mid-history shows
// "-" for the snapshots that predate it, and the trend column reports
// last/first.
func TestRunHistory(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, entries []Entry) string {
		path := filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := writeJSON(&buf, entries); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("BENCH_2026-07-27.json", []Entry{
		{Name: "BenchmarkSAERRun/n=65536-1", NsPerOp: 4000000},
		{Name: "BenchmarkSAERRun/n=65536-1", NsPerOp: 4100000}, // repeat: min wins
	})
	mid := write("BENCH_2026-08-01.json", []Entry{
		{Name: "BenchmarkSAERRun/n=65536-4", NsPerOp: 3000000},
		{Name: "BenchmarkGraphGen/regular-4", NsPerOp: 9000000},
	})
	smoke := write("BENCH_SMOKE.json", []Entry{
		{Name: "BenchmarkSAERRun/n=65536-4", NsPerOp: 2000000},
		{Name: "BenchmarkGraphGen/regular-4", NsPerOp: 9500000},
	})

	var out bytes.Buffer
	if err := runHistory([]string{old, mid, smoke}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"2026-07-27", "2026-08-01", "SMOKE", // column labels
		"BenchmarkSAERRun/n=65536", "4000000", "3000000", "2000000",
		"-50.0%", // 2e6 / 4e6
		"BenchmarkGraphGen/regular",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("history output missing %q:\n%s", want, text)
		}
	}
	// GraphGen predates nothing in the first snapshot: its first column
	// must be "-" and its trend computed from the snapshots it is in.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "BenchmarkGraphGen") {
			if !strings.Contains(line, "-") || !strings.Contains(line, "+5.6%") {
				t.Errorf("GraphGen row wrong: %q", line)
			}
		}
	}

	if err := runHistory([]string{old}, &out); err == nil {
		t.Error("single-snapshot history must error")
	}
}
