package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement, in the BENCH_<date>.json schema
// that scripts/bench.sh has committed since PR 1.
type Entry struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// parseBench extracts the benchmark lines from `go test -bench` text
// output. Lines without an ns/op measurement (headers, PASS, ok) are
// skipped; repeated measurements of the same benchmark (-count > 1) are
// kept as separate entries.
func parseBench(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: fields[0], Iterations: iters, NsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = val
			case "B/op":
				v := val
				e.BytesPerOp = &v
			case "allocs/op":
				v := val
				e.AllocsPerOp = &v
			}
		}
		if e.NsPerOp < 0 {
			continue
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// writeJSON renders entries in the snapshot format (a JSON array, two-
// space indented, trailing newline).
func writeJSON(w io.Writer, entries []Entry) error {
	if entries == nil {
		entries = []Entry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// readJSON loads a snapshot written by writeJSON (or by the pre-benchjson
// awk pipeline, which used the same schema).
func readJSON(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

// runParse is the `benchjson parse` subcommand.
func runParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ContinueOnError)
	in := fs.String("in", "", "benchmark text input (default stdin)")
	out := fs.String("out", "", "JSON output (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	entries, err := parseBench(r)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeJSON(w, entries)
}
