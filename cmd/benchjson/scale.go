package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// ScalePoint is one CPU count's measurement of a benchmark: the minimum
// ns/op across repeats and the speedup relative to the same benchmark's
// 1-CPU point (0 when no 1-CPU point was recorded).
type ScalePoint struct {
	CPUs    int     `json:"cpus"`
	NsPerOp float64 `json:"ns_per_op"`
	Speedup float64 `json:"speedup,omitempty"`
}

// ScaleCurve is a benchmark's multi-core scaling curve: its points in
// increasing CPU order, keyed by the suffix-stripped name.
type ScaleCurve struct {
	Name  string       `json:"name"`
	Curve []ScalePoint `json:"curve"`
}

// cpusOf splits a raw benchmark name into its base name and the CPU
// count the testing package encoded as a trailing -GOMAXPROCS suffix
// (absent means 1 — the 1-CPU run of a -cpu 1,2,4 sweep carries no
// suffix). Only an all-digit final segment counts, so sub-benchmarks
// named with dashes survive.
func cpusOf(name string) (string, int) {
	base := normalizeName(name)
	if base == name {
		return name, 1
	}
	cpus, err := strconv.Atoi(name[len(base)+1:])
	if err != nil || cpus <= 0 {
		return name, 1
	}
	return base, cpus
}

// scaleCurves groups entries by suffix-stripped name into per-benchmark
// scaling curves: min ns/op per (name, cpus), speedups anchored on each
// curve's 1-CPU point, curves sorted by name and points by CPU count.
func scaleCurves(entries []Entry) []ScaleCurve {
	type key struct {
		name string
		cpus int
	}
	best := make(map[key]float64)
	for _, e := range entries {
		name, cpus := cpusOf(e.Name)
		k := key{name, cpus}
		if cur, ok := best[k]; !ok || e.NsPerOp < cur {
			best[k] = e.NsPerOp
		}
	}
	byName := make(map[string][]ScalePoint)
	for k, ns := range best {
		byName[k.name] = append(byName[k.name], ScalePoint{CPUs: k.cpus, NsPerOp: ns})
	}
	out := make([]ScaleCurve, 0, len(byName))
	for name, pts := range byName {
		sort.Slice(pts, func(i, j int) bool { return pts[i].CPUs < pts[j].CPUs })
		var oneCPU float64
		for _, p := range pts {
			if p.CPUs == 1 {
				oneCPU = p.NsPerOp
			}
		}
		for i := range pts {
			if oneCPU > 0 && pts[i].NsPerOp > 0 {
				pts[i].Speedup = oneCPU / pts[i].NsPerOp
			}
		}
		out = append(out, ScaleCurve{Name: name, Curve: pts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// writeScaleJSON renders curves like writeJSON renders entries (a JSON
// array, two-space indented, trailing newline).
func writeScaleJSON(w io.Writer, curves []ScaleCurve) error {
	if curves == nil {
		curves = []ScaleCurve{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(curves)
}

// runScale is the `benchjson scale` subcommand: it reads the text output
// of a `go test -bench -cpu 1,2,4` sweep and writes per-benchmark
// scaling curves (min ns/op and speedup per CPU count) as JSON — the
// BENCH_SCALE_<date>.json format scripts/scale.sh commits.
func runScale(args []string) error {
	fs := flag.NewFlagSet("scale", flag.ContinueOnError)
	in := fs.String("in", "", "benchmark text input (default stdin)")
	out := fs.String("out", "", "JSON output (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	entries, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeScaleJSON(w, scaleCurves(entries))
}
