package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
)

// normalizeName strips the trailing -GOMAXPROCS suffix the testing
// package appends to benchmark names (BenchmarkX/n=65536-4 → …-4), so
// snapshots recorded on machines with different CPU counts compare by
// the same key. Sub-benchmark names containing dashes are unaffected:
// only an all-digit final segment is removed.
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// bestNs reduces entries to the minimum ns/op per raw benchmark name
// (repeats from -count > 1 share the raw name). The minimum is the
// standard noise-tolerant statistic for benchmark comparison: scheduling
// hiccups only ever make a measurement slower, so the fastest repeat is
// the closest to the true cost.
func bestNs(entries []Entry) map[string]float64 {
	best := make(map[string]float64, len(entries))
	for _, e := range entries {
		if cur, ok := best[e.Name]; !ok || e.NsPerOp < cur {
			best[e.Name] = e.NsPerOp
		}
	}
	return best
}

// snapshotIndex resolves benchmark names across snapshots recorded with
// different GOMAXPROCS. Raw names are authoritative; the normalized
// (suffix-stripped) view is a fallback, because a snapshot from a
// GOMAXPROCS=1 machine carries no suffix at all while a multi-core one
// does — and a sub-benchmark legitimately named "…/best-of-2" must not
// lose its "-2" when the other side recorded it as "…/best-of-2-4".
type snapshotIndex struct {
	raw  map[string]float64  // min ns/op by raw name
	norm map[string]float64  // min ns/op by normalized name
	back map[string][]string // normalized name -> raw names mapping to it
}

func indexSnapshot(entries []Entry) *snapshotIndex {
	idx := &snapshotIndex{
		raw:  bestNs(entries),
		norm: make(map[string]float64),
		back: make(map[string][]string),
	}
	for name, ns := range idx.raw {
		n := normalizeName(name)
		if cur, ok := idx.norm[n]; !ok || ns < cur {
			idx.norm[n] = ns
		}
		idx.back[n] = append(idx.back[n], name)
	}
	return idx
}

// lookup finds the baseline measurement for a candidate raw name, trying
// exact raw match, then the candidate's normalized form against raw
// baseline names (multi-core candidate vs 1-core baseline), then the
// normalized views of both sides. It returns the matched ns/op and the
// baseline raw names the match consumed.
func (idx *snapshotIndex) lookup(name string) (float64, []string, bool) {
	if ns, ok := idx.raw[name]; ok {
		return ns, []string{name}, true
	}
	if ns, ok := idx.raw[normalizeName(name)]; ok {
		return ns, []string{normalizeName(name)}, true
	}
	if ns, ok := idx.norm[name]; ok {
		return ns, idx.back[name], true
	}
	if ns, ok := idx.norm[normalizeName(name)]; ok {
		return ns, idx.back[normalizeName(name)], true
	}
	return 0, nil, false
}

// diffResult is the outcome of comparing one benchmark across snapshots.
type diffResult struct {
	Name    string
	BaseNs  float64
	NewNs   float64
	Ratio   float64 // NewNs / BaseNs
	Regress bool
}

// diffSnapshots compares the per-name minima of two snapshots, pairing
// names through snapshotIndex.lookup so snapshots recorded with
// different GOMAXPROCS still line up. A benchmark regresses when its
// ns/op grew by more than maxRegress (0.25 = +25%). Benchmarks present
// in only one snapshot are skipped — they have nothing to compare
// against — and reported via the skipped list so the log shows what was
// not covered.
func diffSnapshots(base, next []Entry, maxRegress float64) (results []diffResult, skipped []string) {
	idx := indexSnapshot(base)
	claimed := make(map[string]bool)
	for name, newNs := range bestNs(next) {
		baseNs, consumed, ok := idx.lookup(name)
		if !ok {
			skipped = append(skipped, name+" (only in new)")
			continue
		}
		for _, c := range consumed {
			claimed[c] = true
		}
		ratio := 0.0
		if baseNs > 0 {
			ratio = newNs / baseNs
		}
		results = append(results, diffResult{
			Name:    name,
			BaseNs:  baseNs,
			NewNs:   newNs,
			Ratio:   ratio,
			Regress: baseNs > 0 && ratio > 1+maxRegress,
		})
	}
	for name := range idx.raw {
		if !claimed[name] {
			skipped = append(skipped, name+" (only in base)")
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	sort.Strings(skipped)
	return results, skipped
}

// runDiff is the `benchjson diff` subcommand. It prints a comparison
// table and returns an error (non-zero exit) when any benchmark
// regressed beyond the threshold.
func runDiff(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	basePath := fs.String("base", "", "baseline snapshot JSON (required)")
	newPath := fs.String("new", "", "candidate snapshot JSON (required)")
	maxRegress := fs.Float64("max-regress", 0.25, "allowed fractional ns/op growth before failing (0.25 = +25%)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *newPath == "" {
		return fmt.Errorf("diff requires -base and -new")
	}
	base, err := readJSON(*basePath)
	if err != nil {
		return err
	}
	next, err := readJSON(*newPath)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("baseline %s contains no benchmarks", *basePath)
	}
	results, skipped := diffSnapshots(base, next, *maxRegress)
	regressions := 0
	for _, r := range results {
		status := "ok"
		if r.Regress {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-60s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n",
			r.Name, r.BaseNs, r.NewNs, 100*(r.Ratio-1), status)
	}
	for _, s := range skipped {
		fmt.Fprintf(w, "skipped: %s\n", s)
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark names in common between %s and %s", *basePath, *newPath)
	}
	if regressions > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed by more than %.0f%%",
			regressions, len(results), *maxRegress*100)
	}
	fmt.Fprintf(w, "all %d common benchmarks within +%.0f%% of baseline\n", len(results), *maxRegress*100)
	return nil
}
