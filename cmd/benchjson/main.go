// Command benchjson converts `go test -bench` text output into the
// repository's BENCH_<date>.json snapshot format and compares two such
// snapshots for performance regressions. It replaces the awk pipeline
// that used to live in scripts/bench.sh with a small, tested tool that
// both the script and the CI bench-diff job share.
//
// Usage:
//
//	benchjson parse [-in bench.txt] [-out bench.json]
//	benchjson scale [-in bench.txt] [-out scale.json]
//	benchjson diff -base old.json -new new.json [-max-regress 0.25]
//	benchjson history old.json ... new.json
//
// parse reads benchmark text (stdin by default) and writes a JSON array
// of {name, iterations, ns_per_op, bytes_per_op, allocs_per_op} objects,
// one per benchmark line, preserving repeats from -count > 1.
//
// scale reads the output of a `go test -bench -cpu 1,2,4` sweep and
// writes per-benchmark scaling curves: one object per suffix-stripped
// name with {cpus, ns_per_op, speedup} points, min ns/op per CPU count,
// speedups anchored on the 1-CPU point. scripts/scale.sh commits the
// result as BENCH_SCALE_<date>.json.
//
// diff compares the fastest (minimum) ns/op per benchmark name — the
// repeat- and noise-tolerant statistic — after stripping the trailing
// -GOMAXPROCS suffix, so snapshots taken with different CPU counts still
// line up. It exits non-zero when any benchmark present in both
// snapshots regressed by more than max-regress (a 0.25 default: +25%
// ns/op).
//
// history renders the performance trajectory across an ordered list of
// snapshots (oldest first): one row per benchmark with its min ns/op in
// each snapshot and the overall last/first trend, pairing names the
// same way diff does. `benchjson history BENCH_2026-07-27.json
// BENCH_SMOKE.json` shows how the committed baselines have moved PR
// over PR.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "parse":
		err = runParse(os.Args[2:])
	case "scale":
		err = runScale(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:], os.Stdout)
	case "history":
		err = runHistory(os.Args[2:], os.Stdout)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchjson parse [-in bench.txt] [-out bench.json]
  benchjson scale [-in bench.txt] [-out scale.json]
  benchjson diff -base old.json -new new.json [-max-regress 0.25]
  benchjson history old.json ... new.json`)
}
