package main

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// runHistory is the `benchjson history` subcommand: it reads the
// snapshots in argument order — the PR-over-PR trajectory, e.g.
// `benchjson history BENCH_2026-07-27.json BENCH_SMOKE.json` — and
// prints one row per benchmark with its min ns/op in every snapshot and
// the overall trend (last/first). Names are paired across snapshots the
// same way diff pairs them (raw first, then the -GOMAXPROCS-stripped
// form), so a snapshot from a 1-core runner lines up with a multi-core
// one. Benchmarks absent from a snapshot print "-" for that column:
// the suite grows over time, and a new benchmark has no history yet.
func runHistory(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("history", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) < 2 {
		return fmt.Errorf("history requires at least two snapshot files, oldest first")
	}
	snaps := make([]*snapshotIndex, len(paths))
	for i, path := range paths {
		entries, err := readJSON(path)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			return fmt.Errorf("%s contains no benchmarks", path)
		}
		snaps[i] = indexSnapshot(entries)
	}

	// The row set is the union of normalized names across all snapshots,
	// so a benchmark dropped mid-history still shows its early columns.
	nameSet := make(map[string]bool)
	for _, idx := range snaps {
		for n := range idx.norm {
			nameSet[n] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)

	labels := make([]string, len(paths))
	for i, p := range paths {
		labels[i] = snapshotLabel(p)
	}
	fmt.Fprintf(w, "%-60s", "benchmark")
	for _, l := range labels {
		fmt.Fprintf(w, " %14s", l)
	}
	fmt.Fprintf(w, " %8s\n", "trend")

	for _, name := range names {
		fmt.Fprintf(w, "%-60s", name)
		first, last := 0.0, 0.0
		present := 0
		for _, idx := range snaps {
			ns, _, ok := idx.lookup(name)
			if !ok {
				fmt.Fprintf(w, " %14s", "-")
				continue
			}
			fmt.Fprintf(w, " %14.0f", ns)
			present++
			if first == 0 {
				first = ns
			}
			last = ns
		}
		// A benchmark seen in a single snapshot has no trajectory yet.
		if present >= 2 && first > 0 && last > 0 {
			fmt.Fprintf(w, " %+7.1f%%\n", 100*(last/first-1))
		} else {
			fmt.Fprintf(w, " %8s\n", "-")
		}
	}
	return nil
}

// snapshotLabel shortens a snapshot path to its trajectory column label:
// the date of a BENCH_<date>.json, or the basename without extension.
func snapshotLabel(path string) string {
	base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return strings.TrimPrefix(base, "BENCH_")
}
