// Package repro's top-level benchmark harness: one benchmark per
// experiment table (E1–E17, matching DESIGN.md — each runs its full
// sweep.Spec through the shared engine in quick mode) plus
// micro-benchmarks for the substrates (graph generation, protocol rounds,
// baselines) and ablations for the design choices called out in DESIGN.md
// (worker count, tracking overhead, SAER vs RAES, array engine vs channel
// engine). The row-sampler micro-benchmarks (Feistel partial shuffle vs
// the O(k²) dup-scan it replaced) live next to the samplers in
// internal/gen (BenchmarkRowSamplers).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bipartite"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// benchGraph builds (and caches per benchmark invocation) a Δ-regular
// graph of the given size.
func benchGraph(b *testing.B, n, delta int) *bipartite.Graph {
	b.Helper()
	g, err := gen.Regular(n, delta, rng.New(uint64(n)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// --- Substrate micro-benchmarks -------------------------------------------

func BenchmarkGraphGenRegular(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			delta := 100
			for i := 0; i < b.N; i++ {
				if _, err := gen.Regular(n, delta, rng.New(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGraphGenTrustSubset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.TrustSubset(1<<13, 1<<13, 100, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphGenTrustSubsetImplicit measures the O(1)-state implicit
// twin of the trust-subset family: construction is free, so the benchmark
// includes regenerating every client's row once (the per-round cost the
// protocol actually pays).
func BenchmarkGraphGenTrustSubsetImplicit(b *testing.B) {
	n := 1 << 13
	buf := make([]int32, 0, 100)
	for i := 0; i < b.N; i++ {
		topo, err := gen.TrustSubsetImplicit(n, n, 100, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		for v := 0; v < n; v++ {
			buf = topo.AppendClientNeighbors(v, buf[:0])
		}
	}
}

func BenchmarkGraphGenProximity(b *testing.B) {
	cfg := gen.ProximityConfig{
		NumClients: 1 << 13,
		NumServers: 1 << 13,
		Radius:     gen.RadiusForExpectedDegree(1<<13, 100),
		MinDegree:  2,
	}
	for i := 0; i < b.N; i++ {
		if _, err := gen.Proximity(cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphGenAlmostRegular(b *testing.B) {
	cfg := gen.DefaultAlmostRegularConfig(1 << 13)
	for i := 0; i < b.N; i++ {
		if _, err := gen.AlmostRegular(cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSAERRun measures full protocol executions per size.
func BenchmarkSAERRun(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		delta := 100
		g := benchGraph(b, n, delta)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.SAER, core.Params{D: 2, C: 4, Seed: uint64(i)}, core.Options{})
				if err != nil || !res.Completed {
					b.Fatalf("run failed: %v %v", err, res)
				}
			}
		})
	}
}

// BenchmarkSparseVsDense contrasts the three engine modes on the standard
// instance. All modes compute the identical random process (enforced by
// TestDenseSparseEquivalence), so the ratio is pure engine overhead: the
// dense mode streams over all n clients and m servers every round, the
// sparse mode walks the active frontier and the touched-server list, and
// auto switches from the first to the second when the paper's geometric
// alive-ball decay has emptied 3/4 of the frontier.
func BenchmarkSparseVsDense(b *testing.B) {
	modes := []struct {
		name string
		mode core.EngineMode
	}{
		{"dense", core.EngineDense},
		{"sparse", core.EngineSparse},
		{"auto", core.EngineAuto},
	}
	for _, n := range []int{1 << 14, 1 << 16} {
		g := benchGraph(b, n, 100)
		for _, m := range modes {
			b.Run(fmt.Sprintf("n=%d/%s", n, m.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := core.Run(g, core.SAER,
						core.Params{D: 2, C: 4, Seed: uint64(i)}, core.Options{Engine: m.mode})
					if err != nil || !res.Completed {
						b.Fatalf("run failed: %v %v", err, res)
					}
				}
			})
		}
	}
}

// BenchmarkShardedRound1 is the locality ablation of the sharded round
// pipeline: it isolates the dense first round (MaxRounds=1, forced dense
// engine) — the hot spot where every client's d destination draws land
// as random increments across the whole m-server tally — and contrasts
// the unsharded loop (shards=1: tally writes scattered over the full
// 4·m-byte array) against the routed pipeline (phase A buckets
// destinations by server shard, phase B applies each shard's increments
// inside one contiguous cache-blocked window). Results are identical by
// construction (the core equivalence tests sweep shard counts); only the
// memory behaviour differs, so the ratio is pure locality: sharding pays
// once the tally outgrows the cache (n = 2²⁰) and costs its routing
// overhead below that (n = 2¹⁸) — see PERFORMANCE.md. CSR Δ=16 graphs
// keep row reads free so the tally traffic dominates the measurement.
func BenchmarkShardedRound1(b *testing.B) {
	for _, n := range []int{1 << 18, 1 << 20} {
		g := benchGraph(b, n, 16)
		for _, shards := range []int{1, 8, 32} {
			name := fmt.Sprintf("n=%d/unsharded", n)
			if shards > 1 {
				name = fmt.Sprintf("n=%d/shards=%d", n, shards)
			}
			b.Run(name, func(b *testing.B) {
				r, err := core.NewRunner(g, core.SAER,
					core.Params{D: 2, C: 4, MaxRounds: 1},
					core.Options{Engine: core.EngineDense, Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				// One untimed run grows the route lanes to steady state, so
				// the short smoke samples measure locality rather than the
				// first round's one-off buffer growth.
				r.Reseed(0)
				r.Run()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.Reseed(uint64(i))
					if res := r.Run(); res.Rounds != 1 {
						b.Fatalf("expected exactly one round, got %v", res)
					}
				}
			})
		}
	}
}

// BenchmarkTelemetryRound is the telemetry layer's overhead ablation on
// the same hot spot as BenchmarkShardedRound1 (the dense first round at
// n = 2¹⁸, sharded pipeline): "off" runs with a nil registry — every
// instrument handle is a typed nil whose methods return before touching
// memory, so the delta against the matching BenchmarkShardedRound1
// configuration is the cost of the disabled fast path and must stay
// within noise (<2%, see PERFORMANCE.md) — while "on" attaches a live
// registry, bounding what full phase spans plus counters cost per round.
func BenchmarkTelemetryRound(b *testing.B) {
	const n = 1 << 18
	g := benchGraph(b, n, 16)
	for _, mode := range []struct {
		name string
		reg  *telemetry.Registry
	}{
		{"off", nil},
		{"on", telemetry.NewRegistry()},
	} {
		b.Run(fmt.Sprintf("n=%d/shards=8/%s", n, mode.name), func(b *testing.B) {
			r, err := core.NewRunner(g, core.SAER,
				core.Params{D: 2, C: 4, MaxRounds: 1},
				core.Options{Engine: core.EngineDense, Shards: 8, Telemetry: mode.reg})
			if err != nil {
				b.Fatal(err)
			}
			r.Reseed(0)
			r.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reseed(uint64(i))
				if res := r.Run(); res.Rounds != 1 {
					b.Fatalf("expected exactly one round, got %v", res)
				}
			}
		})
	}
}

// benchRowOnly hides a topology's point-query (and version) interfaces
// so the engines take the row-regeneration path. Only safe around
// implicit topologies: AppendClientNeighbors fills the caller's buffer,
// so no aliasing is lost by dropping the CSR fast path.
type benchRowOnly struct{ bipartite.Topology }

// BenchmarkPointQueryDraw is the point-query kernel's headline ablation:
// one dense round at n = 2²⁰ in the paper's Δ = log²n = 400 regime,
// where each client needs d = 2 destination draws from a 400-entry row.
// The point-query path asks the topology for exactly those 2 neighbors
// (2 Feistel images per client); the row-regen path — the pre-kernel
// behaviour, forced here by hiding the PointQueryable interface —
// regenerates all 400 entries to use 2 of them. Both paths consume the
// identical Intn draw sequence, so results are bit-for-bit equal (the
// core equivalence suite pins it) and the ratio is pure regeneration
// waste: ~Δ/d ≈ 200× fewer sampler evaluations, bounded in practice by
// the tally traffic the round also pays. Numbers in PERFORMANCE.md.
func BenchmarkPointQueryDraw(b *testing.B) {
	const n = 1 << 20
	const delta = 400
	impl, err := gen.RegularImplicit(n, delta, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, access := range []struct {
		name string
		topo bipartite.Topology
	}{
		{"point-query", impl},
		{"row-regen", benchRowOnly{impl}},
	} {
		b.Run(fmt.Sprintf("n=%d/%s", n, access.name), func(b *testing.B) {
			r, err := core.NewRunner(access.topo, core.SAER,
				core.Params{D: 2, C: 4, MaxRounds: 1},
				core.Options{Engine: core.EngineDense})
			if err != nil {
				b.Fatal(err)
			}
			// One untimed run reaches buffer steady state, as in
			// BenchmarkShardedRound1.
			r.Reseed(0)
			r.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reseed(uint64(i))
				if res := r.Run(); res.Rounds != 1 {
					b.Fatalf("expected exactly one round, got %v", res)
				}
			}
		})
	}
}

// BenchmarkLateRoundTail measures the workload the sparse engine is built
// for: a near-threshold c forces heavy burning, so the run spends most of
// its rounds on a long tail with a tiny alive frontier while the dense
// engine keeps paying O(n + m·workers) per round for it.
func BenchmarkLateRoundTail(b *testing.B) {
	n := 1 << 16
	g := benchGraph(b, n, 100)
	for _, mode := range []struct {
		name string
		mode core.EngineMode
	}{
		{"dense", core.EngineDense},
		{"auto", core.EngineAuto},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.SAER,
					core.Params{D: 2, C: 2, Seed: uint64(i)}, core.Options{Engine: mode.mode})
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds < 5 {
					b.Fatalf("workload too easy to exercise the tail: %v", res)
				}
			}
		})
	}
}

// BenchmarkScaleFullRun is the multi-core scaling curve scripts/scale.sh
// records (BENCH_SCALE_<date>.json, rendered in PERFORMANCE.md): one full
// SAER run at n = 2²⁰ on an implicit topology with Params.Workers = 0, so
// a `go test -cpu 1,2,4` sweep governs the worker count through
// GOMAXPROCS. The sub-benchmarks separate the scheduler's contributions:
// the autotuned work-stealing default, stealing forced off (static chunk
// deal), and the unsharded single-lane pipeline.
func BenchmarkScaleFullRun(b *testing.B) {
	const n = 1 << 20
	const delta = 16
	impl, err := gen.RegularImplicit(n, delta, 9)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"auto", core.Options{}},
		{"steal=off", core.Options{Steal: core.StealOff}},
		{"shards=1", core.Options{Shards: 1}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			r, err := core.NewRunner(impl, core.SAER, core.Params{D: 2, C: 4}, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			// One untimed run grows the route lanes and frontier buffers to
			// steady state, as in BenchmarkShardedRound1.
			r.Reseed(0)
			r.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reseed(uint64(i))
				if res := r.Run(); !res.Completed {
					b.Fatalf("run did not complete: %v", res)
				}
			}
		})
	}
}

// BenchmarkAblationWorkers quantifies the parallel-engine design choice:
// identical runs with 1, 2, 4 and GOMAXPROCS workers (results are
// identical by construction; only wall-clock changes).
func BenchmarkAblationWorkers(b *testing.B) {
	g := benchGraph(b, 1<<15, 128)
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.SAER,
					core.Params{D: 2, C: 4, Seed: uint64(i), Workers: workers}, core.Options{})
				if err != nil || !res.Completed {
					b.Fatalf("run failed: %v %v", err, res)
				}
			}
		})
	}
}

// BenchmarkAblationTracking quantifies the cost of the O(|E|)-per-round
// neighborhood tracking used by the analysis experiments.
func BenchmarkAblationTracking(b *testing.B) {
	g := benchGraph(b, 1<<14, 128)
	for _, track := range []bool{false, true} {
		b.Run(fmt.Sprintf("track=%v", track), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.SAER, core.Params{D: 2, C: 4, Seed: uint64(i)},
					core.Options{TrackNeighborhoods: track})
				if err != nil || !res.Completed {
					b.Fatalf("run failed: %v %v", err, res)
				}
			}
		})
	}
}

// BenchmarkAblationVariant contrasts SAER and RAES on the same instance
// (Corollary 2's pairing).
func BenchmarkAblationVariant(b *testing.B) {
	g := benchGraph(b, 1<<14, 128)
	for _, variant := range []core.Variant{core.SAER, core.RAES} {
		b.Run(variant.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, variant, core.Params{D: 2, C: 2.5, Seed: uint64(i)}, core.Options{})
				if err != nil || !res.Completed {
					b.Fatalf("run failed: %v %v", err, res)
				}
			}
		})
	}
}

// BenchmarkAblationEngine contrasts the array-based engine (core) with the
// goroutine-per-entity message-passing engine (netsim) on the same
// instance; both compute the identical random process, so the ratio is the
// price of literal message passing.
func BenchmarkAblationEngine(b *testing.B) {
	g := benchGraph(b, 1<<12, 100)
	params := core.Params{D: 2, C: 4, Seed: 3}
	b.Run("core-array", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(g, core.SAER, params, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("netsim-channels", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := netsim.Run(g, core.SAER, params, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBaselines measures the comparison algorithms on the E7 graph.
func BenchmarkBaselines(b *testing.B) {
	g := benchGraph(b, 1<<13, 100)
	d := 2
	b.Run("one-choice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.OneChoice(g, d, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy-best-of-2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.GreedyBestOfK(g, d, 2, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy-full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.GreedyFullScan(g, d, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-threshold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.ParallelThreshold(g, d, 4, 0, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- One benchmark per experiment table (E1–E14) --------------------------

// benchExperiment runs the identified experiment in quick mode; the
// regenerated table is what the corresponding EXPERIMENTS.md entry records.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.QuickSuiteConfig()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("experiment %s produced an empty table", id)
		}
	}
}

func BenchmarkE1CompletionScaling(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2WorkScaling(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3BurnedFraction(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4SaerVsRaes(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5MaxLoad(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6DegreeSweep(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE7Baselines(b *testing.B)         { benchExperiment(b, "E7") }
func BenchmarkE8AlmostRegular(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9ThresholdSweep(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Dense(b *testing.B)            { benchExperiment(b, "E10") }
func BenchmarkE11AliveDecay(b *testing.B)       { benchExperiment(b, "E11") }

// BenchmarkE12Dynamic benches the dynamic scenario per path: the E12
// table now runs both the incremental churn path and the legacy rebuild
// path, so the comparable unit for the bench-diff gate is one scenario,
// not the doubled table (the old single-workload BenchmarkE12Dynamic
// name would have compared a two-path run against a one-path baseline).
func BenchmarkE12Dynamic(b *testing.B) {
	for _, path := range []struct {
		name    string
		rebuild bool
	}{{"incremental", false}, {"rebuild", true}} {
		b.Run(path.name, func(b *testing.B) {
			dc := experiments.DefaultDynamicConfig(experiments.QuickSuiteConfig())
			dc.Rebuild = path.rebuild
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				outcomes, err := experiments.RunDynamicScenario(dc, uint64(i))
				if err != nil || len(outcomes) != dc.Batches {
					b.Fatalf("scenario failed: %v (%d outcomes)", err, len(outcomes))
				}
			}
		})
	}
}
func BenchmarkE13Expander(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14Demand(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15ChurnRate(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16FailureWaves(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17Arrivals(b *testing.B)     { benchExperiment(b, "E17") }

// BenchmarkChurnEpoch is the incremental-vs-rebuild ablation of the
// churn subsystem (ROADMAP: "edge churn instead of full re-randomization
// keeps epoch cost proportional to churn, not n·Δ"). One iteration is
// one epoch of the E12-shaped metastable scenario at n = 2¹⁸ with 10%
// of the clients rewiring per epoch: expiry, topology update, and the
// protocol run on the carried loads. The incremental paths mutate one
// churn.Topology in place (implicit backend: O(changed) epoch marks;
// csr-patch backend: O(changed·Δ) arena writes) and reuse one Runner via
// PatchTopology; the rebuild path is the legacy approach — a freshly
// materialized trust-subset graph per epoch plus SwapTopology — whose
// O(n·Δ) construction dominates the epoch. Results across the two
// incremental backends are bit-for-bit identical (the equivalence suite
// pins it); the rebuild path draws different graphs, so only its cost is
// comparable. Numbers are recorded in PERFORMANCE.md.
func BenchmarkChurnEpoch(b *testing.B) {
	const n = 1 << 18
	const delta = 16
	const d, c = 2, 4.0
	rewireCount := n / 10 // 10% edge churn per epoch

	for _, backend := range []churn.Backend{churn.BackendImplicit, churn.BackendCSRPatch} {
		b.Run(fmt.Sprintf("n=%d/incremental-%s", n, backend), func(b *testing.B) {
			base, err := gen.TrustSubsetImplicit(n, n, delta, 1)
			if err != nil {
				b.Fatal(err)
			}
			topo, err := churn.New(churn.Config{
				Base: base, Sampler: churn.TrustSampler(n, delta), Seed: 2, Backend: backend,
			})
			if err != nil {
				b.Fatal(err)
			}
			sch, err := churn.NewScheduler(topo, churn.SchedulerConfig{
				Protocol: core.NewConfig(core.SAER, d, c, 0), LoadExpiry: 0.5,
			}, 3)
			if err != nil {
				b.Fatal(err)
			}
			src := rng.New(4)
			step := func() {
				out, err := sch.Step(churn.EpochEvent{
					Dt: 1, RedemandAll: true,
					Rewire: topo.SamplePresent(src, rewireCount),
				})
				if err != nil || !out.Completed {
					b.Fatalf("epoch failed: %v %+v", err, out)
				}
			}
			step() // reach the metastable carried-load regime untimed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}

	b.Run(fmt.Sprintf("n=%d/rebuild", n), func(b *testing.B) {
		src := rng.New(4)
		loads := make([]int, n)
		var runner *core.Runner
		step := func() {
			for u := range loads {
				loads[u] -= loads[u] / 2
			}
			g, err := gen.TrustSubset(n, n, delta, src.Split())
			if err != nil {
				b.Fatal(err)
			}
			if runner == nil {
				runner, err = core.NewRunner(g, core.SAER,
					core.Params{D: d, C: c, Seed: src.Uint64()},
					core.Options{InitialLoads: loads, TrackLoads: true})
				if err != nil {
					b.Fatal(err)
				}
			} else {
				if err := runner.SwapTopology(g); err != nil {
					b.Fatal(err)
				}
				runner.Reseed(src.Uint64())
			}
			res := runner.Run()
			if !res.Completed {
				b.Fatalf("epoch failed: %v", res)
			}
			copy(loads, res.Loads)
		}
		step()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
}

// TestExperimentSuiteQuick is the integration test that regenerates every
// experiment table end-to-end (quick sizes) and fails if any experiment
// errors or produces an empty table. It is the `go test` counterpart of
// the saer-experiments CLI.
func TestExperimentSuiteQuick(t *testing.T) {
	cfg := experiments.QuickSuiteConfig()
	cfg.Trials = 2
	for _, exp := range experiments.All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			table, err := exp.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", exp.ID, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced an empty table", exp.ID)
			}
			t.Logf("\n%s", table)
		})
	}
}

// BenchmarkWireRoundLoopback measures the service mode end to end over
// loopback TCP: per iteration, every multiplexed session runs one full
// SAER trial (all rounds, scatter/gather across 2 shard servers)
// concurrently over the shared pooled connections. Comparing the
// sessions=k points shows what session multiplexing buys: if k trials
// in flight amortize the per-frame round trips, ns/op grows by less
// than k×. The sessions=1 point is the synchronous-client baseline the
// PERFORMANCE.md wire table tracks.
func BenchmarkWireRoundLoopback(b *testing.B) {
	const n = 1 << 12
	const shards = 2
	g := benchGraph(b, n, 24)
	cfg := core.NewConfig(core.SAER, 2, 4, 1)
	for _, sessions := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("n=%d/sessions=%d", n, sessions), func(b *testing.B) {
			ss, err := wire.StartLocalSet(shards)
			if err != nil {
				b.Fatal(err)
			}
			defer ss.Close()
			bank, err := wire.DialConfig(ss.Addrs(), cfg.Variant, int32(cfg.Params().Capacity()), n,
				wire.BankConfig{Sessions: sessions})
			if err != nil {
				b.Fatal(err)
			}
			defer bank.Close()
			drivers := make([]*core.Driver, sessions)
			for s := range drivers {
				drivers[s], err = core.NewDriver(g, cfg, bank.Session(s))
				if err != nil {
					b.Fatal(err)
				}
			}
			seed := uint64(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for s := range drivers {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						dr := drivers[s]
						dr.Reseed(seed + uint64(s))
						if _, err := dr.Run(); err != nil {
							b.Error(err)
						}
					}(s)
				}
				wg.Wait()
				seed += uint64(sessions)
			}
		})
	}
}
