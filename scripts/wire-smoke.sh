#!/bin/sh
# wire-smoke.sh — end-to-end smoke of the wire service mode: build the
# three service binaries, start a 3-shard server, run the load-generator
# client at n=2^12 with -verify (which asserts the wire run reproduces
# the in-process core.Run result bit-for-bit), fold the client's record
# stream with the aggregator, and tear everything down. The whole thing
# runs under a timeout so a wedged handshake fails the job instead of
# hanging it.
#
# Usage: ./scripts/wire-smoke.sh [n]   (default n = 4096)
set -eu

cd "$(dirname "$0")/.."

n="${1:-4096}"
work="$(mktemp -d)"
server_pid=""

cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/bin/" ./cmd/saer-server ./cmd/saer-client ./cmd/saer-aggregate

"$work/bin/saer-server" -shards 3 >"$work/server.log" 2>&1 &
server_pid=$!

# Wait (max ~10s) for the server's "ready" line before dialing.
i=0
while ! grep -q '^ready$' "$work/server.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "wire-smoke: server did not become ready" >&2
        cat "$work/server.log" >&2
        exit 1
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "wire-smoke: server exited before ready" >&2
        cat "$work/server.log" >&2
        exit 1
    fi
    sleep 0.1
done

addrs="$(awk '/listening on/ {print $NF}' "$work/server.log" | paste -sd, -)"
echo "wire-smoke: 3 shards at $addrs"

# -workers 4 exercises the parallel client phase, -sessions 2 the
# multiplexed trial fan-out; -verify asserts each trial is still
# bit-for-bit the in-process result.
"$work/bin/saer-client" -connect "$addrs" -n "$n" -c 4 -trials 4 \
    -workers 4 -sessions 2 -verify -records "$work/run.jsonl"

"$work/bin/saer-aggregate" -json "$work/folded.jsonl" "$work/run.jsonl"

# The folded stream must carry one record per shard.
shards="$(grep -c '"type":"shard"' "$work/folded.jsonl")"
if [ "$shards" -ne 3 ]; then
    echo "wire-smoke: expected 3 folded shard records, got $shards" >&2
    exit 1
fi

kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""
echo "wire-smoke: ok"
