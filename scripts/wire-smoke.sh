#!/bin/sh
# wire-smoke.sh — end-to-end smoke of the wire service mode: build the
# three service binaries, start a 3-shard server with its telemetry
# debug listener, run the load-generator client at n=2^12 with -verify
# (which asserts the wire run reproduces the in-process core.Run result
# bit-for-bit), scrape the server's /metrics and /debug/pprof/profile
# endpoints while it is still serving, fold the client's record stream
# (trials + telemetry snapshot) with the aggregator, and tear everything
# down. The whole thing runs under a timeout so a wedged handshake fails
# the job instead of hanging it.
#
# Usage: ./scripts/wire-smoke.sh [n]   (default n = 4096)
#
# Set WIRE_SMOKE_OUT to a directory to keep the run's observability
# artifacts (client records, folded stream, /metrics scrape, server
# log) after the temp dir is cleaned up — CI uploads that directory as
# a workflow artifact.
set -eu

cd "$(dirname "$0")/.."

n="${1:-4096}"
work="$(mktemp -d)"
server_pid=""

cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    if [ -n "${WIRE_SMOKE_OUT:-}" ]; then
        mkdir -p "$WIRE_SMOKE_OUT"
        for f in run.jsonl folded.jsonl metrics.prom server.log; do
            [ -f "$work/$f" ] && cp "$work/$f" "$WIRE_SMOKE_OUT/" || true
        done
    fi
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/bin/" ./cmd/saer-server ./cmd/saer-client ./cmd/saer-aggregate

"$work/bin/saer-server" -shards 3 -debug-addr 127.0.0.1:0 >"$work/server.log" 2>&1 &
server_pid=$!

# Wait (max ~10s) for the server's "ready" line before dialing.
i=0
while ! grep -q '^ready$' "$work/server.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "wire-smoke: server did not become ready" >&2
        cat "$work/server.log" >&2
        exit 1
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "wire-smoke: server exited before ready" >&2
        cat "$work/server.log" >&2
        exit 1
    fi
    sleep 0.1
done

addrs="$(awk '/^shard .* listening on/ {print $NF}' "$work/server.log" | paste -sd, -)"
debug_addr="$(awk '/^debug listening on/ {print $NF}' "$work/server.log")"
echo "wire-smoke: 3 shards at $addrs, debug at $debug_addr"
if [ -z "$debug_addr" ]; then
    echo "wire-smoke: server printed no debug address" >&2
    exit 1
fi

# The endpoint must be scrapeable before any round has run (all-zero
# counters render fine), and a short CPU profile must stream.
curl -fsS "http://$debug_addr/metrics" >/dev/null
curl -fsS "http://$debug_addr/debug/pprof/profile?seconds=1" >"$work/profile.pb.gz"
if [ ! -s "$work/profile.pb.gz" ]; then
    echo "wire-smoke: empty pprof profile" >&2
    exit 1
fi

# -workers 4 exercises the parallel client phase, -sessions 2 the
# multiplexed trial fan-out; -verify asserts each trial is still
# bit-for-bit the in-process result.
"$work/bin/saer-client" -connect "$addrs" -n "$n" -c 4 -trials 4 \
    -workers 4 -sessions 2 -verify -records "$work/run.jsonl"

# Scrape the live /metrics while the server still holds the run's
# counters: the round counter must be non-zero after 4 trials.
curl -fsS "http://$debug_addr/metrics" >"$work/metrics.prom"
rounds="$(awk '/^saer_server_rounds_total/ {sum += $2} END {print sum + 0}' "$work/metrics.prom")"
if [ "$rounds" -le 0 ]; then
    echo "wire-smoke: /metrics reports zero server rounds after the run" >&2
    cat "$work/metrics.prom" >&2
    exit 1
fi
echo "wire-smoke: /metrics reports $rounds server round calls"

"$work/bin/saer-aggregate" -json "$work/folded.jsonl" "$work/run.jsonl"

# The folded stream must carry one record per shard, and the client's
# telemetry snapshot must have survived the fold.
shards="$(grep -c '"type":"shard"' "$work/folded.jsonl")"
if [ "$shards" -ne 3 ]; then
    echo "wire-smoke: expected 3 folded shard records, got $shards" >&2
    exit 1
fi
if ! grep -q '"type":"telemetry"' "$work/folded.jsonl"; then
    echo "wire-smoke: no telemetry record in the folded stream" >&2
    exit 1
fi

kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""
echo "wire-smoke: ok"
