#!/bin/sh
# bench.sh — run the repository benchmark suite and emit a machine-readable
# BENCH_<date>.json next to the raw go test output, so the performance
# trajectory can be tracked PR over PR (see PERFORMANCE.md).
#
# Usage:
#   ./scripts/bench.sh         # full run: -benchtime default, -count 3
#   ./scripts/bench.sh smoke   # CI smoke: one iteration per benchmark
#
# The JSON is an array of objects:
#   {"name": ..., "iterations": N, "ns_per_op": ..., "bytes_per_op": ...,
#    "allocs_per_op": ...}
# parsed from the standard `go test -bench` text output with awk (no
# external dependencies).
set -eu

cd "$(dirname "$0")/.."

mode="${1:-full}"
case "$mode" in
smoke) benchflags="-benchtime=1x -count=1" ;;
full) benchflags="-count=3" ;;
*)
    echo "usage: $0 [smoke|full]" >&2
    exit 2
    ;;
esac

date="$(date +%Y-%m-%d)"
txt="BENCH_${date}.txt"
json="BENCH_${date}.json"

# shellcheck disable=SC2086 # benchflags is intentionally word-split
go test -run '^$' -bench . -benchmem $benchflags . | tee "$txt"

awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (found) printf ",\n"
    found = 1
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { if (found) printf "\n"; print "]" }
' "$txt" >"$json"

echo "wrote $txt and $json" >&2
