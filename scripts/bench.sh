#!/bin/sh
# bench.sh — run the repository benchmark suite and emit a machine-readable
# BENCH_<date>.json next to the raw go test output, so the performance
# trajectory can be tracked PR over PR (see PERFORMANCE.md).
#
# Usage:
#   ./scripts/bench.sh         # full run: -benchtime default, -count 3
#                              #   -> BENCH_<date>.{txt,json}
#   ./scripts/bench.sh smoke   # CI smoke: 3 repeats of 3 iterations each
#                              #   -> BENCH_SMOKE.{txt,json}
#
# Smoke gets its own undated snapshot name because the CI bench-diff
# gate compares smoke-vs-smoke: single-iteration samples pay cold-start
# costs that a full run's steady-state minima amortize away, so diffing
# a smoke run against a full-mode baseline is biased toward spurious
# regressions (and a dated smoke file would clobber a committed
# full-mode snapshot of the same day). Smoke keeps -count 3 so the gate
# compares min-of-3 against the committed BENCH_SMOKE.json's min-of-3,
# and uses -benchtime=3x (not 1x) so each sample amortizes cold-start
# noise over three iterations — single-iteration smoke runs left ~±20%
# jitter on the shared CI runners, which the 25% regression gate was
# uncomfortably close to.
#
# The JSON is an array of objects:
#   {"name": ..., "iterations": N, "ns_per_op": ..., "bytes_per_op": ...,
#    "allocs_per_op": ...}
# produced by cmd/benchjson (the tested parser shared with the CI
# bench-diff job; see `go run ./cmd/benchjson help`).
set -eu

cd "$(dirname "$0")/.."

mode="${1:-full}"
case "$mode" in
smoke) benchflags="-benchtime=3x -count=3" ;;
full) benchflags="-count=3" ;;
*)
    echo "usage: $0 [smoke|full]" >&2
    exit 2
    ;;
esac

if [ "$mode" = smoke ]; then
    txt="BENCH_SMOKE.txt"
    json="BENCH_SMOKE.json"
else
    date="$(date +%Y-%m-%d)"
    txt="BENCH_${date}.txt"
    json="BENCH_${date}.json"
fi

# shellcheck disable=SC2086 # benchflags is intentionally word-split
go test -run '^$' -bench . -benchmem $benchflags . | tee "$txt"

go run ./cmd/benchjson parse -in "$txt" -out "$json"

echo "wrote $txt and $json" >&2
