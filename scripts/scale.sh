#!/bin/sh
# scale.sh — record the multi-core scaling curve: run the BenchmarkScale*
# benchmarks across a -cpu sweep and emit per-benchmark speedup curves as
# BENCH_SCALE_<date>.json next to the raw text (see PERFORMANCE.md's
# multi-core scaling section, which renders the committed curve).
#
# Usage:
#   ./scripts/scale.sh            # -cpu 1,2,4 -count 3
#   ./scripts/scale.sh 1,2,4,8    # custom CPU list
#
# The benchmarks run with Params.Workers = 0, so GOMAXPROCS (set per
# -cpu point by the testing package) governs the engine's worker count:
# each point measures the same deterministic computation on a different
# number of cores. The JSON is an array of
#   {"name": ..., "curve": [{"cpus": N, "ns_per_op": ..., "speedup": ...}]}
# objects produced by `benchjson scale` (min ns/op per CPU count,
# speedup anchored on the 1-CPU point).
#
# Note: speedups are only meaningful on a machine that actually has the
# swept cores. On a 1-core box every point measures scheduler overhead,
# not scaling — still useful as a regression reference, but rerun on
# real hardware before updating PERFORMANCE.md's curve.
set -eu

cd "$(dirname "$0")/.."

cpus="${1:-1,2,4}"
date="$(date +%Y-%m-%d)"
txt="BENCH_SCALE_${date}.txt"
json="BENCH_SCALE_${date}.json"

go test -run '^$' -bench '^BenchmarkScale' -benchmem -cpu "$cpus" -count 3 . | tee "$txt"

go run ./cmd/benchjson scale -in "$txt" -out "$json"

echo "wrote $txt and $json" >&2
