// Quickstart: build a random Δ-regular client–server topology, run the
// SAER protocol on it, and check the outcome against the paper's bounds.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func main() {
	// 1. Build the topology: 8192 clients and 8192 servers, each client
	//    admissible for Δ = 169 ≈ log²(n) uniformly random servers.
	const n = 8192
	const delta = 169
	g, err := gen.Regular(n, delta, rng.New(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("topology:", g)

	// 2. Configure the protocol: every client holds d = 2 requests, every
	//    server accepts at most c·d = 8 of them in total.
	params := core.Params{
		D:    2,
		C:    4,
		Seed: 7,
	}

	// 3. Run SAER. Tracking is enabled so we can inspect the per-round
	//    burned-server fractions the analysis is about.
	result, err := core.Run(g, core.SAER, params, core.Options{TrackNeighborhoods: true})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the outcome.
	fmt.Println("\nresult:", result)
	fmt.Println("\nround-by-round (alive balls → accepted, max burned fraction):")
	for _, round := range result.PerRound {
		fmt.Printf("  round %2d: %6d alive, %6d accepted, S_t = %.3f\n",
			round.Round, round.AliveBalls, round.RequestsAccepted, round.MaxNeighborhoodBurnedFrac)
	}

	// 5. Compare against the paper's statements (Theorem 1 and Lemma 4).
	fmt.Println("\ntheorem check:")
	fmt.Println(analysis.CheckTheorem1(result))
}
