// Proximity example: a CDN-style deployment where clients may only use
// edge servers within a geographic radius (the paper's motivation (ii)).
//
// Clients and servers are placed uniformly on the unit torus; a client is
// admissible for every server within a radius chosen so that the expected
// neighborhood size is ≈ log²(n). The example runs SAER on the resulting
// proximity graph, reports how uneven the geography makes the
// neighborhoods, and shows that the protocol still settles every request
// quickly while respecting the per-server capacity.
//
// Run with:
//
//	go run ./examples/proximity
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
)

func main() {
	const n = 4096
	const d = 3 // each client has three content requests to place
	expectedDegree := int(math.Ceil(math.Pow(math.Log2(n), 2)))

	cfg := gen.ProximityConfig{
		NumClients: n,
		NumServers: n,
		Radius:     gen.RadiusForExpectedDegree(n, expectedDegree),
		// A client in a sparsely covered area widens its search until it
		// sees at least a handful of servers.
		MinDegree: 4,
	}
	gg, err := gen.Proximity(cfg, rng.New(2024))
	if err != nil {
		log.Fatal(err)
	}
	g := gg.Graph
	st := g.Stats()
	fmt.Printf("proximity topology: %d clients, %d servers, radius %.4f\n", n, n, cfg.Radius)
	fmt.Printf("  client degrees: min=%d mean=%.0f max=%d (expected %d)\n",
		st.MinClientDegree, st.MeanClientDeg, st.MaxClientDegree, expectedDegree)
	fmt.Printf("  server degrees: min=%d mean=%.0f max=%d, rho=%.2f\n",
		st.MinServerDegree, st.MeanServerDeg, st.MaxServerDegree, st.RegularityRatio)
	fmt.Printf("  %d clients needed the nearest-server fallback\n", gg.FallbackEdges)

	params := core.Params{D: d, C: 4, Seed: 99}
	result, err := core.Run(g, core.SAER, params, core.Options{TrackLoads: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSAER outcome:", result)

	dist := metrics.AnalyzeLoads(result.Loads)
	fmt.Println("\nedge-server load distribution:")
	fmt.Printf("  %s\n", dist)
	fmt.Printf("  capacity per server: %d requests (c·d)\n", params.Capacity())
	fmt.Printf("  servers at capacity: %d of %d\n", dist.Histogram[params.Capacity()], n)
	fmt.Printf("  empty servers (no request landed nearby): %d\n", dist.EmptyServers)

	// Geographic sanity check: every request ended on a server within the
	// admissible radius of its client (or a fallback neighbor).
	fmt.Println("\nall requests were served by admissible (nearby) servers — the")
	fmt.Println("protocol never needs to know positions, only the admissibility graph.")
}
