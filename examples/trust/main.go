// Trust example: the paper's motivation (i) — every client only sends
// requests to a fixed subset of servers it trusts from previous
// interactions, and, symmetrically, servers do not want to reveal their
// current load to clients.
//
// The example builds a trust-subset topology (each client trusts k random
// servers), runs SAER next to the sequential best-of-2 greedy baseline
// that *does* require servers to publish their loads, and contrasts the
// two along the axes the paper cares about: maximum load, parallel time,
// message work, and how much information about server load a client could
// infer.
//
// Run with:
//
//	go run ./examples/trust
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func main() {
	const n = 8192
	const d = 2
	trusted := int(math.Ceil(math.Pow(math.Log2(n), 2))) // each client trusts ≈ log²(n) servers

	g, err := gen.TrustSubset(n, n, trusted, rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trust topology: every one of the %d clients trusts %d of the %d servers\n\n", n, trusted, n)

	// SAER: parallel, servers only answer accept/reject.
	params := core.Params{D: d, C: 4, Seed: 11}
	saer, err := core.Run(g, core.SAER, params, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Sequential greedy with two load probes per ball (needs load info).
	greedy, err := baseline.GreedyBestOfK(g, d, 2, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Sequential one-choice (no load info, but no balance either).
	oneChoice, err := baseline.OneChoice(g, d, 11)
	if err != nil {
		log.Fatal(err)
	}

	balls := float64(n * d)
	fmt.Printf("%-22s %-10s %-14s %-12s %-12s %s\n",
		"algorithm", "max load", "time", "msgs/ball", "load info", "notes")
	fmt.Printf("%-22s %-10d %-14s %-12.2f %-12s %s\n",
		"SAER (this paper)", saer.MaxLoad,
		fmt.Sprintf("%d rounds", saer.Rounds), float64(saer.Work)/balls,
		"none", fmt.Sprintf("cap c·d = %d, servers answer 1 bit", params.Capacity()))
	fmt.Printf("%-22s %-10d %-14s %-12.2f %-12s %s\n",
		"greedy best-of-2", greedy.MaxLoad,
		fmt.Sprintf("%d seq. steps", greedy.Steps), float64(greedy.Work)/balls,
		"required", "each ball sees two current loads")
	fmt.Printf("%-22s %-10d %-14s %-12.2f %-12s %s\n",
		"one-choice", oneChoice.MaxLoad,
		fmt.Sprintf("%d seq. steps", oneChoice.Steps), float64(oneChoice.Work)/balls,
		"none", "no balancing at all")

	fmt.Println()
	fmt.Printf("SAER places all %d requests in %d parallel rounds with max load %d ≤ %d,\n",
		int(balls), saer.Rounds, saer.MaxLoad, params.Capacity())
	fmt.Println("while never letting a client learn more than one accept/reject bit per request —")
	fmt.Println("the privacy property highlighted in Section 2.2, remark (ii) of the paper.")
	fmt.Printf("Greedy reaches max load %d but is sequential (%d steps) and leaks load values.\n",
		greedy.MaxLoad, greedy.Steps)
}
