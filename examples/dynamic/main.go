// Dynamic example: the future-work scenario of Section 4 — client
// requests arrive online in batches, the admissible topology changes
// between batches, and a fraction of previously placed load expires
// (churn). The conjecture is that SAER's simple structure sustains a
// metastable regime: every batch settles within a logarithmic number of
// rounds and the per-server capacity keeps holding even though servers
// carry load left over from earlier batches.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	dc := experiments.DynamicConfig{
		NumServers:    4096,
		BatchClients:  4096, // every batch brings d new balls per server on average
		Batches:       12,
		D:             2,
		C:             4,
		Delta:         144, // ≈ log²(4096)
		ChurnFraction: 0.5, // half of each server's load expires between batches
	}
	capacity := core.Params{D: dc.D, C: dc.C}.Capacity()

	fmt.Printf("dynamic scenario: %d servers, %d batches of %d clients (d=%d), %d%% churn\n",
		dc.NumServers, dc.Batches, dc.BatchClients, dc.D, int(dc.ChurnFraction*100))
	fmt.Printf("per-server capacity: %d requests; completion bound per batch: %d rounds\n\n",
		capacity, core.CompletionBound(dc.BatchClients))

	outcomes, err := experiments.RunDynamicScenario(dc, 2026)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-10s %-12s %-8s %-10s %-10s %s\n",
		"batch", "arrivals", "pre-burned", "rounds", "max load", "mean load", "completed")
	for _, o := range outcomes {
		fmt.Printf("%-6d %-10d %-12d %-8d %-10d %-10.2f %v\n",
			o.Batch, o.ArrivingBalls, o.BurnedAtStart, o.Rounds, o.MaxLoad, o.MeanLoad, o.Completed)
	}

	fmt.Println()
	fmt.Println("observations:")
	fmt.Println("  - every batch settles in a handful of rounds despite leftover load;")
	fmt.Println("  - the max load never exceeds the c·d capacity (the invariant is per-server and local);")
	fmt.Println("  - with 50% churn the mean load stabilizes instead of growing without bound —")
	fmt.Println("    the metastable regime the paper conjectures in its future-work section.")
}
