// Dynamic example: the future-work scenario of Section 4 — client
// requests arrive online in batches, the admissible topology changes
// between batches, and a fraction of previously placed load expires
// (churn). The conjecture is that SAER's simple structure sustains a
// metastable regime: every batch settles within a logarithmic number of
// rounds and the per-server capacity keeps holding even though servers
// carry load left over from earlier batches.
//
// By default the scenario runs on the incremental churn subsystem
// (internal/churn): one implicit topology whose clients rewire between
// batches in O(n) marks, one Runner reused for every batch. The -rebuild
// flag switches to the legacy path that builds a fresh materialized
// graph per batch — same process, O(n·Δ) per step — which is the
// baseline the incremental path is benchmarked against in
// PERFORMANCE.md.
//
// Run with:
//
//	go run ./examples/dynamic
//	go run ./examples/dynamic -rebuild
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	rebuild := flag.Bool("rebuild", false, "use the legacy full-rebuild path (fresh materialized graph per batch) instead of the incremental churn subsystem")
	flag.Parse()

	dc := experiments.DynamicConfig{
		NumServers:    4096,
		BatchClients:  4096, // every batch brings d new balls per server on average
		Batches:       12,
		D:             2,
		C:             4,
		Delta:         144, // ≈ log²(4096)
		ChurnFraction: 0.5, // half of each server's load expires between batches
		Rebuild:       *rebuild,
	}
	capacity := core.Params{D: dc.D, C: dc.C}.Capacity()

	path := "incremental (internal/churn: O(n) rewire marks per batch, one reused Runner)"
	if dc.Rebuild {
		path = "rebuild (legacy: fresh materialized graph per batch)"
	}
	fmt.Printf("dynamic scenario: %d servers, %d batches of %d clients (d=%d), %d%% churn\n",
		dc.NumServers, dc.Batches, dc.BatchClients, dc.D, int(dc.ChurnFraction*100))
	fmt.Printf("path: %s\n", path)
	fmt.Printf("per-server capacity: %d requests; completion bound per batch: %d rounds\n\n",
		capacity, core.CompletionBound(dc.BatchClients))

	outcomes, err := experiments.RunDynamicScenario(dc, 2026)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-10s %-12s %-8s %-10s %-10s %s\n",
		"batch", "arrivals", "pre-burned", "rounds", "max load", "mean load", "completed")
	for _, o := range outcomes {
		fmt.Printf("%-6d %-10d %-12d %-8d %-10d %-10.2f %v\n",
			o.Batch, o.ArrivingBalls, o.BurnedAtStart, o.Rounds, o.MaxLoad, o.MeanLoad, o.Completed)
	}

	fmt.Println()
	fmt.Println("observations:")
	fmt.Println("  - every batch settles in a handful of rounds despite leftover load;")
	fmt.Println("  - the max load never exceeds the c·d capacity (the invariant is per-server and local);")
	fmt.Println("  - with 50% churn the mean load stabilizes instead of growing without bound —")
	fmt.Println("    the metastable regime the paper conjectures in its future-work section;")
	fmt.Println("  - both paths model the same process: compare with/without -rebuild.")
}
