package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("unexpected summary: %+v", s)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std %v, want %v", s.Std, math.Sqrt(2.5))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
}

func TestMustSummarizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSummarize(nil) did not panic")
		}
	}()
	MustSummarize(nil)
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Std != 0 {
		t.Errorf("unexpected single-sample summary: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{1, 10},
		{0.5, 5.5},
		{0.25, 3.25},
		{0.9, 9.1},
	}
	for _, tc := range cases {
		if got := Percentile(sorted, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("Percentile of empty slice should be NaN")
	}
	if Percentile([]float64{3}, 0.7) != 3 {
		t.Error("Percentile of single element should be that element")
	}
}

func TestMeanStd(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if Std([]float64{5}) != 0 {
		t.Error("Std of single sample should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %v, want 5", Mean(xs))
	}
	// Sample std with n-1 = sqrt(32/7).
	if math.Abs(Std(xs)-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("Std = %v", Std(xs))
	}
}

func TestConfidenceInterval95(t *testing.T) {
	if ConfidenceInterval95([]float64{1}) != 0 {
		t.Error("CI of single sample should be 0")
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // std = ~0.502
	}
	ci := ConfidenceInterval95(xs)
	want := 1.96 * Std(xs) / 10
	if math.Abs(ci-want) > 1e-12 {
		t.Errorf("CI = %v, want %v", ci, want)
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-1) > 1e-9 || math.Abs(fit.Slope-2) > 1e-9 {
		t.Errorf("fit = %+v, want intercept 1 slope 2", fit)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if math.Abs(fit.Predict(10)-21) > 1e-9 {
		t.Errorf("Predict(10) = %v, want 21", fit.Predict(10))
	}
}

func TestFitLinearNoisy(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	y := []float64{0.1, 1.9, 4.2, 5.8, 8.1, 9.9, 12.2, 13.8} // roughly y = 2x
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 0.1 {
		t.Errorf("slope %v, want about 2", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 %v, want near 1", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitLinearConstantY(t *testing.T) {
	fit, err := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 5 || fit.R2 != 1 {
		t.Errorf("constant fit = %+v", fit)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 5, 9.99, 10, -1, 11} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("total %d, want 8", h.Total())
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Errorf("underflow %d overflow %d, want 1 and 1", h.Underflow, h.Overflow)
	}
	sum := 0
	for _, b := range h.Buckets {
		sum += b
	}
	if sum != 6 {
		t.Errorf("in-range samples %d, want 6", sum)
	}
	lo, hi := h.BucketBounds(0)
	if lo != 0 || hi != 2 {
		t.Errorf("bucket 0 bounds [%v,%v), want [0,2)", lo, hi)
	}
	// x = 10 is exactly Hi: goes in the last bucket.
	if h.Buckets[4] < 2 {
		t.Errorf("last bucket %d, want at least 2 (9.99 and 10)", h.Buckets[4])
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestConversions(t *testing.T) {
	fs := IntsToFloats([]int{1, 2, 3})
	if len(fs) != 3 || fs[2] != 3 {
		t.Errorf("IntsToFloats = %v", fs)
	}
	fs64 := Int64sToFloats([]int64{4, 5})
	if len(fs64) != 2 || fs64[0] != 4 {
		t.Errorf("Int64sToFloats = %v", fs64)
	}
}

// Property: the mean always lies between min and max, and the 0th/100th
// percentiles equal min/max.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Discard non-finite and extreme values: summing values near
			// MaxFloat64 overflows and is not the regime the harness uses.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Median >= s.Min-1e-9 && s.Median <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: fitting points that lie exactly on a line recovers the line.
func TestQuickFitRecoversLine(t *testing.T) {
	f := func(a, b float64, nRaw uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		n := int(nRaw%20) + 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
			y[i] = a + b*float64(i)
		}
		fit, err := FitLinear(x, y)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		return math.Abs(fit.Intercept-a) < 1e-6*scale && math.Abs(fit.Slope-b) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
