// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics over repeated trials, percentile
// estimation, histograms, and least-squares fits used to check the paper's
// asymptotic claims (completion time against log n, work against n).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that require at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Summary is a one-pass summary of a sample set.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{
		Count: len(xs),
		Min:   math.Inf(1),
		Max:   math.Inf(-1),
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 0.5)
	s.P90 = Percentile(sorted, 0.9)
	s.P99 = Percentile(sorted, 0.99)
	return s, nil
}

// MustSummarize is Summarize for callers that have already checked the
// input is non-empty; it panics on an empty slice.
func MustSummarize(xs []float64) Summary {
	s, err := Summarize(xs)
	if err != nil {
		panic(err)
	}
	return s
}

// Percentile returns the p-th percentile (p in [0,1]) of an already sorted
// slice using linear interpolation between the two nearest ranks. It
// returns NaN for an empty slice.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation (n-1), or 0 for fewer than two
// samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// ConfidenceInterval95 returns the half-width of an approximate 95%
// confidence interval for the mean (normal approximation, 1.96·σ/√n).
func ConfidenceInterval95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * Std(xs) / math.Sqrt(float64(len(xs)))
}

// LinearFit is the result of an ordinary least-squares fit y = a + b·x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// FitLinear fits y = a + b·x by least squares. It returns an error if
// fewer than two points are given or all x values coincide.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: FitLinear length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLinear needs at least 2 points, got %d", len(x))
	}
	mx := Mean(x)
	my := Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: FitLinear degenerate x values")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range x {
			r := y[i] - (a + b*x[i])
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Intercept: a, Slope: b, R2: r2}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// Histogram is a fixed-bucket histogram over a closed interval.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	// Underflow and Overflow count samples outside [Lo, Hi].
	Underflow, Overflow int
	total               int
}

// NewHistogram returns a histogram with the given number of equal-width
// buckets over [lo, hi]. It panics if buckets <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, buckets)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Lo {
		h.Underflow++
		return
	}
	if x > h.Hi {
		h.Overflow++
		return
	}
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if idx == len(h.Buckets) {
		idx--
	}
	h.Buckets[idx]++
}

// Total returns the number of samples recorded (including out-of-range
// ones).
func (h *Histogram) Total() int { return h.total }

// BucketBounds returns the [lo, hi) interval of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + float64(i)*width, h.Lo + float64(i+1)*width
}

// IntsToFloats converts an int slice to float64, a convenience for feeding
// measured counts into the statistics helpers.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Int64sToFloats converts an int64 slice to float64.
func Int64sToFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
