package sweep

import (
	"fmt"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// Family enumerates the graph families the engine can build
// declaratively. Families with a regenerative sampler (regular,
// Erdős–Rényi, trust-subset, almost-regular) are built implicit or
// materialized according to Config.Topology and the point size; the
// others always materialize.
type Family int

const (
	// FamNone builds no topology: the zero Topo value, for points whose
	// custom Run constructs its own graphs (e.g. the dynamic-arrival
	// scenario's per-batch re-randomization).
	FamNone Family = iota
	// FamRegular is the random Δ-regular permutation model: the union of
	// Delta random perfect matchings (gen.Regular / gen.RegularImplicit).
	FamRegular
	// FamErdosRenyi is bipartite G(n, m, p) with the ensure-clients
	// fallback edge (gen.ErdosRenyi / gen.ErdosRenyiImplicit).
	FamErdosRenyi
	// FamTrustSubset samples Delta trusted servers per client without
	// replacement (gen.TrustSubset / gen.TrustSubsetImplicit).
	FamTrustSubset
	// FamAlmostRegular is the paper's heavy-client / light-server example
	// (gen.AlmostRegular / gen.AlmostRegularImplicit), parameterized by
	// Topo.Almost.
	FamAlmostRegular
	// FamComplete is the complete bipartite graph (no randomness, no
	// implicit twin — it is its own O(1) description but the protocols
	// read it through CSR for speed).
	FamComplete
	// FamCustom delegates to Topo.Build; Topo.Key identifies the result
	// for caching.
	FamCustom
)

// Topo declares a point's topology. The engine decides the
// representation: families with an implicit sampler regenerate
// neighborhoods when Config.UseImplicit(N) says so (or always
// materialize when ForceCSR is set — for experiments that need the
// *bipartite.Graph API, e.g. measured degree statistics or the baseline
// algorithms).
type Topo struct {
	Family Family
	// N and M are the client and server counts; M == 0 means M = N.
	N, M int
	// Delta is the per-client degree (regular, trust-subset).
	Delta int
	// P is the edge probability (Erdős–Rényi).
	P float64
	// Almost parameterizes FamAlmostRegular.
	Almost gen.AlmostRegularConfig
	// SeedKey derives the graph seed: cfg.TrialSeed(SeedKey...).
	SeedKey []uint64
	// ForceCSR pins the materialized representation regardless of the
	// configured topology mode.
	ForceCSR bool
	// Key identifies a FamCustom topology for caching; Build constructs
	// it. Build receives the seed derived from SeedKey.
	Key   string
	Build func(cfg Config, seed uint64) (bipartite.Topology, error)
}

// servers returns the explicit server count.
func (t Topo) servers() int {
	if t.M > 0 {
		return t.M
	}
	return t.N
}

// cacheKey identifies the built topology so consecutive points sharing a
// declaration reuse one graph. An empty key disables reuse.
func (t Topo) cacheKey(cfg Config) string {
	if t.Family == FamNone {
		return ""
	}
	if t.Family == FamCustom {
		if t.Key == "" {
			return ""
		}
		return fmt.Sprintf("custom|%s|%v", t.Key, t.SeedKey)
	}
	return fmt.Sprintf("%d|%d|%d|%d|%g|%+v|%v|%v|%v",
		t.Family, t.N, t.servers(), t.Delta, t.P, t.Almost, t.SeedKey, t.ForceCSR, cfg.UseImplicit(t.N))
}

// build constructs the declared topology in the representation the
// configuration selects.
func (t Topo) build(cfg Config) (bipartite.Topology, error) {
	if t.Family == FamNone {
		return nil, nil
	}
	seed := cfg.TrialSeed(t.SeedKey...)
	if t.Family == FamCustom {
		if t.Build == nil {
			return nil, fmt.Errorf("sweep: custom topology %q has no Build function", t.Key)
		}
		return t.Build(cfg, seed)
	}
	if t.N <= 0 {
		return nil, fmt.Errorf("sweep: topology requires N > 0, got %d", t.N)
	}
	implicit := !t.ForceCSR && cfg.UseImplicit(t.N)
	topo, err := t.buildFamily(seed, implicit)
	if err != nil {
		return nil, err
	}
	// implicit-csr materializes the implicit sampler's exact edge
	// multiset: runs on the two representations are bit-for-bit
	// identical, which is what the experiment-level equivalence tests
	// compare.
	if implicit && cfg.Topology == "implicit-csr" {
		return bipartite.Materialize(topo)
	}
	return topo, nil
}

// buildFamily constructs the declared family in the requested
// representation.
func (t Topo) buildFamily(seed uint64, implicit bool) (bipartite.Topology, error) {
	m := t.servers()
	switch t.Family {
	case FamRegular:
		if implicit {
			return gen.RegularImplicit(t.N, t.Delta, seed)
		}
		return gen.Regular(t.N, t.Delta, rng.New(seed))
	case FamErdosRenyi:
		if implicit {
			return gen.ErdosRenyiImplicit(t.N, m, t.P, true, seed)
		}
		return gen.ErdosRenyi(t.N, m, t.P, true, rng.New(seed))
	case FamTrustSubset:
		if implicit {
			return gen.TrustSubsetImplicit(t.N, m, t.Delta, seed)
		}
		return gen.TrustSubset(t.N, m, t.Delta, rng.New(seed))
	case FamAlmostRegular:
		if implicit {
			return gen.AlmostRegularImplicit(t.Almost, seed)
		}
		return gen.AlmostRegular(t.Almost, rng.New(seed))
	case FamComplete:
		return gen.Complete(t.N, m)
	default:
		return nil, fmt.Errorf("sweep: unknown topology family %d", int(t.Family))
	}
}

// Point is one grid point of a sweep: a topology, a protocol
// configuration, and the seeds of its Monte-Carlo trials. The engine
// executes each point's trials on the pooled-Runner trial executor (or
// the point's custom Run function) and hands the outcome to Render.
type Point struct {
	// ID labels the point in the JSON record stream, e.g. "n=1024" or
	// "trust-subset/d=2/c=4".
	ID string
	// Topology declares the graph; consecutive points with identical
	// declarations share one built topology.
	Topology Topo
	// Variant, Params and Options configure the protocol runs.
	Variant core.Variant
	Params  core.Params
	Options core.Options
	// ParamsFrom, when non-nil, derives the run parameters from the built
	// topology (replacing Params) — for experiments whose threshold
	// constant depends on measured graph statistics.
	ParamsFrom func(cfg Config, g bipartite.Topology) (core.Params, error)
	// SeedKey derives trial t's seed as cfg.TrialSeed(SeedKey..., t);
	// Seed, when non-nil, overrides that derivation (used by the few
	// points whose historical seeds do not append the trial index).
	SeedKey []uint64
	Seed    func(cfg Config, trial int) uint64
	// Trials overrides the configured trial count (0 = cfg.TrialCount()).
	Trials int
	// Run, when non-nil, replaces the pooled protocol execution: it is
	// called once per trial (concurrently, on the trial pool) and its
	// results land in Outcome.Custom. Points with Run never build Runners
	// (the topology is still built and passed in).
	Run func(cfg Config, g bipartite.Topology, trial int, seed uint64) (any, error)
	// Render appends the point's table rows (typically one). It runs
	// sequentially in point order after the point's trials complete.
	Render func(cfg Config, out *Outcome, t *Table) error
}

// trialSeed returns trial t's seed under the point's derivation.
func (p *Point) trialSeed(cfg Config, trial int) uint64 {
	if p.Seed != nil {
		return p.Seed(cfg, trial)
	}
	key := make([]uint64, 0, len(p.SeedKey)+1)
	key = append(key, p.SeedKey...)
	key = append(key, uint64(trial))
	return cfg.TrialSeed(key...)
}

// Outcome is what a point's execution produced.
type Outcome struct {
	Point *Point
	// Topology is the built graph the trials ran on. It is only valid
	// inside the point's Render — the engine releases it afterwards so a
	// sweep never pins more than the current (possibly shared) graph.
	Topology bipartite.Topology
	// Results holds the protocol results in trial order (nil for points
	// with a custom Run).
	Results []*core.Result
	// Custom holds the custom Run outputs in trial order (nil otherwise).
	Custom []any
}

// Spec is the declarative description of one experiment: its table
// identity, its point grid, and an optional cross-point Finalize (fits,
// verdict notes).
type Spec struct {
	ID      string
	Title   string
	Columns []string
	Points  []Point
	// Finalize runs after every point rendered; outs holds the outcomes
	// in point order.
	Finalize func(cfg Config, outs []*Outcome, t *Table) error
}

// Run executes the spec: for each point it builds (or reuses) the
// topology, runs the trials on the pooled executor, streams trial
// records, renders the point's rows, and finally calls Finalize. The
// returned table is identical for every Config.TrialParallelism — the
// engine inherits the determinism contract of runPooledTrials.
func Run(cfg Config, spec Spec) (*Table, error) {
	if cfg.Progress != nil && cfg.Telemetry == nil {
		// The progress reporter reads the trial-completion counter, so a
		// progress-only run still needs a registry to bump.
		cfg.Telemetry = telemetry.NewRegistry()
	}
	t := NewTable(spec.ID, spec.Title, spec.Columns...)
	cfg.Records.TableHeader(t.ID, t.Title, t.Columns)
	outs := make([]*Outcome, 0, len(spec.Points))
	var (
		cached    bipartite.Topology
		cachedKey string
	)
	for i := range spec.Points {
		p := &spec.Points[i]
		key := p.Topology.cacheKey(cfg)
		g := cached
		if key == "" || key != cachedKey {
			var err error
			g, err = p.Topology.build(cfg)
			if err != nil {
				return nil, fmt.Errorf("sweep: %s point %q: building topology: %w", spec.ID, p.ID, err)
			}
			cached, cachedKey = g, key
		}
		out, err := runPoint(cfg, spec.ID, p, g)
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
		if p.Render != nil {
			from := len(t.Rows)
			if err := p.Render(cfg, out, t); err != nil {
				return nil, fmt.Errorf("sweep: %s point %q: %w", spec.ID, p.ID, err)
			}
			tableRows(cfg.Records, t, p.ID, from)
		}
		// Release the built graph: outs lives until Finalize, and pinning
		// every point's topology (E8's six materialized almost-regular
		// graphs, E1's sub-threshold CSR points) would hold the whole
		// sweep's graphs at once. Renders that need the graph have already
		// run; the cache still carries it to the next point if shared.
		out.Topology = nil
	}
	if spec.Finalize != nil {
		rendered := len(t.Rows)
		if err := spec.Finalize(cfg, outs, t); err != nil {
			return nil, fmt.Errorf("sweep: %s: finalize: %w", spec.ID, err)
		}
		// Rows appended by Finalize (cross-point summaries) carry no point
		// attribution but must still reach the record stream.
		tableRows(cfg.Records, t, "", rendered)
	}
	tableNotes(cfg.Records, t, 0)
	if cfg.Records != nil && cfg.Records.Err() != nil {
		return nil, cfg.Records.Err()
	}
	return t, nil
}

// runPoint executes one point's trials.
func runPoint(cfg Config, expID string, p *Point, g bipartite.Topology) (*Outcome, error) {
	trials := p.Trials
	if trials <= 0 {
		trials = cfg.TrialCount()
	}
	out := &Outcome{Point: p, Topology: g}
	seed := func(trial int) uint64 { return p.trialSeed(cfg, trial) }
	if cfg.Progress != nil {
		rep := telemetry.NewReporter(cfg.Progress, fmt.Sprintf("%s %s", expID, p.ID),
			cfg.trialCounter(), int64(trials), time.Second)
		defer rep.Stop()
	}
	if p.Run != nil {
		custom := make([]any, trials)
		err := forEachTrial(cfg, trials, g, func(_, trial int) error {
			res, err := p.Run(cfg, g, trial, seed(trial))
			if err != nil {
				return fmt.Errorf("sweep: %s point %q trial %d: %w", expID, p.ID, trial, err)
			}
			custom[trial] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		out.Custom = custom
		return out, nil
	}
	if g == nil {
		return nil, fmt.Errorf("sweep: %s point %q: protocol trials need a topology (Family is FamNone)", expID, p.ID)
	}
	params := p.Params
	if p.ParamsFrom != nil {
		var err error
		params, err = p.ParamsFrom(cfg, g)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s point %q: deriving params: %w", expID, p.ID, err)
		}
	}
	results, err := runPooledTrials(cfg, trials, g, p.Variant, params, p.Options, seed)
	if err != nil {
		return nil, fmt.Errorf("sweep: %s point %q: %w", expID, p.ID, err)
	}
	out.Results = results
	for i, r := range results {
		cfg.Records.Trial(expID, p.ID, i, seed(i), r)
		if len(r.PerRound) > 0 {
			cfg.Records.RoundSeries(expID, p.ID, i, -1, r.PerRound)
		}
	}
	return out, nil
}
