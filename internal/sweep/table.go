package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is the uniform output format of every experiment: a titled grid of
// cells with optional free-form notes (fit parameters, verdicts). It can
// render itself as aligned text for the terminal and as CSV for plotting.
type Table struct {
	ID      string // experiment identifier, e.g. "E1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable returns an empty table with the given identity and columns.
func NewTable(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns}
}

// AddRow appends a row. Cells beyond the column count are dropped; missing
// cells are left empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row built from formatted values: each argument is
// rendered with %v unless it is a float64, which is rendered with 4
// significant digits.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// AddNote appends a formatted note line shown under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string (for tests and logs).
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("table %s: render error: %v", t.ID, err)
	}
	return b.String()
}

// FmtBool renders a boolean as "yes"/"no" for table cells.
func FmtBool(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// FmtRate renders a fraction as a percentage.
func FmtRate(r float64) string {
	return fmt.Sprintf("%.0f%%", 100*r)
}

// WriteCSV writes the table (header + rows) as CSV. Notes are written as
// trailing comment-style rows with a leading "#" cell.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("sweep: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("sweep: writing CSV row: %w", err)
		}
	}
	for _, note := range t.Notes {
		if err := cw.Write([]string{"#", note}); err != nil {
			return fmt.Errorf("sweep: writing CSV note: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
