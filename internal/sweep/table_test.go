package sweep

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestTableAddRowAndRender(t *testing.T) {
	tb := NewTable("T1", "test table", "a", "b", "c")
	tb.AddRow("1", "2", "3")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "z", "dropped")
	tb.AddNote("a note with value %d", 42)

	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d, want 3", len(tb.Rows))
	}
	if tb.Rows[1][1] != "" || tb.Rows[1][2] != "" {
		t.Error("missing cells should be empty strings")
	}
	if len(tb.Rows[2]) != 3 {
		t.Error("extra cells should be dropped")
	}

	out := tb.String()
	if !strings.Contains(out, "T1 — test table") {
		t.Error("render missing title")
	}
	if !strings.Contains(out, "note: a note with value 42") {
		t.Error("render missing note")
	}
	if !strings.Contains(out, "only-one") {
		t.Error("render missing row content")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("T2", "formatted", "n", "x", "s")
	tb.AddRowf(1024, 3.14159265, "hello")
	if tb.Rows[0][0] != "1024" {
		t.Errorf("int cell %q", tb.Rows[0][0])
	}
	if tb.Rows[0][1] != "3.142" {
		t.Errorf("float cell %q, want 4 significant digits", tb.Rows[0][1])
	}
	if tb.Rows[0][2] != "hello" {
		t.Errorf("string cell %q", tb.Rows[0][2])
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("T3", "csv", "col1", "col2")
	tb.AddRow("a", "b")
	tb.AddRow("c", "d")
	tb.AddNote("hello")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 2 rows + note
		t.Fatalf("CSV has %d records, want 4", len(records))
	}
	if records[0][0] != "col1" || records[3][0] != "#" {
		t.Errorf("unexpected CSV layout: %v", records)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if FmtBool(true) != "yes" || FmtBool(false) != "no" {
		t.Error("fmtBool")
	}
	if FmtRate(0.5) != "50%" || FmtRate(1) != "100%" {
		t.Error("fmtRate")
	}
}
