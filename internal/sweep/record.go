package sweep

import (
	"io"

	"repro/internal/records"
)

// Record and Recorder are aliases into internal/records, which owns the
// machine-readable JSON record schema (versioned, with its own
// encoder/decoder round-trip tests). The sweep engine emits through the
// shared Recorder; the aliases keep every existing producer and test
// compiling against the sweep package unchanged. The stream's byte
// format is still pinned by the golden-file tests in
// internal/experiments.
type (
	Record   = records.Record
	Recorder = records.Recorder
)

// NewRecorder returns a Recorder writing one JSON object per line to w.
func NewRecorder(w io.Writer) *Recorder {
	return records.NewRecorder(w)
}

// tableRows streams table rows [from, len(t.Rows)) rendered for a point.
func tableRows(r *Recorder, t *Table, point string, from int) {
	for _, row := range t.Rows[from:] {
		r.Row(t.ID, point, row)
	}
}

// tableNotes streams table notes [from, len(t.Notes)).
func tableNotes(r *Recorder, t *Table, from int) {
	for _, n := range t.Notes[from:] {
		r.Note(t.ID, n)
	}
}
