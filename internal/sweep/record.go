package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// Record is one line of the machine-readable output stream: the engine
// emits a "table" header when a spec starts, one "trial" record per
// protocol trial (in trial order, after the point's trials complete),
// one "round" record per entry of a tracked trial's per-round series
// (after the trial's record; scenario experiments additionally tag each
// record with the epoch it belongs to), one "row" record per rendered
// table row, and one "note" record per table note. The schema is pinned
// by the golden-file tests in internal/experiments; extend it by adding
// fields, never by renaming.
type Record struct {
	Type       string `json:"type"`
	Experiment string `json:"experiment"`

	// Table header fields.
	Title   string   `json:"title,omitempty"`
	Columns []string `json:"columns,omitempty"`

	// Point identity (trial and row records).
	Point string `json:"point,omitempty"`

	// Trial fields (from core.Result). Seed is a decimal string: the full
	// 64-bit seeds routinely exceed 2⁵³, which an IEEE-double JSON
	// consumer (JavaScript, float-coercing loaders) would silently round,
	// breaking "replay this trial from its record".
	Trial           *int     `json:"trial,omitempty"`
	Seed            string   `json:"seed,omitempty"`
	Completed       *bool    `json:"completed,omitempty"`
	Rounds          *int     `json:"rounds,omitempty"`
	Work            *int64   `json:"work,omitempty"`
	WorkPerBall     *float64 `json:"work_per_ball,omitempty"`
	MaxLoad         *int     `json:"max_load,omitempty"`
	BurnedServers   *int     `json:"burned_servers,omitempty"`
	UnassignedBalls *int     `json:"unassigned_balls,omitempty"`

	// Round-series fields (type "round"): one record per protocol round
	// of a tracked trial (core.RoundStats). Epoch tags the scenario
	// epoch the round belongs to for the dynamic experiments
	// (E12/E15–E17); plain tracked trials omit it. The neighborhood
	// statistics (S_t, r_t, K_t) are present only when the run tracked
	// neighborhoods.
	Epoch            *int     `json:"epoch,omitempty"`
	Round            *int     `json:"round,omitempty"`
	AliveBalls       *int     `json:"alive_balls,omitempty"`
	RequestsSent     *int     `json:"requests_sent,omitempty"`
	RequestsAccepted *int     `json:"requests_accepted,omitempty"`
	NewlyBurned      *int     `json:"newly_burned,omitempty"`
	BurnedTotal      *int     `json:"burned_total,omitempty"`
	Saturated        *int     `json:"saturated,omitempty"`
	MaxNbrBurnedFrac *float64 `json:"max_nbr_burned_frac,omitempty"`
	MaxNbrReceived   *int     `json:"max_nbr_received,omitempty"`
	MaxKt            *float64 `json:"max_kt,omitempty"`

	// Row and note payloads.
	Cells []string `json:"cells,omitempty"`
	Note  string   `json:"note,omitempty"`
}

// Recorder streams Records as JSON lines to a writer. It is driven by the
// sweep engine from a single goroutine (trial records are emitted after a
// point's trials complete, in trial order, so the stream is deterministic
// regardless of trial parallelism).
type Recorder struct {
	enc *json.Encoder
	err error
}

// NewRecorder returns a Recorder writing one JSON object per line to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{enc: json.NewEncoder(w)}
}

// Err returns the first write error the recorder encountered, if any.
func (r *Recorder) Err() error { return r.err }

func (r *Recorder) emit(rec Record) {
	if r == nil || r.err != nil {
		return
	}
	if err := r.enc.Encode(rec); err != nil {
		r.err = fmt.Errorf("sweep: writing record: %w", err)
	}
}

// tableHeader announces a spec's table identity and columns.
func (r *Recorder) tableHeader(t *Table) {
	r.emit(Record{Type: "table", Experiment: t.ID, Title: t.Title, Columns: t.Columns})
}

// trial records one protocol trial's outcome.
func (r *Recorder) trial(expID, point string, trial int, seed uint64, res *core.Result) {
	if res == nil {
		return
	}
	wpb := res.WorkPerBall()
	r.emit(Record{
		Type:            "trial",
		Experiment:      expID,
		Point:           point,
		Trial:           &trial,
		Seed:            strconv.FormatUint(seed, 10),
		Completed:       &res.Completed,
		Rounds:          &res.Rounds,
		Work:            &res.Work,
		WorkPerBall:     &wpb,
		MaxLoad:         &res.MaxLoad,
		BurnedServers:   &res.BurnedServers,
		UnassignedBalls: &res.UnassignedBalls,
	})
}

// RoundSeries streams one "round" record per entry of a trial's
// per-round series (the closing of ROADMAP's per-round-series item: a
// -json consumer can reconstruct every tracked trial's S_t/alive-ball
// trajectory without rerunning). epoch < 0 omits the epoch field — the
// engine uses that form automatically for every protocol trial whose
// Result carries a PerRound series; scenario experiments (E12, E15–E17)
// call it from their Render, which runs sequentially in point order, so
// the stream stays deterministic for every trial parallelism. The
// neighborhood fields are emitted only when the series actually tracked
// neighborhoods (K_t is positive from the first round whenever requests
// flow, so an all-zero K_t series means tracking was off).
func (r *Recorder) RoundSeries(expID, point string, trial, epoch int, rounds []core.RoundStats) {
	if r == nil {
		return
	}
	tracked := false
	for i := range rounds {
		if rounds[i].MaxKt != 0 || rounds[i].MaxNeighborhoodBurnedFrac != 0 || rounds[i].MaxNeighborhoodReceived != 0 {
			tracked = true
			break
		}
	}
	for i := range rounds {
		rs := rounds[i]
		tr := trial
		rec := Record{
			Type:             "round",
			Experiment:       expID,
			Point:            point,
			Trial:            &tr,
			Round:            &rs.Round,
			AliveBalls:       &rs.AliveBalls,
			RequestsSent:     &rs.RequestsSent,
			RequestsAccepted: &rs.RequestsAccepted,
			NewlyBurned:      &rs.NewlyBurned,
			BurnedTotal:      &rs.BurnedTotal,
			Saturated:        &rs.SaturatedThisRound,
		}
		if epoch >= 0 {
			ep := epoch
			rec.Epoch = &ep
		}
		if tracked {
			rec.MaxNbrBurnedFrac = &rs.MaxNeighborhoodBurnedFrac
			rec.MaxNbrReceived = &rs.MaxNeighborhoodReceived
			rec.MaxKt = &rs.MaxKt
		}
		r.emit(rec)
	}
}

// rows records table rows [from, len(t.Rows)) rendered for a point.
func (r *Recorder) rows(t *Table, point string, from int) {
	if r == nil {
		return
	}
	for _, row := range t.Rows[from:] {
		r.emit(Record{Type: "row", Experiment: t.ID, Point: point, Cells: row})
	}
}

// notes records table notes [from, len(t.Notes)).
func (r *Recorder) notes(t *Table, from int) {
	if r == nil {
		return
	}
	for _, n := range t.Notes[from:] {
		r.emit(Record{Type: "note", Experiment: t.ID, Note: n})
	}
}
