package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// Record is one line of the machine-readable output stream: the engine
// emits a "table" header when a spec starts, one "trial" record per
// protocol trial (in trial order, after the point's trials complete), one
// "row" record per rendered table row, and one "note" record per table
// note. The schema is pinned by the golden-file test in
// internal/experiments; extend it by adding fields, never by renaming.
type Record struct {
	Type       string `json:"type"`
	Experiment string `json:"experiment"`

	// Table header fields.
	Title   string   `json:"title,omitempty"`
	Columns []string `json:"columns,omitempty"`

	// Point identity (trial and row records).
	Point string `json:"point,omitempty"`

	// Trial fields (from core.Result). Seed is a decimal string: the full
	// 64-bit seeds routinely exceed 2⁵³, which an IEEE-double JSON
	// consumer (JavaScript, float-coercing loaders) would silently round,
	// breaking "replay this trial from its record".
	Trial           *int     `json:"trial,omitempty"`
	Seed            string   `json:"seed,omitempty"`
	Completed       *bool    `json:"completed,omitempty"`
	Rounds          *int     `json:"rounds,omitempty"`
	Work            *int64   `json:"work,omitempty"`
	WorkPerBall     *float64 `json:"work_per_ball,omitempty"`
	MaxLoad         *int     `json:"max_load,omitempty"`
	BurnedServers   *int     `json:"burned_servers,omitempty"`
	UnassignedBalls *int     `json:"unassigned_balls,omitempty"`

	// Row and note payloads.
	Cells []string `json:"cells,omitempty"`
	Note  string   `json:"note,omitempty"`
}

// Recorder streams Records as JSON lines to a writer. It is driven by the
// sweep engine from a single goroutine (trial records are emitted after a
// point's trials complete, in trial order, so the stream is deterministic
// regardless of trial parallelism).
type Recorder struct {
	enc *json.Encoder
	err error
}

// NewRecorder returns a Recorder writing one JSON object per line to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{enc: json.NewEncoder(w)}
}

// Err returns the first write error the recorder encountered, if any.
func (r *Recorder) Err() error { return r.err }

func (r *Recorder) emit(rec Record) {
	if r == nil || r.err != nil {
		return
	}
	if err := r.enc.Encode(rec); err != nil {
		r.err = fmt.Errorf("sweep: writing record: %w", err)
	}
}

// tableHeader announces a spec's table identity and columns.
func (r *Recorder) tableHeader(t *Table) {
	r.emit(Record{Type: "table", Experiment: t.ID, Title: t.Title, Columns: t.Columns})
}

// trial records one protocol trial's outcome.
func (r *Recorder) trial(expID, point string, trial int, seed uint64, res *core.Result) {
	if res == nil {
		return
	}
	wpb := res.WorkPerBall()
	r.emit(Record{
		Type:            "trial",
		Experiment:      expID,
		Point:           point,
		Trial:           &trial,
		Seed:            strconv.FormatUint(seed, 10),
		Completed:       &res.Completed,
		Rounds:          &res.Rounds,
		Work:            &res.Work,
		WorkPerBall:     &wpb,
		MaxLoad:         &res.MaxLoad,
		BurnedServers:   &res.BurnedServers,
		UnassignedBalls: &res.UnassignedBalls,
	})
}

// rows records table rows [from, len(t.Rows)) rendered for a point.
func (r *Recorder) rows(t *Table, point string, from int) {
	if r == nil {
		return
	}
	for _, row := range t.Rows[from:] {
		r.emit(Record{Type: "row", Experiment: t.ID, Point: point, Cells: row})
	}
}

// notes records table notes [from, len(t.Notes)).
func (r *Recorder) notes(t *Table, from int) {
	if r == nil {
		return
	}
	for _, n := range t.Notes[from:] {
		r.emit(Record{Type: "note", Experiment: t.ID, Note: n})
	}
}
