package sweep

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestForEachTrialCoversAllTrialsOnce(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		cfg := Config{Quick: true, TrialParallelism: par}
		const trials = 37
		var counts [trials]int32
		err := forEachTrial(cfg, trials, nil, func(worker, trial int) error {
			if worker < 0 || worker >= par {
				t.Errorf("worker index %d outside [0,%d)", worker, par)
			}
			atomic.AddInt32(&counts[trial], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallelism=%d: trial %d executed %d times", par, i, c)
			}
		}
	}
}

func TestForEachTrialReturnsFirstError(t *testing.T) {
	cfg := Config{Quick: true, TrialParallelism: 4}
	sentinel := errors.New("trial 5 failed")
	err := forEachTrial(cfg, 20, nil, func(_, trial int) error {
		if trial >= 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the trial-5 sentinel", err)
	}
	if err := forEachTrial(cfg, 0, nil, func(_, _ int) error { return sentinel }); err != nil {
		t.Fatalf("zero trials should be a no-op, got %v", err)
	}
}

// TestRunPooledTrialsMatchesFreshRuns is the determinism contract of the
// trial pool: reusing Runners via Reseed must give results bit-for-bit
// identical to fresh single-threaded runs, in trial order, for every
// parallelism level.
func TestRunPooledTrialsMatchesFreshRuns(t *testing.T) {
	g, err := gen.Regular(512, 30, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{D: 2, C: 2.5}
	opts := core.Options{TrackRounds: true, TrackLoads: true}
	seed := func(trial int) uint64 { return 0xBEEF + uint64(trial)*7 }
	const trials = 12

	fresh := make([]*core.Result, trials)
	for i := 0; i < trials; i++ {
		p := params
		p.Workers = 1
		p.Seed = seed(i)
		fresh[i], err = core.Run(g, core.SAER, p, opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, par := range []int{1, 3, 8} {
		cfg := Config{Quick: true, TrialParallelism: par}
		got, err := runPooledTrials(cfg, trials, g, core.SAER, params, opts, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != trials {
			t.Fatalf("parallelism=%d: got %d results, want %d", par, len(got), trials)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], fresh[i]) {
				t.Fatalf("parallelism=%d trial=%d: pooled result diverges from fresh run:\n  fresh=%+v\n  pooled=%+v",
					par, i, fresh[i], got[i])
			}
		}
	}
}

func TestTrialWorkersSplit(t *testing.T) {
	small, err := gen.RegularImplicit(512, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := gen.RegularImplicit(intraTrialMinClients, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := gen.RegularImplicit(hugePointMinClients, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name        string
		g           interface{ NumClients() int }
		parallelism int
		trials      int
		want        int
	}{
		{"small point stays trial-parallel", small, 8, 10, 1},
		{"nil topology stays trial-parallel", nil, 8, 1, 1},
		{"big point, many trials: budget goes to trials", big, 8, 10, 1},
		{"big point, one trial: budget goes to the Runner", big, 8, 1, 8},
		{"big point, split budget", big, 8, 3, 2},
		{"single-worker budget", big, 1, 1, 1},
		{"huge point, many trials: whole budget to the Runner", huge, 8, 10, 8},
		{"huge point, one trial", huge, 8, 1, 8},
	}
	for _, tc := range cases {
		cfg := Config{TrialParallelism: tc.parallelism}
		var topo bipartite.Topology
		if tc.g != nil {
			topo = tc.g.(bipartite.Topology)
		}
		got := trialWorkers(cfg, tc.trials, topo)
		if got != tc.want {
			t.Errorf("%s: trialWorkers = %d, want %d", tc.name, got, tc.want)
		}
		if concurrent := concurrentTrials(cfg, tc.trials, topo); got*concurrent > tc.parallelism {
			t.Errorf("%s: split %d×%d exceeds the budget %d", tc.name, got, concurrent, tc.parallelism)
		}
	}
}

// TestRunPooledTrialsIntraTrialDeterminism pins the worker-budget split's
// determinism: a big point whose trials run on multi-worker sharded
// Runners must produce results bit-for-bit identical to fresh
// single-threaded runs (up to the Params.Workers config echo).
func TestRunPooledTrialsIntraTrialDeterminism(t *testing.T) {
	g, err := gen.RegularImplicit(intraTrialMinClients, 12, 44)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{D: 2, C: 4}
	opts := core.Options{TrackLoads: true}
	seed := func(trial int) uint64 { return 0xF00D + uint64(trial) }
	const trials = 2
	cfg := Config{TrialParallelism: 8}
	if w := trialWorkers(cfg, trials, g); w <= 1 {
		t.Fatalf("setup broken: split gave %d workers, want > 1", w)
	}
	got, err := runPooledTrials(cfg, trials, g, core.SAER, params, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		p := params
		p.Workers = 1
		p.Seed = seed(i)
		fresh, err := core.Run(g, core.SAER, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		gi := *got[i]
		gi.Params.Workers = 0
		fi := *fresh
		fi.Params.Workers = 0
		if !reflect.DeepEqual(&gi, &fi) {
			t.Fatalf("trial %d: multi-worker pooled result diverges from fresh single-threaded run", i)
		}
	}
}

func TestRunPooledTrialsPropagatesRunnerError(t *testing.T) {
	g, err := gen.Regular(64, 8, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Quick: true}
	// D = 0 is invalid and must surface as an error, not a panic.
	if _, err := runPooledTrials(cfg, 3, g, core.SAER, core.Params{D: 0, C: 4}, core.Options{},
		func(trial int) uint64 { return uint64(trial) }); err == nil {
		t.Fatal("invalid params did not produce an error")
	}
}
