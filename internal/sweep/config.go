// Package sweep is the declarative experiment executor: an experiment is
// described as a Spec — a grid of Points (topology, protocol variant,
// parameters, per-trial measurement) plus rendering hooks — and one shared
// engine executes it: it owns topology representation selection
// (csr/implicit/auto), pooled Runner reuse across Monte-Carlo trials,
// deterministic per-(point, trial) seeding, and dual rendering (an aligned
// text/CSV Table and a machine-readable JSON record stream). Every
// experiment of the reproduction (E1–E14, see DESIGN.md) runs through
// this engine instead of hand-rolling its own sweep loop.
package sweep

import (
	"io"
	"runtime"

	"repro/internal/telemetry"
)

// Config is the shared configuration of all experiment sweeps (the
// experiments package aliases it as SuiteConfig).
type Config struct {
	// Quick selects reduced problem sizes and trial counts so the whole
	// suite finishes in seconds (used by `go test` and smoke runs). The
	// full-size configuration is intended for the saer-experiments CLI.
	Quick bool
	// Trials is the number of independent protocol runs per configuration
	// point. Zero selects a per-mode default (3 quick / 10 full).
	Trials int
	// Seed derives all graph and protocol seeds.
	Seed uint64
	// TrialParallelism caps how many trials run concurrently (each trial
	// itself runs single-threaded to avoid oversubscription). Zero selects
	// GOMAXPROCS.
	TrialParallelism int
	// Topology selects how scaling-experiment graphs are represented:
	// "csr" always materializes, "implicit" always regenerates
	// neighborhoods from per-client seeds, "implicit-csr" materializes
	// the implicit sampler's exact edge multiset (the memory cost of csr
	// with the edges of implicit, so runs are bit-for-bit comparable
	// across the two — the knob the experiment-level equivalence tests
	// use), and "" (auto) materializes below ImplicitSizeThreshold
	// clients and goes implicit above it — the setting that lets the
	// full-mode sweeps reach n = 2²⁰ without holding O(n·Δ) edges in
	// memory.
	Topology string
	// Records, when non-nil, receives one JSON record per trial, table
	// row and note as the engine executes (see Recorder). Nil disables
	// the stream; the Table output is unaffected either way.
	Records *Recorder
	// Telemetry, when non-nil, instruments every trial's protocol run
	// (core round counters and phase histograms) plus the engine's own
	// trial-completion counter (saer_trials_total). Results and tables
	// are bit-for-bit identical with or without it.
	Telemetry *telemetry.Registry
	// Progress, when non-nil, receives live per-point progress lines
	// (completed trials, rate, ETA) driven by the saer_trials_total
	// counter — typically os.Stderr, so the lines never mix into a
	// table or record stream on stdout. Run supplies a private registry
	// when Progress is set and Telemetry is nil.
	Progress io.Writer
	// MaxN, when positive, overrides each scaling experiment's size
	// ceiling in both directions: a lower value trims the sweep (bounding
	// a run's time and memory), a higher value pushes it past the
	// experiment default — including in quick mode, where a raised
	// ceiling appends just the ceiling point itself, the shape the CI
	// smoke uses to probe n = 2²² without sweeping the sizes in between.
	// Zero keeps the per-experiment defaults.
	MaxN int
}

// ImplicitSizeThreshold is the auto-mode switchover: at and above this
// many clients the Δ = log² n CSR adjacency (two int32 arrays per side)
// costs hundreds of megabytes, so experiments regenerate neighborhoods
// instead of storing them.
const ImplicitSizeThreshold = 1 << 16

// TrialCount returns the number of trials per point (the configured
// count, or the per-mode default).
func (c Config) TrialCount() int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return 3
	}
	return 10
}

// Parallelism returns the trial-pool worker count.
func (c Config) Parallelism() int {
	if c.TrialParallelism > 0 {
		return c.TrialParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// UseImplicit reports whether a sweep point with n clients should build
// the implicit (regenerative) topology representation.
func (c Config) UseImplicit(n int) bool {
	switch c.Topology {
	case "implicit", "implicit-csr":
		return true
	case "csr":
		return false
	default:
		return n >= ImplicitSizeThreshold
	}
}

// trialCounter returns the engine's trial-completion counter, or nil
// (nil-receiver-safe) when telemetry is off.
func (c Config) trialCounter() *telemetry.Counter {
	if c.Telemetry == nil {
		return nil
	}
	return c.Telemetry.Counter("saer_trials_total")
}

// TrialSeed derives a deterministic seed for (experiment, point, trial):
// every experiment passes its number and point coordinates as parts, and
// the engine appends the trial index. The mixing is a fixed function of
// (Seed, parts) so a sweep is reproducible from the suite seed alone.
func (c Config) TrialSeed(parts ...uint64) uint64 {
	h := c.Seed ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}
