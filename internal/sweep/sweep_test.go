package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
)

// testSpec is a small two-point sweep over the regular family.
func testSpec() Spec {
	spec := Spec{
		ID:      "T1",
		Title:   "engine test",
		Columns: []string{"n", "rounds_max", "completed"},
	}
	for _, n := range []int{128, 256} {
		n := n
		spec.Points = append(spec.Points, Point{
			ID:       fmt.Sprintf("n=%d", n),
			Topology: Topo{Family: FamRegular, N: n, Delta: 16, SeedKey: []uint64{1, uint64(n)}},
			Variant:  core.SAER,
			Params:   core.Params{D: 2, C: 4},
			SeedKey:  []uint64{1, uint64(n)},
			Render: func(cfg Config, out *Outcome, t *Table) error {
				maxRounds, completed := 0, true
				for _, r := range out.Results {
					if r.Rounds > maxRounds {
						maxRounds = r.Rounds
					}
					completed = completed && r.Completed
				}
				t.AddRowf(n, maxRounds, FmtBool(completed))
				return nil
			},
		})
	}
	return spec
}

// TestRunDeterministicAcrossParallelism is the engine's determinism
// contract: the rendered table (and the record stream) must not depend on
// how many trial workers execute it.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	var ref string
	var refRecords string
	for _, par := range []int{1, 4} {
		cfg := Config{Quick: true, Seed: 99, Trials: 5, TrialParallelism: par}
		var buf bytes.Buffer
		cfg.Records = NewRecorder(&buf)
		tb, err := Run(cfg, testSpec())
		if err != nil {
			t.Fatal(err)
		}
		if par == 1 {
			ref = tb.String()
			refRecords = buf.String()
			continue
		}
		if tb.String() != ref {
			t.Errorf("parallelism=%d: table diverges:\n%s\nvs\n%s", par, tb, ref)
		}
		if buf.String() != refRecords {
			t.Errorf("parallelism=%d: record stream diverges", par)
		}
	}
}

// TestRunTopologyCache checks that consecutive points with the same
// declaration share one built topology and that a changed declaration
// rebuilds.
func TestRunTopologyCache(t *testing.T) {
	builds := 0
	custom := func(key string) Topo {
		return Topo{Family: FamCustom, Key: key, Build: func(cfg Config, seed uint64) (bipartite.Topology, error) {
			builds++
			return gen.RegularImplicit(64, 8, seed)
		}}
	}
	spec := Spec{ID: "T2", Title: "cache", Columns: []string{"x"}}
	for i, key := range []string{"a", "a", "b", "a"} {
		spec.Points = append(spec.Points, Point{
			ID:       fmt.Sprintf("p%d", i),
			Topology: custom(key),
			Variant:  core.SAER,
			Params:   core.Params{D: 1, C: 4},
			SeedKey:  []uint64{uint64(i)},
			Trials:   1,
		})
	}
	if _, err := Run(Config{Seed: 1}, spec); err != nil {
		t.Fatal(err)
	}
	// a, (cached), b, a-again: the cache holds only the previous build.
	if builds != 3 {
		t.Errorf("built %d topologies, want 3 (LRU-1 cache over a,a,b,a)", builds)
	}
}

// TestRunParamsFrom checks that parameters can be derived from the built
// topology.
func TestRunParamsFrom(t *testing.T) {
	spec := Spec{ID: "T3", Title: "params", Columns: []string{"cap"}}
	spec.Points = append(spec.Points, Point{
		ID:       "p",
		Topology: Topo{Family: FamRegular, N: 64, Delta: 8, SeedKey: []uint64{3}},
		Variant:  core.SAER,
		ParamsFrom: func(cfg Config, g bipartite.Topology) (core.Params, error) {
			if g.NumClients() != 64 {
				return core.Params{}, fmt.Errorf("wrong topology: %d clients", g.NumClients())
			}
			return core.Params{D: 2, C: 3}, nil
		},
		SeedKey: []uint64{3},
		Trials:  1,
		Render: func(cfg Config, out *Outcome, t *Table) error {
			t.AddRowf(out.Results[0].Params.Capacity())
			return nil
		},
	})
	tb, err := Run(Config{Seed: 5}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][0] != "6" {
		t.Errorf("derived params not applied: cap cell %q, want 6", tb.Rows[0][0])
	}
}

// TestRunCustomAndSeedOverride checks custom per-trial runners and the
// trial-less seed derivation.
func TestRunCustomAndSeedOverride(t *testing.T) {
	var seeds []uint64
	spec := Spec{ID: "T4", Title: "custom", Columns: []string{"trials"}}
	spec.Points = append(spec.Points, Point{
		ID:     "p",
		Trials: 1,
		Seed:   func(cfg Config, _ int) uint64 { return cfg.TrialSeed(42) },
		Run: func(cfg Config, g bipartite.Topology, trial int, seed uint64) (any, error) {
			if g != nil {
				return nil, fmt.Errorf("FamNone point should get a nil topology")
			}
			seeds = append(seeds, seed)
			return trial, nil
		},
		Render: func(cfg Config, out *Outcome, t *Table) error {
			t.AddRowf(len(out.Custom))
			return nil
		},
	})
	cfg := Config{Seed: 7}
	tb, err := Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][0] != "1" {
		t.Errorf("custom outputs not collected: %v", tb.Rows)
	}
	if len(seeds) != 1 || seeds[0] != cfg.TrialSeed(42) {
		t.Errorf("seed override not honored: %v, want %d", seeds, cfg.TrialSeed(42))
	}
}

// TestRunRejectsProtocolPointWithoutTopology guards the FamNone misuse.
func TestRunRejectsProtocolPointWithoutTopology(t *testing.T) {
	spec := Spec{ID: "T5", Title: "bad", Columns: []string{"x"}}
	spec.Points = append(spec.Points, Point{ID: "p", Variant: core.SAER, Params: core.Params{D: 1, C: 4}, Trials: 1})
	if _, err := Run(Config{}, spec); err == nil || !strings.Contains(err.Error(), "FamNone") {
		t.Fatalf("protocol point without topology accepted: %v", err)
	}
}

// TestRecorderStream checks the record type sequence of a small sweep.
func TestRecorderStream(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1, Trials: 2}
	var buf bytes.Buffer
	cfg.Records = NewRecorder(&buf)
	spec := testSpec()
	spec.Finalize = func(cfg Config, outs []*Outcome, t *Table) error {
		t.AddNote("a note")
		return nil
	}
	if _, err := Run(cfg, spec); err != nil {
		t.Fatal(err)
	}
	var types []string
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if rec.Experiment != "T1" {
			t.Errorf("record with wrong experiment: %+v", rec)
		}
		types = append(types, rec.Type)
	}
	want := []string{"table", "trial", "trial", "row", "trial", "trial", "row", "note"}
	if fmt.Sprint(types) != fmt.Sprint(want) {
		t.Errorf("record type sequence %v, want %v", types, want)
	}
}

// TestImplicitCSRTwinEquivalence checks the engine-level topology knob:
// the same spec under "implicit" and "implicit-csr" must render identical
// tables (identical edge multisets, identical runs), and under "csr" a
// different graph family sample (the materialized generators draw
// differently) — but still a valid table.
func TestImplicitCSRTwinEquivalence(t *testing.T) {
	base := Config{Quick: true, Seed: 3, Trials: 3}
	implicit := base
	implicit.Topology = "implicit"
	twin := base
	twin.Topology = "implicit-csr"
	ti, err := Run(implicit, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	tc, err := Run(twin, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ti.String() != tc.String() {
		t.Errorf("implicit vs implicit-csr tables diverge:\n%s\nvs\n%s", ti, tc)
	}
	csr := base
	csr.Topology = "csr"
	if _, err := Run(csr, testSpec()); err != nil {
		t.Fatal(err)
	}
}
