package sweep

import (
	"sync"
	"sync/atomic"

	"repro/internal/bipartite"
	"repro/internal/core"
)

// forEachTrial executes fn(trial) for trial = 0..trials-1 on a bounded
// worker pool of at most cfg.Parallelism() goroutines, handing each worker
// a stable worker index. Work is distributed by an atomic counter, so no
// goroutine is ever spawned per trial. The first error (in trial order) is
// returned.
func forEachTrial(cfg Config, trials int, fn func(worker, trial int) error) error {
	if trials <= 0 {
		return nil
	}
	errs := make([]error, trials)
	workers := min(cfg.Parallelism(), trials)
	if workers <= 1 {
		for i := 0; i < trials; i++ {
			errs[i] = fn(0, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= trials {
						return
					}
					errs[i] = fn(w, i)
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runPooledTrials runs independent Monte-Carlo trials of the same
// (graph, variant, params, options) configuration concurrently on a
// shared pool of reusable Runners: each pool worker lazily builds one
// Runner and drives it through successive trials via Reseed, so graph
// validation and state allocation happen once per worker instead of once
// per trial. Every trial runs single-threaded (params.Workers is forced
// to 1): at experiment sizes, trial-level parallelism beats intra-run
// parallelism, which cannot amortize its barriers on quick instances.
// Results are returned in trial order and are bit-for-bit identical to
// fresh single-threaded runs (the determinism contract of core.Runner).
func runPooledTrials(cfg Config, trials int, g bipartite.Topology, variant core.Variant,
	params core.Params, opts core.Options, seed func(trial int) uint64) ([]*core.Result, error) {
	params.Workers = 1
	results := make([]*core.Result, trials)
	runners := make([]*core.Runner, min(cfg.Parallelism(), max(trials, 1)))
	err := forEachTrial(cfg, trials, func(worker, i int) error {
		r := runners[worker]
		if r == nil {
			var e error
			r, e = core.NewRunner(g, variant, params, opts)
			if e != nil {
				return e
			}
			runners[worker] = r
		}
		r.Reseed(seed(i))
		results[i] = r.Run()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
