package sweep

import (
	"sync"
	"sync/atomic"

	"repro/internal/bipartite"
	"repro/internal/core"
)

// forEachTrial executes fn(trial) for trial = 0..trials-1 on a bounded
// worker pool of at most concurrentTrials(cfg, trials, g) goroutines,
// handing each worker a stable worker index. Work is distributed by an
// atomic counter, so no goroutine is ever spawned per trial. The first
// error (in trial order) is returned. g may be nil (custom points
// without a topology) — nil is never a huge point.
func forEachTrial(cfg Config, trials int, g bipartite.Topology, fn func(worker, trial int) error) error {
	if trials <= 0 {
		return nil
	}
	errs := make([]error, trials)
	done := cfg.trialCounter() // nil (and nil-receiver-safe) without telemetry
	workers := concurrentTrials(cfg, trials, g)
	if workers <= 1 {
		for i := 0; i < trials; i++ {
			errs[i] = fn(0, i)
			done.Inc(0)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= trials {
						return
					}
					errs[i] = fn(w, i)
					done.Inc(w)
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// intraTrialMinClients is the point size from which one trial is big
// enough to amortize intra-trial parallelism (the sharded round
// pipeline's phase barriers); it matches the implicit-representation
// threshold — the sizes whose dense rounds stream megabytes per phase.
const intraTrialMinClients = ImplicitSizeThreshold

// hugePointMinClients is the point size from which concurrent trials
// stop paying: each trial's round state is tens of megabytes, so trials
// running side by side evict each other's tallies and frontiers from
// cache. Huge points run one trial at a time and hand the whole worker
// budget to that trial's Runner, whose work-stealing scheduler and
// sharded pipeline turn it into intra-trial parallelism.
const hugePointMinClients = 1 << 20

// concurrentTrials is the number of trials that run at once: the trial
// pool's worker count, the runners slice size, and the denominator of
// trialWorkers' budget split — all three must agree, so they share this
// one definition. Huge points serialize trials (see hugePointMinClients).
func concurrentTrials(cfg Config, trials int, g bipartite.Topology) int {
	if g != nil && g.NumClients() >= hugePointMinClients {
		return 1
	}
	return min(cfg.Parallelism(), max(trials, 1))
}

// trialWorkers splits the configured worker budget between trial-level
// and intra-trial parallelism: many small points saturate the budget
// with concurrent trials (each single-threaded — barriers cannot
// amortize on quick instances), while few big points hand the spare
// budget to each trial's Runner, whose sharded round pipeline and
// work-stealing scheduler turn it into intra-trial parallelism. Huge
// points (n ≥ hugePointMinClients) get the entire budget, since their
// trials run one at a time. The product of concurrent trials and
// per-trial workers never exceeds cfg.Parallelism().
func trialWorkers(cfg Config, trials int, g bipartite.Topology) int {
	if g == nil || g.NumClients() < intraTrialMinClients {
		return 1
	}
	return max(1, cfg.Parallelism()/concurrentTrials(cfg, trials, g))
}

// runPooledTrials runs independent Monte-Carlo trials of the same
// (graph, variant, params, options) configuration concurrently on a
// shared pool of reusable Runners: each pool worker lazily builds one
// Runner and drives it through successive trials via Reseed, so graph
// validation and state allocation happen once per worker instead of once
// per trial. The worker budget is split by trialWorkers: small points
// run each trial single-threaded, big points with spare budget run each
// trial on a sharded multi-worker Runner. Results are returned in trial
// order and are bit-for-bit identical to fresh single-threaded runs for
// every split (the determinism contract of core.Runner).
func runPooledTrials(cfg Config, trials int, g bipartite.Topology, variant core.Variant,
	params core.Params, opts core.Options, seed func(trial int) uint64) ([]*core.Result, error) {
	params.Workers = trialWorkers(cfg, trials, g)
	// The Point grid still declares the (variant, params, options) triple;
	// execution goes through the single validated core.Config surface.
	rcfg := core.ConfigFrom(variant, params, opts)
	rcfg.Telemetry = cfg.Telemetry
	results := make([]*core.Result, trials)
	runners := make([]*core.Runner, concurrentTrials(cfg, trials, g))
	err := forEachTrial(cfg, trials, g, func(worker, i int) error {
		r := runners[worker]
		if r == nil {
			var e error
			r, e = rcfg.NewRunner(g)
			if e != nil {
				return e
			}
			runners[worker] = r
		}
		r.Reseed(seed(i))
		results[i] = r.Run()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
