package gen

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// TestSampleRowNoDuplicates checks the without-replacement contract of
// the Feistel partial shuffle across row sizes, including k = pool (a
// full permutation) and tiny pools.
func TestSampleRowNoDuplicates(t *testing.T) {
	cases := []struct{ pool, k int }{
		{1, 1}, {2, 2}, {7, 3}, {64, 8}, {100, 100}, {1000, 1},
		{1 << 12, 169}, {1 << 12, 1 << 12}, {4097, 2048},
	}
	for _, tc := range cases {
		for seed := uint64(0); seed < 5; seed++ {
			s := rng.StreamAt(seed, 0)
			row := SampleRow(&s, tc.pool, tc.k, nil)
			if len(row) != tc.k {
				t.Fatalf("pool=%d k=%d seed=%d: row length %d", tc.pool, tc.k, seed, len(row))
			}
			seen := make(map[int32]bool, tc.k)
			for _, u := range row {
				if u < 0 || int(u) >= tc.pool {
					t.Fatalf("pool=%d k=%d seed=%d: value %d out of range", tc.pool, tc.k, seed, u)
				}
				if seen[u] {
					t.Fatalf("pool=%d k=%d seed=%d: duplicate value %d", tc.pool, tc.k, seed, u)
				}
				seen[u] = true
			}
		}
	}
}

func TestSampleRowPanicsWhenKExceedsPool(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleRow accepted k > pool")
		}
	}()
	s := rng.StreamAt(1, 0)
	SampleRow(&s, 4, 5, nil)
}

// TestSampleRowDeterministicFromStreamAt is the regeneration contract:
// the row is a pure function of the (seed, client) stream, so re-deriving
// the stream and resampling must reproduce it exactly — and consuming the
// stream differently (a different client index or seed) must not.
func TestSampleRowDeterministicFromStreamAt(t *testing.T) {
	const pool, k = 1 << 10, 60
	for client := 0; client < 50; client++ {
		s1 := rng.StreamAt(0xFACE, client)
		s2 := rng.StreamAt(0xFACE, client)
		a := SampleRow(&s1, pool, k, nil)
		b := SampleRow(&s2, pool, k, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("client %d: regenerated row diverges at slot %d: %d vs %d", client, i, a[i], b[i])
			}
		}
	}
	s1 := rng.StreamAt(0xFACE, 1)
	s2 := rng.StreamAt(0xFACE, 2)
	a := SampleRow(&s1, pool, k, nil)
	b := SampleRow(&s2, pool, k, nil)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct clients produced identical rows")
	}
}

// TestSampleRowUniformCoverage is the distribution sanity check: across
// many independent clients, every server of the pool should be sampled
// with frequency close to k/pool. The dup-scan reference (distinctRow) is
// run through the identical harness, so the test also demonstrates the
// equivalence of the two samplers where their representations overlap:
// both emit exact k-subsets with near-uniform per-server inclusion; only
// the within-row order and the per-row cost differ.
func TestSampleRowUniformCoverage(t *testing.T) {
	const (
		pool    = 128
		k       = 16
		clients = 8000
	)
	samplers := []struct {
		name string
		row  func(s *rng.Stream, buf []int32) []int32
	}{
		{"feistel-partial-shuffle", func(s *rng.Stream, buf []int32) []int32 { return SampleRow(s, pool, k, buf) }},
		{"dup-scan-reference", func(s *rng.Stream, buf []int32) []int32 { return distinctRow(s, pool, k, buf) }},
	}
	for _, sp := range samplers {
		t.Run(sp.name, func(t *testing.T) {
			counts := make([]int, pool)
			var buf []int32
			for v := 0; v < clients; v++ {
				s := rng.StreamAt(0xC0FFEE, v)
				buf = sp.row(&s, buf[:0])
				for _, u := range buf {
					counts[u]++
				}
			}
			// Each server's inclusion count is Binomial(clients, k/pool):
			// mean 1000, σ ≈ 29.6. Allow ±6σ — a generous band that still
			// catches any systematic bias of the keyed permutation.
			mean := float64(clients) * k / pool
			sigma := math.Sqrt(float64(clients) * (k / float64(pool)) * (1 - k/float64(pool)))
			for u, c := range counts {
				if math.Abs(float64(c)-mean) > 6*sigma {
					t.Errorf("server %d sampled %d times, want %.0f ± %.0f", u, c, mean, 6*sigma)
				}
			}
		})
	}
}

func TestTrustSubsetImplicitStructure(t *testing.T) {
	nc, ns, k := 300, 200, 17
	topo, err := TrustSubsetImplicit(nc, ns, k, 99)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumClients() != nc || topo.NumServers() != ns {
		t.Fatalf("wrong sides %d x %d", topo.NumClients(), topo.NumServers())
	}
	if topo.MinClientDegree() != k || topo.MaxClientDegree() != k {
		t.Fatalf("degree bounds [%d,%d], want [%d,%d]", topo.MinClientDegree(), topo.MaxClientDegree(), k, k)
	}
	g, err := topo.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < nc; v++ {
		row := topo.AppendClientNeighbors(v, nil)
		if len(row) != k {
			t.Fatalf("client %d degree %d, want %d", v, len(row), k)
		}
		got := g.ClientNeighbors(v)
		for i := range row {
			if got[i] != row[i] {
				t.Fatalf("client %d slot %d: CSR %d, implicit %d", v, i, got[i], row[i])
			}
		}
		seen := make(map[int32]bool, k)
		for _, u := range row {
			if seen[u] {
				t.Fatalf("client %d trusts server %d twice", v, u)
			}
			seen[u] = true
		}
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrustSubsetImplicitRejectsBadConfig(t *testing.T) {
	if _, err := TrustSubsetImplicit(0, 10, 2, 1); err == nil {
		t.Error("accepted zero clients")
	}
	if _, err := TrustSubsetImplicit(10, 10, 0, 1); err == nil {
		t.Error("accepted k = 0")
	}
	if _, err := TrustSubsetImplicit(10, 10, 11, 1); err == nil {
		t.Error("accepted k > numServers")
	}
}

// BenchmarkRowSamplers contrasts the O(k) Feistel partial shuffle with
// the O(k²) dup-scan it replaced, at the Δ = log² n row sizes the
// experiments use (and the Θ(√n) heavy-client size of the almost-regular
// family). The measured ratio is recorded in PERFORMANCE.md.
func BenchmarkRowSamplers(b *testing.B) {
	cases := []struct {
		name    string
		pool, k int
	}{
		{"n=2^13/delta=169", 1 << 13, 169}, // log²(8192) = 169
		{"n=2^18/delta=324", 1 << 18, 324}, // log²(262144) = 324
		{"n=2^18/heavy=512", 1 << 18, 512}, // √(262144) = 512
	}
	for _, tc := range cases {
		b.Run("feistel/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]int32, 0, tc.k)
			for i := 0; i < b.N; i++ {
				s := rng.StreamAt(7, i)
				buf = SampleRow(&s, tc.pool, tc.k, buf[:0])
			}
		})
		b.Run("dup-scan/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]int32, 0, tc.k)
			for i := 0; i < b.N; i++ {
				s := rng.StreamAt(7, i)
				buf = distinctRow(&s, tc.pool, tc.k, buf[:0])
			}
		})
	}
}

// BenchmarkAlmostRegularImplicitRegen measures the per-row regeneration
// cost of the almost-regular family's heavy clients, the rows whose
// O(degree²) dup-scan previously kept the family materialized.
func BenchmarkAlmostRegularImplicitRegen(b *testing.B) {
	cfg := DefaultAlmostRegularConfig(1 << 16)
	topo, err := AlmostRegularImplicit(cfg, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.Run(fmt.Sprintf("heavy/deg=%d", cfg.HeavyDegree), func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]int32, 0, cfg.HeavyDegree+8)
		for i := 0; i < b.N; i++ {
			buf = topo.AppendClientNeighbors(0, buf[:0])
		}
	})
	b.Run(fmt.Sprintf("base/deg=%d", cfg.BaseDegree), func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]int32, 0, cfg.BaseDegree+8)
		for i := 0; i < b.N; i++ {
			buf = topo.AppendClientNeighbors(cfg.HeavyClients, buf[:0])
		}
	})
}
