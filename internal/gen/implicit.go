package gen

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/rng"
)

// This file contains the implicit (regenerative) topologies: graph
// families whose client neighborhoods are recomputed on demand from a
// per-client random stream instead of being stored. An Implicit topology
// keeps O(n) state (per-client degrees, a handful of permutation keys, a
// tiny edge overlay) where the materialized CSR Graph keeps O(n·Δ) edge
// words — at n = 2²⁰ and Δ = log² n that is a few megabytes against
// several gigabytes, which is what makes million-client protocol sweeps
// fit on a small machine.
//
// Every Implicit constructor has a materialized twin: Materialize (or
// bipartite.Materialize) iterates the same row sampler into a CSR Graph,
// so the two representations describe the *identical* edge multiset in
// the identical per-client order. The protocol equivalence tests in
// internal/core rely on this to check that simulation Results are
// bit-for-bit equal across representations.

// Implicit is a bipartite topology whose client rows are produced by a
// deterministic sampler. It implements bipartite.Topology and is safe for
// concurrent readers: row regeneration only reads shared immutable state.
type Implicit struct {
	kind       string
	numClients int
	numServers int
	minDeg     int
	maxDeg     int

	// degree reports |N(v)|; it must agree with len(row(v)).
	degree func(v int) int
	// row appends N(v) to buf in the topology's canonical order.
	row func(v int, buf []int32) []int32
	// at returns row(v, nil)[i] in O(1) without generating the rest of
	// the row, for the families whose rows are images of keyed
	// permutations (regular: row[i] = π_i(v); partial-shuffle families:
	// row[i] = f_v(i)). Nil for families that can only produce rows
	// sequentially (Erdős–Rényi skip-sampling), which then report
	// CanPointQuery() == false and keep the row-regeneration path.
	at func(v, i int) int32

	// serverDegFn computes the exact per-server degree table for the
	// families whose threshold prescriptions need measured server degrees
	// (almost-regular, for E8's Lemma-19 c). The O(n·Δ) row pass runs
	// lazily on the first DegreeStats call (serverDegOnce), so callers
	// that never ask for statistics keep the constructor's original cost.
	// Nil when the family records no table.
	serverDegFn   func() []int32
	serverDegOnce sync.Once
	serverDeg     []int32
	// uniformServerDeg, when > 0, states that every server has exactly
	// this degree (regular: the union of perfect matchings). It answers
	// DegreeStats in O(n) without a table.
	uniformServerDeg int
}

var _ bipartite.Topology = (*Implicit)(nil)

// NumClients returns the number of clients.
func (t *Implicit) NumClients() int { return t.numClients }

// NumServers returns the number of servers.
func (t *Implicit) NumServers() int { return t.numServers }

// ClientDegree returns |N(v)|.
func (t *Implicit) ClientDegree(v int) int { return t.degree(v) }

// MinClientDegree returns the smallest client degree (exact; recorded at
// construction).
func (t *Implicit) MinClientDegree() int { return t.minDeg }

// MaxClientDegree returns the largest client degree (exact; recorded at
// construction).
func (t *Implicit) MaxClientDegree() int { return t.maxDeg }

// AppendClientNeighbors regenerates client v's neighborhood into buf.
func (t *Implicit) AppendClientNeighbors(v int, buf []int32) []int32 {
	return t.row(v, buf)
}

// Validate answers from construction-time guarantees in O(1).
func (t *Implicit) Validate() error {
	if t.numClients <= 0 || t.numServers <= 0 {
		return bipartite.ErrEmptyGraph
	}
	if t.minDeg <= 0 {
		return bipartite.ErrIsolatedClient
	}
	return nil
}

// NumEdges returns the total number of edges (Σ_v |N(v)|). Uniform-
// degree families (regular, trust-subset: minDeg == maxDeg by
// construction) answer in O(1); the rest sum their degree table.
func (t *Implicit) NumEdges() int {
	if t.minDeg == t.maxDeg {
		return t.numClients * t.minDeg
	}
	total := 0
	for v := 0; v < t.numClients; v++ {
		total += t.degree(v)
	}
	return total
}

// CanPointQuery reports whether the family supports O(1) point queries
// (see bipartite.PointQueryable); queryability is fixed at construction.
func (t *Implicit) CanPointQuery() bool { return t.at != nil }

// NeighborAt returns row(v)[i] in O(1). It must only be called when
// CanPointQuery reports true.
func (t *Implicit) NeighborAt(v, i int) int32 { return t.at(v, i) }

var _ bipartite.PointQueryable = (*Implicit)(nil)

// Materialize builds the CSR twin of the topology: the same edges in the
// same per-client order, stored explicitly.
func (t *Implicit) Materialize() (*bipartite.Graph, error) {
	return bipartite.Materialize(t)
}

// DegreeStats returns the exact degree statistics of the topology when
// the family can answer without materializing: regular families know
// every degree by construction, and almost-regular computes its exact
// per-server degree table on the first call (one O(n·Δ) row pass,
// memoized through sync.Once — safe under concurrent readers). ok is
// false for the families that do not (Erdős–Rényi, trust-subset), whose
// server degrees would need a materialization-grade scan per use.
func (t *Implicit) DegreeStats() (bipartite.DegreeStats, bool) {
	var sdeg func(int) int
	switch {
	case t.serverDegFn != nil:
		t.serverDegOnce.Do(func() { t.serverDeg = t.serverDegFn() })
		sdeg = func(u int) int { return int(t.serverDeg[u]) }
	case t.uniformServerDeg > 0:
		sdeg = func(int) int { return t.uniformServerDeg }
	default:
		return bipartite.DegreeStats{}, false
	}
	return bipartite.DegreeStatsOf(t.numClients, t.numServers, t.degree, sdeg), true
}

var _ bipartite.DegreeStatser = (*Implicit)(nil)

// String returns a short human-readable summary.
func (t *Implicit) String() string {
	return fmt.Sprintf("implicit{%s clients=%d servers=%d degC=[%d,%d]}",
		t.kind, t.numClients, t.numServers, t.minDeg, t.maxDeg)
}

// ---------------------------------------------------------------------------
// Random Δ-regular: union of Δ keyed pseudo-random perfect matchings.

// feistel is a keyed pseudo-random permutation of [0, domain) built as a
// four-round balanced Feistel network over 2·halfBits bits with
// cycle-walking down to the requested domain. Four rounds of a SplitMix64
// round function are ample for simulation-grade mixing, and the whole
// permutation is 40 bytes of state — which is how the implicit Δ-regular
// topology stores Δ perfect matchings in O(Δ) memory instead of O(n·Δ).
type feistel struct {
	halfBits uint
	mask     uint32
	domain   uint64
	keys     [4]uint64
}

// newFeistel returns the permutation of [0, n) keyed by seed.
func newFeistel(n int, seed uint64) feistel {
	b := uint(bits.Len64(uint64(n - 1)))
	if n <= 1 {
		b = 1
	}
	if b%2 == 1 {
		b++
	}
	f := feistel{
		halfBits: b / 2,
		mask:     uint32(1<<(b/2)) - 1,
		domain:   uint64(n),
	}
	sm := seed
	for i := range f.keys {
		f.keys[i] = rng.SplitMix64(&sm)
	}
	return f
}

// roundF is the Feistel round function: a SplitMix-style scramble of the
// half-block mixed with the round key, truncated to halfBits.
func (f *feistel) roundF(r uint32, round int) uint32 {
	z := uint64(r) + f.keys[round]
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return uint32(z) & f.mask
}

// applyOnce runs the network once over the padded power-of-two domain.
func (f *feistel) applyOnce(x uint64) uint64 {
	l := uint32(x>>f.halfBits) & f.mask
	r := uint32(x) & f.mask
	for i := 0; i < 4; i++ {
		l, r = r, l^f.roundF(r, i)
	}
	return uint64(l)<<f.halfBits | uint64(r)
}

// apply maps x ∈ [0, domain) to its image under the permutation,
// cycle-walking through the padded domain (expected < 2 iterations, since
// the padded domain is < 4·domain).
func (f *feistel) apply(x uint64) uint64 {
	y := f.applyOnce(x)
	for y >= f.domain {
		y = f.applyOnce(y)
	}
	return y
}

// RegularImplicit returns the implicit random Δ-regular bipartite
// topology on n clients and n servers: the union of delta keyed
// pseudo-random perfect matchings, the implicit counterpart of the
// permutation model used by Regular. Client v's k-th neighbor is
// π_k(v) where π_k is a keyed permutation of [0, n), so every client and
// every server has degree exactly delta (parallel edges across matchings
// are possible and kept, exactly as in Regular). State is O(delta)
// permutation keys — independent of n.
func RegularImplicit(n, delta int, seed uint64) (*Implicit, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: RegularImplicit requires n > 0, got %d", n)
	}
	if delta <= 0 || delta > n {
		return nil, fmt.Errorf("gen: RegularImplicit requires 0 < delta <= n, got delta=%d n=%d", delta, n)
	}
	perms := make([]feistel, delta)
	sm := seed ^ 0x6c62272e07bb0142
	for k := range perms {
		perms[k] = newFeistel(n, rng.SplitMix64(&sm))
	}
	return &Implicit{
		kind:       fmt.Sprintf("regular delta=%d", delta),
		numClients: n,
		numServers: n,
		minDeg:     delta,
		maxDeg:     delta,
		// A union of delta perfect matchings gives every server degree
		// exactly delta, so exact statistics need no table.
		uniformServerDeg: delta,
		degree:           func(int) int { return delta },
		row: func(v int, buf []int32) []int32 {
			for k := range perms {
				buf = append(buf, int32(perms[k].apply(uint64(v))))
			}
			return buf
		},
		at: func(v, i int) int32 {
			return int32(perms[i].apply(uint64(v)))
		},
	}, nil
}

// ---------------------------------------------------------------------------
// Erdős–Rényi via per-client skip-sampling.

// ErdosRenyiRow appends client v's G(n, m, p) row — each server present
// independently with probability p, in ascending order — drawn from the
// client's private stream, with the ensure-clients fallback edge when the
// row would be empty. It is the row sampler shared by the implicit
// topology, its materialized twin, and the churn subsystem's
// Erdős–Rényi rewiring sampler (internal/churn).
func ErdosRenyiRow(s *rng.Stream, numServers int, p float64, ensure bool, buf []int32) []int32 {
	start := len(buf)
	if p >= 1 {
		for u := 0; u < numServers; u++ {
			buf = append(buf, int32(u))
		}
		return buf
	}
	if p > 0 {
		u := -1
		for {
			u += 1 + skipFromUniform(s.Float64(), p)
			if u >= numServers {
				break
			}
			buf = append(buf, int32(u))
		}
	}
	if ensure && len(buf) == start {
		buf = append(buf, int32(s.Intn(numServers)))
	}
	return buf
}

// ErdosRenyiImplicit returns the implicit bipartite
// G(numClients, numServers, p) topology: client v's row is regenerated on
// demand by skip-sampling v's private stream (derived in O(1) from the
// seed), so only the per-client degree table — needed for O(1) degree
// queries and validation — is stored. With ensureClients every client that
// would be isolated receives one uniformly random fallback edge, as in
// ErdosRenyi. Construction performs one O(Σ deg) pass to record degrees.
func ErdosRenyiImplicit(numClients, numServers int, p float64, ensureClients bool, seed uint64) (*Implicit, error) {
	if numClients <= 0 || numServers <= 0 {
		return nil, fmt.Errorf("gen: ErdosRenyiImplicit requires positive sides, got %d clients %d servers", numClients, numServers)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: ErdosRenyiImplicit requires p in [0,1], got %v", p)
	}
	row := func(v int, buf []int32) []int32 {
		s := rng.StreamAt(seed, v)
		return ErdosRenyiRow(&s, numServers, p, ensureClients, buf)
	}
	degrees := make([]int32, numClients)
	minDeg, maxDeg := numServers+1, 0
	scratch := make([]int32, 0, 64)
	for v := 0; v < numClients; v++ {
		scratch = row(v, scratch[:0])
		d := len(scratch)
		degrees[v] = int32(d)
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	if minDeg > numServers {
		minDeg = 0
	}
	if minDeg == 0 {
		return nil, fmt.Errorf("gen: ErdosRenyiImplicit produced an isolated client (p=%v, ensureClients=%v): %w",
			p, ensureClients, bipartite.ErrIsolatedClient)
	}
	return &Implicit{
		kind:       fmt.Sprintf("erdos-renyi p=%.3g", p),
		numClients: numClients,
		numServers: numServers,
		minDeg:     minDeg,
		maxDeg:     maxDeg,
		degree:     func(v int) int { return int(degrees[v]) },
		row:        row,
	}, nil
}

// ---------------------------------------------------------------------------
// Almost-regular: per-client pool sampling plus a light-server overlay.

// distinctRow appends k distinct values from [0, pool) to buf in draw
// order, by rejection against a linear scan of the values drawn so far.
// The scan costs O(k²) per row, which made implicit regeneration
// quadratic in the degree; the production samplers now use the O(k)
// Feistel partial shuffle in sample.go, and this function remains only
// as the straightforward reference that the sampler tests and benchmarks
// compare against.
func distinctRow(s *rng.Stream, pool, k int, buf []int32) []int32 {
	if k > pool {
		// Mirror rng.Source.Sample's contract: fewer than k distinct
		// values exist, so the rejection loop below could never finish.
		panic("gen: distinctRow called with k > pool")
	}
	start := len(buf)
	for len(buf)-start < k {
		x := int32(s.Intn(pool))
		dup := false
		for _, y := range buf[start:] {
			if y == x {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, x)
		}
	}
	return buf
}

// AlmostRegularImplicit returns the implicit counterpart of the paper's
// almost-regular example: every client samples its BaseDegree (heavy
// clients: HeavyDegree) servers without replacement from the ordinary
// pool via the O(k) Feistel partial shuffle (SampleRow), regenerated on
// demand from the client's O(1)-derivable stream — which keeps even the
// Θ(√n)-degree heavy clients' per-round regeneration linear in their
// degree; the cfg.LightServers low-degree servers attach to LightDegree
// random clients each, and those O(log n · LightDegree) overlay edges are
// the only ones stored explicitly (they are server-driven, so they cannot
// be regenerated from a client seed alone). Overlay edges are appended
// after the pool samples in each affected client's row.
func AlmostRegularImplicit(cfg AlmostRegularConfig, seed uint64) (*Implicit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.N
	pool := n - cfg.LightServers
	baseDeg := func(v int) int {
		deg := cfg.BaseDegree
		if v < cfg.HeavyClients {
			deg = cfg.HeavyDegree
		}
		if deg > pool {
			deg = pool
		}
		return deg
	}
	// Build the light-server overlay: for each light server u, LightDegree
	// distinct clients drawn from a stream keyed by u (offset past the
	// client stream indices so the two families never collide). These
	// edges are server-driven, so they are stored explicitly — there are
	// only O(LightServers · LightDegree) of them. Iterating u in ascending
	// order keeps each client's overlay list deterministic.
	extraOf := make(map[int32][]int32, cfg.LightServers*cfg.LightDegree)
	var clients []int32
	for u := pool; u < n; u++ {
		s := rng.StreamAt(seed^0x94d049bb133111eb, n+u)
		clients = SampleRow(&s, n, cfg.LightDegree, clients[:0])
		for _, v := range clients {
			extraOf[v] = append(extraOf[v], int32(u))
		}
	}
	minDeg, maxDeg := n+1, 0
	for v := 0; v < n; v++ {
		d := baseDeg(v) + len(extraOf[int32(v)])
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	row := func(v int, buf []int32) []int32 {
		s := rng.StreamAt(seed, v)
		buf = SampleRow(&s, pool, baseDeg(v), buf)
		return append(buf, extraOf[int32(v)]...)
	}
	// The exact per-server degree table: one O(n·Δ) row pass, run lazily
	// on the first DegreeStats call. Lemma 19's prescribed c depends on
	// the *measured* ∆max(S) of the sampled graph, so carrying the table
	// is what lets E8 derive its threshold without materializing the
	// edges (memory stays O(n)); every other caller skips the pass.
	serverDegFn := func() []int32 {
		serverDeg := make([]int32, n)
		rowBuf := make([]int32, 0, maxDeg)
		for v := 0; v < n; v++ {
			rowBuf = row(v, rowBuf[:0])
			for _, u := range rowBuf {
				serverDeg[u]++
			}
		}
		return serverDeg
	}
	return &Implicit{
		kind:        fmt.Sprintf("almost-regular base=%d heavy=%dx%d light=%dx%d", cfg.BaseDegree, cfg.HeavyClients, cfg.HeavyDegree, cfg.LightServers, cfg.LightDegree),
		numClients:  n,
		numServers:  n,
		minDeg:      minDeg,
		maxDeg:      maxDeg,
		serverDegFn: serverDegFn,
		degree:      func(v int) int { return baseDeg(v) + len(extraOf[int32(v)]) },
		row:         row,
		// Entry i is either the i-th pool sample (one Feistel image) or,
		// past baseDeg(v), a stored overlay edge — O(1) either way.
		at: func(v, i int) int32 {
			if k := baseDeg(v); i >= k {
				return extraOf[int32(v)][i-k]
			}
			s := rng.StreamAt(seed, v)
			return SampleAt(&s, pool, i)
		},
	}, nil
}

// ErrNoImplicit is returned by implicit constructors dispatching on a
// family without a regenerative sampler.
var ErrNoImplicit = errors.New("gen: graph family has no implicit topology")
