package gen

import (
	"fmt"

	"repro/internal/rng"
)

// This file contains the without-replacement row sampler shared by the
// implicit topologies whose clients pick k distinct servers from a pool
// (trust-subset, almost-regular). The previous implementation rejected
// duplicates against a linear scan of the row drawn so far (distinctRow
// in implicit.go, kept as the test reference), which costs O(k²) per
// regeneration — quadratic in the degree, the reason heavy Θ(√n)-degree
// clients and trust-subset families could not go implicit. SampleRow
// replaces it with a partial shuffle over a keyed permutation: the row is
// the image of 0, 1, …, k−1 under a Feistel permutation of [0, pool)
// keyed from the client's stream, so each regeneration costs O(k) Feistel
// applications (~a dozen nanoseconds each), allocates nothing, and needs
// no per-row dedup state at all — a k-subset in pseudo-random order,
// exactly like the prefix of a Fisher–Yates shuffle of the pool.

// SampleRow appends k distinct values from [0, pool) to buf, drawn as
// the first k images of a pseudo-random permutation keyed by the next
// value of s. It panics if k > pool (mirroring rng.Source.Sample's
// contract: fewer than k distinct values exist). It is exported for the
// churn subsystem (internal/churn), whose per-(epoch, client) rewiring
// samplers regenerate rows through exactly this machinery.
func SampleRow(s *rng.Stream, pool, k int, buf []int32) []int32 {
	if k > pool {
		panic("gen: SampleRow called with k > pool")
	}
	f := newFeistel(pool, s.Uint64())
	for i := 0; i < k; i++ {
		buf = append(buf, int32(f.apply(uint64(i))))
	}
	return buf
}

// SampleAt returns element i of the row SampleRow(s, pool, k, nil)
// for any k > i, without generating the other k−1 entries: the row is a
// permutation prefix, so entry i is the single Feistel image of i. It
// consumes the same one stream value as SampleRow (the permutation
// key), leaving s in the same state — which is what lets point queries
// and whole-row regeneration coexist against one per-client stream. It
// is exported for internal/churn, whose rewired clients answer point
// queries through exactly this identity.
func SampleAt(s *rng.Stream, pool, i int) int32 {
	f := newFeistel(pool, s.Uint64())
	return int32(f.apply(uint64(i)))
}

// TrustSubsetImplicit returns the implicit counterpart of TrustSubset:
// every client trusts k servers chosen without replacement from
// [0, numServers), regenerated on demand from the client's
// O(1)-derivable stream via the Feistel partial shuffle. Every client
// has degree exactly k, so the topology stores O(1) state — no degree
// table, no edges. Note the sampler differs from the materialized
// TrustSubset (which draws through rng.Source.Sample), so the two
// constructors describe different graphs of the same distribution; the
// implicit topology's materialized twin is Materialize, as for every
// Implicit family.
func TrustSubsetImplicit(numClients, numServers, k int, seed uint64) (*Implicit, error) {
	if numClients <= 0 || numServers <= 0 {
		return nil, fmt.Errorf("gen: TrustSubsetImplicit requires positive sides, got %d clients %d servers", numClients, numServers)
	}
	if k <= 0 || k > numServers {
		return nil, fmt.Errorf("gen: TrustSubsetImplicit requires 0 < k <= numServers, got k=%d numServers=%d", k, numServers)
	}
	return &Implicit{
		kind:       fmt.Sprintf("trust-subset k=%d", k),
		numClients: numClients,
		numServers: numServers,
		minDeg:     k,
		maxDeg:     k,
		degree:     func(int) int { return k },
		row: func(v int, buf []int32) []int32 {
			s := rng.StreamAt(seed, v)
			return SampleRow(&s, numServers, k, buf)
		},
		at: func(v, i int) int32 {
			s := rng.StreamAt(seed, v)
			return SampleAt(&s, numServers, i)
		},
	}, nil
}
