package gen

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/bipartite"
)

// collectRow regenerates client v's row into a fresh slice.
func collectRow(t *testing.T, topo *Implicit, v int) []int32 {
	t.Helper()
	return topo.AppendClientNeighbors(v, nil)
}

func TestFeistelIsPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 100, 1023, 1024, 4097} {
		f := newFeistel(n, 0xBEEF+uint64(n))
		seen := make([]bool, n)
		for x := 0; x < n; x++ {
			y := f.apply(uint64(x))
			if y >= uint64(n) {
				t.Fatalf("n=%d: apply(%d) = %d out of range", n, x, y)
			}
			if seen[y] {
				t.Fatalf("n=%d: apply not injective at image %d", n, y)
			}
			seen[y] = true
		}
	}
}

func TestRegularImplicitDegreesAndDeterminism(t *testing.T) {
	n, delta := 512, 12
	topo, err := RegularImplicit(n, delta, 42)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumClients() != n || topo.NumServers() != n {
		t.Fatalf("wrong sides: %d x %d", topo.NumClients(), topo.NumServers())
	}
	if topo.MaxClientDegree() != delta || topo.MinClientDegree() != delta {
		t.Fatalf("degree bounds [%d,%d], want [%d,%d]", topo.MinClientDegree(), topo.MaxClientDegree(), delta, delta)
	}
	serverDeg := make([]int, n)
	for v := 0; v < n; v++ {
		row := collectRow(t, topo, v)
		if len(row) != delta {
			t.Fatalf("client %d degree %d, want %d", v, len(row), delta)
		}
		again := collectRow(t, topo, v)
		for i := range row {
			if row[i] != again[i] {
				t.Fatalf("client %d row not deterministic at slot %d", v, i)
			}
			serverDeg[row[i]]++
		}
	}
	for u, d := range serverDeg {
		if d != delta {
			t.Fatalf("server %d degree %d, want %d (matchings are not permutations)", u, d, delta)
		}
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRegularImplicitMaterializeMatches(t *testing.T) {
	topo, err := RegularImplicit(256, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topo.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(9) {
		t.Fatal("materialized graph is not 9-regular")
	}
	for v := 0; v < topo.NumClients(); v++ {
		want := collectRow(t, topo, v)
		got := g.ClientNeighbors(v)
		if len(got) != len(want) {
			t.Fatalf("client %d: CSR row length %d, implicit %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("client %d slot %d: CSR %d, implicit %d", v, i, got[i], want[i])
			}
		}
	}
}

func TestErdosRenyiImplicitRows(t *testing.T) {
	nc, ns := 700, 600
	p := 0.02
	topo, err := ErdosRenyiImplicit(nc, ns, p, true, 99)
	if err != nil {
		t.Fatal(err)
	}
	if topo.MinClientDegree() < 1 {
		t.Fatalf("ensureClients violated: min degree %d", topo.MinClientDegree())
	}
	total := 0
	for v := 0; v < nc; v++ {
		row := collectRow(t, topo, v)
		if len(row) != topo.ClientDegree(v) {
			t.Fatalf("client %d: row length %d vs recorded degree %d", v, len(row), topo.ClientDegree(v))
		}
		total += len(row)
		// Skip-sampled rows are strictly ascending (hence duplicate-free)
		// except for the single-edge isolated-client fallback.
		for i := 1; i < len(row); i++ {
			if row[i] <= row[i-1] {
				t.Fatalf("client %d row not ascending at slot %d", v, i)
			}
		}
		for _, u := range row {
			if u < 0 || int(u) >= ns {
				t.Fatalf("client %d lists out-of-range server %d", v, u)
			}
		}
	}
	if total != topo.NumEdges() {
		t.Fatalf("NumEdges %d, rows sum to %d", topo.NumEdges(), total)
	}
	// Mean degree should be near p·ns.
	mean := float64(total) / float64(nc)
	if want := p * float64(ns); math.Abs(mean-want) > 3 {
		t.Fatalf("mean degree %.2f too far from %.2f", mean, want)
	}
	g, err := topo.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != total {
		t.Fatalf("materialized edges %d, implicit %d", g.NumEdges(), total)
	}
}

func TestAlmostRegularImplicitStructure(t *testing.T) {
	cfg := DefaultAlmostRegularConfig(1024)
	topo, err := AlmostRegularImplicit(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topo.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.MinClientDegree < cfg.BaseDegree {
		t.Fatalf("min client degree %d below base %d", st.MinClientDegree, cfg.BaseDegree)
	}
	if st.MaxClientDegree < cfg.HeavyDegree {
		t.Fatalf("max client degree %d below heavy %d", st.MaxClientDegree, cfg.HeavyDegree)
	}
	if st.MinClientDegree != topo.MinClientDegree() || st.MaxClientDegree != topo.MaxClientDegree() {
		t.Fatalf("recorded degree bounds [%d,%d] disagree with materialized [%d,%d]",
			topo.MinClientDegree(), topo.MaxClientDegree(), st.MinClientDegree, st.MaxClientDegree)
	}
	// The light servers have exactly LightDegree clients each.
	pool := cfg.N - cfg.LightServers
	for u := pool; u < cfg.N; u++ {
		if d := g.ServerDegree(u); d != cfg.LightDegree {
			t.Fatalf("light server %d degree %d, want %d", u, d, cfg.LightDegree)
		}
	}
	// Per-client degrees agree between implicit and materialized views.
	for v := 0; v < cfg.N; v++ {
		if topo.ClientDegree(v) != g.ClientDegree(v) {
			t.Fatalf("client %d: implicit degree %d, materialized %d", v, topo.ClientDegree(v), g.ClientDegree(v))
		}
	}
}

func TestMaterializeOfGraphIsIdentity(t *testing.T) {
	topo, err := RegularImplicit(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topo.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	again, err := bipartite.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if again != g {
		t.Fatal("Materialize of a *Graph should return it unchanged")
	}
}

// TestImplicitMemoryGuard is the peak-memory guard of the implicit layer:
// at n = 2^18 with Δ = log² n, constructing the implicit topologies must
// allocate less than 10% of the bytes the materialized CSR graph would
// need for its edge arrays alone (2 directions × 4 bytes × n·Δ). This is
// the property that lets million-client full-mode sweeps run on a small
// box.
func TestImplicitMemoryGuard(t *testing.T) {
	n := 1 << 18
	logn := math.Log2(float64(n))
	delta := int(math.Ceil(logn * logn)) // 324
	csrBytes := uint64(2) * 4 * uint64(n) * uint64(delta)
	budget := csrBytes / 10

	measure := func(name string, build func() (*Implicit, error)) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		topo, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		runtime.ReadMemStats(&after)
		allocated := after.TotalAlloc - before.TotalAlloc
		if allocated >= budget {
			t.Errorf("%s: allocated %d bytes, want < %d (10%% of the %d-byte CSR edge arrays)",
				name, allocated, budget, csrBytes)
		}
		// The topology must actually be able to serve rows.
		row := topo.AppendClientNeighbors(n/2, nil)
		if len(row) == 0 {
			t.Errorf("%s: empty row for client %d", name, n/2)
		}
		runtime.KeepAlive(topo)
	}

	measure("regular", func() (*Implicit, error) { return RegularImplicit(n, delta, 11) })
	measure("erdos-renyi", func() (*Implicit, error) {
		return ErdosRenyiImplicit(n, n, float64(delta)/float64(n), true, 11)
	})
}

// TestAlmostRegularImplicitRejectsOversizedLightDegree guards the
// validation bound: a LightDegree larger than the client count can never
// find enough distinct clients, and both constructors must reject the
// config with an error instead of hanging (implicit) or panicking
// (materialized).
func TestAlmostRegularImplicitRejectsOversizedLightDegree(t *testing.T) {
	cfg := AlmostRegularConfig{N: 4, BaseDegree: 2, LightServers: 1, LightDegree: 10}
	if _, err := AlmostRegularImplicit(cfg, 1); err == nil {
		t.Error("AlmostRegularImplicit accepted LightDegree > N")
	}
	if _, err := AlmostRegular(cfg, nil); err == nil {
		t.Error("AlmostRegular accepted LightDegree > N")
	}
}
