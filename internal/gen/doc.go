// Package gen builds the bipartite client–server topologies used by the
// experiments.
//
// The paper's main theorem holds for every almost-regular bipartite graph
// with minimum client degree Ω(log² n); since such graphs are worst-case
// (adversarial) objects, the reproduction exercises a spread of concrete
// families:
//
//   - Regular: random Δ-regular bipartite graphs built from Δ independent
//     random perfect matchings (the permutation model). This is the
//     setting of the paper's Section 3.
//   - BiRegular: (dC, dS)-biregular graphs built with the configuration
//     model, allowing the two sides to have different (but uniform)
//     degrees.
//   - Complete: the complete bipartite graph, i.e. the classic
//     balls-into-bins setting used by the dense-case baselines.
//   - ErdosRenyi: each admissibility edge present independently with
//     probability p.
//   - TrustSubset: every client trusts k servers chosen uniformly at
//     random without replacement (Godfrey's random-cluster input model and
//     the paper's motivation (i)).
//   - AlmostRegular: the paper's "non-extremal example" — most clients
//     have degree Θ(log² n), a few heavy clients have degree Θ(√n), and a
//     few servers have only constant degree.
//   - Proximity: clients and servers are points on the unit torus and a
//     client may only use servers within a given radius (the paper's
//     motivation (ii)); positions are returned for visualization.
//
// All generators are deterministic functions of their explicit *rng.Source
// argument.
//
// The Regular, ErdosRenyi, TrustSubset and AlmostRegular families also
// have implicit (regenerative) counterparts — see implicit.go and
// sample.go — that recompute client neighborhoods on demand from O(1)
// per-client seeds instead of storing O(n·Δ) edges; the sweep engine in
// internal/sweep selects between the two representations per experiment
// point.
package gen
