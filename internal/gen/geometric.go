package gen

import (
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/rng"
)

// Point is a position on the unit torus [0,1)².
type Point struct {
	X, Y float64
}

// TorusDistance returns the distance between two points on the unit torus
// (opposite edges identified), which keeps the proximity model free of
// boundary effects.
func TorusDistance(a, b Point) float64 {
	dx := math.Abs(a.X - b.X)
	if dx > 0.5 {
		dx = 1 - dx
	}
	dy := math.Abs(a.Y - b.Y)
	if dy > 0.5 {
		dy = 1 - dy
	}
	return math.Sqrt(dx*dx + dy*dy)
}

// GeometricGraph couples a bipartite admissibility graph with the client
// and server positions it was derived from, so that examples and traces
// can visualize the proximity structure.
type GeometricGraph struct {
	Graph     *bipartite.Graph
	ClientPos []Point
	ServerPos []Point
	Radius    float64
	// FallbackEdges counts clients that had no server within Radius and
	// were connected to their nearest server instead.
	FallbackEdges int
}

// ProximityConfig parameterizes the geometric generator.
type ProximityConfig struct {
	NumClients int
	NumServers int
	// Radius is the connection radius on the unit torus; a client is
	// admissible for every server within this distance. The expected
	// client degree is approximately NumServers·π·Radius².
	Radius float64
	// MinDegree, if positive, augments each client's neighborhood with its
	// nearest servers until it has at least MinDegree admissible servers.
	// This models a client that widens its search radius when too few
	// nearby servers exist and guarantees the protocol can terminate.
	MinDegree int
}

// RadiusForExpectedDegree returns the torus radius that yields the given
// expected client degree with numServers uniformly placed servers.
func RadiusForExpectedDegree(numServers, expectedDegree int) float64 {
	if numServers <= 0 || expectedDegree <= 0 {
		return 0
	}
	return math.Sqrt(float64(expectedDegree) / (math.Pi * float64(numServers)))
}

// Proximity places NumClients clients and NumServers servers uniformly at
// random on the unit torus and connects every client to all servers within
// cfg.Radius, using a uniform grid for neighbor search so generation costs
// O(edges) rather than O(clients·servers).
func Proximity(cfg ProximityConfig, src *rng.Source) (*GeometricGraph, error) {
	if cfg.NumClients <= 0 || cfg.NumServers <= 0 {
		return nil, fmt.Errorf("gen: Proximity requires positive sides, got %d clients %d servers", cfg.NumClients, cfg.NumServers)
	}
	if cfg.Radius <= 0 || cfg.Radius > 0.5 {
		return nil, fmt.Errorf("gen: Proximity requires radius in (0, 0.5], got %v", cfg.Radius)
	}
	clientPos := make([]Point, cfg.NumClients)
	for i := range clientPos {
		clientPos[i] = Point{X: src.Float64(), Y: src.Float64()}
	}
	serverPos := make([]Point, cfg.NumServers)
	for i := range serverPos {
		serverPos[i] = Point{X: src.Float64(), Y: src.Float64()}
	}

	// Bucket servers into a grid with cells at least Radius wide so that a
	// client only needs to inspect its 3×3 cell neighborhood.
	cells := int(math.Floor(1 / cfg.Radius))
	if cells < 1 {
		cells = 1
	}
	if cells > 1024 {
		cells = 1024
	}
	grid := make([][]int32, cells*cells)
	cellOf := func(p Point) (int, int) {
		cx := int(p.X * float64(cells))
		cy := int(p.Y * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	for u, p := range serverPos {
		cx, cy := cellOf(p)
		grid[cy*cells+cx] = append(grid[cy*cells+cx], int32(u))
	}

	b := bipartite.NewBuilder(cfg.NumClients, cfg.NumServers)
	fallbacks := 0
	for v, p := range clientPos {
		cx, cy := cellOf(p)
		inRadius := make(map[int]bool)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				gx := (cx + dx + cells) % cells
				gy := (cy + dy + cells) % cells
				for _, u := range grid[gy*cells+gx] {
					if TorusDistance(p, serverPos[u]) <= cfg.Radius {
						if !inRadius[int(u)] {
							inRadius[int(u)] = true
							b.AddEdge(v, int(u))
						}
					}
				}
			}
		}
		need := 1
		if cfg.MinDegree > need {
			need = cfg.MinDegree
		}
		if len(inRadius) < need {
			// Widen the search: brute-force the nearest servers. This is a
			// rare path (isolated or sparse neighborhoods).
			degree := len(inRadius)
			for _, u := range nearestServers(p, serverPos, need) {
				if degree >= need {
					break
				}
				if !inRadius[u] {
					inRadius[u] = true
					b.AddEdge(v, u)
					degree++
					fallbacks++
				}
			}
		}
	}
	g, err := b.Build(bipartite.DedupEdges)
	if err != nil {
		return nil, err
	}
	return &GeometricGraph{
		Graph:         g,
		ClientPos:     clientPos,
		ServerPos:     serverPos,
		Radius:        cfg.Radius,
		FallbackEdges: fallbacks,
	}, nil
}

// nearestServers returns the indices of the k servers closest to p,
// by a simple selection over all servers (used only on the rare fallback
// path).
func nearestServers(p Point, serverPos []Point, k int) []int {
	if k > len(serverPos) {
		k = len(serverPos)
	}
	type cand struct {
		u int
		d float64
	}
	best := make([]cand, 0, k)
	for u, sp := range serverPos {
		d := TorusDistance(p, sp)
		if len(best) < k {
			best = append(best, cand{u, d})
			// Bubble the new candidate into place (k is tiny).
			for i := len(best) - 1; i > 0 && best[i].d < best[i-1].d; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			continue
		}
		if d < best[k-1].d {
			best[k-1] = cand{u, d}
			for i := k - 1; i > 0 && best[i].d < best[i-1].d; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	out := make([]int, len(best))
	for i, c := range best {
		out[i] = c.u
	}
	return out
}
