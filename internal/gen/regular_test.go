package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRegularDegrees(t *testing.T) {
	for _, tc := range []struct{ n, delta int }{{10, 3}, {64, 8}, {200, 16}, {5, 5}} {
		g, err := Regular(tc.n, tc.delta, rng.New(1))
		if err != nil {
			t.Fatalf("Regular(%d,%d): %v", tc.n, tc.delta, err)
		}
		if g.NumClients() != tc.n || g.NumServers() != tc.n {
			t.Fatalf("Regular(%d,%d) sizes %d/%d", tc.n, tc.delta, g.NumClients(), g.NumServers())
		}
		for v := 0; v < tc.n; v++ {
			if g.ClientDegree(v) != tc.delta {
				t.Fatalf("Regular(%d,%d): client %d degree %d", tc.n, tc.delta, v, g.ClientDegree(v))
			}
		}
		for u := 0; u < tc.n; u++ {
			if g.ServerDegree(u) != tc.delta {
				t.Fatalf("Regular(%d,%d): server %d degree %d", tc.n, tc.delta, u, g.ServerDegree(u))
			}
		}
		if err := g.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegularDeterministic(t *testing.T) {
	a, err := Regular(50, 6, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Regular(50, 6, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("Regular not deterministic at edge %d", i)
		}
	}
}

func TestRegularRejectsBadParams(t *testing.T) {
	if _, err := Regular(0, 3, rng.New(1)); err == nil {
		t.Error("Regular(0,3) should fail")
	}
	if _, err := Regular(10, 0, rng.New(1)); err == nil {
		t.Error("Regular(10,0) should fail")
	}
	if _, err := Regular(10, 11, rng.New(1)); err == nil {
		t.Error("Regular(10,11) should fail")
	}
}

func TestRegularSimpleNoParallelEdges(t *testing.T) {
	g, err := RegularSimple(100, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumClients(); v++ {
		seen := map[int32]bool{}
		for _, u := range g.ClientNeighbors(v) {
			if seen[u] {
				t.Fatalf("client %d has parallel edge to server %d", v, u)
			}
			seen[u] = true
		}
		if g.ClientDegree(v) != 10 {
			t.Fatalf("client %d degree %d, want 10", v, g.ClientDegree(v))
		}
	}
	for u := 0; u < g.NumServers(); u++ {
		if g.ServerDegree(u) != 10 {
			t.Fatalf("server %d degree %d, want 10", u, g.ServerDegree(u))
		}
	}
}

func TestRegularSimpleRejectsBadParams(t *testing.T) {
	if _, err := RegularSimple(0, 1, rng.New(1)); err == nil {
		t.Error("RegularSimple(0,1) should fail")
	}
	if _, err := RegularSimple(5, 6, rng.New(1)); err == nil {
		t.Error("RegularSimple(5,6) should fail")
	}
}

func TestBiRegularDegrees(t *testing.T) {
	g, err := BiRegular(60, 4, 40, 6, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 60; v++ {
		if g.ClientDegree(v) != 4 {
			t.Fatalf("client %d degree %d, want 4", v, g.ClientDegree(v))
		}
	}
	for u := 0; u < 40; u++ {
		if g.ServerDegree(u) != 6 {
			t.Fatalf("server %d degree %d, want 6", u, g.ServerDegree(u))
		}
	}
}

func TestBiRegularInfeasible(t *testing.T) {
	if _, err := BiRegular(10, 3, 7, 4, rng.New(1)); err == nil {
		t.Error("infeasible degree sequence accepted")
	}
	if _, err := BiRegular(10, 0, 10, 0, rng.New(1)); err == nil {
		t.Error("zero degrees accepted")
	}
	if _, err := BiRegular(-1, 2, 10, 2, rng.New(1)); err == nil {
		t.Error("negative side accepted")
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 35 {
		t.Fatalf("complete graph has %d edges, want 35", g.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if g.ClientDegree(v) != 7 {
			t.Fatalf("client %d degree %d, want 7", v, g.ClientDegree(v))
		}
	}
	if _, err := Complete(0, 1); err == nil {
		t.Error("Complete(0,1) should fail")
	}
}

func TestQuickRegularAlwaysRegular(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%50) + 2
		delta := int(dRaw%uint8(n)) + 1
		g, err := Regular(n, delta, rng.New(seed))
		if err != nil {
			return false
		}
		return g.IsRegular(delta) && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickBiRegularDegreeSums(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		// Construct feasible parameters: nc = a·k, dC = b, ns = b·k, dS = a.
		a := int(aRaw%6) + 1
		bdeg := int(bRaw%6) + 1
		k := 5
		nc, ns := a*k, bdeg*k
		g, err := BiRegular(nc, bdeg, ns, a, rng.New(seed))
		if err != nil {
			return false
		}
		for v := 0; v < nc; v++ {
			if g.ClientDegree(v) != bdeg {
				return false
			}
		}
		for u := 0; u < ns; u++ {
			if g.ServerDegree(u) != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
