package gen

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/rng"
)

// Regular returns a random Δ-regular bipartite graph with n clients and n
// servers, built as the union of delta independent uniform perfect
// matchings (the permutation model). Every client and every server has
// degree exactly delta. Parallel edges may occur (with probability
// O(delta²/n) per pair); the protocols treat a parallel edge as a doubled
// selection weight, which matches the paper's "with replacement" choice
// rule, so they are kept.
func Regular(n, delta int, src *rng.Source) (*bipartite.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: Regular requires n > 0, got %d", n)
	}
	if delta <= 0 || delta > n {
		return nil, fmt.Errorf("gen: Regular requires 0 < delta <= n, got delta=%d n=%d", delta, n)
	}
	b := bipartite.NewBuilder(n, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < delta; k++ {
		src.Shuffle(perm)
		for v := 0; v < n; v++ {
			b.AddEdge(v, perm[v])
		}
	}
	return b.Build(bipartite.KeepParallelEdges)
}

// RegularSimple is like Regular but retries each matching locally to avoid
// parallel edges, producing a simple Δ-regular bipartite graph. It uses
// edge swaps to repair collisions, so it always terminates. Use it when a
// strictly simple graph is required (e.g. for comparisons against
// generators that never produce parallel edges).
func RegularSimple(n, delta int, src *rng.Source) (*bipartite.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: RegularSimple requires n > 0, got %d", n)
	}
	if delta <= 0 || delta > n {
		return nil, fmt.Errorf("gen: RegularSimple requires 0 < delta <= n, got delta=%d n=%d", delta, n)
	}
	// adj[v] is the set of servers already matched to client v.
	adj := make([]map[int]bool, n)
	for v := range adj {
		adj[v] = make(map[int]bool, delta)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	b := bipartite.NewBuilder(n, n)
	for k := 0; k < delta; k++ {
		src.Shuffle(perm)
		// Repair collisions: if client v is already adjacent to perm[v],
		// swap perm[v] with the image of a uniformly random other client
		// until the assignment is collision-free. Each swap strictly
		// reduces the chance of conflict in expectation; cap iterations
		// defensively and fall back to a linear scan for a valid partner.
		for v := 0; v < n; v++ {
			if !adj[v][perm[v]] {
				continue
			}
			fixed := false
			for attempt := 0; attempt < 4*n; attempt++ {
				w := src.Intn(n)
				if w == v {
					continue
				}
				// Swapping must not create a collision at either endpoint.
				if !adj[v][perm[w]] && !adj[w][perm[v]] {
					perm[v], perm[w] = perm[w], perm[v]
					fixed = true
					break
				}
			}
			if !fixed {
				for w := 0; w < n; w++ {
					if w != v && !adj[v][perm[w]] && !adj[w][perm[v]] {
						perm[v], perm[w] = perm[w], perm[v]
						fixed = true
						break
					}
				}
			}
			if !fixed {
				// Can only happen for delta close to n where simple regular
				// graphs become rigid; fall back to accepting the parallel
				// edge rather than failing the whole generation.
				continue
			}
		}
		for v := 0; v < n; v++ {
			adj[v][perm[v]] = true
			b.AddEdge(v, perm[v])
		}
	}
	return b.Build(bipartite.KeepParallelEdges)
}

// BiRegular returns a random bipartite graph with numClients clients of
// degree exactly clientDeg and numServers servers of degree exactly
// serverDeg, built with the configuration (stub-matching) model. The
// degree sequence must be feasible: numClients*clientDeg ==
// numServers*serverDeg. Parallel edges may occur and are kept.
func BiRegular(numClients, clientDeg, numServers, serverDeg int, src *rng.Source) (*bipartite.Graph, error) {
	if numClients <= 0 || numServers <= 0 {
		return nil, fmt.Errorf("gen: BiRegular requires positive sides, got %d clients %d servers", numClients, numServers)
	}
	if clientDeg <= 0 || serverDeg <= 0 {
		return nil, fmt.Errorf("gen: BiRegular requires positive degrees, got %d and %d", clientDeg, serverDeg)
	}
	if numClients*clientDeg != numServers*serverDeg {
		return nil, fmt.Errorf("gen: BiRegular infeasible degree sequence: %d*%d != %d*%d",
			numClients, clientDeg, numServers, serverDeg)
	}
	stubs := numClients * clientDeg
	// serverStubs[i] is the server owning the i-th server-side stub.
	serverStubs := make([]int32, stubs)
	idx := 0
	for u := 0; u < numServers; u++ {
		for k := 0; k < serverDeg; k++ {
			serverStubs[idx] = int32(u)
			idx++
		}
	}
	src.ShuffleInt32(serverStubs)
	b := bipartite.NewBuilder(numClients, numServers)
	idx = 0
	for v := 0; v < numClients; v++ {
		for k := 0; k < clientDeg; k++ {
			b.AddEdge(v, int(serverStubs[idx]))
			idx++
		}
	}
	return b.Build(bipartite.KeepParallelEdges)
}

// Complete returns the complete bipartite graph K_{numClients,numServers}.
// This is the classic parallel balls-into-bins setting (the dense regime
// in which RAES was originally analysed).
func Complete(numClients, numServers int) (*bipartite.Graph, error) {
	if numClients <= 0 || numServers <= 0 {
		return nil, fmt.Errorf("gen: Complete requires positive sides, got %d clients %d servers", numClients, numServers)
	}
	b := bipartite.NewBuilder(numClients, numServers)
	for v := 0; v < numClients; v++ {
		for u := 0; u < numServers; u++ {
			b.AddEdge(v, u)
		}
	}
	return b.Build(bipartite.KeepParallelEdges)
}
