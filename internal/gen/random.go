package gen

import (
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/rng"
)

// ErdosRenyi returns a bipartite G(numClients, numServers, p) graph where
// every admissibility edge is present independently with probability p.
// If ensureClients is true, every client that ends up isolated receives
// one uniformly random edge so the resulting graph is usable by the
// protocols (an isolated client could never place its balls).
func ErdosRenyi(numClients, numServers int, p float64, ensureClients bool, src *rng.Source) (*bipartite.Graph, error) {
	if numClients <= 0 || numServers <= 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi requires positive sides, got %d clients %d servers", numClients, numServers)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: ErdosRenyi requires p in [0,1], got %v", p)
	}
	b := bipartite.NewBuilder(numClients, numServers)
	for v := 0; v < numClients; v++ {
		degree := 0
		if p >= 1 {
			for u := 0; u < numServers; u++ {
				b.AddEdge(v, u)
			}
			degree = numServers
		} else if p > 0 {
			// Skip-sampling: jump geometric gaps between present edges so
			// the cost is proportional to the number of edges, not n².
			u := -1
			for {
				gap := geometricSkip(src, p)
				u += 1 + gap
				if u >= numServers {
					break
				}
				b.AddEdge(v, u)
				degree++
			}
		}
		if ensureClients && degree == 0 {
			b.AddEdge(v, src.Intn(numServers))
		}
	}
	return b.Build(bipartite.KeepParallelEdges)
}

// geometricSkip returns the number of absent edges before the next present
// one when each edge is present independently with probability p.
func geometricSkip(src *rng.Source, p float64) int {
	return skipFromUniform(src.Float64(), p)
}

// skipFromUniform inverts the geometric CDF at the uniform sample u: the
// number of absent edges before the next present one when each edge is
// present independently with probability p. It is the skip-sampling core
// shared by the materialized and the implicit Erdős–Rényi generators.
func skipFromUniform(u, p float64) int {
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	skip := int(math.Floor(math.Log(u) / math.Log(1-p)))
	if skip < 0 {
		skip = 0
	}
	return skip
}

// TrustSubset returns the graph in which every client independently trusts
// k servers chosen uniformly at random without replacement. This is the
// random-cluster input model analysed by Godfrey for sequential greedy and
// the paper's motivation (i): clients only send requests to trusted
// servers.
func TrustSubset(numClients, numServers, k int, src *rng.Source) (*bipartite.Graph, error) {
	if numClients <= 0 || numServers <= 0 {
		return nil, fmt.Errorf("gen: TrustSubset requires positive sides, got %d clients %d servers", numClients, numServers)
	}
	if k <= 0 || k > numServers {
		return nil, fmt.Errorf("gen: TrustSubset requires 0 < k <= numServers, got k=%d numServers=%d", k, numServers)
	}
	b := bipartite.NewBuilder(numClients, numServers)
	for v := 0; v < numClients; v++ {
		for _, u := range src.Sample(numServers, k) {
			b.AddEdge(v, u)
		}
	}
	return b.Build(bipartite.KeepParallelEdges)
}

// AlmostRegularConfig parameterizes the paper's "non-extremal example" of
// an almost-regular graph: most clients have the base degree, a few heavy
// clients have much larger degree, and a few designated light servers have
// only constant degree.
type AlmostRegularConfig struct {
	// N is the number of clients and of servers.
	N int
	// BaseDegree is the degree of ordinary clients (the paper uses
	// Θ(log² n)).
	BaseDegree int
	// HeavyClients is the number of clients whose degree is raised to
	// HeavyDegree (the paper's example uses Θ(√n) for the degree).
	HeavyClients int
	// HeavyDegree is the degree of the heavy clients; it must be at least
	// BaseDegree.
	HeavyDegree int
	// LightServers is the number of servers with only LightDegree
	// admissible clients. They are excluded from ordinary sampling, so the
	// remaining servers absorb the load.
	LightServers int
	// LightDegree is the degree of the light servers (the paper's example
	// allows o(log n), e.g. a constant).
	LightDegree int
}

// Validate reports whether the configuration is internally consistent.
func (c AlmostRegularConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("gen: AlmostRegular requires N > 0, got %d", c.N)
	}
	if c.BaseDegree <= 0 {
		return fmt.Errorf("gen: AlmostRegular requires BaseDegree > 0, got %d", c.BaseDegree)
	}
	if c.HeavyClients < 0 || c.HeavyClients > c.N {
		return fmt.Errorf("gen: AlmostRegular has %d heavy clients for N=%d", c.HeavyClients, c.N)
	}
	if c.HeavyClients > 0 && c.HeavyDegree < c.BaseDegree {
		return fmt.Errorf("gen: AlmostRegular HeavyDegree %d below BaseDegree %d", c.HeavyDegree, c.BaseDegree)
	}
	if c.LightServers < 0 || c.LightServers >= c.N {
		return fmt.Errorf("gen: AlmostRegular has %d light servers for N=%d", c.LightServers, c.N)
	}
	if c.LightServers > 0 && (c.LightDegree <= 0 || c.LightDegree > c.N) {
		return fmt.Errorf("gen: AlmostRegular LightDegree must be in [1, N=%d], got %d", c.N, c.LightDegree)
	}
	heavy := c.HeavyDegree
	if heavy < c.BaseDegree {
		heavy = c.BaseDegree
	}
	if heavy > c.N-c.LightServers {
		return fmt.Errorf("gen: AlmostRegular degree %d exceeds available servers %d", heavy, c.N-c.LightServers)
	}
	return nil
}

// DefaultAlmostRegularConfig returns the paper's example scaled to n:
// base degree ⌈log₂² n⌉, √n-degree heavy clients, and a handful of servers
// with constant degree.
func DefaultAlmostRegularConfig(n int) AlmostRegularConfig {
	logn := math.Log2(float64(n))
	base := int(math.Ceil(logn * logn))
	if base < 2 {
		base = 2
	}
	heavyDeg := int(math.Ceil(math.Sqrt(float64(n))))
	if heavyDeg < base {
		heavyDeg = base
	}
	heavyClients := int(math.Max(1, math.Floor(logn)))
	lightServers := int(math.Max(1, math.Floor(logn/2)))
	cfg := AlmostRegularConfig{
		N:            n,
		BaseDegree:   base,
		HeavyClients: heavyClients,
		HeavyDegree:  heavyDeg,
		LightServers: lightServers,
		LightDegree:  3,
	}
	if cfg.HeavyDegree > n-cfg.LightServers {
		cfg.HeavyDegree = n - cfg.LightServers
	}
	return cfg
}

// AlmostRegular builds the planted almost-regular graph described by cfg.
//
// Construction: the light servers are removed from the ordinary sampling
// pool. Every ordinary client samples BaseDegree servers without
// replacement from the pool; heavy clients sample HeavyDegree servers.
// Finally each light server is attached to LightDegree clients chosen
// uniformly at random (slightly raising those clients' degrees). The
// result has ∆min(C) = BaseDegree, a few clients of degree ≈ HeavyDegree,
// server degrees concentrated around the mean, and LightServers servers of
// degree exactly LightDegree — matching the paper's example while keeping
// ρ = ∆max(S)/∆min(C) bounded.
func AlmostRegular(cfg AlmostRegularConfig, src *rng.Source) (*bipartite.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.N
	pool := n - cfg.LightServers // servers 0..pool-1 are ordinary, pool..n-1 are light
	b := bipartite.NewBuilder(n, n)
	for v := 0; v < n; v++ {
		deg := cfg.BaseDegree
		if v < cfg.HeavyClients {
			deg = cfg.HeavyDegree
		}
		if deg > pool {
			deg = pool
		}
		for _, u := range src.Sample(pool, deg) {
			b.AddEdge(v, u)
		}
	}
	for u := pool; u < n; u++ {
		for _, v := range src.Sample(n, cfg.LightDegree) {
			b.AddEdge(v, u)
		}
	}
	return b.Build(bipartite.KeepParallelEdges)
}
