package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestErdosRenyiEdgeCount(t *testing.T) {
	const n, m = 300, 300
	const p = 0.05
	g, err := ErdosRenyi(n, m, p, false, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	expected := float64(n) * float64(m) * p
	got := float64(g.NumEdges())
	if math.Abs(got-expected) > 0.2*expected {
		t.Errorf("edge count %v far from expectation %v", got, expected)
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiEnsureClients(t *testing.T) {
	// With p=0 every client would be isolated; ensureClients must give each
	// exactly one edge.
	g, err := ErdosRenyi(50, 50, 0, true, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("ensured graph still has isolated clients: %v", err)
	}
	if g.NumEdges() != 50 {
		t.Fatalf("expected exactly 50 fallback edges, got %d", g.NumEdges())
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	g, err := ErdosRenyi(10, 10, 1, false, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 100 {
		t.Fatalf("p=1 should give the complete graph, got %d edges", g.NumEdges())
	}
	g, err = ErdosRenyi(10, 10, 0, false, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("p=0 should give no edges, got %d", g.NumEdges())
	}
	if _, err := ErdosRenyi(10, 10, 1.5, false, rng.New(1)); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := ErdosRenyi(0, 10, 0.5, false, rng.New(1)); err == nil {
		t.Error("empty side accepted")
	}
}

func TestTrustSubsetDegrees(t *testing.T) {
	g, err := TrustSubset(100, 80, 12, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 100; v++ {
		if g.ClientDegree(v) != 12 {
			t.Fatalf("client %d degree %d, want 12", v, g.ClientDegree(v))
		}
		seen := map[int32]bool{}
		for _, u := range g.ClientNeighbors(v) {
			if seen[u] {
				t.Fatalf("client %d trusts server %d twice", v, u)
			}
			seen[u] = true
		}
	}
}

func TestTrustSubsetRejectsBadParams(t *testing.T) {
	if _, err := TrustSubset(10, 5, 6, rng.New(1)); err == nil {
		t.Error("k > numServers accepted")
	}
	if _, err := TrustSubset(10, 5, 0, rng.New(1)); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := TrustSubset(0, 5, 1, rng.New(1)); err == nil {
		t.Error("empty side accepted")
	}
}

func TestAlmostRegularStructure(t *testing.T) {
	cfg := AlmostRegularConfig{
		N:            400,
		BaseDegree:   36,
		HeavyClients: 5,
		HeavyDegree:  80,
		LightServers: 4,
		LightDegree:  3,
	}
	g, err := AlmostRegular(cfg, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.MinClientDegree < cfg.BaseDegree {
		t.Errorf("min client degree %d below base %d", st.MinClientDegree, cfg.BaseDegree)
	}
	// Heavy clients should have roughly HeavyDegree (plus possibly a few
	// light-server attachments).
	for v := 0; v < cfg.HeavyClients; v++ {
		if g.ClientDegree(v) < cfg.HeavyDegree {
			t.Errorf("heavy client %d degree %d below %d", v, g.ClientDegree(v), cfg.HeavyDegree)
		}
	}
	// Light servers are the last LightServers ids and have exactly LightDegree.
	for u := cfg.N - cfg.LightServers; u < cfg.N; u++ {
		if g.ServerDegree(u) != cfg.LightDegree {
			t.Errorf("light server %d degree %d, want %d", u, g.ServerDegree(u), cfg.LightDegree)
		}
	}
	if math.IsInf(st.RegularityRatio, 1) {
		t.Error("regularity ratio should be finite")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAlmostRegularConfigValidation(t *testing.T) {
	bad := []AlmostRegularConfig{
		{N: 0, BaseDegree: 2},
		{N: 10, BaseDegree: 0},
		{N: 10, BaseDegree: 2, HeavyClients: 11},
		{N: 10, BaseDegree: 4, HeavyClients: 1, HeavyDegree: 2},
		{N: 10, BaseDegree: 2, LightServers: 10},
		{N: 10, BaseDegree: 2, LightServers: 2, LightDegree: 0},
		{N: 10, BaseDegree: 9, LightServers: 2, LightDegree: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	good := AlmostRegularConfig{N: 100, BaseDegree: 10, HeavyClients: 2, HeavyDegree: 20, LightServers: 2, LightDegree: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDefaultAlmostRegularConfig(t *testing.T) {
	for _, n := range []int{64, 256, 1024, 4096} {
		cfg := DefaultAlmostRegularConfig(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("default config for n=%d invalid: %v", n, err)
		}
		if _, err := AlmostRegular(cfg, rng.New(1)); err != nil {
			t.Errorf("default config for n=%d failed to generate: %v", n, err)
		}
	}
}

func TestQuickTrustSubsetValid(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 2
		k := int(kRaw%uint8(n)) + 1
		g, err := TrustSubset(n, n, k, rng.New(seed))
		if err != nil {
			return false
		}
		if g.Validate() != nil || g.CheckConsistency() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if g.ClientDegree(v) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
