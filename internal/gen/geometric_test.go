package gen

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestTorusDistance(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{0.3, 0}, 0.3},
		{Point{0, 0}, Point{0.9, 0}, 0.1},                   // wraps around
		{Point{0.1, 0.1}, Point{0.9, 0.9}, math.Sqrt(0.08)}, // wraps both axes
		{Point{0.25, 0.5}, Point{0.75, 0.5}, 0.5},           // maximal axis distance
	}
	for i, tc := range cases {
		if got := TorusDistance(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: distance %v, want %v", i, got, tc.want)
		}
	}
}

func TestRadiusForExpectedDegree(t *testing.T) {
	r := RadiusForExpectedDegree(1000, 30)
	// Expected degree = numServers·π·r² should recover 30.
	got := 1000 * math.Pi * r * r
	if math.Abs(got-30) > 1e-9 {
		t.Errorf("radius gives expected degree %v, want 30", got)
	}
	if RadiusForExpectedDegree(0, 5) != 0 || RadiusForExpectedDegree(5, 0) != 0 {
		t.Error("degenerate inputs should yield radius 0")
	}
}

func TestProximityDegreesNearExpectation(t *testing.T) {
	const n = 2000
	const wantDeg = 40
	cfg := ProximityConfig{
		NumClients: n,
		NumServers: n,
		Radius:     RadiusForExpectedDegree(n, wantDeg),
	}
	gg, err := Proximity(cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	st := gg.Graph.Stats()
	if math.Abs(st.MeanClientDeg-wantDeg) > 0.2*wantDeg {
		t.Errorf("mean client degree %v, want about %v", st.MeanClientDeg, wantDeg)
	}
	if err := gg.Graph.Validate(); err != nil {
		t.Fatalf("proximity graph invalid: %v", err)
	}
	if len(gg.ClientPos) != n || len(gg.ServerPos) != n {
		t.Error("positions not returned for all entities")
	}
}

func TestProximityEdgesRespectRadius(t *testing.T) {
	cfg := ProximityConfig{NumClients: 300, NumServers: 300, Radius: 0.08}
	gg, err := Proximity(cfg, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	g := gg.Graph
	violations := 0
	for v := 0; v < g.NumClients(); v++ {
		for _, u := range g.ClientNeighbors(v) {
			if TorusDistance(gg.ClientPos[v], gg.ServerPos[u]) > cfg.Radius+1e-12 {
				violations++
			}
		}
	}
	// Only fallback edges (for otherwise-isolated clients) may exceed the
	// radius.
	if violations > gg.FallbackEdges {
		t.Errorf("%d edges exceed the radius but only %d fallbacks were recorded", violations, gg.FallbackEdges)
	}
}

func TestProximityMinDegree(t *testing.T) {
	cfg := ProximityConfig{NumClients: 200, NumServers: 200, Radius: 0.02, MinDegree: 5}
	gg, err := Proximity(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < gg.Graph.NumClients(); v++ {
		if gg.Graph.ClientDegree(v) < 5 {
			t.Fatalf("client %d degree %d below MinDegree", v, gg.Graph.ClientDegree(v))
		}
	}
}

func TestProximityRejectsBadParams(t *testing.T) {
	if _, err := Proximity(ProximityConfig{NumClients: 0, NumServers: 10, Radius: 0.1}, rng.New(1)); err == nil {
		t.Error("empty client side accepted")
	}
	if _, err := Proximity(ProximityConfig{NumClients: 10, NumServers: 10, Radius: 0}, rng.New(1)); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := Proximity(ProximityConfig{NumClients: 10, NumServers: 10, Radius: 0.7}, rng.New(1)); err == nil {
		t.Error("radius > 0.5 accepted")
	}
}

func TestProximityDeterministic(t *testing.T) {
	cfg := ProximityConfig{NumClients: 100, NumServers: 100, Radius: 0.1}
	a, err := Proximity(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Proximity(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("proximity generation not deterministic")
	}
	ae, be := a.Graph.Edges(), b.Graph.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs between identical-seed runs", i)
		}
	}
}
