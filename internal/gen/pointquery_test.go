package gen

import (
	"testing"

	"repro/internal/rng"
)

// TestSampleAtMatchesSampleRow pins the point-query identity of the
// partial-shuffle sampler: SampleAt(s, pool, i) equals
// SampleRow(s, pool, k, nil)[i] for every i < k, and both consume
// exactly one stream value (the permutation key), leaving the stream in
// the same state.
func TestSampleAtMatchesSampleRow(t *testing.T) {
	for _, pool := range []int{1, 2, 7, 64, 1000} {
		for seed := uint64(0); seed < 5; seed++ {
			k := pool
			if k > 40 {
				k = 40
			}
			s := rng.StreamAt(seed, 11)
			row := SampleRow(&s, pool, k, nil)
			after := s.Uint64()
			for i := 0; i < k; i++ {
				s2 := rng.StreamAt(seed, 11)
				if got := SampleAt(&s2, pool, i); got != row[i] {
					t.Fatalf("pool=%d seed=%d: SampleAt(%d) = %d, row[%d] = %d", pool, seed, i, got, i, row[i])
				}
				if next := s2.Uint64(); next != after {
					t.Fatalf("pool=%d seed=%d i=%d: SampleAt left the stream in a different state", pool, seed, i)
				}
			}
		}
	}
}

// TestNeighborAtMatchesRow is the cross-family point-query property
// suite: for every implicit family and every client, NeighborAt(v, i)
// must equal AppendClientNeighbors(v, nil)[i] at every index i, and
// ClientDegree must equal the row length. Families without point-query
// support (Erdős–Rényi) must report CanPointQuery() == false.
func TestNeighborAtMatchesRow(t *testing.T) {
	regular, err := RegularImplicit(257, 19, 0xABCD)
	if err != nil {
		t.Fatal(err)
	}
	trust, err := TrustSubsetImplicit(200, 111, 17, 0x7057)
	if err != nil {
		t.Fatal(err)
	}
	almost, err := AlmostRegularImplicit(DefaultAlmostRegularConfig(256), 21)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyiImplicit(128, 90, 0.07, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if er.CanPointQuery() {
		t.Error("erdos-renyi: skip-sampled rows unexpectedly answer point queries")
	}

	for _, tc := range []struct {
		name string
		topo *Implicit
	}{
		{"regular", regular},
		{"trust-subset", trust},
		{"almost-regular", almost},
	} {
		if !tc.topo.CanPointQuery() {
			t.Errorf("%s: family does not answer point queries", tc.name)
			continue
		}
		var row []int32
		for v := 0; v < tc.topo.NumClients(); v++ {
			row = tc.topo.AppendClientNeighbors(v, row[:0])
			if got := tc.topo.ClientDegree(v); got != len(row) {
				t.Fatalf("%s: ClientDegree(%d) = %d, row length %d", tc.name, v, got, len(row))
			}
			for i, want := range row {
				if got := tc.topo.NeighborAt(v, i); got != want {
					t.Fatalf("%s: NeighborAt(%d, %d) = %d, row[%d] = %d", tc.name, v, i, got, i, want)
				}
			}
		}
	}
}

// TestNumEdgesUniformDegreeO1 pins the O(1) NumEdges answer of the
// uniform-degree families against the row-by-row sum.
func TestNumEdgesUniformDegreeO1(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (*Implicit, error)
	}{
		{"regular", func() (*Implicit, error) { return RegularImplicit(300, 12, 5) }},
		{"trust-subset", func() (*Implicit, error) { return TrustSubsetImplicit(211, 150, 9, 5) }},
		{"erdos-renyi", func() (*Implicit, error) { return ErdosRenyiImplicit(100, 80, 0.1, true, 5) }},
		{"almost-regular", func() (*Implicit, error) {
			return AlmostRegularImplicit(DefaultAlmostRegularConfig(128), 5)
		}},
	} {
		topo, err := tc.mk()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := 0
		for v := 0; v < topo.NumClients(); v++ {
			want += len(topo.AppendClientNeighbors(v, nil))
		}
		if got := topo.NumEdges(); got != want {
			t.Errorf("%s: NumEdges() = %d, row sum %d", tc.name, got, want)
		}
	}
}
