package experiments

import (
	"repro/internal/bipartite"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/sweep"
)

// runFailureWaveTrial executes one E16 scenario: a stable client
// population in which half the clients place fresh demand each epoch
// (leaving spare request capacity for re-injection), a failure wave
// takes out a fraction of the servers one third into the scenario, and
// the wave recovers two thirds in. The failed servers' carried load is
// handled by the configured policy.
func runFailureWaveTrial(n, delta, epochs int, failFrac float64, policy churn.Policy, d int, c float64, track bool, seed uint64) ([]churn.EpochOutcome, error) {
	topo, sch, src, err := churnScenarioSetup(n, n, delta, churn.SchedulerConfig{
		Protocol:   singleWorkerConfig(d, c),
		LoadExpiry: 0.5, Policy: policy, TrackRounds: track,
	}, seed)
	if err != nil {
		return nil, err
	}
	failAt := epochs/3 + 1
	recoverAt := 2*epochs/3 + 1
	var wave []int32
	outs := make([]churn.EpochOutcome, 0, epochs)
	for e := 1; e <= epochs; e++ {
		ev := churn.EpochEvent{Dt: 1, Demand: topo.SamplePresent(src, n/2)}
		switch e {
		case failAt:
			wave = topo.SampleLive(src, int(failFrac*float64(n)+0.5))
			ev.Fail = wave
		case recoverAt:
			ev.Recover = wave
		}
		out, err := sch.Step(ev)
		if err != nil {
			return nil, err
		}
		outs = append(outs, *out)
	}
	return outs, nil
}

// ExperimentFailureWaves (E16) drives server failure/recovery waves
// through the churn subsystem and compares the three failed-load
// policies: a quarter of the servers crash mid-scenario (their edges
// vanish from every admissible neighborhood in O(1) per row read; their
// load is dropped, re-injected as fresh demand, or pushed onto the
// survivors) and later recover cold. The question is the future-work
// one: does SAER absorb the wave and re-absorb the recovered capacity
// without the load cap breaking or settling times blowing up?
func ExperimentFailureWaves(cfg SuiteConfig) (*Table, error) {
	n := 1 << 12
	epochs := 15
	if cfg.Quick {
		n = 1 << 10
		epochs = 6
	}
	delta := regularDelta(n)
	d, c := 2, 4.0
	failFrac := 0.25
	capacity := core.Params{D: d, C: c}.Capacity()
	spec := sweep.Spec{
		ID:    "E16",
		Title: "Server failure/recovery waves under the three failed-load policies (churn subsystem)",
		Columns: []string{"policy", "fail_frac", "trials", "epochs", "failed_peak", "rounds_mean",
			"rounds_max", "max_load_max", "cap", "reinjected_total", "unassigned_total", "mean_load_last"},
	}
	for i, policy := range []churn.Policy{churn.PolicyDrop, churn.PolicyReinject, churn.PolicySaturate} {
		policy := policy
		pointID := policy.String()
		spec.Points = append(spec.Points, sweep.Point{
			ID:      pointID,
			SeedKey: []uint64{16, uint64(i)},
			Run: func(cfg SuiteConfig, _ bipartite.Topology, _ int, seed uint64) (any, error) {
				return runFailureWaveTrial(n, delta, epochs, failFrac, policy, d, c, cfg.Records != nil, seed)
			},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				trials := make([][]churn.EpochOutcome, len(out.Custom))
				for i, cu := range out.Custom {
					trials[i] = cu.([]churn.EpochOutcome)
				}
				agg := aggregateEpochs(trials)
				t.AddRowf(pointID, failFrac, agg.Trials, agg.Epochs, agg.FailedPeak, agg.RoundsMean,
					agg.RoundsMax, agg.MaxLoadMax, capacity, agg.ReinjectedTotal, agg.UnassignedTotal, agg.MeanLoadLast)
				streamEpochRounds(cfg, "E16", pointID, out)
				return nil
			},
		})
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("scenario: %d clients/servers (Δ=%d, d=%d, c=%g), %d epochs; 25%% of the servers fail at epoch %d and recover at epoch %d; half the clients place fresh demand each epoch, 50%% load expiry",
			n, delta, d, c, epochs, epochs/3+1, 2*epochs/3+1)
		t.AddNote("failed servers vanish from every admissible row (read-time filtering, fallback edge when a whole neighborhood fails); recovery restores the original edges")
		t.AddNote("claim (extension): the c·d load cap is a per-server invariant and survives failure waves under every policy; saturate stresses the survivors hardest")
		return nil
	}
	return sweep.Run(cfg, spec)
}
