// Package experiments contains the reproduction's experiment harness: one
// experiment per claim of the paper (see DESIGN.md for the index), each of
// which builds its workloads, runs the protocols and baselines over
// repeated seeded trials, and renders a Table with the measured series.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

// SuiteConfig is the shared configuration of all experiments.
type SuiteConfig struct {
	// Quick selects reduced problem sizes and trial counts so the whole
	// suite finishes in seconds (used by `go test` and smoke runs). The
	// full-size configuration is intended for the saer-experiments CLI.
	Quick bool
	// Trials is the number of independent protocol runs per configuration
	// point. Zero selects a per-mode default (3 quick / 10 full).
	Trials int
	// Seed derives all graph and protocol seeds.
	Seed uint64
	// TrialParallelism caps how many trials run concurrently (each trial
	// itself runs single-threaded to avoid oversubscription). Zero selects
	// GOMAXPROCS.
	TrialParallelism int
	// Topology selects how scaling-experiment graphs are represented:
	// "csr" always materializes, "implicit" always regenerates
	// neighborhoods from per-client seeds, and "" (auto) materializes
	// below implicitSizeThreshold clients and goes implicit above it —
	// the setting that lets the full-mode sweeps reach n = 2²⁰ without
	// holding O(n·Δ) edges in memory.
	Topology string
}

// implicitSizeThreshold is the auto-mode switchover: at and above this
// many clients the Δ = log² n CSR adjacency (two int32 arrays per side)
// costs hundreds of megabytes, so experiments regenerate neighborhoods
// instead of storing them.
const implicitSizeThreshold = 1 << 16

// DefaultSuiteConfig returns the configuration used by the CLI when no
// flags are given.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{Quick: false, Seed: 0xC1E27A9E, Trials: 0}
}

// QuickSuiteConfig returns the reduced configuration used in tests.
func QuickSuiteConfig() SuiteConfig {
	return SuiteConfig{Quick: true, Seed: 0xC1E27A9E, Trials: 0}
}

func (c SuiteConfig) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return 3
	}
	return 10
}

func (c SuiteConfig) parallelism() int {
	if c.TrialParallelism > 0 {
		return c.TrialParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// sizes returns the n sweep used by the scaling experiments.
func (c SuiteConfig) sizes() []int {
	if c.Quick {
		return []int{256, 512, 1024, 2048}
	}
	return []int{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15}
}

// largeSizes returns the extended n sweep used by the experiments whose
// round loops run on implicit topologies (E1, E2): the standard sweep
// plus the million-client points in full mode. Forcing Topology "csr"
// keeps the old cap — materializing a Δ = log² n graph at 2²⁰ clients
// needs gigabytes.
func (c SuiteConfig) largeSizes() []int {
	s := c.sizes()
	if c.Quick || c.Topology == "csr" {
		return s
	}
	return append(append([]int{}, s...), 1<<16, 1<<18, 1<<20)
}

// useImplicit reports whether the scaling experiments should build the
// implicit topology at size n.
func (c SuiteConfig) useImplicit(n int) bool {
	switch c.Topology {
	case "implicit":
		return true
	case "csr":
		return false
	default:
		return n >= implicitSizeThreshold
	}
}

// trialSeed derives a deterministic seed for (experiment, point, trial).
func (c SuiteConfig) trialSeed(parts ...uint64) uint64 {
	h := c.Seed ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

// forEachTrial executes fn(trial) for trial = 0..trials-1 on a bounded
// worker pool of at most cfg.parallelism() goroutines, handing each worker
// a stable worker index. Work is distributed by an atomic counter, so no
// goroutine is ever spawned per trial. The first error (in trial order) is
// returned.
func forEachTrial(cfg SuiteConfig, trials int, fn func(worker, trial int) error) error {
	if trials <= 0 {
		return nil
	}
	errs := make([]error, trials)
	workers := min(cfg.parallelism(), trials)
	if workers <= 1 {
		for i := 0; i < trials; i++ {
			errs[i] = fn(0, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= trials {
						return
					}
					errs[i] = fn(w, i)
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runPooledTrials runs independent Monte-Carlo trials of the same
// (graph, variant, params, options) configuration concurrently on a
// shared pool of reusable Runners: each pool worker lazily builds one
// Runner and drives it through successive trials via Reseed, so graph
// validation and state allocation happen once per worker instead of once
// per trial. Every trial runs single-threaded (params.Workers is forced
// to 1): at experiment sizes, trial-level parallelism beats intra-run
// parallelism, which cannot amortize its barriers on quick instances.
// Results are returned in trial order and are bit-for-bit identical to
// fresh single-threaded runs (the determinism contract of core.Runner).
func runPooledTrials(cfg SuiteConfig, trials int, g bipartite.Topology, variant core.Variant,
	params core.Params, opts core.Options, seed func(trial int) uint64) ([]*core.Result, error) {
	params.Workers = 1
	results := make([]*core.Result, trials)
	runners := make([]*core.Runner, min(cfg.parallelism(), max(trials, 1)))
	err := forEachTrial(cfg, trials, func(worker, i int) error {
		r := runners[worker]
		if r == nil {
			var e error
			r, e = core.NewRunner(g, variant, params, opts)
			if e != nil {
				return e
			}
			runners[worker] = r
		}
		r.Reseed(seed(i))
		results[i] = r.Run()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// regularDelta returns the Θ(log² n) degree used for the regular-graph
// experiments.
func regularDelta(n int) int {
	if n < 4 {
		return 2
	}
	l := math.Log2(float64(n))
	d := int(l*l + 0.5)
	if d < 4 {
		d = 4
	}
	if d > n {
		d = n
	}
	return d
}

// buildRegular builds the random ∆-regular graph for a scaling point.
func buildRegular(n, delta int, seed uint64) (*bipartite.Graph, error) {
	g, err := gen.Regular(n, delta, rng.New(seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: building %d-regular graph on %d nodes: %w", delta, n, err)
	}
	return g, nil
}

// buildRegularTopology builds the Δ-regular topology for a scaling point
// in the representation the configuration selects: the materialized
// permutation-model graph below the implicit threshold, the regenerative
// keyed-matching topology above it. Both are unions of delta random
// perfect matchings; only the storage (and the matching sampler) differs.
func buildRegularTopology(cfg SuiteConfig, n, delta int, seed uint64) (bipartite.Topology, error) {
	if !cfg.useImplicit(n) {
		return buildRegular(n, delta, seed)
	}
	t, err := gen.RegularImplicit(n, delta, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: building implicit %d-regular topology on %d nodes: %w", delta, n, err)
	}
	return t, nil
}

// fmtBool renders a boolean as "yes"/"no" for table cells.
func fmtBool(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// fmtRate renders a fraction as a percentage.
func fmtRate(r float64) string {
	return fmt.Sprintf("%.0f%%", 100*r)
}
