// Package experiments contains the reproduction's experiment suite: one
// experiment per claim of the paper (see DESIGN.md for the index). Each
// experiment is declared as a sweep.Spec — a grid of configuration points
// with a topology, protocol parameters and a per-point rendering — and
// executed by the shared engine in internal/sweep, which owns topology
// representation selection (csr/implicit/auto), pooled Runner reuse
// across Monte-Carlo trials, deterministic per-(point, trial) seeding,
// and dual rendering (text/CSV tables plus a JSON record stream).
package experiments

import (
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/sweep"
)

// SuiteConfig is the shared configuration of all experiments. It is the
// sweep engine's Config; the alias keeps the historical name that the
// CLIs and tests use.
type SuiteConfig = sweep.Config

// Table is the uniform output format of every experiment (owned by the
// sweep engine, which also streams it as JSON records).
type Table = sweep.Table

// DefaultSuiteConfig returns the configuration used by the CLI when no
// flags are given.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{Quick: false, Seed: 0xC1E27A9E, Trials: 0}
}

// QuickSuiteConfig returns the reduced configuration used in tests.
func QuickSuiteConfig() SuiteConfig {
	return SuiteConfig{Quick: true, Seed: 0xC1E27A9E, Trials: 0}
}

// sizes returns the n sweep used by the scaling experiments.
func sizes(cfg SuiteConfig) []int {
	if cfg.Quick {
		return []int{256, 512, 1024, 2048}
	}
	return []int{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15}
}

// largeSizes returns the extended n sweep used by the scaling experiments
// whose round loops run on implicit topologies (E1–E4): the standard
// sweep plus the large points up to the experiment's ceiling expMaxN in
// full mode. Forcing Topology "csr" keeps the old cap — materializing a
// Δ = log² n graph at 2²⁰ clients needs gigabytes. expMaxN lets
// tracking-heavy experiments (E3's O(|E|)-per-round neighborhood
// statistics) stop at 2¹⁸ while the untracked sweeps go to 2²⁰ and the
// completion sweeps (E1/E4) to 2²⁴ (affordable since the point-query
// draw path made dense rounds O(n·d)). cfg.MaxN, when set, overrides
// the ceiling in both directions (see sweep.Config).
func largeSizes(cfg SuiteConfig, expMaxN int) []int {
	maxN := expMaxN
	if cfg.MaxN > 0 {
		maxN = cfg.MaxN
	}
	s := sizes(cfg)
	for len(s) > 1 && s[len(s)-1] > maxN {
		s = s[:len(s)-1]
	}
	if cfg.Topology == "csr" {
		return s
	}
	if cfg.Quick {
		if cfg.MaxN > 0 && maxN > s[len(s)-1] {
			s = append(s, maxN)
		}
		return s
	}
	for _, n := range []int{1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24} {
		if n <= maxN && n > s[len(s)-1] {
			s = append(s, n)
		}
	}
	return s
}

// regularDelta returns the Θ(log² n) degree used for the regular-graph
// experiments.
func regularDelta(n int) int {
	if n < 4 {
		return 2
	}
	l := math.Log2(float64(n))
	d := int(l*l + 0.5)
	if d < 4 {
		d = 4
	}
	if d > n {
		d = n
	}
	return d
}

// regularEta returns η for the Δ-regular graph on n clients: the exact
// value Graph.Stats measures (∆min(C)/log₂² n with ∆min(C) = delta),
// computable without materializing the graph — which is what lets the
// experiments that need the paper's prescribed c run on implicit
// topologies.
func regularEta(n, delta int) float64 {
	if n <= 1 {
		return math.Inf(1)
	}
	logn := math.Log2(float64(n))
	return float64(delta) / (logn * logn)
}

// regularTopo declares the Δ-regular topology of a scaling point; the
// engine picks the representation (materialized permutation model below
// the implicit threshold, regenerative keyed matchings above).
func regularTopo(n, delta int, seedKey ...uint64) sweep.Topo {
	return sweep.Topo{Family: sweep.FamRegular, N: n, Delta: delta, SeedKey: seedKey}
}

// buildRegular builds the random ∆-regular graph for a scaling point
// (materialized; used by tests and the few experiments that need the
// *bipartite.Graph API).
func buildRegular(n, delta int, seed uint64) (*bipartite.Graph, error) {
	g, err := gen.Regular(n, delta, rng.New(seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: building %d-regular graph on %d nodes: %w", delta, n, err)
	}
	return g, nil
}

// fmtBool and fmtRate render table cells; they live with the Table in the
// sweep package and are aliased here for the experiment renderers.
var (
	fmtBool = sweep.FmtBool
	fmtRate = sweep.FmtRate
)
