package experiments

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// quickCfg is the reduced configuration all experiment tests run with; it
// keeps the whole suite under a few seconds.
func quickCfg() SuiteConfig {
	cfg := QuickSuiteConfig()
	cfg.Trials = 2
	return cfg
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	exps := All()
	if len(exps) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(exps))
	}
	for i, e := range exps {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %s is missing metadata", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E3")
	if err != nil || e.ID != "E3" {
		t.Fatalf("ByID(E3) = %v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

// checkTable verifies the basic well-formedness every experiment table
// must satisfy.
func checkTable(t *testing.T, tb *Table, wantID string) {
	t.Helper()
	if tb == nil {
		t.Fatal("nil table")
	}
	if tb.ID != wantID {
		t.Errorf("table ID %s, want %s", tb.ID, wantID)
	}
	if len(tb.Columns) == 0 {
		t.Error("table has no columns")
	}
	if len(tb.Rows) == 0 {
		t.Error("table has no rows")
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Errorf("row %d has %d cells for %d columns", i, len(row), len(tb.Columns))
		}
	}
	if tb.String() == "" {
		t.Error("table renders to empty string")
	}
}

func TestExperimentE1Completion(t *testing.T) {
	tb, err := ExperimentCompletionScaling(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E1")
	// Every row must report completion within the bound on these sizes.
	col := indexOf(tb.Columns, "within_bound")
	for _, row := range tb.Rows {
		if row[col] != "yes" {
			t.Errorf("row %v not within the completion bound", row)
		}
	}
}

func TestExperimentE2Work(t *testing.T) {
	tb, err := ExperimentWorkScaling(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E2")
	// Work per ball must stay bounded by a small constant across n.
	col := indexOf(tb.Columns, "work_per_ball_mean")
	for _, row := range tb.Rows {
		v := parseFloat(t, row[col])
		if v < 2 || v > 12 {
			t.Errorf("work per ball %v outside the expected constant range", v)
		}
	}
}

func TestExperimentE3Burned(t *testing.T) {
	tb, err := ExperimentBurnedFraction(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E3")
	col := indexOf(tb.Columns, "below_bound")
	for _, row := range tb.Rows {
		if row[col] != "yes" {
			t.Errorf("burned fraction exceeded 1/2 in row %v", row)
		}
	}
}

func TestExperimentE4SaerVsRaes(t *testing.T) {
	tb, err := ExperimentSAERvsRAES(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E4")
	// Rows alternate SAER/RAES per n.
	if len(tb.Rows)%2 != 0 {
		t.Error("expected an even number of rows (SAER and RAES per n)")
	}
}

func TestExperimentE5MaxLoad(t *testing.T) {
	tb, err := ExperimentMaxLoad(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E5")
	col := indexOf(tb.Columns, "within_cap")
	for _, row := range tb.Rows {
		if row[col] != "yes" {
			t.Errorf("load cap violated in row %v", row)
		}
	}
}

func TestExperimentE6DegreeSweep(t *testing.T) {
	tb, err := ExperimentDegreeSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E6")
}

func TestExperimentE7Baselines(t *testing.T) {
	tb, err := ExperimentSequentialBaselines(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E7")
	// SAER, RAES and six baselines.
	if len(tb.Rows) != 8 {
		t.Errorf("expected 8 algorithm rows, got %d", len(tb.Rows))
	}
	algCol := indexOf(tb.Columns, "algorithm")
	found := map[string]bool{}
	for _, row := range tb.Rows {
		found[row[algCol]] = true
	}
	for _, want := range []string{"SAER", "RAES", "one-choice", "greedy-best-of-2", "greedy-full-scan"} {
		if !found[want] {
			t.Errorf("missing algorithm row %q", want)
		}
	}
}

func TestExperimentE8AlmostRegular(t *testing.T) {
	tb, err := ExperimentAlmostRegular(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E8")
	col := indexOf(tb.Columns, "success")
	for _, row := range tb.Rows {
		if row[col] != "100%" {
			t.Errorf("almost-regular run did not always complete: %v", row)
		}
	}
}

func TestExperimentE9Threshold(t *testing.T) {
	tb, err := ExperimentThresholdSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E9")
	// The largest c (the paper's) must succeed in all trials.
	col := indexOf(tb.Columns, "success")
	last := tb.Rows[len(tb.Rows)-1]
	if last[col] != "100%" {
		t.Errorf("the paper's c did not always complete: %v", last)
	}
}

func TestExperimentE10Dense(t *testing.T) {
	tb, err := ExperimentDenseRegime(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E10")
}

func TestExperimentE11Decay(t *testing.T) {
	tb, err := ExperimentAliveDecay(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E11")
}

func TestExperimentE12Dynamic(t *testing.T) {
	tb, err := ExperimentDynamic(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E12")
	col := indexOf(tb.Columns, "completed")
	for _, row := range tb.Rows {
		if row[col] != "yes" {
			t.Errorf("dynamic batch did not complete: %v", row)
		}
	}
}

func TestExperimentE13Expander(t *testing.T) {
	tb, err := ExperimentExpanderExtraction(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E13")
	col := indexOf(tb.Columns, "expander_like")
	sigmaCol := indexOf(tb.Columns, "sigma2")
	for _, row := range tb.Rows {
		if row[col] != "yes" {
			t.Errorf("assignment graph not expander-like: %v", row)
		}
		if parseFloat(t, row[sigmaCol]) >= 1 {
			t.Errorf("sigma2 should be < 1: %v", row)
		}
	}
}

func TestExperimentE14Demand(t *testing.T) {
	tb, err := ExperimentHeterogeneousDemand(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E14")
	success := indexOf(tb.Columns, "success")
	maxLoad := indexOf(tb.Columns, "max_load")
	capCol := indexOf(tb.Columns, "cap")
	for _, row := range tb.Rows {
		if row[success] != "100%" {
			t.Errorf("workload %q did not always complete", row[0])
		}
		if parseFloat(t, row[maxLoad]) > parseFloat(t, row[capCol]) {
			t.Errorf("workload %q violates the load cap: %v", row[0], row)
		}
	}
}

func TestExperimentE15ChurnRate(t *testing.T) {
	tb, err := ExperimentChurnRate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E15")
	if len(tb.Rows) != len(e15Fractions) {
		t.Fatalf("expected one row per rewiring fraction, got %d", len(tb.Rows))
	}
	maxLoad := indexOf(tb.Columns, "max_load_max")
	capCol := indexOf(tb.Columns, "cap")
	for _, row := range tb.Rows {
		if parseFloat(t, row[maxLoad]) > parseFloat(t, row[capCol]) {
			t.Errorf("load cap violated under edge churn: %v", row)
		}
	}
}

func TestExperimentE16FailureWaves(t *testing.T) {
	tb, err := ExperimentFailureWaves(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E16")
	if len(tb.Rows) != 3 {
		t.Fatalf("expected one row per policy, got %d", len(tb.Rows))
	}
	maxLoad := indexOf(tb.Columns, "max_load_max")
	capCol := indexOf(tb.Columns, "cap")
	reinjected := indexOf(tb.Columns, "reinjected_total")
	policyCol := indexOf(tb.Columns, "policy")
	for _, row := range tb.Rows {
		if parseFloat(t, row[maxLoad]) > parseFloat(t, row[capCol]) {
			t.Errorf("load cap violated under failures: %v", row)
		}
		if row[policyCol] != "reinject" && row[reinjected] != "0" {
			t.Errorf("policy %q re-injected balls: %v", row[policyCol], row)
		}
	}
}

func TestExperimentE17Arrivals(t *testing.T) {
	tb, err := ExperimentArrivalProcesses(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "E17")
	if len(tb.Rows) != 4 {
		t.Fatalf("expected batch/poisson × two occupancies, got %d rows", len(tb.Rows))
	}
	maxLoad := indexOf(tb.Columns, "max_load_max")
	capCol := indexOf(tb.Columns, "cap")
	arrived := indexOf(tb.Columns, "arrivals_total")
	for _, row := range tb.Rows {
		if parseFloat(t, row[maxLoad]) > parseFloat(t, row[capCol]) {
			t.Errorf("load cap violated under arrivals: %v", row)
		}
		if parseFloat(t, row[arrived]) == 0 {
			t.Errorf("no clients ever arrived: %v", row)
		}
	}
}

// TestE12IncrementalPathEquivalence pins the acceptance criterion that
// the incremental E12 scenario is deterministic across worker and shard
// counts: the same scenario stepped with multi-worker sharded Runners
// must produce exactly the single-worker outcomes. (The churn package's
// TestChurnSchedulerEquivalence covers the full matrix; this covers the
// E12 configuration specifically.)
func TestE12IncrementalPathEquivalence(t *testing.T) {
	dc := DefaultDynamicConfig(quickCfg())
	dc.TrackRounds = true
	ref, err := RunDynamicScenario(dc, 4242)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ref {
		if !o.Completed {
			t.Fatalf("reference batch %d did not complete", o.Batch)
		}
	}
	for _, workers := range []int{2, 4} {
		for _, shards := range []int{0, 1, 3, 8} {
			run := dc
			run.Workers = workers
			run.Shards = shards
			got, err := RunDynamicScenario(run, 4242)
			if err != nil {
				t.Fatal(err)
			}
			if !equalDynamicOutcomes(ref, got) {
				t.Fatalf("incremental scenario diverges at workers=%d shards=%d", workers, shards)
			}
		}
	}
}

func equalDynamicOutcomes(a, b []DynamicBatchOutcome) bool {
	return reflect.DeepEqual(a, b)
}

func TestAssignmentDegreeCheckHelper(t *testing.T) {
	cfg := quickCfg()
	g, err := buildRegular(256, 20, cfg.TrialSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{D: 2, C: 4, Seed: 5, Workers: 1}
	res, err := core.Run(g, core.SAER, params, core.Options{TrackAssignments: true})
	if err != nil || !res.Completed {
		t.Fatalf("run failed: %v %v", err, res)
	}
	sub, err := res.AssignmentGraph()
	if err != nil {
		t.Fatal(err)
	}
	if err := assignmentDegreeCheck(sub, 2, params.Capacity()); err != nil {
		t.Errorf("degree check failed: %v", err)
	}
	if err := assignmentDegreeCheck(sub, 3, params.Capacity()); err == nil {
		t.Error("degree check should fail for the wrong d")
	}
}

func TestRunDynamicScenarioValidation(t *testing.T) {
	if _, err := RunDynamicScenario(DynamicConfig{}, 1); err == nil {
		t.Error("empty dynamic config accepted")
	}
	dc := DefaultDynamicConfig(quickCfg())
	outcomes, err := RunDynamicScenario(dc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != dc.Batches {
		t.Fatalf("got %d batch outcomes, want %d", len(outcomes), dc.Batches)
	}
	capacity := core.Params{D: dc.D, C: dc.C}.Capacity()
	for _, o := range outcomes {
		if o.MaxLoad > capacity {
			t.Errorf("batch %d max load %d exceeds cap %d", o.Batch, o.MaxLoad, capacity)
		}
	}
}

func indexOf(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(s)
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a float: %v", s, err)
	}
	return v
}

// TestExperimentTopologyEquivalence is the experiment-level form of the
// CSR-vs-implicit contract: running a whole experiment with every graph
// forced implicit must render byte-for-byte the same table as running it
// on the materialized twins of those implicit topologies ("implicit-csr").
// This extends the per-run TestTopologyEquivalence* suite in
// internal/core to the sweeps that newly run on implicit topologies
// (E3/E4/E6/E9, plus E5's trust-subset and almost-regular families and
// the E1/E2 scaling sweeps).
func TestExperimentTopologyEquivalence(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E8", "E9"} {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			implicit := quickCfg()
			implicit.Topology = "implicit"
			twin := quickCfg()
			twin.Topology = "implicit-csr"
			ti, err := exp.Run(implicit)
			if err != nil {
				t.Fatalf("implicit run failed: %v", err)
			}
			tc, err := exp.Run(twin)
			if err != nil {
				t.Fatalf("implicit-csr run failed: %v", err)
			}
			if ti.String() != tc.String() {
				t.Errorf("implicit and materialized-twin tables diverge:\n--- implicit ---\n%s\n--- implicit-csr ---\n%s", ti, tc)
			}
		})
	}
}
