package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/sweep"
)

// runArrivalTrial executes one E17 scenario: a pool of n client slots
// starts empty; sessions of length sessionLen epochs arrive either in
// fixed batches of rate balls-of-clients per epoch or as a Poisson
// process with the same mean (one epoch = one unit of continuous time),
// each with a freshly sampled admissible neighborhood, and depart when
// their session ends. Carried load expires at 1/sessionLen per epoch,
// matching the session turnover.
func runArrivalTrial(n, delta, epochs, sessionLen int, rate float64, poisson bool, d int, c float64, track bool, seed uint64) ([]churn.EpochOutcome, error) {
	topo, sch, src, err := churnScenarioSetup(n, n, delta, churn.SchedulerConfig{
		Protocol:   singleWorkerConfig(d, c),
		LoadExpiry: 1 / float64(sessionLen), TrackRounds: track,
	}, seed)
	if err != nil {
		return nil, err
	}
	// The pool starts empty: every slot is a potential session.
	all := make([]int32, n)
	for v := range all {
		all[v] = int32(v)
	}
	topo.Depart(all)
	// sessions[e % sessionLen] holds the clients whose session ends at
	// epoch e (arrived at e - sessionLen).
	sessions := make([][]int32, sessionLen)
	outs := make([]churn.EpochOutcome, 0, epochs)
	for e := 1; e <= epochs; e++ {
		count := int(rate + 0.5)
		if poisson {
			count = src.Poisson(rate)
		}
		slot := e % sessionLen
		ev := churn.EpochEvent{
			Dt:     1,
			Depart: sessions[slot],
			Arrive: topo.SampleAbsent(src, count),
		}
		sessions[slot] = ev.Arrive
		out, err := sch.Step(ev)
		if err != nil {
			return nil, err
		}
		outs = append(outs, *out)
	}
	return outs, nil
}

// ExperimentArrivalProcesses (E17) contrasts Poisson client arrivals
// with fixed batch arrivals at the same mean rate: sessions arrive with
// fresh admissible neighborhoods, place their d balls on arrival, and
// depart a fixed number of epochs later. Batch arrivals are the paper's
// E12 framing; Poisson arrivals are the continuous-time process a real
// service sees, whose bursts overshoot the mean — the question is
// whether SAER's per-epoch settling and the load cap care about the
// difference.
func ExperimentArrivalProcesses(cfg SuiteConfig) (*Table, error) {
	n := 1 << 12
	epochs := 24
	if cfg.Quick {
		n = 1 << 10
		epochs = 8
	}
	const sessionLen = 4
	delta := regularDelta(n)
	d, c := 2, 4.0
	capacity := core.Params{D: d, C: c}.Capacity()
	spec := sweep.Spec{
		ID:    "E17",
		Title: "Poisson vs batch client arrivals at equal mean rate (churn subsystem, continuous time)",
		Columns: []string{"process", "target_occupancy", "trials", "epochs", "arrivals_total",
			"present_mean", "rounds_mean", "rounds_max", "max_load_max", "cap", "unassigned_total"},
	}
	type proc struct {
		name    string
		poisson bool
	}
	key := uint64(0)
	for _, rho := range []float64{0.5, 0.9} {
		for _, p := range []proc{{"batch", false}, {"poisson", true}} {
			rho, p := rho, p
			key++
			seedKey := key
			rate := rho * float64(n) / sessionLen
			pointID := fmt.Sprintf("%s/rho=%g", p.name, rho)
			spec.Points = append(spec.Points, sweep.Point{
				ID:      pointID,
				SeedKey: []uint64{17, seedKey},
				Run: func(cfg SuiteConfig, _ bipartite.Topology, _ int, seed uint64) (any, error) {
					return runArrivalTrial(n, delta, epochs, sessionLen, rate, p.poisson, d, c, cfg.Records != nil, seed)
				},
				Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
					trials := make([][]churn.EpochOutcome, len(out.Custom))
					for i, cu := range out.Custom {
						trials[i] = cu.([]churn.EpochOutcome)
					}
					agg := aggregateEpochs(trials)
					t.AddRowf(p.name, rho, agg.Trials, agg.Epochs, agg.ArrivedTotal/max(agg.Trials, 1),
						agg.PresentMean, agg.RoundsMean, agg.RoundsMax, agg.MaxLoadMax, capacity, agg.UnassignedTotal)
					streamEpochRounds(cfg, "E17", pointID, out)
					return nil
				},
			})
		}
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("scenario: %d client slots, %d servers (Δ=%d, d=%d, c=%g), %d epochs, sessions last %d epochs and expire their load at 1/%d per epoch",
			n, n, delta, d, c, epochs, sessionLen, sessionLen)
		t.AddNote("batch = exactly ⌊rate⌉ arrivals per epoch; poisson = Poisson(rate) arrivals per epoch (same mean, bursty); target occupancy is rate·session/n")
		t.AddNote("claim (extension): per-epoch settling stays logarithmic and the c·d cap holds under bursty Poisson arrivals, not just the paper's batch framing")
		return nil
	}
	return sweep.Run(cfg, spec)
}
