package experiments

import (
	"sort"
	"testing"
)

// TestLessIDNumericOrder pins lessID's numeric ordering, in particular
// that the churn experiments E15–E17 sort after E14 (lexicographically
// "E15" < "E2", which is exactly the bug lessID exists to avoid) and
// that sorting a shuffled registry-style ID list restores E1..E17.
func TestLessIDNumericOrder(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"E1", "E2", true},
		{"E9", "E10", true},
		{"E10", "E12", true},
		{"E14", "E15", true},
		{"E15", "E16", true},
		{"E16", "E17", true},
		{"E2", "E15", true},  // lexicographically false
		{"E15", "E2", false}, // lexicographically true
		{"E17", "E14", false},
		{"E15", "E15", false},
	}
	for _, tc := range cases {
		if got := lessID(tc.a, tc.b); got != tc.want {
			t.Errorf("lessID(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	ids := []string{"E15", "E2", "E17", "E10", "E1", "E16", "E9", "E14", "E12",
		"E3", "E4", "E5", "E6", "E7", "E8", "E11", "E13"}
	sort.Slice(ids, func(i, j int) bool { return lessID(ids[i], ids[j]) })
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted IDs diverge at %d: got %v", i, ids)
		}
	}
}
