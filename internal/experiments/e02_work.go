package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// ExperimentWorkScaling (E2) validates Theorem 1's work claim: the total
// number of exchanged messages is Θ(n). The table reports, for each n, the
// mean work and the work normalized per ball; the latter should stay a
// small constant as n grows (linearity). The notes contain the fit of
// total work against n — an R² close to 1 with near-zero intercept is the
// Θ(n) signature.
func ExperimentWorkScaling(cfg SuiteConfig) (*Table, error) {
	table := NewTable("E2", "Total work vs n (SAER, ∆ = log² n, d = 2, Theorem 1)",
		"n", "balls", "trials", "work_mean", "work_per_ball_mean", "work_per_ball_max", "rounds_mean")

	d := 2
	var ns, works []float64
	for _, n := range cfg.largeSizes() {
		delta := regularDelta(n)
		g, err := buildRegularTopology(cfg, n, delta, cfg.trialSeed(2, uint64(n)))
		if err != nil {
			return nil, err
		}
		results, err := runPooledTrials(cfg, cfg.trials(), g, core.SAER,
			core.Params{D: d, C: 4}, core.Options{},
			func(trial int) uint64 { return cfg.trialSeed(2, uint64(n), uint64(trial)) })
		if err != nil {
			return nil, err
		}
		agg := metrics.Aggregate(results)
		table.AddRowf(n, n*d, agg.Trials, agg.Work.Mean, agg.WorkPerBall.Mean, agg.WorkPerBall.Max, agg.Rounds.Mean)
		ns = append(ns, float64(n))
		works = append(works, agg.Work.Mean)
	}
	if fit, err := stats.FitLinear(ns, works); err == nil {
		table.AddNote("least-squares fit: work ≈ %.1f + %.2f·n, R²=%.3f (linear work ⇒ slope ≈ 2d·(1+ε), intercept ≈ 0)",
			fit.Intercept, fit.Slope, fit.R2)
	}
	table.AddNote("claim: total work is Θ(n) w.h.p. (Theorem 1, Section 3.2)")
	return table, nil
}
