package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// ExperimentWorkScaling (E2) validates Theorem 1's work claim: the total
// number of exchanged messages is Θ(n). The table reports, for each n, the
// mean work and the work normalized per ball; the latter should stay a
// small constant as n grows (linearity). The notes contain the fit of
// total work against n — an R² close to 1 with near-zero intercept is the
// Θ(n) signature.
func ExperimentWorkScaling(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E2",
		Title: "Total work vs n (SAER, ∆ = log² n, d = 2, Theorem 1)",
		Columns: []string{"n", "balls", "trials", "work_mean", "work_per_ball_mean",
			"work_per_ball_max", "rounds_mean"},
	}

	d := 2
	for _, n := range largeSizes(cfg, 1<<20) {
		n, delta := n, regularDelta(n)
		spec.Points = append(spec.Points, sweep.Point{
			ID:       fmt.Sprintf("n=%d", n),
			Topology: regularTopo(n, delta, 2, uint64(n)),
			Variant:  core.SAER,
			Params:   core.Params{D: d, C: 4},
			SeedKey:  []uint64{2, uint64(n)},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				agg := metrics.Aggregate(out.Results)
				t.AddRowf(n, n*d, agg.Trials, agg.Work.Mean, agg.WorkPerBall.Mean,
					agg.WorkPerBall.Max, agg.Rounds.Mean)
				return nil
			},
		})
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		var ns, works []float64
		for _, out := range outs {
			ns = append(ns, float64(out.Point.Topology.N))
			works = append(works, metrics.Aggregate(out.Results).Work.Mean)
		}
		if fit, err := stats.FitLinear(ns, works); err == nil {
			t.AddNote("least-squares fit: work ≈ %.1f + %.2f·n, R²=%.3f (linear work ⇒ slope ≈ 2d·(1+ε), intercept ≈ 0)",
				fit.Intercept, fit.Slope, fit.R2)
		}
		t.AddNote("claim: total work is Θ(n) w.h.p. (Theorem 1, Section 3.2)")
		return nil
	}
	return sweep.Run(cfg, spec)
}
