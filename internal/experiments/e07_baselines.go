package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// ExperimentSequentialBaselines (E7) positions SAER against the prior
// algorithms the related-work section discusses: the sequential one-choice
// and best-of-k greedy (Azar et al. / Kenthapadi–Panigrahy), Godfrey's
// full-neighborhood greedy, a one-shot parallel k-choice greedy and the
// classic parallel threshold protocol. For each algorithm the table lists
// the achieved maximum load, the number of sequential steps or parallel
// rounds, the message work per ball and whether the algorithm requires
// servers to reveal their loads (the privacy point the paper makes in the
// introduction). The baselines read neighborhoods through the Topology
// interface, so the shared graph follows the engine's representation
// choice (csr/implicit/auto) like every other experiment.
func ExperimentSequentialBaselines(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E7",
		Title: "SAER vs sequential and parallel baselines (same graph, d = 2)",
		Columns: []string{"algorithm", "parallel", "needs_load_info", "max_load_mean",
			"max_load_worst", "steps_or_rounds", "work_per_ball", "completed"},
	}

	n := sizes(cfg)[len(sizes(cfg))-1]
	if cfg.Quick {
		n = 2048
	}
	d := 2
	topo := regularTopo(n, regularDelta(n), 7, uint64(n))
	balls := float64(n * d)

	addRow := func(t *Table, name, parallel, loadInfo string, maxLoads, steps, workPerBall []float64, completedAll bool) {
		ml := stats.MustSummarize(maxLoads)
		st := stats.MustSummarize(steps)
		wp := stats.MustSummarize(workPerBall)
		t.AddRowf(name, parallel, loadInfo, ml.Mean, ml.Max, st.Mean, wp.Mean, fmtBool(completedAll))
	}

	// SAER and RAES through the core package.
	for _, variant := range []core.Variant{core.SAER, core.RAES} {
		variant := variant
		spec.Points = append(spec.Points, sweep.Point{
			ID:       "protocol/" + variant.String(),
			Topology: topo,
			Variant:  variant,
			Params:   core.Params{D: d, C: 4},
			SeedKey:  []uint64{7, uint64(variant)},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				agg := metrics.Aggregate(out.Results)
				var maxLoads, steps, workPerBall []float64
				for _, res := range out.Results {
					maxLoads = append(maxLoads, float64(res.MaxLoad))
					steps = append(steps, float64(res.Rounds))
					workPerBall = append(workPerBall, res.WorkPerBall())
				}
				addRow(t, variant.String(), "yes", "no", maxLoads, steps, workPerBall, agg.SuccessRate == 1)
				return nil
			},
		})
	}

	specs := []struct {
		name, parallel, loadInfo string
		run                      func(g bipartite.Topology, seed uint64) (*baseline.Result, error)
	}{
		{"one-choice", "no", "no", func(g bipartite.Topology, seed uint64) (*baseline.Result, error) {
			return baseline.OneChoice(g, d, seed)
		}},
		{"greedy-best-of-2", "no", "yes", func(g bipartite.Topology, seed uint64) (*baseline.Result, error) {
			return baseline.GreedyBestOfK(g, d, 2, seed)
		}},
		{"greedy-best-of-4", "no", "yes", func(g bipartite.Topology, seed uint64) (*baseline.Result, error) {
			return baseline.GreedyBestOfK(g, d, 4, seed)
		}},
		{"greedy-full-scan", "no", "yes", func(g bipartite.Topology, seed uint64) (*baseline.Result, error) {
			return baseline.GreedyFullScan(g, d, seed)
		}},
		{"parallel-1shot-2-choice", "yes", "yes", func(g bipartite.Topology, seed uint64) (*baseline.Result, error) {
			return baseline.ParallelOneShotKChoice(g, d, 2, seed)
		}},
		{"parallel-threshold-4", "yes", "no", func(g bipartite.Topology, seed uint64) (*baseline.Result, error) {
			return baseline.ParallelThreshold(g, d, 4, 0, seed)
		}},
	}
	for _, sp := range specs {
		sp := sp
		spec.Points = append(spec.Points, sweep.Point{
			ID:       "baseline/" + sp.name,
			Topology: topo,
			// Historical quirk, preserved for byte-identical tables: the
			// seed key is the algorithm's name *length*, so the three
			// 16-letter greedy baselines share per-trial seed sequences
			// (their rows are correlated, not independent samples). Key by
			// the spec index if byte-identity ever stops mattering.
			SeedKey: []uint64{7, uint64(len(sp.name))},
			Run: func(cfg SuiteConfig, g bipartite.Topology, trial int, seed uint64) (any, error) {
				res, err := sp.run(g, seed)
				if err != nil {
					return nil, fmt.Errorf("experiments: baseline %s: %w", sp.name, err)
				}
				return res, nil
			},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				var maxLoads, steps, workPerBall []float64
				completedAll := true
				for _, c := range out.Custom {
					res := c.(*baseline.Result)
					maxLoads = append(maxLoads, float64(res.MaxLoad))
					steps = append(steps, float64(res.Steps))
					workPerBall = append(workPerBall, float64(res.Work)/balls)
					completedAll = completedAll && res.Completed
				}
				addRow(t, sp.name, sp.parallel, sp.loadInfo, maxLoads, steps, workPerBall, completedAll)
				return nil
			},
		})
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("claim context: sequential greedy needs current server loads (privacy/communication cost); SAER achieves O(d) load with only accept/reject bits and O(log n) parallel rounds")
		t.AddNote("expected shape: greedy variants reach smaller absolute max load; SAER/RAES trade a constant-factor larger (but still ≤ c·d) load for parallelism and 1-bit answers")
		return nil
	}
	return sweep.Run(cfg, spec)
}
