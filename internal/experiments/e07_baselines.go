package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// ExperimentSequentialBaselines (E7) positions SAER against the prior
// algorithms the related-work section discusses: the sequential one-choice
// and best-of-k greedy (Azar et al. / Kenthapadi–Panigrahy), Godfrey's
// full-neighborhood greedy, a one-shot parallel k-choice greedy and the
// classic parallel threshold protocol. For each algorithm the table lists
// the achieved maximum load, the number of sequential steps or parallel
// rounds, the message work per ball and whether the algorithm requires
// servers to reveal their loads (the privacy point the paper makes in the
// introduction).
func ExperimentSequentialBaselines(cfg SuiteConfig) (*Table, error) {
	table := NewTable("E7", "SAER vs sequential and parallel baselines (same graph, d = 2)",
		"algorithm", "parallel", "needs_load_info", "max_load_mean", "max_load_worst", "steps_or_rounds", "work_per_ball", "completed")

	n := cfg.sizes()[len(cfg.sizes())-1]
	if cfg.Quick {
		n = 2048
	}
	d := 2
	delta := regularDelta(n)
	g, err := buildRegular(n, delta, cfg.trialSeed(7, uint64(n)))
	if err != nil {
		return nil, err
	}
	balls := float64(n * d)
	trials := cfg.trials()

	type row struct {
		name, parallel, loadInfo     string
		maxLoads, steps, workPerBall []float64
		completedAll                 bool
	}
	addBaseline := func(name, parallel, loadInfo string, run func(seed uint64) (*baseline.Result, error)) (*row, error) {
		// Baseline trials are independent; run them on the same bounded
		// trial pool as the protocol runs.
		trialResults := make([]*baseline.Result, trials)
		err := forEachTrial(cfg, trials, func(_, trial int) error {
			res, err := run(cfg.trialSeed(7, uint64(len(name)), uint64(trial)))
			if err != nil {
				return fmt.Errorf("experiments: baseline %s: %w", name, err)
			}
			trialResults[trial] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		r := &row{name: name, parallel: parallel, loadInfo: loadInfo, completedAll: true}
		for _, res := range trialResults {
			r.maxLoads = append(r.maxLoads, float64(res.MaxLoad))
			r.steps = append(r.steps, float64(res.Steps))
			r.workPerBall = append(r.workPerBall, float64(res.Work)/balls)
			r.completedAll = r.completedAll && res.Completed
		}
		return r, nil
	}

	var rows []*row

	// SAER and RAES through the core package.
	for _, variant := range []core.Variant{core.SAER, core.RAES} {
		results, err := runPooledTrials(cfg, trials, g, variant,
			core.Params{D: d, C: 4}, core.Options{},
			func(trial int) uint64 { return cfg.trialSeed(7, uint64(variant), uint64(trial)) })
		if err != nil {
			return nil, err
		}
		agg := metrics.Aggregate(results)
		r := &row{name: variant.String(), parallel: "yes", loadInfo: "no", completedAll: agg.SuccessRate == 1}
		for _, res := range results {
			r.maxLoads = append(r.maxLoads, float64(res.MaxLoad))
			r.steps = append(r.steps, float64(res.Rounds))
			r.workPerBall = append(r.workPerBall, res.WorkPerBall())
		}
		rows = append(rows, r)
	}

	specs := []struct {
		name, parallel, loadInfo string
		run                      func(seed uint64) (*baseline.Result, error)
	}{
		{"one-choice", "no", "no", func(seed uint64) (*baseline.Result, error) {
			return baseline.OneChoice(g, d, seed)
		}},
		{"greedy-best-of-2", "no", "yes", func(seed uint64) (*baseline.Result, error) {
			return baseline.GreedyBestOfK(g, d, 2, seed)
		}},
		{"greedy-best-of-4", "no", "yes", func(seed uint64) (*baseline.Result, error) {
			return baseline.GreedyBestOfK(g, d, 4, seed)
		}},
		{"greedy-full-scan", "no", "yes", func(seed uint64) (*baseline.Result, error) {
			return baseline.GreedyFullScan(g, d, seed)
		}},
		{"parallel-1shot-2-choice", "yes", "yes", func(seed uint64) (*baseline.Result, error) {
			return baseline.ParallelOneShotKChoice(g, d, 2, seed)
		}},
		{"parallel-threshold-4", "yes", "no", func(seed uint64) (*baseline.Result, error) {
			return baseline.ParallelThreshold(g, d, 4, 0, seed)
		}},
	}
	for _, spec := range specs {
		r, err := addBaseline(spec.name, spec.parallel, spec.loadInfo, spec.run)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}

	for _, r := range rows {
		ml := stats.MustSummarize(r.maxLoads)
		st := stats.MustSummarize(r.steps)
		wp := stats.MustSummarize(r.workPerBall)
		table.AddRowf(r.name, r.parallel, r.loadInfo, ml.Mean, ml.Max, st.Mean, wp.Mean, fmtBool(r.completedAll))
	}
	table.AddNote("claim context: sequential greedy needs current server loads (privacy/communication cost); SAER achieves O(d) load with only accept/reject bits and O(log n) parallel rounds")
	table.AddNote("expected shape: greedy variants reach smaller absolute max load; SAER/RAES trade a constant-factor larger (but still ≤ c·d) load for parallelism and 1-bit answers")
	return table, nil
}
