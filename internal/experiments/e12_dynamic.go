package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// DynamicConfig parameterizes the dynamic/online scenario of experiment
// E12 (the paper's future-work section): client batches arrive over time,
// each batch sees a freshly re-randomized admissibility topology over the
// same server set, and a matching amount of previously placed load expires
// between batches, so the system reaches a metastable regime instead of
// filling up.
type DynamicConfig struct {
	NumServers   int
	BatchClients int
	Batches      int
	D            int
	C            float64
	Delta        int
	// ChurnFraction is the fraction of each server's load that expires
	// between batches (0 disables churn; 1 empties the servers).
	ChurnFraction float64
}

// DefaultDynamicConfig scales the scenario to the suite configuration.
func DefaultDynamicConfig(cfg SuiteConfig) DynamicConfig {
	n := 1 << 12
	batches := 8
	if cfg.Quick {
		n = 1 << 10
		batches = 5
	}
	return DynamicConfig{
		NumServers: n,
		// One batch brings d new balls per server on average; with 50%
		// churn the system settles around a mean load of 2d — half the
		// capacity — so the metastable regime is actually exercised.
		BatchClients:  n,
		Batches:       batches,
		D:             2,
		C:             4,
		Delta:         regularDelta(n),
		ChurnFraction: 0.5,
	}
}

// DynamicBatchOutcome records one batch of the dynamic scenario.
type DynamicBatchOutcome struct {
	Batch           int
	ArrivingBalls   int
	Rounds          int
	Completed       bool
	MaxLoad         int
	MeanLoad        float64
	BurnedAtStart   int
	UnassignedBalls int
}

// RunDynamicScenario executes the online arrival process and returns the
// per-batch outcomes. Server loads persist across batches (minus churn),
// which is exactly the metastable regime the paper conjectures SAER can
// sustain.
func RunDynamicScenario(dc DynamicConfig, seed uint64) ([]DynamicBatchOutcome, error) {
	if dc.NumServers <= 0 || dc.BatchClients <= 0 || dc.Batches <= 0 {
		return nil, fmt.Errorf("experiments: invalid dynamic config %+v", dc)
	}
	src := rng.New(seed)
	loads := make([]int, dc.NumServers)
	capacity := core.Params{D: dc.D, C: dc.C}.Capacity()
	outcomes := make([]DynamicBatchOutcome, 0, dc.Batches)
	// One Runner serves every batch: the batch shape (clients × servers)
	// is constant, so the per-batch topology is swapped in and the run
	// state reset via Reseed instead of reallocating ~O(n) state per
	// batch. Options.InitialLoads aliases the loads slice, so each Reseed
	// picks up the churned carry-over loads in place.
	var runner *core.Runner
	for batch := 0; batch < dc.Batches; batch++ {
		// Churn: a fraction of every server's load expires.
		if dc.ChurnFraction > 0 {
			for u := range loads {
				expired := int(float64(loads[u]) * dc.ChurnFraction)
				loads[u] -= expired
			}
		}
		// Fresh topology for the arriving batch.
		delta := dc.Delta
		if delta > dc.NumServers {
			delta = dc.NumServers
		}
		g, err := gen.BiRegular(dc.BatchClients, delta, dc.NumServers, dc.BatchClients*delta/dc.NumServers, src.Split())
		if err != nil {
			// Fall back to a trust-subset graph when the biregular degree
			// sequence is infeasible for this batch size.
			g, err = gen.TrustSubset(dc.BatchClients, dc.NumServers, delta, src.Split())
			if err != nil {
				return nil, err
			}
		}
		burnedAtStart := 0
		for _, l := range loads {
			if l >= capacity {
				burnedAtStart++
			}
		}
		batchSeed := src.Uint64()
		if runner == nil {
			runner, err = core.NewRunner(g, core.SAER, core.Params{D: dc.D, C: dc.C, Seed: batchSeed, Workers: 1},
				core.Options{InitialLoads: loads, TrackLoads: true})
			if err != nil {
				return nil, err
			}
		} else {
			if err := runner.SwapTopology(g); err != nil {
				return nil, err
			}
			runner.Reseed(batchSeed)
		}
		res := runner.Run()
		copy(loads, res.Loads)
		outcomes = append(outcomes, DynamicBatchOutcome{
			Batch:           batch + 1,
			ArrivingBalls:   dc.BatchClients * dc.D,
			Rounds:          res.Rounds,
			Completed:       res.Completed,
			MaxLoad:         res.MaxLoad,
			MeanLoad:        res.MeanLoad,
			BurnedAtStart:   burnedAtStart,
			UnassignedBalls: res.UnassignedBalls,
		})
	}
	return outcomes, nil
}

// ExperimentDynamic (E12) exercises the paper's future-work conjecture
// that SAER handles online arrivals and topology changes gracefully,
// reaching a metastable regime where every batch settles within a
// logarithmic number of rounds and the load cap keeps holding. The
// scenario is one sweep point with a custom runner: batches are
// inherently sequential (each carries the previous batch's churned
// loads), so the point runs a single trial whose rendering fans the
// per-batch outcomes out into rows.
func ExperimentDynamic(cfg SuiteConfig) (*Table, error) {
	dc := DefaultDynamicConfig(cfg)
	spec := sweep.Spec{
		ID:    "E12",
		Title: "Dynamic arrivals with churn and re-randomized topology (future work, Section 4)",
		Columns: []string{"batch", "arriving_balls", "pre_burned_servers", "rounds",
			"completed", "max_load", "cap", "mean_load", "unassigned"},
	}
	spec.Points = append(spec.Points, sweep.Point{
		ID:     "scenario",
		Trials: 1,
		// The scenario's historical seed is the bare experiment key (no
		// trial index appended), and its per-batch graphs are built by the
		// scenario itself — hence the seed override and the FamNone
		// (zero-value) topology.
		Seed: func(cfg SuiteConfig, _ int) uint64 { return cfg.TrialSeed(12) },
		Run: func(cfg SuiteConfig, _ bipartite.Topology, _ int, seed uint64) (any, error) {
			return RunDynamicScenario(dc, seed)
		},
		Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
			outcomes := out.Custom[0].([]DynamicBatchOutcome)
			capacity := core.Params{D: dc.D, C: dc.C}.Capacity()
			var rounds []float64
			for _, o := range outcomes {
				t.AddRowf(o.Batch, o.ArrivingBalls, o.BurnedAtStart, o.Rounds, fmtBool(o.Completed),
					o.MaxLoad, capacity, o.MeanLoad, o.UnassignedBalls)
				rounds = append(rounds, float64(o.Rounds))
			}
			if s, err := stats.Summarize(rounds); err == nil {
				t.AddNote("rounds per batch: mean %.1f, max %.0f (completion bound for the batch size: %d)",
					s.Mean, s.Max, core.CompletionBound(dc.BatchClients))
			}
			t.AddNote("scenario: %d servers, batches of %d clients (d=%d), %d%% load churn between batches, topology re-randomized per batch",
				dc.NumServers, dc.BatchClients, dc.D, int(dc.ChurnFraction*100))
			t.AddNote("claim (conjecture): SAER sustains a metastable regime under dynamics (Section 4)")
			return nil
		},
	})
	return sweep.Run(cfg, spec)
}
