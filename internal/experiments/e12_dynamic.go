package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// DynamicConfig parameterizes the dynamic/online scenario of experiment
// E12 (the paper's future-work section): client batches arrive over time,
// each batch sees a re-randomized admissibility topology over the same
// server set, and a matching amount of previously placed load expires
// between batches, so the system reaches a metastable regime instead of
// filling up.
type DynamicConfig struct {
	NumServers   int
	BatchClients int
	Batches      int
	D            int
	C            float64
	Delta        int
	// ChurnFraction is the fraction of each server's load that expires
	// between batches (0 disables churn; 1 empties the servers).
	ChurnFraction float64
	// Rebuild selects the legacy full-rebuild path: a freshly
	// materialized graph per batch (O(n·Δ) per step), reproducing the
	// historical E12 numbers exactly. The default runs on the
	// incremental churn subsystem: one churn.Topology whose clients are
	// all rewired per batch in O(n) (implicit backend), driven through
	// the reused sharded Runner via PatchTopology.
	Rebuild bool
	// TrackRounds records each batch's per-round protocol series into
	// the outcomes (for the -json round records); it changes no outcome.
	TrackRounds bool
	// Workers and Shards configure the per-batch protocol runs (0 = the
	// core defaults). Like everywhere else they are pure performance
	// knobs: outcomes are bit-for-bit independent of them
	// (TestE12IncrementalPathEquivalence pins it for this scenario).
	Workers int
	Shards  int
}

// DefaultDynamicConfig scales the scenario to the suite configuration.
func DefaultDynamicConfig(cfg SuiteConfig) DynamicConfig {
	n := 1 << 12
	batches := 8
	if cfg.Quick {
		n = 1 << 10
		batches = 5
	}
	return DynamicConfig{
		NumServers: n,
		// One batch brings d new balls per server on average; with 50%
		// churn the system settles around a mean load of 2d — half the
		// capacity — so the metastable regime is actually exercised.
		BatchClients:  n,
		Batches:       batches,
		D:             2,
		C:             4,
		Delta:         regularDelta(n),
		ChurnFraction: 0.5,
	}
}

// DynamicBatchOutcome records one batch of the dynamic scenario.
type DynamicBatchOutcome struct {
	Batch           int
	ArrivingBalls   int
	Rounds          int
	Completed       bool
	MaxLoad         int
	MeanLoad        float64
	BurnedAtStart   int
	UnassignedBalls int
	// PerRound is the batch's per-round protocol series (nil unless
	// DynamicConfig.TrackRounds).
	PerRound []core.RoundStats
}

// RunDynamicScenario executes the online arrival process and returns the
// per-batch outcomes. Server loads persist across batches (minus churn),
// which is exactly the metastable regime the paper conjectures SAER can
// sustain. The incremental path (default) and the legacy rebuild path
// model the same process but draw different graphs, so their numbers are
// comparable, not identical.
func RunDynamicScenario(dc DynamicConfig, seed uint64) ([]DynamicBatchOutcome, error) {
	if dc.NumServers <= 0 || dc.BatchClients <= 0 || dc.Batches <= 0 {
		return nil, fmt.Errorf("experiments: invalid dynamic config %+v", dc)
	}
	if dc.Rebuild {
		return runDynamicRebuild(dc, seed)
	}
	return runDynamicIncremental(dc, seed)
}

// runDynamicIncremental is the churn-subsystem path: one implicit
// trust-subset topology whose clients all rewire between batches
// (ChurnFraction of the *load* expires; the topology re-randomizes
// fully, as in the legacy scenario — but in O(n) marks instead of an
// O(n·Δ) rebuild), one Runner reused across every batch.
func runDynamicIncremental(dc DynamicConfig, seed uint64) ([]DynamicBatchOutcome, error) {
	delta := dc.Delta
	if delta > dc.NumServers {
		delta = dc.NumServers
	}
	src := rng.New(seed)
	base, err := gen.TrustSubsetImplicit(dc.BatchClients, dc.NumServers, delta, src.Uint64())
	if err != nil {
		return nil, err
	}
	topo, err := churn.New(churn.Config{
		Base:    base,
		Sampler: churn.TrustSampler(dc.NumServers, delta),
		Seed:    src.Uint64(),
		Backend: churn.BackendImplicit,
	})
	if err != nil {
		return nil, err
	}
	workers := dc.Workers
	if workers == 0 {
		workers = 1
	}
	proto := core.NewConfig(core.SAER, dc.D, dc.C, 0)
	proto.Workers = workers
	proto.Shards = dc.Shards
	sch, err := churn.NewScheduler(topo, churn.SchedulerConfig{
		Protocol:    proto,
		LoadExpiry:  dc.ChurnFraction,
		TrackRounds: dc.TrackRounds,
	}, src.Uint64())
	if err != nil {
		return nil, err
	}
	all := make([]int32, dc.BatchClients)
	for v := range all {
		all[v] = int32(v)
	}
	outcomes := make([]DynamicBatchOutcome, 0, dc.Batches)
	for batch := 0; batch < dc.Batches; batch++ {
		out, err := sch.Step(churn.EpochEvent{Dt: 1, Rewire: all, RedemandAll: true})
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, DynamicBatchOutcome{
			Batch:           out.Epoch,
			ArrivingBalls:   out.DemandBalls,
			Rounds:          out.Rounds,
			Completed:       out.Completed,
			MaxLoad:         out.MaxLoad,
			MeanLoad:        out.MeanLoad,
			BurnedAtStart:   out.BurnedAtStart,
			UnassignedBalls: out.UnassignedBalls,
			PerRound:        out.PerRound,
		})
	}
	return outcomes, nil
}

// runDynamicRebuild is the legacy path: a freshly built, materialized
// graph per batch, kept because its numbers are the historical E12
// table (and as the baseline the incremental-vs-rebuild epoch-cost
// benchmark measures against).
func runDynamicRebuild(dc DynamicConfig, seed uint64) ([]DynamicBatchOutcome, error) {
	src := rng.New(seed)
	loads := make([]int, dc.NumServers)
	capacity := core.Params{D: dc.D, C: dc.C}.Capacity()
	outcomes := make([]DynamicBatchOutcome, 0, dc.Batches)
	// One Runner serves every batch: the batch shape (clients × servers)
	// is constant, so the per-batch topology is swapped in and the run
	// state reset via Reseed instead of reallocating ~O(n) state per
	// batch. Options.InitialLoads aliases the loads slice, so each Reseed
	// picks up the churned carry-over loads in place.
	var runner *core.Runner
	for batch := 0; batch < dc.Batches; batch++ {
		// Churn: a fraction of every server's load expires.
		if dc.ChurnFraction > 0 {
			for u := range loads {
				expired := int(float64(loads[u]) * dc.ChurnFraction)
				loads[u] -= expired
			}
		}
		// Fresh topology for the arriving batch.
		delta := dc.Delta
		if delta > dc.NumServers {
			delta = dc.NumServers
		}
		g, err := gen.BiRegular(dc.BatchClients, delta, dc.NumServers, dc.BatchClients*delta/dc.NumServers, src.Split())
		if err != nil {
			// Fall back to a trust-subset graph when the biregular degree
			// sequence is infeasible for this batch size.
			g, err = gen.TrustSubset(dc.BatchClients, dc.NumServers, delta, src.Split())
			if err != nil {
				return nil, err
			}
		}
		burnedAtStart := 0
		for _, l := range loads {
			if l >= capacity {
				burnedAtStart++
			}
		}
		batchSeed := src.Uint64()
		if runner == nil {
			runner, err = core.NewRunner(g, core.SAER, core.Params{D: dc.D, C: dc.C, Seed: batchSeed, Workers: 1},
				core.Options{InitialLoads: loads, TrackLoads: true, TrackRounds: dc.TrackRounds})
			if err != nil {
				return nil, err
			}
		} else {
			if err := runner.SwapTopology(g); err != nil {
				return nil, err
			}
			runner.Reseed(batchSeed)
		}
		res := runner.Run()
		copy(loads, res.Loads)
		out := DynamicBatchOutcome{
			Batch:           batch + 1,
			ArrivingBalls:   dc.BatchClients * dc.D,
			Rounds:          res.Rounds,
			Completed:       res.Completed,
			MaxLoad:         res.MaxLoad,
			MeanLoad:        res.MeanLoad,
			BurnedAtStart:   burnedAtStart,
			UnassignedBalls: res.UnassignedBalls,
		}
		if dc.TrackRounds {
			out.PerRound = append([]core.RoundStats(nil), res.PerRound...)
		}
		outcomes = append(outcomes, out)
	}
	return outcomes, nil
}

// dynamicPoint declares one scenario point of E12 and renders its
// per-batch outcomes as rows tagged with the path, streaming the
// per-round series into the record stream.
func dynamicPoint(dc DynamicConfig, path string, seedOf func(cfg SuiteConfig) uint64) sweep.Point {
	return sweep.Point{
		ID:     path,
		Trials: 1,
		// The scenario's seed is a bare suite-derived key (no trial index
		// appended — the rebuild path keeps its historical seed so its
		// numbers reproduce the legacy table byte for byte), and its
		// graphs are built by the scenario itself — hence the seed
		// override and the FamNone (zero-value) topology.
		Seed: func(cfg SuiteConfig, _ int) uint64 { return seedOf(cfg) },
		Run: func(cfg SuiteConfig, _ bipartite.Topology, _ int, seed uint64) (any, error) {
			run := dc
			run.TrackRounds = run.TrackRounds || cfg.Records != nil
			return RunDynamicScenario(run, seed)
		},
		Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
			outcomes := out.Custom[0].([]DynamicBatchOutcome)
			capacity := core.Params{D: dc.D, C: dc.C}.Capacity()
			var rounds []float64
			for _, o := range outcomes {
				t.AddRowf(path, o.Batch, o.ArrivingBalls, o.BurnedAtStart, o.Rounds, fmtBool(o.Completed),
					o.MaxLoad, capacity, o.MeanLoad, o.UnassignedBalls)
				rounds = append(rounds, float64(o.Rounds))
				cfg.Records.RoundSeries("E12", path, 0, o.Batch, o.PerRound)
			}
			if s, err := stats.Summarize(rounds); err == nil {
				t.AddNote("%s: rounds per batch: mean %.1f, max %.0f (completion bound for the batch size: %d)",
					path, s.Mean, s.Max, core.CompletionBound(dc.BatchClients))
			}
			return nil
		},
	}
}

// ExperimentDynamic (E12) exercises the paper's future-work conjecture
// that SAER handles online arrivals and topology changes gracefully,
// reaching a metastable regime where every batch settles within a
// logarithmic number of rounds and the load cap keeps holding. The
// scenario runs twice: on the incremental churn subsystem (the default
// path — per-batch topology updates cost O(changed), and the same
// Runner and graph serve the whole scenario) and on the legacy
// full-rebuild path (a fresh materialized graph per batch, preserving
// the historical numbers). Batches are inherently sequential (each
// carries the previous batch's churned loads), so each point runs a
// single trial whose rendering fans the per-batch outcomes out into
// rows.
func ExperimentDynamic(cfg SuiteConfig) (*Table, error) {
	dc := DefaultDynamicConfig(cfg)
	rebuild := dc
	rebuild.Rebuild = true
	spec := sweep.Spec{
		ID:    "E12",
		Title: "Dynamic arrivals with churn and re-randomized topology (future work, Section 4)",
		Columns: []string{"path", "batch", "arriving_balls", "pre_burned_servers", "rounds",
			"completed", "max_load", "cap", "mean_load", "unassigned"},
		Points: []sweep.Point{
			dynamicPoint(dc, "incremental", func(cfg SuiteConfig) uint64 { return cfg.TrialSeed(12, 1) }),
			dynamicPoint(rebuild, "rebuild", func(cfg SuiteConfig) uint64 { return cfg.TrialSeed(12) }),
		},
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("scenario: %d servers, batches of %d clients (d=%d), %d%% load churn between batches, topology re-randomized per batch",
			dc.NumServers, dc.BatchClients, dc.D, int(dc.ChurnFraction*100))
		t.AddNote("incremental = churn.Topology rewired in O(n) per batch on one reused Runner (internal/churn, trust-subset rows); rebuild = legacy fresh materialized graph per batch (biregular family, historical numbers)")
		t.AddNote("the two paths draw from different graph families (trust-subset vs biregular), so their rows are comparable in shape, not identical draws")
		t.AddNote("claim (conjecture): SAER sustains a metastable regime under dynamics (Section 4)")
		return nil
	}
	return sweep.Run(cfg, spec)
}
