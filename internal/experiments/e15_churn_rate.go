package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/sweep"
)

// churnScenarioSetup builds the standard scenario substrate shared by
// the dynamic experiments E15–E17: an implicit trust-subset base on n
// clients and m servers with per-client degree delta, wrapped in a churn
// Topology (implicit backend) and driven by a Scheduler. The returned
// source is the scenario's event stream (arrival draws, churn subsets,
// wave picks); graph, topology and scheduler seeds are split off the
// same trial seed first, so the whole scenario is a pure function of it.
// singleWorkerConfig is the protocol configuration the scripted churn
// scenarios run with: single-threaded, so the historical per-epoch
// seeds and outcomes stay pinned.
func singleWorkerConfig(d int, c float64) core.Config {
	cfg := core.NewConfig(core.SAER, d, c, 0)
	cfg.Workers = 1
	return cfg
}

func churnScenarioSetup(n, m, delta int, scfg churn.SchedulerConfig, seed uint64) (*churn.Topology, *churn.Scheduler, *rng.Source, error) {
	src := rng.New(seed)
	base, err := gen.TrustSubsetImplicit(n, m, delta, src.Uint64())
	if err != nil {
		return nil, nil, nil, err
	}
	topo, err := churn.New(churn.Config{
		Base:    base,
		Sampler: churn.TrustSampler(m, delta),
		Seed:    src.Uint64(),
		Backend: churn.BackendImplicit,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	sch, err := churn.NewScheduler(topo, scfg, src.Uint64())
	if err != nil {
		return nil, nil, nil, err
	}
	return topo, sch, src, nil
}

// epochAggregate summarizes a set of scenario trials (each a slice of
// epoch outcomes) for the E15–E17 tables.
type epochAggregate struct {
	Trials          int
	Epochs          int
	RoundsMean      float64
	RoundsMax       int
	MaxLoadMax      int
	MeanLoadLast    float64 // mean over trials of the last epoch's mean load
	FailedPeak      int
	ReinjectedTotal int
	ArrivedTotal    int
	PresentMean     float64
	UnassignedTotal int
}

func aggregateEpochs(trials [][]churn.EpochOutcome) epochAggregate {
	agg := epochAggregate{Trials: len(trials)}
	roundsSum, roundsCnt := 0, 0
	presentSum, presentCnt := 0, 0
	for _, outs := range trials {
		if len(outs) > agg.Epochs {
			agg.Epochs = len(outs)
		}
		for _, o := range outs {
			roundsSum += o.Rounds
			roundsCnt++
			if o.Rounds > agg.RoundsMax {
				agg.RoundsMax = o.Rounds
			}
			if o.MaxLoad > agg.MaxLoadMax {
				agg.MaxLoadMax = o.MaxLoad
			}
			if o.FailedServers > agg.FailedPeak {
				agg.FailedPeak = o.FailedServers
			}
			agg.ReinjectedTotal += o.ReinjectedBalls
			agg.ArrivedTotal += o.Arrived
			presentSum += o.PresentClients
			presentCnt++
			agg.UnassignedTotal += o.UnassignedBalls
		}
		if len(outs) > 0 {
			agg.MeanLoadLast += outs[len(outs)-1].MeanLoad
		}
	}
	if roundsCnt > 0 {
		agg.RoundsMean = float64(roundsSum) / float64(roundsCnt)
	}
	if presentCnt > 0 {
		agg.PresentMean = float64(presentSum) / float64(presentCnt)
	}
	if len(trials) > 0 {
		agg.MeanLoadLast /= float64(len(trials))
	}
	return agg
}

// streamEpochRounds streams every trial's per-epoch round series into
// the record stream (no-op without a recorder).
func streamEpochRounds(cfg SuiteConfig, expID, point string, out *sweep.Outcome) {
	if cfg.Records == nil {
		return
	}
	for trial, c := range out.Custom {
		for _, o := range c.([]churn.EpochOutcome) {
			cfg.Records.RoundSeries(expID, point, trial, o.Epoch, o.PerRound)
		}
	}
}

// e15Fractions is the rewiring-fraction sweep of E15.
var e15Fractions = []float64{0, 0.02, 0.1, 0.25, 0.5, 1}

// runChurnRateTrial executes one E15 scenario: a stable client
// population re-places its d balls every epoch, half of the carried load
// expires between epochs, and a fraction f of the clients rewires its
// admissible edges each epoch.
func runChurnRateTrial(n, delta, epochs int, f float64, d int, c float64, track bool, seed uint64) ([]churn.EpochOutcome, error) {
	topo, sch, src, err := churnScenarioSetup(n, n, delta, churn.SchedulerConfig{
		Protocol:   singleWorkerConfig(d, c),
		LoadExpiry: 0.5, TrackRounds: track,
	}, seed)
	if err != nil {
		return nil, err
	}
	k := int(f*float64(n) + 0.5)
	outs := make([]churn.EpochOutcome, 0, epochs)
	for e := 0; e < epochs; e++ {
		ev := churn.EpochEvent{Dt: 1, RedemandAll: true}
		if k > 0 {
			ev.Rewire = topo.SamplePresent(src, k)
		}
		out, err := sch.Step(ev)
		if err != nil {
			return nil, err
		}
		outs = append(outs, *out)
	}
	return outs, nil
}

// ExperimentChurnRate (E15) sweeps the edge-churn rate: what fraction of
// the admissibility graph may rewire per epoch before the metastable
// regime degrades? The paper's future-work conjecture only covers the
// extremes (static graphs, and E12's full re-randomization); the sweep
// interpolates between them on the incremental churn subsystem, where an
// epoch's topology cost is proportional to the churned fraction instead
// of n·Δ.
func ExperimentChurnRate(cfg SuiteConfig) (*Table, error) {
	n := 1 << 12
	epochs := 16
	if cfg.Quick {
		n = 1 << 10
		epochs = 6
	}
	delta := regularDelta(n)
	d, c := 2, 4.0
	capacity := core.Params{D: d, C: c}.Capacity()
	spec := sweep.Spec{
		ID:    "E15",
		Title: "Edge-churn-rate sweep: metastable load vs per-epoch rewiring fraction (churn subsystem)",
		Columns: []string{"rewire_frac", "trials", "epochs", "rounds_mean", "rounds_max",
			"max_load_max", "cap", "mean_load_last", "unassigned_total"},
	}
	for _, f := range e15Fractions {
		f := f
		pointID := fmt.Sprintf("f=%g", f)
		spec.Points = append(spec.Points, sweep.Point{
			ID:      pointID,
			SeedKey: []uint64{15, uint64(f * 1000)},
			Run: func(cfg SuiteConfig, _ bipartite.Topology, _ int, seed uint64) (any, error) {
				return runChurnRateTrial(n, delta, epochs, f, d, c, cfg.Records != nil, seed)
			},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				trials := make([][]churn.EpochOutcome, len(out.Custom))
				for i, cu := range out.Custom {
					trials[i] = cu.([]churn.EpochOutcome)
				}
				agg := aggregateEpochs(trials)
				t.AddRowf(f, agg.Trials, agg.Epochs, agg.RoundsMean, agg.RoundsMax,
					agg.MaxLoadMax, capacity, agg.MeanLoadLast, agg.UnassignedTotal)
				streamEpochRounds(cfg, "E15", pointID, out)
				return nil
			},
		})
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("scenario: %d clients/servers (Δ=%d, d=%d, c=%g), %d epochs, 50%% load expiry per epoch; fraction f of clients rewires its edges each epoch",
			n, delta, d, c, epochs)
		t.AddNote("f=0 is the static topology, f=1 reproduces E12's full re-randomization incrementally; epoch topology cost is O(f·n) marks on the implicit churn backend")
		t.AddNote("claim (extension): the c·d load cap and logarithmic settling hold at every churn rate — metastability is insensitive to edge churn")
		return nil
	}
	return sweep.Run(cfg, spec)
}
