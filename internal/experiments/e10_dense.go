package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// ExperimentDenseRegime (E10) is the regression against the dense setting
// of Becchetti et al.: when every client sees Ω(n) servers, the fraction
// of non-burned servers in any neighborhood stays at least 1/2
// *deterministically* (the counting argument the dense analysis relies
// on), so the completion behaviour should be at least as good as on sparse
// graphs. The table sweeps the density from the paper's sparse regime up
// to the complete bipartite graph at a fixed n.
func ExperimentDenseRegime(cfg SuiteConfig) (*Table, error) {
	table := NewTable("E10", "From sparse (log² n) to dense (complete) graphs at fixed n (SAER vs RAES)",
		"density", "delta", "protocol", "trials", "success", "rounds_mean", "rounds_max", "max_S_t", "burned_mean")

	n := 1 << 12
	if cfg.Quick {
		n = 512
	}
	d := 2
	densities := []struct {
		name  string
		delta int
	}{
		{"log²n", regularDelta(n)},
		{"n/8", n / 8},
		{"n/2", n / 2},
		{"complete", n},
	}
	for _, dens := range densities {
		var g *bipartite.Graph
		var err error
		if dens.delta >= n {
			g, err = gen.Complete(n, n)
		} else {
			g, err = gen.Regular(n, dens.delta, rng.New(cfg.trialSeed(10, uint64(dens.delta))))
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: dense-regime graph %s: %w", dens.name, err)
		}
		for _, variant := range []core.Variant{core.SAER, core.RAES} {
			results, err := runPooledTrials(cfg, cfg.trials(), g, variant,
				core.Params{D: d, C: 4}, core.Options{TrackNeighborhoods: true},
				func(trial int) uint64 { return cfg.trialSeed(10, uint64(dens.delta), uint64(variant), uint64(trial)) })
			if err != nil {
				return nil, err
			}
			agg := metrics.Aggregate(results)
			maxSt := 0.0
			for _, r := range results {
				for _, round := range r.PerRound {
					if round.MaxNeighborhoodBurnedFrac > maxSt {
						maxSt = round.MaxNeighborhoodBurnedFrac
					}
				}
			}
			table.AddRowf(dens.name, dens.delta, variant.String(), agg.Trials, fmtRate(agg.SuccessRate),
				agg.Rounds.Mean, agg.Rounds.Max, maxSt, agg.Burned.Mean)
		}
	}
	table.AddNote("claim context: on ∆ = Ω(n) graphs the non-burned fraction of every neighborhood stays ≥ 1/2 deterministically (Becchetti et al.); the sparse regime is the paper's new contribution")
	table.AddNote("expected shape: completion stays logarithmic across all densities; S_t decreases as the graph gets denser")
	return table, nil
}
