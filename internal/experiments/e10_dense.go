package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// ExperimentDenseRegime (E10) is the regression against the dense setting
// of Becchetti et al.: when every client sees Ω(n) servers, the fraction
// of non-burned servers in any neighborhood stays at least 1/2
// *deterministically* (the counting argument the dense analysis relies
// on), so the completion behaviour should be at least as good as on sparse
// graphs. The table sweeps the density from the paper's sparse regime up
// to the complete bipartite graph at a fixed n.
func ExperimentDenseRegime(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E10",
		Title: "From sparse (log² n) to dense (complete) graphs at fixed n (SAER vs RAES)",
		Columns: []string{"density", "delta", "protocol", "trials", "success",
			"rounds_mean", "rounds_max", "max_S_t", "burned_mean"},
	}

	n := 1 << 12
	if cfg.Quick {
		n = 512
	}
	d := 2
	densities := []struct {
		name  string
		delta int
		// pinCSR forces the materialized representation for the dense
		// Ω(n)-degree points: under `-topology implicit` they would
		// regenerate Δ = n/8 … n/2 Feistel rows at ~8× a CSR read per
		// round, and at E10's fixed n the CSR adjacency is small anyway.
		pinCSR bool
	}{
		{"log²n", regularDelta(n), false},
		{"n/8", n / 8, true},
		{"n/2", n / 2, true},
		{"complete", n, false},
	}
	for _, dens := range densities {
		dens := dens
		topo := regularTopo(n, dens.delta, 10, uint64(dens.delta))
		topo.ForceCSR = dens.pinCSR
		if dens.delta >= n {
			topo = sweep.Topo{Family: sweep.FamComplete, N: n, SeedKey: []uint64{10, uint64(dens.delta)}}
		}
		for _, variant := range []core.Variant{core.SAER, core.RAES} {
			variant := variant
			spec.Points = append(spec.Points, sweep.Point{
				ID:       fmt.Sprintf("%s/%s", dens.name, variant),
				Topology: topo,
				Variant:  variant,
				Params:   core.Params{D: d, C: 4},
				Options:  core.Options{TrackNeighborhoods: true},
				SeedKey:  []uint64{10, uint64(dens.delta), uint64(variant)},
				Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
					agg := metrics.Aggregate(out.Results)
					maxSt := 0.0
					for _, r := range out.Results {
						for _, round := range r.PerRound {
							if round.MaxNeighborhoodBurnedFrac > maxSt {
								maxSt = round.MaxNeighborhoodBurnedFrac
							}
						}
					}
					t.AddRowf(dens.name, dens.delta, variant.String(), agg.Trials, fmtRate(agg.SuccessRate),
						agg.Rounds.Mean, agg.Rounds.Max, maxSt, agg.Burned.Mean)
					return nil
				},
			})
		}
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("claim context: on ∆ = Ω(n) graphs the non-burned fraction of every neighborhood stays ≥ 1/2 deterministically (Becchetti et al.); the sparse regime is the paper's new contribution")
		t.AddNote("expected shape: completion stays logarithmic across all densities; S_t decreases as the graph gets denser")
		return nil
	}
	return sweep.Run(cfg, spec)
}
