package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// ExperimentThresholdSweep (E9) studies the role of the threshold constant
// c, the knob the paper's analysis does not optimize: it sweeps c at a
// fixed (n, ∆, d) and records the completion rate, completion time, number
// of burned servers and worst S_t. The expected shape is a sharp
// transition: for c close to 1 the protocol starves (servers burn faster
// than balls settle), and already for modest constants (far below the
// analysis's max(32, 288/(η·d))) it completes within the logarithmic
// bound. All c points share one topology, built in the representation the
// engine selects (η is the exact ∆/log₂² n of the regular family, so no
// materialized degree scan is needed).
func ExperimentThresholdSweep(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E9",
		Title: "Threshold-constant sweep (SAER, regular graph, d = 2)",
		Columns: []string{"c", "cap", "trials", "success", "rounds_mean", "rounds_max",
			"burned_mean", "max_S_t", "unassigned_mean"},
	}

	n := 1 << 13
	if cfg.Quick {
		n = 1 << 10
	}
	d := 2
	delta := regularDelta(n)
	eta := regularEta(n, delta)

	cs := []float64{1, 1.25, 1.5, 2, 3, 4, 8, 16, 32, core.MinCRegular(eta, d)}
	for _, c := range cs {
		c := c
		params := core.Params{D: d, C: c}
		spec.Points = append(spec.Points, sweep.Point{
			ID:       fmt.Sprintf("c=%g", c),
			Topology: regularTopo(n, delta, 9, uint64(n)),
			Variant:  core.SAER,
			Params:   params,
			Options:  core.Options{TrackNeighborhoods: true},
			SeedKey:  []uint64{9, uint64(c * 1000)},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				agg := metrics.Aggregate(out.Results)
				maxSt := 0.0
				unassigned := 0.0
				for _, r := range out.Results {
					for _, round := range r.PerRound {
						if round.MaxNeighborhoodBurnedFrac > maxSt {
							maxSt = round.MaxNeighborhoodBurnedFrac
						}
					}
					unassigned += float64(r.UnassignedBalls)
				}
				unassigned /= float64(len(out.Results))
				t.AddRowf(c, params.Capacity(), agg.Trials, fmtRate(agg.SuccessRate),
					agg.Rounds.Mean, agg.Rounds.Max, agg.Burned.Mean, maxSt, unassigned)
				return nil
			},
		})
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("n=%d, ∆=%d (η=%.2f); the paper's prescribed c is the last row: max(32, 288/(η·d)) = %.1f", n, delta, eta, core.MinCRegular(eta, d))
		t.AddNote("expected shape: failure/starvation for c ≈ 1, fast logarithmic completion already for small constants c ≥ 2")
		return nil
	}
	return sweep.Run(cfg, spec)
}
