package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
)

// ExperimentThresholdSweep (E9) studies the role of the threshold constant
// c, the knob the paper's analysis does not optimize: it sweeps c at a
// fixed (n, ∆, d) and records the completion rate, completion time, number
// of burned servers and worst S_t. The expected shape is a sharp
// transition: for c close to 1 the protocol starves (servers burn faster
// than balls settle), and already for modest constants (far below the
// analysis's max(32, 288/(η·d))) it completes within the logarithmic
// bound.
func ExperimentThresholdSweep(cfg SuiteConfig) (*Table, error) {
	table := NewTable("E9", "Threshold-constant sweep (SAER, regular graph, d = 2)",
		"c", "cap", "trials", "success", "rounds_mean", "rounds_max", "burned_mean", "max_S_t", "unassigned_mean")

	n := 1 << 13
	if cfg.Quick {
		n = 1 << 10
	}
	d := 2
	delta := regularDelta(n)
	g, err := buildRegular(n, delta, cfg.trialSeed(9, uint64(n)))
	if err != nil {
		return nil, err
	}
	st := g.Stats()

	cs := []float64{1, 1.25, 1.5, 2, 3, 4, 8, 16, 32, core.MinCRegular(st.Eta, d)}
	for _, c := range cs {
		params := core.Params{D: d, C: c}
		results, err := runPooledTrials(cfg, cfg.trials(), g, core.SAER, params,
			core.Options{TrackNeighborhoods: true},
			func(trial int) uint64 { return cfg.trialSeed(9, uint64(c*1000), uint64(trial)) })
		if err != nil {
			return nil, err
		}
		agg := metrics.Aggregate(results)
		maxSt := 0.0
		unassigned := 0.0
		for _, r := range results {
			for _, round := range r.PerRound {
				if round.MaxNeighborhoodBurnedFrac > maxSt {
					maxSt = round.MaxNeighborhoodBurnedFrac
				}
			}
			unassigned += float64(r.UnassignedBalls)
		}
		unassigned /= float64(len(results))
		table.AddRowf(c, params.Capacity(), agg.Trials, fmtRate(agg.SuccessRate),
			agg.Rounds.Mean, agg.Rounds.Max, agg.Burned.Mean, maxSt, unassigned)
	}
	table.AddNote("n=%d, ∆=%d (η=%.2f); the paper's prescribed c is the last row: max(32, 288/(η·d)) = %.1f", n, delta, st.Eta, core.MinCRegular(st.Eta, d))
	table.AddNote("expected shape: failure/starvation for c ≈ 1, fast logarithmic completion already for small constants c ≥ 2")
	return table, nil
}
