package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// ExperimentMaxLoad (E5) verifies the protocol's deterministic load
// invariant across graph families and parameter choices: a server never
// accepts more than ⌊c·d⌋ balls, whatever happens. The table lists, per
// (family, d, c), the maximum load ever observed over all trials next to
// the cap.
func ExperimentMaxLoad(cfg SuiteConfig) (*Table, error) {
	table := NewTable("E5", "Maximum server load vs the c·d cap (protocol invariant)",
		"graph", "n", "d", "c", "cap", "trials", "max_load_observed", "within_cap", "success")

	n := cfg.sizes()[len(cfg.sizes())-1] / 2
	if cfg.Quick {
		n = 512
	}
	// The families with a regenerative sampler run at a lifted size on the
	// implicit topology in full mode; trust-subset has no implicit twin
	// (its per-client sample is cheap to materialize but the experiment
	// keeps it at the classic size), which is why n is a per-row column.
	nLarge := n
	if !cfg.Quick && cfg.useImplicit(1<<18) {
		nLarge = 1 << 18
	}
	families := []struct {
		name  string
		n     int
		build func(seed uint64) (bipartite.Topology, error)
	}{
		{"regular", nLarge, func(seed uint64) (bipartite.Topology, error) {
			if cfg.useImplicit(nLarge) {
				return gen.RegularImplicit(nLarge, regularDelta(nLarge), seed)
			}
			return gen.Regular(nLarge, regularDelta(nLarge), rng.New(seed))
		}},
		{"trust-subset", n, func(seed uint64) (bipartite.Topology, error) {
			return gen.TrustSubset(n, n, regularDelta(n), rng.New(seed))
		}},
		{"erdos-renyi", nLarge, func(seed uint64) (bipartite.Topology, error) {
			p := float64(regularDelta(nLarge)) / float64(nLarge)
			if cfg.useImplicit(nLarge) {
				return gen.ErdosRenyiImplicit(nLarge, nLarge, p, true, seed)
			}
			return gen.ErdosRenyi(nLarge, nLarge, p, true, rng.New(seed))
		}},
		{"almost-regular", n, func(seed uint64) (bipartite.Topology, error) {
			// The heavy clients' O(√n)-degree rows make the implicit
			// regeneration quadratic in their degree per round, so this
			// family stays at the classic size.
			return gen.AlmostRegular(gen.DefaultAlmostRegularConfig(n), rng.New(seed))
		}},
	}

	paramGrid := []struct {
		d int
		c float64
	}{
		{1, 4}, {2, 4}, {4, 2}, {2, 1.5},
	}

	for famIdx, fam := range families {
		g, err := fam.build(cfg.trialSeed(5, uint64(famIdx)))
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s graph: %w", fam.name, err)
		}
		for _, pc := range paramGrid {
			params := core.Params{D: pc.d, C: pc.c}
			results, err := runPooledTrials(cfg, cfg.trials(), g, core.SAER, params, core.Options{},
				func(trial int) uint64 { return cfg.trialSeed(5, uint64(famIdx), uint64(pc.d), uint64(trial)) })
			if err != nil {
				return nil, err
			}
			agg := metrics.Aggregate(results)
			capacity := params.Capacity()
			within := agg.MaxLoad.Max <= float64(capacity)
			table.AddRowf(fam.name, fam.n, pc.d, pc.c, capacity, agg.Trials, agg.MaxLoad.Max, fmtBool(within), fmtRate(agg.SuccessRate))
		}
	}
	table.AddNote("claim: if the protocol terminates, every server load is at most c·d (remark (i), Section 2.2); the cap holds even for runs that do not terminate")
	return table, nil
}
