package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// ExperimentMaxLoad (E5) verifies the protocol's deterministic load
// invariant across graph families and parameter choices: a server never
// accepts more than ⌊c·d⌋ balls, whatever happens. The table lists, per
// (family, d, c), the maximum load ever observed over all trials next to
// the cap.
func ExperimentMaxLoad(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E5",
		Title: "Maximum server load vs the c·d cap (protocol invariant)",
		Columns: []string{"graph", "n", "d", "c", "cap", "trials",
			"max_load_observed", "within_cap", "success"},
	}

	n := sizes(cfg)[len(sizes(cfg))-1] / 2
	if cfg.Quick {
		n = 512
	}
	// Every family has a regenerative sampler now — the Feistel partial
	// shuffle gave trust-subset and the heavy almost-regular clients O(k)
	// row regeneration — so in full mode all four run at the lifted size
	// on the implicit topology (forcing "csr" keeps the classic size,
	// which the table's n column records).
	nLarge := n
	if !cfg.Quick && cfg.UseImplicit(1<<18) {
		nLarge = 1 << 18
	}
	families := []struct {
		name string
		topo sweep.Topo
	}{
		{"regular", regularTopo(nLarge, regularDelta(nLarge), 5, 0)},
		{"trust-subset", sweep.Topo{
			Family: sweep.FamTrustSubset, N: nLarge, Delta: regularDelta(nLarge), SeedKey: []uint64{5, 1}}},
		{"erdos-renyi", sweep.Topo{
			Family: sweep.FamErdosRenyi, N: nLarge,
			P: float64(regularDelta(nLarge)) / float64(nLarge), SeedKey: []uint64{5, 2}}},
		{"almost-regular", sweep.Topo{
			Family: sweep.FamAlmostRegular, N: nLarge,
			Almost: gen.DefaultAlmostRegularConfig(nLarge), SeedKey: []uint64{5, 3}}},
	}

	paramGrid := []struct {
		d int
		c float64
	}{
		{1, 4}, {2, 4}, {4, 2}, {2, 1.5},
	}

	for _, fam := range families {
		fam := fam
		for _, pc := range paramGrid {
			pc := pc
			params := core.Params{D: pc.d, C: pc.c}
			spec.Points = append(spec.Points, sweep.Point{
				ID:       fmt.Sprintf("%s/d=%d/c=%g", fam.name, pc.d, pc.c),
				Topology: fam.topo,
				Variant:  core.SAER,
				Params:   params,
				SeedKey:  []uint64{5, fam.topo.SeedKey[1], uint64(pc.d)},
				Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
					agg := metrics.Aggregate(out.Results)
					capacity := params.Capacity()
					within := agg.MaxLoad.Max <= float64(capacity)
					t.AddRowf(fam.name, nLarge, pc.d, pc.c, capacity, agg.Trials,
						agg.MaxLoad.Max, fmtBool(within), fmtRate(agg.SuccessRate))
					return nil
				},
			})
		}
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("claim: if the protocol terminates, every server load is at most c·d (remark (i), Section 2.2); the cap holds even for runs that do not terminate")
		return nil
	}
	return sweep.Run(cfg, spec)
}
