package experiments

import (
	"math"
	"testing"

	"repro/internal/rng"

	"repro/internal/gen"
)

func TestSuiteConfigDefaults(t *testing.T) {
	def := DefaultSuiteConfig()
	if def.Quick {
		t.Error("default config should not be quick")
	}
	if def.TrialCount() != 10 {
		t.Errorf("default trials %d, want 10", def.TrialCount())
	}
	q := QuickSuiteConfig()
	if !q.Quick || q.TrialCount() != 3 {
		t.Errorf("quick config unexpected: %+v trials=%d", q, q.TrialCount())
	}
	if len(sizes(q)) == 0 || len(sizes(def)) <= len(sizes(q)) {
		t.Error("full sweep should be larger than quick sweep")
	}
	custom := SuiteConfig{Trials: 7}
	if custom.TrialCount() != 7 {
		t.Error("explicit trial count ignored")
	}
	if custom.Parallelism() <= 0 {
		t.Error("parallelism must be positive")
	}
}

func TestLargeSizes(t *testing.T) {
	quick := QuickSuiteConfig()
	if got := largeSizes(quick, 1<<20); len(got) != len(sizes(quick)) {
		t.Errorf("quick mode must not extend the sweep: %v", got)
	}
	full := DefaultSuiteConfig()
	got := largeSizes(full, 1<<20)
	if got[len(got)-1] != 1<<20 {
		t.Errorf("full sweep should reach 2^20, got %v", got)
	}
	if huge := largeSizes(full, 1<<22); huge[len(huge)-1] != 1<<22 {
		t.Errorf("full sweep with the raised ceiling should reach 2^22, got %v", huge)
	}
	if huge := largeSizes(full, 1<<24); huge[len(huge)-1] != 1<<24 {
		t.Errorf("full sweep with the E1/E4 ceiling should reach 2^24, got %v", huge)
	}
	capped := largeSizes(full, 1<<18)
	if capped[len(capped)-1] != 1<<18 {
		t.Errorf("capped sweep should stop at 2^18, got %v", capped)
	}
	csr := DefaultSuiteConfig()
	csr.Topology = "csr"
	if got := largeSizes(csr, 1<<20); got[len(got)-1] >= 1<<16 {
		t.Errorf("csr mode must keep the materialization cap: %v", got)
	}
}

// TestLargeSizesMaxNOverride pins the cfg.MaxN override in all three
// directions: trimming a full sweep below the experiment ceiling,
// raising it past the ceiling, and appending a single probe point in
// quick mode (the CI smoke's n = 2²² shape).
func TestLargeSizesMaxNOverride(t *testing.T) {
	lower := DefaultSuiteConfig()
	lower.MaxN = 1 << 16
	if got := largeSizes(lower, 1<<22); got[len(got)-1] != 1<<16 {
		t.Errorf("MaxN=2^16 should trim the sweep: %v", got)
	}
	tiny := DefaultSuiteConfig()
	tiny.MaxN = 1 << 12
	if got := largeSizes(tiny, 1<<22); got[len(got)-1] != 1<<12 {
		t.Errorf("MaxN=2^12 should trim the standard sweep: %v", got)
	}
	raise := DefaultSuiteConfig()
	raise.MaxN = 1 << 22
	if got := largeSizes(raise, 1<<18); got[len(got)-1] != 1<<22 {
		t.Errorf("MaxN=2^22 should raise the ceiling: %v", got)
	}
	quick := QuickSuiteConfig()
	quick.MaxN = 1 << 22
	got := largeSizes(quick, 1<<22)
	base := sizes(QuickSuiteConfig())
	if len(got) != len(base)+1 || got[len(got)-1] != 1<<22 {
		t.Errorf("quick MaxN should append exactly the probe point: %v", got)
	}
	for i, n := range base {
		if got[i] != n {
			t.Errorf("quick MaxN must keep the standard quick sweep: %v", got)
			break
		}
	}
}

func TestTrialSeedDeterministicAndDistinct(t *testing.T) {
	cfg := QuickSuiteConfig()
	a := cfg.TrialSeed(1, 2, 3)
	b := cfg.TrialSeed(1, 2, 3)
	c := cfg.TrialSeed(1, 2, 4)
	if a != b {
		t.Error("TrialSeed not deterministic")
	}
	if a == c {
		t.Error("different trial indices should give different seeds")
	}
}

func TestRegularDelta(t *testing.T) {
	if regularDelta(2) < 2 {
		t.Error("tiny n should still give a usable degree")
	}
	if d := regularDelta(1024); d < 90 || d > 110 {
		t.Errorf("regularDelta(1024) = %d, want about log²(1024) = 100", d)
	}
	if regularDelta(8) > 8 {
		t.Error("degree must never exceed n")
	}
}

// TestRegularEtaMatchesMeasuredStats pins the analytic η the implicit
// sweeps use to the value Graph.Stats measures on the materialized twin —
// the property that lets E3/E9 derive the paper's prescribed c without
// materializing the graph.
func TestRegularEtaMatchesMeasuredStats(t *testing.T) {
	for _, n := range []int{256, 1024, 4096} {
		delta := regularDelta(n)
		g, err := gen.Regular(n, delta, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := regularEta(n, delta), g.Stats().Eta; math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d: analytic eta %v, measured %v", n, got, want)
		}
	}
}
