package experiments

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/metrics"
)

// ExperimentBurnedFraction (E3) validates Lemma 4: with the threshold
// constant the paper prescribes (c ≥ max(32, 288/(η·d))), the maximum
// fraction of burned servers in any client's neighborhood stays below 1/2
// for every round up to 3·log₂ n. The table reports, per n, the worst S_t
// observed over all rounds and trials, the paper's prescribed c and the
// K_t bound that dominates S_t.
func ExperimentBurnedFraction(cfg SuiteConfig) (*Table, error) {
	table := NewTable("E3", "Maximum burned-server fraction S_t (SAER, paper's c, Lemma 4)",
		"n", "delta", "eta", "c_paper", "trials", "max_S_t", "max_K_t", "bound", "below_bound", "rounds_mean")

	d := 2
	for _, n := range cfg.sizes() {
		delta := regularDelta(n)
		g, err := buildRegular(n, delta, cfg.trialSeed(3, uint64(n)))
		if err != nil {
			return nil, err
		}
		st := g.Stats()
		c := core.MinCRegular(st.Eta, d)
		results, err := runPooledTrials(cfg, cfg.trials(), g, core.SAER,
			core.Params{D: d, C: c}, core.Options{TrackNeighborhoods: true},
			func(trial int) uint64 { return cfg.trialSeed(3, uint64(n), uint64(trial)) })
		if err != nil {
			return nil, err
		}
		maxSt, maxKt := 0.0, 0.0
		for _, r := range results {
			for _, round := range r.PerRound {
				if round.MaxNeighborhoodBurnedFrac > maxSt {
					maxSt = round.MaxNeighborhoodBurnedFrac
				}
				if round.MaxKt > maxKt {
					maxKt = round.MaxKt
				}
			}
		}
		agg := metrics.Aggregate(results)
		table.AddRowf(n, delta, st.Eta, c, agg.Trials, maxSt, maxKt,
			analysis.BurnedFractionBound, fmtBool(maxSt <= analysis.BurnedFractionBound), agg.Rounds.Mean)
	}
	table.AddNote("claim: S_t ≤ 1/2 for all t ≤ 3·log₂ n w.h.p. when c ≥ max(32, 288/(η·d)) (Lemma 4)")
	table.AddNote("S_t ≤ K_t always holds (eq. (3)); with the paper's conservative c both stay near zero in practice")
	return table, nil
}
