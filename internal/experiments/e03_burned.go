package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// ExperimentBurnedFraction (E3) validates Lemma 4: with the threshold
// constant the paper prescribes (c ≥ max(32, 288/(η·d))), the maximum
// fraction of burned servers in any client's neighborhood stays below 1/2
// for every round up to 3·log₂ n. The table reports, per n, the worst S_t
// observed over all rounds and trials, the paper's prescribed c and the
// K_t bound that dominates S_t. η is the exact ∆/log₂² n of the regular
// topology, so the sweep runs on implicit representations (and past the
// materialization wall, up to n = 2¹⁸ in full mode — the per-round
// neighborhood tracking is O(|E|), which is what caps this sweep below
// E1/E2's 2²⁰).
func ExperimentBurnedFraction(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E3",
		Title: "Maximum burned-server fraction S_t (SAER, paper's c, Lemma 4)",
		Columns: []string{"n", "delta", "eta", "c_paper", "trials", "max_S_t",
			"max_K_t", "bound", "below_bound", "rounds_mean"},
	}

	d := 2
	for _, n := range largeSizes(cfg, 1<<18) {
		n, delta := n, regularDelta(n)
		eta := regularEta(n, delta)
		c := core.MinCRegular(eta, d)
		spec.Points = append(spec.Points, sweep.Point{
			ID:       fmt.Sprintf("n=%d", n),
			Topology: regularTopo(n, delta, 3, uint64(n)),
			Variant:  core.SAER,
			Params:   core.Params{D: d, C: c},
			Options:  core.Options{TrackNeighborhoods: true},
			SeedKey:  []uint64{3, uint64(n)},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				maxSt, maxKt := 0.0, 0.0
				for _, r := range out.Results {
					for _, round := range r.PerRound {
						if round.MaxNeighborhoodBurnedFrac > maxSt {
							maxSt = round.MaxNeighborhoodBurnedFrac
						}
						if round.MaxKt > maxKt {
							maxKt = round.MaxKt
						}
					}
				}
				agg := metrics.Aggregate(out.Results)
				t.AddRowf(n, delta, eta, c, agg.Trials, maxSt, maxKt,
					analysis.BurnedFractionBound, fmtBool(maxSt <= analysis.BurnedFractionBound), agg.Rounds.Mean)
				return nil
			},
		})
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("claim: S_t ≤ 1/2 for all t ≤ 3·log₂ n w.h.p. when c ≥ max(32, 288/(η·d)) (Lemma 4)")
		t.AddNote("S_t ≤ K_t always holds (eq. (3)); with the paper's conservative c both stay near zero in practice")
		return nil
	}
	return sweep.Run(cfg, spec)
}
