package experiments

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// ExperimentAliveDecay (E11) traces the mechanics behind the Θ(n) work
// bound (Section 3.2): while at least n·d/log n balls are alive, the
// number of alive balls shrinks by at least a factor 4/5 per round,
// w.h.p. The table lists, per round, the mean number of alive balls over
// the trials, the measured per-round decay ratio and the 4/5 reference,
// until the series drops below the threshold. The whole experiment is a
// single sweep point whose rendering fans the per-round series out into
// rows.
func ExperimentAliveDecay(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E11",
		Title: "Per-round decay of alive balls (SAER, Section 3.2 work analysis)",
		Columns: []string{"round", "alive_mean", "decay_ratio", "bound_ratio",
			"below_threshold", "respects_bound"},
	}

	n := 1 << 13
	if cfg.Quick {
		n = 1 << 11
	}
	d := 2
	threshold := float64(n*d) / math.Log2(float64(n))
	spec.Points = append(spec.Points, sweep.Point{
		ID:       fmt.Sprintf("n=%d", n),
		Topology: regularTopo(n, regularDelta(n), 11, uint64(n)),
		Variant:  core.SAER,
		// c = 2 keeps enough servers at the threshold that the decay spans
		// several rounds (with a large c almost every ball lands in round 1
		// and there is nothing to plot).
		Params:  core.Params{D: d, C: 2},
		Options: core.Options{TrackRounds: true},
		SeedKey: []uint64{11, uint64(n)},
		Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
			// Average the alive-ball series across trials round by round.
			results := out.Results
			maxRounds := 0
			for _, r := range results {
				if len(r.PerRound) > maxRounds {
					maxRounds = len(r.PerRound)
				}
			}
			prevMean := math.NaN()
			violations := 0
			for round := 0; round < maxRounds; round++ {
				var alive []float64
				for _, r := range results {
					if round < len(r.PerRound) {
						alive = append(alive, float64(r.PerRound[round].AliveBalls))
					} else {
						alive = append(alive, 0)
					}
				}
				mean := stats.Mean(alive)
				ratio := math.NaN()
				respects := true
				if !math.IsNaN(prevMean) && prevMean > 0 {
					ratio = mean / prevMean
					if prevMean > threshold && ratio > analysis.WorkDecayFactor {
						respects = false
						violations++
					}
				}
				ratioCell := "-"
				if !math.IsNaN(ratio) {
					ratioCell = trimFloat(ratio)
				}
				t.AddRowf(round+1, mean, ratioCell, analysis.WorkDecayFactor,
					fmtBool(mean <= threshold), fmtBool(respects))
				prevMean = mean
			}
			t.AddNote("threshold n·d/log₂n = %.0f; the 4/5 bound only applies above it", threshold)
			if violations == 0 {
				t.AddNote("measured decay respects the 4/5 bound in every applicable round")
			} else {
				t.AddNote("measured decay violates the 4/5 bound in %d round(s) — expected to be rare (the bound holds w.h.p., not surely)", violations)
			}
			return nil
		},
	})
	return sweep.Run(cfg, spec)
}

func trimFloat(v float64) string {
	return fmt.Sprintf("%.3f", v)
}
