package experiments

import (
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/spectral"
	"repro/internal/sweep"
)

// ExperimentExpanderExtraction (E13) exercises the extension the paper
// inherits from Becchetti et al. (footnote 5): the subgraph formed by the
// accepted client→server assignments is a bounded-degree graph that, on
// sufficiently dense admissibility graphs, is an expander w.h.p. For each
// input density the table reports the degree bounds of the extracted
// assignment graph and its second singular value σ₂ (of the normalized
// biadjacency matrix), next to two references: the Ramanujan value
// 2·√(d−1)/d (the best possible for a d-regular-ish graph) and the
// near-1 value a non-expanding (cycle-like) graph would have. Each
// (density, protocol) pair is one single-trial point whose historical
// seed carries no trial index.
func ExperimentExpanderExtraction(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E13",
		Title: "Expander extraction from the assignment subgraph (extension; Becchetti et al. footnote 5)",
		Columns: []string{"input_graph", "delta_in", "protocol", "d", "client_deg",
			"max_server_deg", "sigma2", "ramanujan_ref", "expander_like"},
	}

	n := 1 << 12
	if cfg.Quick {
		n = 1 << 10
	}
	// Becchetti et al.'s construction needs the request number d to be a
	// sufficiently large constant for the extracted subgraph to be
	// connected and expanding; d = 6 is comfortably in that regime while
	// d = 2..3 can leave tiny isolated components.
	d := 6
	densities := []struct {
		name  string
		delta int
		// pinCSR: same rationale as E10 — the dense Ω(n)-degree points
		// regenerate n/8 … n/2-wide Feistel rows at ~8× a CSR read per
		// round under `-topology implicit`, so they stay materialized.
		pinCSR bool
	}{
		{"log²n", regularDelta(n), false},
		{"n/8", n / 8, true},
		{"n/2", n / 2, true},
	}
	ramanujan := 2 * math.Sqrt(float64(d-1)) / float64(d)
	for _, dens := range densities {
		dens := dens
		topo := regularTopo(n, dens.delta, 13, uint64(dens.delta))
		topo.ForceCSR = dens.pinCSR
		for _, variant := range []core.Variant{core.SAER, core.RAES} {
			variant := variant
			spec.Points = append(spec.Points, sweep.Point{
				ID:       fmt.Sprintf("%s/%s", dens.name, variant),
				Topology: topo,
				Variant:  variant,
				Params:   core.Params{D: d, C: 4},
				Options:  core.Options{TrackAssignments: true},
				Trials:   1,
				Seed: func(cfg SuiteConfig, _ int) uint64 {
					return cfg.TrialSeed(13, uint64(dens.delta), uint64(variant))
				},
				Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
					res := out.Results[0]
					if !res.Completed {
						return fmt.Errorf("experiments: E13 run on %s did not complete", dens.name)
					}
					sub, err := res.AssignmentGraph()
					if err != nil {
						return err
					}
					st := sub.Stats()
					sigma, err := spectral.SecondSingularValue(sub, spectral.Options{
						Seed:       cfg.TrialSeed(13, uint64(dens.delta), uint64(variant), 99),
						Iterations: 300,
					})
					if err != nil {
						return err
					}
					// "Expander-like" if σ₂ is clearly bounded away from 1 — we
					// use 0.98 as the operational cut-off between random-like
					// mixing and cycle-/cluster-like structure.
					t.AddRowf(dens.name, dens.delta, variant.String(), d,
						fmt.Sprintf("%d..%d", st.MinClientDegree, st.MaxClientDegree),
						st.MaxServerDegree, sigma, ramanujan, fmtBool(sigma < 0.98))
					return nil
				},
			})
		}
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("claim (inherited extension): the accepted-assignment subgraph has client degree exactly d, server degree ≤ c·d, and is an expander on dense inputs (Becchetti et al., SODA 2020)")
		t.AddNote("σ₂ is the second singular value of the normalized biadjacency matrix (1 = disconnected/cycle-like, %.3f = Ramanujan optimum for d=%d)", ramanujan, d)
		return nil
	}
	return sweep.Run(cfg, spec)
}

// assignmentDegreeCheck is used by tests: it confirms the structural
// degree guarantees of the extracted subgraph.
func assignmentDegreeCheck(sub *bipartite.Graph, d, capacity int) error {
	for v := 0; v < sub.NumClients(); v++ {
		if sub.ClientDegree(v) != d {
			return fmt.Errorf("client %d has degree %d, want %d", v, sub.ClientDegree(v), d)
		}
	}
	for u := 0; u < sub.NumServers(); u++ {
		if sub.ServerDegree(u) > capacity {
			return fmt.Errorf("server %d has degree %d above cap %d", u, sub.ServerDegree(u), capacity)
		}
	}
	return nil
}
