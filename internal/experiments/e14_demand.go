package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ExperimentHeterogeneousDemand (E14) exercises the paper's general case
// (every client holds *at most* d balls, Section 2.2) and the
// heavier-loaded regimes studied in the related work: demand vectors range
// from the uniform base case through uniform-random, Zipf-skewed and
// bursty workloads, and from light (d = 2) to heavy (d = 16) maximum
// demand. The table reports, per workload, the completion time, work per
// ball and maximum load next to the c·d cap. All workloads share one
// topology point grid; the demand vectors are generated up front (they
// parameterize the points).
func ExperimentHeterogeneousDemand(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E14",
		Title: "Heterogeneous and heavy demand (general ≤ d case, SAER, c = 4)",
		Columns: []string{"workload", "max_d", "mean_demand", "total_balls", "trials",
			"success", "rounds_mean", "rounds_max", "work_per_ball", "max_load", "cap"},
	}

	n := 1 << 13
	if cfg.Quick {
		n = 1 << 10
	}

	type wspec struct {
		name string
		gen  func(src *rng.Source) (workload.Demand, error)
		d    int
	}
	wspecs := []wspec{
		{"uniform d=2", func(*rng.Source) (workload.Demand, error) { return workload.Uniform(n, 2) }, 2},
		{"uniform d=8", func(*rng.Source) (workload.Demand, error) { return workload.Uniform(n, 8) }, 8},
		{"uniform d=16", func(*rng.Source) (workload.Demand, error) { return workload.Uniform(n, 16) }, 16},
		{"uniform-random ≤8", func(src *rng.Source) (workload.Demand, error) { return workload.UniformRandom(n, 8, src) }, 8},
		{"zipf(1.1) ≤8", func(src *rng.Source) (workload.Demand, error) { return workload.Zipf(n, 8, 1.1, src) }, 8},
		{"bursty 10% ≤8", func(src *rng.Source) (workload.Demand, error) { return workload.Bursty(n, 8, 1, 0.1, src) }, 8},
	}

	for si, sp := range wspecs {
		si, sp := si, sp
		demand, err := sp.gen(rng.New(cfg.TrialSeed(14, uint64(si))))
		if err != nil {
			return nil, fmt.Errorf("experiments: E14 workload %s: %w", sp.name, err)
		}
		if err := demand.Validate(); err != nil {
			return nil, err
		}
		params := core.Params{D: sp.d, C: 4}
		spec.Points = append(spec.Points, sweep.Point{
			ID:       "workload/" + sp.name,
			Topology: regularTopo(n, regularDelta(n), 14, uint64(n)),
			Variant:  core.SAER,
			Params:   params,
			Options:  core.Options{RequestCounts: demand.Counts},
			SeedKey:  []uint64{14, uint64(si)},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				agg := metrics.Aggregate(out.Results)
				t.AddRowf(sp.name, sp.d, demand.MeanDemand(), demand.Total, agg.Trials, fmtRate(agg.SuccessRate),
					agg.Rounds.Mean, agg.Rounds.Max, agg.WorkPerBall.Mean, agg.MaxLoad.Max, params.Capacity())
				return nil
			},
		})
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("claim: the protocol and its analysis extend unchanged to the general 'at most d balls per client' case (Section 2.2)")
		t.AddNote("expected shape: rounds stay logarithmic and work per ball stays a small constant regardless of demand skew; the cap scales as c·d with the configured maximum demand")
		return nil
	}
	return sweep.Run(cfg, spec)
}
