package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// ExperimentDegreeSweep (E6) probes the ∆ = Ω(log² n) hypothesis of
// Theorem 1 and the open question the paper raises for degrees o(log² n):
// at a fixed n, it sweeps the regular degree from Θ(log n) up to a dense
// regime and records the completion rate, round counts and the worst
// burned fraction. The theorem only promises good behaviour from the
// log² n row down; the smaller-degree rows empirically explore the open
// regime. The topologies go through the engine's representation
// selection, so `-topology implicit` sweeps every degree on regenerated
// neighborhoods.
func ExperimentDegreeSweep(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E6",
		Title: "Degree sweep at fixed n (SAER, d = 2, c = 4)",
		Columns: []string{"n", "delta", "delta_regime", "trials", "success",
			"rounds_mean", "rounds_max", "max_S_t", "bound_3log2n"},
	}

	n := 1 << 13
	if cfg.Quick {
		n = 1 << 10
	}
	logn := math.Log2(float64(n))
	log2n := int(math.Ceil(logn))
	deltas := []struct {
		delta  int
		regime string
	}{
		{max(2, log2n/2), "log(n)/2"},
		{log2n, "log(n)"},
		{max(2, int(logn*logn/4)), "log²(n)/4"},
		{int(logn * logn), "log²(n)"},
		{int(2 * logn * logn), "2·log²(n)"},
		{int(math.Pow(float64(n), 0.6)), "n^0.6"},
	}

	d := 2
	for _, dd := range deltas {
		dd := dd
		delta := dd.delta
		if delta > n {
			delta = n
		}
		spec.Points = append(spec.Points, sweep.Point{
			ID:       fmt.Sprintf("delta=%d", delta),
			Topology: regularTopo(n, delta, 6, uint64(delta)),
			Variant:  core.SAER,
			Params:   core.Params{D: d, C: 4},
			Options:  core.Options{TrackNeighborhoods: true},
			SeedKey:  []uint64{6, uint64(delta)},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				agg := metrics.Aggregate(out.Results)
				maxSt := 0.0
				for _, r := range out.Results {
					for _, round := range r.PerRound {
						if round.MaxNeighborhoodBurnedFrac > maxSt {
							maxSt = round.MaxNeighborhoodBurnedFrac
						}
					}
				}
				t.AddRowf(n, delta, dd.regime, agg.Trials, fmtRate(agg.SuccessRate),
					agg.Rounds.Mean, agg.Rounds.Max, maxSt, core.CompletionBound(n))
				return nil
			},
		})
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("claim: Theorem 1 requires ∆ = Ω(log² n); rows below that regime explore the paper's open question (Section 4)")
		return nil
	}
	return sweep.Run(cfg, spec)
}
