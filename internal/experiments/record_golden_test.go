package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sweep"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the JSON record golden file")

// TestJSONRecordGolden pins the machine-readable record schema of
// `saer-experiments -json`: the full E1 quick-mode stream (fixed seed,
// 2 trials) must match the committed golden file byte for byte, so a
// schema or determinism drift cannot land silently. Regenerate after an
// intentional change with:
//
//	go test ./internal/experiments -run TestJSONRecordGolden -update-golden
func TestJSONRecordGolden(t *testing.T) {
	cfg := QuickSuiteConfig()
	cfg.Trials = 2
	cfg.TrialParallelism = 3 // the stream must not depend on parallelism
	var buf bytes.Buffer
	cfg.Records = sweep.NewRecorder(&buf)
	if _, err := ExperimentCompletionScaling(cfg); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "e1_quick_records.golden", buf.Bytes())
}

// TestJSONRecordGoldenDynamic pins the record stream of the dynamic
// experiment E12, which additionally exercises the "round" record type:
// with a recorder attached the scenario tracks its per-round series and
// streams one round record per (path, batch, round), each tagged with
// its epoch. The incremental path runs through the churn subsystem, so
// this golden also pins that the scenario is deterministic end to end.
func TestJSONRecordGoldenDynamic(t *testing.T) {
	cfg := QuickSuiteConfig()
	cfg.Trials = 2
	cfg.TrialParallelism = 3 // the stream must not depend on parallelism
	var buf bytes.Buffer
	cfg.Records = sweep.NewRecorder(&buf)
	if _, err := ExperimentDynamic(cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"type":"round"`)) {
		t.Fatal("E12 stream contains no round records")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"epoch":`)) {
		t.Fatal("E12 round records carry no epoch tags")
	}
	compareGolden(t, "e12_quick_records.golden", buf.Bytes())
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON record stream drifted from the golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
