package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sweep"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the JSON record golden file")

// TestJSONRecordGolden pins the machine-readable record schema of
// `saer-experiments -json`: the full E1 quick-mode stream (fixed seed,
// 2 trials) must match the committed golden file byte for byte, so a
// schema or determinism drift cannot land silently. Regenerate after an
// intentional change with:
//
//	go test ./internal/experiments -run TestJSONRecordGolden -update-golden
func TestJSONRecordGolden(t *testing.T) {
	cfg := QuickSuiteConfig()
	cfg.Trials = 2
	cfg.TrialParallelism = 3 // the stream must not depend on parallelism
	var buf bytes.Buffer
	cfg.Records = sweep.NewRecorder(&buf)
	if _, err := ExperimentCompletionScaling(cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "e1_quick_records.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON record stream drifted from the golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
