package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// ExperimentCompletionScaling (E1) validates Theorem 1's completion-time
// claim: on random ∆-regular graphs with ∆ ≈ log² n, SAER terminates in
// O(log n) rounds. The table reports, for each n in the sweep, the mean
// and worst measured round count over independent trials next to the
// paper's 3·log₂ n reference, and the notes contain the least-squares fit
// of rounds against log₂ n (the slope is the measured hidden constant).
func ExperimentCompletionScaling(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E1",
		Title: "Completion time vs n (SAER, ∆ = log² n, d = 2, Theorem 1)",
		Columns: []string{"n", "delta", "c", "trials", "rounds_mean", "rounds_std",
			"rounds_max", "bound_3log2n", "within_bound"},
	}

	d := 2
	// A moderate threshold (well below the analysis constant) is used so
	// that servers actually burn and the logarithmic growth of the round
	// count is visible; with large c the protocol finishes in 1-2 rounds
	// at every size and the scaling claim is trivially satisfied.
	cconst := 2.5
	for _, n := range largeSizes(cfg, 1<<24) {
		n, delta := n, regularDelta(n)
		spec.Points = append(spec.Points, sweep.Point{
			ID:       fmt.Sprintf("n=%d", n),
			Topology: regularTopo(n, delta, 1, uint64(n)),
			Variant:  core.SAER,
			Params:   core.Params{D: d, C: cconst},
			SeedKey:  []uint64{1, uint64(n)},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				agg := metrics.Aggregate(out.Results)
				bound := core.CompletionBound(n)
				within := agg.SuccessRate == 1 && agg.Rounds.Max <= float64(bound)
				t.AddRowf(n, delta, cconst, agg.Trials, agg.Rounds.Mean, agg.Rounds.Std,
					agg.Rounds.Max, bound, fmtBool(within))
				return nil
			},
		})
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		var logns, meanRounds []float64
		for _, out := range outs {
			logns = append(logns, math.Log2(float64(out.Point.Topology.N)))
			meanRounds = append(meanRounds, metrics.Aggregate(out.Results).Rounds.Mean)
		}
		if fit, err := stats.FitLinear(logns, meanRounds); err == nil {
			t.AddNote("least-squares fit: rounds ≈ %.2f + %.2f·log2(n), R²=%.3f (paper bound slope: 3)",
				fit.Intercept, fit.Slope, fit.R2)
		}
		t.AddNote("claim: completion time is O(log n) w.h.p. (Theorem 1)")
		return nil
	}
	return sweep.Run(cfg, spec)
}
