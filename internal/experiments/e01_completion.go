package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// ExperimentCompletionScaling (E1) validates Theorem 1's completion-time
// claim: on random ∆-regular graphs with ∆ ≈ log² n, SAER terminates in
// O(log n) rounds. The table reports, for each n in the sweep, the mean
// and worst measured round count over independent trials next to the
// paper's 3·log₂ n reference, and the notes contain the least-squares fit
// of rounds against log₂ n (the slope is the measured hidden constant).
func ExperimentCompletionScaling(cfg SuiteConfig) (*Table, error) {
	table := NewTable("E1", "Completion time vs n (SAER, ∆ = log² n, d = 2, Theorem 1)",
		"n", "delta", "c", "trials", "rounds_mean", "rounds_std", "rounds_max", "bound_3log2n", "within_bound")

	d := 2
	// A moderate threshold (well below the analysis constant) is used so
	// that servers actually burn and the logarithmic growth of the round
	// count is visible; with large c the protocol finishes in 1-2 rounds
	// at every size and the scaling claim is trivially satisfied.
	cconst := 2.5
	var logns, meanRounds []float64
	for _, n := range cfg.largeSizes() {
		delta := regularDelta(n)
		g, err := buildRegularTopology(cfg, n, delta, cfg.trialSeed(1, uint64(n)))
		if err != nil {
			return nil, err
		}
		results, err := runPooledTrials(cfg, cfg.trials(), g, core.SAER,
			core.Params{D: d, C: cconst}, core.Options{},
			func(trial int) uint64 { return cfg.trialSeed(1, uint64(n), uint64(trial)) })
		if err != nil {
			return nil, err
		}
		agg := metrics.Aggregate(results)
		bound := core.CompletionBound(n)
		within := agg.SuccessRate == 1 && agg.Rounds.Max <= float64(bound)
		table.AddRowf(n, delta, cconst, agg.Trials, agg.Rounds.Mean, agg.Rounds.Std, agg.Rounds.Max, bound, fmtBool(within))
		logns = append(logns, math.Log2(float64(n)))
		meanRounds = append(meanRounds, agg.Rounds.Mean)
	}
	if fit, err := stats.FitLinear(logns, meanRounds); err == nil {
		table.AddNote("least-squares fit: rounds ≈ %.2f + %.2f·log2(n), R²=%.3f (paper bound slope: 3)",
			fit.Intercept, fit.Slope, fit.R2)
	}
	table.AddNote("claim: completion time is O(log n) w.h.p. (Theorem 1)")
	return table, nil
}
