package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// ExperimentAlmostRegular (E8) validates Theorem 1 on the paper's
// almost-regular "non-extremal example": most clients have degree
// Θ(log² n), a few heavy clients have degree Θ(√n), and a few servers have
// only constant degree. For each n the table reports the measured degree
// irregularity (ρ, ∆min, heavy degree), the c prescribed by Lemma 19 for
// that ρ, and the usual completion/load outcomes. The prescribed c
// depends on the *measured* server degrees (ρ is a property of the
// sampled graph, not the configuration); the implicit almost-regular
// topology records an exact per-server degree table at construction
// (gen.Implicit.DegreeStats), so the derivation works on every
// representation and the sweep extends into the implicit sizes — E8 no
// longer pins ForceCSR.
func ExperimentAlmostRegular(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E8",
		Title: "Almost-regular graphs: the paper's heavy-client / light-server example (Theorem 1, Appendix D)",
		Columns: []string{"n", "min_deg_C", "max_deg_C", "max_deg_S", "rho", "c_paper",
			"trials", "success", "rounds_mean", "bound_3log2n", "max_load", "cap"},
	}

	d := 2
	for _, n := range largeSizes(cfg, 1<<18) {
		n := n
		// The engine calls ParamsFrom before the point's trials and Render
		// after them, on the same built graph, so the O(n) degree scan and
		// the derived thresholds are computed once per point and carried
		// into the rendering. c is Lemma 19's prescription; cRun caps it at
		// 64 — the analysis constant is extremely conservative, and the cap
		// also demonstrates that a moderate constant works on irregular
		// graphs.
		var st bipartite.DegreeStats
		var c, cRun float64
		spec.Points = append(spec.Points, sweep.Point{
			ID: fmt.Sprintf("n=%d", n),
			Topology: sweep.Topo{Family: sweep.FamAlmostRegular, N: n,
				Almost: gen.DefaultAlmostRegularConfig(n), SeedKey: []uint64{8, uint64(n)}},
			Variant: core.SAER,
			ParamsFrom: func(cfg SuiteConfig, g bipartite.Topology) (core.Params, error) {
				var ok bool
				st, ok = bipartite.TopologyStats(g)
				if !ok {
					return core.Params{}, fmt.Errorf("almost-regular topology %v reports no exact degree statistics", g)
				}
				c = core.MinCAlmostRegular(st.Eta, st.RegularityRatio, d)
				cRun = min(c, 64)
				return core.Params{D: d, C: cRun}, nil
			},
			SeedKey: []uint64{8, uint64(n)},
			Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
				params := core.Params{D: d, C: cRun}
				agg := metrics.Aggregate(out.Results)
				t.AddRowf(n, st.MinClientDegree, st.MaxClientDegree, st.MaxServerDegree, st.RegularityRatio,
					c, agg.Trials, fmtRate(agg.SuccessRate), agg.Rounds.Mean, core.CompletionBound(n),
					agg.MaxLoad.Max, params.Capacity())
				return nil
			},
		})
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("claim: Theorem 1 only needs ∆min(C) ≥ η·log² n and ∆max(S)/∆min(C) ≤ ρ; heavy Θ(√n)-degree clients and O(1)-degree servers are allowed")
		t.AddNote("the run uses min(c_paper, 64): the analysis constant is conservative and smaller thresholds already complete within the bound")
		return nil
	}
	return sweep.Run(cfg, spec)
}
