package experiments

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// ExperimentAlmostRegular (E8) validates Theorem 1 on the paper's
// almost-regular "non-extremal example": most clients have degree
// Θ(log² n), a few heavy clients have degree Θ(√n), and a few servers have
// only constant degree. For each n the table reports the measured degree
// irregularity (ρ, ∆min, heavy degree), the c prescribed by Lemma 19 for
// that ρ, and the usual completion/load outcomes.
func ExperimentAlmostRegular(cfg SuiteConfig) (*Table, error) {
	table := NewTable("E8", "Almost-regular graphs: the paper's heavy-client / light-server example (Theorem 1, Appendix D)",
		"n", "min_deg_C", "max_deg_C", "max_deg_S", "rho", "c_paper", "trials", "success", "rounds_mean", "bound_3log2n", "max_load", "cap")

	d := 2
	for _, n := range cfg.sizes() {
		gcfg := gen.DefaultAlmostRegularConfig(n)
		g, err := gen.AlmostRegular(gcfg, rng.New(cfg.trialSeed(8, uint64(n))))
		if err != nil {
			return nil, err
		}
		st := g.Stats()
		c := core.MinCAlmostRegular(st.Eta, st.RegularityRatio, d)
		// The prescribed c is extremely conservative; cap it so the
		// experiment also demonstrates that a moderate constant works on
		// irregular graphs (the uncapped value is reported in the notes).
		cRun := c
		if cRun > 64 {
			cRun = 64
		}
		params := core.Params{D: d, C: cRun}
		results, err := runPooledTrials(cfg, cfg.trials(), g, core.SAER, params, core.Options{},
			func(trial int) uint64 { return cfg.trialSeed(8, uint64(n), uint64(trial)) })
		if err != nil {
			return nil, err
		}
		agg := metrics.Aggregate(results)
		table.AddRowf(n, st.MinClientDegree, st.MaxClientDegree, st.MaxServerDegree, st.RegularityRatio,
			c, agg.Trials, fmtRate(agg.SuccessRate), agg.Rounds.Mean, core.CompletionBound(n),
			agg.MaxLoad.Max, params.Capacity())
	}
	table.AddNote("claim: Theorem 1 only needs ∆min(C) ≥ η·log² n and ∆max(S)/∆min(C) ≤ ρ; heavy Θ(√n)-degree clients and O(1)-degree servers are allowed")
	table.AddNote("the run uses min(c_paper, 64): the analysis constant is conservative and smaller thresholds already complete within the bound")
	return table, nil
}
