package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// ExperimentSAERvsRAES (E4) compares the two protocols on identical graphs
// and seeds (Corollary 2): RAES's saturation rule is weaker than SAER's
// burning rule, so RAES should never be slower and typically finishes in
// the same or fewer rounds with the same work order; both respect the same
// c·d load cap. The table reports both protocols side by side per n with a
// moderately small c, where the difference between burning and saturating
// is actually visible. Consecutive points share the topology and the
// per-trial seeds, so each row pair really is the two protocols on
// identical instances — the pairing Corollary 2's domination argument is
// about; the sweep extends to n = 2²⁴ on implicit topologies in full
// mode (the point-query draw path keeps the dense rounds O(n·d), not
// O(n·Δ), which is what makes the top octaves affordable).
func ExperimentSAERvsRAES(cfg SuiteConfig) (*Table, error) {
	spec := sweep.Spec{
		ID:    "E4",
		Title: "SAER vs RAES on identical instances (Corollary 2)",
		Columns: []string{"n", "protocol", "c", "success", "rounds_mean", "rounds_max",
			"work_per_ball", "max_load", "burned_mean", "saturation_events"},
	}

	d := 2
	cconst := 2.5 // small enough that servers actually reach the threshold
	for _, n := range largeSizes(cfg, 1<<24) {
		n, delta := n, regularDelta(n)
		for _, variant := range []core.Variant{core.SAER, core.RAES} {
			variant := variant
			spec.Points = append(spec.Points, sweep.Point{
				ID:       fmt.Sprintf("n=%d/%s", n, variant),
				Topology: regularTopo(n, delta, 4, uint64(n)),
				Variant:  variant,
				Params:   core.Params{D: d, C: cconst},
				SeedKey:  []uint64{4, uint64(n)},
				Render: func(cfg SuiteConfig, out *sweep.Outcome, t *Table) error {
					agg := metrics.Aggregate(out.Results)
					var saturation int64
					for _, r := range out.Results {
						saturation += r.SaturationEvents
					}
					t.AddRowf(n, variant.String(), cconst, fmtRate(agg.SuccessRate),
						agg.Rounds.Mean, agg.Rounds.Max, agg.WorkPerBall.Mean, agg.MaxLoad.Max, agg.Burned.Mean, saturation)
					return nil
				},
			})
		}
	}
	spec.Finalize = func(cfg SuiteConfig, outs []*sweep.Outcome, t *Table) error {
		t.AddNote("claim: the bounds of Theorem 1 extend to RAES because RAES's acceptances stochastically dominate SAER's (Corollary 2)")
		t.AddNote("expected shape: RAES rounds ≤ SAER rounds; both max loads ≤ ⌊c·d⌋")
		return nil
	}
	return sweep.Run(cfg, spec)
}
