package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
)

// ExperimentSAERvsRAES (E4) compares the two protocols on identical graphs
// and seeds (Corollary 2): RAES's saturation rule is weaker than SAER's
// burning rule, so RAES should never be slower and typically finishes in
// the same or fewer rounds with the same work order; both respect the same
// c·d load cap. The table reports both protocols side by side per n with a
// moderately small c, where the difference between burning and saturating
// is actually visible.
func ExperimentSAERvsRAES(cfg SuiteConfig) (*Table, error) {
	table := NewTable("E4", "SAER vs RAES on identical instances (Corollary 2)",
		"n", "protocol", "c", "success", "rounds_mean", "rounds_max", "work_per_ball", "max_load", "burned_mean", "saturation_events")

	d := 2
	cconst := 2.5 // small enough that servers actually reach the threshold
	for _, n := range cfg.sizes() {
		delta := regularDelta(n)
		g, err := buildRegular(n, delta, cfg.trialSeed(4, uint64(n)))
		if err != nil {
			return nil, err
		}
		for _, variant := range []core.Variant{core.SAER, core.RAES} {
			results, err := runPooledTrials(cfg, cfg.trials(), g, variant,
				core.Params{D: d, C: cconst}, core.Options{},
				func(trial int) uint64 { return cfg.trialSeed(4, uint64(n), uint64(trial)) })
			if err != nil {
				return nil, err
			}
			agg := metrics.Aggregate(results)
			var saturation int64
			for _, r := range results {
				saturation += r.SaturationEvents
			}
			table.AddRowf(n, variant.String(), cconst, fmtRate(agg.SuccessRate),
				agg.Rounds.Mean, agg.Rounds.Max, agg.WorkPerBall.Mean, agg.MaxLoad.Max, agg.Burned.Mean, saturation)
		}
	}
	table.AddNote("claim: the bounds of Theorem 1 extend to RAES because RAES's acceptances stochastically dominate SAER's (Corollary 2)")
	table.AddNote("expected shape: RAES rounds ≤ SAER rounds; both max loads ≤ ⌊c·d⌋")
	return table, nil
}
