package experiments

import (
	"fmt"
	"sort"
)

// Experiment couples an identifier with the function that regenerates its
// table. Every Run builds a sweep.Spec and executes it on the shared
// engine (internal/sweep), so the registry is also the index of specs.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg SuiteConfig) (*Table, error)
}

// All returns every experiment in ID order. DESIGN.md mirrors this
// index; keep the two in sync.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Completion time vs n", "Theorem 1: O(log n) completion", ExperimentCompletionScaling},
		{"E2", "Total work vs n", "Theorem 1: Θ(n) work", ExperimentWorkScaling},
		{"E3", "Burned-server fraction", "Lemma 4: S_t ≤ 1/2 for t ≤ 3·log₂ n", ExperimentBurnedFraction},
		{"E4", "SAER vs RAES", "Corollary 2: bounds carry over to RAES", ExperimentSAERvsRAES},
		{"E5", "Maximum load invariant", "Section 2.2 remark (i): load ≤ c·d", ExperimentMaxLoad},
		{"E6", "Degree sweep", "Theorem 1 hypothesis ∆ = Ω(log² n) and the o(log² n) open question", ExperimentDegreeSweep},
		{"E7", "Baselines", "Positioning vs sequential greedy and parallel threshold protocols", ExperimentSequentialBaselines},
		{"E8", "Almost-regular graphs", "Theorem 1 / Lemma 19 on heavy-client, light-server topologies", ExperimentAlmostRegular},
		{"E9", "Threshold-constant sweep", "Role of c; the analysis constant is conservative", ExperimentThresholdSweep},
		{"E10", "Dense regime regression", "Dense-case behaviour of Becchetti et al. recovered", ExperimentDenseRegime},
		{"E11", "Alive-ball decay", "Section 3.2: geometric decay behind the Θ(n) work bound", ExperimentAliveDecay},
		{"E12", "Dynamic arrivals", "Section 4 future work: metastable behaviour under churn", ExperimentDynamic},
		{"E13", "Expander extraction", "Extension: the assignment subgraph is bounded-degree and expanding (Becchetti et al.)", ExperimentExpanderExtraction},
		{"E14", "Heterogeneous demand", "Section 2.2 general ≤ d case and heavy/skewed demand regimes", ExperimentHeterogeneousDemand},
		{"E15", "Edge-churn-rate sweep", "Extension: metastability vs per-epoch rewiring fraction (churn subsystem)", ExperimentChurnRate},
		{"E16", "Failure/recovery waves", "Extension: server failures under drop/reinject/saturate load policies", ExperimentFailureWaves},
		{"E17", "Arrival processes", "Extension: Poisson vs batch client arrivals at equal mean rate", ExperimentArrivalProcesses},
	}
	sort.Slice(exps, func(i, j int) bool { return lessID(exps[i].ID, exps[j].ID) })
	return exps
}

// ByID returns the experiment with the given identifier (case-sensitive,
// e.g. "E3").
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// lessID orders experiment identifiers by their numeric component:
// "E1" < "E2" < ... < "E9" < "E10" < ... < "E14" < "E15" < "E16" < "E17"
// (lexicographic ordering would wrongly sort "E15" before "E2"); equal
// numbers fall back to the string ordering. TestLessIDNumericOrder pins
// this, including that E15–E17 sort after E14.
func lessID(a, b string) bool {
	na, nb := idNumber(a), idNumber(b)
	if na != nb {
		return na < nb
	}
	return a < b
}

func idNumber(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}
