// Package engine provides the parallel execution substrate for the
// synchronous round-based simulations.
//
// The paper's model is a lock-step synchronous network: in every round all
// clients act (phase 1), then all servers act (phase 2). The engine maps
// this onto goroutines with a data-parallel pattern: entity ranges are cut
// into one contiguous shard per worker, each worker operates on its shard
// with worker-local scratch buffers, and a barrier separates the phases.
// Because shard boundaries depend only on (range length, worker count) and
// every entity owns a private random stream, simulation results are
// bit-for-bit identical for any worker count — a property the tests check
// explicitly.
package engine

import (
	"runtime"
	"sync"

	"repro/internal/telemetry"
)

// Pool executes data-parallel phases over a fixed number of workers.
// A Pool is safe for use from a single goroutine at a time; concurrent
// calls to ParallelRange on the same Pool must not overlap.
type Pool struct {
	workers int

	// deques are the per-worker chunk queues of the work-stealing
	// scheduler (see steal.go), allocated on first StealRange use.
	deques []chunkDeque

	// ChunkDelay, when non-nil, is invoked before every chunk a
	// StealRange worker executes. It exists solely so tests can skew the
	// steal schedule (stall one worker and force the others to steal its
	// chunks) and assert that results stay bit-for-bit identical.
	ChunkDelay func(worker, chunk int)

	// Steals and StealFails, when non-nil, count successful chunk steals
	// and empty victim scans (a worker going idle because every deque was
	// drained). Both sit on the steal slow path only — the pop fast path
	// never touches them — so instrumented and uninstrumented pools run
	// the hot loop identically. Set them before the first StealRange call
	// (core wires them from Options.Telemetry).
	Steals, StealFails *telemetry.Counter

	// Reusable per-worker reduction accumulators: ReduceInt64 and
	// ReduceMaxFloat64 run once or more per round, and a fresh
	// per-call slice shows up as steady-state garbage in the churn
	// epoch loop.
	partialI64 []int64
	partialF64 []float64
}

// NewPool returns a Pool with the requested number of workers. A value of
// zero (or negative) selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the worker count the pool was configured with.
func (p *Pool) Workers() int { return p.workers }

// shard returns the half-open range assigned to worker w out of p.workers
// when splitting [0, n). Shards are contiguous and differ in size by at
// most one, so the mapping is a pure function of (n, workers, w).
func (p *Pool) shard(n, w int) (lo, hi int) {
	per := n / p.workers
	rem := n % p.workers
	lo = w*per + min(w, rem)
	size := per
	if w < rem {
		size++
	}
	return lo, lo + size
}

// ParallelRange splits [0, n) into contiguous shards, one per worker, and
// invokes fn(worker, lo, hi) for each shard from its own goroutine,
// returning when all have completed. When the pool has a single worker or
// the range is small, fn is called inline to avoid scheduling overhead.
func (p *Pool) ParallelRange(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n < 2*p.workers {
		// Run every shard inline, preserving the exact shard boundaries so
		// that worker-indexed scratch buffers behave identically.
		for w := 0; w < p.workers; w++ {
			lo, hi := p.shard(n, w)
			if lo < hi {
				fn(w, lo, hi)
			}
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		lo, hi := p.shard(n, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ReduceInt64 runs fn over the shards of [0, n) and returns the sum of the
// per-shard results. It is the pattern used to count alive balls or sum
// message totals without shared counters in the hot path.
func (p *Pool) ReduceInt64(n int, fn func(worker, lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	if p.workers == 1 || n < 2*p.workers {
		// The inline path needs no per-worker accumulators at all —
		// shards run sequentially, and workers with an empty shard are
		// skipped entirely.
		var total int64
		for w := 0; w < p.workers; w++ {
			lo, hi := p.shard(n, w)
			if lo < hi {
				total += fn(w, lo, hi)
			}
		}
		return total
	}
	if p.partialI64 == nil {
		p.partialI64 = make([]int64, p.workers)
	}
	partial := p.partialI64
	clear(partial)
	p.ParallelRange(n, func(w, lo, hi int) {
		partial[w] += fn(w, lo, hi)
	})
	var total int64
	for _, v := range partial {
		total += v
	}
	return total
}

// ReduceMaxFloat64 runs fn over the shards of [0, n) and returns the
// maximum of the per-shard results, or def when n <= 0.
func (p *Pool) ReduceMaxFloat64(n int, def float64, fn func(worker, lo, hi int) float64) float64 {
	if n <= 0 {
		return def
	}
	if p.workers == 1 || n < 2*p.workers {
		out := def
		for w := 0; w < p.workers; w++ {
			lo, hi := p.shard(n, w)
			if lo < hi {
				if v := fn(w, lo, hi); v > out {
					out = v
				}
			}
		}
		return out
	}
	if p.partialF64 == nil {
		p.partialF64 = make([]float64, p.workers)
	}
	partial := p.partialF64
	for w := range partial {
		partial[w] = def
	}
	p.ParallelRange(n, func(w, lo, hi int) {
		v := fn(w, lo, hi)
		if v > partial[w] {
			partial[w] = v
		}
	})
	out := def
	for _, v := range partial {
		if v > out {
			out = v
		}
	}
	return out
}

// Tally is a set of per-worker int32 accumulators of a common size plus a
// merged view. It implements the "worker-local buffers merged after the
// barrier" pattern: phase 1 workers bump their private counters without
// any synchronization, then Merge folds them into the shared slice in a
// second (also parallel) pass sharded by index rather than by worker.
//
// The Tally has three operating modes:
//
//   - Dense (the default): workers write through Local(w) and the
//     Merge/Reset pair costs O(size × workers) per round. This layout is
//     streaming-friendly and wins while a large fraction of the cells is
//     touched every round.
//
//   - Sparse: after BeginSparse, workers accumulate with SparseAdd, which
//     epoch-stamps each cell on first touch and records it in a per-worker
//     touched list. SparseMerge and SparseReset then cost O(touched)
//     instead of O(size × workers): untouched cells are never read,
//     written, or zeroed — advancing the epoch invalidates every stamp in
//     O(1).
//
//   - Stamped: after BeginStamped, the merged view itself is epoch-
//     guarded — a cell's count is valid only while its merged stamp
//     matches the epoch, and StampedReset invalidates every count in
//     O(1). This is the global level of the two-level SPA tally used by
//     the sharded round pipeline: Router.FoldShard writes counts straight
//     into the merged view, detecting first touches by stamp instead of
//     requiring pre-zeroed cells, so the per-worker local buffers (and
//     their O(size × workers) memory) are never allocated and no zeroing
//     pass ever streams the full counts array — the tally's resident set
//     per fold is one shard window even when size outgrows L2.
//
// All modes produce identical counts (via ReceivedAt) for identical adds,
// so a caller may switch from dense to sparse mid-run (after a dense
// Reset) without observable effect. Switching back requires FullReset.
type Tally struct {
	size   int
	local  [][]int32
	merged []int32

	// Sparse/stamped-mode state, allocated lazily by BeginSparse and
	// BeginStamped.
	sparse      bool
	stamped     bool
	epoch       uint32
	stamps      [][]uint32 // stamps[w][i] == epoch ⇔ local[w][i] is current
	touched     [][]int32  // per-worker list of cells stamped this epoch
	mergedStamp []uint32   // mergedStamp[i] == epoch ⇔ merged[i] is current
	mergedTouch []int32    // deduped union of the touched lists
}

// NewTally returns a Tally with one local buffer per pool worker. With a
// single worker the merged view aliases the one local buffer: there is
// nothing to fold, so Merge becomes a no-op and Reset a single pass.
// Multi-worker local buffers are allocated lazily on first use (Local or
// BeginSparse): the sharded round pipeline writes phase-B counts straight
// into the merged view through a Router, so a sharded run only pays the
// O(size × workers) local (and stamp) memory if and when it crosses into
// the sparse engine — forced-dense sharded runs never do.
func NewTally(p *Pool, size int) *Tally {
	t := &Tally{
		size:   size,
		local:  make([][]int32, p.Workers()),
		merged: make([]int32, size),
	}
	if len(t.local) == 1 {
		t.local[0] = t.merged
	}
	return t
}

// aliased reports whether merged shares storage with the single local
// buffer (the one-worker fast path).
func (t *Tally) aliased() bool { return len(t.local) == 1 }

// Local returns worker w's private accumulator, allocating it on first
// use. Concurrent callers must pass distinct w (they do: w is the
// ParallelRange worker index).
func (t *Tally) Local(w int) []int32 {
	if t.local[w] == nil {
		t.local[w] = make([]int32, t.size)
	}
	return t.local[w]
}

// Merged returns the merged view computed by the last Merge call.
func (t *Tally) Merged() []int32 { return t.merged }

// Merge folds every worker-local buffer into the merged slice. The fold is
// parallelized over indices, so each merged cell is written by exactly one
// worker and no atomics are needed.
func (t *Tally) Merge(p *Pool) []int32 {
	if t.aliased() {
		return t.merged
	}
	p.ParallelRange(t.size, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum int32
			for w := range t.local {
				if l := t.local[w]; l != nil {
					sum += l[i]
				}
			}
			t.merged[i] = sum
		}
	})
	return t.merged
}

// Reset zeroes all local buffers and the merged view (dense mode).
func (t *Tally) Reset(p *Pool) {
	if t.aliased() {
		clear(t.local[0])
		return
	}
	p.ParallelRange(t.size, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.merged[i] = 0
			for w := range t.local {
				if l := t.local[w]; l != nil {
					l[i] = 0
				}
			}
		}
	})
}

// IsSparse reports whether the tally is currently in sparse mode.
func (t *Tally) IsSparse() bool { return t.sparse }

// BeginSparse switches the tally into sparse mode. The local buffers must
// be clean (i.e. a dense Reset, FullReset, or NewTally must precede it),
// which the protocol guarantees by switching only at a round boundary.
// Per-worker stamp and local buffers are allocated lazily by the first
// SparseAdd of each worker, so workers that never touch a sparse range
// (the common case once the frontier has collapsed below the chunk size)
// never pay the O(size) allocation.
func (t *Tally) BeginSparse() {
	if t.stamps == nil {
		t.stamps = make([][]uint32, len(t.local))
		t.touched = make([][]int32, len(t.local))
	}
	if t.mergedStamp == nil {
		t.mergedStamp = make([]uint32, t.size)
	}
	t.sparse = true
	t.advanceEpoch()
}

// SparseAdd counts one event for cell i on behalf of worker w. On the
// first touch of a cell in the current epoch the stale count is replaced
// rather than cleared in advance, which is what makes reset O(1).
func (t *Tally) SparseAdd(w int, i int32) {
	stamps := t.stamps[w]
	if stamps == nil {
		stamps = make([]uint32, t.size)
		t.stamps[w] = stamps
		if t.local[w] == nil {
			t.local[w] = make([]int32, t.size)
		}
	}
	if stamps[i] == t.epoch {
		t.local[w][i]++
		return
	}
	stamps[i] = t.epoch
	t.local[w][i] = 1
	t.touched[w] = append(t.touched[w], i)
}

// SparseMerge folds the per-worker touched cells into the merged view and
// returns the deduplicated list of touched cells. The list is ordered by
// (first-touching worker, touch order), which is deterministic for a fixed
// worker count but — unlike the merged counts themselves — may differ
// across worker counts; callers must not let iteration order leak into
// results (the protocol phases don't: per-cell state is independent).
// The walk is sequential: by construction it runs only when the touched
// set is small, where a parallel pass would cost more than it saves.
func (t *Tally) SparseMerge() []int32 {
	t.mergedTouch = t.mergedTouch[:0]
	for w := range t.touched {
		for _, i := range t.touched[w] {
			if t.mergedStamp[i] != t.epoch {
				t.mergedStamp[i] = t.epoch
				t.merged[i] = t.local[w][i]
				t.mergedTouch = append(t.mergedTouch, i)
			} else {
				t.merged[i] += t.local[w][i]
			}
		}
	}
	return t.mergedTouch
}

// ReceivedAt returns the merged count of cell i as of the last merge (or
// fold). It is valid in every mode: in sparse and stamped modes a cell
// not touched this epoch reads as zero without having been zeroed.
func (t *Tally) ReceivedAt(i int32) int32 {
	if t.sparse || t.stamped {
		if t.mergedStamp[i] != t.epoch {
			return 0
		}
		return t.merged[i]
	}
	return t.merged[i]
}

// SparseReset invalidates all counts by advancing the epoch and truncating
// the touched lists. Cost: O(workers), independent of size.
func (t *Tally) SparseReset() {
	for w := range t.touched {
		t.touched[w] = t.touched[w][:0]
	}
	t.advanceEpoch()
}

// advanceEpoch bumps the epoch stamp, handling the (practically
// unreachable) uint32 wraparound by clearing every stamp array so that no
// stale stamp can collide with a recycled epoch value.
func (t *Tally) advanceEpoch() {
	t.epoch++
	if t.epoch == 0 {
		for w := range t.stamps {
			clear(t.stamps[w])
		}
		clear(t.mergedStamp)
		t.epoch = 1
	}
}

// IsStamped reports whether the tally is currently in stamped mode.
func (t *Tally) IsStamped() bool { return t.stamped }

// BeginStamped switches the merged view into epoch-guarded (stamped)
// mode: a cell's count is valid only while its merged stamp matches the
// current epoch, so folds that write counts directly into the merged view
// (Router.FoldShard) detect first touches by stamp instead of requiring
// pre-zeroed cells, and StampedReset invalidates everything in O(1).
// Stamped mode is a property of the caller's pipeline (the sharded round
// loop), not of one run: it persists across FullReset.
func (t *Tally) BeginStamped() {
	if t.mergedStamp == nil {
		t.mergedStamp = make([]uint32, t.size)
	}
	t.stamped = true
	t.advanceEpoch()
}

// StampedReset invalidates every merged count by advancing the epoch.
// Cost: O(1), independent of size — the stamped replacement for both the
// dense O(size) Reset and the router's per-shard touched-list zeroing.
func (t *Tally) StampedReset() {
	t.advanceEpoch()
}

// FullReset restores the tally to a clean state between independent runs
// that reuse the same Tally: counts invalidated, sparse mode off, touched
// lists truncated. In stamped mode invalidation is a single epoch advance
// (no pass over the counts, which stay epoch-guarded); in dense/sparse
// mode all buffers are zeroed and the tally returns to its post-NewTally
// dense state. The epoch is never rewound, so stamps from earlier use
// stay invalid.
func (t *Tally) FullReset(p *Pool) {
	t.sparse = false
	for w := range t.touched {
		t.touched[w] = t.touched[w][:0]
	}
	if t.stamped {
		t.advanceEpoch()
		return
	}
	t.Reset(p)
}
