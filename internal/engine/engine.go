// Package engine provides the parallel execution substrate for the
// synchronous round-based simulations.
//
// The paper's model is a lock-step synchronous network: in every round all
// clients act (phase 1), then all servers act (phase 2). The engine maps
// this onto goroutines with a data-parallel pattern: entity ranges are cut
// into one contiguous shard per worker, each worker operates on its shard
// with worker-local scratch buffers, and a barrier separates the phases.
// Because shard boundaries depend only on (range length, worker count) and
// every entity owns a private random stream, simulation results are
// bit-for-bit identical for any worker count — a property the tests check
// explicitly.
package engine

import (
	"runtime"
	"sync"
)

// Pool executes data-parallel phases over a fixed number of workers.
// A Pool is safe for use from a single goroutine at a time; concurrent
// calls to ParallelRange on the same Pool must not overlap.
type Pool struct {
	workers int
}

// NewPool returns a Pool with the requested number of workers. A value of
// zero (or negative) selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the worker count the pool was configured with.
func (p *Pool) Workers() int { return p.workers }

// shard returns the half-open range assigned to worker w out of p.workers
// when splitting [0, n). Shards are contiguous and differ in size by at
// most one, so the mapping is a pure function of (n, workers, w).
func (p *Pool) shard(n, w int) (lo, hi int) {
	per := n / p.workers
	rem := n % p.workers
	lo = w*per + min(w, rem)
	size := per
	if w < rem {
		size++
	}
	return lo, lo + size
}

// ParallelRange splits [0, n) into contiguous shards, one per worker, and
// invokes fn(worker, lo, hi) for each shard from its own goroutine,
// returning when all have completed. When the pool has a single worker or
// the range is small, fn is called inline to avoid scheduling overhead.
func (p *Pool) ParallelRange(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n < 2*p.workers {
		// Run every shard inline, preserving the exact shard boundaries so
		// that worker-indexed scratch buffers behave identically.
		for w := 0; w < p.workers; w++ {
			lo, hi := p.shard(n, w)
			if lo < hi {
				fn(w, lo, hi)
			}
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		lo, hi := p.shard(n, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ReduceInt64 runs fn over the shards of [0, n) and returns the sum of the
// per-shard results. It is the pattern used to count alive balls or sum
// message totals without shared counters in the hot path.
func (p *Pool) ReduceInt64(n int, fn func(worker, lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	partial := make([]int64, p.workers)
	p.ParallelRange(n, func(w, lo, hi int) {
		partial[w] += fn(w, lo, hi)
	})
	var total int64
	for _, v := range partial {
		total += v
	}
	return total
}

// ReduceMaxFloat64 runs fn over the shards of [0, n) and returns the
// maximum of the per-shard results, or def when n <= 0.
func (p *Pool) ReduceMaxFloat64(n int, def float64, fn func(worker, lo, hi int) float64) float64 {
	if n <= 0 {
		return def
	}
	partial := make([]float64, p.workers)
	for w := range partial {
		partial[w] = def
	}
	p.ParallelRange(n, func(w, lo, hi int) {
		v := fn(w, lo, hi)
		if v > partial[w] {
			partial[w] = v
		}
	})
	out := def
	for _, v := range partial {
		if v > out {
			out = v
		}
	}
	return out
}

// Tally is a set of per-worker int32 accumulators of a common size plus a
// merged view. It implements the "worker-local buffers merged after the
// barrier" pattern: phase 1 workers bump their private counters without
// any synchronization, then Merge folds them into the shared slice in a
// second (also parallel) pass sharded by index rather than by worker.
type Tally struct {
	size   int
	local  [][]int32
	merged []int32
}

// NewTally returns a Tally with one local buffer per pool worker.
func NewTally(p *Pool, size int) *Tally {
	t := &Tally{
		size:   size,
		local:  make([][]int32, p.Workers()),
		merged: make([]int32, size),
	}
	for w := range t.local {
		t.local[w] = make([]int32, size)
	}
	return t
}

// Local returns worker w's private accumulator.
func (t *Tally) Local(w int) []int32 { return t.local[w] }

// Merged returns the merged view computed by the last Merge call.
func (t *Tally) Merged() []int32 { return t.merged }

// Merge folds every worker-local buffer into the merged slice. The fold is
// parallelized over indices, so each merged cell is written by exactly one
// worker and no atomics are needed.
func (t *Tally) Merge(p *Pool) []int32 {
	p.ParallelRange(t.size, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum int32
			for w := range t.local {
				sum += t.local[w][i]
			}
			t.merged[i] = sum
		}
	})
	return t.merged
}

// Reset zeroes all local buffers and the merged view.
func (t *Tally) Reset(p *Pool) {
	p.ParallelRange(t.size, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.merged[i] = 0
			for w := range t.local {
				t.local[w][i] = 0
			}
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
