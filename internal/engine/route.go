package engine

import "math/bits"

// Router is the substrate of the sharded round pipeline (see the round
// loop in internal/core): instead of every phase-A worker bumping a
// private size-wide tally that a later pass folds, workers bucket each
// event's destination cell into per-(worker, shard) route lanes, and
// phase-B shard owners fold one shard's lanes at a time into the shared
// counts array. All writes to a shard's counts happen on the goroutine
// that owns the shard and land inside one contiguous 2^shift-cell window,
// so they are cache-blocked; and because only routed cells are ever
// written, the O(size × workers) dense merge and reset passes disappear —
// folding costs O(routed events), and with the stamped tally (the global
// level of the two-level SPA accumulator, see Tally.BeginStamped) the
// round-end reset is a single O(1) epoch advance: no zeroing pass ever
// streams the counts array, so the pipeline's per-round resident set is
// one shard window even when the tally itself outgrows L2.
//
// Shards are contiguous cell ranges of width 2^shift: routing in the
// phase-A inner loop is a single shift (ShardOf). The width is derived
// from a target shard count so that the actual count lands in
// [target, 2·target] whenever size ≥ target — every owner gets work, and
// a finer split only shrinks the per-fold cache window.
//
// Determinism: a shard's fold visits lanes in (worker, append) order,
// which varies with the worker count — but a fold only produces per-cell
// sums and a duplicate-free touched set, both order-independent, so
// simulation results stay bit-for-bit identical across worker AND shard
// counts. The equivalence tests in internal/core sweep both.
type Router struct {
	workers int
	shards  int
	shift   uint
	// lanes[w*shards+s] holds the cells worker w routed to shard s this
	// round. Truncated (capacity kept) by ResetLanes.
	lanes [][]int32
	// touched[s] is the duplicate-free list of cells shard s's last fold
	// incremented — reused across rounds for its capacity.
	touched [][]int32
	// topoVersion is the topology version the lanes were last synced to
	// (see bipartite.Versioned and SyncTopologyVersion). Static
	// topologies leave it zero.
	topoVersion uint64
}

// NewRouter returns a Router for `workers` phase-A workers over a counts
// array of `size` cells, splitting it into about targetShards shards.
func NewRouter(workers, targetShards, size int) *Router {
	if workers < 1 {
		workers = 1
	}
	if targetShards < 1 {
		targetShards = 1
	}
	shift := uint(0)
	if size > targetShards {
		// Largest power-of-two width with ceil(size/width) ≥ targetShards:
		// width ≤ size/targetShards < 2·width, so the shard count is in
		// [targetShards, 2·targetShards].
		shift = uint(bits.Len64(uint64(size/targetShards))) - 1
	}
	width := 1 << shift
	shards := (size + width - 1) / width
	if shards < 1 {
		shards = 1
	}
	return &Router{
		workers: workers,
		shards:  shards,
		shift:   shift,
		lanes:   make([][]int32, workers*shards),
		touched: make([][]int32, shards),
	}
}

// Shards returns the number of shards the cell range was split into.
func (rt *Router) Shards() int { return rt.shards }

// Shift returns the routing shift: cell i belongs to shard i >> Shift().
// Phase-A inner loops use the shift directly rather than calling ShardOf
// per event.
func (rt *Router) Shift() uint { return rt.shift }

// ShardOf returns the shard owning cell i.
func (rt *Router) ShardOf(i int32) int { return int(i) >> rt.shift }

// Lanes returns worker w's shard-indexed lane view: phase A appends cell
// i to Lanes(w)[i>>Shift()]. The returned slice aliases the Router's
// state; each worker must only touch its own view.
func (rt *Router) Lanes(w int) [][]int32 {
	return rt.lanes[w*rt.shards : (w+1)*rt.shards : (w+1)*rt.shards]
}

// ResetLanes truncates every lane, keeping capacity. Call at the start of
// each routed round.
func (rt *Router) ResetLanes() {
	for i := range rt.lanes {
		rt.lanes[i] = rt.lanes[i][:0]
	}
}

// FoldShard folds every worker's lane of shard s into the stamped tally's
// merged view and returns the shard's duplicate-free touched list (cells
// first stamped this epoch). The tally must be in stamped mode
// (Tally.BeginStamped): a first touch is detected by the cell's merged
// stamp differing from the current epoch, so the shard's counts may hold
// arbitrary stale values — no zeroing pass ever precedes a fold, and the
// round-end reset is the O(1) Tally.StampedReset. Shard owners call
// FoldShard for distinct s concurrently: a cell belongs to exactly one
// shard, so each (count, stamp) pair is written by exactly one goroutine.
func (rt *Router) FoldShard(s int, t *Tally) []int32 {
	touched := rt.touched[s][:0]
	counts, stamps, epoch := t.merged, t.mergedStamp, t.epoch
	for w := 0; w < rt.workers; w++ {
		for _, i := range rt.lanes[w*rt.shards+s] {
			if stamps[i] == epoch {
				counts[i]++
			} else {
				stamps[i] = epoch
				counts[i] = 1
				touched = append(touched, i)
			}
		}
	}
	rt.touched[s] = touched
	return touched
}

// SyncTopologyVersion is the router's invalidation hook for mutable
// (versioned) topologies: when the version differs from the last synced
// one, any buffered lanes and touched lists describe destinations drawn
// from rows that no longer exist, so they are discarded. It reports
// whether an invalidation happened. Callers with a static topology never
// need to call this.
func (rt *Router) SyncTopologyVersion(v uint64) bool {
	if rt.topoVersion == v {
		return false
	}
	rt.topoVersion = v
	rt.Discard()
	return true
}

// Discard truncates every lane and touched list without touching the
// tally: the reset to pair with Tally.FullReset when a run abandoned a
// round between fold and reset.
func (rt *Router) Discard() {
	rt.ResetLanes()
	for s := range rt.touched {
		rt.touched[s] = rt.touched[s][:0]
	}
}
