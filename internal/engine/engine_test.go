package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewPoolDefaults(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("NewPool(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewPool(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("NewPool(-3).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := NewPool(5).Workers(); got != 5 {
		t.Errorf("NewPool(5).Workers() = %d", got)
	}
}

func TestShardsPartitionRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 5, 16, 17, 100, 101} {
			covered := make([]int, n)
			for w := 0; w < workers; w++ {
				lo, hi := p.shard(n, w)
				if lo > hi {
					t.Fatalf("workers=%d n=%d w=%d: lo %d > hi %d", workers, n, w, lo, hi)
				}
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestParallelRangeCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		const n = 10000
		marks := make([]int32, n)
		p.ParallelRange(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, m)
			}
		}
	}
}

func TestParallelRangeEmptyAndTiny(t *testing.T) {
	p := NewPool(8)
	called := 0
	p.ParallelRange(0, func(_, _, _ int) { called++ })
	if called != 0 {
		t.Error("ParallelRange(0) invoked the callback")
	}
	// A range smaller than the worker count must still cover every index
	// exactly once (inline path).
	visited := make([]int, 3)
	p.ParallelRange(3, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			visited[i]++
		}
	})
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestParallelRangeWorkerIDsDistinct(t *testing.T) {
	p := NewPool(4)
	const n = 4000
	owner := make([]int32, n)
	p.ParallelRange(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			owner[i] = int32(w)
		}
	})
	// Contiguity: owners must be non-decreasing.
	for i := 1; i < n; i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("shards are not contiguous at index %d", i)
		}
	}
}

func TestReduceInt64(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		p := NewPool(workers)
		const n = 12345
		// Sum of [0, n) computed shard-wise must equal n(n-1)/2.
		got := p.ReduceInt64(n, func(_, lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s
		})
		want := int64(n) * int64(n-1) / 2
		if got != want {
			t.Errorf("workers=%d: ReduceInt64 = %d, want %d", workers, got, want)
		}
	}
	if NewPool(2).ReduceInt64(0, func(_, _, _ int) int64 { return 99 }) != 0 {
		t.Error("ReduceInt64 over empty range should be 0")
	}
}

func TestReduceMaxFloat64(t *testing.T) {
	p := NewPool(4)
	vals := []float64{0.1, 0.7, 0.3, 0.9, 0.2, 0.05}
	got := p.ReduceMaxFloat64(len(vals), -1, func(_, lo, hi int) float64 {
		m := -1.0
		for i := lo; i < hi; i++ {
			if vals[i] > m {
				m = vals[i]
			}
		}
		return m
	})
	if got != 0.9 {
		t.Errorf("ReduceMaxFloat64 = %v, want 0.9", got)
	}
	if p.ReduceMaxFloat64(0, -1, func(_, _, _ int) float64 { return 5 }) != -1 {
		t.Error("empty range should return default")
	}
}

func TestTallyMerge(t *testing.T) {
	p := NewPool(3)
	ta := NewTally(p, 10)
	// Each worker bumps every slot by its own id+1.
	p.ParallelRange(10, func(w, lo, hi int) {
		local := ta.Local(w)
		for i := 0; i < 10; i++ {
			local[i] += int32(w + 1)
		}
	})
	merged := ta.Merge(p)
	// Slots were bumped once per *shard invocation*; with the inline path
	// for small ranges each worker runs exactly once, so every slot should
	// be 1+2+3 = 6.
	for i, v := range merged {
		if v != 6 {
			t.Fatalf("merged[%d] = %d, want 6", i, v)
		}
	}
	ta.Reset(p)
	for w := 0; w < p.Workers(); w++ {
		for i, v := range ta.Local(w) {
			if v != 0 {
				t.Fatalf("local[%d][%d] = %d after Reset", w, i, v)
			}
		}
	}
	for i, v := range ta.Merged() {
		if v != 0 {
			t.Fatalf("merged[%d] = %d after Reset", i, v)
		}
	}
}

func TestTallyMergeLargeParallel(t *testing.T) {
	p := NewPool(4)
	const size = 50000
	ta := NewTally(p, size)
	p.ParallelRange(size, func(w, lo, hi int) {
		local := ta.Local(w)
		for i := lo; i < hi; i++ {
			local[i] = int32(i % 7)
		}
	})
	merged := ta.Merge(p)
	for i, v := range merged {
		if v != int32(i%7) {
			t.Fatalf("merged[%d] = %d, want %d", i, v, i%7)
		}
	}
}

// Property: ReduceInt64 is independent of the worker count.
func TestQuickReduceWorkerInvariance(t *testing.T) {
	f := func(nRaw uint16, w1Raw, w2Raw uint8) bool {
		n := int(nRaw % 5000)
		w1 := int(w1Raw%8) + 1
		w2 := int(w2Raw%8) + 1
		sum := func(workers int) int64 {
			return NewPool(workers).ReduceInt64(n, func(_, lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i * i % 97)
				}
				return s
			})
		}
		return sum(w1) == sum(w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
