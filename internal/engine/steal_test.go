package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStealRangeCoverage checks the scheduler's only hard invariant:
// every index of [0, n) is executed exactly once, for any worker count,
// with chunk bounds consistent with NumChunks/the reported (chunk, lo,
// hi) triples.
func TestStealRangeCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096, 100000} {
			p := NewPool(workers)
			hits := make([]int32, n)
			var chunks atomic.Int32
			p.StealRange(n, func(worker, chunk, lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad chunk bounds [%d, %d)", workers, n, lo, hi)
				}
				chunks.Add(1)
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, h)
				}
			}
			if want := p.NumChunks(n); int(chunks.Load()) != want {
				t.Fatalf("workers=%d n=%d: %d chunks executed, NumChunks says %d",
					workers, n, chunks.Load(), want)
			}
		}
	}
}

// TestStealRangeChunkBoundsPure checks that chunk boundaries are a pure
// function of (n, workers): the (chunk → [lo, hi)) mapping must be
// identical across repeated runs regardless of which worker executed a
// chunk, since chunk-indexed outputs rely on it.
func TestStealRangeChunkBoundsPure(t *testing.T) {
	const n = 50000
	p := NewPool(4)
	var mu sync.Mutex
	ref := map[int][2]int{}
	for rep := 0; rep < 5; rep++ {
		p.StealRange(n, func(_, chunk, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			if b, ok := ref[chunk]; ok {
				if b[0] != lo || b[1] != hi {
					t.Errorf("chunk %d bounds changed: [%d, %d) vs [%d, %d)", chunk, b[0], b[1], lo, hi)
				}
			} else {
				ref[chunk] = [2]int{lo, hi}
			}
		})
	}
}

// TestStealRangeStealsUnderSkew stalls worker 0's first chunk and checks
// that other workers actually steal from its deque — the scheduler's
// reason to exist — while coverage stays exact. Skipped on a single-CPU
// run only in the sense that stealing needs runnable peers: goroutines
// still interleave on one core because the stalled worker sleeps.
func TestStealRangeStealsUnderSkew(t *testing.T) {
	const workers = 4
	const n = 64 * workers * chunksPerWorker // every chunk exactly ChunkAlign wide
	p := NewPool(workers)
	var stalled atomic.Bool
	p.ChunkDelay = func(worker, chunk int) {
		if worker == 0 && stalled.CompareAndSwap(false, true) {
			time.Sleep(20 * time.Millisecond)
		}
	}
	defer func() { p.ChunkDelay = nil }()
	hits := make([]int32, n)
	executedBy := make([]int32, p.NumChunks(n))
	p.StealRange(n, func(worker, chunk, lo, hi int) {
		atomic.StoreInt32(&executedBy[chunk], int32(worker))
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times under skew", i, h)
		}
	}
	// Worker 0 owned the first chunksPerWorker chunks; with its first
	// chunk stalled 20ms the other workers must have taken some of them.
	stolen := 0
	for chunk := 1; chunk < chunksPerWorker; chunk++ {
		if executedBy[chunk] != 0 {
			stolen++
		}
	}
	if stolen == 0 {
		t.Error("no chunk of the stalled worker was stolen")
	}
}

// TestReduceNoAllocSteadyState checks that the reduction helpers stop
// allocating per call on the paths the churn epoch loop hits every
// round: the single-worker pool, and the inline small-range path of a
// multi-worker pool (range < worker count — the case where per-worker
// accumulators used to be sized regardless). The parallel wide-range
// path inherently allocates goroutine closures, but its per-worker
// accumulator slices must be reused after the first call.
func TestReduceNoAllocSteadyState(t *testing.T) {
	reduce := func(p *Pool, n int) {
		p.ReduceInt64(n, func(_, lo, hi int) int64 { return int64(hi - lo) })
		p.ReduceMaxFloat64(n, 0, func(_, lo, hi int) float64 { return float64(hi) })
	}
	single := NewPool(1)
	if avg := testing.AllocsPerRun(20, func() { reduce(single, 1000) }); avg > 0 {
		t.Errorf("single-worker reductions allocate %.1f objects per call", avg)
	}
	small := NewPool(4)
	if avg := testing.AllocsPerRun(20, func() { reduce(small, 3) }); avg > 0 {
		t.Errorf("small-range reductions allocate %.1f objects per call", avg)
	}
	wide := NewPool(4)
	reduce(wide, 1000) // first call allocates the reusable accumulators
	base := testing.AllocsPerRun(20, func() { wide.ParallelRange(1000, func(_, _, _ int) {}) })
	got := testing.AllocsPerRun(20, func() { reduce(wide, 1000) })
	// Two reductions ≈ two ParallelRange invocations' goroutine overhead
	// plus one callback closure each — but no per-call accumulator
	// slices (which would add two more).
	if got > 2*base+2 {
		t.Errorf("wide-range reductions allocate %.1f objects per call (ParallelRange alone: %.1f)", got, base)
	}
}
