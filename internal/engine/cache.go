package engine

import (
	"os"
	"strconv"
	"strings"
	"sync"
)

// CacheInfo describes the cache hierarchy the autotuner sizes its shard
// windows against. Sizes are in bytes; zero means unknown.
type CacheInfo struct {
	// L2 is the per-core mid-level cache — the level the sharded round
	// pipeline blocks its fold windows to, since it is the largest cache
	// that is private (not shared with sibling cores that may be running
	// other trials).
	L2 int
	// LLC is the last-level cache. On shared VMs sysfs reports the whole
	// socket's LLC regardless of how many cores the guest actually owns,
	// so tuning decisions key on L2 and treat LLC as advisory only.
	LLC int
}

// defaultCacheInfo is the fallback when the probe finds nothing (non-
// Linux, sysfs unavailable): a conservative small L2 so the tuner shards
// earlier rather than later — oversharding costs a few percent, blowing
// the cache costs integer factors.
var defaultCacheInfo = CacheInfo{L2: 256 << 10, LLC: 8 << 20}

var (
	cacheOnce   sync.Once
	cacheProbed CacheInfo
)

// DetectCache probes the cache hierarchy once per process and caches the
// result. The probe reads the Linux sysfs cpu0 cache directory (static
// files; no measurement loop), so it is cheap, deterministic for the
// lifetime of the machine, and degrades to a fixed conservative default
// where sysfs is absent. Autotuned knobs are therefore a pure function
// of (instance, probe) — the property TestAutotuneDeterminism pins.
func DetectCache() CacheInfo {
	cacheOnce.Do(func() {
		cacheProbed = probeSysfsCache("/sys/devices/system/cpu/cpu0/cache")
	})
	return cacheProbed
}

// probeSysfsCache reads the per-level size files under dir (one index*
// subdirectory per cache). Unified/data caches only; the largest level-2
// size wins L2 and the largest deeper level wins LLC.
func probeSysfsCache(dir string) CacheInfo {
	info := defaultCacheInfo
	entries, err := os.ReadDir(dir)
	if err != nil {
		return info
	}
	foundL2, foundLLC := 0, 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "index") {
			continue
		}
		base := dir + "/" + e.Name()
		typ, err := os.ReadFile(base + "/type")
		if err != nil {
			continue
		}
		switch strings.TrimSpace(string(typ)) {
		case "Unified", "Data":
		default:
			continue
		}
		level := readSysfsInt(base + "/level")
		size := readSysfsSize(base + "/size")
		if size <= 0 {
			continue
		}
		switch {
		case level == 2 && size > foundL2:
			foundL2 = size
		case level > 2 && size > foundLLC:
			foundLLC = size
		}
	}
	if foundL2 > 0 {
		info.L2 = foundL2
	}
	if foundLLC > 0 {
		info.LLC = foundLLC
	}
	return info
}

func readSysfsInt(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return 0
	}
	return v
}

// readSysfsSize parses sysfs cache sizes of the form "48K", "2048K",
// "16M" (or a bare byte count) into bytes.
func readSysfsSize(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	s := strings.TrimSpace(string(b))
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 0
	}
	return v * mult
}
