package engine

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRouterGeometry(t *testing.T) {
	for _, target := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, size := range []int{1, 2, 7, 16, 100, 1000, 1 << 16, 1<<16 + 1} {
			rt := NewRouter(3, target, size)
			if size >= target {
				if rt.Shards() < target || rt.Shards() > 2*target {
					t.Fatalf("target=%d size=%d: %d shards outside [target, 2·target]",
						target, size, rt.Shards())
				}
			}
			// Every cell must map to a valid shard, and the mapping must be
			// contiguous and non-decreasing.
			last := 0
			for _, i := range []int32{0, int32(size / 2), int32(size - 1)} {
				s := rt.ShardOf(i)
				if s < 0 || s >= rt.Shards() {
					t.Fatalf("target=%d size=%d: cell %d maps to shard %d of %d",
						target, size, i, s, rt.Shards())
				}
				if s < last {
					t.Fatalf("target=%d size=%d: shard mapping not monotone", target, size)
				}
				last = s
			}
		}
	}
}

// stampedTally builds a stamped Tally of the given size, the mode
// FoldShard requires.
func stampedTally(size int) *Tally {
	ta := NewTally(NewPool(1), size)
	ta.BeginStamped()
	return ta
}

// TestRouterFoldMatchesDense drives random routed rounds through
// FoldShard on a stamped tally and checks counts and touched lists
// against a plain dense accumulation. Between rounds only StampedReset
// runs — the counts are never zeroed, which is exactly the stale-value
// situation the epoch stamps must mask.
func TestRouterFoldMatchesDense(t *testing.T) {
	const size = 500
	const workers = 3
	rt := NewRouter(workers, 4, size)
	ta := stampedTally(size)
	src := rng.New(7)
	for round := 0; round < 5; round++ {
		rt.ResetLanes()
		adds := make([]int32, 0, 300)
		for k := 0; k < 100+round*50; k++ {
			adds = append(adds, int32(src.Intn(size)))
		}
		for k, i := range adds {
			lanes := rt.Lanes(k % workers)
			s := int(i) >> rt.Shift()
			lanes[s] = append(lanes[s], i)
		}
		ref := denseReference(size, adds)
		var touchedTotal int
		for s := 0; s < rt.Shards(); s++ {
			touched := rt.FoldShard(s, ta)
			touchedTotal += len(touched)
			seen := make(map[int32]bool, len(touched))
			for _, i := range touched {
				if seen[i] {
					t.Fatalf("round %d shard %d: cell %d twice in touched", round, s, i)
				}
				seen[i] = true
				if rt.ShardOf(i) != s {
					t.Fatalf("round %d: cell %d in shard %d's touched list, owned by %d",
						round, i, s, rt.ShardOf(i))
				}
			}
		}
		distinct := 0
		for i := int32(0); i < size; i++ {
			if got := ta.ReceivedAt(i); got != ref[i] {
				t.Fatalf("round %d: ReceivedAt(%d) = %d, want %d", round, i, got, ref[i])
			}
			if ref[i] > 0 {
				distinct++
			}
		}
		if touchedTotal != distinct {
			t.Fatalf("round %d: %d touched cells, want %d", round, touchedTotal, distinct)
		}
		ta.StampedReset()
		for i := int32(0); i < size; i++ {
			if got := ta.ReceivedAt(i); got != 0 {
				t.Fatalf("round %d: ReceivedAt(%d) = %d after StampedReset", round, i, got)
			}
		}
	}
}

func TestRouterDiscard(t *testing.T) {
	rt := NewRouter(2, 2, 64)
	ta := stampedTally(64)
	pool := NewPool(2)
	lanes := rt.Lanes(0)
	for _, i := range []int32{1, 1, 40, 63} {
		lanes[rt.ShardOf(i)] = append(lanes[rt.ShardOf(i)], i)
	}
	for s := 0; s < rt.Shards(); s++ {
		rt.FoldShard(s, ta)
	}
	// Simulate the early-exit path: the tally is fully reset (an epoch
	// advance in stamped mode), the Router is discarded, and the next
	// round must start clean.
	ta.FullReset(pool)
	if !ta.IsStamped() {
		t.Fatal("FullReset dropped stamped mode")
	}
	rt.Discard()
	rt.ResetLanes()
	for s := 0; s < rt.Shards(); s++ {
		if got := rt.FoldShard(s, ta); len(got) != 0 {
			t.Fatalf("shard %d folded %v after Discard", s, got)
		}
	}
	for i := int32(0); i < 64; i++ {
		if got := ta.ReceivedAt(i); got != 0 {
			t.Fatalf("ReceivedAt(%d) = %d after Discard + empty fold", i, got)
		}
	}
}

// Property: folded counts are independent of the worker count and the
// target shard count.
func TestQuickRouterInvariance(t *testing.T) {
	f := func(seed uint64, wRaw, tRaw, sizeRaw uint8) bool {
		workers := 1 + int(wRaw%6)
		target := 1 + int(tRaw%9)
		size := 16 + int(sizeRaw)
		rt := NewRouter(workers, target, size)
		ta := stampedTally(size)
		src := rng.New(seed)
		adds := make([]int32, src.Intn(4*size))
		for k := range adds {
			adds[k] = int32(src.Intn(size))
			lanes := rt.Lanes(k % workers)
			s := int(adds[k]) >> rt.Shift()
			lanes[s] = append(lanes[s], adds[k])
		}
		for s := 0; s < rt.Shards(); s++ {
			rt.FoldShard(s, ta)
		}
		ref := denseReference(size, adds)
		for i := range ref {
			if ta.ReceivedAt(int32(i)) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
