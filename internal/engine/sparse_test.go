package engine

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// denseReference accumulates the same add sequence into a plain slice.
func denseReference(size int, adds []int32) []int32 {
	ref := make([]int32, size)
	for _, i := range adds {
		ref[i]++
	}
	return ref
}

func TestSparseTallyMatchesDense(t *testing.T) {
	const size = 1000
	p := NewPool(4)
	ta := NewTally(p, size)
	ta.BeginSparse()

	src := rng.New(42)
	for round := 0; round < 5; round++ {
		// Touch a small random subset, with repeats, spread over workers.
		adds := make([]int32, 0, 64)
		for k := 0; k < 64; k++ {
			adds = append(adds, int32(src.Intn(size/10)))
		}
		for k, i := range adds {
			ta.SparseAdd(k%p.Workers(), i)
		}
		touched := ta.SparseMerge()
		ref := denseReference(size, adds)

		// Every touched cell must carry its reference count and every
		// untouched cell must read zero.
		seen := make(map[int32]bool, len(touched))
		for _, i := range touched {
			if seen[i] {
				t.Fatalf("round %d: cell %d appears twice in the touched list", round, i)
			}
			seen[i] = true
		}
		for i := int32(0); i < size; i++ {
			if got := ta.ReceivedAt(i); got != ref[i] {
				t.Fatalf("round %d: ReceivedAt(%d) = %d, want %d", round, i, got, ref[i])
			}
			if ref[i] > 0 && !seen[i] {
				t.Fatalf("round %d: cell %d has count %d but is missing from touched", round, i, ref[i])
			}
			if ref[i] == 0 && seen[i] {
				t.Fatalf("round %d: untouched cell %d is in the touched list", round, i)
			}
		}
		ta.SparseReset()
	}
}

func TestSparseTallyResetIsCheapAndComplete(t *testing.T) {
	p := NewPool(2)
	ta := NewTally(p, 100)
	ta.BeginSparse()
	ta.SparseAdd(0, 7)
	ta.SparseAdd(1, 7)
	ta.SparseAdd(0, 9)
	touched := ta.SparseMerge()
	if len(touched) != 2 {
		t.Fatalf("touched = %v, want 2 distinct cells", touched)
	}
	if ta.ReceivedAt(7) != 2 || ta.ReceivedAt(9) != 1 {
		t.Fatalf("merged counts wrong: %d, %d", ta.ReceivedAt(7), ta.ReceivedAt(9))
	}
	ta.SparseReset()
	// After reset every cell must read zero without any buffer having been
	// zeroed (the stale values are invalidated by the epoch).
	for i := int32(0); i < 100; i++ {
		if ta.ReceivedAt(i) != 0 {
			t.Fatalf("ReceivedAt(%d) = %d after SparseReset", i, ta.ReceivedAt(i))
		}
	}
	if got := ta.SparseMerge(); len(got) != 0 {
		t.Fatalf("SparseMerge after reset returned %v", got)
	}
}

func TestTallyFullResetRestoresDenseMode(t *testing.T) {
	p := NewPool(3)
	ta := NewTally(p, 50)
	ta.BeginSparse()
	ta.SparseAdd(0, 3)
	ta.SparseAdd(2, 3)
	ta.SparseMerge()
	ta.FullReset(p)
	if ta.IsSparse() {
		t.Fatal("tally still sparse after FullReset")
	}
	// Dense adds on the freshly reset tally must see clean buffers even at
	// cells the sparse phase dirtied.
	ta.Local(1)[3] += 5
	merged := ta.Merge(p)
	if merged[3] != 5 {
		t.Fatalf("merged[3] = %d after FullReset + dense add, want 5", merged[3])
	}
	for i, v := range merged {
		if i != 3 && v != 0 {
			t.Fatalf("merged[%d] = %d, want 0", i, v)
		}
	}
}

func TestTallyDenseToSparseHandoff(t *testing.T) {
	// A dense round followed by Reset, then sparse rounds: the pattern the
	// protocol uses when crossing the density threshold mid-run.
	p := NewPool(2)
	ta := NewTally(p, 20)
	ta.Local(0)[4]++
	ta.Local(1)[4]++
	if got := ta.Merge(p)[4]; got != 2 {
		t.Fatalf("dense merged[4] = %d, want 2", got)
	}
	ta.Reset(p)
	ta.BeginSparse()
	ta.SparseAdd(0, 4)
	ta.SparseMerge()
	if got := ta.ReceivedAt(4); got != 1 {
		t.Fatalf("sparse ReceivedAt(4) = %d, want 1", got)
	}
}

// Property: for random add sequences and worker counts, the sparse path's
// merged counts equal the dense reference.
func TestQuickSparseTallyEquivalence(t *testing.T) {
	f := func(seed uint64, wRaw, sizeRaw uint8) bool {
		workers := 1 + int(wRaw%8)
		size := 16 + int(sizeRaw)
		p := NewPool(workers)
		ta := NewTally(p, size)
		ta.BeginSparse()
		src := rng.New(seed)
		for round := 0; round < 3; round++ {
			count := src.Intn(3 * size)
			adds := make([]int32, count)
			for k := range adds {
				adds[k] = int32(src.Intn(size))
				ta.SparseAdd(src.Intn(workers), adds[k])
			}
			ta.SparseMerge()
			ref := denseReference(size, adds)
			for i := int32(0); i < int32(size); i++ {
				if ta.ReceivedAt(i) != ref[i] {
					return false
				}
			}
			ta.SparseReset()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
