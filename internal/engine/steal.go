package engine

import (
	"sync"
	"sync/atomic"
)

// The chunked work-stealing scheduler. ParallelRange's static one-shard-
// per-worker split is optimal when every index costs the same, but the
// round loop's late phases are skewed: a sparse round's frontier is tiny
// and unevenly expensive (row regeneration, burned-neighborhood scans),
// and a churned topology concentrates the surviving work on whichever
// clients kept their balls. A static split then leaves workers idle
// behind one straggler. StealRange instead over-decomposes [0, n) into
// cache-line-multiple chunks, deals them contiguously onto per-worker
// deques, and lets idle workers steal half of a victim's remaining
// chunks, so the phase finishes when the *work* runs out, not when the
// slowest static shard does.
//
// Determinism contract: which worker executes a chunk is scheduling-
// dependent, so a callback may only produce (a) per-chunk outputs
// indexed by the chunk number — chunk boundaries are a pure function of
// (n, grain, worker count), and concatenating per-chunk outputs in chunk
// index order is identical for every steal schedule — or (b) per-worker
// accumulations whose fold is exact and order-independent (integer
// sums, maxima). The protocol phases in internal/core use exactly these
// two shapes, which is what keeps results bit-for-bit identical across
// worker counts AND steal schedules (the steal-schedule equivalence
// suite pins it).

// ChunkAlign is the chunk-size granule of StealRange: 64 entities, i.e.
// 256 bytes of int32 payload — a cache-line multiple, so two workers
// never write the same line of a chunk-partitioned entity array.
const ChunkAlign = 64

// chunksPerWorker over-decomposes the range so deques have something to
// steal: 8 chunks per worker bounds the post-steal imbalance at ~1/8 of
// a worker's share while keeping the per-chunk scheduling overhead (one
// CAS) negligible against chunk execution.
const chunksPerWorker = 8

// chunkDeque is one worker's queue of pending chunks. Because chunks
// are dealt as one contiguous interval and steals take half of an
// interval, the queue is always an interval [lo, hi) of chunk indices,
// packed into a single atomic word (hi<<32 | lo): the owner pops lo
// with one CAS, a thief splits off the top half with one CAS, and no
// ABA hazard exists because intervals only ever shrink between resets.
// Padded to a cache line so deques of adjacent workers don't false-share.
type chunkDeque struct {
	state atomic.Uint64
	_     [56]byte
}

func packInterval(lo, hi int) uint64 { return uint64(hi)<<32 | uint64(uint32(lo)) }

func unpackInterval(s uint64) (lo, hi int) { return int(uint32(s)), int(s >> 32) }

func (d *chunkDeque) reset(lo, hi int) { d.state.Store(packInterval(lo, hi)) }

// pop takes the bottom chunk of the deque.
func (d *chunkDeque) pop() (chunk int, ok bool) {
	for {
		s := d.state.Load()
		lo, hi := unpackInterval(s)
		if lo >= hi {
			return 0, false
		}
		if d.state.CompareAndSwap(s, packInterval(lo+1, hi)) {
			return lo, true
		}
	}
}

// stealHalf splits off the top half (rounded up) of the deque's
// remaining interval, leaving the bottom half to the owner.
func (d *chunkDeque) stealHalf() (lo, hi int, ok bool) {
	for {
		s := d.state.Load()
		vlo, vhi := unpackInterval(s)
		if vlo >= vhi {
			return 0, 0, false
		}
		mid := vlo + (vhi-vlo)/2
		if d.state.CompareAndSwap(s, packInterval(vlo, mid)) {
			return mid, vhi, true
		}
	}
}

// chunkSpan returns the chunk width used to split [0, n): the range is
// cut into about chunksPerWorker chunks per worker, rounded up to a
// multiple of grain. A pure function of (n, grain, workers) — chunk
// boundaries never depend on the steal schedule.
func (p *Pool) chunkSpan(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	target := (n + p.workers*chunksPerWorker - 1) / (p.workers * chunksPerWorker)
	span := (target + grain - 1) / grain * grain
	if span < grain {
		span = grain
	}
	return span
}

// NumChunks returns how many chunks StealRange splits [0, n) into.
// Callers sizing chunk-indexed output buffers use it; like the chunk
// boundaries it is a pure function of (n, workers).
func (p *Pool) NumChunks(n int) int { return p.NumChunksGrain(n, ChunkAlign) }

// NumChunksGrain is NumChunks with an explicit size granule (grain 1
// for ranges of heavyweight items such as router shards, where
// cache-line alignment of the index space is meaningless).
func (p *Pool) NumChunksGrain(n, grain int) int {
	if n <= 0 {
		return 0
	}
	span := p.chunkSpan(n, grain)
	return (n + span - 1) / span
}

// StealRange runs fn over [0, n) split into ChunkAlign-multiple chunks
// scheduled by work stealing: chunks are dealt contiguously onto
// per-worker deques and idle workers steal half of a victim's remaining
// interval. fn(worker, chunk, lo, hi) receives both the executing
// worker's index (valid for worker-indexed scratch: one goroutine per
// index, chunks of one worker run sequentially) and the chunk index
// (valid for chunk-indexed outputs; see the determinism contract above).
func (p *Pool) StealRange(n int, fn func(worker, chunk, lo, hi int)) {
	p.StealRangeGrain(n, ChunkAlign, fn)
}

// StealRangeGrain is StealRange with an explicit chunk-size granule.
func (p *Pool) StealRangeGrain(n, grain int, fn func(worker, chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	span := p.chunkSpan(n, grain)
	numChunks := (n + span - 1) / span
	run := func(worker, chunk int) {
		if p.ChunkDelay != nil {
			p.ChunkDelay(worker, chunk)
		}
		lo := chunk * span
		hi := min(lo+span, n)
		fn(worker, chunk, lo, hi)
	}
	if p.workers == 1 || numChunks == 1 {
		for c := 0; c < numChunks; c++ {
			run(0, c)
		}
		return
	}
	if p.deques == nil {
		p.deques = make([]chunkDeque, p.workers)
	}
	// Initial deal: contiguous chunk intervals, at most one apart in
	// size — the same split ParallelRange would use over chunk indices.
	for w := 0; w < p.workers; w++ {
		per := numChunks / p.workers
		rem := numChunks % p.workers
		lo := w*per + min(w, rem)
		size := per
		if w < rem {
			size++
		}
		p.deques[w].reset(lo, lo+size)
	}
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := &p.deques[w]
			for {
				c, ok := own.pop()
				if !ok {
					if !p.stealInto(w) {
						// Every deque scanned empty. Chunks still in
						// flight are owned by the workers executing
						// them, so exiting loses no work.
						return
					}
					continue
				}
				run(w, c)
			}
		}(w)
	}
	wg.Wait()
}

// stealInto scans the other workers' deques round-robin from w+1 and
// moves half of the first non-empty victim's interval onto w's (empty)
// deque. Reports whether anything was stolen.
func (p *Pool) stealInto(w int) bool {
	for off := 1; off < p.workers; off++ {
		victim := &p.deques[(w+off)%p.workers]
		if lo, hi, ok := victim.stealHalf(); ok {
			p.deques[w].reset(lo, hi)
			p.Steals.Inc(w)
			return true
		}
	}
	p.StealFails.Inc(w)
	return false
}
