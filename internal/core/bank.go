package core

import (
	"fmt"
	"sort"
)

// RoundDecision is a server bank's phase-2 answer for one round: which
// servers accepted the round's requests, which newly burned, and how
// many saturated (rejected while not burned). When the round's touched
// list is sorted ascending — the Driver's contract — both output lists
// are sorted ascending too.
type RoundDecision struct {
	// Accepted lists the servers that accepted this round's requests
	// (SAER: received without exceeding the cumulative threshold; RAES:
	// load stayed within capacity).
	Accepted []int32
	// NewlyBurned lists the servers that crossed the cumulative
	// received threshold this round (SAER: burned for good; RAES:
	// diagnostic only — see Result.BurnedServers).
	NewlyBurned []int32
	// Saturated counts the servers that rejected the round while not
	// burned (RAES saturation; for SAER it equals len(NewlyBurned)).
	Saturated int
}

// ServerBank is the transport-agnostic server side of the protocol: the
// phase-B threshold decisions, abstracted away from *where* the server
// state lives. The in-process LocalBank applies the rules directly; the
// wire client (internal/wire) implements the same interface by sending
// batched round frames to remote server-shard processes. The Driver is
// the client side that runs the full protocol against any bank, and its
// results are bit-for-bit those of core.Run — the interface carries
// per-round (server, count) batches, not per-ball messages, which is
// what makes the wire transport viable at millions of balls.
//
// Per-run server state is rebuilt by Reset, so a bank is reusable
// across trials and epochs (the churn scheduler's executors rely on
// exactly that: a restarted server process is indistinguishable from a
// recovered one).
type ServerBank interface {
	// Reset re-initializes every server for a new run. initialLoads
	// pre-loads the servers (nil = all zero; otherwise one entry per
	// server): a server starting at or beyond the capacity is burned
	// from the start, matching Options.InitialLoads semantics.
	Reset(initialLoads []int) error
	// DecideRound applies the variant's threshold rule to one round's
	// received batch: touched lists the servers that received requests
	// this round, sorted ascending without duplicates, and counts[i] is
	// the number of requests touched[i] received. Servers not listed
	// received nothing and must not change state.
	DecideRound(touched, counts []int32) (RoundDecision, error)
	// Loads returns the per-server accepted load vector (all servers).
	Loads() ([]int32, error)
	// Close releases the bank's resources (network connections for
	// remote banks; a no-op locally).
	Close() error
}

// ServerShard is the protocol's server-side state for a contiguous
// server window [Lo, Hi): the single authoritative implementation of
// the SAER/RAES threshold rules outside the Runner's fused round loop.
// The in-process LocalBank composes shards directly; the wire server
// process wraps one shard per listener. Methods are not concurrency-
// safe — each shard is owned by one goroutine (or one process).
type ServerShard struct {
	variant  Variant
	capacity int32
	lo, hi   int

	load          []int32
	receivedTotal []int32
	burned        []bool
	burnedCount   int
}

// NewServerShard returns the server state for window [lo, hi).
func NewServerShard(variant Variant, capacity int32, lo, hi int) (*ServerShard, error) {
	if variant != SAER && variant != RAES {
		return nil, fmt.Errorf("core: unknown protocol variant %d", int(variant))
	}
	if capacity < 1 {
		return nil, fmt.Errorf("core: shard capacity must be at least 1, got %d", capacity)
	}
	if lo < 0 || hi <= lo {
		return nil, fmt.Errorf("core: invalid shard window [%d, %d)", lo, hi)
	}
	n := hi - lo
	return &ServerShard{
		variant:       variant,
		capacity:      capacity,
		lo:            lo,
		hi:            hi,
		load:          make([]int32, n),
		receivedTotal: make([]int32, n),
		burned:        make([]bool, n),
	}, nil
}

// Window returns the shard's server index range [lo, hi).
func (s *ServerShard) Window() (lo, hi int) { return s.lo, s.hi }

// Reset re-initializes the shard's servers. initialLoads holds the
// shard-local window (length hi-lo) of the run's initial loads; nil
// means all zero.
func (s *ServerShard) Reset(initialLoads []int32) error {
	if initialLoads != nil && len(initialLoads) != s.hi-s.lo {
		return fmt.Errorf("core: shard [%d,%d) reset with %d initial loads", s.lo, s.hi, len(initialLoads))
	}
	s.burnedCount = 0
	for i := range s.load {
		var l int32
		if initialLoads != nil && initialLoads[i] > 0 {
			l = initialLoads[i]
		}
		s.load[i] = l
		s.receivedTotal[i] = l
		// A server already at (or beyond) capacity can never accept
		// another ball: under SAER it is burned from the start and under
		// RAES the acceptance test always fails; marking it burned keeps
		// the diagnostic series consistent (Runner.resetState's rule).
		s.burned[i] = l >= s.capacity
	}
	return nil
}

// Decide applies the variant's threshold rule to the shard's slice of
// one round's batch: touched must lie inside the window, sorted
// ascending without duplicates, counts parallel to it. Accepted and
// newly-burned servers are appended to the provided slices (preserving
// input order) and returned with the saturation count.
func (s *ServerShard) Decide(touched, counts []int32, accepted, newlyBurned []int32) (acc, nb []int32, saturated int, err error) {
	if len(touched) != len(counts) {
		return accepted, newlyBurned, 0, fmt.Errorf("core: shard decide with %d touched but %d counts", len(touched), len(counts))
	}
	for i, u := range touched {
		if int(u) < s.lo || int(u) >= s.hi {
			return accepted, newlyBurned, saturated, fmt.Errorf("core: server %d outside shard window [%d, %d)", u, s.lo, s.hi)
		}
		recv := counts[i]
		if recv <= 0 {
			return accepted, newlyBurned, saturated, fmt.Errorf("core: server %d touched with count %d", u, recv)
		}
		j := int(u) - s.lo
		s.receivedTotal[j] += recv
		switch s.variant {
		case SAER:
			if s.burned[j] {
				// A burned server rejects everything; not a new
				// saturation event.
				continue
			}
			if s.receivedTotal[j] > s.capacity {
				s.burned[j] = true
				s.burnedCount++
				newlyBurned = append(newlyBurned, u)
				saturated++
				continue
			}
			s.load[j] += recv
			accepted = append(accepted, u)
		default: // RAES
			if !s.burned[j] && s.receivedTotal[j] > s.capacity {
				// Diagnostic only: the server would be burned under
				// SAER's stronger rule; RAES itself keeps going.
				s.burned[j] = true
				s.burnedCount++
				newlyBurned = append(newlyBurned, u)
			}
			if s.load[j]+recv > s.capacity {
				saturated++
				continue
			}
			s.load[j] += recv
			accepted = append(accepted, u)
		}
	}
	return accepted, newlyBurned, saturated, nil
}

// Loads returns the shard's accepted load window (aliasing; read-only).
func (s *ServerShard) Loads() []int32 { return s.load }

// BurnedCount returns how many of the shard's servers are burned.
func (s *ServerShard) BurnedCount() int { return s.burnedCount }

// LocalBank is the in-process ServerBank: the shards live in this
// process and decisions are applied directly. It is the reference
// implementation the wire transport is tested against, and the
// single-process way to run the Driver (netsim-style executions, the
// wire aggregator's cross-checks).
type LocalBank struct {
	shards []*ServerShard
	m      int
	loads  []int32
}

// NewLocalBank returns an in-process bank of `shards` contiguous server
// shards covering [0, m). Shard windows differ in size by at most one.
func NewLocalBank(variant Variant, capacity int32, m, shards int) (*LocalBank, error) {
	if m <= 0 {
		return nil, fmt.Errorf("core: bank needs at least one server, got %d", m)
	}
	if shards <= 0 || shards > m {
		shards = min(max(shards, 1), m)
	}
	b := &LocalBank{m: m, loads: make([]int32, m)}
	per, rem := m/shards, m%shards
	lo := 0
	for s := 0; s < shards; s++ {
		size := per
		if s < rem {
			size++
		}
		sh, err := NewServerShard(variant, capacity, lo, lo+size)
		if err != nil {
			return nil, err
		}
		b.shards = append(b.shards, sh)
		lo += size
	}
	return b, nil
}

// Shards returns the bank's shard count.
func (b *LocalBank) Shards() int { return len(b.shards) }

// Reset re-initializes every shard with its window of initialLoads.
func (b *LocalBank) Reset(initialLoads []int) error {
	if initialLoads != nil && len(initialLoads) != b.m {
		return fmt.Errorf("core: bank reset with %d initial loads for %d servers", len(initialLoads), b.m)
	}
	for _, sh := range b.shards {
		var window []int32
		if initialLoads != nil {
			lo, hi := sh.Window()
			window = make([]int32, hi-lo)
			for i, l := range initialLoads[lo:hi] {
				window[i] = int32(l)
			}
		}
		if err := sh.Reset(window); err != nil {
			return err
		}
	}
	return nil
}

// DecideRound splits the sorted batch across the shard windows and
// applies each shard's rule. Shard windows are contiguous ascending
// ranges, so concatenating the per-shard outputs in shard order keeps
// the decision lists sorted.
func (b *LocalBank) DecideRound(touched, counts []int32) (RoundDecision, error) {
	var dec RoundDecision
	if len(touched) != len(counts) {
		return dec, fmt.Errorf("core: round batch with %d touched but %d counts", len(touched), len(counts))
	}
	if !sort.SliceIsSorted(touched, func(i, j int) bool { return touched[i] < touched[j] }) {
		return dec, fmt.Errorf("core: round batch not sorted")
	}
	from := 0
	for _, sh := range b.shards {
		_, hi := sh.Window()
		to := from
		for to < len(touched) && int(touched[to]) < hi {
			to++
		}
		if to == from {
			continue
		}
		var err error
		dec.Accepted, dec.NewlyBurned, dec.Saturated, err = func() ([]int32, []int32, int, error) {
			acc, nb, sat, err := sh.Decide(touched[from:to], counts[from:to], dec.Accepted, dec.NewlyBurned)
			return acc, nb, dec.Saturated + sat, err
		}()
		if err != nil {
			return RoundDecision{}, err
		}
		from = to
	}
	if from != len(touched) {
		return RoundDecision{}, fmt.Errorf("core: server %d outside every shard window", touched[from])
	}
	return dec, nil
}

// Loads concatenates the shard load windows into the full vector.
func (b *LocalBank) Loads() ([]int32, error) {
	for _, sh := range b.shards {
		lo, hi := sh.Window()
		copy(b.loads[lo:hi], sh.Loads())
	}
	return b.loads, nil
}

// Close is a no-op for the in-process bank.
func (b *LocalBank) Close() error { return nil }
