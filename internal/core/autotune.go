package core

import "repro/internal/engine"

// AutotuneMode selects whether NewRunner derives unset performance knobs
// from the instance and the machine instead of static defaults.
type AutotuneMode int

const (
	// AutotuneOn (the default) fills every knob the caller left at zero
	// — Shards and SparseSwitchDivisor — from AutotuneKnobs. Explicitly
	// set knobs always win.
	AutotuneOn AutotuneMode = iota
	// AutotuneOff restores the static pre-tuner defaults: shards =
	// workers, divisor = 4.
	AutotuneOff
)

// StealMode selects the round loop's range scheduler.
type StealMode int

const (
	// StealAuto (the default) uses work stealing exactly when the run has
	// more than one worker; a single worker executes chunks in order, so
	// a deque would be pure overhead.
	StealAuto StealMode = iota
	// StealOn forces the work-stealing chunk scheduler even for one
	// worker (used by the equivalence suites to pin the schedule-
	// independence of results).
	StealOn
	// StealOff forces the static one-shard-per-worker split.
	StealOff
)

// TunedKnobs is the knob assignment AutotuneKnobs derives for one
// instance.
type TunedKnobs struct {
	// Shards is the target server-shard count of the routed round
	// pipeline (1 = unsharded).
	Shards int
	// SparseSwitchDivisor is EngineAuto's density threshold.
	SparseSwitchDivisor int
}

// AutotuneKnobs derives the routed pipeline's shard count and the sparse-
// switch divisor for an instance with n clients, maximum client degree
// delta, m servers, and the given worker count, sizing shard windows
// against the probed cache hierarchy. regenRows says whether client rows
// are regenerated per visit: implicit topologies *without* point-query
// support (bipartite.PointQueryable). Point-queryable implicit families
// and materialized CSR graphs both read draws in O(1), so they pass
// false.
//
// The function is pure: for fixed inputs it always returns the same
// knobs, so runs stay reproducible on a fixed machine, and every knob it
// picks is — like the explicit Options — bit-for-bit result-neutral.
// TestAutotuneDeterminism pins the table.
//
// The heuristics are calibrated on the measurements in PERFORMANCE.md:
//
//   - A fold window (one shard's counts + stamps, 8 B/cell) should fit
//     half of L2, leaving the rest for the route lanes streaming in.
//     Sharding on a single worker is pure cache blocking, so it only
//     pays once the whole tally outgrows L2 (measured: 6–8% loss at
//     m = 2¹⁸ where the tally just fits, 1.2× win at m = 2²⁰ where it
//     doesn't). Multi-worker runs always shard — phase-B parallelism —
//     and at least as finely as the cache asks.
//   - The shard count is capped so phase A still routes enough events
//     per shard for the fold loop to amortize (≥ ~256 clients' worth).
//   - The sparse switch leaves the dense scan earlier (divisor 2: switch
//     at 1/2 density instead of 1/4) when dense rounds are expensive
//     relative to the frontier walk: a tally past L2 streams DRAM every
//     round, and on *large* row-regenerating instances rows of large
//     degree cost Θ(Δ) to regenerate per visit — the earlier the run
//     goes sparse, the earlier the frontier row cache can pin the
//     survivors' rows. The regen rule existed solely because of that
//     tax: point-queryable implicit families (regular, trust-subset,
//     almost-regular) now draw in O(1) per ball, so their dense rounds
//     cost CSR-like work and they keep the default divisor — only the
//     sequential-sampler families (Erdős–Rényi) and churn under active
//     failures still pay Θ(Δ) and flee the dense scan early. The rule
//     stays gated on n ≥ 2¹⁶: below that the dense scan is cheap (tally
//     in L1/L2) and an earlier switch only buys frontier bookkeeping —
//     measured on E16's churn scenario (n = 2¹², Δ = 144), where the
//     ungated rule cost +37% wall-clock and re-snapshotted the row cache
//     every epoch (25 MB/epoch of garbage).
func AutotuneKnobs(n, delta, m, workers int, regenRows bool, cache engine.CacheInfo) TunedKnobs {
	// Bytes per tally cell in the stamped pipeline: 4 B count + 4 B
	// epoch stamp.
	const perCell = 8
	l2 := cache.L2
	if l2 <= 0 {
		l2 = 256 << 10
	}
	k := TunedKnobs{Shards: 1, SparseSwitchDivisor: defaultSparseSwitchDivisor}
	shardCells := l2 / 2 / perCell
	if shardCells < 1<<12 {
		shardCells = 1 << 12
	}
	tallyBytes := m * perCell
	switch {
	case workers > 1:
		k.Shards = max(workers, (m+shardCells-1)/shardCells)
	case tallyBytes > l2:
		k.Shards = (m + shardCells - 1) / shardCells
	}
	if maxShards := max(workers, n/256); k.Shards > maxShards {
		k.Shards = maxShards
	}
	if tallyBytes > l2 || (regenRows && delta >= 64 && n >= 1<<16) {
		k.SparseSwitchDivisor = 2
	}
	return k
}
