package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/rng"
)

// regularGraph builds a random ∆-regular bipartite graph for tests.
func regularGraph(t testing.TB, n, delta int, seed uint64) *bipartite.Graph {
	t.Helper()
	g, err := gen.Regular(n, delta, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSAERCompletesOnRegularGraph(t *testing.T) {
	n := 2048
	delta := 60 // about log²(2048) ≈ 58
	g := regularGraph(t, n, delta, 1)
	res, err := Run(g, SAER, Params{D: 2, C: 4, Seed: 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("SAER did not complete: %v", res)
	}
	if res.UnassignedBalls != 0 {
		t.Errorf("completed run reports %d unassigned balls", res.UnassignedBalls)
	}
	if !res.RespectsLoadBound() {
		t.Errorf("max load %d exceeds bound %d", res.MaxLoad, res.LoadBound())
	}
	if res.Rounds > DefaultMaxRounds(n) {
		t.Errorf("rounds %d exceed the default cap", res.Rounds)
	}
	// Every ball placed, so the mean load must be exactly n·d/m = d.
	if math.Abs(res.MeanLoad-2) > 1e-9 {
		t.Errorf("mean load %v, want 2", res.MeanLoad)
	}
	if res.Work != 2*res.TotalRequests {
		t.Errorf("work %d should be exactly twice the requests %d", res.Work, res.TotalRequests)
	}
	if res.TotalRequests < int64(n*2) {
		t.Errorf("total requests %d below the minimum n·d", res.TotalRequests)
	}
}

func TestRAESCompletesOnRegularGraph(t *testing.T) {
	n := 2048
	g := regularGraph(t, n, 60, 2)
	res, err := Run(g, RAES, Params{D: 2, C: 4, Seed: 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("RAES did not complete: %v", res)
	}
	if !res.RespectsLoadBound() {
		t.Errorf("max load %d exceeds bound %d", res.MaxLoad, res.LoadBound())
	}
}

func TestLoadNeverExceedsCapacity(t *testing.T) {
	// The cd cap is a hard protocol invariant for both variants, even with
	// small c where completion may fail.
	g := regularGraph(t, 512, 16, 3)
	for _, variant := range []Variant{SAER, RAES} {
		for _, c := range []float64{1, 1.5, 2, 4} {
			res, err := Run(g, variant, Params{D: 3, C: c, Seed: 11, MaxRounds: 100}, Options{TrackLoads: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.MaxLoad > res.LoadBound() {
				t.Errorf("%s c=%v: max load %d exceeds cap %d", variant, c, res.MaxLoad, res.LoadBound())
			}
			for u, l := range res.Loads {
				if l > res.LoadBound() {
					t.Errorf("%s c=%v: server %d load %d exceeds cap", variant, c, u, l)
				}
			}
		}
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	g := regularGraph(t, 1024, 40, 5)
	baseline := func(workers int) *Result {
		res, err := Run(g, SAER, Params{D: 2, C: 4, Seed: 99, Workers: workers}, Options{TrackRounds: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := baseline(1)
	for _, workers := range []int{2, 3, 4, 8} {
		got := baseline(workers)
		if got.Rounds != ref.Rounds || got.TotalRequests != ref.TotalRequests ||
			got.MaxLoad != ref.MaxLoad || got.BurnedServers != ref.BurnedServers {
			t.Fatalf("workers=%d: result differs from single-worker run:\n  ref=%v\n  got=%v", workers, ref, got)
		}
		if len(got.PerRound) != len(ref.PerRound) {
			t.Fatalf("workers=%d: per-round series lengths differ", workers)
		}
		for i := range got.PerRound {
			if got.PerRound[i] != ref.PerRound[i] {
				t.Fatalf("workers=%d: round %d stats differ: %+v vs %+v", workers, i+1, got.PerRound[i], ref.PerRound[i])
			}
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := regularGraph(t, 512, 30, 8)
	a, err := Run(g, RAES, Params{D: 2, C: 4, Seed: 123}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, RAES, Params{D: 2, C: 4, Seed: 123}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.TotalRequests != b.TotalRequests || a.MaxLoad != b.MaxLoad {
		t.Fatalf("identical seeds gave different results: %v vs %v", a, b)
	}
	c, err := Run(g, RAES, Params{D: 2, C: 4, Seed: 124}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalRequests == c.TotalRequests && a.Rounds == c.Rounds && a.MaxLoad == c.MaxLoad && a.BurnedServers == c.BurnedServers {
		t.Log("warning: different seeds gave identical summary (possible but unlikely)")
	}
}

func TestCompleteGraphIsEasy(t *testing.T) {
	// On the complete bipartite graph (the dense regime) both protocols
	// must terminate very quickly: with c ≥ 4 only a vanishing fraction of
	// servers ever burns.
	g, err := gen.Complete(400, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []Variant{SAER, RAES} {
		res, err := Run(g, variant, Params{D: 2, C: 4, Seed: 3}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%s did not complete on the complete graph", variant)
		}
		if res.Rounds > 10 {
			t.Errorf("%s took %d rounds on the complete graph; expected just a few", variant, res.Rounds)
		}
	}
}

func TestTinyCFailsGracefully(t *testing.T) {
	// With capacity exactly d (c=1) and d=4 balls per client the servers
	// can just barely hold the load in aggregate; SAER typically burns too
	// many servers to finish on a sparse graph. Whatever happens, the run
	// must stop, respect the cap and report a consistent state.
	g := regularGraph(t, 256, 12, 13)
	res, err := Run(g, SAER, Params{D: 4, C: 1, Seed: 5, MaxRounds: 200}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad > res.LoadBound() {
		t.Errorf("max load %d exceeds cap %d", res.MaxLoad, res.LoadBound())
	}
	if res.Completed && res.UnassignedBalls != 0 {
		t.Error("inconsistent completion state")
	}
	if !res.Completed && res.UnassignedBalls == 0 {
		t.Error("inconsistent completion state")
	}
	if res.Rounds > 200 {
		t.Errorf("rounds %d exceed the configured cap", res.Rounds)
	}
}

func TestStarvedClientDetected(t *testing.T) {
	// A 1-regular graph with d=2, c=1 (capacity 2): each client has a
	// single admissible server which receives 2 requests in round 1 and,
	// depending on the variant, may be pushed over the threshold by round
	// 2 duplicates. Construct the worst case directly: two clients share
	// one server; the server can hold at most 2 of their 4 balls, so under
	// SAER it burns and both clients starve.
	b := bipartite.NewBuilder(2, 2)
	b.AddEdge(0, 0).AddEdge(1, 0)
	// Server 1 is only reachable by nobody; give it a token client edge to
	// keep the graph valid for client 1? No: clients 0 and 1 both point at
	// server 0 only.
	g, err := b.Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, SAER, Params{D: 2, C: 1, Seed: 1, MaxRounds: 50}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run should not be able to complete: 4 balls, capacity 2, single server")
	}
	if res.Rounds >= 50 {
		t.Errorf("starvation should be detected before the round cap, took %d rounds", res.Rounds)
	}
	if res.MaxLoad > 2 {
		t.Errorf("max load %d exceeds capacity 2", res.MaxLoad)
	}
}

func TestPerRoundTracking(t *testing.T) {
	g := regularGraph(t, 512, 40, 21)
	res, err := Run(g, SAER, Params{D: 2, C: 4, Seed: 9}, Options{TrackRounds: true, TrackNeighborhoods: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRound) != res.Rounds {
		t.Fatalf("per-round series has %d entries for %d rounds", len(res.PerRound), res.Rounds)
	}
	prevAlive := 512 * 2
	totalAccepted := 0
	for i, st := range res.PerRound {
		if st.Round != i+1 {
			t.Errorf("round index %d at position %d", st.Round, i)
		}
		if st.AliveBalls != prevAlive {
			t.Errorf("round %d: alive %d, want %d (previous alive minus accepted)", st.Round, st.AliveBalls, prevAlive)
		}
		if st.RequestsSent != st.AliveBalls {
			t.Errorf("round %d: requests sent %d != alive balls %d", st.Round, st.RequestsSent, st.AliveBalls)
		}
		if st.RequestsAccepted > st.RequestsSent {
			t.Errorf("round %d: accepted %d > sent %d", st.Round, st.RequestsAccepted, st.RequestsSent)
		}
		if st.MaxNeighborhoodBurnedFrac < 0 || st.MaxNeighborhoodBurnedFrac > 1 {
			t.Errorf("round %d: S_t = %v outside [0,1]", st.Round, st.MaxNeighborhoodBurnedFrac)
		}
		if st.MaxNeighborhoodReceived < 0 {
			t.Errorf("round %d: negative r_t", st.Round)
		}
		if i > 0 && st.BurnedTotal < res.PerRound[i-1].BurnedTotal {
			t.Errorf("round %d: burned total decreased", st.Round)
		}
		prevAlive = st.AliveBalls - st.RequestsAccepted
		totalAccepted += st.RequestsAccepted
	}
	if res.Completed && totalAccepted != 512*2 {
		t.Errorf("accepted %d balls in total, want %d", totalAccepted, 512*2)
	}
	// K_t must be non-decreasing and S_t <= K_t (equation (3) in the paper).
	for i := 1; i < len(res.PerRound); i++ {
		if res.PerRound[i].MaxKt+1e-12 < res.PerRound[i-1].MaxKt {
			t.Errorf("K_t decreased at round %d", i+1)
		}
	}
	for _, st := range res.PerRound {
		if st.MaxNeighborhoodBurnedFrac > st.MaxKt+1e-9 {
			t.Errorf("round %d: S_t=%v exceeds K_t=%v, violating S_t ≤ K_t", st.Round, st.MaxNeighborhoodBurnedFrac, st.MaxKt)
		}
	}
}

func TestSAERBurnedFractionStaysBelowHalf(t *testing.T) {
	// Empirical check of Lemma 4 on a moderately sized instance using the
	// paper's prescribed c.
	n := 4096
	delta := 70 // ≈ log²(4096)
	g := regularGraph(t, n, delta, 31)
	st := g.Stats()
	c := MinCRegular(st.Eta, 2)
	res, err := Run(g, SAER, Params{D: 2, C: c, Seed: 17}, Options{TrackNeighborhoods: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run with the paper's c did not complete: %v", res)
	}
	for _, roundStats := range res.PerRound {
		if roundStats.MaxNeighborhoodBurnedFrac > 0.5 {
			t.Errorf("round %d: S_t = %v exceeds 1/2", roundStats.Round, roundStats.MaxNeighborhoodBurnedFrac)
		}
	}
	if res.Rounds > CompletionBound(n) {
		t.Errorf("completion in %d rounds exceeds the paper bound %d", res.Rounds, CompletionBound(n))
	}
}

func TestRAESDominatesSAERInAcceptedBalls(t *testing.T) {
	// Corollary 2 rests on RAES's acceptance process stochastically
	// dominating SAER's. A single coupled sample cannot verify stochastic
	// domination, but with the same seeds RAES should (weakly) finish no
	// later than SAER in the typical case; we check over several seeds
	// that RAES never needs more rounds on average.
	g := regularGraph(t, 1024, 36, 41)
	var saerRounds, raesRounds int
	for seed := uint64(0); seed < 10; seed++ {
		rs, err := Run(g, SAER, Params{D: 2, C: 3, Seed: seed}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := Run(g, RAES, Params{D: 2, C: 3, Seed: seed}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		saerRounds += rs.Rounds
		raesRounds += rr.Rounds
	}
	if raesRounds > saerRounds {
		t.Errorf("RAES used more rounds (%d) than SAER (%d) across seeds; domination suggests otherwise", raesRounds, saerRounds)
	}
}

func TestRunRejectsInvalidInput(t *testing.T) {
	g := regularGraph(t, 64, 8, 1)
	if _, err := Run(g, SAER, Params{D: 0, C: 4}, Options{}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Run(g, Variant(42), Params{D: 2, C: 4}, Options{}); err == nil {
		t.Error("unknown variant accepted")
	}
	// Graph with an isolated client must be rejected.
	bad, err := bipartite.NewBuilder(2, 2).AddEdge(0, 0).Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(bad, SAER, Params{D: 2, C: 4}, Options{}); err == nil {
		t.Error("graph with isolated client accepted")
	}
}

func TestRunnerReseedReuse(t *testing.T) {
	g := regularGraph(t, 512, 30, 2)
	r, err := NewRunner(g, SAER, Params{D: 2, C: 4, Seed: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := r.Run()
	r.Reseed(1)
	again := r.Run()
	if first.Rounds != again.Rounds || first.TotalRequests != again.TotalRequests || first.MaxLoad != again.MaxLoad {
		t.Fatal("rerunning with the same seed after Reseed gave a different result")
	}
	r.Reseed(2)
	other := r.Run()
	if !other.Completed {
		t.Error("reseeded run did not complete")
	}
	// Fresh-runner cross-check: Reseed must behave exactly like a new Runner.
	fresh, err := Run(g, SAER, Params{D: 2, C: 4, Seed: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if other.Rounds != fresh.Rounds || other.TotalRequests != fresh.TotalRequests {
		t.Error("Reseed(2) differs from a fresh run with seed 2")
	}
}

func TestWorkPerBallReasonable(t *testing.T) {
	g := regularGraph(t, 2048, 60, 6)
	res, err := Run(g, SAER, Params{D: 2, C: 4, Seed: 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wpb := res.WorkPerBall()
	// Work per ball is at least 2 (one request + one answer) and, per the
	// Θ(n) work theorem, should be a small constant.
	if wpb < 2 {
		t.Errorf("work per ball %v below the trivial minimum 2", wpb)
	}
	if wpb > 20 {
		t.Errorf("work per ball %v unexpectedly large for c=4", wpb)
	}
}

func TestMeanLoadMatchesBallCount(t *testing.T) {
	g := regularGraph(t, 1000, 50, 10)
	res, err := Run(g, RAES, Params{D: 3, C: 4, Seed: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if math.Abs(res.MeanLoad-3) > 1e-9 {
		t.Errorf("mean load %v, want 3", res.MeanLoad)
	}
	if res.MinLoad < 0 || res.MinLoad > res.MaxLoad {
		t.Errorf("inconsistent load extremes: min %d max %d", res.MinLoad, res.MaxLoad)
	}
}

func TestResultString(t *testing.T) {
	g := regularGraph(t, 128, 16, 3)
	res, err := Run(g, SAER, Params{D: 2, C: 4, Seed: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Error("empty result summary")
	}
	incomplete := &Result{Variant: RAES, Params: Params{D: 2, C: 2}, UnassignedBalls: 5}
	if incomplete.String() == "" {
		t.Error("empty summary for incomplete result")
	}
}

// Property: for arbitrary small regular graphs and seeds, SAER with a
// generous threshold always terminates, never exceeds the load cap and
// accounts for every ball.
func TestQuickSAERInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := 64 + int(nRaw%192) // 64..255
		delta := 16
		d := 1 + int(dRaw%4) // 1..4
		g, err := gen.Regular(n, delta, rng.New(seed))
		if err != nil {
			return false
		}
		res, err := Run(g, SAER, Params{D: d, C: 6, Seed: seed ^ 0xabcd}, Options{})
		if err != nil {
			return false
		}
		if !res.Completed {
			return false
		}
		if res.MaxLoad > res.LoadBound() {
			return false
		}
		// Total accepted balls must equal n·d: mean load times servers.
		total := res.MeanLoad * float64(res.NumServers)
		return math.Abs(total-float64(n*d)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: RAES respects the same invariants.
func TestQuickRAESInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 64 + int(nRaw%128)
		g, err := gen.Regular(n, 16, rng.New(seed))
		if err != nil {
			return false
		}
		res, err := Run(g, RAES, Params{D: 2, C: 6, Seed: seed}, Options{})
		if err != nil {
			return false
		}
		return res.Completed && res.MaxLoad <= res.LoadBound() && res.Work == 2*res.TotalRequests
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
