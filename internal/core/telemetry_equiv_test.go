package core

import (
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryEquivalence pins the telemetry layer's core contract:
// attaching a registry is pure observation. The same configuration runs
// un-instrumented (the reference) and instrumented across engine modes,
// worker counts and shard counts, and every Result must be bit-for-bit
// identical — any divergence means an instrument leaked into the random
// process or the round schedule.
func TestTelemetryEquivalence(t *testing.T) {
	n := 1024
	g := regularGraph(t, n, 40, 77)
	opts := Options{TrackRounds: true, TrackLoads: true, TrackAssignments: true}
	for _, variant := range []Variant{SAER, RAES} {
		for _, c := range []float64{4, 2} {
			p := Params{D: 2, C: c, Seed: 0xFEED}
			ref := func() *Result {
				pp := p
				pp.Workers = 1
				oo := opts
				oo.Engine = EngineDense
				res, err := Run(g, variant, pp, oo)
				if err != nil {
					t.Fatalf("%s c=%v: reference failed: %v", variant, c, err)
				}
				return normalizedResult(res)
			}()
			for _, mode := range []EngineMode{EngineDense, EngineSparse, EngineAuto} {
				for _, workers := range []int{1, 4} {
					for _, shards := range []int{0, 3} {
						reg := telemetry.NewRegistry()
						pp := p
						pp.Workers = workers
						oo := opts
						oo.Engine = mode
						oo.Shards = shards
						oo.Telemetry = reg
						res, err := Run(g, variant, pp, oo)
						if err != nil {
							t.Fatalf("%s c=%v mode=%d workers=%d shards=%d: %v", variant, c, mode, workers, shards, err)
						}
						if got := normalizedResult(res); !reflect.DeepEqual(got, ref) {
							t.Errorf("%s c=%v: instrumented run (mode=%d workers=%d shards=%d) diverges from un-instrumented reference",
								variant, c, mode, workers, shards)
						}
						// The instruments must actually have counted the run.
						snap := reg.Snapshot()
						if got := snap.Counters["saer_rounds_total"]; got != int64(res.Rounds) {
							t.Errorf("%s c=%v mode=%d workers=%d shards=%d: saer_rounds_total=%d, want %d",
								variant, c, mode, workers, shards, got, res.Rounds)
						}
						if got := snap.Counters["saer_requests_total"]; got != res.TotalRequests {
							t.Errorf("%s c=%v mode=%d workers=%d shards=%d: saer_requests_total=%d, want %d",
								variant, c, mode, workers, shards, got, res.TotalRequests)
						}
						if h, ok := snap.Histograms[`saer_phase_seconds{phase="draw"}`]; !ok || h.Count != int64(res.Rounds) {
							t.Errorf("%s c=%v mode=%d workers=%d shards=%d: draw-phase histogram count=%d, want %d",
								variant, c, mode, workers, shards, h.Count, res.Rounds)
						}
					}
				}
			}
		}
	}
}

// TestTelemetryEquivalenceDriver repeats the contract on the split
// client/server execution: a Driver over a LocalBank with a registry
// attached must reproduce the un-instrumented Runner bit for bit, and
// the shared instrument names must tally the driver's rounds.
func TestTelemetryEquivalenceDriver(t *testing.T) {
	g := regularGraph(t, 1024, 40, 77)
	cfg := NewConfig(SAER, 2, 2, 0xFEED)
	cfg.TrackRounds = true
	cfg.TrackLoads = true
	ref := func() *Result {
		rcfg := cfg
		rcfg.Workers = 1
		rcfg.Engine = EngineDense
		res, err := rcfg.Run(g)
		if err != nil {
			t.Fatalf("reference failed: %v", err)
		}
		return normalizedResult(res)
	}()
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 3} {
			reg := telemetry.NewRegistry()
			wcfg := cfg
			wcfg.Workers = workers
			wcfg.Telemetry = reg
			dr, err := NewLocalDriver(g, wcfg, shards)
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			res, err := dr.Run()
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			if got := normalizedResult(res); !reflect.DeepEqual(got, ref) {
				t.Errorf("instrumented driver (workers=%d shards=%d) diverges from un-instrumented runner", workers, shards)
			}
			snap := reg.Snapshot()
			if got := snap.Counters["saer_rounds_total"]; got != int64(res.Rounds) {
				t.Errorf("workers=%d shards=%d: saer_rounds_total=%d, want %d", workers, shards, got, res.Rounds)
			}
		}
	}
}

// TestTelemetryEquivalenceRepeatedRuns pins that a shared registry
// accumulates across reseeded runs without perturbing them: two trials
// on one instrumented Runner equal two un-instrumented trials, and the
// round counter holds the sum.
func TestTelemetryEquivalenceRepeatedRuns(t *testing.T) {
	g := regularGraph(t, 512, 30, 9)
	reg := telemetry.NewRegistry()
	cfg := NewConfig(RAES, 2, 3, 1)
	icfg := cfg
	icfg.Telemetry = reg
	r, err := icfg.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	totalRounds := 0
	for trial := 0; trial < 2; trial++ {
		seed := uint64(100 + trial)
		r.Reseed(seed)
		got := r.Run()
		rcfg := cfg
		rcfg.Seed = seed
		want, err := rcfg.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizedResult(got), normalizedResult(want)) {
			t.Errorf("trial %d: instrumented reseeded run diverges from fresh un-instrumented run", trial)
		}
		totalRounds += got.Rounds
	}
	if got := reg.Snapshot().Counters["saer_rounds_total"]; got != int64(totalRounds) {
		t.Errorf("saer_rounds_total=%d after two trials, want %d", got, totalRounds)
	}
}
