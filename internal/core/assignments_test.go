package core

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/rng"
)

func TestTrackAssignmentsCompleteRun(t *testing.T) {
	g, err := gen.Regular(512, 30, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	d := 3
	res, err := Run(g, SAER, Params{D: d, C: 4, Seed: 11}, Options{TrackAssignments: true, TrackLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if len(res.Assignments) != g.NumClients() {
		t.Fatalf("assignments for %d clients, want %d", len(res.Assignments), g.NumClients())
	}
	serverLoad := make([]int, g.NumServers())
	for v, servers := range res.Assignments {
		if len(servers) != d {
			t.Fatalf("client %d has %d assignments, want %d", v, len(servers), d)
		}
		for _, u := range servers {
			// Every assignment must be an admissible edge.
			if !g.HasEdge(v, int(u)) {
				t.Fatalf("client %d assigned to non-admissible server %d", v, u)
			}
			serverLoad[u]++
		}
	}
	// The assignment multiset must match the measured loads exactly.
	for u, l := range serverLoad {
		if l != res.Loads[u] {
			t.Fatalf("server %d: assignment count %d != load %d", u, l, res.Loads[u])
		}
	}
}

func TestAssignmentGraphProperties(t *testing.T) {
	g, err := gen.Regular(1024, 40, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	d := 2
	params := Params{D: d, C: 4, Seed: 21}
	res, err := Run(g, RAES, params, Options{TrackAssignments: true})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := res.AssignmentGraph()
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumClients() != g.NumClients() || sub.NumServers() != g.NumServers() {
		t.Fatal("assignment graph has wrong dimensions")
	}
	// On a completed run: client degree = d, server degree ≤ cap. This is
	// the bounded-degree subgraph of Becchetti et al.'s construction.
	for v := 0; v < sub.NumClients(); v++ {
		if sub.ClientDegree(v) != d {
			t.Fatalf("client %d degree %d in assignment graph, want %d", v, sub.ClientDegree(v), d)
		}
	}
	for u := 0; u < sub.NumServers(); u++ {
		if sub.ServerDegree(u) > params.Capacity() {
			t.Fatalf("server %d degree %d exceeds cap %d", u, sub.ServerDegree(u), params.Capacity())
		}
	}
}

func TestAssignmentGraphRequiresTracking(t *testing.T) {
	g, err := gen.Regular(64, 8, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, SAER, Params{D: 2, C: 4, Seed: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.AssignmentGraph(); err == nil {
		t.Fatal("AssignmentGraph should fail without tracking")
	}
}

func TestRequestCountsValidation(t *testing.T) {
	g, err := gen.Regular(64, 8, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, SAER, Params{D: 2, C: 4}, Options{RequestCounts: []int{1, 2}}); err == nil {
		t.Error("wrong-length RequestCounts accepted")
	}
	bad := make([]int, 64)
	bad[3] = 5 // exceeds D=2
	if _, err := Run(g, SAER, Params{D: 2, C: 4}, Options{RequestCounts: bad}); err == nil {
		t.Error("out-of-range RequestCounts accepted")
	}
	neg := make([]int, 64)
	neg[0] = -1
	if _, err := Run(g, SAER, Params{D: 2, C: 4}, Options{RequestCounts: neg}); err == nil {
		t.Error("negative RequestCounts accepted")
	}
}

func TestRequestCountsGeneralCase(t *testing.T) {
	// The paper's general "at most d" case: clients hold between 0 and d
	// balls. The run must place exactly the requested number of balls.
	g, err := gen.Regular(512, 30, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	d := 4
	src := rng.New(99)
	counts := make([]int, 512)
	total := 0
	for i := range counts {
		counts[i] = src.Intn(d + 1)
		total += counts[i]
	}
	res, err := Run(g, SAER, Params{D: d, C: 4, Seed: 3},
		Options{RequestCounts: counts, TrackAssignments: true, TrackLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("general-case run did not complete: %v", res)
	}
	if res.TotalBalls != int64(total) {
		t.Errorf("TotalBalls %d, want %d", res.TotalBalls, total)
	}
	placed := 0
	for v, servers := range res.Assignments {
		if len(servers) != counts[v] {
			t.Fatalf("client %d placed %d balls, want %d", v, len(servers), counts[v])
		}
		placed += len(servers)
	}
	if placed != total {
		t.Errorf("placed %d balls in total, want %d", placed, total)
	}
	var loadSum int
	for _, l := range res.Loads {
		loadSum += l
	}
	if loadSum != total {
		t.Errorf("total server load %d, want %d", loadSum, total)
	}
	if res.WorkPerBall() < 2 {
		t.Errorf("work per ball %v below 2", res.WorkPerBall())
	}
}

func TestRequestCountsZeroClientsFinishImmediately(t *testing.T) {
	g, err := gen.Regular(128, 16, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 128) // everyone has zero requests
	res, err := Run(g, SAER, Params{D: 2, C: 4, Seed: 1}, Options{RequestCounts: counts})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 0 || res.Work != 0 {
		t.Errorf("zero-request run should finish instantly: %v", res)
	}
}

// Property: with arbitrary request counts the protocol conserves balls and
// respects the load cap.
func TestQuickRequestCountsConservation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 64 + int(nRaw%64)
		g, err := gen.Regular(n, 16, rng.New(seed))
		if err != nil {
			return false
		}
		d := 3
		src := rng.New(seed ^ 0xfeed)
		counts := make([]int, n)
		total := 0
		for i := range counts {
			counts[i] = src.Intn(d + 1)
			total += counts[i]
		}
		res, err := Run(g, RAES, Params{D: d, C: 5, Seed: seed},
			Options{RequestCounts: counts, TrackLoads: true})
		if err != nil || !res.Completed {
			return false
		}
		sum := 0
		for _, l := range res.Loads {
			if l > res.LoadBound() {
				return false
			}
			sum += l
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
