package core

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

// TestConfigViewsMatchLegacyTriple pins the Config→(Params, Options)
// mapping: every field of the collapsed surface lands in exactly the
// legacy field the historical callers set directly.
func TestConfigViewsMatchLegacyTriple(t *testing.T) {
	cfg := Config{
		Variant: RAES, D: 3, C: 2.5, MaxRounds: 77, Seed: 42,
		Workers: 2, Engine: EngineSparse, Shards: 4, SparseSwitchDivisor: 8,
		Autotune: AutotuneOff, Steal: StealOn,
		TrackRounds: true, TrackNeighborhoods: true, TrackLoads: true, TrackAssignments: true,
		InitialLoads:  []int{1, 2},
		RequestCounts: []int{0, 1, 2},
	}
	p := cfg.Params()
	if p.D != 3 || p.C != 2.5 || p.MaxRounds != 77 || p.Seed != 42 || p.Workers != 2 {
		t.Fatalf("Params mapping broken: %+v", p)
	}
	o := cfg.Options()
	if o.Engine != EngineSparse || o.Shards != 4 || o.SparseSwitchDivisor != 8 ||
		o.Autotune != AutotuneOff || o.Steal != StealOn ||
		!o.TrackRounds || !o.TrackNeighborhoods || !o.TrackLoads || !o.TrackAssignments ||
		len(o.InitialLoads) != 2 || len(o.RequestCounts) != 3 {
		t.Fatalf("Options mapping broken: %+v", o)
	}
}

// TestConfigValidate pins the instance-independent validation surface.
func TestConfigValidate(t *testing.T) {
	good := NewConfig(SAER, 2, 4, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Variant: Variant(9), D: 2, C: 4},
		{Variant: SAER, D: 0, C: 4},
		{Variant: SAER, D: 2, C: 0},
		{Variant: SAER, D: 2, C: 4, MaxRounds: -1},
		{Variant: SAER, D: 2, C: 4, Engine: EngineMode(9)},
		{Variant: SAER, D: 2, C: 4, Shards: -1},
		{Variant: SAER, D: 2, C: 4, SparseSwitchDivisor: -1},
		{Variant: SAER, D: 2, C: 4, Autotune: AutotuneMode(9)},
		{Variant: SAER, D: 2, C: 4, Steal: StealMode(9)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// TestResolveKnobsMatchesRunner pins the normalization equivalence the
// api_redesign demands: across the whole knob grid, the knobs
// Config.ResolveKnobs reports are exactly what a Runner built from the
// same configuration runs with (its resolved sparse-switch divisor,
// steal schedule, and router shard count). This is the old-vs-new
// resolution suite — NewRunner's historical inline normalization moved
// into resolveKnobs, and this test keeps the two callers pinned
// together.
func TestResolveKnobsMatchesRunner(t *testing.T) {
	g, err := gen.Regular(256, 8, rng.New(7))
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, shards := range []int{0, 1, 2, 8} {
			for _, div := range []int{0, 2, 16} {
				for _, tune := range []AutotuneMode{AutotuneOn, AutotuneOff} {
					for _, steal := range []StealMode{StealAuto, StealOn, StealOff} {
						cfg := NewConfig(SAER, 2, 4, 1)
						cfg.Workers = workers
						cfg.Shards = shards
						cfg.SparseSwitchDivisor = div
						cfg.Autotune = tune
						cfg.Steal = steal
						want := cfg.ResolveKnobs(g)
						r, err := cfg.NewRunner(g)
						if err != nil {
							t.Fatalf("workers=%d shards=%d div=%d tune=%d steal=%d: %v",
								workers, shards, div, tune, steal, err)
						}
						if r.pool.Workers() != want.Workers {
							t.Fatalf("workers=%d: runner has %d workers, resolved %d",
								workers, r.pool.Workers(), want.Workers)
						}
						if r.switchDivisor != want.SparseSwitchDivisor {
							t.Fatalf("div=%d tune=%d: runner divisor %d, resolved %d",
								div, tune, r.switchDivisor, want.SparseSwitchDivisor)
						}
						if r.steal != want.Steal {
							t.Fatalf("steal=%d workers=%d: runner steal %v, resolved %v",
								steal, workers, r.steal, want.Steal)
						}
						// The router exists iff the resolved target exceeds
						// one shard and survives the router's own collapse
						// rule; when it exists its shard count never exceeds
						// the target.
						if want.Shards <= 1 && r.router != nil {
							t.Fatalf("shards=%d: resolved %d but runner built a router", shards, want.Shards)
						}
						if r.router != nil && r.router.Shards() > want.Shards {
							t.Fatalf("shards=%d: router has %d shards, resolved target %d",
								shards, r.router.Shards(), want.Shards)
						}
					}
				}
			}
		}
	}
}

// TestConfigRunMatchesLegacyRun pins behavioral equivalence end to end:
// a Config-driven run is bit-for-bit the run the legacy
// (variant, params, opts) call produces.
func TestConfigRunMatchesLegacyRun(t *testing.T) {
	g, err := gen.Regular(512, 6, rng.New(3))
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	for _, variant := range []Variant{SAER, RAES} {
		cfg := NewConfig(variant, 2, 4, 99)
		cfg.TrackRounds = true
		cfg.TrackLoads = true
		got, err := cfg.Run(g)
		if err != nil {
			t.Fatalf("config run: %v", err)
		}
		want, err := Run(g, variant, Params{D: 2, C: 4, Seed: 99},
			Options{TrackRounds: true, TrackLoads: true})
		if err != nil {
			t.Fatalf("legacy run: %v", err)
		}
		if !reflect.DeepEqual(normalizedResult(got), normalizedResult(want)) {
			t.Fatalf("%v: config run diverged from legacy run:\n got: %+v\nwant: %+v", variant, got, want)
		}
	}
}
