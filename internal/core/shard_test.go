package core

import (
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/gen"
)

func TestOptionsValidation(t *testing.T) {
	g := regularGraph(t, 64, 8, 1)
	p := Params{D: 2, C: 4, Seed: 1}
	if _, err := NewRunner(g, SAER, p, Options{Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	if _, err := NewRunner(g, SAER, p, Options{SparseSwitchDivisor: -2}); err == nil {
		t.Error("negative SparseSwitchDivisor accepted")
	}
	for _, opts := range []Options{{Shards: 1}, {Shards: 8}, {SparseSwitchDivisor: 1}, {SparseSwitchDivisor: 64}} {
		if _, err := NewRunner(g, SAER, p, opts); err != nil {
			t.Errorf("valid options %+v rejected: %v", opts, err)
		}
	}
}

// TestSparseSwitchDivisorIsPerfKnob checks that the promoted
// Options.SparseSwitchDivisor only moves the dense→sparse switch point,
// never the outcome: divisor 1 goes sparse on round one, 64 stays dense
// almost to the end, and both must match the default bit for bit.
func TestSparseSwitchDivisorIsPerfKnob(t *testing.T) {
	g := regularGraph(t, 1024, 40, 77)
	p := Params{D: 2, C: 2, Seed: 0xFEED}
	opts := Options{TrackRounds: true, TrackLoads: true}
	ref, err := Run(g, SAER, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, divisor := range []int{1, 2, 4, 16, 64} {
		for _, shards := range []int{1, 3} {
			oo := opts
			oo.SparseSwitchDivisor = divisor
			oo.Shards = shards
			res, err := Run(g, SAER, p, oo)
			if err != nil {
				t.Fatalf("divisor=%d shards=%d: %v", divisor, shards, err)
			}
			if !reflect.DeepEqual(normalizedResult(res), normalizedResult(ref)) {
				t.Errorf("divisor=%d shards=%d diverges from the default divisor", divisor, shards)
			}
		}
	}
}

// TestShardedRunnerReuseAfterStarvedRun is the sharded counterpart of
// TestRunnerReuseAfterStarvedRun: a starved early exit abandons the round
// between the phase-B fold and the round-end reset, leaving the router's
// touched lists and the folded counts dirty; resetState must discard both
// so a reused Runner matches a fresh one.
func TestShardedRunnerReuseAfterStarvedRun(t *testing.T) {
	b := bipartite.NewBuilder(4, 2)
	b.AddEdge(0, 0).AddEdge(1, 0)
	b.AddEdge(2, 0).AddEdge(2, 1)
	b.AddEdge(3, 1)
	g, err := b.Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{D: 2, C: 1.5, Seed: 0, MaxRounds: 50, Workers: 2}
	opts := Options{TrackRounds: true, TrackLoads: true, Shards: 2}
	r, err := NewRunner(g, SAER, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	starved := 0
	for dirtySeed := uint64(0); dirtySeed < 8; dirtySeed++ {
		r.Reseed(dirtySeed)
		if r.Run().Completed {
			continue
		}
		starved++
		for reseed := uint64(100); reseed < 108; reseed++ {
			r.Reseed(reseed)
			reused := r.Run()
			pp := p
			pp.Seed = reseed
			fresh, err := Run(g, SAER, pp, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizedResult(reused), normalizedResult(fresh)) {
				t.Fatalf("dirty=%d reseed=%d: reused sharded Runner diverges from fresh Runner",
					dirtySeed, reseed)
			}
			r.Reseed(dirtySeed)
			r.Run()
		}
	}
	if starved == 0 {
		t.Fatal("setup broken: no seed produced a starved run")
	}
}

// TestShardedRowCacheMemoryGuard pins the frontier row cache's memory
// bound on an implicit topology at the scale the implicit layer is for
// (n = 2¹⁶, the sweep engine's implicit threshold, where the edge budget
// is n rather than its small-n floor): a near-threshold c forces a long
// sparse tail, the cache must activate during it, stay within the edge
// budget (a small fraction of what the CSR twin would materialize), and
// leave results bit-for-bit equal to the materialized run. The topology
// is wrapped rowOnly: point-queryable families skip the cache entirely
// (their draws never touch rows), and this test exercises the
// row-regeneration path the cache exists for.
func TestShardedRowCacheMemoryGuard(t *testing.T) {
	n := 1 << 16
	topo, err := gen.RegularImplicit(n, 64, 0xCAFE)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := topo.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	p := Params{D: 2, C: 2, Seed: 9, Workers: 2}
	opts := Options{TrackRounds: true, TrackLoads: true, Shards: 4}
	r, err := NewRunner(rowOnly{topo}, SAER, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := uint64(0); trial < 2; trial++ {
		seed := 9 + trial
		r.Reseed(seed)
		res := r.Run()
		if !r.rowCacheBuilt {
			t.Fatalf("trial %d: run never activated the frontier row cache (rounds=%d)", trial, res.Rounds)
		}
		budget := rowCacheEdgeBudget(n)
		if got := r.rowCache.CachedEdges(); got > budget {
			t.Fatalf("trial %d: cache holds %d edges, budget %d", trial, got, budget)
		}
		// 4 bytes per cached edge against the CSR twin's 8 bytes per edge
		// (client + server arrays): the cache must stay a small fraction.
		cacheBytes := 4 * r.rowCache.CachedEdges()
		csrBytes := 8 * csr.NumEdges()
		if cacheBytes*10 > csrBytes {
			t.Fatalf("trial %d: cache %d B exceeds 10%% of the CSR twin's %d B", trial, cacheBytes, csrBytes)
		}
		pp := p
		pp.Seed = seed
		fromCSR, err := Run(csr, SAER, pp, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizedResult(res), normalizedResult(fromCSR)) {
			t.Fatalf("trial %d: cached implicit run diverges from the CSR run", trial)
		}
	}
}

// TestRowCacheInvalidatedOnSwap guards the staleness hazard: after
// SwapTopology the cached rows describe the old graph and must not be
// served.
func TestRowCacheInvalidatedOnSwap(t *testing.T) {
	n := 1 << 10
	first, err := gen.RegularImplicit(n, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := gen.RegularImplicit(n, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{D: 2, C: 2, Seed: 5, Workers: 2}
	opts := Options{TrackLoads: true, Shards: 2}
	r, err := NewRunner(rowOnly{first}, SAER, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	if !r.rowCacheBuilt {
		t.Fatal("setup broken: first run did not build the row cache")
	}
	if err := r.SwapTopology(rowOnly{second}); err != nil {
		t.Fatal(err)
	}
	r.Reseed(5)
	swapped := r.Run()
	fresh, err := Run(second, SAER, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizedResult(swapped), normalizedResult(fresh)) {
		t.Fatal("run after SwapTopology diverges from a fresh run: stale cached rows served")
	}
}
