package core

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/engine"
	"repro/internal/telemetry"
)

// Config is the single validated configuration surface of a protocol
// execution: the protocol identity (Variant, D, C, MaxRounds, Seed), the
// performance knobs (Workers, Engine, Shards, SparseSwitchDivisor,
// Autotune, Steal — results are bit-for-bit independent of all of them),
// and the optional diagnostics. It collapses the historical
// (Variant, Params, Options) triple that every caller used to assemble
// field by field; the simulator CLI, the sweep engine and the wire
// binaries all build a Config and go through its constructor methods, so
// knob validation and normalization happen in exactly one place. Params
// and Options remain as the internal split (and in Result, which echoes
// them), produced by the Params/Options accessors.
//
// The zero value of every knob means "pick the default": Workers 0 is
// GOMAXPROCS, Engine/Steal/Autotune zero values are the auto modes,
// Shards/SparseSwitchDivisor 0 defer to the autotuner. ResolveKnobs
// exposes the normalization itself for equivalence tests and diagnostics.
type Config struct {
	// Variant selects the threshold protocol (SAER or RAES).
	Variant Variant
	// D is the request number d: the number of balls each client places.
	D int
	// C is the threshold constant c; the per-server capacity is ⌊C·D⌋.
	C float64
	// MaxRounds caps the run; zero selects DefaultMaxRounds(n).
	MaxRounds int
	// Seed determines every random choice of the run.
	Seed uint64

	// Workers is the number of goroutines per phase (0 = GOMAXPROCS).
	Workers int
	// Engine selects the round-loop iteration strategy (see EngineMode).
	Engine EngineMode
	// Shards is the target server-shard count of the dense round pipeline
	// (0 = autotuned/worker count, 1 = unsharded; see Options.Shards).
	Shards int
	// SparseSwitchDivisor overrides EngineAuto's density threshold
	// (0 = autotuned or the static default; see Options).
	SparseSwitchDivisor int
	// Autotune selects whether unset performance knobs are derived per
	// instance (the zero value is AutotuneOn; see AutotuneMode).
	Autotune AutotuneMode
	// Steal selects the round scheduler (the zero value is StealAuto).
	Steal StealMode

	// TrackRounds records a RoundStats entry per round.
	TrackRounds bool
	// TrackNeighborhoods additionally computes S_t, r_t and K_t per round
	// (implies TrackRounds).
	TrackNeighborhoods bool
	// TrackLoads stores the final per-server load vector in the result.
	TrackLoads bool
	// TrackAssignments records which server accepted each client ball.
	TrackAssignments bool
	// InitialLoads pre-loads the servers (dynamic scenarios); length must
	// equal the server count when non-nil.
	InitialLoads []int
	// RequestCounts gives each client its own ball count in [0, D];
	// length must equal the client count when non-nil.
	RequestCounts []int

	// Telemetry, when non-nil, receives live run counters and phase
	// histograms (see Options.Telemetry and internal/telemetry). Results
	// are bit-for-bit independent of it.
	Telemetry *telemetry.Registry
}

// NewConfig returns a Config for one protocol execution with every
// performance knob at its self-tuning default.
func NewConfig(variant Variant, d int, c float64, seed uint64) Config {
	return Config{Variant: variant, D: d, C: c, Seed: seed}
}

// ConfigFrom assembles a Config from the historical
// (variant, params, options) triple: the migration bridge for callers
// whose declarative surface still carries the split types (the sweep
// engine's Point grid). New code should build a Config directly.
func ConfigFrom(variant Variant, p Params, o Options) Config {
	return Config{
		Variant:             variant,
		D:                   p.D,
		C:                   p.C,
		MaxRounds:           p.MaxRounds,
		Seed:                p.Seed,
		Workers:             p.Workers,
		Engine:              o.Engine,
		Shards:              o.Shards,
		SparseSwitchDivisor: o.SparseSwitchDivisor,
		Autotune:            o.Autotune,
		Steal:               o.Steal,
		TrackRounds:         o.TrackRounds,
		TrackNeighborhoods:  o.TrackNeighborhoods,
		TrackLoads:          o.TrackLoads,
		TrackAssignments:    o.TrackAssignments,
		InitialLoads:        o.InitialLoads,
		RequestCounts:       o.RequestCounts,
		Telemetry:           o.Telemetry,
	}
}

// Params returns the run-parameter view of the configuration.
func (c Config) Params() Params {
	return Params{D: c.D, C: c.C, MaxRounds: c.MaxRounds, Workers: c.Workers, Seed: c.Seed}
}

// Options returns the diagnostics/performance-knob view of the
// configuration.
func (c Config) Options() Options {
	return Options{
		Engine:              c.Engine,
		Shards:              c.Shards,
		SparseSwitchDivisor: c.SparseSwitchDivisor,
		Autotune:            c.Autotune,
		Steal:               c.Steal,
		TrackRounds:         c.TrackRounds,
		TrackNeighborhoods:  c.TrackNeighborhoods,
		TrackLoads:          c.TrackLoads,
		TrackAssignments:    c.TrackAssignments,
		InitialLoads:        c.InitialLoads,
		RequestCounts:       c.RequestCounts,
		Telemetry:           c.Telemetry,
	}
}

// Validate checks everything that can be checked without a topology:
// the protocol parameters and the knob/mode enumerations. The
// topology-dependent checks (InitialLoads/RequestCounts lengths) run in
// NewRunner, which knows the instance shape.
func (c Config) Validate() error {
	if c.Variant != SAER && c.Variant != RAES {
		return fmt.Errorf("core: unknown protocol variant %d", int(c.Variant))
	}
	if err := c.Params().Validate(); err != nil {
		return err
	}
	return c.Options().validate()
}

// NewRunner validates the configuration against topo and allocates the
// run state.
func (c Config) NewRunner(topo bipartite.Topology) (*Runner, error) {
	return NewRunner(topo, c.Variant, c.Params(), c.Options())
}

// Run executes one full protocol run of the configuration on topo.
func (c Config) Run(topo bipartite.Topology) (*Result, error) {
	r, err := c.NewRunner(topo)
	if err != nil {
		return nil, err
	}
	return r.Run(), nil
}

// validate checks the option enumerations and value ranges that do not
// depend on the instance shape.
func (o Options) validate() error {
	if o.Engine != EngineAuto && o.Engine != EngineDense && o.Engine != EngineSparse {
		return fmt.Errorf("core: unknown engine mode %d", int(o.Engine))
	}
	if o.Shards < 0 {
		return fmt.Errorf("core: Shards must be non-negative, got %d", o.Shards)
	}
	if o.SparseSwitchDivisor < 0 {
		return fmt.Errorf("core: SparseSwitchDivisor must be non-negative, got %d", o.SparseSwitchDivisor)
	}
	if o.Autotune != AutotuneOn && o.Autotune != AutotuneOff {
		return fmt.Errorf("core: unknown autotune mode %d", int(o.Autotune))
	}
	if o.Steal != StealAuto && o.Steal != StealOn && o.Steal != StealOff {
		return fmt.Errorf("core: unknown steal mode %d", int(o.Steal))
	}
	return nil
}

// ResolvedKnobs is the concrete performance-knob assignment the
// normalization step produces for one instance shape: what a Runner
// built from the same configuration actually runs with. It exists so
// equivalence tests can pin "new Config resolution == old NewRunner
// resolution" without reaching into Runner internals, and so
// diagnostics can report the effective knobs.
type ResolvedKnobs struct {
	// Workers is the effective worker count (GOMAXPROCS-resolved).
	Workers int
	// Shards is the target shard count handed to the router; the router
	// may still collapse to 1 effective shard on tiny instances, in which
	// case the pre-shard dense loop runs.
	Shards int
	// SparseSwitchDivisor is the effective EngineAuto density threshold.
	SparseSwitchDivisor int
	// Steal reports whether the work-stealing round scheduler is active.
	Steal bool
}

// rowRegenerating reports whether topo's client rows cost Θ(Δ) to read
// per visit: an implicit (non-CSR) topology without point-query support.
// It is the autotuner's regenRows input — point-queryable families draw
// in O(1) and tune like materialized graphs.
func rowRegenerating(topo bipartite.Topology) bool {
	if _, isCSR := topo.(*bipartite.Graph); isCSR {
		return false
	}
	return bipartite.PointQuerier(topo) == nil
}

// resolveKnobs is the single knob-normalization step shared by NewRunner
// and Config.ResolveKnobs: explicit values win, the autotuner fills what
// is unset (when enabled), and static defaults cover the rest.
func resolveKnobs(o Options, n, maxDeg, m, workers int, regenRows bool) ResolvedKnobs {
	k := ResolvedKnobs{
		Workers:             workers,
		Shards:              o.Shards,
		SparseSwitchDivisor: o.SparseSwitchDivisor,
	}
	if o.Autotune == AutotuneOn && (k.Shards == 0 || k.SparseSwitchDivisor == 0) {
		tuned := AutotuneKnobs(n, maxDeg, m, workers, regenRows, engine.DetectCache())
		if k.Shards == 0 {
			k.Shards = tuned.Shards
		}
		if k.SparseSwitchDivisor == 0 {
			k.SparseSwitchDivisor = tuned.SparseSwitchDivisor
		}
	}
	if k.SparseSwitchDivisor == 0 {
		k.SparseSwitchDivisor = defaultSparseSwitchDivisor
	}
	if k.Shards == 0 {
		k.Shards = workers
	}
	switch o.Steal {
	case StealOn:
		k.Steal = true
	case StealOff:
		k.Steal = false
	default:
		k.Steal = workers > 1
	}
	return k
}

// ResolveKnobs reports the effective performance knobs the configuration
// resolves to on topo, without allocating any run state.
func (c Config) ResolveKnobs(topo bipartite.Topology) ResolvedKnobs {
	workers := engine.NewPool(c.Workers).Workers()
	return resolveKnobs(c.Options(), topo.NumClients(), topo.MaxClientDegree(), topo.NumServers(), workers, rowRegenerating(topo))
}
