package core

import (
	"fmt"
	"slices"

	"repro/internal/bipartite"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// Driver is the transport-agnostic client side of the protocol: it draws
// every ball's destination from the same per-client random streams as
// the Runner, batches each round's (server, count) pairs through a
// ServerBank, and assembles the identical Result. With a LocalBank the
// whole protocol runs in this process; with a wire bank the servers live
// in remote shard processes and the Driver becomes the load generator.
// Either way the outcome is bit-for-bit the Runner's for the same
// (topology, config, seed) — the equivalence suite pins that, and the
// wire smoke job asserts it end to end over real sockets.
//
// The client phase fans out over Config.Workers goroutines through the
// same engine substrate as the in-process round loop: the work-stealing
// scheduler walks disjoint chunks of the frontier (each client drawing
// from its private stream, so the draws are worker-count-independent),
// destinations are bucketed into per-(worker, server-shard) route lanes,
// and the per-shard folds produce sorted window-local touched lists
// whose shard-order concatenation is the globally sorted batch — no
// global sort, and bit-for-bit the single-threaded Driver's batch for
// every worker count and steal schedule. The bank sees exactly the same
// bytes either way; only the wall-clock changes.
type Driver struct {
	topo bipartite.Topology
	cfg  Config
	bank ServerBank

	csr     *bipartite.Graph
	nbrBufs [][]int32 // per-worker neighborhood scratch (implicit topologies)
	// pq mirrors Runner.pq: the point-query view used by phaseClients to
	// draw ball destinations in O(1) instead of regenerating rows. Nil on
	// the CSR path or when the topology cannot answer point queries;
	// re-derived per Run (reset), since the wire executor reuses one
	// Driver across mutating churn epochs whose queryability can flip.
	pq bipartite.PointQueryable

	capacity int32
	d        int

	pool   *engine.Pool
	router *engine.Router
	// tally is the round's request accumulator in stamped mode: counts
	// live in the merged view, first touches are detected by epoch stamp
	// (Router.FoldShard), and the round-end reset is O(1).
	tally *engine.Tally

	alive    []int32
	choices  []int32
	streams  []rng.Stream
	frontier []int32

	touched      []int32
	countsArg    []int32
	shardTouched [][]int32 // per-shard sorted touched lists of the current round

	// acceptedRound[u] == round ⇔ server u accepted this round (from the
	// bank's decision); burned mirrors the bank's burned flags so the
	// neighborhood statistics and the starvation check stay client-side.
	acceptedRound []int32
	burned        []bool

	// Per-worker reduction scratch (order-independent sums/maxima — the
	// steal-schedule-safe accumulation shapes) and per-chunk survivor
	// lanes for the frontier compaction (chunk boundaries are a pure
	// function of the frontier length, so concatenating in chunk order is
	// schedule-independent).
	partialSent  []int64
	partialAcc   []int64
	partialAlive []int64
	partialFrac  []float64
	partialRecv  []int64
	partialKt    []float64
	chunkSurv    [][]int32

	cumNbrReceived []int64
	assignments    [][]int32

	// observer, when non-nil, is called once per completed round (after
	// the bank's decision is applied) — the wire client hooks its latency
	// and throughput capture here.
	observer RoundObserver

	// tel is the run's telemetry bundle (nil when Config.Telemetry is
	// unset); shared instrument names with the Runner, see runTel.
	tel *runTel
}

// RoundObserver receives one callback per completed round with the
// round's request volume; the wire client uses it to timestamp round
// trips for the latency summary.
type RoundObserver func(round int, requests int64)

// NewDriver validates the configuration against topo (the same checks as
// NewRunner) and allocates the client-side run state. The bank is not
// touched until Run, which Resets it first — so a freshly dialed wire
// bank can be handed over as-is.
func NewDriver(topo bipartite.Topology, cfg Config, bank ServerBank) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidGraph, err)
	}
	n := topo.NumClients()
	m := topo.NumServers()
	if cfg.InitialLoads != nil && len(cfg.InitialLoads) != m {
		return nil, fmt.Errorf("core: InitialLoads has %d entries for %d servers", len(cfg.InitialLoads), m)
	}
	if cfg.RequestCounts != nil {
		if len(cfg.RequestCounts) != n {
			return nil, fmt.Errorf("core: RequestCounts has %d entries for %d clients", len(cfg.RequestCounts), n)
		}
		for v, c := range cfg.RequestCounts {
			if c < 0 || c > cfg.D {
				return nil, fmt.Errorf("core: RequestCounts[%d] = %d outside [0, D=%d]", v, c, cfg.D)
			}
		}
	}
	if bank == nil {
		return nil, fmt.Errorf("core: driver needs a server bank")
	}
	pool := engine.NewPool(cfg.Workers)
	workers := pool.Workers()
	d := &Driver{
		topo:     topo,
		cfg:      cfg,
		bank:     bank,
		capacity: int32(cfg.Params().Capacity()),
		d:        cfg.D,

		pool:   pool,
		router: engine.NewRouter(workers, workers, m),

		alive:   make([]int32, n),
		choices: make([]int32, n*cfg.D),
		streams: make([]rng.Stream, n),

		acceptedRound: make([]int32, m),
		burned:        make([]bool, m),

		partialSent:  make([]int64, workers),
		partialAcc:   make([]int64, workers),
		partialAlive: make([]int64, workers),
	}
	d.tel = newRunTel(cfg.Telemetry)
	instrumentPool(cfg.Telemetry, pool)
	d.tally = engine.NewTally(pool, m)
	d.tally.BeginStamped()
	d.shardTouched = make([][]int32, d.router.Shards())
	d.csr, _ = topo.(*bipartite.Graph)
	if d.csr == nil {
		d.nbrBufs = make([][]int32, workers)
		for w := range d.nbrBufs {
			d.nbrBufs[w] = make([]int32, 0, topo.MaxClientDegree())
		}
	}
	if cfg.TrackNeighborhoods {
		d.cumNbrReceived = make([]int64, n)
		d.partialFrac = make([]float64, workers)
		d.partialRecv = make([]int64, workers)
		d.partialKt = make([]float64, workers)
	}
	if cfg.TrackAssignments {
		d.assignments = make([][]int32, n)
	}
	return d, nil
}

// NewLocalDriver wires a Driver to an in-process LocalBank of `shards`
// server shards — the single-process way to run the bank/driver split
// (and the reference the wire transport is cross-checked against).
func NewLocalDriver(topo bipartite.Topology, cfg Config, shards int) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bank, err := NewLocalBank(cfg.Variant, int32(cfg.Params().Capacity()), topo.NumServers(), shards)
	if err != nil {
		return nil, err
	}
	return NewDriver(topo, cfg, bank)
}

// SetObserver installs the per-round callback (nil to remove).
func (dr *Driver) SetObserver(obs RoundObserver) { dr.observer = obs }

// Reseed sets the protocol seed of the next Run.
func (dr *Driver) Reseed(seed uint64) { dr.cfg.Seed = seed }

// neighbors returns client v's neighborhood: zero-copy from a CSR graph,
// regenerated into worker w's scratch buffer otherwise.
func (dr *Driver) neighbors(w, v int) []int32 {
	if dr.csr != nil {
		return dr.csr.ClientNeighbors(v)
	}
	dr.nbrBufs[w] = dr.topo.AppendClientNeighbors(v, dr.nbrBufs[w][:0])
	return dr.nbrBufs[w]
}

// reset rebuilds all client-side per-run state and Resets the bank, so
// every Run is independent: a wire server process that was killed and
// restarted between epochs is indistinguishable from one that stayed up.
func (dr *Driver) reset() (aliveTotal int64, err error) {
	dr.frontier = dr.frontier[:0]
	for v := range dr.alive {
		a := int32(dr.d)
		if dr.cfg.RequestCounts != nil {
			a = int32(dr.cfg.RequestCounts[v])
		}
		dr.alive[v] = a
		if a > 0 {
			dr.frontier = append(dr.frontier, int32(v))
			aliveTotal += int64(a)
		}
	}
	for u := range dr.acceptedRound {
		dr.acceptedRound[u] = 0
		dr.burned[u] = false
	}
	if dr.cfg.InitialLoads != nil {
		for u, l := range dr.cfg.InitialLoads {
			if int32(l) >= dr.capacity {
				dr.burned[u] = true
			}
		}
	}
	for v := range dr.cumNbrReceived {
		dr.cumNbrReceived[v] = 0
	}
	for v := range dr.assignments {
		dr.assignments[v] = dr.assignments[v][:0]
	}
	dr.router.Discard()
	dr.tally.FullReset(dr.pool)
	dr.pq = nil
	if dr.csr == nil {
		dr.pq = bipartite.PointQuerier(dr.topo)
	}
	rng.ReseedStreamSlice(dr.streams, dr.cfg.Seed)
	return aliveTotal, dr.bank.Reset(dr.cfg.InitialLoads)
}

// Run executes the protocol against the bank until completion or the
// round cap and returns the Result. Run may be called again (after
// Reseed for an independent trial).
func (dr *Driver) Run() (*Result, error) {
	n := dr.topo.NumClients()
	m := dr.topo.NumServers()
	maxRounds := dr.cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds(n)
	}
	trackRounds := dr.cfg.TrackRounds || dr.cfg.TrackNeighborhoods

	res := &Result{
		Variant:    dr.cfg.Variant,
		Params:     dr.cfg.Params(),
		NumClients: n,
		NumServers: m,
	}
	if trackRounds {
		res.PerRound = make([]RoundStats, 0, CompletionBound(n)+4)
	}

	aliveTotal, err := dr.reset()
	if err != nil {
		return nil, err
	}
	res.TotalBalls = aliveTotal
	burnedTotal := 0
	round := 0
	for aliveTotal > 0 && round < maxRounds {
		round++
		sp := telemetry.StartSpan(dr.tel.drawHist())
		sent := dr.phaseClients()
		sp.End()
		dec, err := dr.decideRound(int32(round))
		if err != nil {
			return nil, fmt.Errorf("core: round %d: %w", round, err)
		}
		newlyBurned := len(dec.NewlyBurned)
		sp = telemetry.StartSpan(dr.tel.updateHist())
		accepted, stillAlive := dr.phaseUpdateClients(int32(round))
		sp.End()
		dr.tel.countRound(sent, accepted)

		burnedTotal += newlyBurned
		res.TotalRequests += sent
		res.SaturationEvents += int64(dec.Saturated)

		if trackRounds {
			stats := RoundStats{
				Round:              round,
				AliveBalls:         int(aliveTotal),
				RequestsSent:       int(sent),
				RequestsAccepted:   int(accepted),
				NewlyBurned:        newlyBurned,
				BurnedTotal:        burnedTotal,
				SaturatedThisRound: dec.Saturated,
			}
			if dr.cfg.TrackNeighborhoods {
				stats.MaxNeighborhoodBurnedFrac, stats.MaxNeighborhoodReceived, stats.MaxKt =
					dr.neighborhoodStats()
			}
			res.PerRound = append(res.PerRound, stats)
		}
		if dr.observer != nil {
			dr.observer(round, sent)
		}

		aliveTotal = stillAlive
		if accepted == 0 && newlyBurned == 0 && aliveTotal > 0 && dr.cfg.Variant == SAER {
			if dr.hasStarvedClient() {
				break
			}
		}
	}

	res.Rounds = round
	res.Work = 2 * res.TotalRequests
	res.UnassignedBalls = int(aliveTotal)
	res.Completed = aliveTotal == 0
	res.BurnedServers = burnedTotal
	if err := dr.fillLoadStats(res); err != nil {
		return nil, err
	}
	if dr.cfg.TrackAssignments {
		res.Assignments = make([][]int32, len(dr.assignments))
		for v, a := range dr.assignments {
			res.Assignments[v] = append([]int32(nil), a...)
		}
	}
	return res, nil
}

// phaseClients draws this round's destinations for every alive ball —
// the identical per-client stream reads, in the identical per-client
// order, as Runner.clientStep — and routes them into the per-(worker,
// shard) lanes. The frontier is walked by the work-stealing scheduler;
// each client's draws depend only on its private stream, so the routed
// multiset is independent of the chunk-to-worker schedule. Returns the
// number of requests submitted.
func (dr *Driver) phaseClients() int64 {
	dr.router.ResetLanes()
	dr.tally.StampedReset()
	shift := dr.router.Shift()
	clear(dr.partialSent)
	dr.pool.StealRange(len(dr.frontier), func(w, _, lo, hi int) {
		lanes := dr.router.Lanes(w)
		var sent int64
		for _, vv := range dr.frontier[lo:hi] {
			v := int(vv)
			a := dr.alive[v]
			src := &dr.streams[v]
			base := v * dr.d
			if pq := dr.pq; pq != nil {
				// Point-query path: one O(1) NeighborAt per ball instead
				// of a Θ(Δ) row regeneration — same Intn sequence, same
				// choices, bit-for-bit the row path's batch.
				deg := pq.ClientDegree(v)
				for i := int32(0); i < a; i++ {
					u := pq.NeighborAt(v, src.Intn(deg))
					dr.choices[base+int(i)] = u
					s := int(u) >> shift
					lanes[s] = append(lanes[s], u)
				}
				sent += int64(a)
				continue
			}
			nbrs := dr.neighbors(w, v)
			deg := len(nbrs)
			for i := int32(0); i < a; i++ {
				u := nbrs[src.Intn(deg)]
				dr.choices[base+int(i)] = u
				s := int(u) >> shift
				lanes[s] = append(lanes[s], u)
			}
			sent += int64(a)
		}
		dr.partialSent[w] += sent
	})
	var sent int64
	for _, v := range dr.partialSent {
		sent += v
	}
	return sent
}

// decideRound folds the route lanes shard by shard (each fold owned by
// one goroutine, each shard's touched list sorted window-locally),
// concatenates the per-shard lists in shard order — contiguous ascending
// windows, so the result is the globally sorted batch — and ships it to
// the bank. Decision stamps are applied to the accepted/burned state.
func (dr *Driver) decideRound(round int32) (RoundDecision, error) {
	sp := telemetry.StartSpan(dr.tel.foldHist())
	shards := dr.router.Shards()
	dr.pool.StealRangeGrain(shards, 1, func(_, _, lo, hi int) {
		for s := lo; s < hi; s++ {
			t := dr.router.FoldShard(s, dr.tally)
			slices.Sort(t)
			dr.shardTouched[s] = t
		}
	})
	dr.touched = dr.touched[:0]
	dr.countsArg = dr.countsArg[:0]
	merged := dr.tally.Merged()
	for _, t := range dr.shardTouched {
		for _, u := range t {
			dr.touched = append(dr.touched, u)
			dr.countsArg = append(dr.countsArg, merged[u])
		}
	}
	sp.End()
	sp = telemetry.StartSpan(dr.tel.decideHist())
	dec, err := dr.bank.DecideRound(dr.touched, dr.countsArg)
	sp.End()
	if err != nil {
		return dec, err
	}
	for _, u := range dec.Accepted {
		dr.acceptedRound[u] = round
	}
	for _, u := range dec.NewlyBurned {
		dr.burned[u] = true
	}
	return dec, nil
}

// phaseUpdateClients counts each frontier client's accepted requests and
// compacts the survivors: workers fill per-chunk survivor lanes, whose
// chunk-order concatenation preserves the frontier's ascending order for
// every steal schedule.
func (dr *Driver) phaseUpdateClients(round int32) (accepted, alive int64) {
	numChunks := dr.pool.NumChunks(len(dr.frontier))
	for len(dr.chunkSurv) < numChunks {
		dr.chunkSurv = append(dr.chunkSurv, nil)
	}
	clear(dr.partialAcc)
	clear(dr.partialAlive)
	dr.pool.StealRange(len(dr.frontier), func(w, chunk, lo, hi int) {
		surv := dr.chunkSurv[chunk][:0]
		var acc, still int64
		for _, vv := range dr.frontier[lo:hi] {
			v := int(vv)
			a := dr.alive[v]
			base := v * dr.d
			var got int32
			for i := int32(0); i < a; i++ {
				u := dr.choices[base+int(i)]
				if dr.acceptedRound[u] == round {
					got++
					if dr.assignments != nil {
						dr.assignments[v] = append(dr.assignments[v], u)
					}
				}
			}
			rem := a - got
			dr.alive[v] = rem
			if rem > 0 {
				surv = append(surv, vv)
				still += int64(rem)
			}
			acc += int64(got)
		}
		dr.chunkSurv[chunk] = surv
		dr.partialAcc[w] += acc
		dr.partialAlive[w] += still
	})
	next := dr.frontier[:0]
	for _, surv := range dr.chunkSurv[:numChunks] {
		next = append(next, surv...)
	}
	dr.frontier = next
	for w := range dr.partialAcc {
		accepted += dr.partialAcc[w]
		alive += dr.partialAlive[w]
	}
	return accepted, alive
}

// neighborhoodStats computes S_t, r_t and K_t for the current round —
// the Runner's definitions over the client-side mirror of the server
// state (burned flags from the decisions, received counts from the
// tally) — with per-worker maxima folded after the parallel sweep
// (order-independent, so steal-schedule-safe).
func (dr *Driver) neighborhoodStats() (maxBurnedFrac float64, maxReceived int, maxKt float64) {
	n := dr.topo.NumClients()
	cd := float64(dr.cfg.C) * float64(dr.d)
	clear(dr.partialFrac)
	clear(dr.partialRecv)
	clear(dr.partialKt)
	dr.pool.StealRange(n, func(w, _, lo, hi int) {
		frac, recv, kt := dr.partialFrac[w], dr.partialRecv[w], dr.partialKt[w]
		for v := lo; v < hi; v++ {
			nbrs := dr.neighbors(w, v)
			if len(nbrs) == 0 {
				continue
			}
			var burnedCnt int
			var recvSum int64
			for _, u := range nbrs {
				if dr.burned[u] {
					burnedCnt++
				}
				recvSum += int64(dr.tally.ReceivedAt(u))
			}
			if f := float64(burnedCnt) / float64(len(nbrs)); f > frac {
				frac = f
			}
			if recvSum > recv {
				recv = recvSum
			}
			dr.cumNbrReceived[v] += recvSum
			if k := float64(dr.cumNbrReceived[v]) / (cd * float64(len(nbrs))); k > kt {
				kt = k
			}
		}
		dr.partialFrac[w], dr.partialRecv[w], dr.partialKt[w] = frac, recv, kt
	})
	var recv int64
	for w := range dr.partialFrac {
		if dr.partialFrac[w] > maxBurnedFrac {
			maxBurnedFrac = dr.partialFrac[w]
		}
		if dr.partialRecv[w] > recv {
			recv = dr.partialRecv[w]
		}
		if dr.partialKt[w] > maxKt {
			maxKt = dr.partialKt[w]
		}
	}
	return maxBurnedFrac, int(recv), maxKt
}

// hasStarvedClient reports whether some frontier client's whole
// neighborhood is burned (the SAER hopeless-run early exit).
func (dr *Driver) hasStarvedClient() bool {
	for _, vv := range dr.frontier {
		starved := true
		for _, u := range dr.neighbors(0, int(vv)) {
			if !dr.burned[u] {
				starved = false
				break
			}
		}
		if starved {
			return true
		}
	}
	return false
}

// fillLoadStats computes the final load summary from the bank's load
// vector (and optionally copies the vector itself).
func (dr *Driver) fillLoadStats(res *Result) error {
	loads, err := dr.bank.Loads()
	if err != nil {
		return err
	}
	m := dr.topo.NumServers()
	if len(loads) != m {
		return fmt.Errorf("core: bank returned %d loads for %d servers", len(loads), m)
	}
	maxLoad := 0
	minLoad := int(^uint(0) >> 1)
	var sum int64
	for _, l32 := range loads {
		l := int(l32)
		if l > maxLoad {
			maxLoad = l
		}
		if l < minLoad {
			minLoad = l
		}
		sum += int64(l)
	}
	if m == 0 {
		minLoad = 0
	}
	res.MaxLoad = maxLoad
	res.MinLoad = minLoad
	res.MeanLoad = float64(sum) / float64(m)
	if dr.cfg.TrackLoads {
		res.Loads = make([]int, m)
		for u, l := range loads {
			res.Loads[u] = int(l)
		}
	}
	return nil
}
