package core

import (
	"fmt"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/rng"
)

// Driver is the transport-agnostic client side of the protocol: it draws
// every ball's destination from the same per-client random streams as
// the Runner, batches each round's (server, count) pairs through a
// ServerBank, and assembles the identical Result. With a LocalBank the
// whole protocol runs in this process; with a wire bank the servers live
// in remote shard processes and the Driver becomes the load generator.
// Either way the outcome is bit-for-bit the Runner's for the same
// (topology, config, seed) — the equivalence suite pins that, and the
// wire smoke job asserts it end to end over real sockets.
//
// The Driver is single-threaded on the client side (the Runner's worker
// pool exists to parallelize the tally, which the bank owns here); its
// throughput is the transport's business, measured per round by the
// optional RoundObserver.
type Driver struct {
	topo bipartite.Topology
	cfg  Config
	bank ServerBank

	csr    *bipartite.Graph
	nbrBuf []int32

	capacity int32
	d        int

	alive    []int32
	choices  []int32
	streams  []rng.Stream
	frontier []int32

	// counts/countRound are the epoch-stamped dense tally of the round's
	// requests: counts[u] is valid iff countRound[u] == the current
	// round, so no clearing pass over the m servers is ever needed.
	counts     []int32
	countRound []int32
	touched    []int32
	countsArg  []int32

	// acceptedRound[u] == round ⇔ server u accepted this round (from the
	// bank's decision); burned mirrors the bank's burned flags so the
	// neighborhood statistics and the starvation check stay client-side.
	acceptedRound []int32
	burned        []bool

	cumNbrReceived []int64
	assignments    [][]int32

	// observer, when non-nil, is called once per completed round (after
	// the bank's decision is applied) — the wire client hooks its latency
	// and throughput capture here.
	observer RoundObserver
}

// RoundObserver receives one callback per completed round with the
// round's request volume; the wire client uses it to timestamp round
// trips for the latency summary.
type RoundObserver func(round int, requests int64)

// NewDriver validates the configuration against topo (the same checks as
// NewRunner) and allocates the client-side run state. The bank is not
// touched until Run, which Resets it first — so a freshly dialed wire
// bank can be handed over as-is.
func NewDriver(topo bipartite.Topology, cfg Config, bank ServerBank) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidGraph, err)
	}
	n := topo.NumClients()
	m := topo.NumServers()
	if cfg.InitialLoads != nil && len(cfg.InitialLoads) != m {
		return nil, fmt.Errorf("core: InitialLoads has %d entries for %d servers", len(cfg.InitialLoads), m)
	}
	if cfg.RequestCounts != nil {
		if len(cfg.RequestCounts) != n {
			return nil, fmt.Errorf("core: RequestCounts has %d entries for %d clients", len(cfg.RequestCounts), n)
		}
		for v, c := range cfg.RequestCounts {
			if c < 0 || c > cfg.D {
				return nil, fmt.Errorf("core: RequestCounts[%d] = %d outside [0, D=%d]", v, c, cfg.D)
			}
		}
	}
	if bank == nil {
		return nil, fmt.Errorf("core: driver needs a server bank")
	}
	d := &Driver{
		topo:     topo,
		cfg:      cfg,
		bank:     bank,
		capacity: int32(cfg.Params().Capacity()),
		d:        cfg.D,

		alive:   make([]int32, n),
		choices: make([]int32, n*cfg.D),
		streams: make([]rng.Stream, n),

		counts:        make([]int32, m),
		countRound:    make([]int32, m),
		acceptedRound: make([]int32, m),
		burned:        make([]bool, m),
	}
	d.csr, _ = topo.(*bipartite.Graph)
	if d.csr == nil {
		d.nbrBuf = make([]int32, 0, topo.MaxClientDegree())
	}
	if cfg.TrackNeighborhoods {
		d.cumNbrReceived = make([]int64, n)
	}
	if cfg.TrackAssignments {
		d.assignments = make([][]int32, n)
	}
	return d, nil
}

// NewLocalDriver wires a Driver to an in-process LocalBank of `shards`
// server shards — the single-process way to run the bank/driver split
// (and the reference the wire transport is cross-checked against).
func NewLocalDriver(topo bipartite.Topology, cfg Config, shards int) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bank, err := NewLocalBank(cfg.Variant, int32(cfg.Params().Capacity()), topo.NumServers(), shards)
	if err != nil {
		return nil, err
	}
	return NewDriver(topo, cfg, bank)
}

// SetObserver installs the per-round callback (nil to remove).
func (dr *Driver) SetObserver(obs RoundObserver) { dr.observer = obs }

// Reseed sets the protocol seed of the next Run.
func (dr *Driver) Reseed(seed uint64) { dr.cfg.Seed = seed }

// neighbors returns client v's neighborhood: zero-copy from a CSR graph,
// regenerated into the scratch buffer otherwise.
func (dr *Driver) neighbors(v int) []int32 {
	if dr.csr != nil {
		return dr.csr.ClientNeighbors(v)
	}
	dr.nbrBuf = dr.topo.AppendClientNeighbors(v, dr.nbrBuf[:0])
	return dr.nbrBuf
}

// reset rebuilds all client-side per-run state and Resets the bank, so
// every Run is independent: a wire server process that was killed and
// restarted between epochs is indistinguishable from one that stayed up.
func (dr *Driver) reset() (aliveTotal int64, err error) {
	dr.frontier = dr.frontier[:0]
	for v := range dr.alive {
		a := int32(dr.d)
		if dr.cfg.RequestCounts != nil {
			a = int32(dr.cfg.RequestCounts[v])
		}
		dr.alive[v] = a
		if a > 0 {
			dr.frontier = append(dr.frontier, int32(v))
			aliveTotal += int64(a)
		}
	}
	for u := range dr.countRound {
		dr.countRound[u] = 0
		dr.acceptedRound[u] = 0
		dr.burned[u] = false
	}
	if dr.cfg.InitialLoads != nil {
		for u, l := range dr.cfg.InitialLoads {
			if int32(l) >= dr.capacity {
				dr.burned[u] = true
			}
		}
	}
	for v := range dr.cumNbrReceived {
		dr.cumNbrReceived[v] = 0
	}
	for v := range dr.assignments {
		dr.assignments[v] = dr.assignments[v][:0]
	}
	rng.ReseedStreamSlice(dr.streams, dr.cfg.Seed)
	return aliveTotal, dr.bank.Reset(dr.cfg.InitialLoads)
}

// Run executes the protocol against the bank until completion or the
// round cap and returns the Result. Run may be called again (after
// Reseed for an independent trial).
func (dr *Driver) Run() (*Result, error) {
	n := dr.topo.NumClients()
	m := dr.topo.NumServers()
	maxRounds := dr.cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds(n)
	}
	trackRounds := dr.cfg.TrackRounds || dr.cfg.TrackNeighborhoods

	res := &Result{
		Variant:    dr.cfg.Variant,
		Params:     dr.cfg.Params(),
		NumClients: n,
		NumServers: m,
	}
	if trackRounds {
		res.PerRound = make([]RoundStats, 0, CompletionBound(n)+4)
	}

	aliveTotal, err := dr.reset()
	if err != nil {
		return nil, err
	}
	res.TotalBalls = aliveTotal
	burnedTotal := 0
	round := 0
	for aliveTotal > 0 && round < maxRounds {
		round++
		sent := dr.phaseClients(int32(round))
		dec, err := dr.decideRound(int32(round))
		if err != nil {
			return nil, fmt.Errorf("core: round %d: %w", round, err)
		}
		newlyBurned := len(dec.NewlyBurned)
		accepted, stillAlive := dr.phaseUpdateClients(int32(round))

		burnedTotal += newlyBurned
		res.TotalRequests += sent
		res.SaturationEvents += int64(dec.Saturated)

		if trackRounds {
			stats := RoundStats{
				Round:              round,
				AliveBalls:         int(aliveTotal),
				RequestsSent:       int(sent),
				RequestsAccepted:   int(accepted),
				NewlyBurned:        newlyBurned,
				BurnedTotal:        burnedTotal,
				SaturatedThisRound: dec.Saturated,
			}
			if dr.cfg.TrackNeighborhoods {
				stats.MaxNeighborhoodBurnedFrac, stats.MaxNeighborhoodReceived, stats.MaxKt =
					dr.neighborhoodStats(int32(round))
			}
			res.PerRound = append(res.PerRound, stats)
		}
		if dr.observer != nil {
			dr.observer(round, sent)
		}

		aliveTotal = stillAlive
		if accepted == 0 && newlyBurned == 0 && aliveTotal > 0 && dr.cfg.Variant == SAER {
			if dr.hasStarvedClient() {
				break
			}
		}
	}

	res.Rounds = round
	res.Work = 2 * res.TotalRequests
	res.UnassignedBalls = int(aliveTotal)
	res.Completed = aliveTotal == 0
	res.BurnedServers = burnedTotal
	if err := dr.fillLoadStats(res); err != nil {
		return nil, err
	}
	if dr.cfg.TrackAssignments {
		res.Assignments = make([][]int32, len(dr.assignments))
		for v, a := range dr.assignments {
			res.Assignments[v] = append([]int32(nil), a...)
		}
	}
	return res, nil
}

// phaseClients draws this round's destinations for every alive ball —
// the identical per-client stream reads, in the identical per-client
// order, as Runner.clientStep — and tallies them into the epoch-stamped
// counts. Returns the number of requests submitted.
func (dr *Driver) phaseClients(round int32) int64 {
	var sent int64
	dr.touched = dr.touched[:0]
	for _, vv := range dr.frontier {
		v := int(vv)
		a := dr.alive[v]
		nbrs := dr.neighbors(v)
		deg := len(nbrs)
		src := &dr.streams[v]
		base := v * dr.d
		for i := int32(0); i < a; i++ {
			u := nbrs[src.Intn(deg)]
			dr.choices[base+int(i)] = u
			if dr.countRound[u] != round {
				dr.countRound[u] = round
				dr.counts[u] = 0
				dr.touched = append(dr.touched, u)
			}
			dr.counts[u]++
		}
		sent += int64(a)
	}
	return sent
}

// decideRound ships the round's batch to the bank: touched sorted
// ascending with its parallel counts, decision stamps applied to the
// accepted/burned state.
func (dr *Driver) decideRound(round int32) (RoundDecision, error) {
	sort.Slice(dr.touched, func(i, j int) bool { return dr.touched[i] < dr.touched[j] })
	dr.countsArg = dr.countsArg[:0]
	for _, u := range dr.touched {
		dr.countsArg = append(dr.countsArg, dr.counts[u])
	}
	dec, err := dr.bank.DecideRound(dr.touched, dr.countsArg)
	if err != nil {
		return dec, err
	}
	for _, u := range dec.Accepted {
		dr.acceptedRound[u] = round
	}
	for _, u := range dec.NewlyBurned {
		dr.burned[u] = true
	}
	return dec, nil
}

// phaseUpdateClients counts each frontier client's accepted requests and
// compacts the survivors in place (ascending order is preserved).
func (dr *Driver) phaseUpdateClients(round int32) (accepted, alive int64) {
	next := dr.frontier[:0]
	for _, vv := range dr.frontier {
		v := int(vv)
		a := dr.alive[v]
		base := v * dr.d
		var got int32
		for i := int32(0); i < a; i++ {
			u := dr.choices[base+int(i)]
			if dr.acceptedRound[u] == round {
				got++
				if dr.assignments != nil {
					dr.assignments[v] = append(dr.assignments[v], u)
				}
			}
		}
		rem := a - got
		dr.alive[v] = rem
		if rem > 0 {
			next = append(next, vv)
		}
		accepted += int64(got)
		alive += int64(rem)
	}
	dr.frontier = next
	return accepted, alive
}

// receivedAt resolves server u's received count for the current round
// through the epoch stamps.
func (dr *Driver) receivedAt(u int32, round int32) int32 {
	if dr.countRound[u] == round {
		return dr.counts[u]
	}
	return 0
}

// neighborhoodStats computes S_t, r_t and K_t for the current round —
// the Runner's definitions over the client-side mirror of the server
// state (burned flags from the decisions, received counts from the
// tally).
func (dr *Driver) neighborhoodStats(round int32) (maxBurnedFrac float64, maxReceived int, maxKt float64) {
	n := dr.topo.NumClients()
	cd := float64(dr.cfg.C) * float64(dr.d)
	for v := 0; v < n; v++ {
		nbrs := dr.neighbors(v)
		if len(nbrs) == 0 {
			continue
		}
		var burnedCnt int
		var recvSum int64
		for _, u := range nbrs {
			if dr.burned[u] {
				burnedCnt++
			}
			recvSum += int64(dr.receivedAt(u, round))
		}
		frac := float64(burnedCnt) / float64(len(nbrs))
		if frac > maxBurnedFrac {
			maxBurnedFrac = frac
		}
		if int(recvSum) > maxReceived {
			maxReceived = int(recvSum)
		}
		dr.cumNbrReceived[v] += recvSum
		kt := float64(dr.cumNbrReceived[v]) / (cd * float64(len(nbrs)))
		if kt > maxKt {
			maxKt = kt
		}
	}
	return maxBurnedFrac, maxReceived, maxKt
}

// hasStarvedClient reports whether some frontier client's whole
// neighborhood is burned (the SAER hopeless-run early exit).
func (dr *Driver) hasStarvedClient() bool {
	for _, vv := range dr.frontier {
		starved := true
		for _, u := range dr.neighbors(int(vv)) {
			if !dr.burned[u] {
				starved = false
				break
			}
		}
		if starved {
			return true
		}
	}
	return false
}

// fillLoadStats computes the final load summary from the bank's load
// vector (and optionally copies the vector itself).
func (dr *Driver) fillLoadStats(res *Result) error {
	loads, err := dr.bank.Loads()
	if err != nil {
		return err
	}
	m := dr.topo.NumServers()
	if len(loads) != m {
		return fmt.Errorf("core: bank returned %d loads for %d servers", len(loads), m)
	}
	maxLoad := 0
	minLoad := int(^uint(0) >> 1)
	var sum int64
	for _, l32 := range loads {
		l := int(l32)
		if l > maxLoad {
			maxLoad = l
		}
		if l < minLoad {
			minLoad = l
		}
		sum += int64(l)
	}
	if m == 0 {
		minLoad = 0
	}
	res.MaxLoad = maxLoad
	res.MinLoad = minLoad
	res.MeanLoad = float64(sum) / float64(m)
	if dr.cfg.TrackLoads {
		res.Loads = make([]int, m)
		for u, l := range loads {
			res.Loads[u] = int(l)
		}
	}
	return nil
}
