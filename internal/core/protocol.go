package core

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/engine"
	"repro/internal/rng"
)

// Run executes one full protocol run of the selected variant on g and
// returns its Result. The run is deterministic in (g, variant, p.Seed) and
// independent of p.Workers.
func Run(g *bipartite.Graph, variant Variant, p Params, opts Options) (*Result, error) {
	r, err := NewRunner(g, variant, p, opts)
	if err != nil {
		return nil, err
	}
	return r.Run(), nil
}

// Runner holds the mutable state of a protocol execution. It exists as a
// separate type so that benchmarks and the experiment harness can reuse
// the graph and reset cheaply between trials; most callers can simply use
// Run.
type Runner struct {
	g       *bipartite.Graph
	variant Variant
	params  Params
	opts    Options

	pool     *engine.Pool
	capacity int32
	d        int

	// Per-client state.
	alive   []int32      // unassigned balls of client v
	choices []int32      // this round's chosen servers, d slots per client
	streams []rng.Source // private random stream of client v
	// cumNbrReceived is Σ_{i≤t} r_i(N(v)) per client; allocated only when
	// neighborhood tracking is on.
	cumNbrReceived []int64
	// assignments[v] collects the servers that accepted v's balls;
	// allocated only when Options.TrackAssignments is set.
	assignments [][]int32

	// Per-server state.
	tally         *engine.Tally // requests received this round
	load          []int32       // accepted balls
	receivedTotal []int32       // cumulative received since the start
	burned        []bool        // SAER: burned; RAES: diagnostic "received > capacity"
	acceptedRound []bool        // did the server accept this round's requests

	// Per-worker partial accumulators, reused every round.
	partialSent     []int64
	partialAccepted []int64
	partialAlive    []int64
	partialBurned   []int64
	partialSat      []int64
}

// NewRunner validates the inputs and allocates the run state.
func NewRunner(g *bipartite.Graph, variant Variant, p Params, opts Options) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidGraph, err)
	}
	if variant != SAER && variant != RAES {
		return nil, fmt.Errorf("core: unknown protocol variant %d", int(variant))
	}
	n := g.NumClients()
	m := g.NumServers()
	if opts.InitialLoads != nil && len(opts.InitialLoads) != m {
		return nil, fmt.Errorf("core: InitialLoads has %d entries for %d servers", len(opts.InitialLoads), m)
	}
	if opts.RequestCounts != nil {
		if len(opts.RequestCounts) != n {
			return nil, fmt.Errorf("core: RequestCounts has %d entries for %d clients", len(opts.RequestCounts), n)
		}
		for v, c := range opts.RequestCounts {
			if c < 0 || c > p.D {
				return nil, fmt.Errorf("core: RequestCounts[%d] = %d outside [0, D=%d]", v, c, p.D)
			}
		}
	}
	pool := engine.NewPool(p.Workers)
	r := &Runner{
		g:        g,
		variant:  variant,
		params:   p,
		opts:     opts,
		pool:     pool,
		capacity: int32(p.Capacity()),
		d:        p.D,

		alive:   make([]int32, n),
		choices: make([]int32, n*p.D),
		streams: rng.NewStreams(p.Seed, n),

		tally:         engine.NewTally(pool, m),
		load:          make([]int32, m),
		receivedTotal: make([]int32, m),
		burned:        make([]bool, m),
		acceptedRound: make([]bool, m),

		partialSent:     make([]int64, pool.Workers()),
		partialAccepted: make([]int64, pool.Workers()),
		partialAlive:    make([]int64, pool.Workers()),
		partialBurned:   make([]int64, pool.Workers()),
		partialSat:      make([]int64, pool.Workers()),
	}
	if opts.TrackNeighborhoods {
		r.cumNbrReceived = make([]int64, n)
	}
	if opts.TrackAssignments {
		r.assignments = make([][]int32, n)
	}
	r.resetState()
	return r, nil
}

// resetState reinitializes all mutable per-run state, allowing the Runner
// to be reused for another trial with the same parameters.
func (r *Runner) resetState() {
	for i := range r.alive {
		if r.opts.RequestCounts != nil {
			r.alive[i] = int32(r.opts.RequestCounts[i])
		} else {
			r.alive[i] = int32(r.d)
		}
	}
	for i := range r.assignments {
		r.assignments[i] = r.assignments[i][:0]
	}
	for i := range r.load {
		r.load[i] = 0
		r.receivedTotal[i] = 0
		r.burned[i] = false
		r.acceptedRound[i] = false
	}
	if r.opts.InitialLoads != nil {
		for i, l := range r.opts.InitialLoads {
			if l < 0 {
				l = 0
			}
			r.load[i] = int32(l)
			r.receivedTotal[i] = int32(l)
			if int32(l) >= r.capacity {
				// A server already at (or beyond) capacity can never accept
				// another ball: under SAER it is burned from the start and
				// under RAES the acceptance test always fails; marking it
				// burned keeps the diagnostic series consistent.
				r.burned[i] = true
			}
		}
	}
	for i := range r.cumNbrReceived {
		r.cumNbrReceived[i] = 0
	}
	r.streams = rng.NewStreams(r.params.Seed, r.g.NumClients())
}

// Reseed prepares the Runner for another independent trial with a new
// protocol seed, resetting all protocol state.
func (r *Runner) Reseed(seed uint64) {
	r.params.Seed = seed
	r.resetState()
}

// Run executes the protocol until completion or the round cap and returns
// the Result. Run may be called again after Reseed.
func (r *Runner) Run() *Result {
	n := r.g.NumClients()
	m := r.g.NumServers()
	maxRounds := r.params.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds(n)
	}
	trackRounds := r.opts.TrackRounds || r.opts.TrackNeighborhoods

	res := &Result{
		Variant:    r.variant,
		Params:     r.params,
		NumClients: n,
		NumServers: m,
	}
	if trackRounds {
		res.PerRound = make([]RoundStats, 0, CompletionBound(n)+4)
	}

	aliveTotal := int64(0)
	for _, a := range r.alive {
		aliveTotal += int64(a)
	}
	res.TotalBalls = aliveTotal
	burnedTotal := 0
	round := 0
	for aliveTotal > 0 && round < maxRounds {
		round++
		sent := r.phaseClients()
		received := r.tally.Merge(r.pool)
		newlyBurned, saturated := r.phaseServers(received)
		accepted, stillAlive := r.phaseUpdateClients()

		burnedTotal += newlyBurned
		res.TotalRequests += sent
		res.SaturationEvents += int64(saturated)

		if trackRounds {
			stats := RoundStats{
				Round:              round,
				AliveBalls:         int(aliveTotal),
				RequestsSent:       int(sent),
				RequestsAccepted:   int(accepted),
				NewlyBurned:        newlyBurned,
				BurnedTotal:        burnedTotal,
				SaturatedThisRound: saturated,
			}
			if r.opts.TrackNeighborhoods {
				stats.MaxNeighborhoodBurnedFrac, stats.MaxNeighborhoodReceived, stats.MaxKt =
					r.neighborhoodStats(received)
			}
			res.PerRound = append(res.PerRound, stats)
		}

		aliveTotal = stillAlive
		// If no ball was accepted this round and no server state changed,
		// check whether some client's whole neighborhood is burned: such a
		// client can never place its remaining balls and the run is
		// hopeless (this can only happen when c is far below the paper's
		// threshold).
		if accepted == 0 && newlyBurned == 0 && aliveTotal > 0 && r.variant == SAER {
			if r.hasStarvedClient() {
				break
			}
		}
		r.tally.Reset(r.pool)
	}

	res.Rounds = round
	res.Work = 2 * res.TotalRequests
	res.UnassignedBalls = int(aliveTotal)
	res.Completed = aliveTotal == 0
	res.BurnedServers = burnedTotal
	r.fillLoadStats(res)
	if r.opts.TrackAssignments {
		res.Assignments = make([][]int32, len(r.assignments))
		for v, a := range r.assignments {
			res.Assignments[v] = append([]int32(nil), a...)
		}
	}
	return res
}

// phaseClients is phase 1: every client with alive balls draws a uniform
// destination in its neighborhood for each of them. Returns the number of
// requests submitted.
func (r *Runner) phaseClients() int64 {
	for w := range r.partialSent {
		r.partialSent[w] = 0
	}
	d := r.d
	r.pool.ParallelRange(r.g.NumClients(), func(worker, lo, hi int) {
		local := r.tally.Local(worker)
		var sent int64
		for v := lo; v < hi; v++ {
			a := r.alive[v]
			if a == 0 {
				continue
			}
			nbrs := r.g.ClientNeighbors(v)
			deg := len(nbrs)
			src := &r.streams[v]
			base := v * d
			for i := int32(0); i < a; i++ {
				u := nbrs[src.Intn(deg)]
				r.choices[base+int(i)] = u
				local[u]++
			}
			sent += int64(a)
		}
		r.partialSent[worker] = sent
	})
	var total int64
	for _, v := range r.partialSent {
		total += v
	}
	return total
}

// phaseServers is phase 2: every server applies the variant's threshold
// rule to this round's requests. Returns how many servers became burned
// and how many rejected the round while not burned.
func (r *Runner) phaseServers(received []int32) (newlyBurned, saturated int) {
	for w := range r.partialBurned {
		r.partialBurned[w] = 0
		r.partialSat[w] = 0
	}
	r.pool.ParallelRange(r.g.NumServers(), func(worker, lo, hi int) {
		var nb, sat int64
		for u := lo; u < hi; u++ {
			recv := received[u]
			r.acceptedRound[u] = false
			if recv == 0 {
				continue
			}
			r.receivedTotal[u] += recv
			switch r.variant {
			case SAER:
				if r.burned[u] {
					// A burned server rejects everything; not a new
					// saturation event.
					continue
				}
				if r.receivedTotal[u] > r.capacity {
					r.burned[u] = true
					nb++
					sat++
					continue
				}
				r.load[u] += recv
				r.acceptedRound[u] = true
			case RAES:
				if !r.burned[u] && r.receivedTotal[u] > r.capacity {
					// Diagnostic only: the server would be burned under
					// SAER's stronger rule (used by the Corollary 2
					// comparison); RAES itself keeps going.
					r.burned[u] = true
					nb++
				}
				if r.load[u]+recv > r.capacity {
					sat++
					continue
				}
				r.load[u] += recv
				r.acceptedRound[u] = true
			}
		}
		r.partialBurned[worker] = nb
		r.partialSat[worker] = sat
	})
	for w := range r.partialBurned {
		newlyBurned += int(r.partialBurned[w])
		saturated += int(r.partialSat[w])
	}
	return newlyBurned, saturated
}

// phaseUpdateClients lets every client count which of its requests were
// accepted and update its alive-ball count. Returns the number of accepted
// requests and the total number of balls still alive.
func (r *Runner) phaseUpdateClients() (accepted, alive int64) {
	for w := range r.partialAccepted {
		r.partialAccepted[w] = 0
		r.partialAlive[w] = 0
	}
	d := r.d
	r.pool.ParallelRange(r.g.NumClients(), func(worker, lo, hi int) {
		var acc, still int64
		for v := lo; v < hi; v++ {
			a := r.alive[v]
			if a == 0 {
				continue
			}
			base := v * d
			var got int32
			for i := int32(0); i < a; i++ {
				u := r.choices[base+int(i)]
				if r.acceptedRound[u] {
					got++
					if r.assignments != nil {
						r.assignments[v] = append(r.assignments[v], u)
					}
				}
			}
			r.alive[v] = a - got
			acc += int64(got)
			still += int64(a - got)
		}
		r.partialAccepted[worker] = acc
		r.partialAlive[worker] = still
	})
	for w := range r.partialAccepted {
		accepted += r.partialAccepted[w]
		alive += r.partialAlive[w]
	}
	return accepted, alive
}

// neighborhoodStats computes S_t, r_t and K_t (Definitions 3, 5, 6) for
// the current round. It costs O(|E|) and is only invoked when
// Options.TrackNeighborhoods is set.
func (r *Runner) neighborhoodStats(received []int32) (maxBurnedFrac float64, maxReceived int, maxKt float64) {
	n := r.g.NumClients()
	type partial struct {
		frac float64
		recv int64
		kt   float64
	}
	partials := make([]partial, r.pool.Workers())
	cd := float64(r.params.C) * float64(r.d)
	r.pool.ParallelRange(n, func(worker, lo, hi int) {
		p := partial{}
		for v := lo; v < hi; v++ {
			nbrs := r.g.ClientNeighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			var burnedCnt int
			var recvSum int64
			for _, u := range nbrs {
				if r.burned[u] {
					burnedCnt++
				}
				recvSum += int64(received[u])
			}
			frac := float64(burnedCnt) / float64(len(nbrs))
			if frac > p.frac {
				p.frac = frac
			}
			if recvSum > p.recv {
				p.recv = recvSum
			}
			r.cumNbrReceived[v] += recvSum
			kt := float64(r.cumNbrReceived[v]) / (cd * float64(len(nbrs)))
			if kt > p.kt {
				p.kt = kt
			}
		}
		partials[worker] = p
	})
	for _, p := range partials {
		if p.frac > maxBurnedFrac {
			maxBurnedFrac = p.frac
		}
		if int(p.recv) > maxReceived {
			maxReceived = int(p.recv)
		}
		if p.kt > maxKt {
			maxKt = p.kt
		}
	}
	return maxBurnedFrac, maxReceived, maxKt
}

// hasStarvedClient reports whether some client still holding balls has a
// fully burned neighborhood (it can never terminate). Only meaningful for
// SAER.
func (r *Runner) hasStarvedClient() bool {
	n := r.g.NumClients()
	starved := r.pool.ReduceInt64(n, func(_, lo, hi int) int64 {
		for v := lo; v < hi; v++ {
			if r.alive[v] == 0 {
				continue
			}
			allBurned := true
			for _, u := range r.g.ClientNeighbors(v) {
				if !r.burned[u] {
					allBurned = false
					break
				}
			}
			if allBurned {
				return 1
			}
		}
		return 0
	})
	return starved > 0
}

// fillLoadStats computes the final load summary (and optionally the full
// load vector) into res.
func (r *Runner) fillLoadStats(res *Result) {
	m := r.g.NumServers()
	maxLoad := 0
	minLoad := int(^uint(0) >> 1)
	var sum int64
	for u := 0; u < m; u++ {
		l := int(r.load[u])
		if l > maxLoad {
			maxLoad = l
		}
		if l < minLoad {
			minLoad = l
		}
		sum += int64(l)
	}
	if m == 0 {
		minLoad = 0
	}
	res.MaxLoad = maxLoad
	res.MinLoad = minLoad
	res.MeanLoad = float64(sum) / float64(m)
	if r.opts.TrackLoads {
		res.Loads = make([]int, m)
		for u := 0; u < m; u++ {
			res.Loads[u] = int(r.load[u])
		}
	}
}
