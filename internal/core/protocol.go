package core

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// EngineMode selects how the round loop iterates over entities.
//
// The paper proves (Lemma 4 / Theorem 1) that the number of alive balls
// decays geometrically, so after the first few rounds almost every client
// is finished and almost every server receives nothing. The sparse engine
// exploits exactly that: it walks a compacted frontier of still-active
// clients and an epoch-stamped list of servers actually touched this
// round, making late rounds O(active) instead of O(n + m·workers).
// Both engines compute the identical random process — results are
// bit-for-bit equal — so the mode is a pure performance knob, exposed
// mainly for benchmarks and the equivalence tests.
type EngineMode int

const (
	// EngineAuto (the default) starts on the dense streaming path and
	// switches to the sparse frontier path once the active-client fraction
	// drops below 1/divisor (Options.SparseSwitchDivisor, default 4).
	// Active clients never come back (alive counts are non-increasing), so
	// the switch happens at most once per run.
	EngineAuto EngineMode = iota
	// EngineDense forces the dense path for the whole run.
	EngineDense
	// EngineSparse forces the frontier path from round one.
	EngineSparse
)

// defaultSparseSwitchDivisor is the density threshold EngineAuto uses
// when Options.SparseSwitchDivisor is zero: the run switches to the
// sparse path when active clients ≤ n/divisor. Below that point the
// dense pass wastes most of its bandwidth streaming over finished
// entities; above it, the contiguous dense layout wins.
const defaultSparseSwitchDivisor = 4

// rowCacheEdgeBudget bounds the late-round frontier row cache for
// implicit topologies: caching activates once the frontier's worst-case
// row footprint (|frontier| × max degree) fits the budget, which keeps
// cached bytes at ≤ 4·max(n, 2¹⁶) — a few percent of what the
// materialized CSR twin would hold, preserving the implicit layer's
// memory guarantee (TestShardedRowCacheMemoryGuard pins it).
func rowCacheEdgeBudget(n int) int {
	const floor = 1 << 16
	if n < floor {
		return floor
	}
	return n
}

// Run executes one full protocol run of the selected variant on topo and
// returns its Result. The run is deterministic in (topo, variant, p.Seed)
// and independent of p.Workers, Options.Engine, and — for topologies that
// describe the same edge multiset in the same per-client order, such as an
// implicit topology and its materialized CSR twin — of the topology
// representation.
func Run(topo bipartite.Topology, variant Variant, p Params, opts Options) (*Result, error) {
	r, err := NewRunner(topo, variant, p, opts)
	if err != nil {
		return nil, err
	}
	return r.Run(), nil
}

// Runner holds the mutable state of a protocol execution. It exists as a
// separate type so that benchmarks and the experiment harness can reuse
// the graph and reset cheaply between trials; most callers can simply use
// Run.
type Runner struct {
	topo    bipartite.Topology
	variant Variant
	params  Params
	opts    Options

	// csr is non-nil when topo is a materialized CSR graph, in which case
	// neighborhoods are read zero-copy from its edge arrays. Otherwise
	// (implicit/regenerative topologies) rows are regenerated on demand
	// into the per-worker nbrBuf scratch buffers — or read from rowCache
	// once the late-round frontier has shrunk enough to pin the survivors'
	// rows (see beginRound).
	csr    *bipartite.Graph
	nbrBuf [][]int32
	maxDeg int

	// pq is the topology's point-query view (bipartite.PointQueryable)
	// when rows would otherwise be regenerated: the client phases draw
	// each ball's destination as one NeighborAt lookup instead of
	// regenerating the whole Θ(Δ) row — same Intn draw sequence, same
	// choices layout, so results are bit-for-bit identical to the row
	// path. Nil on the CSR fast path (rows are already zero-copy reads)
	// and for non-queryable topologies (Erdős–Rényi, churn under
	// failures); re-derived whenever the topology version moves, since
	// churn mutations can flip queryability.
	pq bipartite.PointQueryable

	// rowCache holds the frontier row cache for implicit topologies;
	// rowCacheBuilt records whether the current run has snapshotted its
	// frontier into it (at most once per run — the frontier only shrinks).
	rowCache      *bipartite.RowCache
	rowCacheBuilt bool

	// versioned is non-nil when topo is mutable (bipartite.Versioned);
	// topoVersion is the version the Runner's caches were last synced to.
	// PatchTopology re-binds after an in-place mutation; beginRound
	// additionally re-checks the version so a mutation that skipped
	// PatchTopology can never serve stale cached rows or route lanes.
	versioned   bipartite.Versioned
	topoVersion uint64

	pool     *engine.Pool
	capacity int32
	d        int

	// router is non-nil when the rounds run the sharded route/apply
	// pipeline (effective shard count > 1): phase A buckets ball
	// destinations into per-(worker, shard) lanes and phase B folds each
	// shard into the stamped tally's merged view with shard-local writes,
	// replacing the per-worker dense tally and its O(m × workers)
	// merge/reset passes. The tally is in stamped mode for the Runner's
	// whole lifetime then (two-level SPA: per-shard lanes below, epoch-
	// guarded merged counts above), so sparse rounds route through the
	// same lanes instead of allocating per-worker sparse buffers and the
	// round-end reset is an O(1) epoch advance.
	router *engine.Router

	// steal selects the work-stealing chunk scheduler for the round
	// phases (Options.Steal, resolved).
	steal bool

	// switchDivisor is EngineAuto's density threshold
	// (Options.SparseSwitchDivisor, defaulted or autotuned).
	switchDivisor int

	// Per-client state.
	alive   []int32      // unassigned balls of client v
	choices []int32      // this round's chosen servers, d slots per client
	streams []rng.Stream // private random stream of client v
	// cumNbrReceived is Σ_{i≤t} r_i(N(v)) per client; allocated only when
	// neighborhood tracking is on.
	cumNbrReceived []int64
	// assignments[v] collects the servers that accepted v's balls;
	// allocated only when Options.TrackAssignments is set.
	assignments [][]int32

	// Per-server state.
	tally         *engine.Tally // requests received this round
	load          []int32       // accepted balls
	receivedTotal []int32       // cumulative received since the start
	burned        []bool        // SAER: burned; RAES: diagnostic "received > capacity"
	// acceptedEpoch[u] == roundEpoch ⇔ server u accepted this round's
	// requests. The epoch encoding means no per-round clearing pass over
	// the m servers is ever needed, in either engine mode; a single byte
	// per server keeps the randomly-accessed working set small (the array
	// is cleared on the uint8 wraparound, once every 255 rounds).
	acceptedEpoch []uint8
	roundEpoch    uint8

	// Sparse-engine state. frontier is the sorted list of clients that
	// still hold alive balls; it is rebuilt in place every sparse round
	// from the per-chunk survivor buffers (frontBuf), whose concatenation
	// in chunk index order preserves the sorted order for every worker
	// count and steal schedule: chunks are contiguous ascending index
	// ranges whose boundaries are a pure function of (range, workers),
	// regardless of which worker executed them. frontChunks records how
	// many chunks the last collection used (== the worker count under the
	// static scheduler, where chunk and worker coincide). Dense update
	// phases also collect survivors into frontBuf (frontierCollected), so
	// the auto-mode switch needs no extra scan.
	sparse            bool
	frontier          []int32
	frontBuf          [][]int32
	frontChunks       int
	frontierCollected bool
	activeClients     int

	// initialized distinguishes the first resetState call (on freshly
	// zeroed allocations) from later Reseed calls that must undo a
	// previous run's state.
	initialized bool

	// tel is the run's telemetry bundle (nil when Options.Telemetry is
	// unset); see runTel for the disabled-path contract.
	tel *runTel

	// Per-worker partial accumulators, reused every round.
	partialSent     []int64
	partialAccepted []int64
	partialAlive    []int64
	partialBurned   []int64
	partialSat      []int64
}

// NewRunner validates the inputs and allocates the run state.
func NewRunner(topo bipartite.Topology, variant Variant, p Params, opts Options) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidGraph, err)
	}
	if variant != SAER && variant != RAES {
		return nil, fmt.Errorf("core: unknown protocol variant %d", int(variant))
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := topo.NumClients()
	m := topo.NumServers()
	if opts.InitialLoads != nil && len(opts.InitialLoads) != m {
		return nil, fmt.Errorf("core: InitialLoads has %d entries for %d servers", len(opts.InitialLoads), m)
	}
	if opts.RequestCounts != nil {
		if len(opts.RequestCounts) != n {
			return nil, fmt.Errorf("core: RequestCounts has %d entries for %d clients", len(opts.RequestCounts), n)
		}
		for v, c := range opts.RequestCounts {
			if c < 0 || c > p.D {
				return nil, fmt.Errorf("core: RequestCounts[%d] = %d outside [0, D=%d]", v, c, p.D)
			}
		}
	}
	pool := engine.NewPool(p.Workers)
	r := &Runner{
		topo:     topo,
		variant:  variant,
		params:   p,
		opts:     opts,
		pool:     pool,
		capacity: int32(p.Capacity()),
		d:        p.D,

		alive:   make([]int32, n),
		choices: make([]int32, n*p.D),
		streams: make([]rng.Stream, n),

		tally:         engine.NewTally(pool, m),
		load:          make([]int32, m),
		receivedTotal: make([]int32, m),
		burned:        make([]bool, m),
		acceptedEpoch: make([]uint8, m),

		frontBuf: make([][]int32, pool.Workers()),

		partialSent:     make([]int64, pool.Workers()),
		partialAccepted: make([]int64, pool.Workers()),
		partialAlive:    make([]int64, pool.Workers()),
		partialBurned:   make([]int64, pool.Workers()),
		partialSat:      make([]int64, pool.Workers()),
	}
	if opts.TrackNeighborhoods {
		r.cumNbrReceived = make([]int64, n)
	}
	if opts.TrackAssignments {
		r.assignments = make([][]int32, n)
	}
	r.tel = newRunTel(opts.Telemetry)
	instrumentPool(opts.Telemetry, pool)
	knobs := resolveKnobs(opts, n, topo.MaxClientDegree(), m, pool.Workers(), rowRegenerating(topo))
	r.switchDivisor = knobs.SparseSwitchDivisor
	r.steal = knobs.Steal
	if knobs.Shards > 1 {
		if rt := engine.NewRouter(pool.Workers(), knobs.Shards, m); rt.Shards() > 1 {
			r.router = rt
		}
	}
	if r.router != nil {
		// The routed pipeline keeps the tally stamped for the Runner's
		// whole lifetime: folds detect first touches by epoch stamp, so
		// no zeroing pass ever streams the counts array.
		r.tally.BeginStamped()
	}
	r.bindTopology(topo)
	r.resetState()
	return r, nil
}

// bindTopology installs topo as the Runner's adjacency source, selecting
// the zero-copy CSR fast path when possible and sizing the per-worker
// neighborhood scratch buffers otherwise.
func (r *Runner) bindTopology(topo bipartite.Topology) {
	r.topo = topo
	r.csr, _ = topo.(*bipartite.Graph)
	r.pq = nil
	if r.csr == nil {
		r.maxDeg = topo.MaxClientDegree()
		if r.nbrBuf == nil {
			r.nbrBuf = make([][]int32, r.pool.Workers())
			for w := range r.nbrBuf {
				r.nbrBuf[w] = make([]int32, 0, r.maxDeg)
			}
		}
		r.pq = bipartite.PointQuerier(topo)
	}
	// A swapped topology regenerates different rows, so any cached
	// frontier rows are stale.
	if r.rowCache != nil {
		r.rowCache.Invalidate()
	}
	r.rowCacheBuilt = false
	r.versioned, _ = topo.(bipartite.Versioned)
	if r.versioned != nil {
		r.topoVersion = r.versioned.TopologyVersion()
		if r.router != nil {
			r.router.SyncTopologyVersion(r.topoVersion)
		}
	}
}

// SwapTopology replaces the Runner's topology with one of identical
// dimensions, keeping every allocated buffer. It is the cheap way to step
// a dynamic scenario whose admissibility graph is re-randomized between
// batches (E12): allocate one Runner for the batch shape, then
// SwapTopology + Reseed per batch. The caller must Reseed (or at least
// not expect a consistent mid-run state) before the next Run.
func (r *Runner) SwapTopology(topo bipartite.Topology) error {
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidGraph, err)
	}
	if topo.NumClients() != r.topo.NumClients() || topo.NumServers() != r.topo.NumServers() {
		return fmt.Errorf("core: SwapTopology dimension mismatch: %dx%d -> %dx%d",
			r.topo.NumClients(), r.topo.NumServers(), topo.NumClients(), topo.NumServers())
	}
	r.bindTopology(topo)
	return nil
}

// PatchTopology re-binds the Runner to its current topology after an
// in-place mutation (a churn.Topology whose edges were rewired, or whose
// clients/servers arrived, departed, failed or recovered between
// epochs). It is SwapTopology's counterpart for topologies that mutate
// instead of being replaced: the graph is revalidated, the degree bound
// refreshed, and the version-keyed caches (frontier row cache, route
// lanes) invalidated when the topology version moved. Dimensions cannot
// change, and as with SwapTopology the caller must Reseed before the
// next Run.
func (r *Runner) PatchTopology() error {
	if err := r.topo.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidGraph, err)
	}
	r.bindTopology(r.topo)
	return nil
}

// neighbors returns client v's neighborhood for use by worker. On the CSR
// fast path it aliases the graph's edge arrays; on the implicit path it
// reads the late-round row cache when v's row is pinned there, and
// otherwise regenerates the row into the worker's scratch buffer, which
// stays valid until the worker's next call.
func (r *Runner) neighbors(worker, v int) []int32 {
	if r.csr != nil {
		return r.csr.ClientNeighbors(v)
	}
	if r.rowCacheBuilt {
		if row, ok := r.rowCache.CachedRow(v); ok {
			return row
		}
	}
	buf := r.topo.AppendClientNeighbors(v, r.nbrBuf[worker][:0])
	r.nbrBuf[worker] = buf
	return buf
}

// parallel runs fn over [0, n) on the scheduler the run is configured
// for: work-stealing chunk deques when stealing is on, the static
// one-shard-per-worker split otherwise. Under the static split the chunk
// index equals the worker index, so chunk-indexed outputs (survivor
// buffers) work identically on both schedulers; worker-indexed scratch
// (tally locals, partial sums) is always owned by a single goroutine.
// Callers accumulate partials with +=, since one worker may execute many
// chunks.
func (r *Runner) parallel(n int, fn func(worker, chunk, lo, hi int)) {
	if r.steal {
		r.pool.StealRange(n, fn)
		return
	}
	r.pool.ParallelRange(n, func(worker, lo, hi int) { fn(worker, worker, lo, hi) })
}

// parallelShards is parallel for ranges of heavyweight items (router
// shards): chunk granularity 1, no chunk-indexed outputs.
func (r *Runner) parallelShards(n int, fn func(worker, lo, hi int)) {
	if r.steal {
		r.pool.StealRangeGrain(n, 1, func(worker, _, lo, hi int) { fn(worker, lo, hi) })
		return
	}
	r.pool.ParallelRange(n, fn)
}

// chunkCount returns how many chunk-indexed output lanes parallel(n, ·)
// can produce, for sizing frontBuf.
func (r *Runner) chunkCount(n int) int {
	if r.steal {
		return r.pool.NumChunks(n)
	}
	return r.pool.Workers()
}

// ensureFrontBuf grows the chunk-indexed survivor buffers to nc lanes.
func (r *Runner) ensureFrontBuf(nc int) {
	for len(r.frontBuf) < nc {
		r.frontBuf = append(r.frontBuf, nil)
	}
	for c := 0; c < nc; c++ {
		r.frontBuf[c] = r.frontBuf[c][:0]
	}
}

// resetState reinitializes all mutable per-run state, allowing the Runner
// to be reused for another trial with the same parameters. It must leave
// the Runner in exactly the state NewRunner produces — including the
// tally, which a starved-client early exit can leave dirty. On the very
// first call (from NewRunner) the per-server buffers are freshly
// allocated and already zero, so their clearing passes are skipped.
func (r *Runner) resetState() {
	dirty := r.initialized
	r.initialized = true
	active := 0
	for i := range r.alive {
		if r.opts.RequestCounts != nil {
			r.alive[i] = int32(r.opts.RequestCounts[i])
		} else {
			r.alive[i] = int32(r.d)
		}
		if r.alive[i] > 0 {
			active++
		}
	}
	r.activeClients = active
	r.sparse = false
	r.frontier = r.frontier[:0]
	r.frontierCollected = false
	if dirty {
		for i := range r.assignments {
			r.assignments[i] = r.assignments[i][:0]
		}
		for i := range r.load {
			r.load[i] = 0
			r.receivedTotal[i] = 0
			r.burned[i] = false
		}
		for i := range r.cumNbrReceived {
			r.cumNbrReceived[i] = 0
		}
		// The tally is reused across trials; a run that exited through the
		// starved-client break leaves the current round's counts in it, so
		// it must be cleared here rather than trusting the round loop's
		// resets (for a stamped routed tally this is an O(1) epoch
		// advance). The same exit leaves the router's lanes and touched
		// lists populated; they are discarded wholesale.
		r.tally.FullReset(r.pool)
		if r.router != nil {
			r.router.Discard()
		}
		if r.rowCache != nil {
			r.rowCache.Invalidate()
		}
		r.rowCacheBuilt = false
	}
	if r.opts.InitialLoads != nil {
		for i, l := range r.opts.InitialLoads {
			if l < 0 {
				l = 0
			}
			r.load[i] = int32(l)
			r.receivedTotal[i] = int32(l)
			if int32(l) >= r.capacity {
				// A server already at (or beyond) capacity can never accept
				// another ball: under SAER it is burned from the start and
				// under RAES the acceptance test always fails; marking it
				// burned keeps the diagnostic series consistent.
				r.burned[i] = true
			}
		}
	}
	rng.ReseedStreamSlice(r.streams, r.params.Seed)
}

// Reseed prepares the Runner for another independent trial with a new
// protocol seed, resetting all protocol state.
func (r *Runner) Reseed(seed uint64) {
	r.params.Seed = seed
	r.resetState()
}

// beginRound advances the accept-epoch and, in auto mode, switches to the
// sparse engine once the active-client density has dropped below the
// threshold. The switch is monotone: alive counts never increase, so a
// run crosses the threshold at most once.
func (r *Runner) beginRound() {
	// Mutable topologies: a version moved since the last bind means rows
	// changed under the Runner (a mutation that skipped PatchTopology);
	// drop the version-keyed caches so no stale row or route lane is ever
	// served. With the PatchTopology contract honored this never fires.
	// The row cache carries its own version stamp (SetVersion below), so
	// its staleness check survives even if the Runner's bookkeeping and
	// the cache ever disagree.
	if r.versioned != nil {
		if v := r.versioned.TopologyVersion(); v != r.topoVersion {
			r.topoVersion = v
			if r.router != nil {
				r.router.SyncTopologyVersion(v)
			}
			// Mutations can flip point-queryability (churn failures make
			// rows read-time filtered, recoveries make them queryable
			// again), so the point-query view is version-keyed too.
			if r.csr == nil {
				r.pq = bipartite.PointQuerier(r.topo)
			}
		}
		if r.rowCacheBuilt && !r.rowCache.ValidFor(r.topoVersion) {
			r.rowCache.Invalidate()
			r.rowCacheBuilt = false
		}
	}
	r.roundEpoch++
	if r.roundEpoch == 0 {
		// uint8 wraparound: every 255 rounds the stamps are cleared so a
		// stale epoch cannot collide with a recycled value. The clearing
		// pass is a single small memclr amortized over 255 rounds.
		clear(r.acceptedEpoch)
		r.roundEpoch = 1
	}
	if !r.sparse && r.opts.Engine != EngineDense {
		if r.opts.Engine == EngineSparse || r.activeClients*r.switchDivisor <= r.topo.NumClients() {
			r.buildFrontier()
			r.sparse = true
			// A routed runner keeps counting through its stamped lanes —
			// sparse rounds only change which clients phase A walks — so
			// the per-worker sparse buffers (O(m × workers) memory) are
			// never allocated. Unrouted runners switch the tally into
			// sparse accumulation: the previous round left the local
			// buffers clean — via the dense Reset, via resetState, or by
			// never writing them at all — which is BeginSparse's
			// precondition.
			if r.router == nil {
				r.tally.BeginSparse()
			}
		}
	}
	// Late-round frontier row cache: on implicit topologies whose draws
	// regenerate whole rows, once the sparse frontier's worst-case row
	// footprint fits the budget, snapshot the survivors' regenerated
	// rows so the remaining rounds read them instead of resampling. One
	// snapshot per run suffices: the frontier only shrinks, so every
	// later survivor is already cached. Point-queryable topologies skip
	// the snapshot — their draws never touch rows, so pinning them would
	// be pure cost (the occasional whole-row consumers regenerate).
	if r.sparse && r.csr == nil && r.pq == nil && !r.rowCacheBuilt &&
		len(r.frontier)*r.maxDeg <= rowCacheEdgeBudget(r.topo.NumClients()) {
		if r.rowCache == nil {
			r.rowCache = bipartite.NewRowCache(r.topo.NumClients())
			if r.tel != nil {
				r.rowCache.SetMetrics(r.tel.rowCache)
			}
		}
		r.rowCache.Cache(r.topo, r.frontier)
		r.rowCache.SetVersion(r.topoVersion)
		r.rowCacheBuilt = true
	}
}

// buildFrontier compacts the indices of clients with alive balls into
// r.frontier, sorted ascending. When the previous dense update phase has
// already collected the survivors into the per-chunk buffers, they are
// just concatenated; otherwise (first round of an EngineSparse run, or a
// sparse start due to mostly-zero RequestCounts) the clients are scanned.
// In both cases chunks cover contiguous ascending index ranges whose
// boundaries depend only on (n, workers), so the concatenation in chunk
// index order yields the same sorted list for every worker count and
// every steal schedule.
func (r *Runner) buildFrontier() {
	if !r.frontierCollected {
		n := r.topo.NumClients()
		nc := r.chunkCount(n)
		r.ensureFrontBuf(nc)
		r.parallel(n, func(_, chunk, lo, hi int) {
			buf := r.frontBuf[chunk]
			for v := lo; v < hi; v++ {
				if r.alive[v] > 0 {
					buf = append(buf, int32(v))
				}
			}
			r.frontBuf[chunk] = buf
		})
		r.frontChunks = nc
	}
	r.frontier = r.frontier[:0]
	for c := 0; c < r.frontChunks; c++ {
		r.frontier = append(r.frontier, r.frontBuf[c]...)
	}
	r.activeClients = len(r.frontier)
}

// Run executes the protocol until completion or the round cap and returns
// the Result. Run may be called again after Reseed.
func (r *Runner) Run() *Result {
	n := r.topo.NumClients()
	m := r.topo.NumServers()
	maxRounds := r.params.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds(n)
	}
	trackRounds := r.opts.TrackRounds || r.opts.TrackNeighborhoods

	res := &Result{
		Variant:    r.variant,
		Params:     r.params,
		NumClients: n,
		NumServers: m,
	}
	if trackRounds {
		res.PerRound = make([]RoundStats, 0, CompletionBound(n)+4)
	}

	aliveTotal := int64(0)
	for _, a := range r.alive {
		aliveTotal += int64(a)
	}
	res.TotalBalls = aliveTotal
	burnedTotal := 0
	round := 0
	for aliveTotal > 0 && round < maxRounds {
		round++
		r.beginRound()
		sp := telemetry.StartSpan(r.tel.drawHist())
		sent := r.phaseClients()
		sp.End()
		sp = telemetry.StartSpan(r.tel.foldHist())
		var touched []int32
		switch {
		case r.router != nil:
			// Sharded rounds (dense and sparse alike) have no merge step:
			// phase B folds each shard's route lanes into the stamped
			// merged view itself (timed under the decide span).
		case r.sparse:
			touched = r.tally.SparseMerge()
		default:
			r.tally.Merge(r.pool)
		}
		sp.End()
		sp = telemetry.StartSpan(r.tel.decideHist())
		newlyBurned, saturated := r.phaseServers(touched)
		sp.End()
		sp = telemetry.StartSpan(r.tel.updateHist())
		accepted, stillAlive := r.phaseUpdateClients()
		sp.End()
		r.tel.countRound(sent, accepted)

		burnedTotal += newlyBurned
		res.TotalRequests += sent
		res.SaturationEvents += int64(saturated)

		if trackRounds {
			stats := RoundStats{
				Round:              round,
				AliveBalls:         int(aliveTotal),
				RequestsSent:       int(sent),
				RequestsAccepted:   int(accepted),
				NewlyBurned:        newlyBurned,
				BurnedTotal:        burnedTotal,
				SaturatedThisRound: saturated,
			}
			if r.opts.TrackNeighborhoods {
				stats.MaxNeighborhoodBurnedFrac, stats.MaxNeighborhoodReceived, stats.MaxKt =
					r.neighborhoodStats()
			}
			res.PerRound = append(res.PerRound, stats)
		}

		aliveTotal = stillAlive
		// If no ball was accepted this round and no server state changed,
		// check whether some client's whole neighborhood is burned: such a
		// client can never place its remaining balls and the run is
		// hopeless (this can only happen when c is far below the paper's
		// threshold).
		if accepted == 0 && newlyBurned == 0 && aliveTotal > 0 && r.variant == SAER {
			if r.hasStarvedClient() {
				break
			}
		}
		switch {
		case r.router != nil:
			// O(1): the stamped counts are invalidated by advancing the
			// epoch — no pass over the tally, however large m is.
			r.tally.StampedReset()
		case r.sparse:
			r.tally.SparseReset()
		default:
			r.tally.Reset(r.pool)
		}
	}

	res.Rounds = round
	res.Work = 2 * res.TotalRequests
	res.UnassignedBalls = int(aliveTotal)
	res.Completed = aliveTotal == 0
	res.BurnedServers = burnedTotal
	r.fillLoadStats(res)
	if r.opts.TrackAssignments {
		res.Assignments = make([][]int32, len(r.assignments))
		for v, a := range r.assignments {
			res.Assignments[v] = append([]int32(nil), a...)
		}
	}
	return res
}

// clientStep draws this round's destinations for client v's alive balls
// into the choices buffer and counts them into the worker's tally. It is
// the shared inner loop of the dense and sparse client phases; the only
// difference between the paths is how v is enumerated.
func (r *Runner) clientStep(worker, v int, denseLocal []int32) int64 {
	a := r.alive[v]
	src := &r.streams[v]
	base := v * r.d
	if pq := r.pq; pq != nil {
		// Point-query path: draw each ball's destination as one O(1)
		// NeighborAt lookup instead of regenerating the Θ(Δ) row. The
		// Intn draw sequence and the choices layout are identical to the
		// row path, and NeighborAt(v, i) equals row[i] by contract, so
		// results are bit-for-bit unchanged.
		deg := pq.ClientDegree(v)
		if denseLocal != nil {
			for i := int32(0); i < a; i++ {
				u := pq.NeighborAt(v, src.Intn(deg))
				r.choices[base+int(i)] = u
				denseLocal[u]++
			}
		} else {
			for i := int32(0); i < a; i++ {
				u := pq.NeighborAt(v, src.Intn(deg))
				r.choices[base+int(i)] = u
				r.tally.SparseAdd(worker, u)
			}
		}
		return int64(a)
	}
	nbrs := r.neighbors(worker, v)
	deg := len(nbrs)
	if denseLocal != nil {
		for i := int32(0); i < a; i++ {
			u := nbrs[src.Intn(deg)]
			r.choices[base+int(i)] = u
			denseLocal[u]++
		}
	} else {
		for i := int32(0); i < a; i++ {
			u := nbrs[src.Intn(deg)]
			r.choices[base+int(i)] = u
			r.tally.SparseAdd(worker, u)
		}
	}
	return int64(a)
}

// clientStepRoute is clientStep's counterpart for the sharded dense
// pipeline: destinations are drawn identically (same per-client stream,
// same choices layout) but instead of bumping a tally they are routed to
// the owning server shard's lane, to be counted by the shard's phase-B
// owner.
func (r *Runner) clientStepRoute(worker, v int, lanes [][]int32, shift uint) int64 {
	a := r.alive[v]
	src := &r.streams[v]
	base := v * r.d
	if pq := r.pq; pq != nil {
		// Point-query path, as in clientStep: same draws, same choices,
		// destinations routed to lanes instead of tallied.
		deg := pq.ClientDegree(v)
		for i := int32(0); i < a; i++ {
			u := pq.NeighborAt(v, src.Intn(deg))
			r.choices[base+int(i)] = u
			s := int(u) >> shift
			lanes[s] = append(lanes[s], u)
		}
		return int64(a)
	}
	nbrs := r.neighbors(worker, v)
	deg := len(nbrs)
	for i := int32(0); i < a; i++ {
		u := nbrs[src.Intn(deg)]
		r.choices[base+int(i)] = u
		s := int(u) >> shift
		lanes[s] = append(lanes[s], u)
	}
	return int64(a)
}

// phaseClients is phase 1: every client with alive balls draws a uniform
// destination in its neighborhood for each of them. Returns the number of
// requests submitted. The dense paths scan all n clients, the sparse
// paths walk only the active frontier; routed runs bucket each ball's
// destination into the owning server shard's lane either way, while
// unrouted runs bump the worker's tally (dense local or sparse SPA).
// Every path draws from the per-client streams in the same per-client
// order, so the choices are schedule-independent; the per-worker sent
// partials are order-independent sums.
func (r *Runner) phaseClients() int64 {
	for w := range r.partialSent {
		r.partialSent[w] = 0
	}
	switch {
	case r.router != nil && r.sparse:
		r.router.ResetLanes()
		shift := r.router.Shift()
		r.parallel(len(r.frontier), func(worker, _, lo, hi int) {
			lanes := r.router.Lanes(worker)
			var sent int64
			for idx := lo; idx < hi; idx++ {
				sent += r.clientStepRoute(worker, int(r.frontier[idx]), lanes, shift)
			}
			r.partialSent[worker] += sent
		})
	case r.sparse:
		r.parallel(len(r.frontier), func(worker, _, lo, hi int) {
			var sent int64
			for idx := lo; idx < hi; idx++ {
				sent += r.clientStep(worker, int(r.frontier[idx]), nil)
			}
			r.partialSent[worker] += sent
		})
	case r.router != nil:
		r.router.ResetLanes()
		shift := r.router.Shift()
		r.parallel(r.topo.NumClients(), func(worker, _, lo, hi int) {
			lanes := r.router.Lanes(worker)
			var sent int64
			for v := lo; v < hi; v++ {
				if r.alive[v] == 0 {
					continue
				}
				sent += r.clientStepRoute(worker, v, lanes, shift)
			}
			r.partialSent[worker] += sent
		})
	default:
		r.parallel(r.topo.NumClients(), func(worker, _, lo, hi int) {
			local := r.tally.Local(worker)
			var sent int64
			for v := lo; v < hi; v++ {
				if r.alive[v] == 0 {
					continue
				}
				sent += r.clientStep(worker, v, local)
			}
			r.partialSent[worker] += sent
		})
	}
	var total int64
	for _, v := range r.partialSent {
		total += v
	}
	return total
}

// serverStep applies the variant's threshold rule to server u for this
// round's recv > 0 requests, updating burned/load/accept state. It
// reports whether the server newly burned and whether it saturated
// (rejected the round while not burned).
func (r *Runner) serverStep(u, recv int32) (newlyBurned, saturated bool) {
	r.receivedTotal[u] += recv
	switch r.variant {
	case SAER:
		if r.burned[u] {
			// A burned server rejects everything; not a new saturation
			// event.
			return false, false
		}
		if r.receivedTotal[u] > r.capacity {
			r.burned[u] = true
			return true, true
		}
		r.load[u] += recv
		r.acceptedEpoch[u] = r.roundEpoch
		return false, false
	default: // RAES
		if !r.burned[u] && r.receivedTotal[u] > r.capacity {
			// Diagnostic only: the server would be burned under SAER's
			// stronger rule (used by the Corollary 2 comparison); RAES
			// itself keeps going.
			r.burned[u] = true
			newlyBurned = true
		}
		if r.load[u]+recv > r.capacity {
			return newlyBurned, true
		}
		r.load[u] += recv
		r.acceptedEpoch[u] = r.roundEpoch
		return newlyBurned, false
	}
}

// phaseServers is phase 2: every server that received requests applies the
// variant's threshold rule. Returns how many servers became burned and how
// many rejected the round while not burned. The unsharded dense path scans
// all m servers; the routed path (dense and sparse rounds alike) has each
// shard owner fold its route lanes into the stamped merged counts (writes
// confined to the shard's contiguous server window) and step exactly the
// servers the fold touched; the unrouted sparse path visits only the
// touched-server list produced by the sparse tally merge. Iteration order
// differs across those paths and across worker/shard counts and steal
// schedules, but it never leaks into results: each server's update
// depends only on its own state, and the per-worker burned/saturated
// tallies are order-independent sums.
func (r *Runner) phaseServers(touched []int32) (newlyBurned, saturated int) {
	for w := range r.partialBurned {
		r.partialBurned[w] = 0
		r.partialSat[w] = 0
	}
	switch {
	case r.router != nil:
		counts := r.tally.Merged()
		r.parallelShards(r.router.Shards(), func(worker, lo, hi int) {
			var nb, sat int64
			for s := lo; s < hi; s++ {
				for _, u := range r.router.FoldShard(s, r.tally) {
					b, sflag := r.serverStep(u, counts[u])
					if b {
						nb++
					}
					if sflag {
						sat++
					}
				}
			}
			r.partialBurned[worker] += nb
			r.partialSat[worker] += sat
		})
	case r.sparse:
		r.parallel(len(touched), func(worker, _, lo, hi int) {
			var nb, sat int64
			for idx := lo; idx < hi; idx++ {
				u := touched[idx]
				b, s := r.serverStep(u, r.tally.ReceivedAt(u))
				if b {
					nb++
				}
				if s {
					sat++
				}
			}
			r.partialBurned[worker] += nb
			r.partialSat[worker] += sat
		})
	default:
		received := r.tally.Merged()
		r.parallel(r.topo.NumServers(), func(worker, _, lo, hi int) {
			var nb, sat int64
			for u := lo; u < hi; u++ {
				recv := received[u]
				if recv == 0 {
					continue
				}
				b, s := r.serverStep(int32(u), recv)
				if b {
					nb++
				}
				if s {
					sat++
				}
			}
			r.partialBurned[worker] += nb
			r.partialSat[worker] += sat
		})
	}
	for w := range r.partialBurned {
		newlyBurned += int(r.partialBurned[w])
		saturated += int(r.partialSat[w])
	}
	return newlyBurned, saturated
}

// updateClientStep counts which of client v's requests were accepted this
// round and updates its alive-ball count, returning (accepted, remaining).
func (r *Runner) updateClientStep(v int) (got, rem int32) {
	a := r.alive[v]
	base := v * r.d
	for i := int32(0); i < a; i++ {
		u := r.choices[base+int(i)]
		if r.acceptedEpoch[u] == r.roundEpoch {
			got++
			if r.assignments != nil {
				r.assignments[v] = append(r.assignments[v], u)
			}
		}
	}
	rem = a - got
	r.alive[v] = rem
	return got, rem
}

// phaseUpdateClients lets every client count which of its requests were
// accepted and update its alive-ball count. Returns the number of accepted
// requests and the total number of balls still alive. The sparse path
// additionally rebuilds the frontier in place from the per-chunk survivor
// buffers (concatenated in chunk index order, which preserves sortedness
// for every steal schedule); the dense path counts the remaining active
// clients so that beginRound can decide when to switch.
func (r *Runner) phaseUpdateClients() (accepted, alive int64) {
	for w := range r.partialAccepted {
		r.partialAccepted[w] = 0
		r.partialAlive[w] = 0
	}
	if r.sparse {
		nc := r.chunkCount(len(r.frontier))
		r.ensureFrontBuf(nc)
		r.parallel(len(r.frontier), func(worker, chunk, lo, hi int) {
			buf := r.frontBuf[chunk]
			var acc, still int64
			for idx := lo; idx < hi; idx++ {
				v := r.frontier[idx]
				got, rem := r.updateClientStep(int(v))
				if rem > 0 {
					buf = append(buf, v)
				}
				acc += int64(got)
				still += int64(rem)
			}
			r.frontBuf[chunk] = buf
			r.partialAccepted[worker] += acc
			r.partialAlive[worker] += still
		})
		r.frontier = r.frontier[:0]
		for c := 0; c < nc; c++ {
			r.frontier = append(r.frontier, r.frontBuf[c]...)
		}
		r.activeClients = len(r.frontier)
	} else {
		// The survivors double as next round's frontier if beginRound
		// decides to switch to the sparse engine; a forced-dense run can
		// never switch, so it skips the collection entirely.
		collect := r.opts.Engine != EngineDense
		nc := 0
		if collect {
			nc = r.chunkCount(r.topo.NumClients())
			r.ensureFrontBuf(nc)
		}
		r.parallel(r.topo.NumClients(), func(worker, chunk, lo, hi int) {
			var buf []int32
			if collect {
				buf = r.frontBuf[chunk]
			}
			var acc, still int64
			for v := lo; v < hi; v++ {
				if r.alive[v] == 0 {
					continue
				}
				got, rem := r.updateClientStep(v)
				if rem > 0 && collect {
					buf = append(buf, int32(v))
				}
				acc += int64(got)
				still += int64(rem)
			}
			if collect {
				r.frontBuf[chunk] = buf
			}
			r.partialAccepted[worker] += acc
			r.partialAlive[worker] += still
		})
		if collect {
			r.frontierCollected = true
			r.frontChunks = nc
			active := 0
			for c := 0; c < nc; c++ {
				active += len(r.frontBuf[c])
			}
			r.activeClients = active
		}
	}
	for w := range r.partialAccepted {
		accepted += r.partialAccepted[w]
		alive += r.partialAlive[w]
	}
	return accepted, alive
}

// neighborhoodStats computes S_t, r_t and K_t (Definitions 3, 5, 6) for
// the current round. It costs O(|E|) and is only invoked when
// Options.TrackNeighborhoods is set. Per-server received counts are read
// through the tally, which resolves them correctly in both engine modes.
func (r *Runner) neighborhoodStats() (maxBurnedFrac float64, maxReceived int, maxKt float64) {
	n := r.topo.NumClients()
	type partial struct {
		frac float64
		recv int64
		kt   float64
	}
	partials := make([]partial, r.pool.Workers())
	cd := float64(r.params.C) * float64(r.d)
	r.pool.ParallelRange(n, func(worker, lo, hi int) {
		p := partial{}
		for v := lo; v < hi; v++ {
			nbrs := r.neighbors(worker, v)
			if len(nbrs) == 0 {
				continue
			}
			var burnedCnt int
			var recvSum int64
			for _, u := range nbrs {
				if r.burned[u] {
					burnedCnt++
				}
				recvSum += int64(r.tally.ReceivedAt(u))
			}
			frac := float64(burnedCnt) / float64(len(nbrs))
			if frac > p.frac {
				p.frac = frac
			}
			if recvSum > p.recv {
				p.recv = recvSum
			}
			r.cumNbrReceived[v] += recvSum
			kt := float64(r.cumNbrReceived[v]) / (cd * float64(len(nbrs)))
			if kt > p.kt {
				p.kt = kt
			}
		}
		partials[worker] = p
	})
	for _, p := range partials {
		if p.frac > maxBurnedFrac {
			maxBurnedFrac = p.frac
		}
		if int(p.recv) > maxReceived {
			maxReceived = int(p.recv)
		}
		if p.kt > maxKt {
			maxKt = p.kt
		}
	}
	return maxBurnedFrac, maxReceived, maxKt
}

// hasStarvedClient reports whether some client still holding balls has a
// fully burned neighborhood (it can never terminate). Only meaningful for
// SAER. The sparse path checks only the frontier — exactly the clients
// that can be starved.
func (r *Runner) hasStarvedClient() bool {
	starvedAt := func(worker, v int) int64 {
		for _, u := range r.neighbors(worker, v) {
			if !r.burned[u] {
				return 0
			}
		}
		return 1
	}
	if r.sparse {
		return r.pool.ReduceInt64(len(r.frontier), func(worker, lo, hi int) int64 {
			for idx := lo; idx < hi; idx++ {
				if starvedAt(worker, int(r.frontier[idx])) != 0 {
					return 1
				}
			}
			return 0
		}) > 0
	}
	return r.pool.ReduceInt64(r.topo.NumClients(), func(worker, lo, hi int) int64 {
		for v := lo; v < hi; v++ {
			if r.alive[v] == 0 {
				continue
			}
			if starvedAt(worker, v) != 0 {
				return 1
			}
		}
		return 0
	}) > 0
}

// fillLoadStats computes the final load summary (and optionally the full
// load vector) into res.
func (r *Runner) fillLoadStats(res *Result) {
	m := r.topo.NumServers()
	maxLoad := 0
	minLoad := int(^uint(0) >> 1)
	var sum int64
	for u := 0; u < m; u++ {
		l := int(r.load[u])
		if l > maxLoad {
			maxLoad = l
		}
		if l < minLoad {
			minLoad = l
		}
		sum += int64(l)
	}
	if m == 0 {
		minLoad = 0
	}
	res.MaxLoad = maxLoad
	res.MinLoad = minLoad
	res.MeanLoad = float64(sum) / float64(m)
	if r.opts.TrackLoads {
		res.Loads = make([]int, m)
		for u := 0; u < m; u++ {
			res.Loads[u] = int(r.load[u])
		}
	}
}
