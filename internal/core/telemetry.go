package core

import (
	"repro/internal/bipartite"
	"repro/internal/engine"
	"repro/internal/telemetry"
)

// runTel bundles the instruments the round loop touches: one counter
// bump and four phase spans per round, resolved once at construction so
// the loop never goes through the registry's mutex. A nil *runTel is
// the disabled state; its accessor methods return nil instruments, so
// every call site is a single nil test and StartSpan(nil) never reads
// the clock. Runner and Driver share the instrument names — in a
// process running both (the wire client's verify mode), they fold into
// the same series, which is what a "requests issued by this process"
// counter should mean.
type runTel struct {
	rounds   *telemetry.Counter
	requests *telemetry.Counter
	accepted *telemetry.Counter

	// Phase histograms, labeled by the round-loop phase: draw (client
	// draws + routing), fold (tally merge / lane fold), decide (server
	// accept/burn decisions), update (client ball retirement).
	draw   *telemetry.Histogram
	fold   *telemetry.Histogram
	decide *telemetry.Histogram
	update *telemetry.Histogram

	rowCache *bipartite.RowCacheMetrics
}

func newRunTel(reg *telemetry.Registry) *runTel {
	if reg == nil {
		return nil
	}
	return &runTel{
		rounds:   reg.Counter("saer_rounds_total"),
		requests: reg.Counter("saer_requests_total"),
		accepted: reg.Counter("saer_accepted_total"),
		draw:     reg.Histogram(`saer_phase_seconds{phase="draw"}`),
		fold:     reg.Histogram(`saer_phase_seconds{phase="fold"}`),
		decide:   reg.Histogram(`saer_phase_seconds{phase="decide"}`),
		update:   reg.Histogram(`saer_phase_seconds{phase="update"}`),
		rowCache: &bipartite.RowCacheMetrics{
			Hits:      reg.Counter("saer_rowcache_hits_total"),
			Misses:    reg.Counter("saer_rowcache_misses_total"),
			Evictions: reg.Counter("saer_rowcache_evictions_total"),
		},
	}
}

// instrumentPool wires the steal-scheduler counters of pool to reg.
func instrumentPool(reg *telemetry.Registry, pool *engine.Pool) {
	if reg == nil {
		return
	}
	pool.Steals = reg.Counter("saer_steals_total")
	pool.StealFails = reg.Counter("saer_steal_failures_total")
}

// The nil-safe accessors the round loops call unconditionally.

func (t *runTel) drawHist() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.draw
}

func (t *runTel) foldHist() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.fold
}

func (t *runTel) decideHist() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.decide
}

func (t *runTel) updateHist() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.update
}

// countRound records one finished round's totals.
func (t *runTel) countRound(sent, accepted int64) {
	if t == nil {
		return
	}
	t.rounds.Add(0, 1)
	t.requests.Add(0, sent)
	t.accepted.Add(0, accepted)
}
