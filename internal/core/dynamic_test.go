package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

func TestInitialLoadsValidation(t *testing.T) {
	g, err := gen.Regular(64, 8, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(g, SAER, Params{D: 2, C: 4, Seed: 1}, Options{InitialLoads: make([]int, 10)})
	if err == nil {
		t.Fatal("InitialLoads with wrong length accepted")
	}
}

func TestInitialLoadsRespected(t *testing.T) {
	g, err := gen.Regular(256, 24, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	init := make([]int, g.NumServers())
	for u := range init {
		init[u] = 3 // capacity will be 8, so plenty of room remains
	}
	res, err := Run(g, SAER, Params{D: 2, C: 4, Seed: 5}, Options{InitialLoads: init, TrackLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run with moderate initial loads did not complete: %v", res)
	}
	// Every final load includes the initial 3 and never exceeds the cap.
	for u, l := range res.Loads {
		if l < 3 {
			t.Fatalf("server %d lost its initial load: %d", u, l)
		}
		if l > res.LoadBound() {
			t.Fatalf("server %d load %d exceeds cap %d", u, l, res.LoadBound())
		}
	}
	// Total load = initial total + all newly placed balls.
	var total int
	for _, l := range res.Loads {
		total += l
	}
	want := 3*g.NumServers() + 2*g.NumClients()
	if total != want {
		t.Errorf("total load %d, want %d", total, want)
	}
}

func TestInitialLoadsAtCapacityBlockServers(t *testing.T) {
	g, err := gen.Regular(256, 24, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	capPerServer := 8 // d=2, c=4
	init := make([]int, g.NumServers())
	// Fill half the servers completely; the rest are empty.
	for u := 0; u < g.NumServers()/2; u++ {
		init[u] = capPerServer
	}
	res, err := Run(g, SAER, Params{D: 2, C: 4, Seed: 9}, Options{InitialLoads: init, TrackLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumServers()/2; u++ {
		if res.Loads[u] != capPerServer {
			t.Fatalf("pre-filled server %d changed load to %d", u, res.Loads[u])
		}
	}
	if !res.Completed {
		// With half the servers gone the remaining capacity (8·n/2 = 4n)
		// still easily fits the 2n new balls, so completion is expected.
		t.Errorf("run did not complete despite sufficient remaining capacity: %v", res)
	}
}
