package core

import (
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/rng"
)

// equivalenceWorkerCounts are the worker counts the contract is checked
// against, per the determinism guarantee: results are independent of both
// the worker count and the engine mode. (With Options.Shards zero the
// shard count follows the worker count, so this sweep already exercises
// the sharded route/apply pipeline at shards = 2, 4, ….)
func equivalenceWorkerCounts() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0)}
}

// equivalenceShardCounts decouple the shard sweep from the worker sweep:
// the sharded round pipeline must produce bit-for-bit identical results
// for every shard count, including shard counts that differ from the
// worker count (and 1, which compiles down to the pre-shard dense loop).
func equivalenceShardCounts() []int {
	return []int{1, 2, 3, 8}
}

// normalizedResult strips the fields that legitimately differ between
// configurations (only Params.Workers — a config echo, not an outcome) so
// the rest can be compared with reflect.DeepEqual.
func normalizedResult(res *Result) *Result {
	c := *res
	c.Params.Workers = 0
	return &c
}

// runEquivalenceCase executes the same run under every (engine mode,
// worker count) combination and fails the test unless all Results —
// including the PerRound series, load vectors and assignments — are
// bit-for-bit identical to the dense single-worker reference.
func runEquivalenceCase(t *testing.T, name string, g *bipartite.Graph, variant Variant, p Params, opts Options) {
	t.Helper()
	ref := func() *Result {
		pp := p
		pp.Workers = 1
		oo := opts
		oo.Engine = EngineDense
		res, err := Run(g, variant, pp, oo)
		if err != nil {
			t.Fatalf("%s: dense reference failed: %v", name, err)
		}
		return normalizedResult(res)
	}()
	for _, mode := range []EngineMode{EngineDense, EngineSparse, EngineAuto} {
		for _, workers := range equivalenceWorkerCounts() {
			pp := p
			pp.Workers = workers
			oo := opts
			oo.Engine = mode
			res, err := Run(g, variant, pp, oo)
			if err != nil {
				t.Fatalf("%s mode=%d workers=%d: %v", name, mode, workers, err)
			}
			got := normalizedResult(res)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: mode=%d workers=%d diverges from dense single-worker reference:\n  ref=%+v\n  got=%+v",
					name, mode, workers, ref, got)
			}
		}
	}
	// Explicit shard sweep, decoupled from the worker count. EngineSparse
	// is omitted: sharding only affects dense rounds, which a forced-sparse
	// run never executes (EngineAuto covers the dense→sparse handoff with
	// the router active).
	for _, shards := range equivalenceShardCounts() {
		for _, mode := range []EngineMode{EngineDense, EngineAuto} {
			for _, workers := range []int{1, 4} {
				pp := p
				pp.Workers = workers
				oo := opts
				oo.Engine = mode
				oo.Shards = shards
				res, err := Run(g, variant, pp, oo)
				if err != nil {
					t.Fatalf("%s mode=%d workers=%d shards=%d: %v", name, mode, workers, shards, err)
				}
				got := normalizedResult(res)
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("%s: mode=%d workers=%d shards=%d diverges from dense single-worker reference:\n  ref=%+v\n  got=%+v",
						name, mode, workers, shards, ref, got)
				}
			}
		}
	}
}

func TestDenseSparseEquivalence(t *testing.T) {
	fullTracking := Options{
		TrackRounds:        true,
		TrackNeighborhoods: true,
		TrackLoads:         true,
		TrackAssignments:   true,
	}
	n := 1024
	g := regularGraph(t, n, 40, 77)
	for _, variant := range []Variant{SAER, RAES} {
		// c=4: fast completion, sparse switch late in the run.
		// c=2: heavy burning, long tail of sparse rounds.
		for _, c := range []float64{4, 2} {
			runEquivalenceCase(t, variant.String(), g, variant,
				Params{D: 2, C: c, Seed: 0xFEED}, fullTracking)
		}
	}
}

func TestDenseSparseEquivalenceIrregularGraph(t *testing.T) {
	g, err := gen.TrustSubset(768, 640, 48, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	runEquivalenceCase(t, "trust-subset", g, SAER,
		Params{D: 3, C: 2.5, Seed: 31},
		Options{TrackRounds: true, TrackLoads: true, TrackAssignments: true})
}

func TestDenseSparseEquivalenceWithRequestCounts(t *testing.T) {
	// A mostly idle client population: only 1 in 8 clients holds balls, so
	// EngineAuto goes sparse on the very first round.
	n := 1024
	g := regularGraph(t, n, 32, 12)
	counts := make([]int, n)
	src := rng.New(99)
	for v := range counts {
		if src.Intn(8) == 0 {
			counts[v] = 1 + src.Intn(2)
		}
	}
	runEquivalenceCase(t, "sparse-demand", g, SAER,
		Params{D: 2, C: 3, Seed: 7},
		Options{RequestCounts: counts, TrackRounds: true, TrackLoads: true})
}

func TestDenseSparseEquivalenceWithInitialLoads(t *testing.T) {
	// The dynamic-scenario shape: servers start preloaded, some at or past
	// capacity (born burned).
	n := 512
	g := regularGraph(t, n, 30, 3)
	loads := make([]int, n)
	src := rng.New(4)
	for u := range loads {
		loads[u] = src.Intn(10) // capacity is 8, so some servers start burned
	}
	runEquivalenceCase(t, "initial-loads", g, SAER,
		Params{D: 2, C: 4, Seed: 13, MaxRounds: 300},
		Options{InitialLoads: loads, TrackRounds: true, TrackLoads: true})
}

func TestDenseSparseEquivalenceStarved(t *testing.T) {
	// The starved-client early exit must fire identically on both paths.
	b := bipartite.NewBuilder(2, 2)
	b.AddEdge(0, 0).AddEdge(1, 0)
	g, err := b.Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	runEquivalenceCase(t, "starved", g, SAER,
		Params{D: 2, C: 1, Seed: 1, MaxRounds: 50},
		Options{TrackRounds: true})
}

// Property: on random small instances, sparse and dense engines agree for
// arbitrary seeds, variants, and thresholds.
func TestQuickDenseSparseEquivalence(t *testing.T) {
	f := func(seed uint64, nRaw, cRaw, vRaw uint8) bool {
		n := 96 + int(nRaw%160)
		c := 1.5 + float64(cRaw%6)/2 // 1.5 .. 4.0
		variant := SAER
		if vRaw&1 == 1 {
			variant = RAES
		}
		g, err := gen.Regular(n, 16, rng.New(seed))
		if err != nil {
			return false
		}
		p := Params{D: 2, C: c, Seed: seed ^ 0x5ca1ab1e, MaxRounds: 400}
		opts := Options{TrackRounds: true, TrackLoads: true}

		run := func(mode EngineMode, workers int) *Result {
			pp := p
			pp.Workers = workers
			oo := opts
			oo.Engine = mode
			res, err := Run(g, variant, pp, oo)
			if err != nil {
				return nil
			}
			return normalizedResult(res)
		}
		ref := run(EngineDense, 1)
		if ref == nil {
			return false
		}
		for _, mode := range []EngineMode{EngineSparse, EngineAuto} {
			for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
				if got := run(mode, workers); got == nil || !reflect.DeepEqual(got, ref) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRunnerReuseAfterStarvedRun is the regression test for the
// dirty-tally reuse bug: a run that exits through the starved-client break
// leaves the break round's counts in the tally, and resetState must clear
// them so that Reseed + Run on a reused Runner matches a fresh Runner
// exactly.
//
// The instance is chosen so the stale counts land on a server whose fate
// is seed-dependent: clients 0,1 see only server 0 (which always burns and
// starves them), client 2 sees servers {0,1}, client 3 sees only server 1.
// With capacity 3, server 1 burns in some runs (clients 2 and 3 collide)
// and survives in others — stale counts on it flip later runs' outcomes,
// which is exactly what the fix must prevent.
func TestRunnerReuseAfterStarvedRun(t *testing.T) {
	b := bipartite.NewBuilder(4, 2)
	b.AddEdge(0, 0).AddEdge(1, 0)
	b.AddEdge(2, 0).AddEdge(2, 1)
	b.AddEdge(3, 1)
	g, err := b.Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{D: 2, C: 1.5, Seed: 0, MaxRounds: 50}
	opts := Options{TrackRounds: true, TrackLoads: true}
	r, err := NewRunner(g, SAER, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep (dirtying seed, reseed seed) pairs: every starved first run
	// must leave the Runner indistinguishable from a fresh one.
	starved := 0
	for dirtySeed := uint64(0); dirtySeed < 8; dirtySeed++ {
		r.Reseed(dirtySeed)
		first := r.Run()
		if first.Completed {
			continue // only starved exits leave a dirty tally
		}
		starved++
		for reseed := uint64(100); reseed < 116; reseed++ {
			r.Reseed(reseed)
			reused := r.Run()
			pp := p
			pp.Seed = reseed
			fresh, err := Run(g, SAER, pp, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizedResult(reused), normalizedResult(fresh)) {
				t.Fatalf("dirty=%d reseed=%d: reused Runner after starved run diverges from fresh Runner:\n  fresh=%+v\n  reused=%+v",
					dirtySeed, reseed, fresh, reused)
			}
			// Re-dirty the runner for the next reseed comparison.
			r.Reseed(dirtySeed)
			r.Run()
		}
	}
	if starved == 0 {
		t.Fatal("setup broken: no seed produced a starved run")
	}
}

// TestRunnerReuseAcrossEngineModes reseeds a Runner through enough trials
// that the tally's epoch stamps from earlier sparse phases are exercised
// by later trials.
func TestRunnerReuseAcrossEngineModes(t *testing.T) {
	g := regularGraph(t, 512, 30, 9)
	for _, mode := range []EngineMode{EngineAuto, EngineSparse} {
		r, err := NewRunner(g, SAER, Params{D: 2, C: 3, Seed: 0}, Options{Engine: mode, TrackLoads: true})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			seed := 0xA5A5 + uint64(trial)
			r.Reseed(seed)
			reused := r.Run()
			fresh, err := Run(g, SAER, Params{D: 2, C: 3, Seed: seed}, Options{Engine: mode, TrackLoads: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizedResult(reused), normalizedResult(fresh)) {
				t.Fatalf("mode=%d trial=%d: reused Runner diverges from fresh Runner", mode, trial)
			}
		}
	}
}
