package core

import (
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/gen"
)

// rowOnly hides a topology's point-query (and version) support, forcing
// the engines onto the whole-row regeneration path — the baseline the
// point-query equivalence cases and BenchmarkPointQueryDraw compare
// against, and the way the row-cache tests keep exercising the cache
// now that point-queryable families skip it. Only wrap implicit
// topologies: a wrapped *Graph would lose the engines' zero-copy
// special case but keep the aliasing AppendClientNeighbors, violating
// the feedback-buffer contract.
type rowOnly struct{ bipartite.Topology }

// TestPointQueryViewSelection pins which topologies the engines draw
// point-wise from: the Feistel families answer point queries, the
// sequential skip-sampler (Erdős–Rényi) does not, and the rowOnly
// wrapper hides support.
func TestPointQueryViewSelection(t *testing.T) {
	reg, err := gen.RegularImplicit(64, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bipartite.PointQuerier(reg) == nil {
		t.Error("regular implicit topology does not answer point queries")
	}
	if bipartite.PointQuerier(rowOnly{reg}) != nil {
		t.Error("rowOnly wrapper still answers point queries")
	}
	er, err := gen.ErdosRenyiImplicit(64, 64, 0.2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bipartite.PointQuerier(er) != nil {
		t.Error("Erdős–Rényi skip-sampler unexpectedly answers point queries")
	}
	csr, err := reg.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if bipartite.PointQuerier(csr) == nil {
		t.Error("CSR graph does not answer point queries")
	}
}

// TestPointQueryDrawEquivalence is the tentpole's proof obligation in
// one place: for every point-queryable family, the point-query draw
// path and the forced row-regeneration path must produce bit-for-bit
// identical Results across engine modes, worker counts, shard counts
// and steal schedules — all against the dense single-worker CSR
// reference. (The broader topology/steal/driver matrices sweep the same
// contract at scale; this test isolates the two access paths.)
func TestPointQueryDrawEquivalence(t *testing.T) {
	type fam struct {
		name string
		topo *gen.Implicit
	}
	mk := func(name string, topo *gen.Implicit, err error) fam {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return fam{name, topo}
	}
	regular, regularErr := gen.RegularImplicit(1024, 40, 0xABCD)
	trust, trustErr := gen.TrustSubsetImplicit(800, 700, 36, 0x7057)
	almost, almostErr := gen.AlmostRegularImplicit(gen.DefaultAlmostRegularConfig(512), 21)
	families := []fam{
		mk("regular", regular, regularErr),
		mk("trust-subset", trust, trustErr),
		mk("almost-regular", almost, almostErr),
	}
	p := Params{D: 2, C: 2.5, Seed: 0xFEED}
	opts := Options{TrackRounds: true, TrackLoads: true, TrackAssignments: true}
	for _, fam := range families {
		if bipartite.PointQuerier(fam.topo) == nil {
			t.Fatalf("%s: family is not point-queryable", fam.name)
		}
		csr, err := fam.topo.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		ref := func() *Result {
			pp := p
			pp.Workers = 1
			oo := opts
			oo.Engine = EngineDense
			res, err := Run(csr, SAER, pp, oo)
			if err != nil {
				t.Fatalf("%s: CSR reference: %v", fam.name, err)
			}
			return normalizedResult(res)
		}()
		paths := []struct {
			name string
			topo bipartite.Topology
		}{{"point-query", fam.topo}, {"row-regen", rowOnly{fam.topo}}}
		for _, path := range paths {
			for _, mode := range []EngineMode{EngineDense, EngineSparse, EngineAuto} {
				for _, workers := range []int{1, 2, 4} {
					for _, shards := range []int{1, 3} {
						for _, steal := range stealModes() {
							pp := p
							pp.Workers = workers
							oo := opts
							oo.Engine = mode
							oo.Shards = shards
							oo.Steal = steal
							res, err := Run(path.topo, SAER, pp, oo)
							if err != nil {
								t.Fatalf("%s/%s mode=%d workers=%d shards=%d steal=%d: %v",
									fam.name, path.name, mode, workers, shards, steal, err)
							}
							if got := normalizedResult(res); !reflect.DeepEqual(got, ref) {
								t.Errorf("%s/%s: mode=%d workers=%d shards=%d steal=%d diverges from CSR reference",
									fam.name, path.name, mode, workers, shards, steal)
							}
						}
					}
				}
			}
		}
	}
}

// TestPointQueryAutotuneDivisor pins the re-derived implicit-big-Δ
// divisor rule: the early sparse switch existed to flee the Θ(Δ) row
// regeneration tax, so it must fire only when rows are actually
// regenerated — not for point-queryable implicit families, whose dense
// rounds now cost CSR-like work.
func TestPointQueryAutotuneDivisor(t *testing.T) {
	topo, err := gen.RegularImplicit(1<<16, 64, 0xCAFE)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(SAER, 2, 2, 1)
	cfg.Workers = 1
	if got := cfg.ResolveKnobs(topo).SparseSwitchDivisor; got != defaultSparseSwitchDivisor {
		t.Errorf("point-queryable implicit big-Δ instance resolved divisor %d, want default %d",
			got, defaultSparseSwitchDivisor)
	}
	if got := cfg.ResolveKnobs(rowOnly{topo}).SparseSwitchDivisor; got != 2 {
		t.Errorf("row-regenerating implicit big-Δ instance resolved divisor %d, want 2", got)
	}
	csr, err := topo.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.ResolveKnobs(csr).SparseSwitchDivisor; got != defaultSparseSwitchDivisor {
		t.Errorf("CSR big-Δ instance resolved divisor %d, want default %d", got, defaultSparseSwitchDivisor)
	}
}
