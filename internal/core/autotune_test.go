package core

import (
	"reflect"
	"testing"

	"repro/internal/engine"
)

// TestAutotuneDeterminism pins AutotuneKnobs as a pure function of
// (n, Δ, m, workers, representation, probe): the golden table below is
// computed with a fixed probe, so it holds on every machine, and a
// repeated call must return the identical knobs. The exact values are
// part of the contract deliberately — a heuristic change must show up as
// a diff here (and in PERFORMANCE.md's crossover tables), never as a
// silent behavior shift.
func TestAutotuneDeterminism(t *testing.T) {
	cache := engine.CacheInfo{L2: 2 << 20, LLC: 8 << 20}
	cases := []struct {
		name        string
		n, delta, m int
		workers     int
		regenRows   bool
		want        TunedKnobs
	}{
		// Quick-mode instances: tally far below L2, single worker — the
		// tuner must leave everything at the legacy defaults.
		{"quick-csr", 2048, 121, 2048, 1, false, TunedKnobs{Shards: 1, SparseSwitchDivisor: 4}},
		{"quick-regen-small-delta", 2048, 16, 2048, 1, true, TunedKnobs{Shards: 1, SparseSwitchDivisor: 4}},
		// Row-regenerating topology (no point-query support) with a large
		// degree on a large instance: regeneration costs Θ(Δ) per visit,
		// so the run leaves the dense scan earlier (divisor 2).
		{"regen-big-delta", 1 << 16, 256, 1 << 16, 1, true, TunedKnobs{Shards: 1, SparseSwitchDivisor: 2}},
		// …but below the n = 2¹⁶ gate the dense scan is cheap and the
		// earlier switch only thrashes the row cache (E16's churn
		// scenario shape: +37% wall-clock before the gate existed).
		{"regen-big-delta-small-n", 1 << 12, 144, 1 << 12, 1, true, TunedKnobs{Shards: 1, SparseSwitchDivisor: 4}},
		// Tally exactly at the L2 boundary (2¹⁸ cells × 8 B = 2 MiB):
		// sharding on one worker is not yet worth it.
		{"l2-boundary", 1 << 18, 16, 1 << 18, 1, false, TunedKnobs{Shards: 1, SparseSwitchDivisor: 4}},
		// Tally past L2: single-worker runs shard for cache blocking
		// (window = L2/2 = 2¹⁷ cells) and switch to sparse earlier.
		{"past-l2-2^20", 1 << 20, 16, 1 << 20, 1, false, TunedKnobs{Shards: 8, SparseSwitchDivisor: 2}},
		{"past-l2-2^22", 1 << 22, 484, 1 << 22, 1, true, TunedKnobs{Shards: 32, SparseSwitchDivisor: 2}},
		// Multi-worker runs always shard at least as finely as the worker
		// count (phase-B parallelism)…
		{"parallel-small", 1 << 16, 256, 1 << 16, 4, false, TunedKnobs{Shards: 4, SparseSwitchDivisor: 4}},
		// …and at least as finely as the cache asks when m outgrows it.
		{"parallel-large", 1 << 22, 484, 1 << 22, 4, true, TunedKnobs{Shards: 32, SparseSwitchDivisor: 2}},
		// Tiny n with a large server side: the shard count is capped so
		// each shard still amortizes its fold.
		{"tiny-n-cap", 1024, 8, 1 << 20, 1, false, TunedKnobs{Shards: 4, SparseSwitchDivisor: 2}},
	}
	for _, tc := range cases {
		got := AutotuneKnobs(tc.n, tc.delta, tc.m, tc.workers, tc.regenRows, cache)
		if got != tc.want {
			t.Errorf("%s: AutotuneKnobs(n=%d, Δ=%d, m=%d, workers=%d, regen=%v) = %+v, want %+v",
				tc.name, tc.n, tc.delta, tc.m, tc.workers, tc.regenRows, got, tc.want)
		}
		again := AutotuneKnobs(tc.n, tc.delta, tc.m, tc.workers, tc.regenRows, cache)
		if again != got {
			t.Errorf("%s: AutotuneKnobs is not deterministic: %+v then %+v", tc.name, got, again)
		}
	}
	// A degenerate probe must fall back to the conservative default
	// instead of dividing by zero or disabling sharding.
	if got := AutotuneKnobs(1<<20, 16, 1<<20, 1, false, engine.CacheInfo{}); got.Shards < 2 {
		t.Errorf("zero probe: expected sharding at m=2^20, got %+v", got)
	}
}

// TestAutotuneKnobsAreResultNeutral runs the same instance with autotune
// on and off and with adversarial explicit knobs, expecting bit-for-bit
// identical results — the tuner may only move wall-clock.
func TestAutotuneKnobsAreResultNeutral(t *testing.T) {
	g := regularGraph(t, 1024, 36, 17)
	p := Params{D: 2, C: 2.5, Seed: 0xAB}
	ref, err := Run(g, SAER, p, Options{Autotune: AutotuneOff, TrackRounds: true, TrackLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Autotune: AutotuneOn, TrackRounds: true, TrackLoads: true},
		{Autotune: AutotuneOn, Shards: 5, TrackRounds: true, TrackLoads: true},
		{Autotune: AutotuneOn, SparseSwitchDivisor: 16, TrackRounds: true, TrackLoads: true},
		{Autotune: AutotuneOff, Shards: 5, SparseSwitchDivisor: 16, TrackRounds: true, TrackLoads: true},
	} {
		got, err := Run(g, SAER, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizedResult(got), normalizedResult(ref)) {
			t.Errorf("opts %+v: result differs from autotune-off reference", opts)
		}
	}
}
