package core

import (
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/gen"
)

// runTopologyEquivalenceCase executes the same run on the implicit
// topology and on its materialized CSR twin under every engine mode,
// worker count, and variant, and fails unless all Results — PerRound
// series, load vectors, assignment lists — are bit-for-bit identical.
// This is the correctness contract of the implicit layer: the topology
// representation is a pure memory/speed knob, never an outcome knob.
func runTopologyEquivalenceCase(t *testing.T, name string, topo *gen.Implicit, p Params, opts Options) {
	t.Helper()
	csr, err := topo.Materialize()
	if err != nil {
		t.Fatalf("%s: materialize: %v", name, err)
	}
	for _, variant := range []Variant{SAER, RAES} {
		ref := func() *Result {
			pp := p
			pp.Workers = 1
			oo := opts
			oo.Engine = EngineDense
			res, err := Run(csr, variant, pp, oo)
			if err != nil {
				t.Fatalf("%s/%s: CSR reference failed: %v", name, variant, err)
			}
			return normalizedResult(res)
		}()
		for _, mode := range []EngineMode{EngineDense, EngineSparse, EngineAuto} {
			for _, workers := range equivalenceWorkerCounts() {
				pp := p
				pp.Workers = workers
				oo := opts
				oo.Engine = mode
				res, err := Run(topo, variant, pp, oo)
				if err != nil {
					t.Fatalf("%s/%s mode=%d workers=%d: %v", name, variant, mode, workers, err)
				}
				if got := normalizedResult(res); !reflect.DeepEqual(got, ref) {
					t.Errorf("%s/%s: implicit mode=%d workers=%d diverges from CSR dense single-worker reference:\n  ref=%+v\n  got=%+v",
						name, variant, mode, workers, ref, got)
				}
			}
		}
		// Shard sweep on the implicit representation: the routed phase A
		// regenerates rows while bucketing destinations, and EngineAuto
		// additionally crosses into the sparse tail where the frontier row
		// cache activates — all of it must stay bit-for-bit equal to the
		// CSR dense single-worker reference.
		for _, shards := range equivalenceShardCounts() {
			for _, mode := range []EngineMode{EngineDense, EngineAuto} {
				pp := p
				pp.Workers = 2
				oo := opts
				oo.Engine = mode
				oo.Shards = shards
				res, err := Run(topo, variant, pp, oo)
				if err != nil {
					t.Fatalf("%s/%s mode=%d shards=%d: %v", name, variant, mode, shards, err)
				}
				if got := normalizedResult(res); !reflect.DeepEqual(got, ref) {
					t.Errorf("%s/%s: implicit mode=%d shards=%d diverges from CSR dense single-worker reference:\n  ref=%+v\n  got=%+v",
						name, variant, mode, shards, ref, got)
				}
			}
		}
	}
}

func TestTopologyEquivalenceRegular(t *testing.T) {
	topo, err := gen.RegularImplicit(1024, 40, 0xABCD)
	if err != nil {
		t.Fatal(err)
	}
	fullTracking := Options{
		TrackRounds:        true,
		TrackNeighborhoods: true,
		TrackLoads:         true,
		TrackAssignments:   true,
	}
	// c=4: fast completion; c=2: heavy burning, long sparse tail (and the
	// starved-client exit on some seeds).
	for _, c := range []float64{4, 2} {
		runTopologyEquivalenceCase(t, "regular", topo, Params{D: 2, C: c, Seed: 0xFEED}, fullTracking)
	}
}

func TestTopologyEquivalenceErdosRenyi(t *testing.T) {
	topo, err := gen.ErdosRenyiImplicit(900, 800, 0.03, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	runTopologyEquivalenceCase(t, "erdos-renyi", topo,
		Params{D: 3, C: 2.5, Seed: 17, MaxRounds: 400},
		Options{TrackRounds: true, TrackLoads: true, TrackAssignments: true})
}

func TestTopologyEquivalenceTrustSubset(t *testing.T) {
	topo, err := gen.TrustSubsetImplicit(800, 700, 36, 0x7057)
	if err != nil {
		t.Fatal(err)
	}
	runTopologyEquivalenceCase(t, "trust-subset", topo,
		Params{D: 2, C: 2.5, Seed: 23},
		Options{TrackRounds: true, TrackLoads: true, TrackAssignments: true})
}

func TestTopologyEquivalenceAlmostRegular(t *testing.T) {
	topo, err := gen.AlmostRegularImplicit(gen.DefaultAlmostRegularConfig(512), 21)
	if err != nil {
		t.Fatal(err)
	}
	runTopologyEquivalenceCase(t, "almost-regular", topo,
		Params{D: 2, C: 3, Seed: 5},
		Options{TrackRounds: true, TrackNeighborhoods: true, TrackLoads: true})
}

// TestTopologySwapReuse checks the E12 reuse pattern: one Runner stepped
// through several re-randomized topologies via SwapTopology + Reseed must
// produce exactly the results of fresh Runners, including carried-over
// initial loads.
func TestTopologySwapReuse(t *testing.T) {
	n := 512
	loads := make([]int, n)
	opts := Options{InitialLoads: loads, TrackLoads: true}
	p := Params{D: 2, C: 4, Seed: 0, Workers: 1}

	first, err := gen.RegularImplicit(n, 24, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(first, SAER, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 4; batch++ {
		topo, err := gen.RegularImplicit(n, 24, 1000+uint64(batch))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SwapTopology(topo); err != nil {
			t.Fatal(err)
		}
		seed := uint64(7777 + batch)
		r.Reseed(seed)
		reused := r.Run()

		pp := p
		pp.Seed = seed
		fresh, err := Run(topo, SAER, pp, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizedResult(reused), normalizedResult(fresh)) {
			t.Fatalf("batch %d: reused Runner diverges from fresh Runner", batch)
		}
		// Carry the accepted loads into the next batch, as E12 does.
		copy(loads, resIntLoads(reused))
	}
}

// resIntLoads returns the result's load vector as ints.
func resIntLoads(res *Result) []int {
	out := make([]int, len(res.Loads))
	copy(out, res.Loads)
	return out
}

// TestTopologySwapRejectsMismatchedDimensions guards the reuse contract.
func TestTopologySwapRejectsMismatchedDimensions(t *testing.T) {
	a, err := gen.RegularImplicit(128, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.RegularImplicit(256, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(a, SAER, Params{D: 2, C: 4, Seed: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SwapTopology(b); err == nil {
		t.Fatal("SwapTopology accepted a topology with different dimensions")
	}
}

// TestTopologySwapCSRToImplicit exercises the scratch-buffer allocation
// path when a Runner built on a CSR graph later swaps to an implicit
// topology of the same shape.
func TestTopologySwapCSRToImplicit(t *testing.T) {
	topo, err := gen.RegularImplicit(256, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := topo.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	p := Params{D: 2, C: 3, Seed: 0, Workers: 2}
	r, err := NewRunner(csr, SAER, p, Options{TrackLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	r.Reseed(42)
	fromCSR := r.Run()
	if err := r.SwapTopology(topo); err != nil {
		t.Fatal(err)
	}
	r.Reseed(42)
	fromImplicit := r.Run()
	if !reflect.DeepEqual(normalizedResult(fromCSR), normalizedResult(fromImplicit)) {
		t.Fatal("same seed on CSR and implicit twins diverged after SwapTopology")
	}
}

var _ bipartite.Topology = (*gen.Implicit)(nil)
