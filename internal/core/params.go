// Package core implements the paper's contribution: the SAER parallel
// load-balancing protocol ("Stop Accepting if Exceeding Requests") and the
// RAES protocol of Becchetti et al. ("Request a link, then Accept if
// Enough Space") that SAER is a variant of.
//
// Both protocols run on an arbitrary bipartite client–server graph in
// synchronous rounds of two phases:
//
//	Phase 1 — every client with unassigned balls picks, for each such
//	ball, a destination server independently and uniformly at random
//	(with replacement) from its neighborhood and submits the request.
//
//	Phase 2 — every server applies a threshold rule to the requests it
//	received this round and answers accept or reject for all of them:
//
//	  SAER: a server that has received more than c·d balls since the
//	  start of the process rejects the round's requests and becomes
//	  *burned*; a burned server rejects every future request.
//
//	  RAES: a server whose accepted load would exceed c·d by accepting
//	  the round's requests rejects them (it is *saturated* this round)
//	  but may accept again in later rounds.
//
// The protocol completes when every ball has been accepted; at that point
// every server's load is at most c·d by construction.
//
// The implementation executes rounds in parallel with worker goroutines
// (see package engine) yet is fully deterministic given the Params.Seed,
// independent of the worker count.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bipartite"
)

// Variant selects which of the two threshold protocols to run.
type Variant int

const (
	// SAER is the paper's protocol: a server that ever receives more than
	// c·d cumulative requests becomes burned and never accepts again.
	SAER Variant = iota
	// RAES is Becchetti et al.'s protocol: a server rejects a round whose
	// acceptance would push its load above c·d, but keeps participating.
	RAES
)

// String returns the protocol's name.
func (v Variant) String() string {
	switch v {
	case SAER:
		return "SAER"
	case RAES:
		return "RAES"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Params are the run parameters of a protocol execution.
type Params struct {
	// D is the request number d: the number of balls each client must
	// place. The paper treats it as an arbitrary constant > 1, but any
	// positive value is accepted.
	D int
	// C is the threshold constant c. Every server accepts at most
	// Capacity() = ⌊C·D⌋ balls. The analysis requires
	// C ≥ max(32·ρ, 288/(η·d)); in practice much smaller constants already
	// give fast termination (experiment E9 quantifies this).
	C float64
	// MaxRounds caps the simulation. Zero selects DefaultMaxRounds(n).
	// If the cap is reached before every ball is placed, Result.Completed
	// is false.
	MaxRounds int
	// Workers is the number of goroutines used per phase; zero selects
	// GOMAXPROCS. The result does not depend on this value.
	Workers int
	// Seed determines all random choices of the run.
	Seed uint64
}

// Capacity returns the per-server acceptance threshold ⌊C·D⌋.
func (p Params) Capacity() int {
	return int(math.Floor(p.C * float64(p.D)))
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.D <= 0 {
		return fmt.Errorf("core: request number D must be positive, got %d", p.D)
	}
	if p.C <= 0 {
		return fmt.Errorf("core: threshold constant C must be positive, got %v", p.C)
	}
	if p.Capacity() < 1 {
		return fmt.Errorf("core: capacity floor(C*D) = %d is below 1", p.Capacity())
	}
	if p.MaxRounds < 0 {
		return fmt.Errorf("core: MaxRounds must be non-negative, got %d", p.MaxRounds)
	}
	return nil
}

// DefaultMaxRounds returns the default round cap used when
// Params.MaxRounds is zero: a comfortable multiple of the paper's
// 3·log₂ n completion bound, so that a misconfigured run terminates with
// Completed == false instead of spinning forever.
func DefaultMaxRounds(n int) int {
	if n < 2 {
		return 64
	}
	return 64 + 30*int(math.Ceil(math.Log2(float64(n))))
}

// CompletionBound returns the paper's completion-time bound of Lemma 4 /
// Theorem 1: 3·log₂ n rounds (the proof argues (1/2)^{3·log₂ n} = n⁻³ per
// ball once S_t ≤ 1/2).
func CompletionBound(n int) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(3 * math.Log2(float64(n))))
}

// MinCRegular returns the smallest threshold constant for which Lemma 4
// holds on ∆-regular graphs: c ≥ max(32, 288/(η·d)), where ∆ ≥ η·log² n.
func MinCRegular(eta float64, d int) float64 {
	if eta <= 0 || d <= 0 {
		return math.Inf(1)
	}
	return math.Max(32, 288/(eta*float64(d)))
}

// MinCAlmostRegular returns the smallest threshold constant for which
// Lemma 19 holds on almost-regular graphs with ∆min(C) ≥ η·log² n and
// ∆max(S)/∆min(C) ≤ ρ: c ≥ max(32·ρ, 288/(η·d)).
func MinCAlmostRegular(eta, rho float64, d int) float64 {
	if eta <= 0 || rho <= 0 || d <= 0 {
		return math.Inf(1)
	}
	return math.Max(32*rho, 288/(eta*float64(d)))
}

// RecommendedC inspects the graph and returns the threshold constant
// prescribed by the paper's analysis for it: the almost-regular bound
// evaluated at the graph's measured η and ρ. The value is conservative —
// the analysis does not optimize constants — so experiments typically also
// explore smaller c (see experiment E9).
func RecommendedC(g *bipartite.Graph, d int) float64 {
	st := g.Stats()
	return MinCAlmostRegular(st.Eta, st.RegularityRatio, d)
}

// ErrInvalidGraph is returned when the input graph cannot support the
// protocol (empty sides or isolated clients).
var ErrInvalidGraph = errors.New("core: graph cannot support the protocol")
