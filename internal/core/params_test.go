package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

func TestVariantString(t *testing.T) {
	if SAER.String() != "SAER" || RAES.String() != "RAES" {
		t.Error("unexpected variant names")
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant should still produce a name")
	}
}

func TestParamsCapacity(t *testing.T) {
	cases := []struct {
		d    int
		c    float64
		want int
	}{
		{1, 4, 4},
		{2, 4, 8},
		{4, 2.5, 10},
		{3, 1.4, 4},
		{2, 0.4, 0},
	}
	for _, tc := range cases {
		p := Params{D: tc.d, C: tc.c}
		if got := p.Capacity(); got != tc.want {
			t.Errorf("Capacity(d=%d, c=%v) = %d, want %d", tc.d, tc.c, got, tc.want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{D: 2, C: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{D: 0, C: 4},
		{D: -1, C: 4},
		{D: 2, C: 0},
		{D: 2, C: -1},
		{D: 2, C: 0.3}, // capacity floor(0.6) = 0
		{D: 2, C: 4, MaxRounds: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestDefaultMaxRounds(t *testing.T) {
	if DefaultMaxRounds(0) <= 0 || DefaultMaxRounds(1) <= 0 {
		t.Error("degenerate sizes should still get a positive cap")
	}
	small := DefaultMaxRounds(1 << 10)
	large := DefaultMaxRounds(1 << 20)
	if large <= small {
		t.Errorf("cap should grow with n: %d vs %d", small, large)
	}
	// The cap must comfortably exceed the paper's bound.
	if DefaultMaxRounds(1<<10) < 3*CompletionBound(1<<10) {
		t.Error("default cap should exceed the theoretical completion bound")
	}
}

func TestCompletionBound(t *testing.T) {
	if CompletionBound(1) != 1 {
		t.Errorf("CompletionBound(1) = %d", CompletionBound(1))
	}
	if got := CompletionBound(1024); got != 30 {
		t.Errorf("CompletionBound(1024) = %d, want 30 (= 3·log2 1024)", got)
	}
	if CompletionBound(1<<20) != 60 {
		t.Errorf("CompletionBound(2^20) = %d, want 60", CompletionBound(1<<20))
	}
}

func TestMinCRegular(t *testing.T) {
	// For large eta·d the 32 floor dominates.
	if got := MinCRegular(10, 4); got != 32 {
		t.Errorf("MinCRegular(10,4) = %v, want 32", got)
	}
	// For small eta the 288/(eta·d) term dominates.
	if got := MinCRegular(1, 4); got != 72 {
		t.Errorf("MinCRegular(1,4) = %v, want 72", got)
	}
	if !math.IsInf(MinCRegular(0, 4), 1) || !math.IsInf(MinCRegular(1, 0), 1) {
		t.Error("degenerate arguments should give +Inf")
	}
}

func TestMinCAlmostRegular(t *testing.T) {
	// rho scales the 32 term.
	if got := MinCAlmostRegular(10, 2, 4); got != 64 {
		t.Errorf("MinCAlmostRegular(10,2,4) = %v, want 64", got)
	}
	if got := MinCAlmostRegular(1, 1, 4); got != 72 {
		t.Errorf("MinCAlmostRegular(1,1,4) = %v, want 72", got)
	}
	if !math.IsInf(MinCAlmostRegular(0, 1, 2), 1) || !math.IsInf(MinCAlmostRegular(1, 0, 2), 1) {
		t.Error("degenerate arguments should give +Inf")
	}
	// The almost-regular bound can never be below the regular one for rho >= 1.
	for _, eta := range []float64{0.5, 1, 2, 8} {
		for _, rho := range []float64{1, 1.5, 3} {
			if MinCAlmostRegular(eta, rho, 2) < MinCRegular(eta, 2) {
				t.Errorf("almost-regular bound below regular bound for eta=%v rho=%v", eta, rho)
			}
		}
	}
}

func TestRecommendedC(t *testing.T) {
	g, err := gen.Regular(1024, 100, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	c := RecommendedC(g, 2)
	if c < 32 || math.IsInf(c, 1) {
		t.Errorf("RecommendedC = %v, want a finite value >= 32", c)
	}
	st := g.Stats()
	want := MinCAlmostRegular(st.Eta, st.RegularityRatio, 2)
	if c != want {
		t.Errorf("RecommendedC = %v, want %v", c, want)
	}
}
