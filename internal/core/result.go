package core

import (
	"errors"
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/telemetry"
)

// RoundStats records the observable quantities of a single round. The
// per-round series are what the analysis in Section 3 of the paper reasons
// about: the number of alive balls (work decay, §3.2), the maximum number
// of requests landing in any client's server-neighborhood r_t
// (Definition 5) and the maximum fraction of burned servers in any
// client's neighborhood S_t (Definition 3).
type RoundStats struct {
	// Round is the 1-based round index.
	Round int
	// AliveBalls is the number of unassigned balls at the start of the
	// round.
	AliveBalls int
	// RequestsSent is the number of ball requests submitted in phase 1.
	RequestsSent int
	// RequestsAccepted is the number of those requests accepted in phase 2.
	RequestsAccepted int
	// NewlyBurned is the number of servers that became burned this round
	// (SAER). For RAES it counts servers whose cumulative received total
	// first exceeded the capacity this round — the diagnostic analogue used
	// by Corollary 2's domination argument.
	NewlyBurned int
	// BurnedTotal is the cumulative number of burned servers after the
	// round (same caveat for RAES as NewlyBurned).
	BurnedTotal int
	// SaturatedThisRound is the number of servers that rejected this
	// round's requests while not being burned (RAES saturation events; for
	// SAER it is always equal to NewlyBurned).
	SaturatedThisRound int
	// MaxNeighborhoodBurnedFrac is S_t = max_v S_t(v): the maximum over
	// clients of the fraction of burned servers in the client's
	// neighborhood. Populated only when Options.TrackNeighborhoods is set.
	MaxNeighborhoodBurnedFrac float64
	// MaxNeighborhoodReceived is r_t = max_v r_t(N(v)): the maximum over
	// clients of the total requests received this round by the client's
	// neighborhood. Populated only when Options.TrackNeighborhoods is set.
	MaxNeighborhoodReceived int
	// MaxKt is K_t = max_v (1/(c·d·∆_v))·Σ_{i≤t} r_i(N(v)), the quantity the
	// paper's induction bounds (Definition 6 / eq. 26). Populated only when
	// Options.TrackNeighborhoods is set.
	MaxKt float64
}

// Result is the outcome of one protocol execution.
type Result struct {
	// Variant and Params echo the run configuration.
	Variant Variant
	Params  Params
	// NumClients and NumServers echo the graph dimensions.
	NumClients int
	NumServers int

	// Completed reports whether every ball was assigned within the round
	// cap.
	Completed bool
	// Rounds is the number of rounds executed.
	Rounds int
	// TotalRequests is the total number of ball requests submitted over
	// the whole run.
	TotalRequests int64
	// Work is the total number of exchanged messages: every request
	// message plus its accept/reject answer, i.e. 2·TotalRequests.
	Work int64
	// MaxLoad is the maximum number of balls accepted by any server.
	MaxLoad int
	// MinLoad is the minimum number of balls accepted by any server.
	MinLoad int
	// MeanLoad is the average number of balls accepted per server.
	MeanLoad float64
	// BurnedServers is the number of burned servers at the end (SAER), or
	// the number of servers whose cumulative received total exceeded the
	// capacity (RAES diagnostic).
	BurnedServers int
	// SaturationEvents is the total number of (server, round) pairs in
	// which a non-burned server rejected a round's requests.
	SaturationEvents int64
	// UnassignedBalls is the number of balls still alive when the run
	// stopped (zero iff Completed).
	UnassignedBalls int

	// Loads is the per-server accepted load. Populated only when
	// Options.TrackLoads is set.
	Loads []int
	// PerRound is the per-round series. Populated only when
	// Options.TrackRounds (or TrackNeighborhoods) is set.
	PerRound []RoundStats
	// Assignments[v] lists the servers that accepted client v's balls, in
	// acceptance order (length ≤ the client's request count; equal to it
	// iff the run completed). Populated only when
	// Options.TrackAssignments is set.
	Assignments [][]int32
	// TotalBalls is the overall number of balls the clients had to place
	// (n·d, or the sum of RequestCounts when per-client counts are used).
	TotalBalls int64
}

// Options selects which optional diagnostics a run records. All tracking
// is off by default because the neighborhood statistics cost O(|E|) per
// round.
type Options struct {
	// Engine selects the round-loop iteration strategy (dense streaming
	// scan, sparse active-frontier walk, or the automatic switch between
	// them). All modes compute the identical random process; the result is
	// bit-for-bit independent of this knob. See EngineMode.
	Engine EngineMode
	// Shards is the target server-shard count of the dense round pipeline:
	// dense rounds route each ball's destination to the owning server
	// shard in phase A and apply the buffered increments plus the
	// accept/saturate decisions shard-locally in phase B, replacing the
	// per-worker tally fold. Zero selects the worker count (so a parallel
	// run shards by default); 1 disables sharding and runs the pre-shard
	// dense loop. Like Engine and Params.Workers this is a pure
	// performance knob: results are bit-for-bit independent of it (the
	// equivalence tests sweep {1, 2, 3, 8}).
	Shards int
	// SparseSwitchDivisor overrides EngineAuto's density threshold: the
	// run switches to the sparse frontier path once
	// activeClients × divisor ≤ numClients (larger values switch later).
	// Zero selects the autotuned value (or the static default of 4 when
	// Autotune is off). Results are independent of the value; only
	// wall-clock changes.
	SparseSwitchDivisor int
	// Autotune selects whether the unset performance knobs — Shards and
	// SparseSwitchDivisor — are derived per instance from (n, Δ, m,
	// workers) and a measured-once cache-size probe (see AutotuneKnobs)
	// instead of the static defaults. The zero value is AutotuneOn;
	// explicitly set knobs always win over the tuner. Like every other
	// knob in this struct's performance group, results are bit-for-bit
	// independent of it.
	Autotune AutotuneMode
	// Steal selects the scheduler for the round loop's entity ranges:
	// work-stealing chunk deques (late sparse rounds and skewed churn
	// frontiers keep all workers busy) versus the static one-shard-per-
	// worker split. The zero value is StealAuto: stealing on multi-worker
	// runs, the static split on single-worker runs (where a deque would
	// be pure overhead). Results are bit-for-bit independent of the
	// schedule — see the determinism contract in engine.StealRange.
	Steal StealMode
	// TrackRounds records a RoundStats entry per round.
	TrackRounds bool
	// TrackNeighborhoods additionally computes S_t, r_t and K_t per round
	// (implies TrackRounds).
	TrackNeighborhoods bool
	// TrackLoads stores the final per-server load vector in the result.
	TrackLoads bool
	// InitialLoads, when non-nil, pre-loads every server with the given
	// number of already-accepted balls before the first round. This models
	// the dynamic/online scenario of the paper's future-work section, where
	// new client batches arrive while servers still carry load from earlier
	// batches. The slice length must equal the number of servers; a server
	// whose initial load already exceeds the capacity starts burned (SAER)
	// or permanently saturated (RAES).
	InitialLoads []int
	// TrackAssignments records, for every client, which server accepted
	// each of its balls (Result.Assignments). This is what a real client
	// application needs — the actual request→server mapping — and it also
	// exposes the bounded-degree assignment subgraph that Becchetti et
	// al.'s expander construction is built from.
	TrackAssignments bool
	// RequestCounts, when non-nil, gives each client its own number of
	// balls (the paper's general "at most d" case). Entries must be in
	// [0, D]; the slice length must equal the number of clients. When nil,
	// every client has exactly D balls.
	RequestCounts []int
	// Telemetry, when non-nil, receives live counters and per-phase
	// latency histograms from the run (rounds/requests totals, phase
	// spans, steal and row-cache counters; see internal/telemetry).
	// Pure observation: results are bit-for-bit identical whether it is
	// set or nil — the telemetry equivalence suite pins this — and the
	// nil path costs one pointer test per phase per round.
	Telemetry *telemetry.Registry
}

// String summarizes the result in one line.
func (r *Result) String() string {
	status := "completed"
	if !r.Completed {
		status = fmt.Sprintf("stopped with %d balls unassigned", r.UnassignedBalls)
	}
	return fmt.Sprintf("%s(n=%d, d=%d, c=%.2f): %s in %d rounds, work=%d, maxLoad=%d, burned=%d",
		r.Variant, r.NumClients, r.Params.D, r.Params.C, status, r.Rounds, r.Work, r.MaxLoad, r.BurnedServers)
}

// WorkPerBall returns the number of messages exchanged per ball, the
// normalization used to check the Θ(n) work bound (with d constant, work
// per ball should be O(1) independently of n).
func (r *Result) WorkPerBall() float64 {
	balls := float64(r.TotalBalls)
	if balls == 0 {
		balls = float64(r.NumClients) * float64(r.Params.D)
	}
	if balls == 0 {
		return 0
	}
	return float64(r.Work) / balls
}

// AssignmentGraph builds the bipartite subgraph induced by the accepted
// assignments: client v is connected to exactly the servers that accepted
// its balls (with multiplicity when several balls of v landed on the same
// server). On a completed run every client has degree equal to its request
// count and every server has degree at most ⌊c·d⌋ — this is the
// bounded-degree subgraph that Becchetti et al.'s expander construction
// extracts from RAES. It requires the run to have been executed with
// Options.TrackAssignments.
func (r *Result) AssignmentGraph() (*bipartite.Graph, error) {
	if r.Assignments == nil {
		return nil, errors.New("core: AssignmentGraph requires Options.TrackAssignments")
	}
	b := bipartite.NewBuilder(r.NumClients, r.NumServers)
	for v, servers := range r.Assignments {
		for _, u := range servers {
			b.AddEdge(v, int(u))
		}
	}
	return b.Build(bipartite.KeepParallelEdges)
}

// LoadBound returns the protocol's guaranteed load cap ⌊c·d⌋.
func (r *Result) LoadBound() int { return r.Params.Capacity() }

// RespectsLoadBound reports whether the measured maximum load is within
// the guaranteed cap; it should always be true (it is a protocol
// invariant, not a probabilistic statement).
func (r *Result) RespectsLoadBound() bool { return r.MaxLoad <= r.LoadBound() }
