package core

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/gen"
)

// stealModes are the schedules the steal-schedule equivalence suite
// sweeps: the resolved default, stealing forced on (exercises the chunk
// deques even single-worker), and the static split.
func stealModes() []StealMode {
	return []StealMode{StealAuto, StealOn, StealOff}
}

// TestStealScheduleEquivalence is the work-stealing scheduler's
// determinism contract: core.Results are bit-for-bit identical across
// worker counts × shard counts × steal modes × engine modes × topology
// backends. The reference is the dense, single-worker, steal-off run on
// the materialized CSR graph; the implicit backend regenerates the exact
// same edge multiset (Materialize twin), so its results must match too.
func TestStealScheduleEquivalence(t *testing.T) {
	const n, delta = 1024, 40
	impl, err := gen.RegularImplicit(n, delta, 77)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := bipartite.Materialize(impl)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{D: 2, C: 2, Seed: 0xFEED}
	opts := Options{TrackRounds: true, TrackLoads: true, TrackAssignments: true}

	refRes, err := Run(csr, SAER, func() Params { pp := p; pp.Workers = 1; return pp }(),
		func() Options { oo := opts; oo.Engine = EngineDense; oo.Steal = StealOff; return oo }())
	if err != nil {
		t.Fatal(err)
	}
	ref := normalizedResult(refRes)

	backends := []struct {
		name string
		topo bipartite.Topology
	}{{"csr", csr}, {"implicit", impl}, {"implicit-row", rowOnly{impl}}}
	for _, backend := range backends {
		for _, steal := range stealModes() {
			for _, mode := range []EngineMode{EngineDense, EngineSparse, EngineAuto} {
				for _, workers := range []int{1, 2, 4} {
					for _, shards := range []int{0, 1, 3} {
						pp := p
						pp.Workers = workers
						oo := opts
						oo.Engine = mode
						oo.Steal = steal
						oo.Shards = shards
						res, err := Run(backend.topo, SAER, pp, oo)
						if err != nil {
							t.Fatalf("%s steal=%d mode=%d workers=%d shards=%d: %v",
								backend.name, steal, mode, workers, shards, err)
						}
						if got := normalizedResult(res); !reflect.DeepEqual(got, ref) {
							t.Errorf("%s: steal=%d mode=%d workers=%d shards=%d diverges from reference:\n  ref=%+v\n  got=%+v",
								backend.name, steal, mode, workers, shards, ref, got)
						}
					}
				}
			}
		}
	}
}

// TestStealSkewEquivalence artificially delays one worker's chunks so the
// other workers must steal most of its deque, and checks the skewed
// schedule still produces the bit-for-bit reference result. This is the
// adversarial case of the scheduler's determinism contract: results may
// depend on chunk boundaries (pure) but never on which worker executed a
// chunk (scheduling).
func TestStealSkewEquivalence(t *testing.T) {
	g := regularGraph(t, 2048, 40, 31)
	p := Params{D: 2, C: 2, Seed: 0xD00F}
	opts := Options{TrackRounds: true, TrackLoads: true}

	ref, err := Run(g, SAER, func() Params { pp := p; pp.Workers = 1; return pp }(), opts)
	if err != nil {
		t.Fatal(err)
	}

	pp := p
	pp.Workers = 4
	oo := opts
	oo.Steal = StealOn
	r, err := NewRunner(g, SAER, pp, oo)
	if err != nil {
		t.Fatal(err)
	}
	// Stall worker 0 on its first chunks of each Run: a few milliseconds
	// is enough for the other deques to drain and steal from worker 0's.
	var stalls atomic.Int32
	r.pool.ChunkDelay = func(worker, chunk int) {
		if worker == 0 && stalls.Add(1) <= 3 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	for trial := 0; trial < 3; trial++ {
		stalls.Store(0)
		r.Reseed(p.Seed)
		got := r.Run()
		if !reflect.DeepEqual(normalizedResult(got), normalizedResult(ref)) {
			t.Fatalf("trial %d: skewed steal schedule diverges from single-worker reference:\n  ref=%+v\n  got=%+v",
				trial, ref, got)
		}
	}
}
