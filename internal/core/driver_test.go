package core

import (
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/rng"
)

// driverEquivalenceCase runs the same configuration through the Runner
// (dense single-worker reference) and through Driver+LocalBank across
// client worker counts and shard counts, and fails unless every Result —
// PerRound series, load vectors, assignments, all of it — is bit-for-bit
// identical. This is the contract the wire transport inherits: the
// Driver is its client side (its phases fan out over the worker pool),
// the LocalBank stands where the remote shard processes will.
func driverEquivalenceCase(t *testing.T, name string, topo bipartite.Topology, cfg Config) {
	t.Helper()
	ref := func() *Result {
		rcfg := cfg
		rcfg.Workers = 1
		rcfg.Engine = EngineDense
		res, err := rcfg.Run(topo)
		if err != nil {
			t.Fatalf("%s: runner reference failed: %v", name, err)
		}
		return normalizedResult(res)
	}()
	for _, workers := range []int{1, 2, 4} {
		for _, shards := range []int{1, 2, 3, 8} {
			wcfg := cfg
			wcfg.Workers = workers
			dr, err := NewLocalDriver(topo, wcfg, shards)
			if err != nil {
				t.Fatalf("%s workers=%d shards=%d: %v", name, workers, shards, err)
			}
			res, err := dr.Run()
			if err != nil {
				t.Fatalf("%s workers=%d shards=%d: %v", name, workers, shards, err)
			}
			got := normalizedResult(res)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: driver workers=%d shards=%d diverges from runner reference:\n  ref=%+v\n  got=%+v",
					name, workers, shards, ref, got)
			}
		}
	}
}

func TestDriverMatchesRunner(t *testing.T) {
	n := 1024
	g := regularGraph(t, n, 40, 77)
	for _, variant := range []Variant{SAER, RAES} {
		// c=4: fast completion; c=2: heavy burning and saturation.
		for _, c := range []float64{4, 2} {
			cfg := NewConfig(variant, 2, c, 0xFEED)
			cfg.TrackRounds = true
			cfg.TrackNeighborhoods = true
			cfg.TrackLoads = true
			cfg.TrackAssignments = true
			driverEquivalenceCase(t, variant.String(), g, cfg)
		}
	}
}

func TestDriverMatchesRunnerIrregularGraph(t *testing.T) {
	g, err := gen.TrustSubset(768, 640, 48, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(SAER, 3, 3, 99)
	cfg.TrackRounds = true
	cfg.TrackLoads = true
	driverEquivalenceCase(t, "trust-subset", g, cfg)
}

func TestDriverMatchesRunnerDynamicState(t *testing.T) {
	// The churn scheduler's epoch shape: pre-loaded servers (some at or
	// beyond capacity) and per-client request counts, the state a wire
	// executor must carry across epochs.
	n := 512
	g := regularGraph(t, n, 24, 31)
	cfg := NewConfig(SAER, 2, 4, 13)
	cfg.MaxRounds = 300
	cfg.TrackRounds = true
	cfg.TrackLoads = true
	cfg.InitialLoads = make([]int, n)
	cfg.RequestCounts = make([]int, n)
	src := rng.New(42)
	capacity := cfg.Params().Capacity()
	for i := 0; i < n; i++ {
		cfg.InitialLoads[i] = src.Intn(capacity + 2) // some start burned
		cfg.RequestCounts[i] = src.Intn(cfg.D + 1)   // some start finished
	}
	driverEquivalenceCase(t, "dynamic-state", g, cfg)
}

func TestDriverMatchesRunnerStarved(t *testing.T) {
	// The SAER starved-client early exit must fire on the same round.
	b := bipartite.NewBuilder(2, 2)
	b.AddEdge(0, 0).AddEdge(1, 0)
	g, err := b.Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(SAER, 2, 1, 1)
	cfg.MaxRounds = 50
	cfg.TrackRounds = true
	driverEquivalenceCase(t, "starved", g, cfg)
}

func TestDriverMatchesRunnerImplicitTopology(t *testing.T) {
	topo, err := gen.TrustSubsetImplicit(512, 512, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(RAES, 2, 3, 0xBEEF)
	cfg.TrackRounds = true
	cfg.TrackLoads = true
	// The bare topology drives the Driver's point-query draw path, the
	// rowOnly wrapper its row-regeneration path; both must match the
	// Runner reference bit for bit.
	driverEquivalenceCase(t, "implicit", topo, cfg)
	driverEquivalenceCase(t, "implicit-row", rowOnly{topo}, cfg)
}

// TestDriverReseedReuse pins the trial-reuse contract: a reused Driver
// (Reseed + Run) matches a fresh one for every seed, including after a
// starved early exit left mid-round state behind.
func TestDriverReseedReuse(t *testing.T) {
	g := regularGraph(t, 256, 16, 3)
	cfg := NewConfig(SAER, 2, 2, 0)
	cfg.Workers = 2 // reuse must also reset the parallel phase state
	cfg.TrackRounds = true
	cfg.TrackLoads = true
	reused, err := NewLocalDriver(g, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		reused.Reseed(seed)
		got, err := reused.Run()
		if err != nil {
			t.Fatal(err)
		}
		fcfg := cfg
		fcfg.Seed = seed
		fresh, err := NewLocalDriver(g, fcfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed=%d: reused driver diverges from fresh driver:\n  fresh=%+v\n  reused=%+v", seed, want, got)
		}
	}
}

// TestLocalBankRejectsMalformedBatches pins the bank's input contract —
// the wire server relies on the same checks to reject corrupt frames.
func TestLocalBankRejectsMalformedBatches(t *testing.T) {
	bank, err := NewLocalBank(SAER, 8, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.Reset(nil); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		touched []int32
		counts  []int32
	}{
		{"length mismatch", []int32{1, 2}, []int32{1}},
		{"unsorted", []int32{2, 1}, []int32{1, 1}},
		{"out of range", []int32{3, 99}, []int32{1, 1}},
		{"non-positive count", []int32{4}, []int32{0}},
	}
	for _, tc := range cases {
		if _, err := bank.DecideRound(tc.touched, tc.counts); err == nil {
			t.Errorf("%s: DecideRound accepted a malformed batch", tc.name)
		}
	}
}
