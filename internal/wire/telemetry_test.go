package wire

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestWireTelemetryEquivalence extends the loopback equivalence contract
// to the telemetry layer: a fully instrumented wire run — client
// registry on the Driver and the Bank, a second registry on every shard
// server — must reproduce the un-instrumented in-process result bit for
// bit, and the instruments must have counted the run (RTT samples per
// round call, transport bytes both ways, server rounds per shard).
func TestWireTelemetryEquivalence(t *testing.T) {
	n := 512
	g := testGraph(t, n, 24, 77)
	cfg := core.NewConfig(core.SAER, 2, 2, 0xFEED)
	cfg.TrackRounds = true
	cfg.TrackLoads = true
	cfg.TrackAssignments = true
	ref, err := cfg.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		for _, workers := range []int{1, 4} {
			clientReg := telemetry.NewRegistry()
			serverReg := telemetry.NewRegistry()
			addrs := make([]string, shards)
			for i := range addrs {
				addrs[i] = "127.0.0.1:0"
			}
			ss, err := StartSetTelemetry(addrs, serverReg)
			if err != nil {
				t.Fatal(err)
			}
			wcfg := cfg
			wcfg.Workers = workers
			wcfg.Telemetry = clientReg
			bank, err := DialConfig(ss.Addrs(), wcfg.Variant, int32(wcfg.Params().Capacity()), n,
				BankConfig{Telemetry: clientReg})
			if err != nil {
				ss.Close()
				t.Fatal(err)
			}
			dr, err := core.NewDriver(g, wcfg, bank)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dr.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizedResult(res), normalizedResult(ref)) {
				t.Errorf("shards=%d workers=%d: instrumented wire run diverges from un-instrumented in-process run",
					shards, workers)
			}

			csnap := clientReg.Snapshot()
			if got := csnap.Counters["saer_rounds_total"]; got != int64(ref.Rounds) {
				t.Errorf("shards=%d workers=%d: client saer_rounds_total=%d, want %d", shards, workers, got, ref.Rounds)
			}
			var rtt, tx, rx int64
			for name, h := range csnap.Histograms {
				if strings.HasPrefix(name, "saer_wire_rtt_seconds") {
					rtt += h.Count
				}
			}
			for name, v := range csnap.Counters {
				if strings.HasPrefix(name, "saer_wire_tx_bytes_total") {
					tx += v
				}
				if strings.HasPrefix(name, "saer_wire_rx_bytes_total") {
					rx += v
				}
			}
			if rtt == 0 || tx == 0 || rx == 0 {
				t.Errorf("shards=%d workers=%d: empty wire instruments (rtt=%d tx=%d rx=%d)",
					shards, workers, rtt, tx, rx)
			}

			ssnap := serverReg.Snapshot()
			var srvRounds int64
			for name, v := range ssnap.Counters {
				if strings.HasPrefix(name, "saer_server_rounds_total") {
					srvRounds += v
				}
			}
			// Every round touches at most `shards` shard servers; at least
			// one per round, exactly ref.Rounds when there is one shard.
			if shards == 1 && srvRounds != int64(ref.Rounds) {
				t.Errorf("workers=%d: server rounds=%d, want %d", workers, srvRounds, ref.Rounds)
			}
			if srvRounds < int64(ref.Rounds) || srvRounds > int64(ref.Rounds*shards) {
				t.Errorf("shards=%d workers=%d: server rounds=%d outside [%d,%d]",
					shards, workers, srvRounds, ref.Rounds, ref.Rounds*shards)
			}
			// All sessions hung up yet? Close first, then the gauges must
			// read zero (conn teardown decrements them).
			bank.Close()
			if err := ss.Close(); err != nil {
				t.Fatal(err)
			}
			end := serverReg.Snapshot()
			for name, v := range end.Gauges {
				if strings.HasPrefix(name, "saer_server_open_") && v != 0 {
					t.Errorf("shards=%d workers=%d: gauge %s=%d after close, want 0", shards, workers, name, v)
				}
			}
		}
	}
}

// TestWireTelemetrySpills pins the spill counter: a frame limit small
// enough to fragment every round batch must both preserve the result
// and register continuation fragments on the client and the server.
func TestWireTelemetrySpills(t *testing.T) {
	n := 256
	g := testGraph(t, n, 16, 9)
	cfg := core.NewConfig(core.SAER, 2, 4, 0xBEEF)
	cfg.TrackLoads = true
	ref, err := cfg.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 64
	clientReg := telemetry.NewRegistry()
	serverReg := telemetry.NewRegistry()
	ss, err := StartSetTelemetry([]string{"127.0.0.1:0", "127.0.0.1:0"}, serverReg)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for _, srv := range ss.Servers() {
		srv.SetFrameLimit(limit)
	}
	wcfg := cfg
	wcfg.Telemetry = clientReg
	bank, err := DialConfig(ss.Addrs(), cfg.Variant, int32(cfg.Params().Capacity()), n,
		BankConfig{FrameLimit: limit, Telemetry: clientReg})
	if err != nil {
		t.Fatal(err)
	}
	defer bank.Close()
	dr, err := core.NewDriver(g, wcfg, bank)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizedResult(res), normalizedResult(ref)) {
		t.Error("spilling instrumented run diverges from in-process reference")
	}
	count := func(snap *telemetry.Snapshot, prefix string) int64 {
		var total int64
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, prefix) {
				total += v
			}
		}
		return total
	}
	if got := count(clientReg.Snapshot(), "saer_wire_spilled_frames_total"); got == 0 {
		t.Error("no client spills counted under a 64-byte frame limit")
	}
	if got := count(serverReg.Snapshot(), "saer_server_spilled_frames_total"); got == 0 {
		t.Error("no server spills counted under a 64-byte frame limit")
	}
}
