package wire

import (
	"fmt"

	"repro/internal/telemetry"
)

// Wire-layer telemetry. Both halves of the transport carry an optional
// instrument bundle, resolved once at construction (client: DialConfig
// via BankConfig.Telemetry; server: SetTelemetry/StartSetTelemetry) so
// the per-frame hot paths never touch the registry. All instruments are
// nil-receiver-safe, so an un-instrumented connection pays one nil test
// per frame and nothing per byte.
//
// Per-shard series embed the shard index as a Prometheus label
// (`saer_wire_rtt_seconds{shard="2"}`); saer-aggregate's snapshot fold
// sums matching names across processes.

// shardLabel renders name with a shard label, or unlabeled for shard<0.
func shardLabel(name string, shard int) string {
	if shard < 0 {
		return name
	}
	return fmt.Sprintf(`%s{shard="%d"}`, name, shard)
}

// shardTel is the client-side bundle of one shard connection.
type shardTel struct {
	// rtt is the per-call round trip: stamped in begin (before the
	// request bytes are written), observed in wait when the reply has
	// been parsed — so it includes queueing on the pipeline, the write,
	// the server's decide and the read back.
	rtt     *telemetry.Histogram
	tx      *telemetry.Counter
	rx      *telemetry.Counter
	spills  *telemetry.Counter
	redials *telemetry.Counter
}

func newShardTel(reg *telemetry.Registry, shard int) *shardTel {
	if reg == nil {
		return nil
	}
	return &shardTel{
		rtt:     reg.Histogram(shardLabel("saer_wire_rtt_seconds", shard)),
		tx:      reg.Counter(shardLabel("saer_wire_tx_bytes_total", shard)),
		rx:      reg.Counter(shardLabel("saer_wire_rx_bytes_total", shard)),
		spills:  reg.Counter(shardLabel("saer_wire_spilled_frames_total", shard)),
		redials: reg.Counter(shardLabel("saer_wire_redials_total", shard)),
	}
}

// serverTel is the server-side bundle of one shard listener.
type serverTel struct {
	openConns    *telemetry.Gauge
	openSessions *telemetry.Gauge
	rounds       *telemetry.Counter
	requests     *telemetry.Counter
	decide       *telemetry.Histogram
	tx           *telemetry.Counter
	rx           *telemetry.Counter
	spills       *telemetry.Counter
}

func newServerTel(reg *telemetry.Registry, shard int) *serverTel {
	if reg == nil {
		return nil
	}
	return &serverTel{
		openConns:    reg.Gauge(shardLabel("saer_server_open_conns", shard)),
		openSessions: reg.Gauge(shardLabel("saer_server_open_sessions", shard)),
		rounds:       reg.Counter(shardLabel("saer_server_rounds_total", shard)),
		requests:     reg.Counter(shardLabel("saer_server_requests_total", shard)),
		decide:       reg.Histogram(shardLabel("saer_server_decide_seconds", shard)),
		tx:           reg.Counter(shardLabel("saer_server_tx_bytes_total", shard)),
		rx:           reg.Counter(shardLabel("saer_server_rx_bytes_total", shard)),
		spills:       reg.Counter(shardLabel("saer_server_spilled_frames_total", shard)),
	}
}
