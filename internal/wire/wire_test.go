package wire

import (
	"bufio"
	"net"
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func testGraph(t testing.TB, n, delta int, seed uint64) *bipartite.Graph {
	t.Helper()
	g, err := gen.Regular(n, delta, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runWire executes cfg on topo through a Driver over a Bank dialed to a
// fresh in-process server set of `shards` listeners.
func runWire(t *testing.T, topo bipartite.Topology, cfg core.Config, shards int) (*core.Result, *Bank, *ServerSet) {
	t.Helper()
	ss, err := StartLocalSet(shards)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := Dial(ss.Addrs(), cfg.Variant, int32(cfg.Params().Capacity()), topo.NumServers())
	if err != nil {
		ss.Close()
		t.Fatal(err)
	}
	dr, err := core.NewDriver(topo, cfg, bank)
	if err != nil {
		bank.Close()
		ss.Close()
		t.Fatal(err)
	}
	res, err := dr.Run()
	if err != nil {
		bank.Close()
		ss.Close()
		t.Fatal(err)
	}
	return res, bank, ss
}

// TestWireLoopbackEquivalence is the service mode's core contract: a
// loopback wire run — real TCP sockets, one server-shard listener per
// window — reproduces the in-process core.Run result bit for bit, for
// both variants and across shard counts.
func TestWireLoopbackEquivalence(t *testing.T) {
	n := 512
	g := testGraph(t, n, 24, 77)
	for _, variant := range []core.Variant{core.SAER, core.RAES} {
		for _, c := range []float64{4, 2} {
			cfg := core.NewConfig(variant, 2, c, 0xFEED)
			cfg.TrackRounds = true
			cfg.TrackNeighborhoods = true
			cfg.TrackLoads = true
			cfg.TrackAssignments = true
			ref, err := cfg.Run(g)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 3, 8} {
				res, bank, ss := runWire(t, g, cfg, shards)
				if !reflect.DeepEqual(res, ref) {
					t.Errorf("%v c=%g shards=%d: wire run diverges from in-process run:\n  ref=%+v\n  got=%+v",
						variant, c, shards, ref, res)
				}
				if lat := bank.RoundLatencies(); len(lat) != res.Rounds {
					t.Errorf("%v c=%g shards=%d: %d latency samples for %d rounds", variant, c, shards, len(lat), res.Rounds)
				}
				reps, err := bank.Reports()
				if err != nil {
					t.Fatal(err)
				}
				var reqs uint64
				for _, rep := range reps {
					reqs += rep.Requests
				}
				if reqs != uint64(res.TotalRequests) {
					t.Errorf("%v c=%g shards=%d: shard reports carry %d requests, result %d",
						variant, c, shards, reqs, res.TotalRequests)
				}
				bank.Close()
				if err := ss.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestWireDynamicState exercises the epoch shape the churn executor
// ships: pre-loaded servers (some burned from the start) and per-client
// request counts.
func TestWireDynamicState(t *testing.T) {
	n := 256
	g := testGraph(t, n, 16, 31)
	cfg := core.NewConfig(core.SAER, 2, 4, 13)
	cfg.TrackLoads = true
	cfg.TrackRounds = true
	cfg.InitialLoads = make([]int, n)
	cfg.RequestCounts = make([]int, n)
	src := rng.New(42)
	capacity := cfg.Params().Capacity()
	for i := 0; i < n; i++ {
		cfg.InitialLoads[i] = src.Intn(capacity + 2)
		cfg.RequestCounts[i] = src.Intn(cfg.D + 1)
	}
	ref, err := cfg.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	res, bank, ss := runWire(t, g, cfg, 3)
	defer ss.Close()
	defer bank.Close()
	if !reflect.DeepEqual(res, ref) {
		t.Errorf("dynamic state wire run diverges:\n  ref=%+v\n  got=%+v", ref, res)
	}
}

// TestWireDriverReuse pins trial reuse over one set of live servers: the
// bank is Reset per run, so successive Reseed+Run trials on the same
// sessions match fresh in-process runs.
func TestWireDriverReuse(t *testing.T) {
	g := testGraph(t, 256, 16, 3)
	cfg := core.NewConfig(core.RAES, 2, 3, 0)
	cfg.TrackLoads = true
	ss, err := StartLocalSet(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	bank, err := Dial(ss.Addrs(), cfg.Variant, int32(cfg.Params().Capacity()), g.NumServers())
	if err != nil {
		t.Fatal(err)
	}
	defer bank.Close()
	dr, err := core.NewDriver(g, cfg, bank)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 4; seed++ {
		dr.Reseed(seed)
		got, err := dr.Run()
		if err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.Seed = seed
		want, err := rcfg.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed=%d: reused wire driver diverges from fresh in-process run", seed)
		}
	}
	reps, err := bank.Reports()
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if rep.Sessions != 1 {
			t.Errorf("shard %d served %d sessions across 4 trials, want 1 (pooled connection)", i, rep.Sessions)
		}
	}
}

// wireChurnScenario drives one scripted failure-wave scenario (the E16
// shape: stable population, full redemand, one fail wave and one recover
// wave) on a fresh topology and scheduler, returning every epoch's
// outcome. The executor factory selects in-process vs wire execution;
// onEpoch (optional) runs between epochs — the kill/restart hook.
func wireChurnScenario(t *testing.T, policy churn.Policy, factory func(*churn.Topology, core.Config) (churn.Executor, error), onEpoch func(epoch int)) []churn.EpochOutcome {
	t.Helper()
	n, delta := 256, 16
	epochs := 9
	src := rng.New(11)
	base, err := gen.TrustSubsetImplicit(n, n, delta, src.Uint64())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := churn.New(churn.Config{
		Base:    base,
		Sampler: churn.TrustSampler(n, delta),
		Seed:    src.Uint64(),
		Backend: churn.BackendImplicit,
	})
	if err != nil {
		t.Fatal(err)
	}
	proto := core.NewConfig(core.SAER, 2, 4, 0)
	proto.Workers = 1
	sch, err := churn.NewScheduler(topo, churn.SchedulerConfig{
		Protocol:    proto,
		LoadExpiry:  0.5,
		Policy:      policy,
		TrackRounds: true,
		NewExecutor: factory,
	}, src.Uint64())
	if err != nil {
		t.Fatal(err)
	}
	var wave []int32
	outs := make([]churn.EpochOutcome, 0, epochs)
	for e := 1; e <= epochs; e++ {
		ev := churn.EpochEvent{Dt: 1, RedemandAll: true}
		ev.Rewire = topo.SamplePresent(src, n/10)
		switch e {
		case 4:
			wave = topo.SampleLive(src, n/4)
			ev.Fail = wave
		case 7:
			ev.Recover = wave
		}
		out, err := sch.Step(ev)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, *out)
		if onEpoch != nil {
			onEpoch(e)
		}
	}
	return outs
}

// TestWireChurnFailureWaveKillRestart is the process-kill failure wave:
// the same E16-style scenario runs once in process and once against live
// shard servers, where one shard server is killed right before the
// scenario's fail wave and restarted (cold, same address) before the
// recover wave. Every failed-load policy must produce bit-for-bit the
// in-process scheduler's epoch outcomes — the per-epoch Reset rebuilds
// server state, so a process restart is invisible to the protocol.
func TestWireChurnFailureWaveKillRestart(t *testing.T) {
	ss, err := StartLocalSet(3)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	addrs := ss.Addrs()

	// shard1 tracks whichever process currently serves addrs[1]; each
	// policy's scenario kills it and brings up a cold replacement on the
	// same address.
	shard1 := ss.Servers()[1]
	defer func() { shard1.Close() }()

	for _, policy := range []churn.Policy{churn.PolicyDrop, churn.PolicyReinject, churn.PolicySaturate} {
		ref := wireChurnScenario(t, policy, nil, nil)

		onEpoch := func(epoch int) {
			if epoch != 3 {
				return
			}
			// Kill shard 1 between epochs: the wave epoch's Reset redials
			// it and finds a cold restarted process on the same address.
			if err := shard1.Close(); err != nil {
				t.Fatal(err)
			}
			srv, err := Listen(addrs[1])
			if err != nil {
				t.Fatalf("restarting shard 1 on %s: %v", addrs[1], err)
			}
			shard1 = srv
			go srv.Serve()
		}
		got := wireChurnScenario(t, policy, NewExecutorFactory(addrs), onEpoch)

		if !reflect.DeepEqual(got, ref) {
			for i := range ref {
				if i < len(got) && !reflect.DeepEqual(got[i], ref[i]) {
					t.Errorf("policy=%v epoch %d: wire scenario diverges from in-process:\n  ref=%+v\n  got=%+v",
						policy, i+1, ref[i], got[i])
					break
				}
			}
			if len(got) != len(ref) {
				t.Errorf("policy=%v: %d epochs vs %d", policy, len(got), len(ref))
			}
		}
	}
}

// TestSplitWindows pins the shard-window split: contiguous, ascending,
// sizes within one of each other, covering [0, m).
func TestSplitWindows(t *testing.T) {
	for _, tc := range []struct{ m, shards int }{{10, 3}, {7, 7}, {1, 1}, {4096, 8}} {
		ws, err := SplitWindows(tc.m, tc.shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != tc.shards {
			t.Fatalf("m=%d shards=%d: %d windows", tc.m, tc.shards, len(ws))
		}
		lo, minSize, maxSize := 0, tc.m, 0
		for _, w := range ws {
			if w[0] != lo {
				t.Fatalf("m=%d shards=%d: window %v not contiguous at %d", tc.m, tc.shards, w, lo)
			}
			size := w[1] - w[0]
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			lo = w[1]
		}
		if lo != tc.m || maxSize-minSize > 1 {
			t.Fatalf("m=%d shards=%d: windows %v", tc.m, tc.shards, ws)
		}
	}
	if _, err := SplitWindows(4, 5); err == nil {
		t.Fatal("SplitWindows accepted more shards than servers")
	}
}

// TestServerRejectsBadHello pins the handshake guard: wrong magic gets
// an error frame, not silence.
func TestServerRejectsBadHello(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	fc := &frameConn{r: bufio.NewReader(conn), w: bw}
	var payload []byte
	payload = appendU32(payload, 0xDEADBEEF) // wrong magic
	payload = appendU32(payload, protoVersion)
	payload = append(payload, 0)
	payload = appendI32(payload, 8)
	payload = appendI32(payload, 0)
	payload = appendI32(payload, 4)
	if err := fc.writeFrame(msgHello, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.expectFrame(msgHelloOK); err == nil {
		t.Fatal("server accepted a hello with the wrong magic")
	}
}
