package wire

import (
	"bufio"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func testGraph(t testing.TB, n, delta int, seed uint64) *bipartite.Graph {
	t.Helper()
	g, err := gen.Regular(n, delta, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// startWire brings up a fresh in-process server set of `shards`
// listeners and dials a Bank to it.
func startWire(t *testing.T, cfg core.Config, m, shards int, bcfg BankConfig) (*Bank, *ServerSet) {
	t.Helper()
	ss, err := StartLocalSet(shards)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := DialConfig(ss.Addrs(), cfg.Variant, int32(cfg.Params().Capacity()), m, bcfg)
	if err != nil {
		ss.Close()
		t.Fatal(err)
	}
	return bank, ss
}

// runWire executes cfg on topo through a Driver over a Bank dialed to a
// fresh in-process server set of `shards` listeners.
func runWire(t *testing.T, topo bipartite.Topology, cfg core.Config, shards int) (*core.Result, *Bank, *ServerSet) {
	t.Helper()
	bank, ss := startWire(t, cfg, topo.NumServers(), shards, BankConfig{})
	dr, err := core.NewDriver(topo, cfg, bank)
	if err != nil {
		bank.Close()
		ss.Close()
		t.Fatal(err)
	}
	res, err := dr.Run()
	if err != nil {
		bank.Close()
		ss.Close()
		t.Fatal(err)
	}
	return res, bank, ss
}

// normalizedResult strips the one field that legitimately differs
// between runs of the same instance — the worker count echoed in
// Params — so bit-for-bit comparison covers everything else.
func normalizedResult(res *core.Result) *core.Result {
	c := *res
	c.Params.Workers = 0
	return &c
}

// runWireSessions runs one trial per session concurrently — every
// session drives its own Driver with the same seed over the shared
// connections — and requires each session's result to equal ref.
func runWireSessions(t *testing.T, g bipartite.Topology, cfg core.Config, bank *Bank, ref *core.Result, label string) {
	t.Helper()
	sessions := bank.Sessions()
	results := make([]*core.Result, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			dr, err := core.NewDriver(g, cfg, bank.Session(s))
			if err != nil {
				errs[s] = err
				return
			}
			results[s], errs[s] = dr.Run()
		}(s)
	}
	wg.Wait()
	for s := 0; s < sessions; s++ {
		if errs[s] != nil {
			t.Fatalf("%s session %d: %v", label, s, errs[s])
		}
		if !reflect.DeepEqual(normalizedResult(results[s]), normalizedResult(ref)) {
			t.Errorf("%s session %d: wire run diverges from in-process run:\n  ref=%+v\n  got=%+v",
				label, s, ref, results[s])
		}
	}
}

// TestWireLoopbackEquivalence is the service mode's core contract: a
// loopback wire run — real TCP sockets, one server-shard listener per
// window — reproduces the in-process core.Run result bit for bit, for
// both variants, across shard counts, client worker counts, and
// multiplexed session counts (every session running the same trial
// concurrently over the shared connections).
func TestWireLoopbackEquivalence(t *testing.T) {
	n := 512
	g := testGraph(t, n, 24, 77)
	for _, variant := range []core.Variant{core.SAER, core.RAES} {
		for _, c := range []float64{4, 2} {
			cfg := core.NewConfig(variant, 2, c, 0xFEED)
			cfg.TrackRounds = true
			cfg.TrackNeighborhoods = true
			cfg.TrackLoads = true
			cfg.TrackAssignments = true
			ref, err := cfg.Run(g)
			if err != nil {
				t.Fatal(err)
			}
			// The full workers × sessions cross runs on one (variant, c)
			// cell; the others pin the multi-worker multi-session shape.
			workersList, sessionsList := []int{2}, []int{2}
			if variant == core.SAER && c == 4 {
				workersList, sessionsList = []int{1, 2, 4}, []int{1, 2}
			}
			for _, shards := range []int{1, 2, 3, 8} {
				for _, workers := range workersList {
					for _, sessions := range sessionsList {
						wcfg := cfg
						wcfg.Workers = workers
						label := pointLabel(variant, c, shards, workers, sessions)
						bank, ss := startWire(t, wcfg, n, shards, BankConfig{Sessions: sessions, Pipeline: 4})
						runWireSessions(t, g, wcfg, bank, ref, label)
						if lat := bank.RoundLatencies(); len(lat) != ref.Rounds*sessions {
							t.Errorf("%s: %d latency samples for %d rounds × %d sessions",
								label, len(lat), ref.Rounds, sessions)
						}
						reps, err := bank.Reports()
						if err != nil {
							t.Fatal(err)
						}
						var reqs uint64
						for _, rep := range reps {
							reqs += rep.Requests
						}
						if reqs != uint64(ref.TotalRequests)*uint64(sessions) {
							t.Errorf("%s: shard reports carry %d requests, want %d × %d sessions",
								label, reqs, ref.TotalRequests, sessions)
						}
						bank.Close()
						if err := ss.Close(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
	}
}

func pointLabel(variant core.Variant, c float64, shards, workers, sessions int) string {
	return fmt.Sprintf("variant=%v c=%g shards=%d workers=%d sessions=%d",
		variant, c, shards, workers, sessions)
}

// rowOnlyTopo hides a topology's point-query support, forcing the
// Driver onto the whole-row regeneration path (the wire twin of
// internal/core's rowOnly test wrapper).
type rowOnlyTopo struct{ bipartite.Topology }

// TestWireLoopbackPointQuery covers the point-query draw path over the
// wire: an implicit point-queryable topology driven through real TCP
// sockets must reproduce the in-process result bit for bit — on the
// point-query path and, via the row-only wrapper, on the
// row-regeneration path, so the two access paths also agree end to end
// across the transport.
func TestWireLoopbackPointQuery(t *testing.T) {
	topo, err := gen.TrustSubsetImplicit(512, 512, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.NewConfig(core.SAER, 2, 2.5, 0xFEED)
	cfg.Workers = 2
	cfg.TrackRounds = true
	cfg.TrackLoads = true
	ref, err := cfg.Run(topo)
	if err != nil {
		t.Fatal(err)
	}
	paths := []struct {
		name string
		topo bipartite.Topology
	}{{"point-query", topo}, {"row-regen", rowOnlyTopo{topo}}}
	for _, path := range paths {
		for _, shards := range []int{1, 3} {
			res, bank, ss := runWire(t, path.topo, cfg, shards)
			if !reflect.DeepEqual(normalizedResult(res), normalizedResult(ref)) {
				t.Errorf("%s shards=%d: wire run diverges from in-process run:\n  ref=%+v\n  got=%+v",
					path.name, shards, ref, res)
			}
			bank.Close()
			if err := ss.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestWireDynamicState exercises the epoch shape the churn executor
// ships: pre-loaded servers (some burned from the start) and per-client
// request counts.
func TestWireDynamicState(t *testing.T) {
	n := 256
	g := testGraph(t, n, 16, 31)
	cfg := core.NewConfig(core.SAER, 2, 4, 13)
	cfg.TrackLoads = true
	cfg.TrackRounds = true
	cfg.InitialLoads = make([]int, n)
	cfg.RequestCounts = make([]int, n)
	src := rng.New(42)
	capacity := cfg.Params().Capacity()
	for i := 0; i < n; i++ {
		cfg.InitialLoads[i] = src.Intn(capacity + 2)
		cfg.RequestCounts[i] = src.Intn(cfg.D + 1)
	}
	ref, err := cfg.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	res, bank, ss := runWire(t, g, cfg, 3)
	defer ss.Close()
	defer bank.Close()
	if !reflect.DeepEqual(res, ref) {
		t.Errorf("dynamic state wire run diverges:\n  ref=%+v\n  got=%+v", ref, res)
	}
}

// TestWireSpillLoopback pins frame spilling end to end: with the frame
// limit lowered far below a round batch's size on both sides, every
// Decide request and every reply crosses the sockets as continuation
// fragment runs — and the run still reproduces the in-process result bit
// for bit. (At the production maxFrameSize the same mechanism carries a
// 256 MB+ batch instead of erroring.)
func TestWireSpillLoopback(t *testing.T) {
	n := 256
	g := testGraph(t, n, 16, 9)
	cfg := core.NewConfig(core.SAER, 2, 4, 0xBEEF)
	cfg.TrackLoads = true
	ref, err := cfg.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 64 // bytes per frame: a ~250-server batch spills into dozens of fragments
	ss, err := StartLocalSet(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for _, srv := range ss.Servers() {
		srv.SetFrameLimit(limit)
	}
	bank, err := DialConfig(ss.Addrs(), cfg.Variant, int32(cfg.Params().Capacity()), n,
		BankConfig{Sessions: 2, FrameLimit: limit})
	if err != nil {
		t.Fatal(err)
	}
	defer bank.Close()
	runWireSessions(t, g, cfg, bank, ref, "spill limit=64")
}

// TestWireDriverReuse pins trial reuse over one set of live servers: the
// bank is Reset per run, so successive Reseed+Run trials on the same
// sessions match fresh in-process runs.
func TestWireDriverReuse(t *testing.T) {
	g := testGraph(t, 256, 16, 3)
	cfg := core.NewConfig(core.RAES, 2, 3, 0)
	cfg.TrackLoads = true
	ss, err := StartLocalSet(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	bank, err := Dial(ss.Addrs(), cfg.Variant, int32(cfg.Params().Capacity()), g.NumServers())
	if err != nil {
		t.Fatal(err)
	}
	defer bank.Close()
	dr, err := core.NewDriver(g, cfg, bank)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 4; seed++ {
		dr.Reseed(seed)
		got, err := dr.Run()
		if err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.Seed = seed
		want, err := rcfg.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed=%d: reused wire driver diverges from fresh in-process run", seed)
		}
	}
	reps, err := bank.Reports()
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if rep.Sessions != 1 {
			t.Errorf("shard %d served %d sessions across 4 trials, want 1 (pooled connection)", i, rep.Sessions)
		}
	}
}

// TestWireRedialBackoff pins the bounded-backoff reconnection: the only
// server is killed and a cold replacement comes up on the same address
// only after a delay, so the next trial's Reset finds the connection
// dead, gets refused on its first redial attempts, and must ride the
// jittered backoff until the listener returns.
func TestWireRedialBackoff(t *testing.T) {
	g := testGraph(t, 128, 8, 21)
	cfg := core.NewConfig(core.SAER, 2, 4, 5)
	ref, err := cfg.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	go srv.Serve()
	bank, err := DialConfig([]string{addr}, cfg.Variant, int32(cfg.Params().Capacity()), g.NumServers(),
		BankConfig{RedialAttempts: 6, RedialBackoff: 10 * time.Millisecond})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	defer bank.Close()
	dr, err := core.NewDriver(g, cfg, bank)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	if _, err := dr.Run(); err != nil {
		srv.Close()
		t.Fatal(err)
	}

	// Kill the process and bring the replacement up only after a delay:
	// the immediate redial attempt is refused.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var srv2 *Server
	done := make(chan error, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		s, err := Listen(addr)
		if err != nil {
			done <- err
			return
		}
		mu.Lock()
		srv2 = s
		mu.Unlock()
		done <- nil
		s.Serve()
	}()
	defer func() {
		mu.Lock()
		if srv2 != nil {
			srv2.Close()
		}
		mu.Unlock()
	}()

	got, err := dr.Run()
	if err != nil {
		t.Fatalf("run across delayed restart: %v", err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("run across delayed restart diverges from in-process result")
	}
	if err := <-done; err != nil {
		t.Fatalf("restarting server on %s: %v", addr, err)
	}
}

// wireChurnScenario drives one scripted failure-wave scenario (the E16
// shape: stable population, full redemand, one fail wave and one recover
// wave) on a fresh topology and scheduler, returning every epoch's
// outcome. The executor factory selects in-process vs wire execution;
// onEpoch (optional) runs between epochs — the kill/restart hook.
func wireChurnScenario(t *testing.T, policy churn.Policy, factory func(*churn.Topology, core.Config) (churn.Executor, error), onEpoch func(epoch int)) []churn.EpochOutcome {
	t.Helper()
	n, delta := 256, 16
	epochs := 9
	src := rng.New(11)
	base, err := gen.TrustSubsetImplicit(n, n, delta, src.Uint64())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := churn.New(churn.Config{
		Base:    base,
		Sampler: churn.TrustSampler(n, delta),
		Seed:    src.Uint64(),
		Backend: churn.BackendImplicit,
	})
	if err != nil {
		t.Fatal(err)
	}
	proto := core.NewConfig(core.SAER, 2, 4, 0)
	proto.Workers = 1
	sch, err := churn.NewScheduler(topo, churn.SchedulerConfig{
		Protocol:    proto,
		LoadExpiry:  0.5,
		Policy:      policy,
		TrackRounds: true,
		NewExecutor: factory,
	}, src.Uint64())
	if err != nil {
		t.Fatal(err)
	}
	var wave []int32
	outs := make([]churn.EpochOutcome, 0, epochs)
	for e := 1; e <= epochs; e++ {
		ev := churn.EpochEvent{Dt: 1, RedemandAll: true}
		ev.Rewire = topo.SamplePresent(src, n/10)
		switch e {
		case 4:
			wave = topo.SampleLive(src, n/4)
			ev.Fail = wave
		case 7:
			ev.Recover = wave
		}
		out, err := sch.Step(ev)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, *out)
		if onEpoch != nil {
			onEpoch(e)
		}
	}
	return outs
}

// TestWireChurnFailureWaveKillRestart is the process-kill failure wave:
// the same E16-style scenario runs once in process and once against live
// shard servers, where one shard server is killed right before the
// scenario's fail wave and restarted — cold, same address, and only
// after a delay, so the wave epoch's Reset hits refused connections and
// must redial through the bounded backoff. Every failed-load policy must
// produce bit-for-bit the in-process scheduler's epoch outcomes — the
// per-epoch Reset rebuilds server state, so a process restart is
// invisible to the protocol.
func TestWireChurnFailureWaveKillRestart(t *testing.T) {
	ss, err := StartLocalSet(3)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	addrs := ss.Addrs()

	// shard1 tracks whichever process currently serves addrs[1]; each
	// policy's scenario kills it and brings up a cold replacement on the
	// same address after a delay.
	var mu sync.Mutex
	shard1 := ss.Servers()[1]
	defer func() {
		mu.Lock()
		shard1.Close()
		mu.Unlock()
	}()

	factory := NewExecutorFactoryConfig(addrs, BankConfig{
		RedialAttempts: 6,
		RedialBackoff:  10 * time.Millisecond,
	})
	for _, policy := range []churn.Policy{churn.PolicyDrop, churn.PolicyReinject, churn.PolicySaturate} {
		ref := wireChurnScenario(t, policy, nil, nil)

		restarted := make(chan error, 1)
		onEpoch := func(epoch int) {
			if epoch != 3 {
				return
			}
			// Kill shard 1 between epochs; the replacement binds the same
			// address 30ms later, while the wave epoch's Reset is already
			// retrying.
			mu.Lock()
			err := shard1.Close()
			mu.Unlock()
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				time.Sleep(30 * time.Millisecond)
				srv, err := Listen(addrs[1])
				if err != nil {
					restarted <- err
					return
				}
				mu.Lock()
				shard1 = srv
				mu.Unlock()
				restarted <- nil
				srv.Serve()
			}()
		}
		got := wireChurnScenario(t, policy, factory, onEpoch)
		if err := <-restarted; err != nil {
			t.Fatalf("policy=%v: restarting shard 1 on %s: %v", policy, addrs[1], err)
		}

		if !reflect.DeepEqual(got, ref) {
			for i := range ref {
				if i < len(got) && !reflect.DeepEqual(got[i], ref[i]) {
					t.Errorf("policy=%v epoch %d: wire scenario diverges from in-process:\n  ref=%+v\n  got=%+v",
						policy, i+1, ref[i], got[i])
					break
				}
			}
			if len(got) != len(ref) {
				t.Errorf("policy=%v: %d epochs vs %d", policy, len(got), len(ref))
			}
		}
	}
}

// TestSplitWindows pins the shard-window split: contiguous, ascending,
// sizes within one of each other, covering [0, m).
func TestSplitWindows(t *testing.T) {
	for _, tc := range []struct{ m, shards int }{{10, 3}, {7, 7}, {1, 1}, {4096, 8}} {
		ws, err := SplitWindows(tc.m, tc.shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != tc.shards {
			t.Fatalf("m=%d shards=%d: %d windows", tc.m, tc.shards, len(ws))
		}
		lo, minSize, maxSize := 0, tc.m, 0
		for _, w := range ws {
			if w[0] != lo {
				t.Fatalf("m=%d shards=%d: window %v not contiguous at %d", tc.m, tc.shards, w, lo)
			}
			size := w[1] - w[0]
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			lo = w[1]
		}
		if lo != tc.m || maxSize-minSize > 1 {
			t.Fatalf("m=%d shards=%d: windows %v", tc.m, tc.shards, ws)
		}
	}
	if _, err := SplitWindows(4, 5); err == nil {
		t.Fatal("SplitWindows accepted more shards than servers")
	}
}

// TestServerRejectsBadHello pins the handshake guard: wrong magic gets
// an error frame, not silence.
func TestServerRejectsBadHello(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	fc := &frameConn{r: bufio.NewReader(conn), w: bw, limit: maxFrameSize}
	var payload []byte
	payload = appendU32(payload, 0xDEADBEEF) // wrong magic
	payload = appendU32(payload, protoVersion)
	payload = append(payload, 0)
	payload = appendI32(payload, 8)
	payload = appendI32(payload, 0)
	payload = appendI32(payload, 4)
	if err := fc.writeMessage(msgHello, 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fc.expectMessage(msgHelloOK); err == nil {
		t.Fatal("server accepted a hello with the wrong magic")
	}
}
