package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// pipeConn builds a frameConn whose writes land in a buffer that its
// reads drain — a loopback transport without sockets.
func pipeConn(limit int) (*frameConn, *bytes.Buffer) {
	buf := &bytes.Buffer{}
	return &frameConn{r: buf, w: buf, limit: limit}, buf
}

// rawFrame encodes one frame by hand: the golden reference the writer
// is checked against and the forge for malformed inputs.
func rawFrame(typ byte, session uint32, chunk []byte) []byte {
	out := make([]byte, 0, frameHeaderSize+len(chunk))
	out = binary.LittleEndian.AppendUint32(out, uint32(frameHeaderSize+len(chunk)))
	out = append(out, typ)
	out = binary.LittleEndian.AppendUint32(out, session)
	return append(out, chunk...)
}

func TestMessageRoundTrip(t *testing.T) {
	fc, _ := pipeConn(maxFrameSize)
	msgs := []struct {
		typ     byte
		session uint32
		payload []byte
	}{
		{msgHello, 0, []byte{1, 2, 3}},
		{msgRound, 7, bytes.Repeat([]byte{0xAB}, 1000)},
		{msgResetOK, 0xFFFFFFFF, nil}, // empty payload: a bare header frame
		{msgLoads, 3, []byte{}},
	}
	for _, m := range msgs {
		if err := fc.writeMessage(m.typ, m.session, m.payload); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range msgs {
		typ, session, payload, err := fc.readMessage()
		if err != nil {
			t.Fatal(err)
		}
		if typ != m.typ || session != m.session || !bytes.Equal(payload, m.payload) {
			t.Fatalf("round trip: got (%d, %d, %v), want (%d, %d, %v)",
				typ, session, payload, m.typ, m.session, m.payload)
		}
	}
}

// TestSpillGolden pins the exact byte stream of a spilled message: with
// limit 16 each frame carries at most 11 payload bytes, so 23 bytes
// spill into two continuation frames and a 1-byte final frame.
func TestSpillGolden(t *testing.T) {
	const limit = 16
	payload := make([]byte, 23)
	for i := range payload {
		payload[i] = byte(i)
	}
	fc, buf := pipeConn(limit)
	if err := fc.writeMessage(msgRound, 5, payload); err != nil {
		t.Fatal(err)
	}
	want := rawFrame(msgRound|frameCont, 5, payload[:11])
	want = append(want, rawFrame(msgRound|frameCont, 5, payload[11:22])...)
	want = append(want, rawFrame(msgRound, 5, payload[22:])...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("spilled stream:\n got %x\nwant %x", buf.Bytes(), want)
	}
	typ, session, got, err := fc.readMessage()
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgRound || session != 5 || !bytes.Equal(got, payload) {
		t.Fatalf("reassembly: got (%d, %d, %x)", typ, session, got)
	}
}

// TestSpillOneByteOver pins the boundary: a payload exactly at the
// per-frame budget rides one unflagged frame; one byte more spills into
// a full continuation frame plus a 1-byte final frame.
func TestSpillOneByteOver(t *testing.T) {
	const limit = 64
	const budget = limit - frameHeaderSize

	exact := bytes.Repeat([]byte{0xEE}, budget)
	fc, buf := pipeConn(limit)
	if err := fc.writeMessage(msgReset, 2, exact); err != nil {
		t.Fatal(err)
	}
	if want := rawFrame(msgReset, 2, exact); !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exact-fit batch spilled: %x", buf.Bytes())
	}
	if _, _, got, err := fc.readMessage(); err != nil || !bytes.Equal(got, exact) {
		t.Fatalf("exact-fit read back: %x, %v", got, err)
	}

	over := bytes.Repeat([]byte{0xEE}, budget+1)
	fc, buf = pipeConn(limit)
	if err := fc.writeMessage(msgReset, 2, over); err != nil {
		t.Fatal(err)
	}
	want := rawFrame(msgReset|frameCont, 2, over[:budget])
	want = append(want, rawFrame(msgReset, 2, over[budget:])...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("one-over batch:\n got %x\nwant %x", buf.Bytes(), want)
	}
	typ, session, got, err := fc.readMessage()
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgReset || session != 2 || !bytes.Equal(got, over) {
		t.Fatalf("one-over read back: (%d, %d, %d bytes)", typ, session, len(got))
	}
}

// TestReadRejectsMalformedFrames pins the decoder guards: frames outside
// the size bounds, truncated streams, and inconsistent continuation runs
// are all rejected rather than misparsed.
func TestReadRejectsMalformedFrames(t *testing.T) {
	frame := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }
	sizeOnly := func(size uint32) []byte {
		return binary.LittleEndian.AppendUint32(nil, size)
	}
	cases := []struct {
		name  string
		limit int
		raw   []byte
	}{
		{"size zero", 64, frame(sizeOnly(0), []byte{msgHello}, sizeOnly(0))},
		{"size below header", 64, frame(sizeOnly(4), []byte{msgHello}, sizeOnly(0))},
		{"size above limit", 64, rawFrame(msgHello, 0, bytes.Repeat([]byte{1}, 60))},
		{"truncated header", 64, sizeOnly(10)},
		{"truncated payload", 64, rawFrame(msgHello, 0, []byte{1, 2, 3})[:10]},
		{"dangling continuation", 64, rawFrame(msgRound|frameCont, 1, []byte{1, 2})},
		{"continuation type flip", 64, frame(
			rawFrame(msgRound|frameCont, 1, []byte{1}),
			rawFrame(msgLoads, 1, []byte{2}))},
		{"continuation session flip", 64, frame(
			rawFrame(msgRound|frameCont, 1, []byte{1}),
			rawFrame(msgRound, 2, []byte{2}))},
	}
	for _, tc := range cases {
		fc := &frameConn{r: bytes.NewReader(tc.raw), w: io.Discard, limit: tc.limit}
		if _, _, _, err := fc.readMessage(); err == nil {
			t.Errorf("%s: decoder accepted the stream", tc.name)
		}
	}
}

// TestServerErrorFrame pins the error channel: an Error message read by
// the client surfaces as a *serverError carrying the server's text.
func TestServerErrorFrame(t *testing.T) {
	fc, _ := pipeConn(maxFrameSize)
	if err := fc.writeMessage(msgError, 9, []byte("shard exploded")); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := fc.readMessage()
	var se *serverError
	if !errors.As(err, &se) {
		t.Fatalf("error frame surfaced as %T: %v", err, err)
	}
	if se.Error() != "wire: server error: shard exploded" {
		t.Fatalf("error text: %q", se.Error())
	}
}

// TestReaderHelpers pins the payload cursor: truncation and trailing
// garbage are both errors, and i32Slice round-trips through the bulk
// encoder.
func TestReaderHelpers(t *testing.T) {
	vals := []int32{0, -1, 1 << 30, -(1 << 30), 42}
	var out []byte
	out = appendU32(out, 0xCAFE)
	out = appendU64(out, 1<<40)
	out = append(out, 7)
	out = appendI32Slice(out, vals)

	r := reader{b: out}
	if got := r.u32(); got != 0xCAFE {
		t.Fatalf("u32: %#x", got)
	}
	if got := r.u64(); got != 1<<40 {
		t.Fatalf("u64: %#x", got)
	}
	if got := r.u8(); got != 7 {
		t.Fatalf("u8: %d", got)
	}
	got := r.i32Slice(nil)
	if len(got) != len(vals) {
		t.Fatalf("i32Slice: %v", got)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("i32Slice[%d]: %d != %d", i, got[i], vals[i])
		}
	}
	if err := r.done(); err != nil {
		t.Fatal(err)
	}

	// Trailing garbage is an error.
	r = reader{b: append(append([]byte(nil), out...), 0xFF)}
	r.u32()
	r.u64()
	r.u8()
	r.i32Slice(nil)
	if err := r.done(); err == nil {
		t.Fatal("reader accepted trailing bytes")
	}

	// Truncation is an error, not a zero value that parses onward.
	r = reader{b: out[:5]}
	r.u32()
	r.u64()
	if err := r.done(); err == nil {
		t.Fatal("reader accepted a truncated payload")
	}
}
