package wire

import (
	"repro/internal/churn"
	"repro/internal/core"
)

// NewExecutorFactory returns a churn.SchedulerConfig.NewExecutor that
// runs every epoch's protocol execution through a core.Driver over a
// wire Bank dialed to addrs — the churn scenario against live server
// processes. The scheduler hands the factory the fully assembled
// per-epoch configuration (carried loads and request counts aliased to
// its state), so the executor sees each epoch's state exactly as the
// in-process one does; because the Driver Resets the bank at every
// epoch — redialing dead connections with bounded backoff — the
// scenario's outcomes are bit-for-bit those of the local executor even
// when shard servers are killed and restarted between epochs.
func NewExecutorFactory(addrs []string) func(*churn.Topology, core.Config) (churn.Executor, error) {
	return NewExecutorFactoryConfig(addrs, BankConfig{})
}

// NewExecutorFactoryConfig is NewExecutorFactory with explicit client
// knobs (pipeline depth, redial attempts/backoff; the Sessions knob is
// ignored — the scheduler drives one session).
func NewExecutorFactoryConfig(addrs []string, bcfg BankConfig) func(*churn.Topology, core.Config) (churn.Executor, error) {
	bcfg.Sessions = 1
	return func(topo *churn.Topology, cfg core.Config) (churn.Executor, error) {
		bank, err := DialConfig(addrs, cfg.Variant, int32(cfg.Params().Capacity()), topo.NumServers(), bcfg)
		if err != nil {
			return nil, err
		}
		dr, err := core.NewDriver(topo, cfg, bank)
		if err != nil {
			bank.Close()
			return nil, err
		}
		return &wireExecutor{dr: dr, bank: bank}, nil
	}
}

// wireExecutor drives one epoch per RunEpoch through the shared Driver.
type wireExecutor struct {
	dr   *core.Driver
	bank *Bank
}

func (x *wireExecutor) RunEpoch(seed uint64) (*core.Result, error) {
	x.dr.Reseed(seed)
	return x.dr.Run()
}

// Bank exposes the executor's bank (for metrics and teardown).
func (x *wireExecutor) Bank() *Bank { return x.bank }
