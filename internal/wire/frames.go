// Package wire is the service mode's transport: the protocol run over
// real sockets instead of function calls. A client process (the load
// generator, cmd/saer-client, or the churn scheduler's wire executor)
// drives a core.Driver whose ServerBank speaks this package's frame
// protocol to one server-shard process per contiguous server window
// (cmd/saer-server). Because the bank interface carries one batched
// (server, count) frame per round — not per-ball messages — and the
// server side reuses core.ServerShard verbatim, a loopback wire run
// reproduces the in-process core.Run result bit for bit; the equivalence
// tests and the CI service smoke pin exactly that.
//
// Frame format: every message is one length-prefixed frame,
//
//	uint32 LE  payload length (including the type byte)
//	uint8      message type
//	payload    little-endian fixed-width integers, layout per type
//
// Integer arrays are written as a uint32 count followed by the raw
// int32 values — compact, allocation-free to encode, and O(1) to size.
// The session opens with a Hello that carries the protocol identity
// (variant, capacity) and the shard window the client expects, so a
// server process needs no protocol configuration of its own and a
// restarted server is indistinguishable from one that stayed up.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Message types.
const (
	msgHello      = 1  // client→server: magic, version, variant, capacity, window
	msgHelloOK    = 2  // server→client: window accepted
	msgReset      = 3  // client→server: re-initialize the shard (optional initial loads)
	msgResetOK    = 4  // server→client
	msgRound      = 5  // client→server: one round's (server, count) batch
	msgRoundReply = 6  // server→client: accepted list, newly-burned list, saturated count
	msgLoads      = 7  // client→server: request the load window
	msgLoadsReply = 8  // server→client: the window's int32 loads
	msgReport     = 9  // client→server: request the shard's service tally
	msgReportOK   = 10 // server→client: Report fields
	msgError      = 11 // server→client: fatal session error (UTF-8 message)
)

const (
	// helloMagic guards against a stray client dialing the wrong port.
	helloMagic = 0x53414552 // "SAER"
	// protoVersion is bumped on any incompatible frame-layout change.
	protoVersion = 1
	// maxFrameSize bounds a frame to what a full-m round batch at the
	// n = 2²² sweep ceiling needs, with headroom; anything larger is a
	// corrupt length prefix.
	maxFrameSize = 1 << 28
)

// Report is a server process's cumulative service tally, summed over
// every session it served since it started. The aggregator folds these
// per-shard tallies into the JSON record stream.
type Report struct {
	// Sessions is the number of Hello handshakes served.
	Sessions uint64
	// Rounds is the number of round frames decided.
	Rounds uint64
	// Requests is the total number of ball requests received (the sum of
	// every round frame's counts).
	Requests uint64
	// Accepted is the total number of requests accepted.
	Accepted uint64
	// DecideNanos is the cumulative time spent inside the threshold
	// decisions (excluding transport reads/writes).
	DecideNanos uint64
}

// frameConn wraps one side of a connection with buffered frame I/O and a
// reusable payload buffer. Not concurrency-safe; each peer owns its
// frameConn from a single goroutine.
type frameConn struct {
	r   io.Reader
	w   io.Writer
	buf []byte // reused encode/decode payload buffer
	hdr [4]byte
}

func newFrameConn(rw io.ReadWriter) *frameConn {
	return &frameConn{r: rw, w: rw}
}

// writeFrame sends one frame; the payload is everything after the type
// byte.
func (c *frameConn) writeFrame(typ byte, payload []byte) error {
	binary.LittleEndian.PutUint32(c.hdr[:], uint32(1+len(payload)))
	if _, err := c.w.Write(c.hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write([]byte{typ}); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame into the reused buffer, returning the type
// and the payload (valid until the next read).
func (c *frameConn) readFrame() (typ byte, payload []byte, err error) {
	if _, err = io.ReadFull(c.r, c.hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.LittleEndian.Uint32(c.hdr[:])
	if size == 0 || size > maxFrameSize {
		return 0, nil, fmt.Errorf("wire: frame size %d out of range", size)
	}
	if cap(c.buf) < int(size) {
		c.buf = make([]byte, size)
	}
	c.buf = c.buf[:size]
	if _, err = io.ReadFull(c.r, c.buf); err != nil {
		return 0, nil, err
	}
	typ = c.buf[0]
	if typ == msgError {
		return typ, nil, fmt.Errorf("wire: server error: %s", c.buf[1:])
	}
	return typ, c.buf[1:], nil
}

// expectFrame reads one frame and checks its type.
func (c *frameConn) expectFrame(want byte) ([]byte, error) {
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("wire: expected message type %d, got %d", want, typ)
	}
	return payload, nil
}

// Payload append helpers: frames are assembled into a scratch slice and
// written in one piece.

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendI32(b []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(v))
}

func appendI32Slice(b []byte, vs []int32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendI32(b, v)
	}
	return b
}

// reader is a cursor over a frame payload.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated frame payload")
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// i32Slice reads a counted int32 array, appending into dst.
func (r *reader) i32Slice(dst []int32) []int32 {
	k := int(r.u32())
	if r.err != nil {
		return dst
	}
	if r.off+4*k > len(r.b) {
		r.fail()
		return dst
	}
	for i := 0; i < k; i++ {
		dst = append(dst, int32(binary.LittleEndian.Uint32(r.b[r.off+4*i:])))
	}
	r.off += 4 * k
	return dst
}

// done checks that the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes in frame payload", len(r.b)-r.off)
	}
	return nil
}
