// Package wire is the service mode's transport: the protocol run over
// real sockets instead of function calls. A client process (the load
// generator, cmd/saer-client, or the churn scheduler's wire executor)
// drives one core.Driver per session whose ServerBank speaks this
// package's frame protocol to one server-shard process per contiguous
// server window (cmd/saer-server). Because the bank interface carries
// one batched (server, count) message per round — not per-ball messages
// — and the server side reuses core.ServerShard verbatim, a loopback
// wire run reproduces the in-process core.Run result bit for bit; the
// equivalence tests and the CI service smoke pin exactly that.
//
// Frame format (protocol version 2): every frame is length-prefixed,
//
//	uint32 LE  frame size (type byte + session id + payload chunk)
//	uint8      message type; bit 0x80 marks a continuation fragment
//	uint32 LE  session id
//	payload    little-endian fixed-width integers, layout per type
//
// Integer arrays are written as a uint32 count followed by the raw
// int32 values — compact, allocation-free to encode, and O(1) to size.
//
// Two version-2 additions carry the scaled-up client:
//
//   - Sessions: every frame names the session it belongs to, and the
//     per-session server state (one core.ServerShard per Hello'd id) is
//     keyed by it, so N independent protocol sessions multiplex over one
//     connection per shard. Replies echo the request's session id; a
//     server processes a connection's messages strictly in order, so
//     replies come back in request order (the client's conn-level FIFO
//     matching relies on it).
//
//   - Spilling: a logical message larger than maxFrameSize is written as
//     a run of continuation fragments (type | frameCont) followed by one
//     final frame with the plain type, all with the same session id and
//     contiguous on the connection; readMessage reassembles them. A
//     round batch therefore never fails on size — the frame limit bounds
//     a single corrupt length prefix, not a round.
//
// The session opens with a Hello that carries the protocol identity
// (variant, capacity) and the shard window the client expects, so a
// server process needs no protocol configuration of its own and a
// restarted server is indistinguishable from one that stayed up.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// Message types.
const (
	msgHello      = 1  // client→server: magic, version, variant, capacity, window
	msgHelloOK    = 2  // server→client: window accepted
	msgReset      = 3  // client→server: re-initialize the session's shard (optional initial loads)
	msgResetOK    = 4  // server→client
	msgRound      = 5  // client→server: one round's (server, count) batch
	msgRoundReply = 6  // server→client: accepted list, newly-burned list, saturated count
	msgLoads      = 7  // client→server: request the load window
	msgLoadsReply = 8  // server→client: the window's int32 loads
	msgReport     = 9  // client→server: request the shard's service tally
	msgReportOK   = 10 // server→client: Report fields
	msgError      = 11 // server→client: fatal session error (UTF-8 message)

	// frameCont marks a continuation fragment: the frame carries a
	// non-final chunk of its logical message's payload, and more frames
	// of the same (type, session) follow contiguously.
	frameCont = 0x80
)

const (
	// helloMagic guards against a stray client dialing the wrong port.
	helloMagic = 0x53414552 // "SAER"
	// protoVersion is bumped on any incompatible frame-layout change.
	// Version 2: session ids in every frame header + continuation
	// (spill) fragments.
	protoVersion = 2
	// frameHeaderSize is the non-payload portion counted by the length
	// prefix: the type byte plus the session id.
	frameHeaderSize = 5
	// maxFrameSize bounds one frame. A round batch larger than this is
	// not an error: writeMessage spills it across continuation
	// fragments. The limit exists so a corrupt length prefix fails fast
	// instead of allocating gigabytes.
	maxFrameSize = 1 << 28
	// maxMessageSize bounds a reassembled logical message (the sum of a
	// fragment run's payload chunks): far beyond any round batch the
	// n = 2²² sweeps produce, but finite, so a corrupt stream cannot
	// grow the reassembly buffer without bound.
	maxMessageSize = 1 << 31
)

// Report is a server process's cumulative service tally, summed over
// every session it served since it started. The aggregator folds these
// per-shard tallies into the JSON record stream.
type Report struct {
	// Sessions is the number of Hello handshakes served.
	Sessions uint64
	// Rounds is the number of round frames decided.
	Rounds uint64
	// Requests is the total number of ball requests received (the sum of
	// every round frame's counts).
	Requests uint64
	// Accepted is the total number of requests accepted.
	Accepted uint64
	// DecideNanos is the cumulative time spent inside the threshold
	// decisions (excluding transport reads/writes).
	DecideNanos uint64
}

// frameConn wraps one side of a connection with buffered frame I/O and
// reusable payload buffers. The read half (readMessage and its buffers)
// and the write half (writeMessage and its header scratch) may be used
// from one goroutine each, concurrently with each other — the pipelined
// client conn has a persistent reader goroutine while callers write.
// Neither half may be shared by two goroutines.
type frameConn struct {
	r io.Reader
	w io.Writer

	// limit is the per-frame size cap: maxFrameSize in production,
	// lowered by tests to exercise spilling without gigabyte payloads.
	limit int

	rbuf []byte  // reused frame read buffer
	msg  []byte  // reused reassembly buffer for spilled messages
	rhdr [4]byte // read-side length prefix scratch
	whdr [9]byte // write-side header scratch (length + type + session)

	// Optional telemetry, set once at construction: tx/rx count bytes on
	// the socket (length prefixes included), spills counts continuation
	// fragments written. The counters are nil-receiver-safe, so the
	// un-instrumented path is one nil test per frame.
	tx, rx, spills *telemetry.Counter
}

func newFrameConn(rw io.ReadWriter) *frameConn {
	return &frameConn{r: rw, w: rw, limit: maxFrameSize}
}

// writeFrame sends one raw frame (a single fragment).
func (c *frameConn) writeFrame(typ byte, session uint32, chunk []byte) error {
	binary.LittleEndian.PutUint32(c.whdr[0:], uint32(frameHeaderSize+len(chunk)))
	c.whdr[4] = typ
	binary.LittleEndian.PutUint32(c.whdr[5:], session)
	if _, err := c.w.Write(c.whdr[:]); err != nil {
		return err
	}
	if len(chunk) > 0 {
		if _, err := c.w.Write(chunk); err != nil {
			return err
		}
	}
	c.tx.Add(0, int64(len(c.whdr)+len(chunk)))
	return nil
}

// writeMessage sends one logical message, spilling the payload across
// continuation fragments when it exceeds the frame limit. Fragments are
// written back to back, so a logical message occupies a contiguous run
// of frames on the connection.
func (c *frameConn) writeMessage(typ byte, session uint32, payload []byte) error {
	maxChunk := c.limit - frameHeaderSize
	for len(payload) > maxChunk {
		if err := c.writeFrame(typ|frameCont, session, payload[:maxChunk]); err != nil {
			return err
		}
		c.spills.Inc(0)
		payload = payload[maxChunk:]
	}
	return c.writeFrame(typ, session, payload)
}

// readFrame reads one raw frame into the reused buffer, returning the
// type byte (continuation bit included) and the payload chunk (valid
// until the next read).
func (c *frameConn) readFrame() (typ byte, session uint32, chunk []byte, err error) {
	if _, err = io.ReadFull(c.r, c.rhdr[:]); err != nil {
		return 0, 0, nil, err
	}
	size := binary.LittleEndian.Uint32(c.rhdr[:])
	if size < frameHeaderSize || int64(size) > int64(c.limit) {
		return 0, 0, nil, fmt.Errorf("wire: frame size %d out of range", size)
	}
	if cap(c.rbuf) < int(size) {
		c.rbuf = make([]byte, size)
	}
	c.rbuf = c.rbuf[:size]
	if _, err = io.ReadFull(c.r, c.rbuf); err != nil {
		return 0, 0, nil, err
	}
	c.rx.Add(0, int64(len(c.rhdr)+len(c.rbuf)))
	typ = c.rbuf[0]
	session = binary.LittleEndian.Uint32(c.rbuf[1:])
	return typ, session, c.rbuf[frameHeaderSize:], nil
}

// readMessage reads one logical message, reassembling continuation
// fragments. The returned payload is valid until the next read. An
// error-frame message is surfaced as an error.
func (c *frameConn) readMessage() (typ byte, session uint32, payload []byte, err error) {
	typ, session, payload, err = c.readFrame()
	if err != nil {
		return 0, 0, nil, err
	}
	if typ&frameCont != 0 {
		// Spilled message: accumulate fragments until the final frame.
		want := typ &^ frameCont
		c.msg = append(c.msg[:0], payload...)
		for typ&frameCont != 0 {
			var fragSession uint32
			typ, fragSession, payload, err = c.readFrame()
			if err != nil {
				return 0, 0, nil, err
			}
			if typ&^frameCont != want || fragSession != session {
				return 0, 0, nil, fmt.Errorf("wire: interleaved fragments (type %d session %d inside type %d session %d)",
					typ&^frameCont, fragSession, want, session)
			}
			if len(c.msg)+len(payload) > maxMessageSize {
				return 0, 0, nil, fmt.Errorf("wire: spilled message exceeds %d bytes", maxMessageSize)
			}
			c.msg = append(c.msg, payload...)
		}
		payload = c.msg
		typ = want
	}
	if typ == msgError {
		return typ, session, nil, &serverError{msg: string(payload)}
	}
	return typ, session, payload, nil
}

// serverError is a fatal error the server reported in an error frame —
// a semantic rejection (bad handshake, malformed round), as opposed to a
// transport failure. The redial logic treats it as permanent: retrying
// the same request against a restarted server would fail identically.
type serverError struct{ msg string }

func (e *serverError) Error() string { return "wire: server error: " + e.msg }

// expectMessage reads one logical message and checks its type.
func (c *frameConn) expectMessage(want byte) (session uint32, payload []byte, err error) {
	typ, session, payload, err := c.readMessage()
	if err != nil {
		return session, nil, err
	}
	if typ != want {
		return session, nil, fmt.Errorf("wire: expected message type %d, got %d", want, typ)
	}
	return session, payload, nil
}

// Payload append helpers: frames are assembled into a scratch slice and
// written in one piece.

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendI32(b []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(v))
}

// appendI32Slice writes a counted int32 array. The buffer is grown once
// and filled with a tight PutUint32 loop — this is the round-batch
// encode hot path, where per-element append calls showed up in the wire
// profile.
func appendI32Slice(b []byte, vs []int32) []byte {
	need := 4 + 4*len(vs)
	if cap(b)-len(b) < need {
		nb := make([]byte, len(b), len(b)+need+len(b)/2)
		copy(nb, b)
		b = nb
	}
	off := len(b)
	b = b[:off+need]
	binary.LittleEndian.PutUint32(b[off:], uint32(len(vs)))
	off += 4
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[off:], uint32(v))
		off += 4
	}
	return b
}

// reader is a cursor over a frame payload.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated frame payload")
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// i32Slice reads a counted int32 array, appending into dst.
func (r *reader) i32Slice(dst []int32) []int32 {
	k := int(r.u32())
	if r.err != nil {
		return dst
	}
	if k < 0 || r.off+4*k > len(r.b) {
		r.fail()
		return dst
	}
	for i := 0; i < k; i++ {
		dst = append(dst, int32(binary.LittleEndian.Uint32(r.b[r.off+4*i:])))
	}
	r.off += 4 * k
	return dst
}

// done checks that the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes in frame payload", len(r.b)-r.off)
	}
	return nil
}
