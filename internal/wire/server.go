package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Server is one server-shard listener: it owns no protocol configuration
// of its own — each session's Hello carries the variant, capacity and
// server window, and the session's state is a fresh core.ServerShard. A
// server process is therefore stateless across sessions (the per-run
// state is rebuilt by the client's Reset), which is what makes a killed
// and restarted shard indistinguishable from one that stayed up: the
// failure-wave scenarios rely on it. Only the service tally (Report)
// survives a session.
//
// One connection may carry several multiplexed sessions: every frame
// names its session id, each id gets its own ServerShard on Hello, and
// messages are processed strictly in connection order with the reply
// written before the next read — the ordering the client's pipelined
// FIFO reply matching depends on.
type Server struct {
	ln net.Listener

	// tel, when non-nil, is the shard's telemetry bundle. Write-once via
	// SetTelemetry before Serve starts accepting (StartSetTelemetry does
	// this between Listen and Serve), so connection goroutines read it
	// without locking.
	tel *serverTel

	mu     sync.Mutex
	report Report
	conns  map[net.Conn]struct{}
	limit  int

	wg     sync.WaitGroup
	closed chan struct{}
}

// Listen opens a shard listener on addr ("127.0.0.1:0" picks a free
// port; read it back with Addr). Serve must be called to accept.
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
		limit:  maxFrameSize,
		closed: make(chan struct{}),
	}, nil
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetTelemetry attaches per-shard server instruments from reg (nil
// detaches): open connection/session gauges, round and request
// counters, the decide-latency histogram and the transport byte/spill
// counters (saer_server_* series, labeled with shard when shard >= 0).
// Call it before Serve; connections accepted earlier keep the bundle
// they started with.
func (s *Server) SetTelemetry(reg *telemetry.Registry, shard int) {
	s.tel = newServerTel(reg, shard)
}

// SetFrameLimit lowers the per-frame size cap for connections accepted
// after the call — a test knob for exercising oversized-batch spilling
// without gigabyte payloads. Production servers keep the default
// maxFrameSize.
func (s *Server) SetFrameLimit(limit int) {
	s.mu.Lock()
	s.limit = limit
	s.mu.Unlock()
}

func (s *Server) frameLimit() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limit
}

// Serve accepts and serves connections until Close. Each connection is
// served on its own goroutine with its own session states, so a new
// client can dial while an old connection drains.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if s.tel != nil {
			s.tel.openConns.Add(1)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
				if s.tel != nil {
					s.tel.openConns.Add(-1)
				}
			}()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.ln.Close()
	// A closed server is a killed process: in-flight connections die with
	// it rather than draining (the failure-wave model the restart tests
	// and the churn executor's redial rely on).
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Report returns the server's cumulative service tally.
func (s *Server) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// connSession is one (connection, session id)'s state: the shard the
// session's Hello configured plus scratch buffers reused across rounds.
type connSession struct {
	shard *core.ServerShard

	touched  []int32 // decode scratch: the round's servers
	counts   []int32 // decode scratch: the round's counts
	loads    []int32 // decode scratch: reset initial loads
	accepted []int32 // decision scratch
	burned   []int32 // decision scratch
}

// connState is one connection's state: the buffered frame transport and
// the session map the Hellos populate.
type connState struct {
	fc       *frameConn
	bw       *bufio.Writer
	sessions map[uint32]*connSession
	sid      uint32 // session of the message being processed (error tagging)
	out      []byte // encode scratch
}

// serveConn runs one connection to close. Protocol errors are reported
// to the client as an error frame (tagged with the offending session)
// before disconnecting.
func (s *Server) serveConn(conn net.Conn) {
	bw := bufio.NewWriterSize(conn, 1<<16)
	st := &connState{
		fc:       &frameConn{r: bufio.NewReaderSize(conn, 1<<16), w: bw, limit: s.frameLimit()},
		bw:       bw,
		sessions: make(map[uint32]*connSession),
	}
	if s.tel != nil {
		st.fc.tx, st.fc.rx, st.fc.spills = s.tel.tx, s.tel.rx, s.tel.spills
	}
	if err := s.runConn(st); err != nil && !errors.Is(err, net.ErrClosed) {
		// Best effort: the connection may already be gone.
		st.fc.writeMessage(msgError, st.sid, []byte(err.Error()))
		bw.Flush()
	}
	if s.tel != nil && len(st.sessions) > 0 {
		s.tel.openSessions.Add(-int64(len(st.sessions)))
	}
}

func (s *Server) runConn(st *connState) error {
	for {
		typ, sid, payload, err := st.fc.readMessage()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				// Clean client disconnect between messages.
				return nil
			}
			return err
		}
		st.sid = sid
		if typ == msgHello {
			if err := s.handleHello(st, sid, payload); err != nil {
				return err
			}
		} else {
			ses := st.sessions[sid]
			if ses == nil {
				return fmt.Errorf("wire: message type %d for session %d before its hello", typ, sid)
			}
			switch typ {
			case msgReset:
				err = s.handleReset(st, ses, payload)
			case msgRound:
				err = s.handleRound(st, ses, payload)
			case msgLoads:
				err = s.handleLoads(st, ses, payload)
			case msgReport:
				err = s.handleReport(st, payload)
			default:
				err = fmt.Errorf("wire: unexpected message type %d", typ)
			}
			if err != nil {
				return err
			}
		}
		if err := st.bw.Flush(); err != nil {
			return err
		}
	}
}

// handleHello validates a session's Hello and builds its shard.
func (s *Server) handleHello(st *connState, sid uint32, payload []byte) error {
	r := reader{b: payload}
	magic := r.u32()
	version := r.u32()
	variant := r.u8()
	capacity := r.i32()
	lo := r.i32()
	hi := r.i32()
	if err := r.done(); err != nil {
		return err
	}
	if magic != helloMagic {
		return fmt.Errorf("wire: bad hello magic %#x", magic)
	}
	if version != protoVersion {
		return fmt.Errorf("wire: protocol version %d, this server speaks %d", version, protoVersion)
	}
	if st.sessions[sid] != nil {
		return fmt.Errorf("wire: duplicate hello for session %d", sid)
	}
	shard, err := core.NewServerShard(core.Variant(variant), capacity, int(lo), int(hi))
	if err != nil {
		return err
	}
	st.sessions[sid] = &connSession{shard: shard}
	s.mu.Lock()
	s.report.Sessions++
	s.mu.Unlock()
	if s.tel != nil {
		s.tel.openSessions.Add(1)
	}
	return st.fc.writeMessage(msgHelloOK, sid, nil)
}

func (ses *connSession) window() int {
	lo, hi := ses.shard.Window()
	return hi - lo
}

func (s *Server) handleReset(st *connState, ses *connSession, payload []byte) error {
	r := reader{b: payload}
	hasLoads := r.u8()
	var loads []int32
	if hasLoads != 0 {
		ses.loads = r.i32Slice(ses.loads[:0])
		loads = ses.loads
	}
	if err := r.done(); err != nil {
		return err
	}
	if loads != nil && len(loads) != ses.window() {
		return fmt.Errorf("wire: reset with %d loads for a %d-server window", len(loads), ses.window())
	}
	if err := ses.shard.Reset(loads); err != nil {
		return err
	}
	return st.fc.writeMessage(msgResetOK, st.sid, nil)
}

func (s *Server) handleRound(st *connState, ses *connSession, payload []byte) error {
	r := reader{b: payload}
	ses.touched = r.i32Slice(ses.touched[:0])
	ses.counts = r.i32Slice(ses.counts[:0])
	if err := r.done(); err != nil {
		return err
	}
	start := time.Now()
	acc, nb, sat, err := ses.shard.Decide(ses.touched, ses.counts, ses.accepted[:0], ses.burned[:0])
	if err != nil {
		return err
	}
	ses.accepted, ses.burned = acc, nb
	var received uint64
	for _, c := range ses.counts {
		received += uint64(c)
	}
	// Accepted requests = the counts of the accepted servers; acc is
	// sorted and a subsequence of touched, so one merge pass resolves it.
	var acceptedReqs uint64
	j := 0
	for i, u := range ses.touched {
		if j < len(acc) && acc[j] == u {
			acceptedReqs += uint64(ses.counts[i])
			j++
		}
	}
	elapsed := time.Since(start)
	s.mu.Lock()
	s.report.Rounds++
	s.report.Requests += received
	s.report.Accepted += acceptedReqs
	s.report.DecideNanos += uint64(elapsed.Nanoseconds())
	s.mu.Unlock()
	if s.tel != nil {
		s.tel.rounds.Inc(0)
		s.tel.requests.Add(0, int64(received))
		s.tel.decide.Observe(elapsed)
	}

	st.out = st.out[:0]
	st.out = appendI32Slice(st.out, acc)
	st.out = appendI32Slice(st.out, nb)
	st.out = appendU32(st.out, uint32(sat))
	return st.fc.writeMessage(msgRoundReply, st.sid, st.out)
}

func (s *Server) handleLoads(st *connState, ses *connSession, payload []byte) error {
	if len(payload) != 0 {
		return fmt.Errorf("wire: loads request carries a payload")
	}
	st.out = appendI32Slice(st.out[:0], ses.shard.Loads())
	return st.fc.writeMessage(msgLoadsReply, st.sid, st.out)
}

func (s *Server) handleReport(st *connState, payload []byte) error {
	if len(payload) != 0 {
		return fmt.Errorf("wire: report request carries a payload")
	}
	rep := s.Report()
	st.out = st.out[:0]
	st.out = appendU64(st.out, rep.Sessions)
	st.out = appendU64(st.out, rep.Rounds)
	st.out = appendU64(st.out, rep.Requests)
	st.out = appendU64(st.out, rep.Accepted)
	st.out = appendU64(st.out, rep.DecideNanos)
	return st.fc.writeMessage(msgReportOK, st.sid, st.out)
}

// ServerSet runs one goroutine-isolated Server per shard inside this
// process: the single-binary deployment shape (cmd/saer-server with k
// listen addresses) and the harness for the loopback tests and the CI
// service smoke.
type ServerSet struct {
	servers []*Server
	errs    []error
	wg      sync.WaitGroup
}

// StartSet listens on every addr and serves each on its own goroutine.
func StartSet(addrs []string) (*ServerSet, error) {
	return StartSetTelemetry(addrs, nil)
}

// StartSetTelemetry is StartSet with per-shard server instruments
// registered on reg (nil behaves like StartSet). The bundle is attached
// between Listen and Serve, so every accepted connection is counted.
func StartSetTelemetry(addrs []string, reg *telemetry.Registry) (*ServerSet, error) {
	ss := &ServerSet{errs: make([]error, len(addrs))}
	for i, addr := range addrs {
		srv, err := Listen(addr)
		if err != nil {
			ss.Close()
			return nil, err
		}
		srv.SetTelemetry(reg, i)
		ss.servers = append(ss.servers, srv)
	}
	for i, srv := range ss.servers {
		ss.wg.Add(1)
		go func(i int, srv *Server) {
			defer ss.wg.Done()
			ss.errs[i] = srv.Serve()
		}(i, srv)
	}
	return ss, nil
}

// StartLocalSet starts k shard servers on loopback ports picked by the
// kernel.
func StartLocalSet(k int) (*ServerSet, error) {
	addrs := make([]string, k)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return StartSet(addrs)
}

// Addrs returns the bound addresses, one per shard in shard order.
func (ss *ServerSet) Addrs() []string {
	addrs := make([]string, len(ss.servers))
	for i, srv := range ss.servers {
		addrs[i] = srv.Addr()
	}
	return addrs
}

// Servers exposes the individual servers (the failure-wave tests kill
// and restart specific shards).
func (ss *ServerSet) Servers() []*Server { return ss.servers }

// Reports collects every server's service tally, in shard order.
func (ss *ServerSet) Reports() []Report {
	reps := make([]Report, len(ss.servers))
	for i, srv := range ss.servers {
		reps[i] = srv.Report()
	}
	return reps
}

// Close shuts every server down and waits for the serve loops.
func (ss *ServerSet) Close() error {
	var first error
	for _, srv := range ss.servers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	ss.wg.Wait()
	for _, err := range ss.errs {
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
