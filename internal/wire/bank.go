package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// SplitWindows partitions m servers into shard windows [lo, hi), one per
// shard, sizes differing by at most one — the same split core.NewLocalBank
// uses, so a wire deployment and its in-process reference shard
// identically.
func SplitWindows(m, shards int) ([][2]int, error) {
	if m <= 0 {
		return nil, fmt.Errorf("wire: need at least one server, got %d", m)
	}
	if shards <= 0 || shards > m {
		return nil, fmt.Errorf("wire: shard count %d outside [1, %d]", shards, m)
	}
	windows := make([][2]int, shards)
	per, rem := m/shards, m%shards
	lo := 0
	for s := range windows {
		size := per
		if s < rem {
			size++
		}
		windows[s] = [2]int{lo, lo + size}
		lo += size
	}
	return windows, nil
}

// Bank is the wire implementation of core.ServerBank: one pooled
// connection per remote server shard, each round shipped as one batched
// frame per touched shard. It is what turns a core.Driver into the
// service mode's load generator — the Driver neither knows nor cares
// that its bank crosses a socket.
//
// A connection that dies (a killed server process) is redialed on the
// next Reset: combined with the per-run statelessness of the shard
// servers, a process kill between epochs is invisible to the scenario,
// which is exactly the recovery model the churn failure waves assume.
type Bank struct {
	variant  core.Variant
	capacity int32
	m        int
	conns    []*shardConn

	// Round metrics: one latency sample per DecideRound (the full
	// scatter/gather round trip) and the cumulative request volume.
	roundLat []time.Duration
	requests int64
}

// shardConn is the client half of one shard session.
type shardConn struct {
	addr   string
	lo, hi int32

	conn net.Conn
	bw   *bufio.Writer
	fc   *frameConn

	out      []byte
	accepted []int32
	burned   []int32
	loads    []int32
	sat      int
	err      error
}

// Dial connects one shard session per address; addrs[i] serves the i-th
// window of SplitWindows(m, len(addrs)). The protocol identity (variant,
// capacity) is fixed per Bank and announced to each server in the Hello.
func Dial(addrs []string, variant core.Variant, capacity int32, m int) (*Bank, error) {
	windows, err := SplitWindows(m, len(addrs))
	if err != nil {
		return nil, err
	}
	b := &Bank{variant: variant, capacity: capacity, m: m}
	for i, addr := range addrs {
		b.conns = append(b.conns, &shardConn{
			addr: addr,
			lo:   int32(windows[i][0]),
			hi:   int32(windows[i][1]),
		})
	}
	for _, sc := range b.conns {
		if err := sc.ensure(b); err != nil {
			b.Close()
			return nil, err
		}
	}
	return b, nil
}

// ensure dials and handshakes the session if it is not connected.
func (sc *shardConn) ensure(b *Bank) error {
	if sc.conn != nil {
		return nil
	}
	conn, err := net.Dial("tcp", sc.addr)
	if err != nil {
		return fmt.Errorf("wire: shard [%d,%d) at %s: %w", sc.lo, sc.hi, sc.addr, err)
	}
	bw := bufio.NewWriterSize(conn, 1<<16)
	fc := &frameConn{r: bufio.NewReaderSize(conn, 1<<16), w: bw}
	sc.out = sc.out[:0]
	sc.out = appendU32(sc.out, helloMagic)
	sc.out = appendU32(sc.out, protoVersion)
	sc.out = append(sc.out, byte(b.variant))
	sc.out = appendI32(sc.out, b.capacity)
	sc.out = appendI32(sc.out, sc.lo)
	sc.out = appendI32(sc.out, sc.hi)
	if err := fc.writeFrame(msgHello, sc.out); err != nil {
		conn.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return err
	}
	if _, err := fc.expectFrame(msgHelloOK); err != nil {
		conn.Close()
		return fmt.Errorf("wire: shard [%d,%d) at %s: %w", sc.lo, sc.hi, sc.addr, err)
	}
	sc.conn, sc.bw, sc.fc = conn, bw, fc
	return nil
}

// drop closes the session so the next ensure redials.
func (sc *shardConn) drop() {
	if sc.conn != nil {
		sc.conn.Close()
		sc.conn = nil
	}
}

// call sends one request frame and reads the reply, dropping the session
// on any transport error.
func (sc *shardConn) call(reqType byte, payload []byte, replyType byte) ([]byte, error) {
	if err := sc.fc.writeFrame(reqType, payload); err != nil {
		sc.drop()
		return nil, err
	}
	if err := sc.bw.Flush(); err != nil {
		sc.drop()
		return nil, err
	}
	reply, err := sc.fc.expectFrame(replyType)
	if err != nil {
		sc.drop()
		return nil, err
	}
	return reply, nil
}

// Reset re-initializes every shard for a new run, redialing sessions
// that died since the last run (killed/restarted server processes).
func (b *Bank) Reset(initialLoads []int) error {
	if initialLoads != nil && len(initialLoads) != b.m {
		return fmt.Errorf("wire: reset with %d initial loads for %d servers", len(initialLoads), b.m)
	}
	for _, sc := range b.conns {
		// Built apart from sc.out: a redial's Hello writes into sc.out,
		// which must not clobber the pending reset payload.
		var payload []byte
		if initialLoads == nil {
			payload = append(payload, 0)
		} else {
			payload = append(payload, 1)
			payload = appendU32(payload, uint32(sc.hi-sc.lo))
			for _, l := range initialLoads[sc.lo:sc.hi] {
				if l < 0 {
					l = 0
				}
				payload = appendI32(payload, int32(l))
			}
		}
		err := func() error {
			if err := sc.ensure(b); err != nil {
				return err
			}
			_, err := sc.call(msgReset, payload, msgResetOK)
			return err
		}()
		if err != nil {
			// One redial attempt: the server may have restarted since the
			// session was established.
			sc.drop()
			if err = sc.ensure(b); err != nil {
				return err
			}
			if _, err = sc.call(msgReset, payload, msgResetOK); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecideRound splits the sorted batch across the shard windows, ships
// each shard's slice concurrently, and concatenates the replies in shard
// order (windows ascend, so the decision lists stay sorted). Shards that
// received nothing are skipped entirely — no frame, no state change,
// matching core.LocalBank.
func (b *Bank) DecideRound(touched, counts []int32) (core.RoundDecision, error) {
	var dec core.RoundDecision
	if len(touched) != len(counts) {
		return dec, fmt.Errorf("wire: round batch with %d touched but %d counts", len(touched), len(counts))
	}
	start := time.Now()
	var wg sync.WaitGroup
	from := 0
	for _, sc := range b.conns {
		to := from
		for to < len(touched) && touched[to] < sc.hi {
			to++
		}
		if to == from {
			continue
		}
		wg.Add(1)
		go func(sc *shardConn, touched, counts []int32) {
			defer wg.Done()
			sc.err = sc.decide(touched, counts)
		}(sc, touched[from:to], counts[from:to])
		from = to
	}
	if from != len(touched) {
		wg.Wait()
		return dec, fmt.Errorf("wire: server %d outside every shard window", touched[from])
	}
	wg.Wait()
	for _, sc := range b.conns {
		if sc.err != nil {
			err := sc.err
			sc.err = nil
			return dec, err
		}
		dec.Accepted = append(dec.Accepted, sc.accepted...)
		dec.NewlyBurned = append(dec.NewlyBurned, sc.burned...)
		dec.Saturated += sc.sat
		sc.accepted, sc.burned, sc.sat = sc.accepted[:0], sc.burned[:0], 0
	}
	b.roundLat = append(b.roundLat, time.Since(start))
	for _, c := range counts {
		b.requests += int64(c)
	}
	return dec, nil
}

// decide ships one shard's slice of the round and parses the reply into
// the connection's decision buffers.
func (sc *shardConn) decide(touched, counts []int32) error {
	sc.out = appendI32Slice(sc.out[:0], touched)
	sc.out = appendI32Slice(sc.out, counts)
	reply, err := sc.call(msgRound, sc.out, msgRoundReply)
	if err != nil {
		return err
	}
	r := reader{b: reply}
	sc.accepted = r.i32Slice(sc.accepted[:0])
	sc.burned = r.i32Slice(sc.burned[:0])
	sc.sat = int(r.u32())
	return r.done()
}

// Loads gathers the shard load windows into the full per-server vector.
func (b *Bank) Loads() ([]int32, error) {
	loads := make([]int32, 0, b.m)
	for _, sc := range b.conns {
		reply, err := sc.call(msgLoads, nil, msgLoadsReply)
		if err != nil {
			return nil, err
		}
		r := reader{b: reply}
		sc.loads = r.i32Slice(sc.loads[:0])
		if err := r.done(); err != nil {
			return nil, err
		}
		if len(sc.loads) != int(sc.hi-sc.lo) {
			return nil, fmt.Errorf("wire: shard [%d,%d) returned %d loads", sc.lo, sc.hi, len(sc.loads))
		}
		loads = append(loads, sc.loads...)
	}
	return loads, nil
}

// Reports fetches every shard server's cumulative service tally, in
// shard order.
func (b *Bank) Reports() ([]Report, error) {
	reps := make([]Report, len(b.conns))
	for i, sc := range b.conns {
		reply, err := sc.call(msgReport, nil, msgReportOK)
		if err != nil {
			return nil, err
		}
		r := reader{b: reply}
		reps[i] = Report{
			Sessions:    r.u64(),
			Rounds:      r.u64(),
			Requests:    r.u64(),
			Accepted:    r.u64(),
			DecideNanos: r.u64(),
		}
		if err := r.done(); err != nil {
			return nil, err
		}
	}
	return reps, nil
}

// Windows returns the shard windows, in shard order.
func (b *Bank) Windows() [][2]int {
	ws := make([][2]int, len(b.conns))
	for i, sc := range b.conns {
		ws[i] = [2]int{int(sc.lo), int(sc.hi)}
	}
	return ws
}

// RoundLatencies returns the per-round scatter/gather round-trip times
// recorded since the last TakeMetrics.
func (b *Bank) RoundLatencies() []time.Duration { return b.roundLat }

// TotalRequests returns the cumulative request volume shipped since the
// last TakeMetrics.
func (b *Bank) TotalRequests() int64 { return b.requests }

// TakeMetrics returns and clears the recorded round latencies and
// request volume.
func (b *Bank) TakeMetrics() ([]time.Duration, int64) {
	lat, reqs := b.roundLat, b.requests
	b.roundLat, b.requests = nil, 0
	return lat, reqs
}

// Close closes every shard session.
func (b *Bank) Close() error {
	for _, sc := range b.conns {
		sc.drop()
	}
	return nil
}
