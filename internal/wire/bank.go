package wire

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// SplitWindows partitions m servers into shard windows [lo, hi), one per
// shard, sizes differing by at most one — the same split core.NewLocalBank
// uses, so a wire deployment and its in-process reference shard
// identically.
func SplitWindows(m, shards int) ([][2]int, error) {
	if m <= 0 {
		return nil, fmt.Errorf("wire: need at least one server, got %d", m)
	}
	if shards <= 0 || shards > m {
		return nil, fmt.Errorf("wire: shard count %d outside [1, %d]", shards, m)
	}
	windows := make([][2]int, shards)
	per, rem := m/shards, m%shards
	lo := 0
	for s := range windows {
		size := per
		if s < rem {
			size++
		}
		windows[s] = [2]int{lo, lo + size}
		lo += size
	}
	return windows, nil
}

// BankConfig tunes the client side of the wire transport. The zero value
// selects every default, so existing Dial callers are unchanged.
type BankConfig struct {
	// Sessions is the number of concurrent protocol sessions multiplexed
	// over the Bank's connections (default 1). Each session is an
	// independent core.ServerBank — its own per-session ServerShard state
	// server-side — so S sessions run S trials concurrently over one set
	// of sockets.
	Sessions int
	// Pipeline caps the request frames in flight per shard connection,
	// across all sessions (default 8). The protocol is synchronous within
	// a session (round t+1 depends on round t's decisions), so depth
	// materializes when several sessions share a connection.
	Pipeline int
	// RedialAttempts bounds the dial attempts per reconnection (default
	// 3): a shard killed and restarted by a failure wave takes a moment
	// to come back.
	RedialAttempts int
	// RedialBackoff is the base backoff before the second attempt,
	// doubled per further attempt with full jitter (default 25ms).
	RedialBackoff time.Duration
	// FrameLimit overrides the per-frame size cap (default maxFrameSize).
	// Tests lower it to exercise frame spilling without gigabyte
	// payloads; production callers leave it zero.
	FrameLimit int
	// Telemetry, when non-nil, receives per-shard client instruments:
	// RTT histograms, tx/rx byte counters, redials and spilled frames
	// (saer_wire_* series, labeled by shard). Pure observation — the
	// protocol bytes and results are identical with or without it.
	Telemetry *telemetry.Registry
}

func (c BankConfig) withDefaults() BankConfig {
	if c.Sessions < 1 {
		c.Sessions = 1
	}
	if c.Pipeline < 1 {
		c.Pipeline = 8
	}
	if c.RedialAttempts < 1 {
		c.RedialAttempts = 3
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 25 * time.Millisecond
	}
	if c.FrameLimit <= 0 {
		c.FrameLimit = maxFrameSize
	}
	return c
}

// Bank is the wire implementation of core.ServerBank: one pipelined
// connection per remote server shard, shared by every session, each
// round shipped as one batched message per touched shard (spilled across
// continuation frames when oversized). It is what turns a core.Driver
// into the service mode's load generator — the Driver neither knows nor
// cares that its bank crosses a socket.
//
// The Bank itself implements core.ServerBank by delegating to session 0,
// so single-session callers use it directly; Session(i) hands out the
// other sessions for trial-parallel drivers. A connection that dies (a
// killed server process) is redialed — with bounded, jittered backoff —
// on the next call that needs it: combined with the per-run
// statelessness of the shard servers, a process kill between epochs is
// invisible to the scenario, which is exactly the recovery model the
// churn failure waves assume.
type Bank struct {
	variant  core.Variant
	capacity int32
	m        int
	cfg      BankConfig
	conns    []*shardConn
	sessions []*Session
}

// Dial connects one pipelined shard connection per address with default
// knobs; addrs[i] serves the i-th window of SplitWindows(m, len(addrs)).
func Dial(addrs []string, variant core.Variant, capacity int32, m int) (*Bank, error) {
	return DialConfig(addrs, variant, capacity, m, BankConfig{})
}

// DialConfig is Dial with explicit client knobs. The protocol identity
// (variant, capacity) is fixed per Bank and announced to each server in
// every session's Hello.
func DialConfig(addrs []string, variant core.Variant, capacity int32, m int, cfg BankConfig) (*Bank, error) {
	windows, err := SplitWindows(m, len(addrs))
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	b := &Bank{variant: variant, capacity: capacity, m: m, cfg: cfg}
	for i, addr := range addrs {
		b.conns = append(b.conns, &shardConn{
			bank:  b,
			addr:  addr,
			lo:    int32(windows[i][0]),
			hi:    int32(windows[i][1]),
			slots: make(chan struct{}, cfg.Pipeline),
			tel:   newShardTel(cfg.Telemetry, i),
		})
	}
	for s := 0; s < cfg.Sessions; s++ {
		ses := &Session{b: b, id: uint32(s), shards: make([]*sessionShard, len(addrs))}
		for i := range ses.shards {
			ss := &sessionShard{}
			ss.parseRoundFn = ss.parseRound
			ses.shards[i] = ss
		}
		b.sessions = append(b.sessions, ses)
	}
	for _, sc := range b.conns {
		sc.wmu.Lock()
		err := sc.ensureLocked()
		sc.wmu.Unlock()
		if err != nil {
			b.Close()
			return nil, err
		}
	}
	return b, nil
}

// Sessions returns the number of multiplexed sessions the Bank was
// dialed with.
func (b *Bank) Sessions() int { return len(b.sessions) }

// Session returns the i-th session's core.ServerBank view. Each session
// is single-caller (one Driver), but distinct sessions run concurrently.
func (b *Bank) Session(i int) *Session { return b.sessions[i] }

// Windows returns the shard windows, in shard order.
func (b *Bank) Windows() [][2]int {
	ws := make([][2]int, len(b.conns))
	for i, sc := range b.conns {
		ws[i] = [2]int{int(sc.lo), int(sc.hi)}
	}
	return ws
}

// The Bank's own core.ServerBank face is session 0.

// Reset re-initializes session 0's shards for a new run.
func (b *Bank) Reset(initialLoads []int) error { return b.sessions[0].Reset(initialLoads) }

// DecideRound ships session 0's round.
func (b *Bank) DecideRound(touched, counts []int32) (core.RoundDecision, error) {
	return b.sessions[0].DecideRound(touched, counts)
}

// Loads gathers session 0's per-server load vector.
func (b *Bank) Loads() ([]int32, error) { return b.sessions[0].Loads() }

// Reports fetches every shard server's cumulative service tally, in
// shard order.
func (b *Bank) Reports() ([]Report, error) {
	reps := make([]Report, len(b.conns))
	for i, sc := range b.conns {
		rep := &reps[i]
		err := sc.call(0, msgReport, nil, msgReportOK, func(payload []byte) error {
			r := reader{b: payload}
			rep.Sessions = r.u64()
			rep.Rounds = r.u64()
			rep.Requests = r.u64()
			rep.Accepted = r.u64()
			rep.DecideNanos = r.u64()
			return r.done()
		})
		if err != nil {
			return nil, err
		}
	}
	return reps, nil
}

// RoundLatencies returns the per-round scatter/gather round-trip times
// recorded since the last TakeMetrics, merged across sessions.
func (b *Bank) RoundLatencies() []time.Duration {
	var lat []time.Duration
	for _, ses := range b.sessions {
		ses.mu.Lock()
		lat = append(lat, ses.roundLat...)
		ses.mu.Unlock()
	}
	return lat
}

// TotalRequests returns the cumulative request volume shipped since the
// last TakeMetrics, summed across sessions.
func (b *Bank) TotalRequests() int64 {
	var reqs int64
	for _, ses := range b.sessions {
		ses.mu.Lock()
		reqs += ses.requests
		ses.mu.Unlock()
	}
	return reqs
}

// TakeMetrics returns and clears the recorded round latencies and
// request volume of every session. Sessions record into their own
// accumulators under their own locks, so concurrent DecideRounds and a
// TakeMetrics never race.
func (b *Bank) TakeMetrics() ([]time.Duration, int64) {
	var lat []time.Duration
	var reqs int64
	for _, ses := range b.sessions {
		l, r := ses.TakeMetrics()
		lat = append(lat, l...)
		reqs += r
	}
	return lat, reqs
}

// Close closes every shard connection.
func (b *Bank) Close() error {
	for _, sc := range b.conns {
		sc.close()
	}
	return nil
}

// Session is one multiplexed protocol session of a Bank: an independent
// core.ServerBank whose server-side state (one ServerShard per shard,
// keyed by the session id in the frame header) lives alongside its
// siblings' on the shared connections. One Driver drives one Session;
// distinct Sessions run concurrently, which is how `saer-client
// -trials T -sessions S` overlaps T trials S at a time over one socket
// set.
type Session struct {
	b      *Bank
	id     uint32
	shards []*sessionShard
	active []int // shard indexes with an in-flight round call

	// Round metrics, session-local and lock-guarded: the Bank merges
	// them at read, so concurrent sessions never contend on shared
	// accumulators (and the race detector agrees).
	mu       sync.Mutex
	roundLat []time.Duration
	requests int64
}

// sessionShard is one session's per-shard client state: the encode
// scratch and the decode buffers the reply-parse hook fills. At most one
// call per (session, shard) is in flight, so no further locking is
// needed.
type sessionShard struct {
	out          []byte
	accepted     []int32
	burned       []int32
	loads        []int32
	sat          int
	pc           *pendingCall
	parseRoundFn func([]byte) error // bound once; avoids a per-round closure
}

func (ss *sessionShard) parseRound(payload []byte) error {
	r := reader{b: payload}
	ss.accepted = r.i32Slice(ss.accepted[:0])
	ss.burned = r.i32Slice(ss.burned[:0])
	ss.sat = int(r.u32())
	return r.done()
}

func parseEmpty(payload []byte) error {
	if len(payload) != 0 {
		return fmt.Errorf("wire: unexpected %d-byte payload in empty reply", len(payload))
	}
	return nil
}

// Reset re-initializes every shard for a new run. A call that fails on a
// dead connection (a killed/restarted server process) is retried once:
// the retry redials — with the Bank's bounded backoff — and replays the
// reset against the fresh process.
func (s *Session) Reset(initialLoads []int) error {
	if initialLoads != nil && len(initialLoads) != s.b.m {
		return fmt.Errorf("wire: reset with %d initial loads for %d servers", len(initialLoads), s.b.m)
	}
	for i, sc := range s.b.conns {
		ss := s.shards[i]
		ss.out = ss.out[:0]
		if initialLoads == nil {
			ss.out = append(ss.out, 0)
		} else {
			ss.out = append(ss.out, 1)
			ss.out = appendU32(ss.out, uint32(sc.hi-sc.lo))
			for _, l := range initialLoads[sc.lo:sc.hi] {
				if l < 0 {
					l = 0
				}
				ss.out = appendI32(ss.out, int32(l))
			}
		}
		if err := sc.call(s.id, msgReset, ss.out, msgResetOK, parseEmpty); err != nil {
			if err = sc.call(s.id, msgReset, ss.out, msgResetOK, parseEmpty); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecideRound splits the sorted batch across the shard windows, begins
// one pipelined call per touched shard (the writes overlap every shard's
// server-side decide), then gathers the replies in shard order — windows
// ascend, so the concatenated decision lists stay sorted. Shards that
// received nothing are skipped entirely — no frame, no state change,
// matching core.LocalBank.
func (s *Session) DecideRound(touched, counts []int32) (core.RoundDecision, error) {
	var dec core.RoundDecision
	if len(touched) != len(counts) {
		return dec, fmt.Errorf("wire: round batch with %d touched but %d counts", len(touched), len(counts))
	}
	start := time.Now()
	s.active = s.active[:0]
	from := 0
	for i, sc := range s.b.conns {
		to := from
		for to < len(touched) && touched[to] < sc.hi {
			to++
		}
		if to == from {
			continue
		}
		ss := s.shards[i]
		ss.out = appendI32Slice(ss.out[:0], touched[from:to])
		ss.out = appendI32Slice(ss.out, counts[from:to])
		ss.pc = sc.begin(s.id, msgRound, ss.out, msgRoundReply, ss.parseRoundFn)
		s.active = append(s.active, i)
		from = to
	}
	var firstErr error
	if from != len(touched) {
		firstErr = fmt.Errorf("wire: server %d outside every shard window", touched[from])
	}
	for _, i := range s.active {
		if err := s.b.conns[i].wait(s.shards[i].pc); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return dec, firstErr
	}
	for _, i := range s.active {
		ss := s.shards[i]
		dec.Accepted = append(dec.Accepted, ss.accepted...)
		dec.NewlyBurned = append(dec.NewlyBurned, ss.burned...)
		dec.Saturated += ss.sat
	}
	s.mu.Lock()
	s.roundLat = append(s.roundLat, time.Since(start))
	for _, c := range counts {
		s.requests += int64(c)
	}
	s.mu.Unlock()
	return dec, nil
}

// Loads gathers the shard load windows into the full per-server vector.
func (s *Session) Loads() ([]int32, error) {
	loads := make([]int32, 0, s.b.m)
	for i, sc := range s.b.conns {
		ss := s.shards[i]
		err := sc.call(s.id, msgLoads, nil, msgLoadsReply, func(payload []byte) error {
			r := reader{b: payload}
			ss.loads = r.i32Slice(ss.loads[:0])
			return r.done()
		})
		if err != nil {
			return nil, err
		}
		if len(ss.loads) != int(sc.hi-sc.lo) {
			return nil, fmt.Errorf("wire: shard [%d,%d) returned %d loads", sc.lo, sc.hi, len(ss.loads))
		}
		loads = append(loads, ss.loads...)
	}
	return loads, nil
}

// TakeMetrics returns and clears this session's recorded round latencies
// and request volume.
func (s *Session) TakeMetrics() ([]time.Duration, int64) {
	s.mu.Lock()
	lat, reqs := s.roundLat, s.requests
	s.roundLat, s.requests = nil, 0
	s.mu.Unlock()
	return lat, reqs
}

// Close satisfies core.ServerBank; the connections belong to the Bank,
// so a session close is a no-op.
func (s *Session) Close() error { return nil }
