package wire

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// The pipelined client connection. One shardConn carries every session's
// traffic to one shard server; up to Pipeline request frames ride the
// socket at once, and a persistent reader goroutine matches replies to
// callers. Two properties make the matching trivial:
//
//   - The server processes a connection's messages strictly in order and
//     replies before reading the next, so replies arrive in request
//     order: a FIFO of pending calls is the whole correlation state.
//
//   - Requests are registered on the FIFO *before* their bytes are
//     written (inside the write lock, so FIFO order is write order) —
//     a reply can race ahead of the writer's return for large spilled
//     payloads that the kernel forwards mid-write.
//
// The lock split matters: wmu serializes dialing and frame writes, pmu
// guards only the FIFO. The reader never takes wmu, so a writer blocked
// on TCP backpressure (a huge spilled batch against a full send buffer)
// cannot stop replies from draining — which is exactly what unblocks the
// server, and therefore the writer.

// pendingCall is one in-flight request: the reply type and session it
// expects, the parse hook that decodes the reply payload (run on the
// reader goroutine; the caller is still blocked on done, so the hook may
// write caller-owned buffers), and the completion channel. Every call is
// completed exactly once: by the reader popping it, by liveConn.fail
// flushing the FIFO, or by begin when it failed before registration.
type pendingCall struct {
	want    byte
	session uint32
	parse   func(payload []byte) error
	done    chan error

	// rtt, when non-nil, receives the call's round trip in wait; start is
	// stamped at the top of begin, so the observation includes pipeline
	// queueing, the write, the server's work and the read back.
	rtt   *telemetry.Histogram
	start time.Time
}

func newPendingCall(want byte, session uint32, parse func([]byte) error) *pendingCall {
	return &pendingCall{want: want, session: session, parse: parse, done: make(chan error, 1)}
}

// liveConn is one established connection epoch: the socket, its frame
// transport, and the FIFO of in-flight calls. A transport error marks
// the epoch dead and fails every pending call; the shardConn then
// replaces the epoch wholesale on the next ensure, so a reader of a dead
// epoch can never corrupt its successor's state.
type liveConn struct {
	conn net.Conn
	bw   *bufio.Writer
	fc   *frameConn

	pmu     sync.Mutex
	pending []*pendingCall
	dead    bool
	err     error
}

// fail marks the epoch dead with err (first error wins) and completes
// every pending call. Safe to call from the reader and a writer
// concurrently: each call is removed from the FIFO under pmu by exactly
// one goroutine.
func (lc *liveConn) fail(err error) {
	lc.pmu.Lock()
	if !lc.dead {
		lc.dead = true
		lc.err = err
	}
	err = lc.err
	pending := lc.pending
	lc.pending = nil
	lc.pmu.Unlock()
	lc.conn.Close()
	for _, pc := range pending {
		pc.done <- err
	}
}

func (lc *liveConn) isDead() bool {
	lc.pmu.Lock()
	defer lc.pmu.Unlock()
	return lc.dead
}

// readLoop is the epoch's reader goroutine: it reassembles reply
// messages, pops the FIFO head, and completes it. It owns the
// frameConn's read half for the epoch's lifetime and exits on the first
// transport or correlation error.
func (lc *liveConn) readLoop() {
	for {
		typ, sid, payload, err := lc.fc.readMessage()
		if err != nil {
			lc.fail(err)
			return
		}
		lc.pmu.Lock()
		var pc *pendingCall
		if len(lc.pending) > 0 {
			pc = lc.pending[0]
			lc.pending = lc.pending[1:]
		}
		lc.pmu.Unlock()
		if pc == nil {
			lc.fail(fmt.Errorf("wire: unsolicited reply type %d (session %d)", typ, sid))
			return
		}
		if typ != pc.want || sid != pc.session {
			err := fmt.Errorf("wire: expected reply (type %d, session %d), got (type %d, session %d)",
				pc.want, pc.session, typ, sid)
			pc.done <- err
			lc.fail(err)
			return
		}
		var perr error
		if pc.parse != nil {
			// The payload aliases the frameConn's read buffer; the hook
			// must copy what it keeps before this loop reads again. All
			// hooks decode into caller-owned buffers, so they do.
			perr = pc.parse(payload)
		}
		pc.done <- perr
	}
}

// shardConn is the client half of one shard's connection, shared by
// every session of the Bank. The slots channel is the pipeline-depth
// semaphore: at most cap(slots) calls are in flight at once, across all
// sessions.
type shardConn struct {
	bank   *Bank
	addr   string
	lo, hi int32

	slots chan struct{}

	// tel, when non-nil, is this shard's telemetry bundle (DialConfig
	// builds it from BankConfig.Telemetry before any dial).
	tel *shardTel

	wmu sync.Mutex // serializes dialing and frame writes; never taken by the reader
	lc  *liveConn
	// dialed records that at least one dial attempt happened (wmu held),
	// so later attempts count as redials.
	dialed bool
}

// ensureLocked (wmu held) makes sure a live epoch exists, dialing with
// bounded, jittered backoff on transient errors: a server killed and
// restarted by a failure wave takes a moment to come back, and the churn
// scenarios expect the client to ride that out rather than fail on the
// first refused connection. A semantic rejection (server error frame in
// the handshake) is permanent and fails immediately.
func (sc *shardConn) ensureLocked() error {
	if sc.lc != nil {
		if !sc.lc.isDead() {
			return nil
		}
		sc.lc.conn.Close()
		sc.lc = nil
	}
	cfg := &sc.bank.cfg
	var lastErr error
	for attempt := 0; attempt < cfg.RedialAttempts; attempt++ {
		if attempt > 0 {
			// Exponential base with full jitter: sleep in [base, 2·base).
			base := cfg.RedialBackoff << (attempt - 1)
			time.Sleep(base + time.Duration(rand.Int64N(int64(base))))
		}
		if sc.dialed && sc.tel != nil {
			sc.tel.redials.Inc(0)
		}
		sc.dialed = true
		lc, err := sc.dialOnce()
		if err == nil {
			sc.lc = lc
			return nil
		}
		lastErr = err
		var se *serverError
		if errors.As(err, &se) {
			break
		}
	}
	return fmt.Errorf("wire: shard [%d,%d) at %s: %w", sc.lo, sc.hi, sc.addr, lastErr)
}

// dialOnce dials the shard and handshakes every session of the Bank over
// the fresh connection (one Hello per session id, replies read back in
// order), then starts the epoch's reader goroutine.
func (sc *shardConn) dialOnce() (*liveConn, error) {
	conn, err := net.Dial("tcp", sc.addr)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(conn, 1<<16)
	fc := &frameConn{r: bufio.NewReaderSize(conn, 1<<16), w: bw, limit: sc.bank.cfg.FrameLimit}
	if sc.tel != nil {
		fc.tx, fc.rx, fc.spills = sc.tel.tx, sc.tel.rx, sc.tel.spills
	}
	b := sc.bank
	var hello []byte
	hello = appendU32(hello, helloMagic)
	hello = appendU32(hello, protoVersion)
	hello = append(hello, byte(b.variant))
	hello = appendI32(hello, b.capacity)
	hello = appendI32(hello, sc.lo)
	hello = appendI32(hello, sc.hi)
	for s := 0; s < b.cfg.Sessions; s++ {
		if err := fc.writeMessage(msgHello, uint32(s), hello); err != nil {
			conn.Close()
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	for s := 0; s < b.cfg.Sessions; s++ {
		sid, payload, err := fc.expectMessage(msgHelloOK)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if sid != uint32(s) || len(payload) != 0 {
			conn.Close()
			return nil, fmt.Errorf("wire: hello reply for session %d answering session %d", sid, s)
		}
	}
	lc := &liveConn{conn: conn, bw: bw, fc: fc}
	go lc.readLoop()
	return lc, nil
}

// begin starts one pipelined call: it acquires a pipeline slot, ensures
// a live epoch (redialing if the last one died), registers the call on
// the FIFO, and writes the request — spilled across continuation frames
// if oversized. All failures surface through wait; begin itself never
// returns an error, so a begin-all-then-wait-all caller needs no partial
// cleanup. The payload may be reused as soon as begin returns.
func (sc *shardConn) begin(session uint32, reqType byte, payload []byte, replyType byte, parse func([]byte) error) *pendingCall {
	pc := newPendingCall(replyType, session, parse)
	if sc.tel != nil {
		pc.rtt = sc.tel.rtt
		pc.start = time.Now()
	}
	sc.slots <- struct{}{}
	sc.wmu.Lock()
	if err := sc.ensureLocked(); err != nil {
		sc.wmu.Unlock()
		pc.done <- err
		return pc
	}
	lc := sc.lc
	lc.pmu.Lock()
	if lc.dead {
		err := lc.err
		lc.pmu.Unlock()
		sc.wmu.Unlock()
		pc.done <- err
		return pc
	}
	lc.pending = append(lc.pending, pc)
	lc.pmu.Unlock()
	err := lc.fc.writeMessage(reqType, session, payload)
	if err == nil {
		err = lc.bw.Flush()
	}
	sc.wmu.Unlock()
	if err != nil {
		// pc is on the FIFO; fail completes it (exactly once) along with
		// every other in-flight call of the dead epoch.
		lc.fail(err)
	}
	return pc
}

// wait blocks for the call's reply (or failure) and releases its
// pipeline slot.
func (sc *shardConn) wait(pc *pendingCall) error {
	err := <-pc.done
	if pc.rtt != nil && err == nil {
		pc.rtt.Observe(time.Since(pc.start))
	}
	<-sc.slots
	return err
}

// call is the synchronous round trip: begin one request, wait for its
// reply.
func (sc *shardConn) call(session uint32, reqType byte, payload []byte, replyType byte, parse func([]byte) error) error {
	return sc.wait(sc.begin(session, reqType, payload, replyType, parse))
}

// close tears the connection down; in-flight calls fail, future calls
// would redial.
func (sc *shardConn) close() {
	sc.wmu.Lock()
	if sc.lc != nil {
		sc.lc.conn.Close()
		sc.lc = nil
	}
	sc.wmu.Unlock()
}
