// Package workload generates client demand vectors — how many requests
// each client actually holds — for the experiments that go beyond the
// paper's uniform "every client has exactly d balls" setting.
//
// The paper itself treats the general case of *at most* d balls per client
// as a straightforward variant (Section 2.2); the related work it builds
// on also studies heavily-loaded and heterogeneous-demand regimes. The
// generators here produce those demand shapes:
//
//   - Uniform: every client holds exactly d requests (the paper's base
//     case).
//   - UniformRandom: every client holds an independent uniform number of
//     requests in [0, d].
//   - Zipf: demands follow a truncated Zipf distribution — a few hot
//     clients hold the maximum demand while most hold very little, the
//     classic skew of real request workloads.
//   - Bursty: a fraction of clients hold the maximum demand and the rest a
//     baseline demand, modeling tenant bursts.
//
// All generators return a demand vector compatible with
// core.Options.RequestCounts (entries in [0, maxD]) together with the
// total number of balls.
package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Demand is a per-client request-count vector.
type Demand struct {
	// Counts[v] is the number of balls client v must place.
	Counts []int
	// Total is the sum of Counts.
	Total int
	// MaxPerClient is the maximum admissible per-client demand (the d the
	// protocol must be configured with).
	MaxPerClient int
	// Name describes the generator that produced the vector.
	Name string
}

// Uniform returns the paper's base case: every client holds exactly d
// requests.
func Uniform(numClients, d int) (Demand, error) {
	if err := validate(numClients, d); err != nil {
		return Demand{}, err
	}
	counts := make([]int, numClients)
	for i := range counts {
		counts[i] = d
	}
	return Demand{Counts: counts, Total: numClients * d, MaxPerClient: d, Name: fmt.Sprintf("uniform-%d", d)}, nil
}

// UniformRandom returns independent uniform demands in [0, d].
func UniformRandom(numClients, d int, src *rng.Source) (Demand, error) {
	if err := validate(numClients, d); err != nil {
		return Demand{}, err
	}
	counts := make([]int, numClients)
	total := 0
	for i := range counts {
		counts[i] = src.Intn(d + 1)
		total += counts[i]
	}
	return Demand{Counts: counts, Total: total, MaxPerClient: d, Name: fmt.Sprintf("uniform-random-%d", d)}, nil
}

// Zipf returns demands proportional to a truncated Zipf law with exponent
// s over the ranks 1..numClients, scaled into [1, d]: the hottest client
// holds d requests, the coldest holds 1 (every client has at least one
// request so the assignment problem stays non-trivial for all of them).
// Client ranks are randomly permuted so that hot clients are spread over
// the id space.
func Zipf(numClients, d int, s float64, src *rng.Source) (Demand, error) {
	if err := validate(numClients, d); err != nil {
		return Demand{}, err
	}
	if s <= 0 {
		return Demand{}, fmt.Errorf("workload: Zipf exponent must be positive, got %v", s)
	}
	counts := make([]int, numClients)
	total := 0
	// weight(rank) = rank^-s, normalized so rank 1 maps to d and the
	// smallest weight maps to at least 1.
	minW := math.Pow(float64(numClients), -s)
	perm := src.Perm(numClients)
	for rank := 1; rank <= numClients; rank++ {
		w := math.Pow(float64(rank), -s)
		// Linear map [minW, 1] -> [1, d].
		scaled := 1 + (float64(d)-1)*(w-minW)/(1-minW)
		c := int(math.Round(scaled))
		if c < 1 {
			c = 1
		}
		if c > d {
			c = d
		}
		counts[perm[rank-1]] = c
		total += c
	}
	return Demand{Counts: counts, Total: total, MaxPerClient: d, Name: fmt.Sprintf("zipf-%.1f-max%d", s, d)}, nil
}

// Bursty gives a fraction hotFraction of clients the maximum demand d and
// everyone else baseline requests (baseline must be in [0, d]).
func Bursty(numClients, d, baseline int, hotFraction float64, src *rng.Source) (Demand, error) {
	if err := validate(numClients, d); err != nil {
		return Demand{}, err
	}
	if baseline < 0 || baseline > d {
		return Demand{}, fmt.Errorf("workload: baseline %d outside [0, %d]", baseline, d)
	}
	if hotFraction < 0 || hotFraction > 1 {
		return Demand{}, fmt.Errorf("workload: hot fraction %v outside [0,1]", hotFraction)
	}
	counts := make([]int, numClients)
	total := 0
	hot := int(math.Round(hotFraction * float64(numClients)))
	hotSet := src.Sample(numClients, hot)
	for i := range counts {
		counts[i] = baseline
	}
	for _, v := range hotSet {
		counts[v] = d
	}
	for _, c := range counts {
		total += c
	}
	return Demand{Counts: counts, Total: total, MaxPerClient: d, Name: fmt.Sprintf("bursty-%d%%-max%d", int(hotFraction*100), d)}, nil
}

// MeanDemand returns the average number of requests per client.
func (d Demand) MeanDemand() float64 {
	if len(d.Counts) == 0 {
		return 0
	}
	return float64(d.Total) / float64(len(d.Counts))
}

// Validate checks that the vector is usable with the given protocol d.
func (d Demand) Validate() error {
	if len(d.Counts) == 0 {
		return fmt.Errorf("workload: empty demand vector")
	}
	total := 0
	for v, c := range d.Counts {
		if c < 0 || c > d.MaxPerClient {
			return fmt.Errorf("workload: client %d demand %d outside [0, %d]", v, c, d.MaxPerClient)
		}
		total += c
	}
	if total != d.Total {
		return fmt.Errorf("workload: recorded total %d does not match counts (%d)", d.Total, total)
	}
	return nil
}

func validate(numClients, d int) error {
	if numClients <= 0 {
		return fmt.Errorf("workload: need a positive number of clients, got %d", numClients)
	}
	if d <= 0 {
		return fmt.Errorf("workload: need a positive maximum demand, got %d", d)
	}
	return nil
}
