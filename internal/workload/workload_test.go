package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestUniform(t *testing.T) {
	d, err := Uniform(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != 300 || d.MeanDemand() != 3 {
		t.Errorf("unexpected totals: %+v", d)
	}
	for _, c := range d.Counts {
		if c != 3 {
			t.Fatal("uniform demand not uniform")
		}
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := Uniform(0, 3); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Uniform(10, 0); err == nil {
		t.Error("zero demand accepted")
	}
}

func TestUniformRandom(t *testing.T) {
	d, err := UniformRandom(10000, 4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mean of Uniform{0..4} is 2.
	if math.Abs(d.MeanDemand()-2) > 0.1 {
		t.Errorf("mean demand %v, want about 2", d.MeanDemand())
	}
	for _, c := range d.Counts {
		if c < 0 || c > 4 {
			t.Fatal("demand outside range")
		}
	}
}

func TestZipf(t *testing.T) {
	d, err := Zipf(5000, 8, 1.1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every client holds at least one request; the maximum is reached.
	minC, maxC := 8, 0
	for _, c := range d.Counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if minC < 1 {
		t.Errorf("minimum demand %d, want >= 1", minC)
	}
	if maxC != 8 {
		t.Errorf("maximum demand %d, want 8", maxC)
	}
	// Skew: the mean must be far below the max (most clients are cold).
	if d.MeanDemand() > 3 {
		t.Errorf("mean demand %v, expected a skewed (low) mean", d.MeanDemand())
	}
	if _, err := Zipf(100, 4, 0, rng.New(1)); err == nil {
		t.Error("non-positive exponent accepted")
	}
}

func TestBursty(t *testing.T) {
	d, err := Bursty(1000, 6, 1, 0.1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	hot, cold := 0, 0
	for _, c := range d.Counts {
		switch c {
		case 6:
			hot++
		case 1:
			cold++
		default:
			t.Fatalf("unexpected demand %d", c)
		}
	}
	if hot != 100 {
		t.Errorf("hot clients %d, want 100", hot)
	}
	if cold != 900 {
		t.Errorf("cold clients %d, want 900", cold)
	}
	if _, err := Bursty(100, 4, 5, 0.1, rng.New(1)); err == nil {
		t.Error("baseline above d accepted")
	}
	if _, err := Bursty(100, 4, 1, 1.5, rng.New(1)); err == nil {
		t.Error("hot fraction above 1 accepted")
	}
}

func TestDemandValidateCatchesCorruption(t *testing.T) {
	d, err := Uniform(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Counts[3] = 7 // exceeds MaxPerClient
	if err := d.Validate(); err == nil {
		t.Error("corrupted demand vector validated")
	}
	d2, _ := Uniform(10, 2)
	d2.Total = 5 // inconsistent total
	if err := d2.Validate(); err == nil {
		t.Error("inconsistent total validated")
	}
	var empty Demand
	if err := empty.Validate(); err == nil {
		t.Error("empty demand validated")
	}
	if empty.MeanDemand() != 0 {
		t.Error("empty demand mean should be 0")
	}
}

// Property: every generator produces vectors valid for the protocol and
// consistent totals.
func TestQuickGeneratorsValid(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8, kind uint8) bool {
		n := 10 + int(nRaw%200)
		d := 1 + int(dRaw%8)
		src := rng.New(seed)
		var dem Demand
		var err error
		switch kind % 4 {
		case 0:
			dem, err = Uniform(n, d)
		case 1:
			dem, err = UniformRandom(n, d, src)
		case 2:
			dem, err = Zipf(n, d, 1.2, src)
		case 3:
			dem, err = Bursty(n, d, 0, 0.25, src)
		}
		if err != nil {
			return false
		}
		return dem.Validate() == nil && len(dem.Counts) == n && dem.MaxPerClient == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
