package spectral

import (
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestCompleteBipartiteHasZeroSigma2(t *testing.T) {
	// The normalized biadjacency matrix of K_{n,n} has rank 1, so σ₂ = 0.
	g, err := gen.Complete(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SecondSingularValue(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s > 0.02 {
		t.Errorf("sigma2 of complete bipartite graph = %v, want ≈ 0", s)
	}
}

func TestDisconnectedGraphHasSigma2One(t *testing.T) {
	// Two disjoint complete bipartite halves: the second singular value is
	// 1 (the indicator of one component is a second top singular vector).
	b := bipartite.NewBuilder(16, 16)
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			b.AddEdge(v, u)
		}
	}
	for v := 8; v < 16; v++ {
		for u := 8; u < 16; u++ {
			b.AddEdge(v, u)
		}
	}
	g, err := b.Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SecondSingularValue(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.99 {
		t.Errorf("sigma2 of disconnected graph = %v, want ≈ 1", s)
	}
}

func TestLongCycleHasSigma2NearOne(t *testing.T) {
	// A single long cycle (clients and servers alternating) is connected
	// but mixes very slowly: σ₂ = cos(2π/(2n)) ≈ 1.
	const n = 64
	b := bipartite.NewBuilder(n, n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, v)
		b.AddEdge(v, (v+1)%n)
	}
	g, err := b.Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SecondSingularValue(g, Options{Seed: 3, Iterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Cos(math.Pi / n)
	if math.Abs(s-want) > 0.05 {
		t.Errorf("sigma2 of the cycle = %v, want about %v", s, want)
	}
}

func TestRandomRegularIsNearRamanujan(t *testing.T) {
	// A random Δ-regular bipartite graph has σ₂ ≈ 2√(Δ−1)/Δ, far below 1.
	const n = 512
	const delta = 16
	g, err := gen.Regular(n, delta, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	s, err := SecondSingularValue(g, Options{Seed: 4, Iterations: 300})
	if err != nil {
		t.Fatal(err)
	}
	ramanujan := 2 * math.Sqrt(delta-1) / delta
	if s > 2*ramanujan {
		t.Errorf("sigma2 = %v, want below twice the Ramanujan bound %v", s, ramanujan)
	}
	if s <= 0 {
		t.Errorf("sigma2 = %v, want strictly positive for a sparse graph", s)
	}
}

func TestSpectralGap(t *testing.T) {
	g, err := gen.Regular(256, 16, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	s, err := SecondSingularValue(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gap, err := SpectralGap(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((1-s)-gap) > 1e-12 {
		t.Errorf("gap %v inconsistent with sigma2 %v", gap, s)
	}
}

func TestDegenerateInputs(t *testing.T) {
	g, err := bipartite.NewBuilder(1, 1).AddEdge(0, 0).Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SecondSingularValue(g, Options{}); err == nil {
		t.Error("single-client graph accepted")
	}
	empty, err := bipartite.NewBuilder(4, 4).Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SecondSingularValue(empty, Options{}); err == nil {
		t.Error("edgeless graph accepted")
	}
}

func TestAssignmentGraphOfSAERIsWellConnected(t *testing.T) {
	// The extension experiment in miniature: the subgraph of accepted
	// assignments produced by SAER on a dense-ish instance should mix much
	// better than a long cycle — i.e. have σ₂ bounded away from 1.
	g, err := gen.Regular(1024, 100, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(g, core.SAER, core.Params{D: 3, C: 4, Seed: 13}, core.Options{TrackAssignments: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	sub, err := res.AssignmentGraph()
	if err != nil {
		t.Fatal(err)
	}
	s, err := SecondSingularValue(sub, Options{Seed: 17, Iterations: 300})
	if err != nil {
		t.Fatal(err)
	}
	// The assignment graph is roughly 3-regular, so the best possible σ₂ is
	// around the Ramanujan value 2√2/3 ≈ 0.94; anything clearly below the
	// cycle-like regime (σ₂ → 1 as cos(π/n) ≈ 0.999) demonstrates
	// expansion.
	if s > 0.97 {
		t.Errorf("assignment graph sigma2 = %v; expected visible expansion (< 0.97)", s)
	}
}
