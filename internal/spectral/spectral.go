// Package spectral provides a small spectral toolbox for bipartite
// graphs: an estimator of the second singular value of the
// degree-normalized biadjacency matrix, obtained by deflated power
// iteration.
//
// The quantity matters to this reproduction because of the result the
// SAER paper builds on (Becchetti et al., SODA 2020, footnote 5): the
// subgraph formed by the accepted client→server assignments of a
// threshold protocol is a bounded-degree graph that, in the dense regime,
// is an expander w.h.p. A bipartite graph is a good expander exactly when
// the second singular value σ₂ of its normalized biadjacency matrix is
// bounded away from 1 (the first singular value is always 1); the
// "expander extraction" experiment (E13) measures σ₂ of the assignment
// graphs produced by SAER and RAES and compares them against natural
// non-expanding baselines.
package spectral

import (
	"errors"
	"math"

	"repro/internal/bipartite"
	"repro/internal/rng"
)

// ErrDegenerate is returned when the graph has no edges or a single
// client, in which case the second singular value is undefined.
var ErrDegenerate = errors.New("spectral: graph too small or empty")

// Options tunes the power iteration.
type Options struct {
	// Iterations is the number of power-iteration steps (default 200).
	Iterations int
	// Seed seeds the random starting vector.
	Seed uint64
}

// SecondSingularValue estimates σ₂ of P = D_C^{-1/2} · A · D_S^{-1/2},
// where A is the biadjacency matrix of g (with multiplicities) and D_C,
// D_S are the degree matrices of the two sides. The estimate is obtained
// by power iteration on the client-side operator M = P·Pᵀ with the known
// top eigenvector (proportional to √degree) deflated away, so the value
// returned is √λ₂(M) ∈ [0, 1] up to iteration error.
//
// σ₂ close to 0 means the graph mixes like a complete bipartite graph;
// σ₂ close to 1 means poor expansion (e.g. disconnected or cycle-like
// structure).
func SecondSingularValue(g *bipartite.Graph, opts Options) (float64, error) {
	n := g.NumClients()
	m := g.NumServers()
	if n < 2 || m < 1 || g.NumEdges() == 0 {
		return 0, ErrDegenerate
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 200
	}
	src := rng.New(opts.Seed)

	// Precompute inverse square roots of the degrees. Zero-degree servers
	// simply never contribute.
	invSqrtC := make([]float64, n)
	for v := 0; v < n; v++ {
		d := g.ClientDegree(v)
		if d > 0 {
			invSqrtC[v] = 1 / math.Sqrt(float64(d))
		}
	}
	invSqrtS := make([]float64, m)
	for u := 0; u < m; u++ {
		d := g.ServerDegree(u)
		if d > 0 {
			invSqrtS[u] = 1 / math.Sqrt(float64(d))
		}
	}

	// Top right-singular vector of P on the client side: φ_v ∝ √deg(v).
	phi := make([]float64, n)
	var phiNorm float64
	for v := 0; v < n; v++ {
		phi[v] = math.Sqrt(float64(g.ClientDegree(v)))
		phiNorm += phi[v] * phi[v]
	}
	phiNorm = math.Sqrt(phiNorm)
	for v := range phi {
		phi[v] /= phiNorm
	}

	// Random start vector, orthogonalized against φ.
	x := make([]float64, n)
	for v := range x {
		x[v] = src.Float64() - 0.5
	}
	deflate(x, phi)
	if norm(x) == 0 {
		// Degenerate random start (essentially impossible); fall back to a
		// deterministic perturbation.
		x[0] = 1
		deflate(x, phi)
	}
	normalize(x)

	y := make([]float64, m) // server-side scratch: Pᵀ·x
	z := make([]float64, n) // client-side scratch: P·y

	apply := func() {
		for u := range y {
			y[u] = 0
		}
		for v := 0; v < n; v++ {
			if x[v] == 0 {
				continue
			}
			w := x[v] * invSqrtC[v]
			for _, u := range g.ClientNeighbors(v) {
				y[u] += w * invSqrtS[u]
			}
		}
		for v := range z {
			z[v] = 0
		}
		for u := 0; u < m; u++ {
			if y[u] == 0 {
				continue
			}
			w := y[u] * invSqrtS[u]
			for _, v := range g.ServerNeighbors(u) {
				z[v] += w * invSqrtC[v]
			}
		}
		copy(x, z)
	}

	lambda := 0.0
	for it := 0; it < iters; it++ {
		apply()
		deflate(x, phi)
		l := norm(x)
		if l == 0 {
			// x collapsed into the top eigenspace: the deflated operator is
			// (numerically) zero, i.e. σ₂ ≈ 0.
			return 0, nil
		}
		lambda = l
		normalize(x)
	}
	// After normalizing before each application, ‖Mx‖ converges to λ₂(M) =
	// σ₂².
	sigma := math.Sqrt(lambda)
	if sigma > 1 {
		sigma = 1
	}
	return sigma, nil
}

// SpectralGap returns 1 − σ₂, the bipartite spectral gap.
func SpectralGap(g *bipartite.Graph, opts Options) (float64, error) {
	s, err := SecondSingularValue(g, opts)
	if err != nil {
		return 0, err
	}
	return 1 - s, nil
}

func deflate(x, phi []float64) {
	var dot float64
	for i := range x {
		dot += x[i] * phi[i]
	}
	for i := range x {
		x[i] -= dot * phi[i]
	}
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	l := norm(x)
	if l == 0 {
		return
	}
	for i := range x {
		x[i] /= l
	}
}
