package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincide %d/100 times", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("Reseed did not restart stream at step %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-style sanity check: 10 buckets, 100k samples; each bucket
	// should be within 5% of the expectation.
	r := New(99)
	const buckets = 10
	const samples = 100000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expect := float64(samples) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 0.05*expect {
			t.Errorf("bucket %d has %d samples, expected about %.0f", b, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 5, 31, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleInt32Preserves(t *testing.T) {
	r := New(8)
	p := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	sum := int32(0)
	for _, v := range p {
		sum += v
	}
	r.ShuffleInt32(p)
	var after int32
	for _, v := range p {
		after += v
	}
	if after != sum {
		t.Fatalf("ShuffleInt32 changed multiset: sum %d -> %d", sum, after)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(13)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 3}, {10, 10}, {1000, 5}, {1000, 900}} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) returned %d elements", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n {
				t.Fatalf("Sample(%d,%d) element %d out of range", tc.n, tc.k, v)
			}
			if seen[v] {
				t.Fatalf("Sample(%d,%d) returned duplicate %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(19)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) empirical rate %v", p)
	}
}

func TestBinomialBounds(t *testing.T) {
	r := New(23)
	for i := 0; i < 200; i++ {
		v := r.Binomial(20, 0.5)
		if v < 0 || v > 20 {
			t.Fatalf("Binomial(20,0.5) = %d out of range", v)
		}
	}
	if r.Binomial(10, 0) != 0 {
		t.Error("Binomial(n, 0) should be 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("Binomial(n, 1) should be n")
	}
	if r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial(0, p) should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.25)
	}
	mean := float64(sum) / n
	// Expected failures before first success = (1-p)/p = 3.
	if math.Abs(mean-3) > 0.15 {
		t.Errorf("Geometric(0.25) empirical mean %v, want about 3", mean)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide %d/100 times", same)
	}
}

func TestSplitNCount(t *testing.T) {
	parent := New(37)
	streams := parent.SplitN(16)
	if len(streams) != 16 {
		t.Fatalf("SplitN(16) returned %d streams", len(streams))
	}
	for i, s := range streams {
		if s == nil {
			t.Fatalf("stream %d is nil", i)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	mk := func() []uint64 {
		parent := New(41)
		streams := parent.SplitN(4)
		out := make([]uint64, 0, 12)
		for _, s := range streams {
			for i := 0; i < 3; i++ {
				out = append(out, s.Uint64())
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SplitN is not deterministic at position %d", i)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(43)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v, want about 1", variance)
	}
}

// Property: Intn never escapes its range, for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Perm always returns a permutation, for arbitrary seeds.
func TestQuickPermValid(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n % 64)
		p := New(seed).Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds produce identical streams even through splits.
func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a := New(seed)
		b := New(seed)
		as := a.Split()
		bs := b.Split()
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() || as.Uint64() != bs.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1 << 20)
	}
	_ = sink
}

func TestStreamSliceDeterministicAndDistinct(t *testing.T) {
	a := NewStreamSlice(42, 64)
	b := NewStreamSlice(42, 64)
	for i := range a {
		x, y := a[i].Uint64(), b[i].Uint64()
		if x != y {
			t.Fatalf("stream %d diverges for identical seeds: %x vs %x", i, x, y)
		}
	}
	// Distinct entities must produce distinct early output.
	c := NewStreamSlice(42, 64)
	seen := map[uint64]int{}
	for i := range c {
		v := c[i].Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d emit the same first value", j, i)
		}
		seen[v] = i
	}
	// Reseeding in place must reproduce the fresh slice exactly.
	ReseedStreamSlice(c, 42)
	d := NewStreamSlice(42, 64)
	for i := range c {
		if c[i].Uint64() != d[i].Uint64() {
			t.Fatalf("ReseedStreamSlice diverges from NewStreamSlice at %d", i)
		}
	}
}

func TestStreamIntnRangeAndUniformity(t *testing.T) {
	var s Stream
	streams := NewStreamSlice(7, 1)
	s = streams[0]
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := draws / n
	for v, got := range counts {
		if got < want*8/10 || got > want*12/10 {
			t.Errorf("value %d drawn %d times, want about %d", v, got, want)
		}
	}
}

func TestStreamIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Stream.Intn(0) did not panic")
		}
	}()
	var s Stream
	s.Intn(0)
}

func TestStreamAtMatchesReseedStreamSlice(t *testing.T) {
	const n = 257
	for _, seed := range []uint64{0, 1, 0xDEADBEEF} {
		streams := NewStreamSlice(seed, n)
		for i := 0; i < n; i++ {
			direct := StreamAt(seed, i)
			a, b := streams[i].Uint64(), direct.Uint64()
			if a != b {
				t.Fatalf("seed=%#x: StreamAt(%d) first draw %#x, slice stream draws %#x", seed, i, b, a)
			}
			if streams[i].Uint64() != direct.Uint64() {
				t.Fatalf("seed=%#x: StreamAt(%d) diverges on second draw", seed, i)
			}
		}
	}
}

func TestStreamFloat64Range(t *testing.T) {
	s := StreamAt(3, 0)
	sum := 0.0
	const draws = 20000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; mean < 0.48 || mean > 0.52 {
		t.Errorf("Float64 mean %.4f, want about 0.5", mean)
	}
}

// TestPoisson checks determinism and that chunked sampling tracks the
// target mean for small and large lambda.
func TestPoisson(t *testing.T) {
	if New(1).Poisson(0) != 0 || New(1).Poisson(-3) != 0 {
		t.Fatal("non-positive lambda must sample 0")
	}
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Poisson(12.5) != b.Poisson(12.5) {
			t.Fatal("Poisson is not deterministic in the seed")
		}
	}
	src := New(42)
	for _, lambda := range []float64{0.5, 4, 30, 200, 1500} {
		const trials = 4000
		sum := 0
		for i := 0; i < trials; i++ {
			sum += src.Poisson(lambda)
		}
		mean := float64(sum) / trials
		// Poisson std is sqrt(lambda); allow six standard errors.
		tol := 6 * math.Sqrt(lambda/trials)
		if math.Abs(mean-lambda) > tol {
			t.Errorf("lambda=%v: sample mean %v off by more than %v", lambda, mean, tol)
		}
	}
}
