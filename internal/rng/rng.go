// Package rng provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// Every stochastic component of the reproduction (graph generation, the
// SAER/RAES protocols, the baselines, the experiment harness) draws its
// randomness from this package rather than from math/rand so that:
//
//   - a run is fully determined by a single 64-bit seed,
//   - independent entities (clients, trials, workers) receive independent
//     streams that do not interact, which makes parallel execution
//     bit-for-bit reproducible regardless of scheduling, and
//   - the generators are allocation-free in the hot path.
//
// The core generator is xoshiro256**, seeded through SplitMix64 as
// recommended by its authors. Both are tiny, fast, and comfortably good
// enough for Monte-Carlo simulation (they are not cryptographic).
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand a single seed into the four xoshiro words and to
// derive independent per-stream seeds. It is exported for the keyed
// permutations and samplers of internal/gen, which derive their round
// keys from the same scrambler (previously a private copy flagged as
// duplicated); everything else should draw from Source or Stream.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** pseudo-random generator. The zero value is not
// usable; construct one with New or derive one with Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed. Distinct seeds yield streams that
// are, for simulation purposes, independent.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed reinitializes the source in place from seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	r.s0 = SplitMix64(&sm)
	r.s1 = SplitMix64(&sm)
	r.s2 = SplitMix64(&sm)
	r.s3 = SplitMix64(&sm)
	// xoshiro must not be seeded with the all-zero state. SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Split derives a new Source whose stream is independent of the receiver's
// future output. It consumes one value from the receiver. Splitting is the
// mechanism used to hand each client, trial and worker its own stream.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// SplitN derives n independent sources in one call.
func (r *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// NewStreams returns n independent value Sources derived from seed, laid
// out contiguously. It is the allocation-friendly form used to give every
// client of a simulation its own stream: the i-th stream depends only on
// (seed, i), never on how many workers consume the slice, which keeps
// parallel simulations deterministic.
func NewStreams(seed uint64, n int) []Source {
	out := make([]Source, n)
	sm := seed ^ 0xa0761d6478bd642f
	for i := range out {
		out[i].Reseed(SplitMix64(&sm))
	}
	return out
}

// Stream is a compact per-entity pseudo-random generator: a SplitMix64
// sequence whose 8-byte state is the whole generator. Simulations that
// keep one private stream per client use Stream instead of Source because
// initialization is a single multiply-free assignment (Source needs five
// SplitMix64 expansions to fill the xoshiro state) and a million streams
// occupy 8 MB instead of 32 MB — both matter when a Runner is reseeded
// once per Monte-Carlo trial. SplitMix64 is a bijective scramble of a
// 64-bit counter with full period 2⁶⁴; its statistical quality is ample
// for Monte-Carlo choice-drawing (it is the generator recommended to seed
// xoshiro itself).
type Stream struct {
	state uint64
}

// Uint64 returns the next 64 pseudo-random bits of the stream.
func (s *Stream) Uint64() uint64 {
	return SplitMix64(&s.state)
}

// Intn returns a uniform integer in [0, n) drawn from the stream. It
// panics if n <= 0.
//
// The body deliberately duplicates Source.Intn's Lemire multiply-shift
// rejection rather than sharing it through a function value or generic:
// this is the simulator's innermost loop and must stay inlinable against
// the concrete receiver. Any change to the rejection logic must be
// applied to both copies.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	un := uint64(n)
	v := s.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) drawn from the stream.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// StreamAt returns the i-th Stream of the family that
// ReseedStreamSlice(streams, seed) produces, computed in O(1): the
// SplitMix64 state advance is linear, so the i-th starting state is one
// scramble of seed ^ streamSeedSalt + i·golden. It is what lets implicit
// topologies regenerate client i's private stream on demand without
// storing (or sequentially deriving) the i-1 streams before it.
func StreamAt(seed uint64, i int) Stream {
	sm := (seed ^ streamSeedSalt) + uint64(i)*0x9e3779b97f4a7c15
	return Stream{state: SplitMix64(&sm)}
}

// streamSeedSalt decorrelates the stream family of a seed from the direct
// SplitMix64 sequence of the same seed.
const streamSeedSalt = 0xa0761d6478bd642f

// ReseedStreamSlice reinitializes n per-entity Streams in place from seed.
// The i-th stream depends only on (seed, i) — never on the worker count
// consuming the slice — which is what keeps parallel simulations
// deterministic. Distinct entities receive starting states one SplitMix64
// scramble apart, i.e. distant, well-mixed points of the full-period
// sequence.
func ReseedStreamSlice(streams []Stream, seed uint64) {
	sm := seed ^ streamSeedSalt
	for i := range streams {
		streams[i].state = SplitMix64(&sm)
	}
}

// NewStreamSlice allocates and seeds n per-entity Streams.
func NewStreamSlice(seed uint64, n int) []Stream {
	out := make([]Stream, n)
	ReseedStreamSlice(out, seed)
	return out
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method keeps the result unbiased
// without a modulo in the common case. Stream.Intn carries a copy of
// this body (see its comment for why); keep the two in sync.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes the elements of p uniformly at random in place
// (Fisher–Yates).
func (r *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleInt32 permutes the elements of p uniformly at random in place.
// Graph generators keep adjacency as int32 to halve memory traffic.
func (r *Source) ShuffleInt32(p []int32) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Sample returns k distinct integers drawn uniformly at random from [0, n)
// without replacement. It panics if k > n or k < 0.
// For small k relative to n it uses rejection from a set; otherwise it
// uses a partial Fisher–Yates over a fresh index slice.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample called with k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*4 <= n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			x := r.Intn(n)
			if _, dup := seen[x]; dup {
				continue
			}
			seen[x] = struct{}{}
			out = append(out, x)
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// Binomial returns a sample from Binomial(n, p) by direct simulation.
// It is intended for the moderate n used in tests and workload generation,
// not as a high-performance sampler.
func (r *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	count := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			count++
		}
	}
	return count
}

// Poisson returns a sample from Poisson(lambda). Knuth's product method
// is applied to chunks of at most 30 (e^-λ underflows for large λ, and
// Poisson variables are additive, so summing chunk samples is exact).
// It is intended for the arrival processes of the churn scenarios, where
// λ is the per-epoch arrival rate — at most a few thousand.
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	const chunk = 30
	count := 0
	for lambda > chunk {
		count += r.poissonKnuth(chunk)
		lambda -= chunk
	}
	return count + r.poissonKnuth(lambda)
}

// poissonKnuth samples Poisson(lambda) for lambda small enough that
// e^-lambda stays comfortably above the subnormal range.
func (r *Source) poissonKnuth(lambda float64) int {
	limit := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success (support {0, 1, 2, ...}). It panics if p <= 0 or p > 1.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	count := 0
	for !r.Bernoulli(p) {
		count++
	}
	return count
}

// NormFloat64 returns a standard normal sample using the polar
// (Marsaglia) method. Used only for workload jitter in examples.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}
