package telemetry

import "sync/atomic"

// A Snapshot is the JSON-portable freeze of a registry, emitted into
// the record stream (records.TypeTelemetry) so saer-aggregate can fold
// the telemetry of many processes. Field names are part of the records
// schema — extend, never rename.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// A HistogramSnapshot freezes one histogram. Counts are per-bucket
// (not cumulative); the last entry is the +Inf overflow bucket, so
// len(Counts) == len(BoundsNanos)+1.
type HistogramSnapshot struct {
	Count       int64   `json:"count"`
	SumNanos    int64   `json:"sum_nanos"`
	BoundsNanos []int64 `json:"bounds_nanos,omitempty"`
	Counts      []int64 `json:"counts,omitempty"`
}

// Snapshot freezes the registry's current values. Instruments still
// being bumped concurrently are read atomically per cell, so the
// snapshot is consistent per instrument but not across instruments —
// fine for progress reporting and post-run folding. A nil registry
// yields a nil snapshot.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Count:       atomic.LoadInt64(&h.count),
				SumNanos:    atomic.LoadInt64(&h.sum),
				BoundsNanos: h.bounds,
				Counts:      make([]int64, len(h.counts)),
			}
			for i := range h.counts {
				hs.Counts[i] = atomic.LoadInt64(&h.counts[i])
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Merge folds other into s: counters and gauges sum (a gauge like open
// sessions summed across processes is the fleet total), histograms sum
// bucket-wise when the bounds agree and fall back to count/sum-only
// when they don't (different build generations). Merging nil is a
// no-op.
func (s *Snapshot) Merge(other *Snapshot) {
	if s == nil || other == nil {
		return
	}
	for name, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]int64)
		}
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64)
		}
		s.Gauges[name] += v
	}
	for name, oh := range other.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnapshot)
		}
		sh, ok := s.Histograms[name]
		if !ok {
			// Deep-copy so later merges don't alias other's slices.
			sh = HistogramSnapshot{
				Count:       oh.Count,
				SumNanos:    oh.SumNanos,
				BoundsNanos: append([]int64(nil), oh.BoundsNanos...),
				Counts:      append([]int64(nil), oh.Counts...),
			}
			s.Histograms[name] = sh
			continue
		}
		sh.Count += oh.Count
		sh.SumNanos += oh.SumNanos
		if boundsEqual(sh.BoundsNanos, oh.BoundsNanos) && len(sh.Counts) == len(oh.Counts) {
			for i := range sh.Counts {
				sh.Counts[i] += oh.Counts[i]
			}
		} else {
			sh.BoundsNanos, sh.Counts = nil, nil
		}
		s.Histograms[name] = sh
	}
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
