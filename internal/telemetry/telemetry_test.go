package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments, got %v %v %v", c, g, h)
	}
	// All of these must be no-ops, not panics.
	c.Add(3, 5)
	c.Inc(0)
	g.Set(7)
	g.Add(-1)
	h.Observe(time.Millisecond)
	sp := StartSpan(h)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil registry render: %v", err)
	}
}

func TestCounterShardedSum(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value() = %d, want %d", got, workers*per)
	}
	// Same name returns the same instrument.
	if reg.Counter("test_total") != c {
		t.Fatal("Counter lookup must be get-or-create")
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("open")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	h.Observe(500 * time.Nanosecond) // below first bound (1µs) → bucket 0
	h.Observe(time.Microsecond)      // equal to first bound → bucket 0
	h.Observe(2 * time.Microsecond)  // → bucket 1 (4µs)
	h.Observe(time.Hour)             // beyond all bounds → +Inf bucket
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	want := 500*time.Nanosecond + time.Microsecond + 2*time.Microsecond + time.Hour
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	snap := reg.Snapshot().Histograms["lat"]
	if snap.Counts[0] != 2 || snap.Counts[1] != 1 || snap.Counts[len(snap.Counts)-1] != 1 {
		t.Fatalf("bucket counts = %v", snap.Counts)
	}
	if len(snap.Counts) != len(snap.BoundsNanos)+1 {
		t.Fatalf("len(Counts)=%d, len(Bounds)=%d", len(snap.Counts), len(snap.BoundsNanos))
	}
}

func TestSpan(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("phase")
	sp := StartSpan(h)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span did not observe; count = %d", h.Count())
	}
	// Inert span: no clock read, no observation.
	StartSpan(nil).End()
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`saer_rtt_bytes_total{shard="1"}`).Add(0, 10)
	reg.Counter(`saer_rtt_bytes_total{shard="0"}`).Add(0, 5)
	reg.Counter("saer_rounds_total").Add(0, 2)
	reg.Gauge("saer_open_sessions").Set(3)
	reg.Histogram(`saer_phase_seconds{phase="fold"}`).Observe(2 * time.Microsecond)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE saer_rtt_bytes_total counter\n",
		`saer_rtt_bytes_total{shard="0"} 5` + "\n",
		`saer_rtt_bytes_total{shard="1"} 10` + "\n",
		"# TYPE saer_rounds_total counter\nsaer_rounds_total 2\n",
		"# TYPE saer_open_sessions gauge\nsaer_open_sessions 3\n",
		"# TYPE saer_phase_seconds histogram\n",
		`saer_phase_seconds_bucket{phase="fold",le="1e-06"} 0` + "\n",
		`saer_phase_seconds_bucket{phase="fold",le="4e-06"} 1` + "\n",
		`saer_phase_seconds_bucket{phase="fold",le="+Inf"} 1` + "\n",
		`saer_phase_seconds_sum{phase="fold"} 2e-06` + "\n",
		`saer_phase_seconds_count{phase="fold"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q\n---\n%s", want, out)
		}
	}
	// One # TYPE line per family even with two labeled series.
	if n := strings.Count(out, "# TYPE saer_rtt_bytes_total"); n != 1 {
		t.Errorf("family type line emitted %d times, want 1", n)
	}
	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("rendering is not deterministic")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(0, 1)
	a.Gauge("g").Set(2)
	a.Histogram("h").Observe(time.Millisecond)
	b := NewRegistry()
	b.Counter("c").Add(0, 10)
	b.Counter("only_b").Add(0, 7)
	b.Gauge("g").Set(3)
	b.Histogram("h").Observe(time.Second)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["c"] != 11 || s.Counters["only_b"] != 7 {
		t.Fatalf("merged counters = %v", s.Counters)
	}
	if s.Gauges["g"] != 5 {
		t.Fatalf("merged gauge = %d, want 5", s.Gauges["g"])
	}
	h := s.Histograms["h"]
	if h.Count != 2 || h.SumNanos != int64(time.Millisecond+time.Second) {
		t.Fatalf("merged histogram = %+v", h)
	}
	var total int64
	for _, n := range h.Counts {
		total += n
	}
	if total != 2 {
		t.Fatalf("merged bucket total = %d, want 2", total)
	}
	// Merging nil in either direction is a no-op, not a panic.
	s.Merge(nil)
	(*Snapshot)(nil).Merge(s)
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("saer_rounds_total").Add(0, 42)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "saer_rounds_total 42") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}

	// pprof is mounted (cmdline is the cheapest endpoint to probe).
	resp, err = http.Get("http://" + d.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}

func TestReporter(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("trials")
	var buf bytes.Buffer
	r := NewReporter(&buf, "E1 n=1024", c, 10, 10*time.Millisecond)
	for i := 0; i < 10; i++ {
		c.Inc(0)
	}
	time.Sleep(30 * time.Millisecond)
	r.Stop()
	out := buf.String()
	if !strings.Contains(out, "E1 n=1024: 10/10 trials") {
		t.Fatalf("reporter output missing final line:\n%s", out)
	}
	if !strings.Contains(out, "ETA 0s") {
		t.Fatalf("finished point should report ETA 0s:\n%s", out)
	}
	// Inert reporters don't panic.
	NewReporter(nil, "x", c, 1, time.Second).Stop()
	NewReporter(&buf, "x", nil, 1, time.Second).Stop()
}

func TestReporterUnknownTotal(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("trials")
	c.Add(0, 3)
	var buf bytes.Buffer
	r := NewReporter(&buf, "soak", c, 0, time.Hour)
	c.Add(0, 2)
	r.Stop()
	if want := "soak: 2 trials"; !strings.Contains(buf.String(), want) {
		t.Fatalf("output %q missing %q (reporter must baseline at start)", buf.String(), want)
	}
}

func TestSplitName(t *testing.T) {
	for _, tc := range []struct{ in, fam, labels string }{
		{"plain", "plain", ""},
		{`x{a="1"}`, "x", `a="1"`},
		{`x{a="1",b="2"}`, "x", `a="1",b="2"`},
	} {
		fam, labels := splitName(tc.in)
		if fam != tc.fam || labels != tc.labels {
			t.Errorf("splitName(%q) = (%q, %q), want (%q, %q)", tc.in, fam, labels, tc.fam, tc.labels)
		}
	}
	if got := fmt.Sprintf("%s", joinLabels("", `le="1"`)); got != `{le="1"}` {
		t.Errorf("joinLabels empty = %q", got)
	}
}
