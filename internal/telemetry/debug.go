package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// A DebugServer serves /metrics (Prometheus text format) and the stock
// net/http/pprof endpoints for one registry. It exists so saer-server
// and saer-client can expose live internals behind -debug-addr without
// polluting http.DefaultServeMux or taking a dependency on a metrics
// stack.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug binds addr (e.g. "127.0.0.1:0") and serves /metrics plus
// /debug/pprof/* on it in a background goroutine until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; nothing to do but drop the connection.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{
		ln: ln,
		// No write timeout: pprof profile/trace streams for the
		// caller-chosen ?seconds= duration.
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go d.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return d, nil
}

// Addr returns the bound address (resolves ":0" to the real port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (d *DebugServer) Close() error { return d.srv.Close() }
