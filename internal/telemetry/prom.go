package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// splitName separates an instrument name into its family (the metric
// name proper) and the embedded label set, e.g.
// `saer_wire_rtt_seconds{shard="3"}` → ("saer_wire_rtt_seconds",
// `shard="3"`). Names without a '{' have an empty label set.
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels renders a label set with an extra label appended (used for
// the histogram `le` label).
func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format, deterministically ordered (families sorted, one
// # TYPE line per family). Durations are rendered in seconds per the
// Prometheus base-unit convention. A nil registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)

	writeFamily := func(names []string, typ string, line func(name string)) {
		seen := make(map[string]bool)
		for _, name := range names {
			fam, _ := splitName(name)
			if !seen[fam] {
				seen[fam] = true
				fmt.Fprintf(bw, "# TYPE %s %s\n", fam, typ)
			}
			line(name)
		}
	}

	// Group counters and gauges so all names of one family sit under its
	// single # TYPE line even when sorting interleaves families.
	counterNames := sortedNames(r.counters)
	sortByFamily(counterNames)
	writeFamily(counterNames, "counter", func(name string) {
		fmt.Fprintf(bw, "%s %d\n", name, r.counters[name].Value())
	})

	gaugeNames := sortedNames(r.gauges)
	sortByFamily(gaugeNames)
	writeFamily(gaugeNames, "gauge", func(name string) {
		fmt.Fprintf(bw, "%s %d\n", name, r.gauges[name].Value())
	})

	histNames := sortedNames(r.hists)
	sortByFamily(histNames)
	writeFamily(histNames, "histogram", func(name string) {
		h := r.hists[name]
		fam, labels := splitName(name)
		var cum int64
		for i, bound := range h.bounds {
			cum += atomic.LoadInt64(&h.counts[i])
			le := strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)
			fmt.Fprintf(bw, "%s_bucket%s %d\n", fam, joinLabels(labels, `le="`+le+`"`), cum)
		}
		cum += atomic.LoadInt64(&h.counts[len(h.bounds)])
		fmt.Fprintf(bw, "%s_bucket%s %d\n", fam, joinLabels(labels, `le="+Inf"`), cum)
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(bw, "%s_sum%s %g\n", fam, suffix, float64(atomic.LoadInt64(&h.sum))/1e9)
		fmt.Fprintf(bw, "%s_count%s %d\n", fam, suffix, atomic.LoadInt64(&h.count))
	})

	return bw.Flush()
}

// sortByFamily re-sorts names so that all members of a family are
// adjacent (family first, then the full name as tie-break); plain
// lexicographic order would split a family when an unlabeled name of
// another family sorts between its labeled variants.
func sortByFamily(names []string) {
	sort.Slice(names, func(i, j int) bool {
		fi, _ := splitName(names[i])
		fj, _ := splitName(names[j])
		if fi != fj {
			return fi < fj
		}
		return names[i] < names[j]
	})
}
