// Package telemetry is the live-introspection layer of the
// reproduction: a process-wide, allocation-free registry of counters,
// gauges and fixed-bucket histograms, plus lightweight phase spans.
//
// It sits between the two existing observability layers (see
// DESIGN.md § Observability):
//
//   - internal/trace exports a finished core.Result post hoc (CSV/JSON
//     for plotting tools);
//   - internal/records streams one JSON object per trial/round/row as
//     the run produces them;
//   - telemetry (this package) answers "what is the process doing right
//     now" — counters the hot layers bump in place, scraped live over
//     HTTP (/metrics) or folded into the record stream as a Snapshot.
//
// Design constraints, in order:
//
//  1. Observation must never change results. No instrument consumes
//     randomness or alters scheduling; the equivalence suites pin
//     bit-for-bit identical output with telemetry on or off.
//  2. The disabled path is free. Every instrument method is
//     nil-receiver-safe and a nil *Registry hands out nil instruments,
//     so un-instrumented runs pay one pointer test per call site and
//     StartSpan(nil) never reads the clock.
//  3. The enabled path is allocation-free and shard-friendly. Counters
//     spread across cache-line-padded atomic cells indexed by a caller
//     hint (the worker index), so parallel phases don't serialize on a
//     shared line.
//
// Instrument names may embed Prometheus label syntax directly, e.g.
// `saer_wire_rtt_seconds{shard="3"}`; the renderer groups metrics into
// families by the name before the '{' and emits one # TYPE line per
// family. Names must be stable across processes so Snapshot folding in
// saer-aggregate lines up.
package telemetry

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// cellStride spaces counter cells one 64-byte cache line apart
// (8 × int64) so concurrent workers hitting adjacent cells don't
// false-share.
const cellStride = 8

// maxCounterShards caps the per-counter cell count; beyond this the
// memory cost outweighs the contention win.
const maxCounterShards = 64

// A Counter is a monotonically increasing sum spread over
// cache-line-padded atomic cells. All methods are safe on a nil
// receiver (they no-op / return zero), which is the disabled path.
type Counter struct {
	cells []int64
	mask  int
}

// Add adds delta to the counter. hint selects the cell (typically the
// worker index); any int works — it is masked to the cell count.
func (c *Counter) Add(hint int, delta int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.cells[(hint&c.mask)*cellStride], delta)
}

// Inc adds one.
func (c *Counter) Inc(hint int) { c.Add(hint, 1) }

// Value returns the sum over all cells.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := 0; i < len(c.cells); i += cellStride {
		total += atomic.LoadInt64(&c.cells[i])
	}
	return total
}

// A Gauge is a single settable value (e.g. open sessions). Safe on a
// nil receiver.
type Gauge struct {
	v int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	atomic.StoreInt64(&g.v, v)
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	atomic.AddInt64(&g.v, delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}

// defaultBounds are the fixed histogram bucket upper bounds in
// nanoseconds: 1 µs × powers of 4 up to ~4.4 s, plus the implicit +Inf
// bucket. Twelve buckets cover everything from a sub-millisecond
// in-process phase to a multi-second wide-area round trip at a
// resolution good enough for p50/p99 reads off /metrics.
var defaultBounds = func() []int64 {
	b := make([]int64, 12)
	v := int64(1000)
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}()

// A Histogram counts duration observations into fixed exponential
// buckets. Observations are atomic; the count/sum/bucket triple is not
// read as one consistent snapshot (scrapes may see a bucket increment
// before the matching sum update), which Prometheus tolerates by
// design. Safe on a nil receiver.
type Histogram struct {
	bounds []int64 // upper bounds, ns, ascending
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	count  int64
	sum    int64 // ns
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.count)
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&h.sum))
}

// A Span times one phase into a histogram. The zero Span (and any span
// started against a nil histogram) is inert: StartSpan(nil) does not
// read the clock and End on it does nothing, so the disabled path costs
// exactly one nil test.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan starts timing into h. A nil h yields an inert span.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End records the elapsed time since StartSpan.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.t0))
}

// A Registry owns a process's instruments. Instrument lookups are
// get-or-create and keyed by the full name (labels included), so two
// components asking for the same name share one instrument — that is
// how per-session wire drivers fold into one set of phase histograms.
//
// A nil *Registry is the disabled state: its lookup methods return nil
// instruments whose methods all no-op.
type Registry struct {
	mu       sync.Mutex
	shards   int
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry whose counters are sharded for
// the current GOMAXPROCS.
func NewRegistry() *Registry {
	shards := 1
	for shards < runtime.GOMAXPROCS(0) && shards < maxCounterShards {
		shards <<= 1
	}
	return &Registry{
		shards:   shards,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{cells: make([]int64, r.shards*cellStride), mask: r.shards - 1}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram (default duration buckets),
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: defaultBounds, counts: make([]int64, len(defaultBounds)+1)}
		r.hists[name] = h
	}
	return h
}

// sortedNames returns the keys of each instrument map in sorted order
// so every rendering and snapshot is deterministic.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
