package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// A Reporter prints periodic rate/ETA lines for one monotone counter —
// the live face of `saer-experiments -progress`. It reads the same
// counter the sweep engine bumps, so the printed rate is the measured
// trial-completion rate, not an estimate layered on top.
type Reporter struct {
	w        io.Writer
	label    string
	c        *Counter
	base     int64 // counter value when the reporter started
	total    int64 // work items expected this point (0 = unknown)
	start    time.Time
	interval time.Duration

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewReporter starts printing "<label>: done/total (rate, ETA)" lines
// to w every interval until Stop. total is the number of items the
// counter is expected to advance by; 0 suppresses the ETA. A nil
// counter or nil writer yields an inert reporter.
func NewReporter(w io.Writer, label string, c *Counter, total int64, interval time.Duration) *Reporter {
	r := &Reporter{
		w: w, label: label, c: c, total: total,
		start: time.Now(), interval: interval,
		stop: make(chan struct{}),
	}
	if w == nil || c == nil {
		return r
	}
	r.base = c.Value()
	r.wg.Add(1)
	go r.loop()
	return r
}

func (r *Reporter) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	var last int64 = -1
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			done := r.c.Value() - r.base
			if done == last {
				continue // nothing moved; don't spam identical lines
			}
			last = done
			r.print(done)
		}
	}
}

func (r *Reporter) print(done int64) {
	elapsed := time.Since(r.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	if r.total > 0 {
		eta := "?"
		if rate > 0 && done < r.total {
			eta = (time.Duration(float64(r.total-done)/rate*1e9) * time.Nanosecond).Round(time.Second).String()
		} else if done >= r.total {
			eta = "0s"
		}
		fmt.Fprintf(r.w, "%s: %d/%d trials (%.1f/s, ETA %s)\n", r.label, done, r.total, rate, eta)
		return
	}
	fmt.Fprintf(r.w, "%s: %d trials (%.1f/s)\n", r.label, done, rate)
}

// Stop halts the ticker and prints one final line with the closing
// numbers (so short points that never crossed a tick still report).
func (r *Reporter) Stop() {
	if r.w == nil || r.c == nil {
		return
	}
	close(r.stop)
	r.wg.Wait()
	r.print(r.c.Value() - r.base)
}
