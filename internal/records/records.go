// Package records owns the machine-readable JSON record schema shared by
// every producer and consumer of structured results: the sweep engine's
// -json stream (internal/sweep), the wire-mode aggregator
// (cmd/saer-aggregate), the benchmark tooling (cmd/benchjson) and future
// plotting consumers. One record is one JSON object on one line; a stream
// is a sequence of such lines.
//
// The schema is versioned: SchemaVersion names the current revision, and
// a stream may open with a "schema" record announcing it. The sweep
// engine's stream predates the version record and deliberately does not
// emit it — its byte format is pinned by golden-file tests — so decoders
// treat a missing schema record as SchemaV1. The schema evolves by adding
// optional (omitempty) fields, never by renaming or re-typing existing
// ones; that rule is what keeps old goldens and new consumers compatible
// in both directions.
package records

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// SchemaVersion identifies the current record-schema revision. Revision 1
// covers the table/trial/round/row/note records emitted since PR 3 plus
// the schema and shard records introduced with the wire service mode;
// because every addition is optional, revision 1 decoders read PR 3
// streams unchanged.
const SchemaVersion = "saer-records/1"

// Known record types.
const (
	// TypeSchema announces the stream's schema revision (Schema field).
	// Streams without it are SchemaV1 by definition.
	TypeSchema = "schema"
	// TypeTable is a table header: experiment identity, title, columns.
	TypeTable = "table"
	// TypeTrial is one protocol trial's outcome.
	TypeTrial = "trial"
	// TypeRound is one entry of a tracked trial's per-round series.
	TypeRound = "round"
	// TypeRow is one rendered table row.
	TypeRow = "row"
	// TypeNote is one free-form table note.
	TypeNote = "note"
	// TypeShard is a wire-mode per-server-shard summary: the aggregator
	// emits one per shard report before the folded trial record.
	TypeShard = "shard"
	// TypeTelemetry is one process's telemetry snapshot (counters, gauges
	// and histograms from internal/telemetry): the wire client emits one
	// at the end of a run, and the aggregator folds snapshots from many
	// processes by summing matching series.
	TypeTelemetry = "telemetry"
)

// Record is one line of the machine-readable output stream: the sweep
// engine emits a "table" header when a spec starts, one "trial" record
// per protocol trial (in trial order, after the point's trials complete),
// one "round" record per entry of a tracked trial's per-round series
// (after the trial's record; scenario experiments additionally tag each
// record with the epoch it belongs to), one "row" record per rendered
// table row, and one "note" record per table note. The wire aggregator
// emits a "schema" record, one "shard" record per server-shard report,
// and the folded "trial"/"round" records. The schema is pinned by the
// golden-file tests in internal/experiments; extend it by adding fields,
// never by renaming.
type Record struct {
	Type       string `json:"type"`
	Experiment string `json:"experiment,omitempty"`

	// Table header fields.
	Title   string   `json:"title,omitempty"`
	Columns []string `json:"columns,omitempty"`

	// Point identity (trial and row records).
	Point string `json:"point,omitempty"`

	// Trial fields (from core.Result). Seed is a decimal string: the full
	// 64-bit seeds routinely exceed 2⁵³, which an IEEE-double JSON
	// consumer (JavaScript, float-coercing loaders) would silently round,
	// breaking "replay this trial from its record".
	Trial           *int     `json:"trial,omitempty"`
	Seed            string   `json:"seed,omitempty"`
	Completed       *bool    `json:"completed,omitempty"`
	Rounds          *int     `json:"rounds,omitempty"`
	Work            *int64   `json:"work,omitempty"`
	WorkPerBall     *float64 `json:"work_per_ball,omitempty"`
	MaxLoad         *int     `json:"max_load,omitempty"`
	BurnedServers   *int     `json:"burned_servers,omitempty"`
	UnassignedBalls *int     `json:"unassigned_balls,omitempty"`

	// Round-series fields (type "round"): one record per protocol round
	// of a tracked trial (core.RoundStats). Epoch tags the scenario
	// epoch the round belongs to for the dynamic experiments
	// (E12/E15–E17); plain tracked trials omit it. The neighborhood
	// statistics (S_t, r_t, K_t) are present only when the run tracked
	// neighborhoods.
	Epoch            *int     `json:"epoch,omitempty"`
	Round            *int     `json:"round,omitempty"`
	AliveBalls       *int     `json:"alive_balls,omitempty"`
	RequestsSent     *int     `json:"requests_sent,omitempty"`
	RequestsAccepted *int     `json:"requests_accepted,omitempty"`
	NewlyBurned      *int     `json:"newly_burned,omitempty"`
	BurnedTotal      *int     `json:"burned_total,omitempty"`
	Saturated        *int     `json:"saturated,omitempty"`
	MaxNbrBurnedFrac *float64 `json:"max_nbr_burned_frac,omitempty"`
	MaxNbrReceived   *int     `json:"max_nbr_received,omitempty"`
	MaxKt            *float64 `json:"max_kt,omitempty"`

	// Row and note payloads.
	Cells []string `json:"cells,omitempty"`
	Note  string   `json:"note,omitempty"`

	// Schema announcement (type "schema").
	Schema string `json:"schema,omitempty"`

	// Wire-mode shard summary (type "shard"): the server index range
	// [ServerLo, ServerHi) the shard owned and its folded outcome. The
	// shard's MaxLoad/BurnedServers reuse the trial fields above.
	Shard    *int `json:"shard,omitempty"`
	ServerLo *int `json:"server_lo,omitempty"`
	ServerHi *int `json:"server_hi,omitempty"`

	// Telemetry snapshot (type "telemetry"): one process's registry
	// contents. Source names the emitting process (e.g. "client").
	Source    string              `json:"source,omitempty"`
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// Recorder streams Records as JSON lines to a writer. All emitters are
// nil-receiver safe (a nil Recorder swallows every record), which lets
// producers thread an optional stream without guarding each call. The
// sweep engine drives it from a single goroutine (trial records are
// emitted after a point's trials complete, in trial order, so the stream
// is deterministic regardless of trial parallelism).
type Recorder struct {
	enc *json.Encoder
	err error
}

// NewRecorder returns a Recorder writing one JSON object per line to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{enc: json.NewEncoder(w)}
}

// Err returns the first write error the recorder encountered, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	return r.err
}

// Emit writes one record to the stream.
func (r *Recorder) Emit(rec Record) {
	if r == nil || r.err != nil {
		return
	}
	if err := r.enc.Encode(rec); err != nil {
		r.err = fmt.Errorf("records: writing record: %w", err)
	}
}

// SchemaHeader announces the stream's schema revision. New streams (the
// wire aggregator) open with it; the sweep engine's stream predates the
// record and stays without it for golden-file stability.
func (r *Recorder) SchemaHeader() {
	r.Emit(Record{Type: TypeSchema, Schema: SchemaVersion})
}

// TableHeader announces a table's identity and columns.
func (r *Recorder) TableHeader(experiment, title string, columns []string) {
	r.Emit(Record{Type: TypeTable, Experiment: experiment, Title: title, Columns: columns})
}

// Trial records one protocol trial's outcome.
func (r *Recorder) Trial(experiment, point string, trial int, seed uint64, res *core.Result) {
	if r == nil || res == nil {
		return
	}
	wpb := res.WorkPerBall()
	r.Emit(Record{
		Type:            TypeTrial,
		Experiment:      experiment,
		Point:           point,
		Trial:           &trial,
		Seed:            strconv.FormatUint(seed, 10),
		Completed:       &res.Completed,
		Rounds:          &res.Rounds,
		Work:            &res.Work,
		WorkPerBall:     &wpb,
		MaxLoad:         &res.MaxLoad,
		BurnedServers:   &res.BurnedServers,
		UnassignedBalls: &res.UnassignedBalls,
	})
}

// RoundSeries streams one "round" record per entry of a trial's
// per-round series, so a -json consumer can reconstruct every tracked
// trial's S_t/alive-ball trajectory without rerunning. epoch < 0 omits
// the epoch field — the sweep engine uses that form automatically for
// every protocol trial whose Result carries a PerRound series; scenario
// experiments (E12, E15–E17) call it from their Render, which runs
// sequentially in point order, so the stream stays deterministic for
// every trial parallelism. The neighborhood fields are emitted only when
// the series actually tracked neighborhoods (K_t is positive from the
// first round whenever requests flow, so an all-zero K_t series means
// tracking was off).
func (r *Recorder) RoundSeries(experiment, point string, trial, epoch int, rounds []core.RoundStats) {
	if r == nil {
		return
	}
	tracked := false
	for i := range rounds {
		if rounds[i].MaxKt != 0 || rounds[i].MaxNeighborhoodBurnedFrac != 0 || rounds[i].MaxNeighborhoodReceived != 0 {
			tracked = true
			break
		}
	}
	for i := range rounds {
		rs := rounds[i]
		tr := trial
		rec := Record{
			Type:             TypeRound,
			Experiment:       experiment,
			Point:            point,
			Trial:            &tr,
			Round:            &rs.Round,
			AliveBalls:       &rs.AliveBalls,
			RequestsSent:     &rs.RequestsSent,
			RequestsAccepted: &rs.RequestsAccepted,
			NewlyBurned:      &rs.NewlyBurned,
			BurnedTotal:      &rs.BurnedTotal,
			Saturated:        &rs.SaturatedThisRound,
		}
		if epoch >= 0 {
			ep := epoch
			rec.Epoch = &ep
		}
		if tracked {
			rec.MaxNbrBurnedFrac = &rs.MaxNeighborhoodBurnedFrac
			rec.MaxNbrReceived = &rs.MaxNeighborhoodReceived
			rec.MaxKt = &rs.MaxKt
		}
		r.Emit(rec)
	}
}

// Telemetry records one process's telemetry snapshot. Nil snapshots
// (a nil registry's Snapshot) are swallowed: an un-instrumented run
// emits no telemetry record rather than an empty one.
func (r *Recorder) Telemetry(experiment, source string, snap *telemetry.Snapshot) {
	if r == nil || snap == nil {
		return
	}
	r.Emit(Record{Type: TypeTelemetry, Experiment: experiment, Source: source, Telemetry: snap})
}

// Row records one rendered table row for a point.
func (r *Recorder) Row(experiment, point string, cells []string) {
	r.Emit(Record{Type: TypeRow, Experiment: experiment, Point: point, Cells: cells})
}

// Note records one free-form table note.
func (r *Recorder) Note(experiment, note string) {
	r.Emit(Record{Type: TypeNote, Experiment: experiment, Note: note})
}
