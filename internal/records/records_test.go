package records

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// trackedResult builds a small result with a per-round series, the shape
// the encoder sees from real runs.
func trackedResult() *core.Result {
	return &core.Result{
		Variant:       core.SAER,
		Params:        core.Params{D: 2, C: 4, Seed: 7},
		NumClients:    8,
		NumServers:    8,
		Completed:     true,
		Rounds:        2,
		TotalRequests: 20,
		Work:          40,
		MaxLoad:       5,
		MinLoad:       1,
		MeanLoad:      2,
		TotalBalls:    16,
		PerRound: []core.RoundStats{
			{Round: 1, AliveBalls: 16, RequestsSent: 16, RequestsAccepted: 12, NewlyBurned: 1, BurnedTotal: 1, SaturatedThisRound: 1},
			{Round: 2, AliveBalls: 4, RequestsSent: 4, RequestsAccepted: 4},
		},
	}
}

// TestRoundTrip pins the encoder/decoder pair: a stream written through
// the Recorder decodes to the exact records that were emitted.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.SchemaHeader()
	r.TableHeader("E1", "completion", []string{"n", "rounds"})
	res := trackedResult()
	r.Trial("E1", "n=8", 0, 1234567890123456789, res)
	r.RoundSeries("E1", "n=8", 0, -1, res.PerRound)
	r.RoundSeries("E12", "batch", 1, 3, res.PerRound)
	r.Row("E1", "n=8", []string{"8", "2"})
	r.Note("E1", "fit R²=0.95")
	if err := r.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decoding: %v", err)
	}
	// schema + table + trial + 2 rounds + 2 epoch rounds + row + note
	if len(got) != 9 {
		t.Fatalf("decoded %d records, want 9", len(got))
	}
	if got[0].Type != TypeSchema || got[0].Schema != SchemaVersion {
		t.Fatalf("stream does not open with the schema record: %+v", got[0])
	}
	if got[2].Type != TypeTrial || got[2].Seed != "1234567890123456789" {
		t.Fatalf("trial record mismatch: %+v", got[2])
	}
	if *got[2].Rounds != 2 || !*got[2].Completed || *got[2].MaxLoad != 5 {
		t.Fatalf("trial fields mismatch: %+v", got[2])
	}
	if got[4].Epoch != nil {
		t.Fatalf("plain round record must omit epoch: %+v", got[4])
	}
	if got[4].Type != TypeRound || *got[4].Round != 2 || *got[4].RequestsAccepted != 4 {
		t.Fatalf("round record mismatch: %+v", got[4])
	}
	if got[5].Epoch == nil || *got[5].Epoch != 3 {
		t.Fatalf("epoch-tagged round record mismatch: %+v", got[5])
	}

	// Re-encoding the decoded records must reproduce the stream byte for
	// byte: the decode direction loses nothing the encode direction wrote.
	var buf2 bytes.Buffer
	r2 := NewRecorder(&buf2)
	for _, rec := range got {
		r2.Emit(rec)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("re-encoded stream differs:\n got: %s\nwant: %s", buf2.String(), buf.String())
	}
}

// TestDecoderVersion pins the versioning contract: a stream without a
// schema record is SchemaV1, a stream with one reports it.
func TestDecoderVersion(t *testing.T) {
	d := NewDecoder(strings.NewReader(`{"type":"note","experiment":"E1","note":"x"}` + "\n"))
	if _, err := d.Next(); err != nil {
		t.Fatalf("decoding version-less stream: %v", err)
	}
	if d.Version != SchemaVersion {
		t.Fatalf("version-less stream must default to %s, got %s", SchemaVersion, d.Version)
	}
}

// TestDecoderRejectsUnknownType pins the no-silent-drop rule.
func TestDecoderRejectsUnknownType(t *testing.T) {
	_, err := ReadAll(strings.NewReader(`{"type":"mystery"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown record type") {
		t.Fatalf("unknown record type must be an error, got %v", err)
	}
}

// TestDecoderToleratesUnknownFields pins forward compatibility: a future
// field-adding revision stays readable.
func TestDecoderToleratesUnknownFields(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(`{"type":"note","note":"x","future_field":42}` + "\n"))
	if err != nil {
		t.Fatalf("unknown field must be ignored, got %v", err)
	}
	if len(recs) != 1 || recs[0].Note != "x" {
		t.Fatalf("decoded %+v", recs)
	}
}

// TestNilRecorder pins the nil-receiver contract every producer relies
// on: a nil Recorder swallows records and reports no error.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.SchemaHeader()
	r.TableHeader("E1", "t", nil)
	r.Trial("E1", "p", 0, 1, trackedResult())
	r.RoundSeries("E1", "p", 0, -1, trackedResult().PerRound)
	r.Row("E1", "p", nil)
	r.Note("E1", "n")
	if err := r.Err(); err != nil {
		t.Fatalf("nil recorder must be error-free, got %v", err)
	}
}

// TestDecoderEOF pins clean stream termination.
func TestDecoderEOF(t *testing.T) {
	d := NewDecoder(strings.NewReader(""))
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("empty stream must return io.EOF, got %v", err)
	}
}

// TestTelemetryRecordRoundTrip pins the telemetry snapshot's journey
// through the stream: a Recorder.Telemetry record decodes to the same
// counters, gauges and histograms, and a nil snapshot emits nothing.
func TestTelemetryRecordRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("saer_rounds_total").Add(0, 12)
	reg.Gauge("saer_server_open_conns").Set(3)
	reg.Histogram(`saer_phase_seconds{phase="draw"}`).Observe(time.Millisecond)
	snap := reg.Snapshot()

	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Telemetry("wire", "client", snap)
	r.Telemetry("wire", "client", nil) // swallowed, not an empty record
	if err := r.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d records, want 1 (nil snapshot must emit nothing)", len(got))
	}
	rec := got[0]
	if rec.Type != TypeTelemetry || rec.Experiment != "wire" || rec.Source != "client" {
		t.Fatalf("telemetry record header mismatch: %+v", rec)
	}
	if rec.Telemetry == nil || !reflect.DeepEqual(rec.Telemetry, snap) {
		t.Fatalf("snapshot round-trip mismatch:\n got %+v\nwant %+v", rec.Telemetry, snap)
	}
}

// TestDecoderSkipUnknown pins the forward-compatibility escape hatch: a
// stream interleaving current records (including the telemetry type)
// with record types from a future schema revision is an error for the
// strict default — the aggregator must not silently drop data — while a
// SkipUnknown decoder skips exactly the foreign records, counts them,
// and still yields every known record in order.
func TestDecoderSkipUnknown(t *testing.T) {
	stream := `{"type":"schema","schema":"saer-records/v1"}
{"type":"note","experiment":"E1","note":"first"}
{"type":"hologram","experiment":"E1","shimmer":3}
{"type":"telemetry","experiment":"wire","source":"client","telemetry":{"counters":{"saer_rounds_total":9}}}
{"type":"quantum_trace","payload":[1,2,3]}
{"type":"note","experiment":"E1","note":"last"}
`
	// Strict default: the first foreign type aborts the stream.
	if _, err := ReadAll(strings.NewReader(stream)); err == nil ||
		!strings.Contains(err.Error(), "unknown record type") {
		t.Fatalf("strict decoder must reject future types, got %v", err)
	}

	d := NewDecoder(strings.NewReader(stream))
	d.SkipUnknown = true
	var got []Record
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tolerant decoder failed: %v", err)
		}
		got = append(got, rec)
	}
	if d.Skipped != 2 {
		t.Fatalf("Skipped = %d, want 2", d.Skipped)
	}
	if len(got) != 4 {
		t.Fatalf("decoded %d known records, want 4: %+v", len(got), got)
	}
	if got[1].Note != "first" || got[3].Note != "last" {
		t.Fatalf("known records out of order: %+v", got)
	}
	if got[2].Type != TypeTelemetry || got[2].Telemetry == nil ||
		got[2].Telemetry.Counters["saer_rounds_total"] != 9 {
		t.Fatalf("telemetry record lost in tolerant decode: %+v", got[2])
	}
}

// TestShardRecord round-trips the wire aggregator's shard summary.
func TestShardRecord(t *testing.T) {
	shard, lo, hi, burned := 1, 64, 128, 3
	rec := Record{Type: TypeShard, Experiment: "wire", Shard: &shard, ServerLo: &lo, ServerHi: &hi, BurnedServers: &burned}
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Emit(rec)
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], rec) {
		t.Fatalf("shard record round-trip mismatch: %+v", got)
	}
}
