package records

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// knownTypes is the set of record types this schema revision defines.
var knownTypes = map[string]bool{
	TypeSchema:    true,
	TypeTable:     true,
	TypeTrial:     true,
	TypeRound:     true,
	TypeRow:       true,
	TypeNote:      true,
	TypeShard:     true,
	TypeTelemetry: true,
}

// Decoder reads a record stream line by line.
type Decoder struct {
	sc   *bufio.Scanner
	line int
	// Version is the schema announced by the stream's leading schema
	// record, or SchemaVersion when the stream opens without one (the
	// pre-version sweep streams).
	Version string
	// SkipUnknown makes Next silently drop records of unknown type
	// instead of failing, counting them in Skipped. The strict default is
	// right for consumers that must account for every record (the
	// aggregator); SkipUnknown is for forward-compatible readers that
	// only care about the types they understand and accept streams from
	// future, type-adding schema revisions.
	SkipUnknown bool
	// Skipped counts the unknown-type records dropped under SkipUnknown.
	Skipped int
}

// NewDecoder returns a Decoder over r. Lines can be long (a tracked
// round record with every field set stays well under the 1 MB cap).
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Decoder{sc: sc, Version: SchemaVersion}
}

// Next returns the next record of the stream, or io.EOF when the stream
// is exhausted. Unknown record types are an error by default — a
// consumer built against this schema revision must not silently drop
// data it does not understand — unless SkipUnknown opted into dropping
// (and counting) them. Unknown *fields* inside a known type are always
// ignored, which is what lets revision-1 decoders read streams from
// future field-adding revisions.
func (d *Decoder) Next() (Record, error) {
	for d.sc.Scan() {
		d.line++
		line := d.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return Record{}, fmt.Errorf("records: line %d: %w", d.line, err)
		}
		if !knownTypes[rec.Type] {
			if d.SkipUnknown {
				d.Skipped++
				continue
			}
			return Record{}, fmt.Errorf("records: line %d: unknown record type %q", d.line, rec.Type)
		}
		if rec.Type == TypeSchema {
			d.Version = rec.Schema
		}
		return rec, nil
	}
	if err := d.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll decodes an entire record stream.
func ReadAll(r io.Reader) ([]Record, error) {
	d := NewDecoder(r)
	var out []Record
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
