package baseline

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/rng"
)

func testGraph(t testing.TB, n, delta int, seed uint64) *bipartite.Graph {
	t.Helper()
	g, err := gen.Regular(n, delta, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkBallConservation verifies that the total load equals n·d.
func checkBallConservation(t *testing.T, r *Result, n, d int) {
	t.Helper()
	var total int
	for _, l := range r.Loads {
		total += l
	}
	if r.Completed && total != n*d {
		t.Errorf("%s: total load %d, want %d", r.Algorithm, total, n*d)
	}
	if math.Abs(r.MeanLoad*float64(len(r.Loads))-float64(total)) > 1e-6 {
		t.Errorf("%s: mean load inconsistent with totals", r.Algorithm)
	}
}

func TestOneChoice(t *testing.T) {
	g := testGraph(t, 1024, 32, 1)
	r, err := OneChoice(g, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sequential || !r.Completed {
		t.Error("one-choice should be a completed sequential run")
	}
	if r.Steps != 1024*2 {
		t.Errorf("steps %d, want %d", r.Steps, 1024*2)
	}
	if r.Work != int64(1024*2*2) {
		t.Errorf("work %d, want %d", r.Work, 1024*2*2)
	}
	checkBallConservation(t, r, 1024, 2)
	if r.MaxLoad < 2 {
		t.Errorf("one-choice max load %d suspiciously low", r.MaxLoad)
	}
}

func TestGreedyBestOfKBeatsOneChoice(t *testing.T) {
	g := testGraph(t, 4096, 64, 2)
	one, err := OneChoice(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	two, err := GreedyBestOfK(g, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	four, err := GreedyBestOfK(g, 2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkBallConservation(t, two, 4096, 2)
	checkBallConservation(t, four, 4096, 2)
	// The power of two choices: the best-of-2 max load must not exceed the
	// one-choice max load, and best-of-4 must not exceed best-of-2 by more
	// than 1 (they are typically equal or decreasing).
	if two.MaxLoad > one.MaxLoad {
		t.Errorf("best-of-2 max load %d worse than one-choice %d", two.MaxLoad, one.MaxLoad)
	}
	if four.MaxLoad > two.MaxLoad+1 {
		t.Errorf("best-of-4 max load %d much worse than best-of-2 %d", four.MaxLoad, two.MaxLoad)
	}
	// Work accounting: 2k+2 messages per ball.
	if two.Work != int64(4096*2*(2*2+2)) {
		t.Errorf("best-of-2 work %d unexpected", two.Work)
	}
}

func TestGreedyBestOfKValidation(t *testing.T) {
	g := testGraph(t, 64, 8, 1)
	if _, err := GreedyBestOfK(g, 2, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := GreedyBestOfK(g, 0, 2, 1); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestGreedyFullScanOptimalOnRegular(t *testing.T) {
	// With full knowledge of the neighborhood loads and a regular graph,
	// greedy full scan should achieve an essentially perfect assignment:
	// max load d or d+1.
	g := testGraph(t, 1024, 32, 5)
	r, err := GreedyFullScan(g, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkBallConservation(t, r, 1024, 2)
	if r.MaxLoad > 3 {
		t.Errorf("full-scan greedy max load %d, expected near-perfect (<= 3)", r.MaxLoad)
	}
	// Work should be about 2·∆ per ball.
	expectedWork := int64(1024 * 2 * (2*32 + 2))
	if r.Work != expectedWork {
		t.Errorf("work %d, want %d", r.Work, expectedWork)
	}
}

func TestParallelOneShotKChoice(t *testing.T) {
	g := testGraph(t, 2048, 32, 6)
	r, err := ParallelOneShotKChoice(g, 2, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sequential {
		t.Error("one-shot k-choice should be parallel")
	}
	if r.Steps != 2 {
		t.Errorf("steps %d, want d=2 waves", r.Steps)
	}
	checkBallConservation(t, r, 2048, 2)
	if _, err := ParallelOneShotKChoice(g, 2, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestParallelThresholdCompletes(t *testing.T) {
	g := testGraph(t, 1024, 32, 7)
	r, err := ParallelThreshold(g, 2, 4, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("threshold protocol did not complete: %v", r)
	}
	checkBallConservation(t, r, 1024, 2)
	if r.MaxLoad < 2 {
		t.Errorf("max load %d suspiciously low", r.MaxLoad)
	}
	if r.Steps <= 0 {
		t.Error("no rounds recorded")
	}
}

func TestParallelThresholdRespectsRoundCap(t *testing.T) {
	// threshold=1 with d=4 on a tiny graph cannot finish in one round;
	// with a cap of 1 round it must stop incomplete and report leftovers.
	g := testGraph(t, 64, 8, 8)
	r, err := ParallelThreshold(g, 4, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed {
		t.Error("run should not complete in a single round")
	}
	if r.UnassignedBalls <= 0 {
		t.Error("incomplete run should report unassigned balls")
	}
	if r.Steps != 1 {
		t.Errorf("steps %d, want 1", r.Steps)
	}
}

func TestParallelThresholdValidation(t *testing.T) {
	g := testGraph(t, 64, 8, 1)
	if _, err := ParallelThreshold(g, 2, 0, 0, 1); err == nil {
		t.Error("threshold=0 accepted")
	}
}

func TestBaselinesRejectIsolatedClients(t *testing.T) {
	bad, err := bipartite.NewBuilder(2, 2).AddEdge(0, 0).Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OneChoice(bad, 2, 1); err == nil {
		t.Error("OneChoice accepted isolated client")
	}
	if _, err := GreedyBestOfK(bad, 2, 2, 1); err == nil {
		t.Error("GreedyBestOfK accepted isolated client")
	}
	if _, err := GreedyFullScan(bad, 2, 1); err == nil {
		t.Error("GreedyFullScan accepted isolated client")
	}
	if _, err := ParallelOneShotKChoice(bad, 2, 2, 1); err == nil {
		t.Error("ParallelOneShotKChoice accepted isolated client")
	}
	if _, err := ParallelThreshold(bad, 2, 2, 0, 1); err == nil {
		t.Error("ParallelThreshold accepted isolated client")
	}
}

// TestBaselinesBackendEquivalence is the representation contract the E7
// port relies on: every baseline must produce bit-for-bit identical
// results on an implicit topology and on its materialized CSR twin,
// since the rowReader regenerates exactly the rows the CSR stores.
func TestBaselinesBackendEquivalence(t *testing.T) {
	const n, delta, d = 1024, 24, 2
	impl, err := gen.RegularImplicit(n, delta, 0x707)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := bipartite.Materialize(impl)
	if err != nil {
		t.Fatal(err)
	}
	runs := []struct {
		name string
		run  func(g bipartite.Topology) (*Result, error)
	}{
		{"one-choice", func(g bipartite.Topology) (*Result, error) { return OneChoice(g, d, 5) }},
		{"greedy-best-of-2", func(g bipartite.Topology) (*Result, error) { return GreedyBestOfK(g, d, 2, 5) }},
		{"greedy-full-scan", func(g bipartite.Topology) (*Result, error) { return GreedyFullScan(g, d, 5) }},
		{"parallel-1shot", func(g bipartite.Topology) (*Result, error) { return ParallelOneShotKChoice(g, d, 2, 5) }},
		{"parallel-threshold", func(g bipartite.Topology) (*Result, error) { return ParallelThreshold(g, d, 4, 0, 5) }},
	}
	for _, tc := range runs {
		a, err := tc.run(impl)
		if err != nil {
			t.Fatalf("%s implicit: %v", tc.name, err)
		}
		b, err := tc.run(csr)
		if err != nil {
			t.Fatalf("%s csr: %v", tc.name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: implicit and CSR results diverge:\n  implicit=%v\n  csr=%v", tc.name, a, b)
		}
	}
}

func TestResultString(t *testing.T) {
	g := testGraph(t, 64, 8, 1)
	r, err := OneChoice(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.String() == "" {
		t.Error("empty result string")
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(t, 512, 16, 9)
	a, err := GreedyBestOfK(g, 2, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyBestOfK(g, 2, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxLoad != b.MaxLoad || a.Work != b.Work {
		t.Error("GreedyBestOfK not deterministic")
	}
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			t.Fatal("load vectors differ between identical runs")
		}
	}
}

// Property: every baseline conserves balls and keeps loads non-negative on
// random trust-subset graphs.
func TestQuickBaselinesConserveBalls(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := 32 + int(nRaw%64)
		k := 4 + int(kRaw%8)
		if k > n {
			k = n
		}
		g, err := gen.TrustSubset(n, n, k, rng.New(seed))
		if err != nil {
			return false
		}
		d := 2
		check := func(r *Result, err error) bool {
			if err != nil || !r.Completed {
				return false
			}
			total := 0
			for _, l := range r.Loads {
				if l < 0 {
					return false
				}
				total += l
			}
			return total == n*d
		}
		if !check(OneChoice(g, d, seed)) {
			return false
		}
		if !check(GreedyBestOfK(g, d, 2, seed)) {
			return false
		}
		if !check(GreedyFullScan(g, d, seed)) {
			return false
		}
		if !check(ParallelOneShotKChoice(g, d, 2, seed)) {
			return false
		}
		if !check(ParallelThreshold(g, d, 4, 0, seed)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
