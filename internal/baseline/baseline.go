// Package baseline implements the prior-work algorithms the paper
// positions SAER against, so the experiments can compare maximum load,
// completion time and message work on identical inputs:
//
//   - OneChoice — every ball goes to a single uniformly random admissible
//     server (the classic "one choice" process; Θ(log n/log log n) max
//     load on the complete graph).
//   - GreedyBestOfK — the sequential best-of-k greedy of Azar et al.,
//     restricted to the client's neighborhood as analysed by Kenthapadi
//     and Panigrahy: each ball probes k random admissible servers and
//     joins the least loaded.
//   - GreedyFullScan — Godfrey's sequential greedy on random clusters:
//     each ball joins a uniformly random least-loaded server of the whole
//     neighborhood (work Θ(n·∆max(C))).
//   - ParallelOneShotKChoice — a one-round parallel greedy: every ball
//     simultaneously probes k random admissible servers and commits to the
//     least loaded according to the pre-round loads; collisions are
//     accepted. This is the natural parallelization of greedy whose
//     weaknesses motivated the threshold protocols of Micah et al.
//   - ParallelThreshold — the classic multi-round threshold protocol:
//     every alive ball picks one random admissible server per round and a
//     server accepts at most `threshold` new balls per round, rejecting
//     the excess (re-thrown next round). Unlike SAER/RAES it requires the
//     server to select which requests to keep and has no global load cap.
//
// All baselines share the Result type so the experiment tables can list
// them side by side with the core protocols.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/rng"
)

// Result is the outcome of a baseline execution.
type Result struct {
	// Algorithm is a short identifier such as "one-choice" or
	// "greedy-best-of-2".
	Algorithm string
	// Sequential is true for ball-at-a-time algorithms; Steps then counts
	// ball placements. For parallel algorithms Steps counts rounds.
	Sequential bool
	Steps      int
	// Work is the number of messages exchanged, counting one request and
	// one reply per probe/submission, matching the accounting used for
	// SAER/RAES.
	Work int64
	// Completed is false only for parallel baselines stopped by the round
	// cap.
	Completed bool
	// UnassignedBalls counts balls never placed (only for incomplete runs).
	UnassignedBalls int
	// MaxLoad, MinLoad and MeanLoad summarize the final server loads.
	MaxLoad  int
	MinLoad  int
	MeanLoad float64
	// Loads is the full per-server load vector.
	Loads []int
}

// String summarizes the result in one line.
func (r *Result) String() string {
	kind := "rounds"
	if r.Sequential {
		kind = "steps"
	}
	return fmt.Sprintf("%s: maxLoad=%d %s=%d work=%d completed=%v",
		r.Algorithm, r.MaxLoad, kind, r.Steps, r.Work, r.Completed)
}

func finalize(r *Result, loads []int32) {
	r.Loads = make([]int, len(loads))
	r.MinLoad = math.MaxInt
	var sum int64
	for i, l := range loads {
		v := int(l)
		r.Loads[i] = v
		if v > r.MaxLoad {
			r.MaxLoad = v
		}
		if v < r.MinLoad {
			r.MinLoad = v
		}
		sum += int64(v)
	}
	if len(loads) == 0 {
		r.MinLoad = 0
	}
	r.MeanLoad = float64(sum) / float64(len(loads))
}

// rowReader reads client neighborhoods from any Topology representation:
// a materialized *Graph returns its CSR row directly (zero copy, honoring
// the aliasing contract of AppendClientNeighbors — the row is never fed
// back as a scratch buffer), implicit topologies regenerate into one
// reusable scratch buffer. The baselines are sequential, so a single
// reader per run suffices.
type rowReader struct {
	g       bipartite.Topology
	csr     *bipartite.Graph
	scratch []int32
}

func newRowReader(g bipartite.Topology) *rowReader {
	r := &rowReader{g: g}
	if csr, ok := g.(*bipartite.Graph); ok {
		r.csr = csr
	} else {
		r.scratch = make([]int32, 0, g.MaxClientDegree())
	}
	return r
}

// row returns client v's neighbors; the slice is read-only and valid
// only until the next call.
func (r *rowReader) row(v int) []int32 {
	if r.csr != nil {
		return r.csr.ClientNeighbors(v)
	}
	r.scratch = r.g.AppendClientNeighbors(v, r.scratch[:0])
	return r.scratch
}

func validateInput(g bipartite.Topology, d int) error {
	if d <= 0 {
		return fmt.Errorf("baseline: request number d must be positive, got %d", d)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return nil
}

// OneChoice assigns every ball to a single uniformly random admissible
// server, one ball at a time.
func OneChoice(g bipartite.Topology, d int, seed uint64) (*Result, error) {
	if err := validateInput(g, d); err != nil {
		return nil, err
	}
	src := rng.New(seed)
	rows := newRowReader(g)
	loads := make([]int32, g.NumServers())
	res := &Result{Algorithm: "one-choice", Sequential: true, Completed: true}
	for v := 0; v < g.NumClients(); v++ {
		nbrs := rows.row(v)
		for i := 0; i < d; i++ {
			u := nbrs[src.Intn(len(nbrs))]
			loads[u]++
			res.Steps++
			res.Work += 2
		}
	}
	finalize(res, loads)
	return res, nil
}

// GreedyBestOfK is the sequential best-of-k greedy on graphs: every ball
// probes k admissible servers chosen independently and uniformly at random
// (with replacement, as in the paper's protocol model) and joins the one
// with the smallest current load, ties broken toward the first probed.
func GreedyBestOfK(g bipartite.Topology, d, k int, seed uint64) (*Result, error) {
	if err := validateInput(g, d); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("baseline: GreedyBestOfK needs k > 0, got %d", k)
	}
	src := rng.New(seed)
	rows := newRowReader(g)
	loads := make([]int32, g.NumServers())
	res := &Result{Algorithm: fmt.Sprintf("greedy-best-of-%d", k), Sequential: true, Completed: true}
	for v := 0; v < g.NumClients(); v++ {
		nbrs := rows.row(v)
		for i := 0; i < d; i++ {
			best := nbrs[src.Intn(len(nbrs))]
			for probe := 1; probe < k; probe++ {
				cand := nbrs[src.Intn(len(nbrs))]
				if loads[cand] < loads[best] {
					best = cand
				}
			}
			loads[best]++
			res.Steps++
			// k probes with load replies, plus the final placement and ack.
			res.Work += int64(2*k) + 2
		}
	}
	finalize(res, loads)
	return res, nil
}

// GreedyFullScan is Godfrey's sequential greedy: every ball is placed on a
// uniformly random server among the least-loaded servers of the client's
// whole neighborhood. The work charged is proportional to the neighborhood
// size, reflecting the load queries the client must issue.
func GreedyFullScan(g bipartite.Topology, d int, seed uint64) (*Result, error) {
	if err := validateInput(g, d); err != nil {
		return nil, err
	}
	src := rng.New(seed)
	rows := newRowReader(g)
	loads := make([]int32, g.NumServers())
	res := &Result{Algorithm: "greedy-full-scan", Sequential: true, Completed: true}
	var ties []int32
	for v := 0; v < g.NumClients(); v++ {
		nbrs := rows.row(v)
		for i := 0; i < d; i++ {
			minLoad := int32(math.MaxInt32)
			ties = ties[:0]
			for _, u := range nbrs {
				switch {
				case loads[u] < minLoad:
					minLoad = loads[u]
					ties = append(ties[:0], u)
				case loads[u] == minLoad:
					ties = append(ties, u)
				}
			}
			u := ties[src.Intn(len(ties))]
			loads[u]++
			res.Steps++
			res.Work += int64(2*len(nbrs)) + 2
		}
	}
	finalize(res, loads)
	return res, nil
}

// ParallelOneShotKChoice is the one-round parallel greedy: every ball
// simultaneously probes k random admissible servers, learns their loads as
// of the start of the round (all zero initially, or the committed loads of
// earlier waves when d > 1: the d balls of a client are sent in d
// simultaneous waves, one per ball index), and commits to the least
// loaded. Since all commitments happen in parallel, collisions are not
// prevented, which is exactly the weakness that motivates threshold-based
// protocols.
func ParallelOneShotKChoice(g bipartite.Topology, d, k int, seed uint64) (*Result, error) {
	if err := validateInput(g, d); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("baseline: ParallelOneShotKChoice needs k > 0, got %d", k)
	}
	n := g.NumClients()
	streams := rng.NewStreams(seed, n)
	rows := newRowReader(g)
	loads := make([]int32, g.NumServers())
	committed := make([]int32, g.NumServers())
	res := &Result{Algorithm: fmt.Sprintf("parallel-1shot-%d-choice", k), Sequential: false, Completed: true}
	for wave := 0; wave < d; wave++ {
		res.Steps++
		// Snapshot the loads visible to this wave.
		copy(loads, committed)
		for v := 0; v < n; v++ {
			nbrs := rows.row(v)
			src := &streams[v]
			best := nbrs[src.Intn(len(nbrs))]
			for probe := 1; probe < k; probe++ {
				cand := nbrs[src.Intn(len(nbrs))]
				if loads[cand] < loads[best] {
					best = cand
				}
			}
			committed[best]++
			res.Work += int64(2*k) + 2
		}
	}
	finalize(res, committed)
	return res, nil
}

// ParallelThreshold is the classic threshold protocol: in each round every
// alive ball picks one admissible server uniformly at random; each server
// accepts at most threshold of the balls it received this round (keeping
// the lowest-numbered requests, an arbitrary fair rule) and rejects the
// rest, which retry in the next round. maxRounds caps the execution
// (0 selects 16·⌈log₂ n⌉+64).
func ParallelThreshold(g bipartite.Topology, d, threshold, maxRounds int, seed uint64) (*Result, error) {
	if err := validateInput(g, d); err != nil {
		return nil, err
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("baseline: ParallelThreshold needs threshold > 0, got %d", threshold)
	}
	n := g.NumClients()
	m := g.NumServers()
	if maxRounds <= 0 {
		maxRounds = 64
		if n >= 2 {
			maxRounds += 16 * int(math.Ceil(math.Log2(float64(n))))
		}
	}
	streams := rng.NewStreams(seed, n)
	rows := newRowReader(g)
	loads := make([]int32, m)
	alive := make([]int32, n)
	for v := range alive {
		alive[v] = int32(d)
	}
	// choices[v*d+i] holds the destination of the i-th alive ball of v.
	choices := make([]int32, n*d)
	received := make([]int32, m)
	acceptedCount := make([]int32, m)
	res := &Result{Algorithm: fmt.Sprintf("parallel-threshold-%d", threshold), Sequential: false}

	totalAlive := int64(n) * int64(d)
	for round := 0; round < maxRounds && totalAlive > 0; round++ {
		res.Steps++
		for u := range received {
			received[u] = 0
			acceptedCount[u] = 0
		}
		for v := 0; v < n; v++ {
			a := alive[v]
			if a == 0 {
				continue
			}
			nbrs := rows.row(v)
			src := &streams[v]
			for i := int32(0); i < a; i++ {
				u := nbrs[src.Intn(len(nbrs))]
				choices[v*d+int(i)] = u
				received[u]++
			}
			res.Work += 2 * int64(a)
		}
		// Servers accept up to threshold balls this round, in client order
		// (the "first threshold requests" fair rule).
		for v := 0; v < n; v++ {
			a := alive[v]
			if a == 0 {
				continue
			}
			var kept int32
			for i := int32(0); i < a; i++ {
				u := choices[v*d+int(i)]
				if int(acceptedCount[u]) < threshold {
					acceptedCount[u]++
					loads[u]++
					kept++
				}
			}
			alive[v] = a - kept
			totalAlive -= int64(kept)
		}
	}
	res.Completed = totalAlive == 0
	res.UnassignedBalls = int(totalAlive)
	finalize(res, loads)
	return res, nil
}
