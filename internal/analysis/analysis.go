// Package analysis implements the quantitative side of the paper's proof:
// the recurrences that drive the two-stage analysis of Section 3
// (γ_t, δ_t, the stage-I horizon T) and report helpers that compare a
// measured protocol execution against the statements of Theorem 1,
// Lemma 4 and the work bound of Section 3.2.
//
// These quantities are not needed to run the protocol — they exist so the
// experiments can plot "measured vs analysis" series and so the tests can
// verify the recurrences' algebraic properties (Lemma 12).
package analysis

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// GammaSequence returns the first rounds+1 terms γ_0 … γ_rounds of the
// recurrence (11) of the paper for the regular case:
//
//	γ_0 = 1,   γ_t = (2/c)·Σ_{i=1..t} Π_{j=0..i-1} γ_j.
//
// γ_t upper-bounds K_t (the normalized cumulative requests into any
// client's neighborhood) during stage I of the analysis.
func GammaSequence(c float64, rounds int) []float64 {
	return gammaSequenceScaled(2/c, rounds)
}

// GammaSequenceAlmostRegular returns the γ'_t sequence of recurrence (32),
// which replaces the 2/c factor with (2/c)·ρ to account for the degree
// imbalance ρ = ∆max(S)/∆min(C).
func GammaSequenceAlmostRegular(c, rho float64, rounds int) []float64 {
	return gammaSequenceScaled(2*rho/c, rounds)
}

func gammaSequenceScaled(factor float64, rounds int) []float64 {
	if rounds < 0 {
		rounds = 0
	}
	gamma := make([]float64, rounds+1)
	gamma[0] = 1
	// prefixProducts[i] = Π_{j=0..i-1} γ_j, maintained incrementally.
	prod := 1.0 // Π_{j=0..0-1} = empty product for i=1 uses γ_0
	sum := 0.0
	for t := 1; t <= rounds; t++ {
		// At step t the new summand is Π_{j=0..t-1} γ_j.
		prod *= gamma[t-1]
		sum += prod
		gamma[t] = factor * sum
	}
	return gamma
}

// GammaProducts returns the prefix products Π_{j=0..t-1} γ_j for
// t = 0..rounds (the value at index 0 is the empty product 1). These
// products are the per-round decay factors of E[r_t(N(v))] in Lemma 11.
func GammaProducts(gamma []float64) []float64 {
	out := make([]float64, len(gamma))
	prod := 1.0
	for t := range gamma {
		out[t] = prod
		prod *= gamma[t]
	}
	return out
}

// AlphaFor returns the α used by Lemma 12: the largest α ≥ 2 with
// 2/c ≤ 1/α², i.e. α = √(c/2) (capped below at 2). The lemma then gives
// γ_t ≤ 1/α and Π_{j<t} γ_j ≤ α^{-t}.
func AlphaFor(c float64) float64 {
	if c <= 0 {
		return 2
	}
	a := math.Sqrt(c / 2)
	if a < 2 {
		return 2
	}
	return a
}

// StageOneHorizon returns the paper's stage-I horizon T: the smallest t
// such that d·∆·Π_{j<t} γ_j ≤ 12·log₂ n (equation (14)). After T the
// analysis switches to the δ_t sequence. The second return value is the
// bound T ≤ ½·log(d∆/(12 log₂ n)) stated in Lemma 13.
func StageOneHorizon(c float64, d, delta, n int) (horizon int, bound float64) {
	if n < 2 || d <= 0 || delta <= 0 {
		return 0, 0
	}
	target := 12 * math.Log2(float64(n))
	limit := 4 * core.CompletionBound(n) // generous cap; the product decays geometrically
	gamma := GammaSequence(c, limit)
	products := GammaProducts(gamma)
	dDelta := float64(d) * float64(delta)
	horizon = limit
	for t := 0; t <= limit; t++ {
		if dDelta*products[t] <= target {
			horizon = t
			break
		}
	}
	ratio := dDelta / target
	if ratio < 1 {
		bound = 0
	} else {
		bound = 0.5 * math.Log(ratio)
	}
	return horizon, bound
}

// DeltaSequence returns δ_T..δ_rounds from recurrence (17):
//
//	δ_t = 1/4 + 24·t·log₂ n / (c·d·∆)
//
// which bounds K_t during stage II. The slice is indexed from 0 for t = T.
// Base-2 logarithms are used consistently with core.CompletionBound and
// the η reported by bipartite.DegreeStats.
func DeltaSequence(c float64, d, delta, n, fromRound, toRound int) []float64 {
	if toRound < fromRound {
		return nil
	}
	out := make([]float64, toRound-fromRound+1)
	logn := math.Log2(float64(n))
	den := c * float64(d) * float64(delta)
	for i := range out {
		t := fromRound + i
		out[i] = 0.25 + 24*float64(t)*logn/den
	}
	return out
}

// BurnedFractionBound is the bound of Lemma 4 / Lemma 19 on the maximum
// fraction of burned servers in any client's neighborhood.
const BurnedFractionBound = 0.5

// WorkDecayFactor is the per-round decay factor of the number of alive
// balls established in Section 3.2 (equation (20)): while at least
// n·d/log n balls are alive, each round removes at least a 1/5 fraction,
// w.h.p.
const WorkDecayFactor = 4.0 / 5.0

// TheoremReport compares one measured execution against the paper's
// statements. Fields are grouped per claim.
type TheoremReport struct {
	// Completion (Theorem 1).
	Completed             bool
	Rounds                int
	CompletionBoundRounds int // 3·log₂ n
	WithinCompletionBound bool

	// Maximum load (protocol invariant).
	MaxLoad         int
	LoadBound       int // ⌊c·d⌋
	WithinLoadBound bool

	// Burned servers (Lemma 4): available only if the run tracked
	// neighborhoods.
	MaxBurnedFraction       float64
	BurnedFractionTracked   bool
	BurnedFractionBelowHalf bool

	// Work (Theorem 1): messages per ball should be a small constant.
	WorkPerBall float64
}

// CheckTheorem1 builds a TheoremReport from a protocol result.
func CheckTheorem1(res *core.Result) TheoremReport {
	rep := TheoremReport{
		Completed:             res.Completed,
		Rounds:                res.Rounds,
		CompletionBoundRounds: core.CompletionBound(res.NumClients),
		MaxLoad:               res.MaxLoad,
		LoadBound:             res.LoadBound(),
		WorkPerBall:           res.WorkPerBall(),
	}
	rep.WithinCompletionBound = res.Completed && res.Rounds <= rep.CompletionBoundRounds
	rep.WithinLoadBound = res.MaxLoad <= rep.LoadBound
	if len(res.PerRound) > 0 {
		tracked := false
		maxFrac := 0.0
		for _, st := range res.PerRound {
			if st.MaxNeighborhoodBurnedFrac > 0 || st.MaxKt > 0 {
				tracked = true
			}
			if st.MaxNeighborhoodBurnedFrac > maxFrac {
				maxFrac = st.MaxNeighborhoodBurnedFrac
			}
		}
		rep.BurnedFractionTracked = tracked
		rep.MaxBurnedFraction = maxFrac
		rep.BurnedFractionBelowHalf = maxFrac <= BurnedFractionBound
	}
	return rep
}

// String renders the report as a short multi-line summary.
func (r TheoremReport) String() string {
	burned := "not tracked"
	if r.BurnedFractionTracked {
		burned = fmt.Sprintf("max S_t = %.3f (bound %.1f, ok=%v)", r.MaxBurnedFraction, BurnedFractionBound, r.BurnedFractionBelowHalf)
	}
	return fmt.Sprintf(
		"completed=%v rounds=%d (bound %d, within=%v)\nmax load=%d (bound %d, within=%v)\nburned fraction: %s\nwork per ball=%.2f messages",
		r.Completed, r.Rounds, r.CompletionBoundRounds, r.WithinCompletionBound,
		r.MaxLoad, r.LoadBound, r.WithinLoadBound, burned, r.WorkPerBall)
}

// AliveDecayRespectsBound reports whether the measured alive-ball series
// decays at least as fast as the 4/5-per-round bound of Section 3.2 while
// more than n·d/log n balls remain. It returns the first offending round
// (1-based) or 0 when the bound holds.
func AliveDecayRespectsBound(perRound []core.RoundStats, n, d int) int {
	if len(perRound) == 0 || n < 3 {
		return 0
	}
	threshold := float64(n*d) / math.Log2(float64(n))
	for i := 1; i < len(perRound); i++ {
		prev := float64(perRound[i-1].AliveBalls)
		cur := float64(perRound[i].AliveBalls)
		if prev <= threshold {
			break
		}
		if cur > WorkDecayFactor*prev+1e-9 {
			return perRound[i].Round
		}
	}
	return 0
}
