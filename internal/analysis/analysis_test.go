package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestGammaSequenceFirstTerms(t *testing.T) {
	// With c = 32: γ_0 = 1, γ_1 = 2/32·γ_0 = 1/16,
	// γ_2 = 2/32·(γ_0 + γ_0·γ_1) = (1 + 1/16)/16 = 17/256.
	g := GammaSequence(32, 2)
	if len(g) != 3 {
		t.Fatalf("expected 3 terms, got %d", len(g))
	}
	if g[0] != 1 {
		t.Errorf("gamma_0 = %v, want 1", g[0])
	}
	if math.Abs(g[1]-1.0/16) > 1e-12 {
		t.Errorf("gamma_1 = %v, want 1/16", g[1])
	}
	if math.Abs(g[2]-17.0/256) > 1e-12 {
		t.Errorf("gamma_2 = %v, want 17/256", g[2])
	}
}

func TestGammaSequenceLemma12Properties(t *testing.T) {
	// Lemma 12: for 2/c <= 1/α², the sequence from γ_1 on is increasing,
	// bounded by 1/α, and the prefix products are bounded by α^{-t}.
	for _, c := range []float64{8, 32, 64, 200} {
		alpha := AlphaFor(c)
		gamma := GammaSequence(c, 40)
		for tIdx := 2; tIdx < len(gamma); tIdx++ {
			if gamma[tIdx] < gamma[tIdx-1]-1e-15 {
				t.Errorf("c=%v: gamma not increasing at t=%d", c, tIdx)
			}
		}
		for tIdx := 1; tIdx < len(gamma); tIdx++ {
			if gamma[tIdx] > 1/alpha+1e-12 {
				t.Errorf("c=%v: gamma_%d = %v exceeds 1/alpha = %v", c, tIdx, gamma[tIdx], 1/alpha)
			}
		}
		// Lemma 12 bounds the prefix products for t > 1 (at t = 1 the product
		// is the single factor γ_0 = 1).
		prods := GammaProducts(gamma)
		for tIdx := 2; tIdx < len(prods); tIdx++ {
			bound := math.Pow(alpha, -float64(tIdx))
			if prods[tIdx] > bound+1e-12 {
				t.Errorf("c=%v: product at t=%d is %v, exceeds alpha^-t = %v", c, tIdx, prods[tIdx], bound)
			}
		}
	}
}

func TestGammaSequenceAlmostRegular(t *testing.T) {
	// With rho = 1 the two sequences coincide.
	a := GammaSequence(32, 10)
	b := GammaSequenceAlmostRegular(32, 1, 10)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-15 {
			t.Fatalf("rho=1 sequences differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// With rho > 1 the sequence is pointwise at least as large.
	c := GammaSequenceAlmostRegular(64, 2, 10)
	d := GammaSequence(64, 10)
	for i := 1; i < len(c); i++ {
		if c[i] < d[i]-1e-15 {
			t.Errorf("rho=2 sequence smaller at %d", i)
		}
	}
}

func TestGammaSequenceNegativeRounds(t *testing.T) {
	g := GammaSequence(32, -5)
	if len(g) != 1 || g[0] != 1 {
		t.Errorf("negative rounds should return just gamma_0, got %v", g)
	}
}

func TestGammaProducts(t *testing.T) {
	gamma := []float64{1, 0.5, 0.25}
	prods := GammaProducts(gamma)
	want := []float64{1, 1, 0.5}
	for i := range want {
		if math.Abs(prods[i]-want[i]) > 1e-15 {
			t.Errorf("product[%d] = %v, want %v", i, prods[i], want[i])
		}
	}
}

func TestAlphaFor(t *testing.T) {
	if AlphaFor(32) != 4 {
		t.Errorf("AlphaFor(32) = %v, want 4", AlphaFor(32))
	}
	if AlphaFor(2) != 2 {
		t.Errorf("AlphaFor(2) = %v, want 2 (floor)", AlphaFor(2))
	}
	if AlphaFor(-1) != 2 {
		t.Errorf("AlphaFor(-1) = %v, want 2", AlphaFor(-1))
	}
	if math.Abs(AlphaFor(128)-8) > 1e-12 {
		t.Errorf("AlphaFor(128) = %v, want 8", AlphaFor(128))
	}
}

func TestStageOneHorizon(t *testing.T) {
	n := 1 << 14
	delta := 200 // ≈ log² n
	horizon, bound := StageOneHorizon(32, 2, delta, n)
	if horizon <= 0 {
		t.Fatalf("horizon = %d, want positive", horizon)
	}
	// d·∆ = 400 ≈ 3.4·(12 log n); one or two rounds of α=4 decay suffice.
	if horizon > 5 {
		t.Errorf("horizon %d unexpectedly large", horizon)
	}
	if bound < 0 {
		t.Errorf("bound %v negative", bound)
	}
	// Degenerate inputs.
	if h, _ := StageOneHorizon(32, 0, delta, n); h != 0 {
		t.Error("degenerate d should yield 0")
	}
	if h, _ := StageOneHorizon(32, 2, delta, 1); h != 0 {
		t.Error("degenerate n should yield 0")
	}
}

func TestStageOneHorizonLargeDelta(t *testing.T) {
	// With a dense graph (∆ = n/2) the horizon grows like log(d∆/log n),
	// still far below the completion bound.
	n := 1 << 12
	horizon, bound := StageOneHorizon(32, 4, n/2, n)
	if horizon == 0 {
		t.Fatal("horizon should be positive for dense graphs")
	}
	if float64(horizon) > 2*bound+3 {
		t.Errorf("measured horizon %d is far above the lemma bound %v", horizon, bound)
	}
}

func TestDeltaSequence(t *testing.T) {
	n := 1 << 12
	delta := 70
	seq := DeltaSequence(34, 2, delta, n, 3, 10)
	if len(seq) != 8 {
		t.Fatalf("expected 8 terms, got %d", len(seq))
	}
	logn := math.Log2(float64(n))
	want0 := 0.25 + 24*3*logn/(34*2*float64(delta))
	if math.Abs(seq[0]-want0) > 1e-12 {
		t.Errorf("delta_3 = %v, want %v", seq[0], want0)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] < seq[i-1] {
			t.Error("delta sequence should be non-decreasing in t")
		}
	}
	if DeltaSequence(34, 2, delta, n, 5, 4) != nil {
		t.Error("empty range should return nil")
	}
}

func TestDeltaSequenceStaysBelowHalfWithPaperC(t *testing.T) {
	// For c ≥ 288/(η·d) and t ≤ 3 log n, the paper argues δ_t ≤ 1/2.
	n := 1 << 14
	logn := math.Log2(float64(n))
	eta := 1.0
	delta := int(math.Ceil(eta * logn * logn))
	d := 2
	c := core.MinCRegular(eta, d)
	horizon := 3 * int(math.Ceil(math.Log2(float64(n))))
	seq := DeltaSequence(c, d, delta, n, 1, horizon)
	for i, v := range seq {
		if v > 0.5+1e-9 {
			t.Errorf("delta at t=%d is %v > 1/2 with the paper's c", i+1, v)
		}
	}
}

func TestCheckTheorem1OnRealRun(t *testing.T) {
	g, err := gen.Regular(2048, 60, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(g, core.SAER, core.Params{D: 2, C: 8, Seed: 5}, core.Options{TrackNeighborhoods: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckTheorem1(res)
	if !rep.Completed {
		t.Fatal("run did not complete")
	}
	if !rep.WithinLoadBound {
		t.Error("load bound violated")
	}
	if !rep.WithinCompletionBound {
		t.Errorf("completion bound violated: %d rounds vs bound %d", rep.Rounds, rep.CompletionBoundRounds)
	}
	if !rep.BurnedFractionTracked {
		// Tracking was on; the flag may legitimately stay false only when
		// no server ever burned and K_t stayed at zero, which cannot happen
		// since requests were sent.
		t.Error("burned fraction should have been tracked")
	}
	if !rep.BurnedFractionBelowHalf {
		t.Errorf("burned fraction %v above 1/2", rep.MaxBurnedFraction)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestCheckTheorem1WithoutTracking(t *testing.T) {
	g, err := gen.Regular(512, 30, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(g, core.SAER, core.Params{D: 2, C: 4, Seed: 1}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckTheorem1(res)
	if rep.BurnedFractionTracked {
		t.Error("tracking flag set without per-round data")
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestAliveDecayRespectsBound(t *testing.T) {
	// Construct a synthetic series respecting the 4/5 decay.
	mk := func(vals ...int) []core.RoundStats {
		out := make([]core.RoundStats, len(vals))
		for i, v := range vals {
			out[i] = core.RoundStats{Round: i + 1, AliveBalls: v}
		}
		return out
	}
	good := mk(1000, 700, 400, 200, 50, 10, 1)
	if r := AliveDecayRespectsBound(good, 500, 2); r != 0 {
		t.Errorf("good series flagged at round %d", r)
	}
	// A series that stalls above the threshold violates the bound.
	bad := mk(1000, 990, 985)
	if r := AliveDecayRespectsBound(bad, 500, 2); r == 0 {
		t.Error("stalling series not flagged")
	}
	// Below the n·d/log n threshold, stalling is allowed.
	lowTail := mk(1000, 700, 100, 95, 94, 94)
	if r := AliveDecayRespectsBound(lowTail, 500, 2); r != 0 {
		t.Errorf("series flagged at round %d although below threshold", r)
	}
	if AliveDecayRespectsBound(nil, 500, 2) != 0 {
		t.Error("empty series should pass")
	}
}

// Property: for any c >= 8 the gamma prefix products decay monotonically to
// zero and stay within (0, 1].
func TestQuickGammaProductsDecay(t *testing.T) {
	f := func(cRaw uint8) bool {
		c := 8 + float64(cRaw%200)
		gamma := GammaSequence(c, 30)
		prods := GammaProducts(gamma)
		for i := 1; i < len(prods); i++ {
			if prods[i] <= 0 || prods[i] > prods[i-1]+1e-15 || prods[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
