// Package trace exports protocol executions as CSV and JSON so that
// external tools (spreadsheets, gnuplot, pandas) can plot the per-round
// series and load distributions produced by the experiments.
//
// Trace is the post-hoc corner of the repository's observability
// triangle (see DESIGN.md, "Observability"): it serializes a finished
// core.Result — the per-round series a tracked run accumulated and the
// final server load histogram — after the run is over, for exactly one
// execution at a time. It observes nothing while the protocol executes
// and keeps no schema versioning or stream framing of its own. For the
// durable, versioned multi-run stream that saer-aggregate folds, use
// internal/records; for live in-process counters and phase histograms
// readable mid-run (Prometheus /metrics, -progress), use
// internal/telemetry. Both of those layers feed files and endpoints;
// this one feeds plotting tools.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// WriteRoundsCSV writes one CSV row per round of a tracked execution.
// Columns: round, alive_balls, requests_sent, requests_accepted,
// newly_burned, burned_total, saturated, max_burned_fraction,
// max_neighborhood_received, max_kt.
func WriteRoundsCSV(w io.Writer, res *core.Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"round", "alive_balls", "requests_sent", "requests_accepted",
		"newly_burned", "burned_total", "saturated",
		"max_burned_fraction", "max_neighborhood_received", "max_kt",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for _, st := range res.PerRound {
		row := []string{
			strconv.Itoa(st.Round),
			strconv.Itoa(st.AliveBalls),
			strconv.Itoa(st.RequestsSent),
			strconv.Itoa(st.RequestsAccepted),
			strconv.Itoa(st.NewlyBurned),
			strconv.Itoa(st.BurnedTotal),
			strconv.Itoa(st.SaturatedThisRound),
			strconv.FormatFloat(st.MaxNeighborhoodBurnedFrac, 'g', -1, 64),
			strconv.Itoa(st.MaxNeighborhoodReceived),
			strconv.FormatFloat(st.MaxKt, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV row %d: %w", st.Round, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLoadsCSV writes the final per-server load vector as CSV with
// columns server, load.
func WriteLoadsCSV(w io.Writer, loads []int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"server", "load"}); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for u, l := range loads {
		if err := cw.Write([]string{strconv.Itoa(u), strconv.Itoa(l)}); err != nil {
			return fmt.Errorf("trace: writing CSV row %d: %w", u, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// resultJSON is the exported JSON shape of a protocol result. It flattens
// the parameters so downstream tooling does not need to know the Go types.
type resultJSON struct {
	Protocol        string            `json:"protocol"`
	NumClients      int               `json:"num_clients"`
	NumServers      int               `json:"num_servers"`
	D               int               `json:"d"`
	C               float64           `json:"c"`
	Seed            uint64            `json:"seed"`
	Completed       bool              `json:"completed"`
	Rounds          int               `json:"rounds"`
	TotalRequests   int64             `json:"total_requests"`
	Work            int64             `json:"work"`
	MaxLoad         int               `json:"max_load"`
	MinLoad         int               `json:"min_load"`
	MeanLoad        float64           `json:"mean_load"`
	BurnedServers   int               `json:"burned_servers"`
	Saturation      int64             `json:"saturation_events"`
	UnassignedBalls int               `json:"unassigned_balls"`
	PerRound        []core.RoundStats `json:"per_round,omitempty"`
	Loads           []int             `json:"loads,omitempty"`
}

// WriteResultJSON writes the result as an indented JSON document.
func WriteResultJSON(w io.Writer, res *core.Result) error {
	doc := resultJSON{
		Protocol:        res.Variant.String(),
		NumClients:      res.NumClients,
		NumServers:      res.NumServers,
		D:               res.Params.D,
		C:               res.Params.C,
		Seed:            res.Params.Seed,
		Completed:       res.Completed,
		Rounds:          res.Rounds,
		TotalRequests:   res.TotalRequests,
		Work:            res.Work,
		MaxLoad:         res.MaxLoad,
		MinLoad:         res.MinLoad,
		MeanLoad:        res.MeanLoad,
		BurnedServers:   res.BurnedServers,
		Saturation:      res.SaturationEvents,
		UnassignedBalls: res.UnassignedBalls,
		PerRound:        res.PerRound,
		Loads:           res.Loads,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("trace: encoding result JSON: %w", err)
	}
	return nil
}

// ReadResultJSON parses a document written by WriteResultJSON back into a
// core.Result (the graph itself is not part of the trace).
func ReadResultJSON(r io.Reader) (*core.Result, error) {
	var doc resultJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: decoding result JSON: %w", err)
	}
	variant := core.SAER
	if doc.Protocol == core.RAES.String() {
		variant = core.RAES
	}
	return &core.Result{
		Variant:          variant,
		Params:           core.Params{D: doc.D, C: doc.C, Seed: doc.Seed},
		NumClients:       doc.NumClients,
		NumServers:       doc.NumServers,
		Completed:        doc.Completed,
		Rounds:           doc.Rounds,
		TotalRequests:    doc.TotalRequests,
		Work:             doc.Work,
		MaxLoad:          doc.MaxLoad,
		MinLoad:          doc.MinLoad,
		MeanLoad:         doc.MeanLoad,
		BurnedServers:    doc.BurnedServers,
		SaturationEvents: doc.Saturation,
		UnassignedBalls:  doc.UnassignedBalls,
		PerRound:         doc.PerRound,
		Loads:            doc.Loads,
	}, nil
}
