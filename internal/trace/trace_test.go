package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func trackedResult(t *testing.T) *core.Result {
	t.Helper()
	g, err := gen.Regular(256, 20, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(g, core.SAER, core.Params{D: 2, C: 4, Seed: 3},
		core.Options{TrackNeighborhoods: true, TrackLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteRoundsCSV(t *testing.T) {
	res := trackedResult(t)
	var buf bytes.Buffer
	if err := WriteRoundsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != res.Rounds+1 {
		t.Fatalf("CSV has %d rows, want %d (header + rounds)", len(records), res.Rounds+1)
	}
	if records[0][0] != "round" || len(records[0]) != 10 {
		t.Errorf("unexpected header: %v", records[0])
	}
	if records[1][0] != "1" {
		t.Errorf("first data row should be round 1, got %v", records[1])
	}
}

func TestWriteLoadsCSV(t *testing.T) {
	res := trackedResult(t)
	var buf bytes.Buffer
	if err := WriteLoadsCSV(&buf, res.Loads); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(res.Loads)+1 {
		t.Fatalf("CSV has %d rows, want %d", len(records), len(res.Loads)+1)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	res := trackedResult(t)
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Variant != res.Variant || back.Rounds != res.Rounds || back.Work != res.Work ||
		back.MaxLoad != res.MaxLoad || back.Completed != res.Completed {
		t.Errorf("round trip changed the result: %v vs %v", back, res)
	}
	if len(back.PerRound) != len(res.PerRound) {
		t.Errorf("per-round series length %d, want %d", len(back.PerRound), len(res.PerRound))
	}
	if len(back.Loads) != len(res.Loads) {
		t.Errorf("loads length %d, want %d", len(back.Loads), len(res.Loads))
	}
}

func TestReadResultJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadResultJSON(strings.NewReader("{oops")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestRAESRoundTripKeepsVariant(t *testing.T) {
	g, err := gen.Regular(128, 16, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(g, core.RAES, core.Params{D: 2, C: 4, Seed: 1}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Variant != core.RAES {
		t.Errorf("variant %v, want RAES", back.Variant)
	}
}
