package churn

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// Policy selects what happens to the load a failing server carried.
type Policy int

const (
	// PolicyDrop discards the failed server's accepted balls: the
	// sessions they belonged to are simply gone (crash-stop semantics).
	PolicyDrop Policy = iota
	// PolicyReinject turns the failed server's accepted balls into fresh
	// demand: the affected requests are re-issued by present clients
	// with spare request capacity in the following epochs.
	PolicyReinject
	// PolicySaturate pushes the failed server's accepted balls onto the
	// surviving servers' carried load (a takeover/replication model) —
	// which can drive survivors to the capacity threshold and burn them.
	PolicySaturate
)

// String returns the policy's CLI spelling.
func (p Policy) String() string {
	switch p {
	case PolicyDrop:
		return "drop"
	case PolicyReinject:
		return "reinject"
	case PolicySaturate:
		return "saturate"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a failure policy's CLI spelling.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "drop":
		return PolicyDrop, nil
	case "reinject":
		return PolicyReinject, nil
	case "saturate":
		return PolicySaturate, nil
	default:
		return 0, fmt.Errorf("churn: unknown failure policy %q (want drop, reinject or saturate)", s)
	}
}

// SchedulerConfig fixes the protocol and process parameters of a
// scenario.
type SchedulerConfig struct {
	// Protocol is the per-epoch run configuration: the variant, D, C and
	// every performance knob, on the single validated core.Config
	// surface. The zero value of each knob selects the core default. The
	// scheduler owns the per-epoch pieces — Seed (drawn per epoch),
	// InitialLoads/RequestCounts (aliased to the carried scenario state),
	// TrackLoads and TrackRounds — and overwrites them; set protocol
	// identity and performance knobs only.
	Protocol core.Config
	// LoadExpiry is the fraction of every live server's carried load
	// that expires at the start of each epoch (sessions ending): the
	// knob that lets the scenario settle into a metastable regime
	// instead of filling up.
	LoadExpiry float64
	// Policy selects the failed-load redistribution.
	Policy Policy
	// TrackRounds records the protocol's per-round series into each
	// EpochOutcome (for the -json round records). It does not change
	// any outcome.
	TrackRounds bool
	// Telemetry, when non-nil, receives the scenario-level counters
	// (saer_churn_* series: epochs, churn mutations, failed-load policy
	// actions). The per-epoch protocol runs are instrumented separately
	// through Protocol.Telemetry. Pure observation: scenario outcomes
	// are bit-for-bit identical with or without it.
	Telemetry *telemetry.Registry
	// NewExecutor overrides how an epoch's protocol run executes: the
	// scheduler calls it once with the scenario topology and the fully
	// assembled per-epoch run configuration (InitialLoads/RequestCounts
	// aliased to the scheduler's carried state, TrackLoads on) and drives
	// the returned Executor every epoch. Nil selects the in-process
	// executor (one reused core.Runner driven via PatchTopology +
	// Reseed). The wire service mode plugs in an executor that drives
	// remote server shards; because servers are rebuilt from InitialLoads
	// at every epoch, any executor that computes the same random process
	// — local runner, netsim, wire client — yields bit-for-bit identical
	// scenarios.
	NewExecutor func(topo *Topology, cfg core.Config) (Executor, error)
}

// Executor runs one epoch's protocol execution. The scheduler hands it
// the epoch's seed; the carried loads and per-client request counts are
// the slices the executor was constructed around (aliased, mutated in
// place by the scheduler between epochs). The returned Result must carry
// TrackLoads (the scheduler folds res.Loads back into its carried
// state) and, when requested, the per-round series.
type Executor interface {
	RunEpoch(seed uint64) (*core.Result, error)
}

// localExecutor is the default in-process Executor: one reused
// core.Runner over the scenario topology, re-validated and re-bound
// after each epoch's mutations via PatchTopology.
type localExecutor struct {
	topo   *Topology
	cfg    core.Config
	runner *core.Runner
}

func (x *localExecutor) RunEpoch(seed uint64) (*core.Result, error) {
	if x.runner == nil {
		cfg := x.cfg
		cfg.Seed = seed
		r, err := cfg.NewRunner(x.topo)
		if err != nil {
			return nil, err
		}
		x.runner = r
	} else {
		if err := x.runner.PatchTopology(); err != nil {
			return nil, err
		}
		x.runner.Reseed(seed)
	}
	return x.runner.Run(), nil
}

// EpochEvent describes what happens in one epoch of the scenario. The
// experiment (or CLI) owns the generative processes — Poisson arrival
// sampling, wave schedules, churn-fraction draws — and hands the
// scheduler explicit event lists, which keeps every process imaginable
// expressible without scheduler changes.
type EpochEvent struct {
	// Dt is the continuous time this epoch advances the scenario clock
	// by (epochs are the discrete steps of a continuous-time process;
	// rates are per unit time).
	Dt float64
	// Arrive lists clients starting a session: they become present, get
	// a fresh neighborhood, and carry D balls of demand.
	Arrive []int32
	// Depart lists clients ending their session.
	Depart []int32
	// Rewire lists present clients whose admissible edges churn this
	// epoch (without a session change).
	Rewire []int32
	// Fail and Recover list servers crashing and restarting (cold, with
	// zero load) this epoch.
	Fail    []int32
	Recover []int32
	// Demand lists present clients placing D fresh balls this epoch in
	// addition to the arrivals; RedemandAll is the shorthand for "every
	// present client" (the batch framing of E12/E15).
	Demand      []int32
	RedemandAll bool
}

// EpochOutcome records one epoch of the scenario.
type EpochOutcome struct {
	Epoch int
	// Time is the scenario clock after the epoch's Dt was applied.
	Time float64
	// Population and churn counters.
	Arrived        int
	Departed       int
	Rewired        int
	PresentClients int
	FailedServers  int
	LiveServers    int
	// DemandBalls is the number of balls injected this epoch (arrivals
	// and demand clients × D, plus re-injected balls); ReinjectedBalls
	// is the re-injected share of it.
	DemandBalls     int
	ReinjectedBalls int
	// BurnedAtStart counts live servers whose carried load already
	// reached the capacity when the epoch's run started.
	BurnedAtStart int
	// Protocol outcome of the epoch's run.
	Rounds          int
	Completed       bool
	MaxLoad         int
	MeanLoad        float64
	UnassignedBalls int
	// PerRound is the protocol's per-round series (nil unless
	// SchedulerConfig.TrackRounds).
	PerRound []core.RoundStats
}

// Scheduler drives a continuous-time epoch loop over one churn Topology
// and one reused core.Runner: per epoch it expires carried load, applies
// the event's churn to the topology (O(changed) mutations), assembles
// the demand, and runs the protocol via PatchTopology + Reseed on the
// sharded pipeline. The whole scenario is deterministic in (topology
// seed, scheduler seed, event sequence) and bit-for-bit independent of
// the worker count, shard count, engine mode and topology backend.
type Scheduler struct {
	topo *Topology
	cfg  SchedulerConfig
	exec Executor
	d    int
	// loads and reqs are aliased into the executor's configuration
	// (InitialLoads/RequestCounts), so each epoch's run picks up the
	// carried loads and demand in place.
	loads []int
	reqs  []int
	// seq draws the per-epoch protocol seeds and the deterministic
	// redistribution offsets.
	seq      *rng.Source
	epoch    int
	now      float64
	pending  int // balls awaiting re-injection (PolicyReinject)
	capacity int
	presBuf  []int32
	tel      *schedTel
}

// NewScheduler returns a Scheduler for topo. The seed determines the
// per-epoch protocol seeds (the topology carries its own seed).
func NewScheduler(topo *Topology, cfg SchedulerConfig, seed uint64) (*Scheduler, error) {
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, err
	}
	if cfg.LoadExpiry < 0 || cfg.LoadExpiry > 1 {
		return nil, fmt.Errorf("churn: LoadExpiry must be in [0,1], got %v", cfg.LoadExpiry)
	}
	s := &Scheduler{
		topo:     topo,
		cfg:      cfg,
		d:        cfg.Protocol.D,
		loads:    make([]int, topo.NumServers()),
		reqs:     make([]int, topo.NumClients()),
		seq:      rng.New(seed ^ 0xc5ee71a52d9c0d4b),
		capacity: cfg.Protocol.Params().Capacity(),
		tel:      newSchedTel(cfg.Telemetry, cfg.Policy),
	}
	proto := cfg.Protocol
	proto.InitialLoads = s.loads
	proto.RequestCounts = s.reqs
	proto.TrackLoads = true
	proto.TrackRounds = cfg.TrackRounds
	if cfg.NewExecutor != nil {
		exec, err := cfg.NewExecutor(topo, proto)
		if err != nil {
			return nil, err
		}
		s.exec = exec
	} else {
		s.exec = &localExecutor{topo: topo, cfg: proto}
	}
	return s, nil
}

// Epoch returns the number of epochs stepped so far.
func (s *Scheduler) Epoch() int { return s.epoch }

// Now returns the scenario clock.
func (s *Scheduler) Now() float64 { return s.now }

// PendingReinjections returns the balls still awaiting re-injection.
func (s *Scheduler) PendingReinjections() int { return s.pending }

// Loads returns the carried per-server loads (aliasing; read-only).
func (s *Scheduler) Loads() []int { return s.loads }

// Step executes one epoch: expiry → failures/recoveries → population
// and edge churn → demand assembly → protocol run on the patched
// topology.
func (s *Scheduler) Step(e EpochEvent) (*EpochOutcome, error) {
	s.epoch++
	s.now += e.Dt
	epoch := s.epoch

	// 1. A fraction of every live server's carried load expires.
	if s.cfg.LoadExpiry > 0 {
		for u := range s.loads {
			if s.loads[u] > 0 && !s.topo.FailedServer(u) {
				s.loads[u] -= int(float64(s.loads[u]) * s.cfg.LoadExpiry)
			}
		}
	}

	// 2. Failures release the crashed servers' carried load per policy.
	released := 0
	if len(e.Fail) > 0 {
		for _, u := range e.Fail {
			if !s.topo.FailedServer(int(u)) {
				released += s.loads[u]
				s.loads[u] = 0
			}
		}
		if err := s.topo.FailServers(e.Fail); err != nil {
			return nil, err
		}
		switch s.cfg.Policy {
		case PolicyReinject:
			s.pending += released
		case PolicySaturate:
			// Spread the released balls round-robin over the survivors,
			// starting at a deterministic offset so no server is
			// systematically preferred across waves.
			live := s.topo.LiveServers()
			if released > 0 && len(live) > 0 {
				off := s.seq.Intn(len(live))
				for i := 0; i < released; i++ {
					s.loads[live[(off+i)%len(live)]]++
				}
			}
		}
	}

	// 3. Recoveries: servers restart cold (zero load, unburned).
	if len(e.Recover) > 0 {
		s.topo.RecoverServers(e.Recover)
		for _, u := range e.Recover {
			s.loads[u] = 0
		}
	}

	// 4. Population changes and edge churn.
	s.topo.Depart(e.Depart)
	s.topo.Arrive(epoch, e.Arrive)
	s.topo.Rewire(epoch, e.Rewire)

	// 5. Demand assembly: arrivals and demand clients place D balls
	// each; re-injected balls fill present clients' spare capacity.
	clear(s.reqs)
	demand := 0
	if e.RedemandAll {
		for v := range s.reqs {
			if s.topo.Present(v) {
				s.reqs[v] = s.d
				demand += s.d
			}
		}
	} else {
		for _, v := range e.Arrive {
			if s.reqs[v] == 0 {
				s.reqs[v] = s.d
				demand += s.d
			}
		}
		for _, v := range e.Demand {
			if s.reqs[v] == 0 && s.topo.Present(int(v)) {
				s.reqs[v] = s.d
				demand += s.d
			}
		}
	}
	reinjected := s.distributePending()
	demand += reinjected
	s.tel.countEpoch(&e, released, reinjected)

	burnedAtStart := 0
	for u, l := range s.loads {
		if l >= s.capacity && !s.topo.FailedServer(u) {
			burnedAtStart++
		}
	}

	// 6. Protocol run on the mutated topology, through the executor.
	res, err := s.exec.RunEpoch(s.seq.Uint64())
	if err != nil {
		return nil, err
	}
	copy(s.loads, res.Loads)

	out := &EpochOutcome{
		Epoch:           epoch,
		Time:            s.now,
		Arrived:         len(e.Arrive),
		Departed:        len(e.Depart),
		Rewired:         len(e.Rewire) + len(e.Arrive),
		PresentClients:  s.topo.NumPresent(),
		FailedServers:   s.topo.NumFailed(),
		LiveServers:     len(s.topo.LiveServers()),
		DemandBalls:     demand,
		ReinjectedBalls: reinjected,
		BurnedAtStart:   burnedAtStart,
		Rounds:          res.Rounds,
		Completed:       res.Completed,
		MaxLoad:         res.MaxLoad,
		MeanLoad:        res.MeanLoad,
		UnassignedBalls: res.UnassignedBalls,
	}
	if s.cfg.TrackRounds {
		out.PerRound = append([]core.RoundStats(nil), res.PerRound...)
	}
	return out, nil
}

// distributePending re-issues pending balls through present clients'
// spare request capacity (a client can carry at most D balls per epoch —
// the protocol's contract), round-robin from a deterministic offset.
// Whatever does not fit stays pending for the next epoch.
func (s *Scheduler) distributePending() int {
	if s.pending == 0 {
		return 0
	}
	s.presBuf = s.topo.AppendPresentClients(s.presBuf[:0])
	if len(s.presBuf) == 0 {
		return 0
	}
	off := s.seq.Intn(len(s.presBuf))
	given := 0
	for i := 0; i < len(s.presBuf) && s.pending > 0; i++ {
		v := s.presBuf[(off+i)%len(s.presBuf)]
		free := s.d - s.reqs[v]
		if free <= 0 {
			continue
		}
		if free > s.pending {
			free = s.pending
		}
		s.reqs[v] += free
		s.pending -= free
		given += free
	}
	return given
}

// SamplePresent draws k distinct present clients uniformly from src
// (deterministic helper for scenario processes: churn subsets, demand
// subsets, departure picks). k is clamped to the present count.
func (t *Topology) SamplePresent(src *rng.Source, k int) []int32 {
	return samplePool(src, t.AppendPresentClients(nil), k)
}

// SampleAbsent draws k distinct absent clients (free session slots) from
// src, clamped to the absent count — the arrival helper.
func (t *Topology) SampleAbsent(src *rng.Source, k int) []int32 {
	pool := make([]int32, 0, t.n-t.numPresent)
	for v := 0; v < t.n; v++ {
		if !t.present[v] {
			pool = append(pool, int32(v))
		}
	}
	return samplePool(src, pool, k)
}

// SampleLive draws k distinct live servers from src, clamped to one less
// than the live count (so a failure wave can never fail every server).
func (t *Topology) SampleLive(src *rng.Source, k int) []int32 {
	pool := append([]int32(nil), t.live...)
	if k >= len(pool) {
		k = len(pool) - 1
	}
	return samplePool(src, pool, k)
}

func samplePool(src *rng.Source, pool []int32, k int) []int32 {
	if k > len(pool) {
		k = len(pool)
	}
	if k <= 0 {
		return nil
	}
	out := make([]int32, 0, k)
	for _, i := range src.Sample(len(pool), k) {
		out = append(out, pool[i])
	}
	return out
}
