package churn

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/rng"
)

// Backend selects how a Topology stores its rewired rows. Both backends
// produce the identical edge multiset in the identical per-client order
// for the same mutation history, so protocol results are bit-for-bit
// independent of the choice (the equivalence tests sweep it).
type Backend int

const (
	// BackendImplicit stores only the per-client rewire epoch and
	// regenerates rewired rows on demand from their (epoch, client)
	// stream — O(1) state per churned client, the churn counterpart of
	// the implicit topologies in internal/gen.
	BackendImplicit Backend = iota
	// BackendCSRPatch materializes rewired rows into a compacting patch
	// arena (see rowPatch): updates cost O(row) words but reads are a
	// plain copy instead of a resample, the right trade when rows are
	// read many times per epoch (expensive samplers, many rounds).
	BackendCSRPatch
)

// String returns the backend's CLI spelling.
func (b Backend) String() string {
	switch b {
	case BackendImplicit:
		return "implicit"
	case BackendCSRPatch:
		return "csr-patch"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Sampler regenerates a client's admissible row for a rewire epoch. Row
// must be a pure function of (epochSeed, v): it must append to buf
// (never alias internal storage), always produce the same sequence for
// the same inputs, and never produce an empty row — the per-client
// stream is derived from epochSeed via rng.StreamAt, so regeneration is
// O(row) with no shared state. MaxDegree bounds the length of any row
// the sampler can produce (it sizes scratch buffers).
type Sampler struct {
	Row func(epochSeed uint64, v int, buf []int32) []int32
	// At returns Row(epochSeed, v, nil)[i] in O(1) without producing the
	// rest of the row, and Degree returns that row's length in O(1).
	// Both are optional: when either is nil, the implicit backend
	// reports CanPointQuery() == false and the engines fall back to
	// whole-row regeneration (the CSR-patch backend answers from its
	// arena and never needs them). When set, they must agree exactly
	// with Row — the equivalence suites sweep both access paths.
	At     func(epochSeed uint64, v, i int) int32
	Degree func(epochSeed uint64, v int) int

	MaxDegree int
}

// TrustSampler rewires a client to k servers drawn without replacement
// from [0, numServers) — the trust-subset family's row, regenerated
// through the O(k) Feistel partial shuffle in internal/gen.
func TrustSampler(numServers, k int) Sampler {
	return Sampler{
		Row: func(epochSeed uint64, v int, buf []int32) []int32 {
			s := rng.StreamAt(epochSeed, v)
			return gen.SampleRow(&s, numServers, k, buf)
		},
		// A rewired row is a k-prefix partial shuffle, so entry i is one
		// Feistel image and the degree is the constant k.
		At: func(epochSeed uint64, v, i int) int32 {
			s := rng.StreamAt(epochSeed, v)
			return gen.SampleAt(&s, numServers, i)
		},
		Degree:    func(uint64, int) int { return k },
		MaxDegree: k,
	}
}

// ErdosRenyiSampler rewires a client to each server independently with
// probability p (ascending order, with the ensure-clients fallback edge
// so rows are never empty), via the skip-sampling row shared with
// gen.ErdosRenyiImplicit.
func ErdosRenyiSampler(numServers int, p float64) Sampler {
	return Sampler{
		Row: func(epochSeed uint64, v int, buf []int32) []int32 {
			s := rng.StreamAt(epochSeed, v)
			return gen.ErdosRenyiRow(&s, numServers, p, true, buf)
		},
		MaxDegree: numServers,
	}
}

// Config declares a churn Topology.
type Config struct {
	// Base is the epoch-0 graph; clients that are never rewired keep
	// reading their base rows through it.
	Base bipartite.Topology
	// Sampler regenerates rewired rows.
	Sampler Sampler
	// Seed keys the per-(epoch, client) rewiring streams and the
	// failed-neighborhood fallback edges.
	Seed uint64
	// Backend selects the rewired-row storage.
	Backend Backend
}

// Topology is a mutable, versioned client–server adjacency: a base
// bipartite.Topology plus an O(changed)-cost mutation layer — per-client
// edge rewiring, client arrival/departure, server failure/recovery. It
// implements bipartite.Topology (and bipartite.Versioned), so the
// protocol engines run on it directly; every mutation bumps the version,
// which is what the Runner's version-keyed caches (frontier row cache,
// route lanes) invalidate against via Runner.PatchTopology.
//
// Concurrency: reads (the bipartite.Topology methods) are safe from
// multiple goroutines, as the engines require. Mutations are not — they
// must happen between protocol runs, on one goroutine (the Scheduler's
// epoch loop does exactly that), and they invalidate any row slice a
// previous read returned.
type Topology struct {
	base bipartite.Topology
	// baseCSR is non-nil when base is a materialized graph, whose
	// AppendClientNeighbors would alias internal storage on an empty
	// buffer — churn reads copy its rows instead (see the no-alias
	// guarantee on AppendClientNeighbors).
	baseCSR *bipartite.Graph
	// basePQ is base's point-query view when base implements
	// bipartite.PointQueryable (fixed at construction; its CanPointQuery
	// is re-checked per call since a versioned base may flip).
	basePQ  bipartite.PointQueryable
	sampler Sampler
	seed    uint64
	backend Backend
	n, m    int

	version uint64

	// rewired[v] is the epoch client v's row was last rewired at, or -1
	// when v still reads its base row.
	rewired []int32
	// patch stores the rewired rows for BackendCSRPatch (nil otherwise).
	patch *rowPatch

	present    []bool
	numPresent int

	failed    []bool
	numFailed int
	// live lists the non-failed servers ascending; it is rebuilt on
	// every failure/recovery batch (mutation time, never read time) and
	// backs the deterministic fallback edge of fully-failed rows.
	live []int32

	maxDeg int
}

var (
	_ bipartite.Topology  = (*Topology)(nil)
	_ bipartite.Versioned = (*Topology)(nil)
)

// Salts decorrelating the topology's derived stream families.
const (
	epochSeedSalt = 0x7c1592a6d3e48b19
	fallbackSalt  = 0x3b97f4a7c159e377
)

// New returns a churn Topology over cfg.Base with every client present,
// every server live, and no row rewired.
func New(cfg Config) (*Topology, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("churn: Config.Base is nil")
	}
	if err := cfg.Base.Validate(); err != nil {
		return nil, fmt.Errorf("churn: invalid base topology: %w", err)
	}
	if cfg.Sampler.Row == nil || cfg.Sampler.MaxDegree < 1 {
		return nil, fmt.Errorf("churn: Config.Sampler needs a Row function and MaxDegree >= 1")
	}
	if cfg.Backend != BackendImplicit && cfg.Backend != BackendCSRPatch {
		return nil, fmt.Errorf("churn: unknown backend %d", int(cfg.Backend))
	}
	n := cfg.Base.NumClients()
	m := cfg.Base.NumServers()
	baseCSR, _ := cfg.Base.(*bipartite.Graph)
	basePQ, _ := cfg.Base.(bipartite.PointQueryable)
	t := &Topology{
		base:       cfg.Base,
		baseCSR:    baseCSR,
		basePQ:     basePQ,
		sampler:    cfg.Sampler,
		seed:       cfg.Seed,
		backend:    cfg.Backend,
		n:          n,
		m:          m,
		rewired:    make([]int32, n),
		present:    make([]bool, n),
		numPresent: n,
		failed:     make([]bool, m),
		live:       make([]int32, m),
		maxDeg:     max(cfg.Base.MaxClientDegree(), cfg.Sampler.MaxDegree),
	}
	for v := range t.rewired {
		t.rewired[v] = -1
		t.present[v] = true
	}
	for u := range t.live {
		t.live[u] = int32(u)
	}
	if cfg.Backend == BackendCSRPatch {
		t.patch = newRowPatch(n)
	}
	return t, nil
}

// NumClients returns the number of client slots (present or not).
func (t *Topology) NumClients() int { return t.n }

// NumServers returns the number of servers (live or failed).
func (t *Topology) NumServers() int { return t.m }

// TopologyVersion returns the mutation counter (bipartite.Versioned).
func (t *Topology) TopologyVersion() uint64 { return t.version }

// EpochSeed derives the seed of epoch's rewiring stream family: rewired
// client v's row is Sampler.Row(EpochSeed(epoch), v, …), a pure function
// of (Seed, epoch, v) — which is what makes a mutation history
// replayable and the two backends bit-for-bit interchangeable.
func (t *Topology) EpochSeed(epoch int) uint64 {
	sm := (t.seed ^ epochSeedSalt) + uint64(epoch)*0x9e3779b97f4a7c15
	return rng.SplitMix64(&sm)
}

// MaxClientDegree returns an upper bound on the client degrees: the
// maximum of the base bound and the sampler bound (failure filtering
// only shrinks rows). The protocol engines use it to size scratch
// buffers, for which a bound is exactly as good as the maximum.
func (t *Topology) MaxClientDegree() int { return t.maxDeg }

// ClientDegree returns |N(v)|. With no failures active every branch is
// O(1) modulo the base topology's own degree cost (the patch arena and
// the samplers both know their row lengths); under failures the row is
// regenerated and filtered, costing O(Δ).
func (t *Topology) ClientDegree(v int) int {
	if t.numFailed == 0 {
		e := t.rewired[v]
		if e < 0 {
			return t.base.ClientDegree(v)
		}
		if t.patch != nil {
			row, _ := t.patch.row(v)
			return len(row)
		}
		if t.sampler.Degree != nil {
			return t.sampler.Degree(t.EpochSeed(int(e)), v)
		}
	}
	return len(t.AppendClientNeighbors(v, make([]int32, 0, t.maxDeg)))
}

// CanPointQuery reports whether NeighborAt currently honors the
// bipartite.PointQueryable contract: no failures may be active (failure
// filtering makes entry i a function of the whole row), the base must
// answer point queries for never-rewired clients, and rewired rows must
// be answerable either from the patch arena (CSR-patch backend) or
// through the sampler's At/Degree (implicit backend). Failures and
// recoveries bump the version, so engines that cached a point-query
// view re-derive it exactly when queryability can have flipped.
func (t *Topology) CanPointQuery() bool {
	if t.numFailed > 0 {
		return false
	}
	if t.basePQ == nil || !t.basePQ.CanPointQuery() {
		return false
	}
	if t.patch == nil && (t.sampler.At == nil || t.sampler.Degree == nil) {
		return false
	}
	return true
}

// NeighborAt returns the i-th entry of client v's current row in O(1):
// the patch arena row in place (no copy, no resample — the CSR-patch
// backend's dense rounds read each patched row `rounds·d` times through
// here), one sampler Feistel image (implicit backend), or the base
// topology's own point query. It must only be called while
// CanPointQuery reports true.
func (t *Topology) NeighborAt(v, i int) int32 {
	if e := t.rewired[v]; e >= 0 {
		if t.patch != nil {
			row, _ := t.patch.row(v)
			return row[i]
		}
		return t.sampler.At(t.EpochSeed(int(e)), v, i)
	}
	return t.basePQ.NeighborAt(v, i)
}

var _ bipartite.PointQueryable = (*Topology)(nil)

// Validate answers from construction-time and mutation-time guarantees
// in O(1): the base graph was validated at construction, samplers never
// produce empty rows, failure filtering falls back to a live server when
// it would empty a row, and FailServers refuses to fail the last server.
func (t *Topology) Validate() error {
	if t.n <= 0 || t.m <= 0 {
		return bipartite.ErrEmptyGraph
	}
	if t.numFailed >= t.m {
		return fmt.Errorf("churn: all %d servers failed", t.m)
	}
	return nil
}

// AppendClientNeighbors appends client v's current row to buf: the base
// or rewired row with failed servers filtered out, falling back to one
// deterministic live server when the whole neighborhood is failed.
//
// Unlike materialized graphs, a churn Topology never returns an
// aliasing view of its storage, even for an empty buf: the protocol
// engines feed a returned row back as the next call's scratch buffer,
// and an aliased view would let that append write straight through into
// the patch arena or the base CSR arrays. Rows stored explicitly are
// therefore copied into buf (the copy is the CSR-patch read cost; the
// implicit backend resamples into buf anyway).
func (t *Topology) AppendClientNeighbors(v int, buf []int32) []int32 {
	start := len(buf)
	if e := t.rewired[v]; e >= 0 {
		if t.patch != nil {
			prow, _ := t.patch.row(v)
			if t.numFailed == 0 {
				return append(buf, prow...)
			}
			for _, u := range prow {
				if !t.failed[u] {
					buf = append(buf, u)
				}
			}
			return t.withFallback(v, buf, start)
		}
		buf = t.sampler.Row(t.EpochSeed(int(e)), v, buf)
	} else if t.baseCSR != nil {
		nbrs := t.baseCSR.ClientNeighbors(v)
		if t.numFailed == 0 {
			return append(buf, nbrs...)
		}
		for _, u := range nbrs {
			if !t.failed[u] {
				buf = append(buf, u)
			}
		}
		return t.withFallback(v, buf, start)
	} else {
		// Non-CSR bases (gen.Implicit, another churn Topology) append
		// into buf by construction, so the no-alias guarantee holds.
		buf = t.base.AppendClientNeighbors(v, buf)
	}
	if t.numFailed == 0 {
		return buf
	}
	// Filter the appended row in place: the write cursor never passes
	// the read cursor because entries are only dropped.
	out := buf[:start]
	for _, u := range buf[start:] {
		if !t.failed[u] {
			out = append(out, u)
		}
	}
	return t.withFallback(v, out, start)
}

// withFallback guarantees a non-empty row: when failure filtering left
// buf[start:] empty, a fallback edge to a deterministic live server is
// appended — the client keeps exactly one admissible (if likely
// overloaded) server, mirroring the ensure-clients rule of the
// Erdős–Rényi generators.
func (t *Topology) withFallback(v int, buf []int32, start int) []int32 {
	if len(buf) > start {
		return buf
	}
	s := rng.StreamAt(t.seed^fallbackSalt, v)
	return append(buf, t.live[s.Intn(len(t.live))])
}

// ---------------------------------------------------------------------------
// Mutations. All of them are O(changed) (plus an O(m) live-list rebuild
// on failure/recovery batches), bump the version once per call, and must
// not run concurrently with reads.

// Rewire replaces each listed client's row with a fresh sample from the
// epoch's stream family. Implicit backend: O(1) per client (the epoch
// mark); CSR-patch backend: O(row) per client (the arena write).
func (t *Topology) Rewire(epoch int, clients []int32) {
	if len(clients) == 0 {
		return
	}
	t.version++
	if t.patch == nil {
		for _, v := range clients {
			t.rewired[v] = int32(epoch)
		}
		return
	}
	epochSeed := t.EpochSeed(epoch)
	buf := make([]int32, 0, t.sampler.MaxDegree)
	for _, v := range clients {
		t.rewired[v] = int32(epoch)
		buf = t.sampler.Row(epochSeed, int(v), buf[:0])
		t.patch.set(v, buf)
	}
}

// RewireAll rewires every client slot: after it, the graph is exactly
// the from-scratch graph of the epoch's sampler family (the
// ChurnFraction = 1 cross-check pins this).
func (t *Topology) RewireAll(epoch int) {
	all := make([]int32, t.n)
	for v := range all {
		all[v] = int32(v)
	}
	t.Rewire(epoch, all)
}

// Arrive marks the listed clients present and rewires them: a new
// session starts with a fresh admissible neighborhood. Arriving an
// already-present client restarts its session.
func (t *Topology) Arrive(epoch int, clients []int32) {
	for _, v := range clients {
		if !t.present[v] {
			t.present[v] = true
			t.numPresent++
		}
	}
	t.Rewire(epoch, clients)
}

// Depart marks the listed clients absent. Their rows stay readable (the
// engines skip them through zero request counts), so departure costs
// O(clients) regardless of degree.
func (t *Topology) Depart(clients []int32) {
	if len(clients) == 0 {
		return
	}
	t.version++
	for _, v := range clients {
		if t.present[v] {
			t.present[v] = false
			t.numPresent--
		}
	}
}

// FailServers marks the listed servers failed: their edges are filtered
// out of every row at read time, so the mutation itself is O(servers)
// plus the O(m) live-list rebuild. Failing every server is refused.
func (t *Topology) FailServers(servers []int32) error {
	if len(servers) == 0 {
		return nil
	}
	newly := 0
	for _, u := range servers {
		if !t.failed[u] {
			newly++
		}
	}
	if t.numFailed+newly >= t.m {
		return fmt.Errorf("churn: failing %d servers would fail all %d", newly, t.m)
	}
	t.version++
	for _, u := range servers {
		if !t.failed[u] {
			t.failed[u] = true
			t.numFailed++
		}
	}
	t.rebuildLive()
	return nil
}

// RecoverServers clears the failed mark of the listed servers; their
// edges reappear in every row that lists them.
func (t *Topology) RecoverServers(servers []int32) {
	if len(servers) == 0 {
		return
	}
	t.version++
	for _, u := range servers {
		if t.failed[u] {
			t.failed[u] = false
			t.numFailed--
		}
	}
	t.rebuildLive()
}

func (t *Topology) rebuildLive() {
	t.live = t.live[:0]
	for u := 0; u < t.m; u++ {
		if !t.failed[u] {
			t.live = append(t.live, int32(u))
		}
	}
}

// ---------------------------------------------------------------------------
// Queries.

// Present reports whether client v currently has a session.
func (t *Topology) Present(v int) bool { return t.present[v] }

// NumPresent returns the number of present clients.
func (t *Topology) NumPresent() int { return t.numPresent }

// AppendPresentClients appends the present clients to buf, ascending.
func (t *Topology) AppendPresentClients(buf []int32) []int32 {
	for v := 0; v < t.n; v++ {
		if t.present[v] {
			buf = append(buf, int32(v))
		}
	}
	return buf
}

// FailedServer reports whether server u is currently failed.
func (t *Topology) FailedServer(u int) bool { return t.failed[u] }

// NumFailed returns the number of failed servers.
func (t *Topology) NumFailed() int { return t.numFailed }

// LiveServers returns the live servers ascending. The slice aliases the
// topology's state: read-only, valid until the next failure/recovery.
func (t *Topology) LiveServers() []int32 { return t.live }

// RewireEpoch returns the epoch client v was last rewired at, or -1.
func (t *Topology) RewireEpoch(v int) int { return int(t.rewired[v]) }

// String returns a short human-readable summary.
func (t *Topology) String() string {
	return fmt.Sprintf("churn{%s clients=%d(present %d) servers=%d(failed %d) version=%d}",
		t.backend, t.n, t.numPresent, t.m, t.numFailed, t.version)
}
