package churn

import (
	"fmt"

	"repro/internal/telemetry"
)

// schedTel bundles the scenario-level instruments a Scheduler bumps once
// per epoch: the epoch counter, the churn mutation counters, and the
// failed-load policy counter (labeled with the configured policy, so a
// drop scenario and a reinject scenario stay distinct series under one
// registry). A nil *schedTel is the disabled state; Step guards every
// touch with one nil test. The protocol runs inside each epoch carry
// their own instruments via SchedulerConfig.Protocol.Telemetry.
type schedTel struct {
	epochs     *telemetry.Counter
	arrivals   *telemetry.Counter
	departures *telemetry.Counter
	rewires    *telemetry.Counter
	fails      *telemetry.Counter
	recovers   *telemetry.Counter
	// policyBalls counts the balls released by server failures and handled
	// under the configured policy (dropped, queued for re-injection, or
	// pushed onto survivors).
	policyBalls *telemetry.Counter
	// reinjected counts the balls actually re-issued through present
	// clients' spare capacity (PolicyReinject's delivery side).
	reinjected *telemetry.Counter
}

func newSchedTel(reg *telemetry.Registry, policy Policy) *schedTel {
	if reg == nil {
		return nil
	}
	return &schedTel{
		epochs:      reg.Counter("saer_churn_epochs_total"),
		arrivals:    reg.Counter("saer_churn_arrivals_total"),
		departures:  reg.Counter("saer_churn_departures_total"),
		rewires:     reg.Counter("saer_churn_rewires_total"),
		fails:       reg.Counter("saer_churn_server_failures_total"),
		recovers:    reg.Counter("saer_churn_server_recoveries_total"),
		policyBalls: reg.Counter(fmt.Sprintf(`saer_churn_policy_balls_total{policy="%s"}`, policy)),
		reinjected:  reg.Counter("saer_churn_reinjected_balls_total"),
	}
}

// countEpoch records one epoch's churn volumes.
func (t *schedTel) countEpoch(e *EpochEvent, released, reinjected int) {
	if t == nil {
		return
	}
	t.epochs.Inc(0)
	t.arrivals.Add(0, int64(len(e.Arrive)))
	t.departures.Add(0, int64(len(e.Depart)))
	t.rewires.Add(0, int64(len(e.Rewire)))
	t.fails.Add(0, int64(len(e.Fail)))
	t.recovers.Add(0, int64(len(e.Recover)))
	t.policyBalls.Add(0, int64(released))
	t.reinjected.Add(0, int64(reinjected))
}
