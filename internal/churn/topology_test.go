package churn

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func mustTrustBase(t *testing.T, n, m, k int, seed uint64) *gen.Implicit {
	t.Helper()
	base, err := gen.TrustSubsetImplicit(n, m, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func mustTopology(t *testing.T, cfg Config) *Topology {
	t.Helper()
	topo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func backends() []Backend { return []Backend{BackendImplicit, BackendCSRPatch} }

// row reads client v's current row through the public contract.
func row(t *Topology, v int) []int32 {
	return append([]int32(nil), t.AppendClientNeighbors(v, nil)...)
}

// TestChurnBackendRowEquivalence applies the same mutation history to
// both backends and checks every row stays identical at every step —
// the storage is a pure representation knob, never an outcome knob.
func TestChurnBackendRowEquivalence(t *testing.T) {
	const n, m, k = 120, 100, 7
	mk := func(b Backend) *Topology {
		return mustTopology(t, Config{
			Base: mustTrustBase(t, n, m, k, 11), Sampler: TrustSampler(m, k), Seed: 42, Backend: b,
		})
	}
	a, b := mk(BackendImplicit), mk(BackendCSRPatch)
	check := func(stage string) {
		t.Helper()
		for v := 0; v < n; v++ {
			ra, rb := row(a, v), row(b, v)
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("%s: row %d diverges between backends: %v vs %v", stage, v, ra, rb)
			}
		}
	}
	check("initial")
	step := func(stage string, f func(*Topology)) {
		f(a)
		f(b)
		check(stage)
	}
	step("rewire", func(tp *Topology) { tp.Rewire(1, []int32{3, 7, 90, 3}) })
	step("fail", func(tp *Topology) {
		if err := tp.FailServers([]int32{0, 1, 2, 3, 4, 5, 50, 51}); err != nil {
			t.Fatal(err)
		}
	})
	step("rewire-under-failures", func(tp *Topology) { tp.Rewire(2, []int32{7, 8, 9}) })
	step("recover", func(tp *Topology) { tp.RecoverServers([]int32{2, 3, 50}) })
	step("rewire-again", func(tp *Topology) { tp.Rewire(5, []int32{3, 10, 11}) })
	if a.TopologyVersion() != b.TopologyVersion() {
		t.Fatalf("versions diverge: %d vs %d", a.TopologyVersion(), b.TopologyVersion())
	}
}

// TestChurnRewireAllEquivalence is the ChurnFraction = 1 cross-check:
// after rewiring every client at epoch e, the topology must describe
// exactly the from-scratch trust-subset graph seeded with EpochSeed(e) —
// row for row — and a protocol run on it must be bit-for-bit identical
// to a run on that fresh graph, for both backends.
func TestChurnRewireAllEquivalence(t *testing.T) {
	const n, m, k = 180, 160, 9
	for _, backend := range backends() {
		topo := mustTopology(t, Config{
			Base: mustTrustBase(t, n, m, k, 77), Sampler: TrustSampler(m, k), Seed: 5, Backend: backend,
		})
		// An intermediate history must not matter once everything rewires.
		topo.Rewire(1, []int32{0, 5, 17})
		topo.Rewire(2, []int32{5, 40})
		topo.RewireAll(9)
		fresh, err := gen.TrustSubsetImplicit(n, m, k, topo.EpochSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			got := row(topo, v)
			want := append([]int32(nil), fresh.AppendClientNeighbors(v, nil)...)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: row %d: got %v want %v", backend, v, got, want)
			}
		}
		p := core.Params{D: 2, C: 3, Seed: 999, Workers: 2}
		opts := core.Options{TrackRounds: true, TrackLoads: true}
		onChurn, err := core.Run(topo, core.SAER, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		onFresh, err := core.Run(fresh, core.SAER, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(onChurn, onFresh) {
			t.Fatalf("%v: run on fully-rewired topology diverges from run on the fresh graph", backend)
		}
	}
}

// TestChurnFailureFilterAndFallback pins the failure semantics: failed
// servers vanish from rows (order preserved), a fully-failed
// neighborhood falls back to exactly one live server, and recovery
// restores the original row.
func TestChurnFailureFilterAndFallback(t *testing.T) {
	const n, m, k = 40, 10, 3
	for _, backend := range backends() {
		topo := mustTopology(t, Config{
			Base: mustTrustBase(t, n, m, k, 3), Sampler: TrustSampler(m, k), Seed: 8, Backend: backend,
		})
		v := 13
		topo.Rewire(1, []int32{int32(v)}) // exercise the rewired path too
		orig := row(topo, v)
		if len(orig) != k {
			t.Fatalf("expected a %d-edge row, got %v", k, orig)
		}
		// Partial failure: drop the middle neighbor only.
		if err := topo.FailServers([]int32{orig[1]}); err != nil {
			t.Fatal(err)
		}
		got := row(topo, v)
		want := []int32{orig[0], orig[2]}
		if orig[0] == orig[1] || orig[2] == orig[1] { // parallel edges to the failed server
			want = nil
			for _, u := range orig {
				if u != orig[1] {
					want = append(want, u)
				}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: filtered row %v, want %v", backend, got, want)
		}
		// Total failure of the neighborhood: fallback to one live server.
		rest := []int32{}
		for _, u := range orig {
			if u != orig[1] {
				rest = append(rest, u)
			}
		}
		if err := topo.FailServers(rest); err != nil {
			t.Fatal(err)
		}
		got = row(topo, v)
		if len(got) != 1 || topo.FailedServer(int(got[0])) {
			t.Fatalf("%v: fallback row %v is not a single live server", backend, got)
		}
		if d := topo.ClientDegree(v); d != 1 {
			t.Fatalf("%v: ClientDegree %d disagrees with fallback row", backend, d)
		}
		// Recovery restores the original row exactly.
		topo.RecoverServers(append(rest, orig[1]))
		if got := row(topo, v); !reflect.DeepEqual(got, orig) {
			t.Fatalf("%v: row after recovery %v, want %v", backend, got, orig)
		}
	}
}

// TestChurnFailAllRefused guards the last-server invariant.
func TestChurnFailAllRefused(t *testing.T) {
	topo := mustTopology(t, Config{
		Base: mustTrustBase(t, 10, 4, 2, 1), Sampler: TrustSampler(4, 2), Seed: 1, Backend: BackendImplicit,
	})
	if err := topo.FailServers([]int32{0, 1, 2, 3}); err == nil {
		t.Fatal("failing every server was accepted")
	}
	if err := topo.FailServers([]int32{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := topo.FailServers([]int32{3}); err == nil {
		t.Fatal("failing the last live server was accepted")
	}
	if topo.NumFailed() != 3 {
		t.Fatalf("refused batch mutated state: %d failed", topo.NumFailed())
	}
}

// TestChurnPresence pins arrival/departure bookkeeping: presence counts,
// fresh rows on arrival, and version bumps on every mutation.
func TestChurnPresence(t *testing.T) {
	const n, m, k = 30, 20, 4
	topo := mustTopology(t, Config{
		Base: mustTrustBase(t, n, m, k, 2), Sampler: TrustSampler(m, k), Seed: 7, Backend: BackendCSRPatch,
	})
	if topo.NumPresent() != n {
		t.Fatalf("expected all %d clients present, got %d", n, topo.NumPresent())
	}
	v0 := topo.TopologyVersion()
	topo.Depart([]int32{1, 2, 2, 5})
	if topo.NumPresent() != n-3 || topo.Present(2) || !topo.Present(3) {
		t.Fatalf("departure bookkeeping wrong: present=%d", topo.NumPresent())
	}
	baseRow := row(topo, 2)
	topo.Arrive(4, []int32{2})
	if !topo.Present(2) || topo.NumPresent() != n-2 {
		t.Fatal("arrival bookkeeping wrong")
	}
	if topo.RewireEpoch(2) != 4 {
		t.Fatalf("arrival did not rewire: epoch %d", topo.RewireEpoch(2))
	}
	if reflect.DeepEqual(row(topo, 2), baseRow) {
		t.Log("note: re-arrived client drew its base row again (possible but astronomically unlikely)")
	}
	if topo.TopologyVersion() == v0 {
		t.Fatal("mutations did not bump the version")
	}
	got := topo.AppendPresentClients(nil)
	if len(got) != topo.NumPresent() {
		t.Fatalf("AppendPresentClients returned %d of %d", len(got), topo.NumPresent())
	}
}

// TestRowPatchCompaction re-rewires the same clients many times and
// checks the patch arena stays proportional to the live patched edges
// instead of the full rewrite history.
func TestRowPatchCompaction(t *testing.T) {
	const n, m, k = 64, 64, 16
	topo := mustTopology(t, Config{
		Base: mustTrustBase(t, n, m, k, 6), Sampler: TrustSampler(m, k), Seed: 9, Backend: BackendCSRPatch,
	})
	clients := make([]int32, n)
	for v := range clients {
		clients[v] = int32(v)
	}
	for epoch := 1; epoch <= 200; epoch++ {
		topo.Rewire(epoch, clients)
	}
	live := n * k
	if w := topo.patch.words(); w > 2*live+compactMinWords {
		t.Fatalf("patch arena holds %d words for %d live edges after 200 full rewrites", w, live)
	}
	// Rows must survive compaction.
	fresh, err := gen.TrustSubsetImplicit(n, m, k, topo.EpochSeed(200))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		want := append([]int32(nil), fresh.AppendClientNeighbors(v, nil)...)
		if got := row(topo, v); !reflect.DeepEqual(got, want) {
			t.Fatalf("row %d corrupted by compaction: got %v want %v", v, got, want)
		}
	}
}

// TestChurnMaterializedBase runs the read path over a materialized CSR
// base (the aliasing AppendClientNeighbors case) with and without
// failures, against the implicit base as reference.
func TestChurnMaterializedBase(t *testing.T) {
	const n, m, k = 90, 80, 6
	impl := mustTrustBase(t, n, m, k, 21)
	csr, err := impl.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	a := mustTopology(t, Config{Base: impl, Sampler: TrustSampler(m, k), Seed: 4, Backend: BackendImplicit})
	b := mustTopology(t, Config{Base: csr, Sampler: TrustSampler(m, k), Seed: 4, Backend: BackendImplicit})
	step := func(f func(*Topology)) {
		f(a)
		f(b)
		for v := 0; v < n; v++ {
			if ra, rb := row(a, v), row(b, v); !reflect.DeepEqual(ra, rb) {
				t.Fatalf("row %d diverges between implicit and CSR base: %v vs %v", v, ra, rb)
			}
		}
	}
	step(func(*Topology) {})
	step(func(tp *Topology) { tp.Rewire(1, []int32{1, 2, 3}) })
	step(func(tp *Topology) {
		if err := tp.FailServers([]int32{5, 6, 7, 8, 9, 10}); err != nil {
			t.Fatal(err)
		}
	})
	// A scratch buffer with existing content must be appended to, not
	// overwritten, in both the aliasing and the filtering paths.
	buf := []int32{-7}
	got := b.AppendClientNeighbors(3, buf)
	if got[0] != -7 || len(got) < 2 {
		t.Fatalf("prefix of caller buffer clobbered: %v", got)
	}
}

// TestChurnSamplers sanity-checks the two rewiring samplers: pure
// functions of (epochSeed, v), correct degree, in-range values.
func TestChurnSamplers(t *testing.T) {
	const m = 50
	ts := TrustSampler(m, 5)
	er := ErdosRenyiSampler(m, 0.1)
	for _, s := range []Sampler{ts, er} {
		a := s.Row(123, 7, nil)
		b := s.Row(123, 7, nil)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("sampler is not a pure function of (epochSeed, v)")
		}
		if len(a) == 0 || len(a) > s.MaxDegree {
			t.Fatalf("row length %d outside (0, %d]", len(a), s.MaxDegree)
		}
		for _, u := range a {
			if u < 0 || int(u) >= m {
				t.Fatalf("out-of-range server %d", u)
			}
		}
		if reflect.DeepEqual(a, s.Row(124, 7, nil)) && len(a) > 2 {
			t.Fatal("distinct epoch seeds produced the same row")
		}
	}
	if got := ts.Row(9, 3, nil); len(got) != 5 {
		t.Fatalf("trust sampler degree %d, want 5", len(got))
	}
}
