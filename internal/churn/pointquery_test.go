package churn

import (
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
)

// checkPointQueries verifies the PointQueryable contract over the whole
// topology at its current version: every NeighborAt(v, i) equals the
// regenerated row's entry i and ClientDegree equals the row length.
func checkPointQueries(t *testing.T, stage string, topo *Topology) {
	t.Helper()
	if !topo.CanPointQuery() {
		t.Fatalf("%s: topology does not answer point queries", stage)
	}
	var buf []int32
	for v := 0; v < topo.NumClients(); v++ {
		buf = topo.AppendClientNeighbors(v, buf[:0])
		if got := topo.ClientDegree(v); got != len(buf) {
			t.Fatalf("%s: ClientDegree(%d) = %d, row length %d", stage, v, got, len(buf))
		}
		for i, want := range buf {
			if got := topo.NeighborAt(v, i); got != want {
				t.Fatalf("%s: NeighborAt(%d, %d) = %d, row[%d] = %d", stage, v, i, got, i, want)
			}
		}
	}
}

// TestChurnNeighborAtMatchesRow walks a mutation history on both
// backends and checks point queries against regenerated rows at every
// queryable stage: rewires keep the topology queryable (rewired clients
// answer through the epoch marks — patch arena or sampler Feistel
// image), failures make it report non-queryable (rows are filtered at
// read time), and recovery back to zero failures restores queryability.
func TestChurnNeighborAtMatchesRow(t *testing.T) {
	const n, m, k = 120, 100, 7
	for _, backend := range backends() {
		topo := mustTopology(t, Config{
			Base: mustTrustBase(t, n, m, k, 11), Sampler: TrustSampler(m, k), Seed: 42, Backend: backend,
		})
		checkPointQueries(t, "initial", topo)

		topo.Rewire(1, []int32{3, 7, 90, 3})
		checkPointQueries(t, "rewire", topo)

		topo.Rewire(2, []int32{7, 8, 9})
		checkPointQueries(t, "re-rewire", topo)

		if err := topo.FailServers([]int32{0, 1, 50}); err != nil {
			t.Fatal(err)
		}
		if topo.CanPointQuery() {
			t.Fatalf("%v: topology answers point queries under active failures", backend)
		}
		if bipartite.PointQuerier(topo) != nil {
			t.Fatalf("%v: PointQuerier returned a view under active failures", backend)
		}

		topo.RecoverServers([]int32{0, 1, 50})
		checkPointQueries(t, "recovered", topo)

		topo.RewireAll(9)
		checkPointQueries(t, "rewire-all", topo)
	}
}

// TestChurnPointQueryNeedsSamplerSupport pins the backend split: the
// implicit backend needs the sampler's At/Degree to answer point
// queries (the Erdős–Rényi skip-sampler has neither), while the
// CSR-patch backend answers from its arena regardless of the sampler.
func TestChurnPointQueryNeedsSamplerSupport(t *testing.T) {
	const n, m = 60, 50
	base := mustTrustBase(t, n, m, 5, 3)
	er := mustTopology(t, Config{
		Base: base, Sampler: ErdosRenyiSampler(m, 0.1), Seed: 9, Backend: BackendImplicit,
	})
	er.Rewire(1, []int32{2})
	if er.CanPointQuery() {
		t.Error("implicit backend with a sequential sampler answers point queries")
	}
	patched := mustTopology(t, Config{
		Base: base, Sampler: ErdosRenyiSampler(m, 0.1), Seed: 9, Backend: BackendCSRPatch,
	})
	patched.Rewire(1, []int32{2})
	checkPointQueries(t, "csr-patch with sequential sampler", patched)
}

// TestChurnPointQueryRunEquivalence is the engine-level contract under
// mutation: a Runner stepped across epochs with PatchTopology + Reseed
// — rewires, then a failure wave (point queries flip off, the engines
// must fall back to rows), then recovery (back on) — produces
// bit-for-bit the results of fresh runs on a materialized twin of each
// epoch's graph, for both backends.
func TestChurnPointQueryRunEquivalence(t *testing.T) {
	const n, m, k = 160, 140, 9
	p := core.Params{D: 2, C: 3, Seed: 777, Workers: 2}
	opts := core.Options{TrackRounds: true, TrackLoads: true}
	for _, backend := range backends() {
		topo := mustTopology(t, Config{
			Base: mustTrustBase(t, n, m, k, 13), Sampler: TrustSampler(m, k), Seed: 21, Backend: backend,
		})
		r, err := core.NewRunner(topo, core.SAER, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		step := func(stage string, mutate func()) {
			t.Helper()
			mutate()
			if err := r.PatchTopology(); err != nil {
				t.Fatal(err)
			}
			seed := p.Seed + topo.TopologyVersion()
			r.Reseed(seed)
			got := r.Run()
			twin, err := bipartite.Materialize(topo)
			if err != nil {
				t.Fatal(err)
			}
			pp := p
			pp.Seed = seed
			want, err := core.Run(twin, core.SAER, pp, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizedChurnResult(got), normalizedChurnResult(want)) {
				t.Fatalf("%v/%s: run on churn topology diverges from materialized twin", backend, stage)
			}
		}
		step("rewire", func() { topo.Rewire(1, []int32{0, 3, 70, 150}) })
		step("fail", func() {
			if err := topo.FailServers([]int32{4, 5, 6}); err != nil {
				t.Fatal(err)
			}
		})
		step("recover", func() { topo.RecoverServers([]int32{4, 5, 6}) })
		step("rewire-after-recover", func() { topo.Rewire(7, []int32{9, 10, 11}) })
	}
}

// normalizedChurnResult strips the worker count echoed in Params so
// runs with different worker counts compare bit-for-bit on everything
// else (the churn twin of internal/core's normalizedResult).
func normalizedChurnResult(res *core.Result) *core.Result {
	c := *res
	c.Params.Workers = 0
	return &c
}
