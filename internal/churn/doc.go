// Package churn is the dynamic-topology subsystem of the reproduction:
// it makes the client–server admissibility graph a first-class evolving
// object instead of something rebuilt from scratch whenever it changes.
//
// The paper's future-work section conjectures that SAER stays metastable
// when clients and servers come and go; experiment E12 historically
// approximated that by re-randomizing the whole graph between batches —
// an O(n·Δ) rebuild per step. This package replaces the rebuild with
// O(changed-edges) updates:
//
//   - Topology is a mutable, versioned bipartite.Topology layered over a
//     base graph. Per-client edge rewiring regenerates a client's row
//     from a deterministic per-(epoch, client) stream (the same
//     Feistel/rng.StreamAt machinery the implicit topologies in
//     internal/gen use), clients arrive and depart without touching the
//     rest of the graph, and servers fail and recover with their edges
//     filtered out of every row they appear in. Two backends store the
//     rewired rows: BackendImplicit keeps only the rewire epoch and
//     regenerates rows on demand (O(1) state per churned client), while
//     BackendCSRPatch materializes them into a compacting patch arena
//     (CSR-style row storage for the churned subset only). The two
//     backends describe the identical edge multiset in the identical
//     order, so protocol results are bit-for-bit independent of the
//     choice — the same contract the CSR/implicit twin representations
//     obey, extended to mutation histories.
//
//   - Scheduler drives a continuous-time epoch loop over the sharded
//     core.Runner pipeline: each epoch advances the clock, expires a
//     fraction of the carried load, applies the epoch's churn events
//     (arrivals, departures, rewires, failures, recoveries), assembles
//     the epoch's demand, and runs the protocol on the patched topology
//     via Runner.PatchTopology + Reseed — reusing one Runner and one
//     graph for the whole scenario. Failure policies decide what happens
//     to the load a failing server carried: drop it, re-inject it as new
//     demand, or push it onto the surviving servers.
//
// Experiments E15 (edge-churn-rate sweep), E16 (failure/recovery waves)
// and E17 (Poisson vs batch arrivals) are built on this package, and E12
// runs on it by default (its legacy full-rebuild path remains behind
// DynamicConfig.Rebuild).
package churn
