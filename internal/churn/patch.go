package churn

// rowPatch is the storage of the CSR-patch backend: the rewired rows —
// and only those — live in one contiguous arena with per-entry offsets,
// exactly like a CSR row block restricted to the churned clients.
// Re-rewiring a client appends a fresh entry and abandons the old one;
// the arena compacts itself once more than half of it is dead, so the
// storage stays proportional to the *live* patched edges while updates
// remain O(row) appends. Reads are safe from multiple goroutines; all
// mutations happen between protocol runs on the scheduler goroutine.
type rowPatch struct {
	// pos[v] is the index of client v's live entry, or -1.
	pos []int32
	// owner, start, end describe the entries: entry e holds
	// arena[start[e]:end[e]] and belongs to client owner[e]. An entry is
	// live iff pos[owner[e]] == e (re-rewiring re-points pos).
	owner []int32
	start []int32
	end   []int32
	arena []int32
	// garbage counts the arena words held by dead entries.
	garbage int
}

// compactMinWords keeps tiny patches from compacting over and over: the
// arena must hold at least this many dead words before a compaction is
// worth its copy.
const compactMinWords = 1 << 12

func newRowPatch(numClients int) *rowPatch {
	pos := make([]int32, numClients)
	for v := range pos {
		pos[v] = -1
	}
	return &rowPatch{pos: pos}
}

// row returns client v's patched row and whether one is stored. The
// returned slice aliases the arena and is read-only; it stays valid
// until the next mutation.
func (p *rowPatch) row(v int) ([]int32, bool) {
	e := p.pos[v]
	if e < 0 {
		return nil, false
	}
	return p.arena[p.start[e]:p.end[e]], true
}

// set stores row as client v's patched row, replacing any previous one.
func (p *rowPatch) set(v int32, row []int32) {
	if e := p.pos[v]; e >= 0 {
		p.garbage += int(p.end[e] - p.start[e])
		p.pos[v] = -1
	}
	if p.garbage > len(p.arena)/2 && p.garbage >= compactMinWords {
		p.compact()
	}
	e := int32(len(p.owner))
	p.owner = append(p.owner, v)
	p.start = append(p.start, int32(len(p.arena)))
	p.arena = append(p.arena, row...)
	p.end = append(p.end, int32(len(p.arena)))
	p.pos[v] = e
}

// words returns the number of arena words currently allocated (live +
// dead); tests use it to pin the compaction bound.
func (p *rowPatch) words() int { return len(p.arena) }

// compact rewrites the arena keeping only the live entries, in entry
// order (which preserves every live row's contents and resets the
// garbage count to zero).
func (p *rowPatch) compact() {
	liveWords := len(p.arena) - p.garbage
	arena := make([]int32, 0, liveWords)
	n := 0
	for e := range p.owner {
		v := p.owner[e]
		if p.pos[v] != int32(e) {
			continue // dead entry
		}
		s := int32(len(arena))
		arena = append(arena, p.arena[p.start[e]:p.end[e]]...)
		p.owner[n] = v
		p.start[n] = s
		p.end[n] = int32(len(arena))
		p.pos[v] = int32(n)
		n++
	}
	p.owner = p.owner[:n]
	p.start = p.start[:n]
	p.end = p.end[:n]
	p.arena = arena
	p.garbage = 0
}
