package churn

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

// scenarioConfig pins one execution configuration of the shared test
// scenario; the equivalence suite sweeps it.
type scenarioConfig struct {
	backend Backend
	workers int
	shards  int
	engine  core.EngineMode
	steal   core.StealMode
}

// runTestScenario executes the shared ten-epoch scenario — exercising
// every event type: rewires, failure and recovery waves, departures,
// arrivals, redemand epochs, demand subsets, re-injection — under the
// given execution configuration and returns the outcome series. The
// event construction draws from its own deterministic source and from
// topology state, both of which evolve identically for every
// configuration, so any divergence in the outcomes is a real
// determinism bug.
func runTestScenario(t *testing.T, sc scenarioConfig) []*EpochOutcome {
	t.Helper()
	const n, m, k = 300, 260, 9
	base, err := gen.TrustSubsetImplicit(n, m, k, 0xBA5E)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := New(Config{Base: base, Sampler: TrustSampler(m, k), Seed: 0x5EED, Backend: sc.backend})
	if err != nil {
		t.Fatal(err)
	}
	proto := core.NewConfig(core.SAER, 2, 3, 0)
	proto.Workers = sc.workers
	proto.Shards = sc.shards
	proto.Engine = sc.engine
	proto.Steal = sc.steal
	sch, err := NewScheduler(topo, SchedulerConfig{
		Protocol:   proto,
		LoadExpiry: 0.5, Policy: PolicyReinject, TrackRounds: true,
	}, 0x77)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	var failedWave []int32
	outs := make([]*EpochOutcome, 0, 10)
	for epoch := 1; epoch <= 10; epoch++ {
		ev := EpochEvent{Dt: 0.5}
		switch {
		case epoch%3 == 1:
			ev.RedemandAll = true
		default:
			ev.Demand = topo.SamplePresent(src, n/2)
		}
		ev.Rewire = topo.SamplePresent(src, n/5)
		switch epoch {
		case 2:
			ev.Depart = topo.SamplePresent(src, n/6)
		case 4:
			failedWave = topo.SampleLive(src, m/4)
			ev.Fail = failedWave
		case 6:
			ev.Recover = failedWave
			ev.Arrive = topo.SampleAbsent(src, n/8)
		}
		out, err := sch.Step(ev)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	return outs
}

// TestChurnSchedulerEquivalence is the churn subsystem's determinism
// contract: the shared scenario's outcome series — including per-round
// protocol series — must be bit-for-bit identical across topology
// backends × engine modes × worker counts × shard counts × steal
// schedules. The reference is the implicit backend on the dense
// single-worker unsharded static-schedule path.
func TestChurnSchedulerEquivalence(t *testing.T) {
	ref := runTestScenario(t, scenarioConfig{
		backend: BackendImplicit, workers: 1, shards: 1, engine: core.EngineDense, steal: core.StealOff,
	})
	for _, o := range ref {
		if o.Rounds == 0 && o.DemandBalls > 0 {
			t.Fatalf("reference scenario epoch %d ran no rounds for %d demand balls", o.Epoch, o.DemandBalls)
		}
	}
	workerCounts := []int{1, 2, 3}
	if p := runtime.GOMAXPROCS(0); p > 3 {
		workerCounts = append(workerCounts, p)
	}
	stealModes := []core.StealMode{core.StealAuto, core.StealOn, core.StealOff}
	for _, backend := range backends() {
		for _, engine := range []core.EngineMode{core.EngineDense, core.EngineSparse, core.EngineAuto} {
			for _, steal := range stealModes {
				for _, workers := range workerCounts {
					got := runTestScenario(t, scenarioConfig{backend: backend, workers: workers, shards: 1, engine: engine, steal: steal})
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("scenario diverges: backend=%v engine=%d workers=%d steal=%d", backend, engine, workers, steal)
					}
				}
				for _, shards := range []int{2, 3, 8} {
					got := runTestScenario(t, scenarioConfig{backend: backend, workers: 2, shards: shards, engine: engine, steal: steal})
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("scenario diverges: backend=%v engine=%d shards=%d steal=%d", backend, engine, shards, steal)
					}
				}
			}
		}
	}
}

// TestSchedulerPolicies pins the three failure policies' load
// accounting on a hand-sized scenario: drop loses the released balls,
// reinject turns them into demand, saturate pushes them onto survivors.
func TestSchedulerPolicies(t *testing.T) {
	const n, m, k = 80, 40, 5
	mk := func(policy Policy) (*Topology, *Scheduler) {
		base, err := gen.TrustSubsetImplicit(n, m, k, 100)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := New(Config{Base: base, Sampler: TrustSampler(m, k), Seed: 1, Backend: BackendImplicit})
		if err != nil {
			t.Fatal(err)
		}
		proto := core.NewConfig(core.SAER, 2, 4, 0)
		proto.Workers = 1
		sch, err := NewScheduler(topo, SchedulerConfig{Protocol: proto, Policy: policy}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return topo, sch
	}
	for _, policy := range []Policy{PolicyDrop, PolicyReinject, PolicySaturate} {
		topo, sch := mk(policy)
		if _, err := sch.Step(EpochEvent{Dt: 1, RedemandAll: true}); err != nil {
			t.Fatal(err)
		}
		carried := 0
		for _, l := range sch.Loads() {
			carried += l
		}
		if carried != n*2 {
			t.Fatalf("%v: epoch 1 placed %d balls, want %d", policy, carried, n*2)
		}
		wave := topo.SampleLive(rng.New(5), m/2)
		released := 0
		for _, u := range wave {
			released += sch.Loads()[u]
		}
		out, err := sch.Step(EpochEvent{Dt: 1, Fail: wave})
		if err != nil {
			t.Fatal(err)
		}
		switch policy {
		case PolicyDrop:
			if out.ReinjectedBalls != 0 || sch.PendingReinjections() != 0 {
				t.Fatalf("drop policy re-injected balls: %+v", out)
			}
		case PolicyReinject:
			if out.ReinjectedBalls+sch.PendingReinjections() != released {
				t.Fatalf("reinject policy lost balls: reinjected %d + pending %d != released %d",
					out.ReinjectedBalls, sch.PendingReinjections(), released)
			}
		case PolicySaturate:
			after := 0
			for u, l := range sch.Loads() {
				if topo.FailedServer(u) && l != 0 {
					t.Fatalf("failed server %d carries load %d", u, l)
				}
				after += l
			}
			// The epoch had no demand, so the survivors' carried load is
			// exactly the pre-wave total: nothing dropped.
			if after != carried {
				t.Fatalf("saturate policy lost balls: %d carried after wave, want %d", after, carried)
			}
		}
		if out.FailedServers != len(wave) {
			t.Fatalf("outcome reports %d failed servers, want %d", out.FailedServers, len(wave))
		}
	}
}

// TestSchedulerArrivalDemand checks the arrival-driven demand path: only
// arriving clients (plus re-injections) carry balls, and departed
// clients never do.
func TestSchedulerArrivalDemand(t *testing.T) {
	const n, m, k = 60, 50, 4
	base, err := gen.TrustSubsetImplicit(n, m, k, 7)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := New(Config{Base: base, Sampler: TrustSampler(m, k), Seed: 3, Backend: BackendCSRPatch})
	if err != nil {
		t.Fatal(err)
	}
	oneWorker := core.NewConfig(core.SAER, 2, 4, 0)
	oneWorker.Workers = 1
	sch, err := NewScheduler(topo, SchedulerConfig{Protocol: oneWorker}, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Everyone departs; then eight clients arrive.
	all := make([]int32, n)
	for v := range all {
		all[v] = int32(v)
	}
	out, err := sch.Step(EpochEvent{Dt: 1, Depart: all})
	if err != nil {
		t.Fatal(err)
	}
	if out.DemandBalls != 0 || out.Rounds != 0 {
		t.Fatalf("empty epoch placed balls: %+v", out)
	}
	arrivals := topo.SampleAbsent(rng.New(1), 8)
	out, err = sch.Step(EpochEvent{Dt: 1, Arrive: arrivals})
	if err != nil {
		t.Fatal(err)
	}
	if out.DemandBalls != 8*2 {
		t.Fatalf("arrival epoch injected %d balls, want %d", out.DemandBalls, 16)
	}
	if !out.Completed {
		t.Fatalf("tiny arrival batch did not complete: %+v", out)
	}
	if out.PresentClients != 8 {
		t.Fatalf("present count %d, want 8", out.PresentClients)
	}
}

// TestSchedulerValidation rejects broken configurations.
func TestSchedulerValidation(t *testing.T) {
	base, err := gen.TrustSubsetImplicit(10, 10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := New(Config{Base: base, Sampler: TrustSampler(10, 2), Seed: 1, Backend: BackendImplicit})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler(topo, SchedulerConfig{Protocol: core.NewConfig(core.SAER, 0, 4, 1)}, 1); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := NewScheduler(topo, SchedulerConfig{Protocol: core.NewConfig(core.SAER, 2, 4, 1), LoadExpiry: 1.5}, 1); err == nil {
		t.Error("LoadExpiry=1.5 accepted")
	}
	if _, err := New(Config{Base: base, Sampler: Sampler{}, Seed: 1}); err == nil {
		t.Error("empty sampler accepted")
	}
	if _, err := New(Config{Base: base, Sampler: TrustSampler(10, 2), Backend: Backend(9)}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy parsed")
	}
	for _, p := range []Policy{PolicyDrop, PolicyReinject, PolicySaturate} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
}
